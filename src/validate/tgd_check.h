// Safety checks on produced mappings: a TGD ∀x̄(φ_S(x̄) → ∃ȳ ψ_T(x̄,ȳ)) is
// only executable when every frontier variable x̄ is bound by the source
// body φ_S — an unbound frontier variable would range over the whole
// domain. Generators should never emit such a mapping, so a finding here
// means the mapping must be discarded, not repaired.
#ifndef SEMAP_VALIDATE_TGD_CHECK_H_
#define SEMAP_VALIDATE_TGD_CHECK_H_

#include <string>
#include <vector>

#include "logic/tgd.h"
#include "util/diag.h"

namespace semap::validate {

/// \brief Frontier variables of `tgd` that no source-body atom binds, in
/// head order; empty when the TGD is safe.
std::vector<std::string> UnsafeFrontierVariables(const logic::Tgd& tgd);

/// \brief True when `tgd` is safe. Otherwise reports one kUnsafeTgd error
/// to `sink` naming the unbound variables and returns false.
bool CheckTgdSafety(const logic::Tgd& tgd, DiagnosticSink& sink);

}  // namespace semap::validate

#endif  // SEMAP_VALIDATE_TGD_CHECK_H_
