#include "validate/cross_check.h"

#include <set>
#include <string>

namespace semap::validate {

namespace {

/// The RIC targets the table's primary key (same column set, any order).
bool TargetsKey(const rel::Ric& ric, const rel::Table& to_table) {
  std::set<std::string> targeted(ric.to_columns.begin(), ric.to_columns.end());
  std::set<std::string> key(to_table.primary_key().begin(),
                            to_table.primary_key().end());
  return !key.empty() && targeted == key;
}

}  // namespace

void LintSchema(const rel::RelationalSchema& schema, DiagnosticSink& sink) {
  for (const rel::Ric& ric : schema.rics()) {
    const rel::Table* to_table = schema.FindTable(ric.to_table);
    if (to_table == nullptr) continue;  // AddRic already rejects these.
    if (!TargetsKey(ric, *to_table)) {
      sink.Warning(diag::kRicNonKeyTarget,
                   "RIC " + ric.ToString() + " does not target the key of '" +
                       ric.to_table + "'",
                   {}, "RIC-based discovery may merge distinct rows");
    }
  }
}

std::vector<disc::Correspondence> LintCorrespondences(
    const std::vector<disc::Correspondence>& correspondences,
    const std::vector<SourceSpan>& spans, const rel::RelationalSchema& source,
    const rel::RelationalSchema& target, DiagnosticSink& sink) {
  std::vector<disc::Correspondence> kept;
  std::set<std::pair<rel::ColumnRef, rel::ColumnRef>> seen;
  for (size_t i = 0; i < correspondences.size(); ++i) {
    const disc::Correspondence& corr = correspondences[i];
    SourceSpan span = i < spans.size() ? spans[i] : SourceSpan{};
    const char* dangling_side = nullptr;
    if (!source.HasColumn(corr.source)) dangling_side = "source";
    if (dangling_side == nullptr && !target.HasColumn(corr.target)) {
      dangling_side = "target";
    }
    if (dangling_side != nullptr) {
      const rel::ColumnRef& ref =
          dangling_side == std::string_view("source") ? corr.source
                                                      : corr.target;
      sink.Error(diag::kDanglingCorrespondence,
                 std::string(dangling_side) + " column " + ref.ToString() +
                     " does not exist; dropping " + corr.ToString(),
                 span, "fix the column name or remove the correspondence");
      continue;
    }
    if (!seen.insert({corr.source, corr.target}).second) {
      sink.Warning(diag::kDuplicateCorrespondence,
                   "duplicate correspondence " + corr.ToString(), span,
                   "the repeated statement was dropped");
      continue;
    }
    kept.push_back(corr);
  }
  return kept;
}

}  // namespace semap::validate
