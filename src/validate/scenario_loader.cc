#include "validate/scenario_loader.h"

#include <utility>

#include "cm/parser.h"
#include "relational/schema_parser.h"
#include "semantics/semantics_parser.h"
#include "validate/cross_check.h"

namespace semap::validate {

namespace {

/// One side of the scenario: schema + CM + semantics, all fail-soft. The
/// CM compile is the only hard failure (the lenient parser guarantees a
/// Validate()d model, so Build only fails on internal invariants).
Result<sem::AnnotatedSchema> LoadSide(const ArtifactText& schema_text,
                                      const ArtifactText& cm_text,
                                      const ArtifactText& sem_text,
                                      DiagnosticSink& sink) {
  sink.set_artifact(schema_text.name);
  rel::RelationalSchema schema =
      rel::ParseSchemaLenient(schema_text.text, sink);
  LintSchema(schema, sink);

  sink.set_artifact(cm_text.name);
  cm::ConceptualModel model = cm::ParseCmLenient(cm_text.text, sink);
  SEMAP_ASSIGN_OR_RETURN(cm::CmGraph graph, cm::CmGraph::Build(model));

  sink.set_artifact(sem_text.name);
  std::vector<sem::STree> trees =
      sem::ParseSemanticsLenient(graph, sem_text.text, sink);

  sem::AnnotatedSchema annotated(std::move(schema), std::move(graph));
  for (sem::STree& tree : trees) {
    std::string table = tree.table;
    Status attached = annotated.AddSemantics(std::move(tree));
    if (!attached.ok()) {
      // The tree parsed but does not fit the schema/CM (unknown table,
      // non-bijective bindings, disconnected edges, ...): quarantine it.
      sink.Error(diag::kInvalidSTree, std::string(attached.message()), {},
                 "the s-tree was dropped");
      sink.Note(diag::kQuarantined,
                "semantics for table '" + table +
                    "' quarantined: the tree does not validate",
                {}, "the table degrades to RIC-only discovery");
    }
  }
  return annotated;
}

}  // namespace

Result<LoadedScenario> LoadScenario(const ScenarioTexts& texts,
                                    DiagnosticSink& sink) {
  LoadedScenario out;
  SEMAP_ASSIGN_OR_RETURN(
      out.source, LoadSide(texts.source_schema, texts.source_cm,
                           texts.source_sem, sink));
  SEMAP_ASSIGN_OR_RETURN(
      out.target, LoadSide(texts.target_schema, texts.target_cm,
                           texts.target_sem, sink));

  sink.set_artifact(texts.correspondences.name);
  std::vector<SourceSpan> spans;
  std::vector<disc::Correspondence> parsed =
      disc::ParseCorrespondencesLenient(texts.correspondences.text, sink,
                                        &spans);
  out.correspondences =
      LintCorrespondences(parsed, spans, out.source.schema(),
                          out.target.schema(), sink);
  sink.set_artifact("");
  return out;
}

}  // namespace semap::validate
