// Fail-soft loading of a whole mapping scenario (both annotated schemas
// plus the correspondences) with quarantine semantics: every artifact is
// parsed in recovery mode, cross-artifact checks run over the results, and
// broken pieces — an s-tree that does not validate, a dangling
// correspondence — are dropped with coded diagnostics instead of failing
// the load. Discovery then degrades the affected tables (per-table RIC
// fallback) rather than the whole run.
#ifndef SEMAP_VALIDATE_SCENARIO_LOADER_H_
#define SEMAP_VALIDATE_SCENARIO_LOADER_H_

#include <string>
#include <vector>

#include "discovery/correspondence.h"
#include "semantics/stree.h"
#include "util/diag.h"
#include "util/result.h"

namespace semap::validate {

/// \brief One textual input plus the artifact label stamped onto its
/// diagnostics (usually its file path).
struct ArtifactText {
  std::string text;
  std::string name;
};

/// \brief The seven artifacts of a mapping scenario.
struct ScenarioTexts {
  ArtifactText source_schema{{}, "source.schema"};
  ArtifactText source_cm{{}, "source.cm"};
  ArtifactText source_sem{{}, "source.sem"};
  ArtifactText target_schema{{}, "target.schema"};
  ArtifactText target_cm{{}, "target.cm"};
  ArtifactText target_sem{{}, "target.sem"};
  ArtifactText correspondences{{}, "correspondences"};
};

struct LoadedScenario {
  sem::AnnotatedSchema source;
  sem::AnnotatedSchema target;
  /// The correspondences that survived linting (dangling ones dropped).
  std::vector<disc::Correspondence> correspondences;
};

/// \brief Load a scenario fail-soft: lenient parses, cross-artifact lints,
/// quarantines. The sink collects every finding; `sink.has_errors()` after
/// the call means the load is degraded (some artifact was dropped), not
/// that it failed. The only hard failure is a conceptual model that cannot
/// be compiled at all.
Result<LoadedScenario> LoadScenario(const ScenarioTexts& texts,
                                    DiagnosticSink& sink);

}  // namespace semap::validate

#endif  // SEMAP_VALIDATE_SCENARIO_LOADER_H_
