// Cross-artifact lint checks: findings that no single parser can see
// because they relate two artifacts (correspondences against schemas, RICs
// against the keys they target).
//
// Like the recovery-mode parsers, these never fail — they report coded
// diagnostics and return the usable subset of their input.
#ifndef SEMAP_VALIDATE_CROSS_CHECK_H_
#define SEMAP_VALIDATE_CROSS_CHECK_H_

#include <vector>

#include "discovery/correspondence.h"
#include "relational/schema.h"
#include "util/diag.h"

namespace semap::validate {

/// \brief Warn about RICs whose target columns are not the referenced
/// table's primary key (kRicNonKeyTarget): the RIC baseline chases such
/// constraints as if they were key-based, which can merge distinct rows.
void LintSchema(const rel::RelationalSchema& schema, DiagnosticSink& sink);

/// \brief Validate correspondences against the two schemas. Dangling
/// references (unknown table or column on either side) are dropped with
/// kDanglingCorrespondence; exact duplicates are dropped with
/// kDuplicateCorrespondence. Returns the kept correspondences. `spans` is
/// parallel to `correspondences` (one span each, from the lenient parser)
/// and may be empty when no source locations are known.
std::vector<disc::Correspondence> LintCorrespondences(
    const std::vector<disc::Correspondence>& correspondences,
    const std::vector<SourceSpan>& spans, const rel::RelationalSchema& source,
    const rel::RelationalSchema& target, DiagnosticSink& sink);

}  // namespace semap::validate

#endif  // SEMAP_VALIDATE_CROSS_CHECK_H_
