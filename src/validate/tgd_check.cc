#include "validate/tgd_check.h"

#include <set>

#include "util/string_util.h"

namespace semap::validate {

namespace {

void CollectVariables(const logic::Term& term, std::set<std::string>* out) {
  if (term.IsVar()) out->insert(term.name);
  for (const logic::Term& arg : term.args) CollectVariables(arg, out);
}

}  // namespace

std::vector<std::string> UnsafeFrontierVariables(const logic::Tgd& tgd) {
  std::set<std::string> bound;
  for (const logic::Atom& atom : tgd.source.body) {
    for (const logic::Term& term : atom.terms) {
      CollectVariables(term, &bound);
    }
  }
  std::vector<std::string> unsafe;
  std::set<std::string> reported;
  for (const logic::Term& term : tgd.frontier()) {
    std::set<std::string> wanted;
    CollectVariables(term, &wanted);
    for (const std::string& var : wanted) {
      if (!bound.count(var) && reported.insert(var).second) {
        unsafe.push_back(var);
      }
    }
  }
  return unsafe;
}

bool CheckTgdSafety(const logic::Tgd& tgd, DiagnosticSink& sink) {
  std::vector<std::string> unsafe = UnsafeFrontierVariables(tgd);
  if (unsafe.empty()) return true;
  sink.Error(diag::kUnsafeTgd,
             "unsafe mapping: frontier variable(s) " + Join(unsafe, ", ") +
                 " not bound by the source query " + tgd.source.ToString(),
             {}, "the mapping was discarded");
  return false;
}

}  // namespace semap::validate
