// Human-readable profile rendering: the `semap_map --profile` summary —
// per-phase wall time aggregated by span name, share of the run, span
// counts, and the top counters of the run. See docs/OBSERVABILITY.md for
// how to read the output.
#ifndef SEMAP_OBS_PROFILE_H_
#define SEMAP_OBS_PROFILE_H_

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace semap::obs {

/// \brief One aggregated profile row: every span named `name`.
struct PhaseProfile {
  std::string name;
  size_t spans = 0;
  int64_t total_ns = 0;
  double share = 0;  // of the run's total (first root span, else max sum)
};

/// \brief Aggregate spans by name, sorted by total duration descending.
std::vector<PhaseProfile> AggregatePhases(const Tracer& tracer);

/// \brief The per-phase table plus the `max_counters` largest counters,
/// formatted for a terminal.
std::string ProfileString(const Tracer& tracer, const Metrics& metrics,
                          size_t max_counters = 12);

}  // namespace semap::obs

#endif  // SEMAP_OBS_PROFILE_H_
