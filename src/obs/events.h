// Wide events: an append-only NDJSON stream of self-contained run events.
//
// Where the Tracer builds one retrospective span tree and Metrics one
// aggregate table, the EventEmitter writes each interesting moment —
// phase boundary, work-unit start/retry/completion, breaker trip,
// checkpoint append/resume — to disk *as it happens*, one JSON object per
// line (semap.events.v1). Every line carries the schema tag, a monotonic
// sequence number, a nanosecond timestamp on the emitter's clock, and the
// event's own context, so a single grepped line is interpretable without
// the rest of the file and a killed run leaves a usable prefix (readers
// must tolerate one torn final line, like the checkpoint journal).
//
// Thread-safe: supervisor workers share one emitter; a mutex orders the
// sequence numbers and keeps lines whole. Disabled (the default) costs
// nothing — a null EventEmitter* on the RunContext is never dereferenced
// and call sites build no strings.
#ifndef SEMAP_OBS_EVENTS_H_
#define SEMAP_OBS_EVENTS_H_

#include <chrono>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>

namespace semap::obs {

/// \brief Builder for one event's payload fields, pre-rendered to JSON.
class WideEvent {
 public:
  WideEvent& Str(std::string_view key, std::string_view value);
  WideEvent& Int(std::string_view key, int64_t value);
  WideEvent& Bool(std::string_view key, bool value);

  const std::string& body() const { return body_; }

 private:
  std::string body_;  // ',"key":value' fragments, ready to splice
};

/// \brief Appends semap.events.v1 lines to a file, flushing per line.
class EventEmitter {
 public:
  explicit EventEmitter(const std::string& path);
  EventEmitter(const EventEmitter&) = delete;
  EventEmitter& operator=(const EventEmitter&) = delete;

  /// False when the stream could not be opened (or a write failed); the
  /// pipeline keeps running either way — events are diagnostics, not
  /// results.
  bool ok() const { return ok_; }

  /// Nanoseconds since this emitter was constructed. Thread-safe; call
  /// sites use it to measure durations they attach to events.
  int64_t NowNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Append one event line: {"schema":"semap.events.v1","seq":N,
  /// "ts_ns":T,"event":"<type>",...fields}. Sequence numbers are
  /// monotonic across all threads.
  void Emit(std::string_view type, const WideEvent& fields);
  void Emit(std::string_view type) { Emit(type, WideEvent()); }

  /// Events written so far (for tests).
  int64_t count() const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::ofstream out_;
  int64_t seq_ = 0;
  bool ok_ = false;
};

}  // namespace semap::obs

#endif  // SEMAP_OBS_EVENTS_H_
