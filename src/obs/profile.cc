#include "obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

namespace semap::obs {

namespace {

std::string FormatNs(int64_t ns) {
  char buf[32];
  if (ns >= 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2f s", static_cast<double>(ns) / 1e9);
  } else if (ns >= 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", static_cast<double>(ns) / 1e6);
  } else if (ns >= 1'000) {
    std::snprintf(buf, sizeof(buf), "%.1f us", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld ns", static_cast<long long>(ns));
  }
  return buf;
}

}  // namespace

std::vector<PhaseProfile> AggregatePhases(const Tracer& tracer) {
  std::map<std::string, PhaseProfile> by_name;
  for (const SpanRecord& s : tracer.spans()) {
    PhaseProfile& p = by_name[s.name];
    p.name = s.name;
    ++p.spans;
    if (s.duration_ns > 0) p.total_ns += s.duration_ns;
  }
  // The run total: the first root span when one exists (the CLI's
  // `pipeline` span), otherwise the largest aggregate.
  int64_t total = 0;
  for (const SpanRecord& s : tracer.spans()) {
    if (s.parent < 0 && s.duration_ns > 0) {
      total = s.duration_ns;
      break;
    }
  }
  std::vector<PhaseProfile> rows;
  rows.reserve(by_name.size());
  for (auto& [name, p] : by_name) rows.push_back(std::move(p));
  if (total == 0) {
    for (const PhaseProfile& p : rows) total = std::max(total, p.total_ns);
  }
  for (PhaseProfile& p : rows) {
    p.share = total > 0 ? static_cast<double>(p.total_ns) /
                              static_cast<double>(total)
                        : 0;
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const PhaseProfile& a, const PhaseProfile& b) {
                     return a.total_ns > b.total_ns;
                   });
  return rows;
}

std::string ProfileString(const Tracer& tracer, const Metrics& metrics,
                          size_t max_counters) {
  std::vector<PhaseProfile> rows = AggregatePhases(tracer);
  std::string out = "profile (per-phase wall time):\n";
  size_t width = 5;
  for (const PhaseProfile& p : rows) width = std::max(width, p.name.size());
  for (const PhaseProfile& p : rows) {
    char line[160];
    std::snprintf(line, sizeof(line), "  %-*s  %10s  %5.1f%%  %zu span(s)\n",
                  static_cast<int>(width), p.name.c_str(),
                  FormatNs(p.total_ns).c_str(), p.share * 100.0, p.spans);
    out += line;
  }
  if (!metrics.counters().empty()) {
    std::vector<std::pair<std::string, int64_t>> top(
        metrics.counters().begin(), metrics.counters().end());
    std::stable_sort(top.begin(), top.end(),
                     [](const auto& a, const auto& b) {
                       return a.second > b.second;
                     });
    if (top.size() > max_counters) top.resize(max_counters);
    out += "top counters:\n";
    size_t cw = 5;
    for (const auto& [name, value] : top) cw = std::max(cw, name.size());
    for (const auto& [name, value] : top) {
      char line[160];
      std::snprintf(line, sizeof(line), "  %-*s  %lld\n",
                    static_cast<int>(cw), name.c_str(),
                    static_cast<long long>(value));
      out += line;
    }
  }
  return out;
}

}  // namespace semap::obs
