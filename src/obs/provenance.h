// Mapping provenance: why each emitted TGD exists and why pruned
// candidates do not.
//
// A ProvenanceRecorder hangs off exec::RunContext (like the Tracer and
// Metrics) and captures, per target table, a DerivationRecord for every
// mapping the pipeline emits — the covered correspondences, the chosen
// CSG pair, the Skolem-merge decisions, the execution tier — plus a
// *bounded* RejectionRecord log for candidates killed on the way (which
// filter killed each: disjointness, semantic-type, penalty ranking,
// candidate cap, budget truncation, empty rewriting) and the cascade's
// tier-attempt history. The JSON export (ToJson) is the semap.explain.v1
// format read by tools/semap_explain; it contains no timestamps, so the
// same run always serializes to the same bytes.
//
// Determinism under concurrency: recorders are single-threaded like the
// Tracer. The supervisor gives each work unit a private recorder and
// MergeFrom()s them into the run recorder at assembly, in sorted table
// order; tables() is itself name-sorted, so --jobs=N explain output is
// byte-identical to --jobs=1.
//
// Disabled provenance is the default and costs nothing: every call site
// guards on a null ProvenanceRecorder* before rendering any string, so an
// empty RunContext skips the work entirely.
//
// This header depends only on the standard library (no discovery/logic
// types): callers render candidates, correspondences and TGDs to text
// before recording, which keeps obs/ at the bottom of the layering under
// exec/run_context.h.
#ifndef SEMAP_OBS_PROVENANCE_H_
#define SEMAP_OBS_PROVENANCE_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "util/result.h"

namespace semap::json {
class Value;
}  // namespace semap::json

namespace semap::obs {

/// \brief One Skolem function the emitted TGD's target side applies, with
/// the merge decision its name encodes (rewriting/inverse_rules.h):
/// "key-merge" for id_<Class> terms (instances merged on a composite
/// key), "table-local" for sk_<table>_<var> terms (unidentified concept,
/// no cross-table merge).
struct SkolemDecision {
  std::string function;
  std::string kind;
};

/// \brief Why one emitted mapping exists: the winning candidate replayed.
struct DerivationRecord {
  std::string tgd;  // rendered TGD; the key ConfirmEmitted matches on
  /// Which stage produced it: "semantic", "ric-baseline", or
  /// "checkpoint" (served from a resume journal, pre-merge provenance
  /// lost).
  std::string origin = "semantic";
  /// Execution tier that produced it (TierName), stamped when the merger
  /// accepts the mapping.
  std::string tier;
  /// False until the cross-table merger accepted it; a recorded
  /// derivation that stays unemitted carries drop_reason instead.
  bool emitted = false;
  std::string drop_reason;
  std::vector<std::string> covered;  // rendered correspondences
  std::string source_csg;            // chosen CSG pair / s-tree nodes
  std::string target_csg;
  int penalty = 0;
  size_t variants = 0;  // alternative renderings the candidate produced
  std::vector<SkolemDecision> skolems;
  std::string source_algebra;
  std::string target_algebra;
};

/// \brief Why one pruned candidate does not appear in the output.
struct RejectionRecord {
  std::string candidate;  // rendered candidate (or CSG, for tree prunes)
  /// The killing filter: "disjointness", "semantic-type", "penalty",
  /// "candidate-cap", "budget", "no-rewriting", "duplicate".
  std::string filter;
  std::string detail;
  /// Cascade position when the prune happened (TierName + 1-based
  /// attempt); empty/0 outside a cascade.
  std::string tier;
  size_t attempt = 0;
  size_t covered = 0;  // correspondences the candidate would have covered
  int penalty = 0;
};

/// \brief One governed tier attempt of the degradation cascade.
struct AttemptRecord {
  std::string tier;
  size_t attempt = 0;  // 1-based within the tier
  /// "ok" (mappings found), "empty" (clean no-mappings answer),
  /// "exhausted" (budget/deadline/fault), "error".
  std::string status;
  std::string detail;
  size_t mappings = 0;
};

/// \brief Everything recorded about one target table.
struct TableProvenance {
  std::string table;
  std::string tier;  // final TierName once the outcome is recorded
  std::vector<std::string> notes;
  std::vector<AttemptRecord> attempts;
  std::vector<DerivationRecord> derivations;
  std::vector<RejectionRecord> rejections;
  /// Rejections discarded once the per-table bound was hit.
  size_t rejections_dropped = 0;
};

/// \brief Collects the provenance of one run (or one work unit).
class ProvenanceRecorder {
 public:
  /// `max_rejections_per_table` bounds the rejection log: combinatorial
  /// scenarios can prune thousands of candidates and the explain file
  /// must stay readable. Overflow is counted, never silently dropped.
  explicit ProvenanceRecorder(size_t max_rejections_per_table = 64)
      : max_rejections_(max_rejections_per_table) {}
  ProvenanceRecorder(const ProvenanceRecorder&) = delete;
  ProvenanceRecorder& operator=(const ProvenanceRecorder&) = delete;

  /// Scope the records that follow to `table` (the cascade calls this at
  /// entry). Records made outside any scope land under the "" table.
  void BeginTable(const std::string& table);
  void EndTable();

  /// Stamp the records that follow with the cascade position (TierName,
  /// 1-based attempt). Reset by EndTable.
  void BeginAttempt(const std::string& tier, size_t attempt);

  void RecordAttempt(AttemptRecord attempt);
  void RecordRejection(RejectionRecord rejection);
  void RecordDerivation(DerivationRecord derivation);

  /// Final cascade outcome for `table` (works outside any scope: the
  /// supervisor records outcomes at assembly).
  void RecordOutcome(const std::string& table, const std::string& tier,
                     const std::vector<std::string>& notes);

  /// The cross-table merger accepted this mapping: mark its derivation
  /// emitted and stamp the tier. A confirmation without a recorded
  /// derivation creates a stub (origin "unknown"), so "one derivation per
  /// emitted TGD" holds by construction.
  void ConfirmEmitted(const std::string& table, const std::string& tgd,
                      const std::string& tier);
  /// The merger discarded this mapping (unsafe TGD, cross-table
  /// duplicate): keep the derivation, record why it was dropped.
  void MarkDropped(const std::string& table, const std::string& tgd,
                   const std::string& reason);

  /// Fold a work unit's private recorder into this one. Call in sorted
  /// table order to reproduce the serial pipeline's export bytes.
  void MergeFrom(const ProvenanceRecorder& other);

  /// Fold one externally reconstructed table record into this one —
  /// MergeFrom for a single table, used when a resume restores a unit's
  /// journaled provenance (exec/checkpoint.h) instead of a live
  /// recorder. Same bounding and accumulation rules as MergeFrom.
  void AdoptTable(const TableProvenance& table);

  const std::map<std::string, TableProvenance>& tables() const {
    return tables_;
  }

  /// semap.explain.v1: {"schema":...,"tables":[...]} sorted by table
  /// name, timestamp-free — deterministic for identical runs.
  std::string ToJson() const;

 private:
  TableProvenance& Current();
  void MergeTable(const TableProvenance& theirs);
  TableProvenance& For(const std::string& table);
  DerivationRecord& DerivationFor(const std::string& table,
                                  const std::string& tgd);

  size_t max_rejections_;
  std::string current_table_;
  std::string current_tier_;
  size_t current_attempt_ = 0;
  std::map<std::string, TableProvenance> tables_;
};

/// One table's provenance as the JSON object semap.explain.v1 embeds in
/// its "tables" array — byte-identical to that export, so a unit record
/// journaled at completion and restored on resume reproduces the explain
/// output exactly.
std::string TableProvenanceToJson(const TableProvenance& table);

/// Inverse of TableProvenanceToJson on an already-parsed object
/// (util/json.h). Unknown members are ignored; missing ones default.
Result<TableProvenance> TableProvenanceFromJson(const json::Value& value);

/// \brief RAII table scope on a nullable recorder: the canonical cascade
/// call site. Null recorder = inert.
class ProvenanceTableScope {
 public:
  ProvenanceTableScope(ProvenanceRecorder* recorder, const std::string& table)
      : recorder_(recorder) {
    if (recorder_ != nullptr) recorder_->BeginTable(table);
  }
  ~ProvenanceTableScope() {
    if (recorder_ != nullptr) recorder_->EndTable();
  }
  ProvenanceTableScope(const ProvenanceTableScope&) = delete;
  ProvenanceTableScope& operator=(const ProvenanceTableScope&) = delete;

 private:
  ProvenanceRecorder* recorder_;
};

}  // namespace semap::obs

#endif  // SEMAP_OBS_PROVENANCE_H_
