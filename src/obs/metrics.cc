#include "obs/metrics.h"

#include "obs/trace.h"

namespace semap::obs {

void Metrics::Add(std::string_view name, int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

int64_t Metrics::Value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void Metrics::RecordDurationNs(std::string_view name, int64_t ns) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  Histogram& h = it->second;
  size_t bucket = kBucketBoundsNs.size();  // overflow bucket
  for (size_t i = 0; i < kBucketBoundsNs.size(); ++i) {
    if (ns <= kBucketBoundsNs[i]) {
      bucket = i;
      break;
    }
  }
  ++h.buckets[bucket];
  if (h.count == 0 || ns < h.min_ns) h.min_ns = ns;
  if (h.count == 0 || ns > h.max_ns) h.max_ns = ns;
  ++h.count;
  h.sum_ns += ns;
}

void Metrics::MergeFrom(const Metrics& other) {
  if (&other == this) return;
  std::scoped_lock lock(mu_, other.mu_);
  for (const auto& [name, value] : other.counters_) {
    auto it = counters_.find(name);
    if (it == counters_.end()) {
      counters_.emplace(name, value);
    } else {
      it->second += value;
    }
  }
  for (const auto& [name, theirs] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, theirs);
      continue;
    }
    Histogram& ours = it->second;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      ours.buckets[i] += theirs.buckets[i];
    }
    if (theirs.count > 0) {
      if (ours.count == 0 || theirs.min_ns < ours.min_ns) {
        ours.min_ns = theirs.min_ns;
      }
      if (ours.count == 0 || theirs.max_ns > ours.max_ns) {
        ours.max_ns = theirs.max_ns;
      }
      ours.count += theirs.count;
      ours.sum_ns += theirs.sum_ns;
    }
  }
}

std::string Metrics::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"schema\":\"semap.metrics.v1\",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":{";
    out += "\"count\":" + std::to_string(h.count);
    out += ",\"sum_ns\":" + std::to_string(h.sum_ns);
    out += ",\"min_ns\":" + std::to_string(h.min_ns);
    out += ",\"max_ns\":" + std::to_string(h.max_ns);
    out += ",\"buckets\":[";
    for (size_t i = 0; i < kNumBuckets; ++i) {
      if (i > 0) out += ",";
      out += "{\"le_ns\":";
      out += i < kBucketBoundsNs.size() ? std::to_string(kBucketBoundsNs[i])
                                        : std::string("\"inf\"");
      out += ",\"count\":" + std::to_string(h.buckets[i]) + "}";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace semap::obs
