// Metrics: named monotonic counters and duration histograms for one run.
//
// Counters measure search effort (trees enumerated, candidates pruned per
// filter, governor trips, quarantines — the quantities the paper's
// evaluation and later perf PRs compare); histograms capture the latency
// distribution of repeated operations (a tree enumeration, one rewrite
// query) in fixed exponential nanosecond buckets. The flat JSON export
// (ToJson) is the machine-readable side; docs/OBSERVABILITY.md names every
// counter the pipeline emits.
//
// Disabled metrics cost nothing: a null Metrics* through obs::Count /
// obs::ScopedTimer (or an empty exec::RunContext) skips the work entirely,
// without allocating or reading the clock.
//
// Thread safety: the mutating and exporting entry points (Add,
// RecordDurationNs, MergeFrom, Value, ToJson, SnapshotJson) serialize on
// an internal mutex, so a long-lived Metrics — the serve daemon's rolling
// latency histograms — can be hammered by worker threads while another
// thread snapshots it live. The reference accessors (counters(),
// histograms()) stay lock-free views for single-threaded readers: call
// them only when no other thread is mutating.
#ifndef SEMAP_OBS_METRICS_H_
#define SEMAP_OBS_METRICS_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace semap::obs {

class Metrics {
 public:
  /// Bucket upper bounds (inclusive), nanoseconds; the last bucket is
  /// unbounded. 1µs, 10µs, 100µs, 1ms, 10ms, 100ms, 1s, 10s, +inf.
  static constexpr std::array<int64_t, 8> kBucketBoundsNs = {
      1'000,       10'000,        100'000,       1'000'000,
      10'000'000,  100'000'000,   1'000'000'000, 10'000'000'000};
  static constexpr size_t kNumBuckets = kBucketBoundsNs.size() + 1;

  struct Histogram {
    std::array<int64_t, kNumBuckets> buckets{};
    int64_t count = 0;
    int64_t sum_ns = 0;
    int64_t min_ns = 0;
    int64_t max_ns = 0;
  };

  /// Bump counter `name` by `delta`.
  void Add(std::string_view name, int64_t delta = 1);

  /// Current value of counter `name` (0 if never bumped).
  int64_t Value(std::string_view name) const;

  /// Record one duration observation into histogram `name`.
  void RecordDurationNs(std::string_view name, int64_t ns);

  /// Fold another Metrics into this one: counters add, histograms merge
  /// bucket-wise. How the supervisor folds each worker unit's private
  /// metrics back into the run's metrics after the unit completes, and
  /// how the server folds per-request pipeline metrics into its rolling
  /// telemetry. Locks both sides (deadlock-free via scoped_lock).
  void MergeFrom(const Metrics& other);

  /// Lock-free views for single-threaded readers (tests, the profile
  /// report); do not call while another thread mutates this Metrics.
  const std::map<std::string, int64_t, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  /// Flat metrics table as JSON:
  /// {"schema":"semap.metrics.v1","counters":{...},"histograms":{...}}.
  /// Safe to call while other threads Add/Record concurrently — this is
  /// how a running daemon exports live telemetry mid-load.
  std::string SnapshotJson() const;

  /// Alias for SnapshotJson, kept for the established export call sites.
  std::string ToJson() const { return SnapshotJson(); }

 private:
  mutable std::mutex mu_;
  std::map<std::string, int64_t, std::less<>> counters_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// \brief Bump a counter on a nullable Metrics: the canonical call site.
inline void Count(Metrics* metrics, std::string_view name,
                  int64_t delta = 1) {
  if (metrics != nullptr) metrics->Add(name, delta);
}

/// \brief RAII duration sample: records the scope's wall time into a
/// histogram on destruction. Null metrics = inert (no clock read).
class ScopedTimer {
 public:
  ScopedTimer(Metrics* metrics, std::string_view name) : metrics_(metrics) {
    if (metrics_ != nullptr) {
      name_ = name;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (metrics_ != nullptr) {
      metrics_->RecordDurationNs(
          name_, std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - start_)
                     .count());
    }
  }

 private:
  Metrics* metrics_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace semap::obs

#endif  // SEMAP_OBS_METRICS_H_
