#include "obs/provenance.h"

#include <utility>

#include "obs/trace.h"
#include "util/json.h"

namespace semap::obs {

void ProvenanceRecorder::BeginTable(const std::string& table) {
  current_table_ = table;
  current_tier_.clear();
  current_attempt_ = 0;
  For(table);
}

void ProvenanceRecorder::EndTable() {
  current_table_.clear();
  current_tier_.clear();
  current_attempt_ = 0;
}

void ProvenanceRecorder::BeginAttempt(const std::string& tier,
                                      size_t attempt) {
  current_tier_ = tier;
  current_attempt_ = attempt;
}

TableProvenance& ProvenanceRecorder::For(const std::string& table) {
  TableProvenance& entry = tables_[table];
  entry.table = table;
  return entry;
}

TableProvenance& ProvenanceRecorder::Current() { return For(current_table_); }

void ProvenanceRecorder::RecordAttempt(AttemptRecord attempt) {
  Current().attempts.push_back(std::move(attempt));
}

void ProvenanceRecorder::RecordRejection(RejectionRecord rejection) {
  TableProvenance& entry = Current();
  if (entry.rejections.size() >= max_rejections_) {
    ++entry.rejections_dropped;
    return;
  }
  if (rejection.tier.empty()) {
    rejection.tier = current_tier_;
    rejection.attempt = current_attempt_;
  }
  entry.rejections.push_back(std::move(rejection));
}

void ProvenanceRecorder::RecordDerivation(DerivationRecord derivation) {
  Current().derivations.push_back(std::move(derivation));
}

void ProvenanceRecorder::RecordOutcome(const std::string& table,
                                       const std::string& tier,
                                       const std::vector<std::string>& notes) {
  TableProvenance& entry = For(table);
  entry.tier = tier;
  entry.notes = notes;
}

DerivationRecord& ProvenanceRecorder::DerivationFor(const std::string& table,
                                                    const std::string& tgd) {
  TableProvenance& entry = For(table);
  for (DerivationRecord& d : entry.derivations) {
    // The merger confirms each TGD at most once per table, so the first
    // unconfirmed match is the record the confirmation belongs to.
    if (d.tgd == tgd && !d.emitted && d.drop_reason.empty()) return d;
  }
  DerivationRecord stub;
  stub.tgd = tgd;
  stub.origin = "unknown";
  entry.derivations.push_back(std::move(stub));
  return entry.derivations.back();
}

void ProvenanceRecorder::ConfirmEmitted(const std::string& table,
                                        const std::string& tgd,
                                        const std::string& tier) {
  DerivationRecord& d = DerivationFor(table, tgd);
  d.emitted = true;
  d.tier = tier;
}

void ProvenanceRecorder::MarkDropped(const std::string& table,
                                     const std::string& tgd,
                                     const std::string& reason) {
  DerivationFor(table, tgd).drop_reason = reason;
}

void ProvenanceRecorder::MergeTable(const TableProvenance& theirs) {
  TableProvenance& mine = For(theirs.table);
  if (!theirs.tier.empty()) mine.tier = theirs.tier;
  mine.notes.insert(mine.notes.end(), theirs.notes.begin(),
                    theirs.notes.end());
  mine.attempts.insert(mine.attempts.end(), theirs.attempts.begin(),
                       theirs.attempts.end());
  mine.derivations.insert(mine.derivations.end(), theirs.derivations.begin(),
                          theirs.derivations.end());
  for (const RejectionRecord& rejection : theirs.rejections) {
    if (mine.rejections.size() >= max_rejections_) {
      ++mine.rejections_dropped;
      continue;
    }
    mine.rejections.push_back(rejection);
  }
  mine.rejections_dropped += theirs.rejections_dropped;
}

void ProvenanceRecorder::MergeFrom(const ProvenanceRecorder& other) {
  for (const auto& [table, theirs] : other.tables_) MergeTable(theirs);
}

void ProvenanceRecorder::AdoptTable(const TableProvenance& table) {
  MergeTable(table);
}

namespace {

void AppendString(std::string* out, const char* key, const std::string& value,
                  bool* first) {
  if (!*first) *out += ",";
  *first = false;
  *out += "\"";
  *out += key;
  *out += "\":\"" + JsonEscape(value) + "\"";
}

void AppendInt(std::string* out, const char* key, int64_t value, bool* first) {
  if (!*first) *out += ",";
  *first = false;
  *out += "\"";
  *out += key;
  *out += "\":" + std::to_string(value);
}

void AppendBool(std::string* out, const char* key, bool value, bool* first) {
  if (!*first) *out += ",";
  *first = false;
  *out += "\"";
  *out += key;
  *out += value ? "\":true" : "\":false";
}

void AppendStringArray(std::string* out, const char* key,
                       const std::vector<std::string>& values, bool* first) {
  if (!*first) *out += ",";
  *first = false;
  *out += "\"";
  *out += key;
  *out += "\":[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) *out += ",";
    *out += "\"" + JsonEscape(values[i]) + "\"";
  }
  *out += "]";
}

}  // namespace

std::string TableProvenanceToJson(const TableProvenance& table) {
  std::string out;
  {
    out += "{";
    bool f = true;
    AppendString(&out, "table", table.table, &f);
    AppendString(&out, "tier", table.tier, &f);
    AppendStringArray(&out, "notes", table.notes, &f);
    out += ",\"attempts\":[";
    for (size_t i = 0; i < table.attempts.size(); ++i) {
      const AttemptRecord& a = table.attempts[i];
      if (i > 0) out += ",";
      out += "{";
      bool af = true;
      AppendString(&out, "tier", a.tier, &af);
      AppendInt(&out, "attempt", static_cast<int64_t>(a.attempt), &af);
      AppendString(&out, "status", a.status, &af);
      AppendString(&out, "detail", a.detail, &af);
      AppendInt(&out, "mappings", static_cast<int64_t>(a.mappings), &af);
      out += "}";
    }
    out += "],\"derivations\":[";
    for (size_t i = 0; i < table.derivations.size(); ++i) {
      const DerivationRecord& d = table.derivations[i];
      if (i > 0) out += ",";
      out += "{";
      bool df = true;
      AppendString(&out, "tgd", d.tgd, &df);
      AppendString(&out, "origin", d.origin, &df);
      AppendString(&out, "tier", d.tier, &df);
      AppendBool(&out, "emitted", d.emitted, &df);
      AppendString(&out, "drop_reason", d.drop_reason, &df);
      AppendStringArray(&out, "covered", d.covered, &df);
      AppendString(&out, "source_csg", d.source_csg, &df);
      AppendString(&out, "target_csg", d.target_csg, &df);
      AppendInt(&out, "penalty", d.penalty, &df);
      AppendInt(&out, "variants", static_cast<int64_t>(d.variants), &df);
      out += ",\"skolems\":[";
      for (size_t s = 0; s < d.skolems.size(); ++s) {
        if (s > 0) out += ",";
        out += "{\"function\":\"" + JsonEscape(d.skolems[s].function) +
               "\",\"kind\":\"" + JsonEscape(d.skolems[s].kind) + "\"}";
      }
      out += "]";
      df = false;
      AppendString(&out, "source_algebra", d.source_algebra, &df);
      AppendString(&out, "target_algebra", d.target_algebra, &df);
      out += "}";
    }
    out += "],\"rejections\":[";
    for (size_t i = 0; i < table.rejections.size(); ++i) {
      const RejectionRecord& r = table.rejections[i];
      if (i > 0) out += ",";
      out += "{";
      bool rf = true;
      AppendString(&out, "candidate", r.candidate, &rf);
      AppendString(&out, "filter", r.filter, &rf);
      AppendString(&out, "detail", r.detail, &rf);
      AppendString(&out, "tier", r.tier, &rf);
      AppendInt(&out, "attempt", static_cast<int64_t>(r.attempt), &rf);
      AppendInt(&out, "covered", static_cast<int64_t>(r.covered), &rf);
      AppendInt(&out, "penalty", r.penalty, &rf);
      out += "}";
    }
    out += "]";
    f = false;
    AppendInt(&out, "rejections_dropped",
              static_cast<int64_t>(table.rejections_dropped), &f);
    out += "}";
  }
  return out;
}

std::string ProvenanceRecorder::ToJson() const {
  std::string out = "{\"schema\":\"semap.explain.v1\",\"tables\":[";
  bool first_table = true;
  for (const auto& [name, table] : tables_) {
    if (!first_table) out += ",";
    first_table = false;
    out += TableProvenanceToJson(table);
  }
  out += "]}";
  return out;
}

Result<TableProvenance> TableProvenanceFromJson(const json::Value& value) {
  if (!value.is_object()) {
    return Status::ParseError("provenance: table record is not an object");
  }
  TableProvenance table;
  table.table = value.GetString("table");
  table.tier = value.GetString("tier");
  if (const json::Value* notes = value.Find("notes"); notes != nullptr) {
    for (const json::Value& note : notes->AsArray()) {
      if (note.is_string()) table.notes.push_back(note.AsString());
    }
  }
  if (const json::Value* attempts = value.Find("attempts");
      attempts != nullptr) {
    for (const json::Value& entry : attempts->AsArray()) {
      AttemptRecord attempt;
      attempt.tier = entry.GetString("tier");
      attempt.attempt = static_cast<size_t>(entry.GetInt("attempt"));
      attempt.status = entry.GetString("status");
      attempt.detail = entry.GetString("detail");
      attempt.mappings = static_cast<size_t>(entry.GetInt("mappings"));
      table.attempts.push_back(std::move(attempt));
    }
  }
  if (const json::Value* derivations = value.Find("derivations");
      derivations != nullptr) {
    for (const json::Value& entry : derivations->AsArray()) {
      DerivationRecord derivation;
      derivation.tgd = entry.GetString("tgd");
      derivation.origin = entry.GetString("origin", "semantic");
      derivation.tier = entry.GetString("tier");
      if (const json::Value* emitted = entry.Find("emitted");
          emitted != nullptr && emitted->is_bool()) {
        derivation.emitted = emitted->AsBool();
      }
      derivation.drop_reason = entry.GetString("drop_reason");
      if (const json::Value* covered = entry.Find("covered");
          covered != nullptr) {
        for (const json::Value& c : covered->AsArray()) {
          if (c.is_string()) derivation.covered.push_back(c.AsString());
        }
      }
      derivation.source_csg = entry.GetString("source_csg");
      derivation.target_csg = entry.GetString("target_csg");
      derivation.penalty = static_cast<int>(entry.GetInt("penalty"));
      derivation.variants = static_cast<size_t>(entry.GetInt("variants"));
      if (const json::Value* skolems = entry.Find("skolems");
          skolems != nullptr) {
        for (const json::Value& s : skolems->AsArray()) {
          SkolemDecision skolem;
          skolem.function = s.GetString("function");
          skolem.kind = s.GetString("kind");
          derivation.skolems.push_back(std::move(skolem));
        }
      }
      derivation.source_algebra = entry.GetString("source_algebra");
      derivation.target_algebra = entry.GetString("target_algebra");
      table.derivations.push_back(std::move(derivation));
    }
  }
  if (const json::Value* rejections = value.Find("rejections");
      rejections != nullptr) {
    for (const json::Value& entry : rejections->AsArray()) {
      RejectionRecord rejection;
      rejection.candidate = entry.GetString("candidate");
      rejection.filter = entry.GetString("filter");
      rejection.detail = entry.GetString("detail");
      rejection.tier = entry.GetString("tier");
      rejection.attempt = static_cast<size_t>(entry.GetInt("attempt"));
      rejection.covered = static_cast<size_t>(entry.GetInt("covered"));
      rejection.penalty = static_cast<int>(entry.GetInt("penalty"));
      table.rejections.push_back(std::move(rejection));
    }
  }
  table.rejections_dropped =
      static_cast<size_t>(value.GetInt("rejections_dropped"));
  return table;
}

}  // namespace semap::obs
