#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace semap::obs {

void Span::AddAttr(std::string_view key, std::string_view value) {
  if (tracer_ == nullptr) return;
  tracer_->spans_[static_cast<size_t>(id_)].attrs.emplace_back(
      std::string(key), std::string(value));
}

void Span::AddAttr(std::string_view key, int64_t value) {
  AddAttr(key, std::to_string(value));
}

void Span::End() {
  if (tracer_ == nullptr) return;
  tracer_->EndSpan(id_);
  tracer_ = nullptr;
}

Span Tracer::StartSpan(std::string_view name) {
  SpanRecord record;
  record.name = std::string(name);
  record.id = static_cast<int>(spans_.size());
  record.parent = open_.empty() ? -1 : open_.back();
  record.start_ns = NowNs();
  spans_.push_back(std::move(record));
  open_.push_back(spans_.back().id);
  return Span(this, spans_.back().id);
}

void Tracer::EndSpan(int id) {
  SpanRecord& record = spans_[static_cast<size_t>(id)];
  if (record.duration_ns >= 0) return;
  record.duration_ns = NowNs() - record.start_ns;
  // Out-of-order ends (a parent Span destroyed before a still-open child,
  // e.g. after a move) just remove the id wherever it sits in the stack.
  auto it = std::find(open_.rbegin(), open_.rend(), id);
  if (it != open_.rend()) open_.erase(std::next(it).base());
}

size_t Tracer::CountSpans(std::string_view name) const {
  size_t n = 0;
  for (const SpanRecord& s : spans_) {
    if (s.name == name) ++n;
  }
  return n;
}

int64_t Tracer::TotalDurationNs(std::string_view name) const {
  int64_t total = 0;
  for (const SpanRecord& s : spans_) {
    if (s.name == name && s.duration_ns >= 0) total += s.duration_ns;
  }
  return total;
}

void Tracer::Absorb(const Tracer& child, std::string_view root_name,
                    int64_t start_offset_ns) {
  const int base = static_cast<int>(spans_.size());
  SpanRecord root;
  root.name = std::string(root_name);
  root.id = base;
  root.parent = open_.empty() ? -1 : open_.back();
  root.start_ns = start_offset_ns;
  root.duration_ns = 0;
  spans_.push_back(std::move(root));
  for (const SpanRecord& s : child.spans_) {
    SpanRecord copy = s;
    copy.id += base + 1;
    copy.parent = s.parent < 0 ? base : s.parent + base + 1;
    copy.start_ns += start_offset_ns;
    if (copy.duration_ns < 0) copy.duration_ns = 0;  // still open in child
    // The grafted root covers its forest end to end.
    SpanRecord& r = spans_[static_cast<size_t>(base)];
    r.duration_ns = std::max(r.duration_ns,
                             copy.start_ns + copy.duration_ns - r.start_ns);
    spans_.push_back(std::move(copy));
  }
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void EmitSpan(const std::vector<SpanRecord>& spans,
              const std::vector<std::vector<int>>& children, int id,
              std::string* out) {
  const SpanRecord& s = spans[static_cast<size_t>(id)];
  *out += "{\"name\":\"" + JsonEscape(s.name) + "\"";
  *out += ",\"id\":" + std::to_string(s.id);
  *out += ",\"start_ns\":" + std::to_string(s.start_ns);
  *out += ",\"duration_ns\":" + std::to_string(s.duration_ns);
  if (!s.attrs.empty()) {
    *out += ",\"attrs\":{";
    bool first = true;
    for (const auto& [key, value] : s.attrs) {
      if (!first) *out += ",";
      first = false;
      *out += "\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
    }
    *out += "}";
  }
  const std::vector<int>& kids = children[static_cast<size_t>(id)];
  if (!kids.empty()) {
    *out += ",\"children\":[";
    for (size_t i = 0; i < kids.size(); ++i) {
      if (i > 0) *out += ",";
      EmitSpan(spans, children, kids[i], out);
    }
    *out += "]";
  }
  *out += "}";
}

}  // namespace

std::string Tracer::ToJson() const {
  std::vector<std::vector<int>> children(spans_.size());
  std::vector<int> roots;
  for (const SpanRecord& s : spans_) {
    if (s.parent < 0) {
      roots.push_back(s.id);
    } else {
      children[static_cast<size_t>(s.parent)].push_back(s.id);
    }
  }
  std::string out = "{\"schema\":\"semap.trace.v1\",";
  if (!trace_id_.empty()) {
    out += "\"trace_id\":\"" + JsonEscape(trace_id_) + "\",";
  }
  out += "\"spans\":[";
  for (size_t i = 0; i < roots.size(); ++i) {
    if (i > 0) out += ",";
    EmitSpan(spans_, children, roots[i], &out);
  }
  out += "]}";
  return out;
}

}  // namespace semap::obs
