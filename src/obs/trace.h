// Tracing: wall-clock spans over the discovery pipeline's phases.
//
// A Tracer records a tree of Spans — name, parent, start offset, duration,
// string attributes — for one run; the JSON export (ToJson) renders the
// tree for offline analysis and docs/OBSERVABILITY.md documents the span
// taxonomy the pipeline emits. Spans are RAII: StartSpan opens a span as a
// child of the innermost still-open span, and the Span object closes it on
// destruction (or explicitly via End).
//
// Disabled tracing is the default and costs nothing: a null Tracer*
// (obs::StartSpan(nullptr, ...) or an empty exec::RunContext) yields an
// inert Span — no allocation, no clock read, no branches beyond the null
// check. Tracers are single-threaded by design, matching the pipeline.
#ifndef SEMAP_OBS_TRACE_H_
#define SEMAP_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace semap::obs {

/// \brief One recorded span. Offsets are nanoseconds since the tracer was
/// constructed; duration_ns is -1 while the span is still open.
struct SpanRecord {
  std::string name;
  int id = -1;
  int parent = -1;  // -1 = root
  int64_t start_ns = 0;
  int64_t duration_ns = -1;
  std::vector<std::pair<std::string, std::string>> attrs;
};

class Tracer;

/// \brief RAII handle for an open span. Default-constructed (or moved-from)
/// handles are inert no-ops — the disabled-tracing fast path.
class Span {
 public:
  Span() = default;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept : tracer_(other.tracer_), id_(other.id_) {
    other.tracer_ = nullptr;
  }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      End();
      tracer_ = other.tracer_;
      id_ = other.id_;
      other.tracer_ = nullptr;
    }
    return *this;
  }
  ~Span() { End(); }

  /// Attach a key/value attribute (no-op on an inert span).
  void AddAttr(std::string_view key, std::string_view value);
  void AddAttr(std::string_view key, int64_t value);

  /// Close the span now; further calls are no-ops.
  void End();

  bool active() const { return tracer_ != nullptr; }

 private:
  friend class Tracer;
  Span(Tracer* tracer, int id) : tracer_(tracer), id_(id) {}

  Tracer* tracer_ = nullptr;
  int id_ = -1;
};

/// \brief Collects the span tree of one run.
class Tracer {
 public:
  Tracer() : epoch_(Clock::now()) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Open a span as a child of the innermost open span.
  Span StartSpan(std::string_view name);

  /// Request-scoped correlation id (the semap.rpc.v1 trace_id when this
  /// tracer records a served request); empty = standalone run. Rendered
  /// into the ToJson root so a trace document is joinable against the
  /// server's event stream and the client's --timing output.
  void set_trace_id(std::string_view id) { trace_id_ = id; }
  const std::string& trace_id() const { return trace_id_; }

  const std::vector<SpanRecord>& spans() const { return spans_; }

  /// Number of (open or closed) spans named `name`.
  size_t CountSpans(std::string_view name) const;

  /// Summed duration of all closed spans named `name`.
  int64_t TotalDurationNs(std::string_view name) const;

  /// Trace tree as JSON ({"schema":"semap.trace.v1","spans":[...]});
  /// children are nested under their parent span.
  std::string ToJson() const;

  /// Graft `child`'s whole span forest into this tracer under a new
  /// closed span named `root_name`, itself a child of the innermost open
  /// span. Tracers are single-threaded, so concurrent workers record
  /// into private tracers and the supervisor absorbs them (on its own
  /// thread) once each unit completes; `start_offset_ns` places the
  /// child's epoch on this tracer's clock so absorbed spans keep real
  /// start times. Still-open child spans are absorbed as zero-duration.
  void Absorb(const Tracer& child, std::string_view root_name,
              int64_t start_offset_ns);

  /// Nanoseconds since this tracer's epoch. Thread-safe (the epoch is
  /// immutable); workers use it to timestamp spans recorded in private
  /// tracers before the supervisor absorbs them.
  int64_t NowNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                epoch_)
        .count();
  }

 private:
  friend class Span;
  using Clock = std::chrono::steady_clock;

  void EndSpan(int id);

  std::string trace_id_;
  Clock::time_point epoch_;
  std::vector<SpanRecord> spans_;
  std::vector<int> open_;  // ids of open spans, innermost last
};

/// \brief Open a span on a nullable tracer: the canonical call site. A null
/// tracer returns an inert Span without touching the clock.
inline Span StartSpan(Tracer* tracer, std::string_view name) {
  return tracer == nullptr ? Span() : tracer->StartSpan(name);
}

/// \brief Escape `s` for embedding in a JSON string literal (shared by the
/// trace/metrics/bench exporters).
std::string JsonEscape(std::string_view s);

}  // namespace semap::obs

#endif  // SEMAP_OBS_TRACE_H_
