#include "obs/events.h"

#include "obs/trace.h"

namespace semap::obs {

WideEvent& WideEvent::Str(std::string_view key, std::string_view value) {
  body_ += ",\"";
  body_ += JsonEscape(key);
  body_ += "\":\"";
  body_ += JsonEscape(value);
  body_ += "\"";
  return *this;
}

WideEvent& WideEvent::Int(std::string_view key, int64_t value) {
  body_ += ",\"";
  body_ += JsonEscape(key);
  body_ += "\":";
  body_ += std::to_string(value);
  return *this;
}

WideEvent& WideEvent::Bool(std::string_view key, bool value) {
  body_ += ",\"";
  body_ += JsonEscape(key);
  body_ += value ? "\":true" : "\":false";
  return *this;
}

EventEmitter::EventEmitter(const std::string& path)
    : epoch_(std::chrono::steady_clock::now()),
      out_(path, std::ios::out | std::ios::trunc) {
  ok_ = static_cast<bool>(out_);
}

void EventEmitter::Emit(std::string_view type, const WideEvent& fields) {
  const int64_t ts = NowNs();
  // Render everything except the sequence number outside the lock, so
  // concurrent emitters (serve workers) serialize only on the final
  // append — the emitter sits on the request path when attached.
  std::string tail = ",\"ts_ns\":" + std::to_string(ts) + ",\"event\":\"" +
                     JsonEscape(type) + "\"";
  tail += fields.body();
  tail += "}\n";
  std::lock_guard<std::mutex> lock(mu_);
  if (!ok_) return;
  std::string line =
      "{\"schema\":\"semap.events.v1\",\"seq\":" + std::to_string(seq_++);
  line += tail;
  out_.write(line.data(), static_cast<std::streamsize>(line.size()));
  // One flush per line keeps a killed run's prefix on disk; readers must
  // still tolerate a torn final line (the write itself is not atomic).
  out_.flush();
  if (!out_) ok_ = false;
}

int64_t EventEmitter::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

}  // namespace semap::obs
