#include "obs/events.h"

#include "obs/trace.h"

namespace semap::obs {

WideEvent& WideEvent::Str(std::string_view key, std::string_view value) {
  body_ += ",\"";
  body_ += JsonEscape(key);
  body_ += "\":\"";
  body_ += JsonEscape(value);
  body_ += "\"";
  return *this;
}

WideEvent& WideEvent::Int(std::string_view key, int64_t value) {
  body_ += ",\"";
  body_ += JsonEscape(key);
  body_ += "\":";
  body_ += std::to_string(value);
  return *this;
}

WideEvent& WideEvent::Bool(std::string_view key, bool value) {
  body_ += ",\"";
  body_ += JsonEscape(key);
  body_ += value ? "\":true" : "\":false";
  return *this;
}

EventEmitter::EventEmitter(const std::string& path)
    : epoch_(std::chrono::steady_clock::now()),
      out_(path, std::ios::out | std::ios::trunc) {
  ok_ = static_cast<bool>(out_);
}

void EventEmitter::Emit(std::string_view type, const WideEvent& fields) {
  const int64_t ts = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  if (!ok_) return;
  out_ << "{\"schema\":\"semap.events.v1\",\"seq\":" << seq_++
       << ",\"ts_ns\":" << ts << ",\"event\":\"" << JsonEscape(type) << "\""
       << fields.body() << "}\n";
  // One flush per line keeps a killed run's prefix on disk; readers must
  // still tolerate a torn final line (the write itself is not atomic).
  out_.flush();
  if (!out_) ok_ = false;
}

int64_t EventEmitter::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

}  // namespace semap::obs
