// CM padding: grow a conceptual model with peripheral concepts so its
// size matches a published ontology (e.g. the 75-concept Bibliographic
// ontology behind DBLP1) without changing the connections among the core
// concepts — each auxiliary class hangs off a single anchor class through
// one functional relationship (aux -> anchor), so no new path between
// existing classes arises and the discovery search space grows
// realistically.
#ifndef SEMAP_DATASETS_PADDING_H_
#define SEMAP_DATASETS_PADDING_H_

#include <string>
#include <vector>

#include "cm/model.h"
#include "semantics/stree.h"
#include "util/status.h"

namespace semap::data {

/// \brief Add `count` auxiliary classes named "<prefix>0".."<prefix>N",
/// each with a key attribute and one functional relationship to an anchor
/// class (rotating through `anchors`).
Status PadCm(cm::ConceptualModel& model, const std::string& prefix, int count,
             const std::vector<std::string>& anchors);

/// \brief The paper's "#nodes in CM" metric: class nodes of the compiled
/// CM graph (classes + reified relationships, including the auto-reified
/// many-to-many binaries).
size_t CmNodeCount(const sem::AnnotatedSchema& side);

}  // namespace semap::data

#endif  // SEMAP_DATASETS_PADDING_H_
