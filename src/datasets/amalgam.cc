// Amalgam1 / Amalgam2 (Table 1 row 3): bibliography schemas designed by
// database students — the domain where the paper reports the semantic
// technique fared best. Amalgam1 is a small, quirky design (8 concepts,
// 15 tables: every functional relationship in its own two-column link
// table, authorship modeled only as firstAu/lastAu). Amalgam2 is a large,
// over-normalized design (26 concepts, 27 tables) with ISA hierarchies
// and reified relationships.
#include "cm/parser.h"
#include "datasets/builder_util.h"
#include "datasets/domains.h"
#include "semantics/er2rel.h"

namespace semap::data {

namespace {

constexpr const char* kSourceCm = R"(
cm amalgam1_er;
class Auth { aid key; aname; }
class Pub { pid key; ptitle; pyear; }
class Venue { vid key; vname; }
class Inst { iid key; iname; }
class Kword { kid key; kname; }
class Area { arid key; arname; }
rel pubVenue Pub -- Venue fwd 1..1 inv 0..*;
rel authInst Auth -- Inst fwd 0..1 inv 0..*;
rel firstAu Pub -- Auth fwd 0..1 inv 0..*;
rel lastAu Pub -- Auth fwd 0..1 inv 0..*;
rel venueArea Venue -- Area fwd 0..1 inv 0..*;
rel kwArea Kword -- Area fwd 0..1 inv 0..*;
rel advisor Auth -- Auth fwd 0..1 inv 0..*;
rel hasKw Pub -- Kword fwd 0..* inv 0..*;
rel cowrote Auth -- Auth fwd 0..* inv 0..*;
)";

constexpr const char* kTargetCm = R"(
cm amalgam2_er;
class Person { pkey key; pname; }
class Writer { wstyle; }
class Student { syear; }
class Editor2 { estart; }
class Work { wkey key; wtitle; wyear; }
class Article { apages; }
class Thesis { school2; }
class Forum { fkey key; fname; }
class Org2 { okey key; oname; }
class Keyword2 { kkey key; kname; }
class Domain2 { dkey key; dname; }
class Publisher2 { pbkey key; pbname; }
class Series2 { srkey key; srname; }
class Volume { vlkey key; vlno; }
class Issue { iskey key; isno; }
class Award2 { awkey key; awname; }
class Committee { cmkey key; cmname; }
class Country2 { ctkey key; ctname; }
isa Writer -> Person;
isa Student -> Person;
isa Editor2 -> Person;
isa Article -> Work;
isa Thesis -> Work;
disjoint Article, Thesis;
rel issueOf Issue -- Volume fwd 1..1 inv 0..*;
rel wwrote Writer -- Work fwd 0..* inv 1..*;
rel wkeyword Work -- Keyword2 fwd 0..* inv 0..*;
rel wdomain Work -- Domain2 fwd 0..* inv 0..*;
rel kwdomain Keyword2 -- Domain2 fwd 0..* inv 0..*;
rel collab Person -- Person fwd 0..* inv 0..*;
rel memberOf2 Person -- Org2 fwd 0..* inv 0..*;
reified Supervision {
  role supervisor -> Person part 0..*;
  role student -> Student part 0..*;
  attr yearStart;
}
reified Presentation {
  role pwork -> Work part 0..*;
  role pforum -> Forum part 0..*;
  attr slot;
}
)";

}  // namespace

Result<eval::Domain> BuildAmalgam() {
  SEMAP_ASSIGN_OR_RETURN(cm::ConceptualModel source_model,
                         cm::ParseCm(kSourceCm));
  sem::Er2RelOptions source_opts;
  source_opts.merge_functional_relationships = false;
  SEMAP_ASSIGN_OR_RETURN(sem::AnnotatedSchema source,
                         sem::Er2Rel(source_model, "Amalgam1", source_opts));

  SEMAP_ASSIGN_OR_RETURN(cm::ConceptualModel target_model,
                         cm::ParseCm(kTargetCm));
  sem::Er2RelOptions target_opts;
  target_opts.merge_functional_relationships = false;
  SEMAP_ASSIGN_OR_RETURN(sem::AnnotatedSchema target,
                         sem::Er2Rel(target_model, "Amalgam2", target_opts));

  eval::Domain domain;
  domain.name = "Amalgam";
  domain.source_label = "Amalgam1";
  domain.target_label = "Amalgam2";
  domain.source_cm_label = "amalgam1 ER";
  domain.target_cm_label = "amalgam2 ER";
  domain.source = std::move(source);
  domain.target = std::move(target);

  // Case 1 (both): author's institution against person's organization.
  {
    eval::TestCase c;
    c.name = "author-institution";
    c.correspondences = {
        Corr("Auth.aname", "Person.pname"),
        Corr("Inst.iname", "Org2.oname"),
    };
    c.benchmark = {Bench(
        "Auth(a, w0), authInst(a, i), Inst(i, w1) -> "
        "Person(p, w0), memberOf2(p, o), Org2(o, w1)")};
    domain.cases.push_back(std::move(c));
  }
  // Case 2 (both): publication venue against work presentation forum.
  {
    eval::TestCase c;
    c.name = "pub-venue";
    c.correspondences = {
        Corr("Pub.ptitle", "Work.wtitle"),
        Corr("Venue.vname", "Forum.fname"),
    };
    c.benchmark = {Bench(
        "Pub(p, w0, y), pubVenue(p, v), Venue(v, w1) -> "
        "Presentation(wk, fk, sl), Work(wk, w0, y2), Forum(fk, w1)")};
    domain.cases.push_back(std::move(c));
  }
  // Case 3 (semantic only): a publication's research area exists in the
  // source only as the composition hasKw ∘ kwArea.
  {
    eval::TestCase c;
    c.name = "pub-area";
    c.correspondences = {
        Corr("Pub.ptitle", "Work.wtitle"),
        Corr("Area.arname", "Domain2.dname"),
    };
    c.benchmark = {Bench(
        "Pub(p, w0, y), hasKw(p, k), kwArea(k, ar), Area(ar, w1) -> "
        "Work(wk, w0, y2), wdomain(wk, d), Domain2(d, w1)")};
    domain.cases.push_back(std::move(c));
  }
  // Case 4 (semantic only): author's research area — a composition on the
  // source paired with a two-hop many-to-many connection on the target.
  {
    eval::TestCase c;
    c.name = "author-area";
    c.correspondences = {
        Corr("Auth.aname", "Person.pname"),
        Corr("Area.arname", "Domain2.dname"),
    };
    c.benchmark = {Bench(
        "firstAu(p, a), Auth(a, w0), hasKw(p, k), kwArea(k, ar), "
        "Area(ar, w1) -> "
        "Person(pp, w0), wwrote(pp, wk), wdomain(wk, d), Domain2(d, w1)")};
    domain.cases.push_back(std::move(c));
  }
  // Case 5 (semantic only): venue's research area against the forum's
  // works' domains — the target side needs two relationship tables the
  // chase never joins.
  {
    eval::TestCase c;
    c.name = "venue-area";
    c.correspondences = {
        Corr("Venue.vname", "Forum.fname"),
        Corr("Area.arname", "Domain2.dname"),
    };
    c.benchmark = {Bench(
        "Venue(v, w0), venueArea(v, ar), Area(ar, w1) -> "
        "Presentation(wk, fk, sl), Forum(fk, w0), wdomain(wk, d), "
        "Domain2(d, w1)")};
    domain.cases.push_back(std::move(c));
  }
  // Case 6 (both, two benchmarks): authorship is modeled as firstAu and
  // lastAu in the source; both pair with the target's wwrote.
  {
    eval::TestCase c;
    c.name = "authorship";
    c.correspondences = {
        Corr("Pub.ptitle", "Work.wtitle"),
        Corr("Auth.aname", "Person.pname"),
    };
    c.benchmark = {
        Bench("firstAu(p, a), Auth(a, w0), Pub(p, w1, y) -> "
              "Person(pp, w0), wwrote(pp, wk), Work(wk, w1, y2)"),
        Bench("lastAu(p, a), Auth(a, w0), Pub(p, w1, y) -> "
              "Person(pp, w0), wwrote(pp, wk), Work(wk, w1, y2)"),
    };
    domain.cases.push_back(std::move(c));
  }
  // Case 7 (both): keywords of a publication.
  {
    eval::TestCase c;
    c.name = "pub-keyword";
    c.correspondences = {
        Corr("Pub.ptitle", "Work.wtitle"),
        Corr("Kword.kname", "Keyword2.kname"),
    };
    c.benchmark = {Bench(
        "Pub(p, w0, y), hasKw(p, k), Kword(k, w1) -> "
        "Work(wk, w0, y2), wkeyword(wk, kk), Keyword2(kk, w1)")};
    domain.cases.push_back(std::move(c));
  }
  return domain;
}

}  // namespace semap::data
