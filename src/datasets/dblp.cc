// DBLP1 / DBLP2 (Table 1 row 1): the source follows the large
// Bibliographic ontology (75 concepts) with ISA hierarchies collapsed
// into leaf tables; the target is the compact DBLP2 ER model (7 concepts)
// with every class, many-to-many and functional relationship in its own
// table.
#include "cm/parser.h"
#include "datasets/builder_util.h"
#include "datasets/domains.h"
#include "datasets/padding.h"
#include "semantics/er2rel.h"

namespace semap::data {

namespace {

constexpr const char* kSourceCm = R"(
cm bibliographic;
class Person { pid key; name; }
class Author { homepage; }
class Editor { editorSince; }
class Document { docid key; dtitle; dyear; }
class JournalArticle { jvolume; }
class ConferencePaper;
class Book { isbn; }
class PhDThesis { school; }
class Journal { jid key; jname; }
class Conference { cid key; cname; }
class Publisher { pubid key; pubname; }
class Institution { instid key; instname; }
class Topic { tid key; tname; }
class Series { serid key; sername; }
class Proceedings { procid key; procname; }
class Award { awid key; awname; }
isa Author -> Person;
isa Editor -> Person;
isa JournalArticle -> Document;
isa ConferencePaper -> Document;
isa Book -> Document;
isa PhDThesis -> Document;
disjoint Book, PhDThesis;
rel appearedIn JournalArticle -- Journal fwd 1..1 inv 0..*;
rel partOfProc ConferencePaper -- Proceedings fwd 1..1 inv 0..*;
rel ofConf Proceedings -- Conference fwd 1..1 inv 0..*;
rel publishedBy Book -- Publisher fwd 0..1 inv 0..*;
rel inSeries Book -- Series fwd 0..1 inv 0..*;
rel wonBy Award -- Person fwd 0..1 inv 0..*;
rel wrote Author -- Document fwd 1..* inv 1..*;
rel hasTopic Document -- Topic fwd 0..* inv 0..*;
rel affiliated Person -- Institution fwd 0..* inv 0..*;
rel friendOf Person -- Person fwd 0..* inv 0..*;
rel publisherTopics Publisher -- Topic fwd 0..* inv 0..*;
rel supervises Editor -- Author fwd 0..* inv 0..*;
reified Citation {
  role citing -> Document part 0..*;
  role cited -> Document part 0..*;
}
reified ReviewAssign {
  role reviewer -> Editor part 0..*;
  role paper -> JournalArticle part 0..*;
  attr score;
}
)";

constexpr const char* kTargetCm = R"(
cm dblp2_er;
class Publication { pubkey key; title; year; }
class Article { journal; volume; }
class InProceedings { booktitle; }
class Contributor { aname key; homepage; editorSince; }
class Proceedings { prockey key; ptitle; pyear; }
isa Article -> Publication;
isa InProceedings -> Publication;
disjoint Article, InProceedings;
rel authored Contributor -- Publication fwd 0..* inv 1..*;
rel appearsAt Contributor -- Proceedings fwd 0..* inv 0..*;
rel inProc InProceedings -- Proceedings fwd 1..1 inv 0..*;
rel firstAuthor Publication -- Contributor fwd 0..1 inv 0..*;
)";

}  // namespace

Result<eval::Domain> BuildDblp() {
  SEMAP_ASSIGN_OR_RETURN(cm::ConceptualModel source_model,
                         cm::ParseCm(kSourceCm));
  std::set<std::string> core_classes;
  for (const cm::CmClass& cls : source_model.classes()) {
    core_classes.insert(cls.name);
  }
  for (const cm::ReifiedRelationship& r : source_model.reified()) {
    core_classes.insert(r.class_name);
  }
  // The Bibliographic ontology has 75 concepts; the core above compiles to
  // 24 graph nodes (16 classes + 6 reified many-to-many + 2 reified), so
  // 51 peripheral concepts complete the count.
  SEMAP_RETURN_NOT_OK(PadCm(source_model, "BiblioAux", 51,
                            {"Document", "Person", "Journal", "Topic",
                             "Institution", "Conference"}));
  sem::Er2RelOptions source_opts;
  source_opts.merge_functional_relationships = true;
  source_opts.merge_isa_into_leaves = true;
  source_opts.only_classes = core_classes;
  SEMAP_ASSIGN_OR_RETURN(sem::AnnotatedSchema source,
                         sem::Er2Rel(source_model, "DBLP1", source_opts));

  SEMAP_ASSIGN_OR_RETURN(cm::ConceptualModel target_model,
                         cm::ParseCm(kTargetCm));
  sem::Er2RelOptions target_opts;
  target_opts.merge_functional_relationships = false;
  target_opts.merge_isa_into_leaves = false;
  SEMAP_ASSIGN_OR_RETURN(sem::AnnotatedSchema target,
                         sem::Er2Rel(target_model, "DBLP2", target_opts));

  eval::Domain domain;
  domain.name = "DBLP";
  domain.source_label = "DBLP1";
  domain.target_label = "DBLP2";
  domain.source_cm_label = "Bibliographic";
  domain.target_cm_label = "DBLP2 ER";
  domain.source = std::move(source);
  domain.target = std::move(target);

  // Case 1 (both techniques): journal article with its journal name,
  // against the target's article subclass carrying journal as text.
  {
    eval::TestCase c;
    c.name = "journal-article";
    c.correspondences = {
        Corr("JournalArticle.dtitle", "Publication.title"),
        Corr("Journal.jname", "Article.journal"),
    };
    c.benchmark = {Bench(
        "JournalArticle(d, w0, y, jv, j), Journal(j, w1) -> "
        "Publication(p, w0, y2), Article(p, w1, v2)")};
    domain.cases.push_back(std::move(c));
  }
  // Case 2 (both): authorship via the wrote / authored many-to-many.
  {
    eval::TestCase c;
    c.name = "authorship";
    c.correspondences = {
        Corr("Author.name", "Contributor.aname"),
        Corr("JournalArticle.dtitle", "Publication.title"),
    };
    c.benchmark = {Bench(
        "Author(a, w0, h), wrote(a, d), JournalArticle(d, w1, y, jv, j) -> "
        "Contributor(w0, h2, e2), authored(w0, p), Publication(p, w1, y2)")};
    domain.cases.push_back(std::move(c));
  }
  // Case 3 (semantic only): authors appearing at proceedings — a
  // composition through two many-to-many / functional hops the chase
  // cannot assemble (Example 1.1 situation).
  {
    eval::TestCase c;
    c.name = "author-at-proceedings";
    c.correspondences = {
        Corr("Author.name", "appearsAt.aname"),
        Corr("Proceedings.procname", "Proceedings.ptitle"),
    };
    c.benchmark = {Bench(
        "Author(a, w0, h), wrote(a, d), ConferencePaper(d, t, y, pr), "
        "Proceedings(pr, w1, c) -> "
        "Contributor(w0, h2, e2), appearsAt(w0, pk), "
        "Proceedings(pk, w1, py)")};
    domain.cases.push_back(std::move(c));
  }
  // Case 4 (semantic only): merging the author / editor leaf tables via
  // the Person superclass invisible to RICs (Example 1.2 situation).
  {
    eval::TestCase c;
    c.name = "contributor-merge";
    c.correspondences = {
        Corr("Author.name", "Contributor.aname"),
        Corr("Author.homepage", "Contributor.homepage"),
        Corr("Editor.editorSince", "Contributor.editorSince"),
    };
    c.benchmark = {Bench(
        "Author(p, w0, w1), Editor(p, n2, w2) -> Contributor(w0, w1, w2)")};
    domain.cases.push_back(std::move(c));
  }
  // Case 5 (both): first-author projection of the authorship relation.
  {
    eval::TestCase c;
    c.name = "first-author";
    c.correspondences = {
        Corr("JournalArticle.dtitle", "Publication.title"),
        Corr("Author.name", "firstAuthor.aname"),
    };
    c.benchmark = {Bench(
        "Author(a, w1, h), wrote(a, d), JournalArticle(d, w0, y, jv, j) -> "
        "Publication(p, w0, y2), firstAuthor(p, w1)")};
    domain.cases.push_back(std::move(c));
  }
  // Case 6 (both): conference papers and the conference behind their
  // proceedings.
  {
    eval::TestCase c;
    c.name = "paper-conference";
    c.correspondences = {
        Corr("ConferencePaper.dtitle", "Publication.title"),
        Corr("Conference.cname", "Proceedings.ptitle"),
    };
    c.benchmark = {Bench(
        "ConferencePaper(d, w0, y, pr), Proceedings(pr, pn, c), "
        "Conference(c, w1) -> "
        "Publication(p, w0, y2), inProc(p, pk), Proceedings(pk, w1, py)")};
    domain.cases.push_back(std::move(c));
  }
  return domain;
}

}  // namespace semap::data
