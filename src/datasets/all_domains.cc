#include "datasets/domains.h"

namespace semap::data {

Result<std::vector<eval::Domain>> BuildAllDomains() {
  std::vector<eval::Domain> out;
  {
    SEMAP_ASSIGN_OR_RETURN(eval::Domain d, BuildDblp());
    out.push_back(std::move(d));
  }
  {
    SEMAP_ASSIGN_OR_RETURN(eval::Domain d, BuildMondial());
    out.push_back(std::move(d));
  }
  {
    SEMAP_ASSIGN_OR_RETURN(eval::Domain d, BuildAmalgam());
    out.push_back(std::move(d));
  }
  {
    SEMAP_ASSIGN_OR_RETURN(eval::Domain d, Build3Sdb());
    out.push_back(std::move(d));
  }
  {
    SEMAP_ASSIGN_OR_RETURN(eval::Domain d, BuildUniversity());
    out.push_back(std::move(d));
  }
  {
    SEMAP_ASSIGN_OR_RETURN(eval::Domain d, BuildHotel());
    out.push_back(std::move(d));
  }
  {
    SEMAP_ASSIGN_OR_RETURN(eval::Domain d, BuildNetwork());
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace semap::data
