// HotelA / HotelB (Table 1 row 6): the I3CON hotel ontologies,
// forward-engineered into relational schemas as the paper did. Small CMs
// of equal size (7 concepts each) with different modeling choices: the
// source splits rooms into disjoint suite/standard subclasses and reifies
// bookings; the target keeps one Unit class carrying both fee and bed
// attributes and adds a direct customer-property many-to-many. The
// disjointness of Suite and Standard is what forces the unit-attributes
// case to split into two mappings.
#include "cm/parser.h"
#include "datasets/builder_util.h"
#include "datasets/domains.h"
#include "semantics/er2rel.h"

namespace semap::data {

namespace {

constexpr const char* kSourceCm = R"(
cm hotelA_onto;
class Hotel { hid key; hname; }
class Room { rid key; rno; }
class Suite { sfee; }
class Standard { beds; }
class Guest { gid key; gname; }
class RatePlan { rpid key; rpname; }
isa Suite -> Room;
isa Standard -> Room;
disjoint Suite, Standard;
covers Room = Suite, Standard;
rel inHotel Room -- Hotel fwd 1..1 inv 0..*;
rel ratedAs Room -- RatePlan fwd 0..1 inv 0..*;
reified Booking {
  role bguest -> Guest part 0..*;
  role broom -> Room part 0..*;
  attr checkin;
}
)";

constexpr const char* kTargetCm = R"(
cm hotelB_onto;
class Property { pid key; pname; }
class Unit { uid key; uname; fee2; beds2; }
class Customer { cid key; cname; }
class Feature { fid key; fname; }
rel unitOf Unit -- Property fwd 1..1 inv 0..*;
rel stayedAt Customer -- Property fwd 0..* inv 0..*;
rel hasFeature Property -- Feature fwd 0..* inv 0..*;
reified Stay {
  role sguest -> Customer part 0..*;
  role sunit -> Unit part 0..*;
  attr checkin;
}
)";

}  // namespace

Result<eval::Domain> BuildHotel() {
  SEMAP_ASSIGN_OR_RETURN(cm::ConceptualModel source_model,
                         cm::ParseCm(kSourceCm));
  sem::Er2RelOptions source_opts;
  source_opts.merge_functional_relationships = true;
  // HotelA's RatePlan concept has no table (6 tables, 7 CM concepts).
  source_opts.only_classes = {"Hotel", "Room",  "Suite",  "Standard",
                              "Guest", "Booking"};
  SEMAP_ASSIGN_OR_RETURN(sem::AnnotatedSchema source,
                         sem::Er2Rel(source_model, "HotelA", source_opts));

  SEMAP_ASSIGN_OR_RETURN(cm::ConceptualModel target_model,
                         cm::ParseCm(kTargetCm));
  sem::Er2RelOptions target_opts;
  target_opts.merge_functional_relationships = true;
  // HotelB's Feature concept has no table (5 tables, 7 CM concepts).
  target_opts.only_classes = {"Property", "Unit", "Customer", "Stay"};
  SEMAP_ASSIGN_OR_RETURN(sem::AnnotatedSchema target,
                         sem::Er2Rel(target_model, "HotelB", target_opts));

  eval::Domain domain;
  domain.name = "Hotel";
  domain.source_label = "HotelA";
  domain.target_label = "HotelB";
  domain.source_cm_label = "hotelA onto.";
  domain.target_cm_label = "hotelB onto.";
  domain.source = std::move(source);
  domain.target = std::move(target);

  // Case 1 (both): room-in-hotel against unit-of-property.
  {
    eval::TestCase c;
    c.name = "room-property";
    c.correspondences = {
        Corr("Room.rno", "Unit.uname"),
        Corr("Hotel.hname", "Property.pname"),
    };
    c.benchmark = {Bench(
        "Room(r, w0, h), Hotel(h, w1) -> "
        "Unit(u, w0, f2, b2, p), Property(p, w1)")};
    domain.cases.push_back(std::move(c));
  }
  // Case 2 (both): bookings against stays (reified to reified).
  {
    eval::TestCase c;
    c.name = "booking-stay";
    c.correspondences = {
        Corr("Guest.gname", "Customer.cname"),
        Corr("Room.rno", "Unit.uname"),
        Corr("Booking.checkin", "Stay.checkin"),
    };
    c.benchmark = {Bench(
        "Booking(g, r, w2), Guest(g, w0), Room(r, w1, h) -> "
        "Stay(cu, un, w2), Customer(cu, w0), Unit(un, w1, f2, b2, p)")};
    domain.cases.push_back(std::move(c));
  }
  // Case 3 (both): which guests stayed at which hotels.
  {
    eval::TestCase c;
    c.name = "guest-hotel";
    c.correspondences = {
        Corr("Guest.gname", "Customer.cname"),
        Corr("Hotel.hname", "Property.pname"),
    };
    c.benchmark = {Bench(
        "Guest(g, w0), Booking(g, r, ck), Room(r, rn, h), Hotel(h, w1) -> "
        "Customer(cu, w0), stayedAt(cu, p), Property(p, w1)")};
    domain.cases.push_back(std::move(c));
  }
  // Case 4 (two benchmarks): suite fees and standard-room beds both map
  // into Unit — but Suite and Standard are disjoint, so the single
  // three-node source tree is inconsistent and must split in two.
  {
    eval::TestCase c;
    c.name = "unit-attributes";
    c.correspondences = {
        Corr("Room.rno", "Unit.uname"),
        Corr("Suite.sfee", "Unit.fee2"),
        Corr("Standard.beds", "Unit.beds2"),
    };
    c.benchmark = {
        Bench("Suite(r, w1), Room(r, w0, h) -> Unit(u, w0, w1, b2, p)"),
        Bench("Standard(r, w1), Room(r, w0, h) -> Unit(u, w0, f2, w1, p)"),
    };
    domain.cases.push_back(std::move(c));
  }
  // Case 5 (semantic only): guests' suite stays — the chase cannot reach
  // Suite from a Room atom (the RIC points the other way).
  {
    eval::TestCase c;
    c.name = "suite-stay";
    c.correspondences = {
        Corr("Guest.gname", "Customer.cname"),
        Corr("Suite.sfee", "Unit.fee2"),
    };
    c.benchmark = {Bench(
        "Guest(g, w0), Booking(g, r, ck), Suite(r, w1) -> "
        "Customer(cu, w0), Stay(cu, un, ck2), Unit(un, u2, w1, b2, p)")};
    domain.cases.push_back(std::move(c));
  }
  return domain;
}

}  // namespace semap::data
