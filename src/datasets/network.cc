// NetworkA / NetworkB (Table 1 row 7): the I3CON network ontologies,
// forward-engineered into relational schemas. Both sides collapse an ISA
// hierarchy into leaf tables (device types on A, ticket types on B), both
// mark containment relationships as partOf, and A models the
// interface-subnet association only through VLANs — a two-hop
// many-to-many composition the chase cannot assemble.
#include "cm/parser.h"
#include "datasets/builder_util.h"
#include "datasets/domains.h"
#include "datasets/padding.h"
#include "semantics/er2rel.h"

namespace semap::data {

namespace {

constexpr const char* kSourceCm = R"(
cm networkA_onto;
class Device { devid key; devname; }
class Router { firmware; }
class Switch { ports; }
class Host { osname; }
class Admin { admid key; aname; }
class NetAdmin { certlevel; }
class SysAdmin { shift; }
class Interface { ifid key; ifname; speed; }
class Subnet { snid key; cidr; }
class Vlan { vlanid key; vname; }
class Site { siteid key; sitename; }
class Rack { rackid key; rackno; }
class Vendor { vendid key; vendname; }
class Circuit { cirid key; cirname; }
isa Router -> Device;
isa Switch -> Device;
isa Host -> Device;
disjoint Router, Switch, Host;
isa NetAdmin -> Admin;
isa SysAdmin -> Admin;
rel partof ifOf Interface -- Device fwd 1..1 inv 0..*;
rel mirrorsTo Interface -- Device fwd 0..1 inv 0..*;
rel partof rackAt Rack -- Site fwd 1..1 inv 0..*;
rel madeBy Router -- Vendor fwd 0..1 inv 0..*;
rel provisionedOn Circuit -- Site fwd 0..1 inv 0..*;
rel onVlan Interface -- Vlan fwd 0..* inv 0..*;
rel snVlan Subnet -- Vlan fwd 0..* inv 0..*;
rel peersWith Router -- Router fwd 0..* inv 0..*;
rel adminSite Admin -- Site fwd 0..* inv 0..*;
reified Link {
  role endA -> Interface part 0..*;
  role endB -> Interface part 0..*;
  attr bandwidth;
}
reified Assignment {
  role aadmin -> Admin part 0..*;
  role adevice -> Device part 0..*;
  attr role2;
}
)";

constexpr const char* kTargetCm = R"(
cm networkB_onto;
class Node2 { ndid key; nname2; }
class Port2 { ptid key; pname2; pspeed; }
class Net2 { netid key; prefix2; }
class Lan2 { lanid key; lname2; }
class Campus { cpid key; cpname; }
class Cabinet { cbid key; cbname; }
class Operator { opid key; opname; opcert; opshift; }
class Maker { mkid2 key; mkname2; }
class Line2 { lnid key; lnname2; }
class Ticket { tkid key; tktitle; }
class Incident { sev; }
class Change { risk; }
class Ruleset { rsid key; rsname; }
class Window2 { wnid key; wname2; }
class Zone2 { znid key; znname; }
isa Incident -> Ticket;
isa Change -> Ticket;
disjoint Incident, Change;
rel partof portOf Port2 -- Node2 fwd 1..1 inv 0..*;
rel portNet Port2 -- Net2 fwd 0..1 inv 0..*;
rel partof cabinetAt Cabinet -- Campus fwd 1..1 inv 0..*;
rel nodeCab Node2 -- Cabinet fwd 0..1 inv 0..*;
rel madeBy2 Node2 -- Maker fwd 0..1 inv 0..*;
rel lineAt Line2 -- Campus fwd 0..1 inv 0..*;
rel incNode Incident -- Node2 fwd 0..1 inv 0..*;
rel chgNode Change -- Node2 fwd 0..1 inv 0..*;
rel zoneOf Zone2 -- Campus fwd 1..1 inv 0..*;
rel rsFor Ruleset -- Node2 fwd 0..1 inv 0..*;
rel winFor Window2 -- Change fwd 0..1 inv 0..*;
rel portLan Port2 -- Lan2 fwd 0..* inv 0..*;
rel opCampus Operator -- Campus fwd 0..* inv 0..*;
rel nodePeers Node2 -- Node2 fwd 0..* inv 0..*;
reified Connection {
  role cendA -> Port2 part 0..*;
  role cendB -> Port2 part 0..*;
  attr cbw;
}
reified Assignment2 {
  role aop -> Operator part 0..*;
  role anode -> Node2 part 0..*;
  attr arole;
}
)";

}  // namespace

Result<eval::Domain> BuildNetwork() {
  SEMAP_ASSIGN_OR_RETURN(cm::ConceptualModel source_model,
                         cm::ParseCm(kSourceCm));
  std::set<std::string> source_core;
  for (const cm::CmClass& cls : source_model.classes()) {
    source_core.insert(cls.name);
  }
  source_core.insert("Link");
  source_core.insert("Assignment");
  // Core graph: 14 classes + 4 auto-reified m:n + 2 reified = 20 nodes;
  // 8 peripheral concepts complete the published 28.
  SEMAP_RETURN_NOT_OK(PadCm(source_model, "NetAux", 8,
                            {"Device", "Interface", "Site"}));
  sem::Er2RelOptions source_opts;
  source_opts.merge_functional_relationships = true;
  source_opts.merge_isa_into_leaves = true;
  source_opts.only_classes = source_core;
  SEMAP_ASSIGN_OR_RETURN(sem::AnnotatedSchema source,
                         sem::Er2Rel(source_model, "NetworkA", source_opts));

  SEMAP_ASSIGN_OR_RETURN(cm::ConceptualModel target_model,
                         cm::ParseCm(kTargetCm));
  std::set<std::string> target_core;
  for (const cm::CmClass& cls : target_model.classes()) {
    target_core.insert(cls.name);
  }
  target_core.insert("Connection");
  target_core.insert("Assignment2");
  // Core graph: 15 classes + 3 auto-reified m:n + 2 reified = 20 nodes; 7
  // peripheral concepts complete the published 27.
  SEMAP_RETURN_NOT_OK(PadCm(target_model, "NetBAux", 7,
                            {"Node2", "Port2", "Campus"}));
  sem::Er2RelOptions target_opts;
  target_opts.merge_functional_relationships = true;
  target_opts.merge_isa_into_leaves = true;
  target_opts.only_classes = target_core;
  SEMAP_ASSIGN_OR_RETURN(sem::AnnotatedSchema target,
                         sem::Er2Rel(target_model, "NetworkB", target_opts));

  eval::Domain domain;
  domain.name = "Network";
  domain.source_label = "NetworkA";
  domain.target_label = "NetworkB";
  domain.source_cm_label = "networkA onto.";
  domain.target_cm_label = "networkB onto.";
  domain.source = std::move(source);
  domain.target = std::move(target);

  // Case 1 (semantic only; exercises the partOf preference): interfaces
  // of a device — ifOf is partOf like the target's portOf; the parallel
  // mirrorsTo relationship must lose.
  {
    eval::TestCase c;
    c.name = "interface-device";
    c.correspondences = {
        Corr("Interface.ifname", "Port2.pname2"),
        Corr("Router.devname", "Node2.nname2"),
    };
    c.benchmark = {Bench(
        "Interface(i, w0, sp, d, m), Router(d, w1, fw, vn) -> "
        "Port2(p, w0, ps, nd, nt), Node2(nd, w1, cb, mk)")};
    domain.cases.push_back(std::move(c));
  }
  // Case 2 (both): interface VLANs against port LANs.
  {
    eval::TestCase c;
    c.name = "port-lan";
    c.correspondences = {
        Corr("Interface.ifname", "Port2.pname2"),
        Corr("Vlan.vname", "Lan2.lname2"),
    };
    c.benchmark = {Bench(
        "Interface(i, w0, sp, d, m), onVlan(i, v), Vlan(v, w1) -> "
        "Port2(p, w0, ps, nd, nt), portLan(p, l), Lan2(l, w1)")};
    domain.cases.push_back(std::move(c));
  }
  // Case 3 (both): links against connections (reified to reified).
  {
    eval::TestCase c;
    c.name = "link-connection";
    c.correspondences = {
        Corr("Interface.ifname", "Port2.pname2"),
        Corr("Link.bandwidth", "Connection.cbw"),
    };
    c.benchmark = {Bench(
        "Link(i, j, w1), Interface(i, w0, sp, d, m) -> "
        "Connection(p, q, w1), Port2(p, w0, ps, nd, nt)")};
    domain.cases.push_back(std::move(c));
  }
  // Case 4 (both): racks at sites against cabinets at campuses (partOf on
  // both sides).
  {
    eval::TestCase c;
    c.name = "rack-campus";
    c.correspondences = {
        Corr("Rack.rackno", "Cabinet.cbname"),
        Corr("Site.sitename", "Campus.cpname"),
    };
    c.benchmark = {Bench(
        "Rack(r, w0, s), Site(s, w1) -> Cabinet(cb, w0, cp), Campus(cp, w1)")};
    domain.cases.push_back(std::move(c));
  }
  // Case 5 (semantic only): merging the netadmin / sysadmin leaf tables
  // into Operator through the Admin superclass (Example 1.2).
  {
    eval::TestCase c;
    c.name = "operator-merge";
    c.correspondences = {
        Corr("NetAdmin.aname", "Operator.opname"),
        Corr("NetAdmin.certlevel", "Operator.opcert"),
        Corr("SysAdmin.shift", "Operator.opshift"),
    };
    c.benchmark = {Bench(
        "NetAdmin(a, w0, w1), SysAdmin(a, n2, w2) -> "
        "Operator(o, w0, w1, w2)")};
    domain.cases.push_back(std::move(c));
  }
  // Case 6 (semantic only): interface-subnet exists in A only as the
  // onVlan ∘ snVlan composition; B has the direct functional portNet.
  {
    eval::TestCase c;
    c.name = "interface-subnet";
    c.correspondences = {
        Corr("Interface.ifname", "Port2.pname2"),
        Corr("Subnet.cidr", "Net2.prefix2"),
    };
    c.benchmark = {Bench(
        "Interface(i, w0, sp, d, m), onVlan(i, v), snVlan(sn, v), "
        "Subnet(sn, w1) -> "
        "Port2(p, w0, ps, nd, w1x), Net2(w1x, w1)")};
    domain.cases.push_back(std::move(c));
  }
  return domain;
}

}  // namespace semap::data
