// The paper's motivating examples, as ready-made evaluation domains:
//   Example 1.1 / 3.2 / 3.3 / 3.4 — bookstore (minimally lossy join)
//   Example 1.2 — employee ISA hierarchies encoded differently
//   Example 1.3 — partOf discrimination (chairOf vs deanOf)
//   Example 3.1 — project management (anchored functional trees)
//   Figure 4    — reified n-ary Sell relationship
#ifndef SEMAP_DATASETS_EXAMPLES_H_
#define SEMAP_DATASETS_EXAMPLES_H_

#include "eval/experiment.h"
#include "util/result.h"

namespace semap::data {

Result<eval::Domain> BuildBookstoreExample();
Result<eval::Domain> BuildEmployeeIsaExample();
Result<eval::Domain> BuildPartOfExample();
Result<eval::Domain> BuildProjectExample();
Result<eval::Domain> BuildSalesReifiedExample();

}  // namespace semap::data

#endif  // SEMAP_DATASETS_EXAMPLES_H_
