#include "datasets/examples.h"

#include "datasets/builder_util.h"

namespace semap::data {

Result<eval::Domain> BuildBookstoreExample() {
  // Example 1.1: person writes book, book sold at bookstore; the target
  // pairs authors directly with the bookstores stocking their books.
  SEMAP_ASSIGN_OR_RETURN(sem::AnnotatedSchema source, AnnotatedFromText(
      R"(schema bookstore_src;
         table person(pname) key(pname);
         table book(bid) key(bid);
         table bookstore(sid) key(sid);
         table writes(pname, bid) key(pname, bid)
           fk r1 (pname) -> person(pname)
           fk r2 (bid) -> book(bid);
         table soldAt(bid, sid) key(bid, sid)
           fk r3 (bid) -> book(bid)
           fk r4 (sid) -> bookstore(sid);)",
      R"(cm bookstore_src_cm;
         class Person { pname key; }
         class Book { bid key; }
         class Bookstore { sid key; }
         rel writes Person -- Book fwd 0..* inv 1..*;
         rel soldAt Book -- Bookstore fwd 0..* inv 0..*;)",
      R"(semantics person { node p: Person; anchor p; col pname -> p.pname; }
         semantics book { node b: Book; anchor b; col bid -> b.bid; }
         semantics bookstore { node s: Bookstore; anchor s; col sid -> s.sid; }
         semantics writes {
           node p: Person; node b: Book;
           edge writes p b;
           anchor writes$0;
           col pname -> p.pname; col bid -> b.bid;
         }
         semantics soldAt {
           node b: Book; node s: Bookstore;
           edge soldAt b s;
           anchor soldAt$0;
           col bid -> b.bid; col sid -> s.sid;
         })"));
  SEMAP_ASSIGN_OR_RETURN(sem::AnnotatedSchema target, AnnotatedFromText(
      R"(schema bookstore_tgt;
         table author(aname) key(aname);
         table store(sid) key(sid);
         table hasBookSoldAt(aname, sid) key(aname, sid)
           fk (aname) -> author(aname)
           fk (sid) -> store(sid);)",
      R"(cm bookstore_tgt_cm;
         class Author { aname key; }
         class Bookstore { sid key; }
         rel hasBookSoldAt Author -- Bookstore fwd 0..* inv 0..*;)",
      R"(semantics author { node a: Author; anchor a; col aname -> a.aname; }
         semantics store { node s: Bookstore; anchor s; col sid -> s.sid; }
         semantics hasBookSoldAt {
           node a: Author; node s: Bookstore;
           edge hasBookSoldAt a s;
           anchor hasBookSoldAt$0;
           col aname -> a.aname; col sid -> s.sid;
         })"));

  eval::Domain domain;
  domain.name = "bookstore-example";
  domain.source_label = "bookstore_src";
  domain.target_label = "bookstore_tgt";
  domain.source_cm_label = "bookstore ER";
  domain.target_cm_label = "bookstore ontology";
  domain.source = std::move(source);
  domain.target = std::move(target);

  eval::TestCase m5;
  m5.name = "author-bookstore-composition";  // the paper's M5
  m5.correspondences = {Corr("person.pname", "hasBookSoldAt.aname"),
                        Corr("bookstore.sid", "hasBookSoldAt.sid")};
  m5.benchmark = {Bench("person(w0), writes(w0, b), soldAt(b, w1), "
                        "bookstore(w1) -> hasBookSoldAt(w0, w1)")};
  domain.cases.push_back(std::move(m5));
  return domain;
}

Result<eval::Domain> BuildEmployeeIsaExample() {
  // Example 1.2: source encodes the ISA hierarchy as leaf tables (no
  // employee table, no RICs); the target packs everything in one table
  // keyed by a different identifier.
  SEMAP_ASSIGN_OR_RETURN(sem::AnnotatedSchema source, AnnotatedFromText(
      R"(schema employees_src;
         table programmer(ssn, name, acnt) key(ssn);
         table engineer(ssn, name, site) key(ssn);)",
      R"(cm employees_src_cm;
         class Employee { ssn key; name; }
         class Engineer { site; }
         class Programmer { acnt; }
         isa Engineer -> Employee;
         isa Programmer -> Employee;
         covers Employee = Engineer, Programmer;)",
      R"(semantics programmer {
           node p: Programmer; node e: Employee;
           edge isa p e;
           anchor p;
           col ssn -> e.ssn; col name -> e.name; col acnt -> p.acnt;
         }
         semantics engineer {
           node g: Engineer; node e: Employee;
           edge isa g e;
           anchor g;
           col ssn -> e.ssn; col name -> e.name; col site -> g.site;
         })"));
  SEMAP_ASSIGN_OR_RETURN(sem::AnnotatedSchema target, AnnotatedFromText(
      R"(schema employees_tgt;
         table employee(eid, name, site, acnt) key(eid);)",
      R"(cm employees_tgt_cm;
         class Employee { eid key; name; }
         class Engineer { site; }
         class Programmer { acnt; }
         isa Engineer -> Employee;
         isa Programmer -> Employee;
         covers Employee = Engineer, Programmer;)",
      R"(semantics employee {
           node e: Employee; node g: Engineer; node p: Programmer;
           edge isa g e;
           edge isa p e;
           anchor e;
           col eid -> e.eid; col name -> e.name;
           col site -> g.site; col acnt -> p.acnt;
         })"));

  eval::Domain domain;
  domain.name = "employee-isa-example";
  domain.source_label = "employees_src";
  domain.target_label = "employees_tgt";
  domain.source_cm_label = "employee ER (leaf tables)";
  domain.target_cm_label = "employee ER (single table)";
  domain.source = std::move(source);
  domain.target = std::move(target);

  eval::TestCase merge;
  merge.name = "engineer-programmer-merge";
  merge.correspondences = {Corr("engineer.name", "employee.name"),
                           Corr("engineer.site", "employee.site"),
                           Corr("programmer.acnt", "employee.acnt")};
  merge.benchmark = {Bench("engineer(s, w0, w1), programmer(s, n, w2) -> "
                           "employee(e, w0, w1, w2)")};
  domain.cases.push_back(std::move(merge));
  return domain;
}

Result<eval::Domain> BuildPartOfExample() {
  // Example 1.3: chairOf is a partOf relationship like the target's foo;
  // deanOf is not, so the (deanOf, foo) pairing must be eliminated.
  SEMAP_ASSIGN_OR_RETURN(sem::AnnotatedSchema source, AnnotatedFromText(
      R"(schema org_src;
         table department(did, dname) key(did);
         table faculty(fid, fname) key(fid);
         table chairOf(did, fid) key(did)
           fk (did) -> department(did)
           fk (fid) -> faculty(fid);
         table deanOf(did, fid) key(did)
           fk (did) -> department(did)
           fk (fid) -> faculty(fid);)",
      R"(cm org_src_cm;
         class Department { did key; dname; }
         class Faculty { fid key; fname; }
         rel partof chairOf Department -- Faculty fwd 1..1 inv 0..1;
         rel deanOf Department -- Faculty fwd 1..1 inv 0..1;)",
      R"(semantics department { node d: Department; anchor d;
           col did -> d.did; col dname -> d.dname; }
         semantics faculty { node f: Faculty; anchor f;
           col fid -> f.fid; col fname -> f.fname; }
         semantics chairOf { node d: Department; node f: Faculty;
           edge chairOf d f; anchor d;
           col did -> d.did; col fid -> f.fid; }
         semantics deanOf { node d: Department; node f: Faculty;
           edge deanOf d f; anchor d;
           col did -> d.did; col fid -> f.fid; })"));
  SEMAP_ASSIGN_OR_RETURN(sem::AnnotatedSchema target, AnnotatedFromText(
      R"(schema org_tgt;
         table dept(dcode, dname) key(dcode);
         table fac(fcode, fname) key(fcode);
         table foo(dcode, fcode) key(dcode)
           fk (dcode) -> dept(dcode)
           fk (fcode) -> fac(fcode);)",
      R"(cm org_tgt_cm;
         class Dept { dcode key; dname; }
         class Fac { fcode key; fname; }
         rel partof foo Dept -- Fac fwd 1..1 inv 0..1;)",
      R"(semantics dept { node d: Dept; anchor d;
           col dcode -> d.dcode; col dname -> d.dname; }
         semantics fac { node f: Fac; anchor f;
           col fcode -> f.fcode; col fname -> f.fname; }
         semantics foo { node d: Dept; node f: Fac;
           edge foo d f; anchor d;
           col dcode -> d.dcode; col fcode -> f.fcode; })"));

  eval::Domain domain;
  domain.name = "partof-example";
  domain.source_label = "org_src";
  domain.target_label = "org_tgt";
  domain.source_cm_label = "org ER (chairOf/deanOf)";
  domain.target_cm_label = "org ER (foo)";
  domain.source = std::move(source);
  domain.target = std::move(target);

  eval::TestCase partof;
  partof.name = "chairOf-vs-deanOf";
  partof.correspondences = {Corr("department.dname", "dept.dname"),
                            Corr("faculty.fname", "fac.fname")};
  partof.benchmark = {
      Bench("department(d, w0), chairOf(d, f), faculty(f, w1) -> "
            "dept(d2, w0), foo(d2, f2), fac(f2, w1)")};
  domain.cases.push_back(std::move(partof));
  return domain;
}

Result<eval::Domain> BuildProjectExample() {
  // Example 3.1: anchored functional trees (Cases A.1 and A.2).
  SEMAP_ASSIGN_OR_RETURN(sem::AnnotatedSchema source, AnnotatedFromText(
      R"(schema proj_src;
         table control(proj, dept) key(proj)
           fk (dept) -> manage(dept);
         table manage(dept, mgr) key(dept);)",
      R"(cm proj_src_cm;
         class Project { pid key; }
         class Department { did key; }
         class Employee { eid key; }
         class Intern { iid key; }
         rel controlledBy Project -- Department fwd 1..1 inv 0..*;
         rel hasManager Department -- Employee fwd 0..1 inv 0..*;
         rel works_on Intern -- Project fwd 1..1 inv 0..*;)",
      R"(semantics control { node p: Project; node d: Department;
           edge controlledBy p d; anchor p;
           col proj -> p.pid; col dept -> d.did; }
         semantics manage { node d: Department; node e: Employee;
           edge hasManager d e; anchor d;
           col dept -> d.did; col mgr -> e.eid; })"));
  SEMAP_ASSIGN_OR_RETURN(sem::AnnotatedSchema target, AnnotatedFromText(
      R"(schema proj_tgt;
         table proj(pnum, dept, emp) key(pnum);)",
      R"(cm proj_tgt_cm;
         class Proj { pnum key; }
         class Dept { dno key; }
         class Emp { eno key; }
         rel inDept Proj -- Dept fwd 1..1 inv 0..*;
         rel managedBy Dept -- Emp fwd 0..1 inv 0..*;)",
      R"(semantics proj { node p: Proj; node d: Dept; node e: Emp;
           edge inDept p d; edge managedBy d e; anchor p;
           col pnum -> p.pnum; col dept -> d.dno; col emp -> e.eno; })"));

  eval::Domain domain;
  domain.name = "project-example";
  domain.source_label = "proj_src";
  domain.target_label = "proj_tgt";
  domain.source_cm_label = "project ER";
  domain.target_cm_label = "project ER (denormalized)";
  domain.source = std::move(source);
  domain.target = std::move(target);

  eval::TestCase case_a1;
  case_a1.name = "anchored-root-known";  // Case A.1
  case_a1.correspondences = {Corr("control.proj", "proj.pnum"),
                             Corr("control.dept", "proj.dept"),
                             Corr("manage.mgr", "proj.emp")};
  case_a1.benchmark = {
      Bench("control(w0, w1), manage(w1, w2) -> proj(w0, w1, w2)")};
  domain.cases.push_back(std::move(case_a1));

  eval::TestCase case_a2;
  case_a2.name = "anchored-root-unknown";  // Case A.2 (v1 missing)
  case_a2.correspondences = {Corr("control.dept", "proj.dept"),
                             Corr("manage.mgr", "proj.emp")};
  case_a2.benchmark = {
      Bench("control(p, w0), manage(w0, w1) -> proj(p2, w0, w1)")};
  domain.cases.push_back(std::move(case_a2));
  return domain;
}

Result<eval::Domain> BuildSalesReifiedExample() {
  // Figure 4 / Section 3.3: a reified ternary Sell relationship with a
  // descriptive attribute, mapped onto an equally reified Purchase.
  SEMAP_ASSIGN_OR_RETURN(sem::AnnotatedSchema source, AnnotatedFromText(
      R"(schema sales_src;
         table store(sid) key(sid);
         table product(prodid) key(prodid);
         table person(pid) key(pid);
         table sells(sid, prodid, pid, date) key(sid, prodid, pid)
           fk (sid) -> store(sid)
           fk (prodid) -> product(prodid)
           fk (pid) -> person(pid);
         table rents(pid, prodid) key(pid, prodid)
           fk (pid) -> person(pid)
           fk (prodid) -> product(prodid);)",
      R"(cm sales_src_cm;
         class Store { sid key; }
         class Product { prodid key; }
         class Person { pid key; }
         reified Sell {
           role seller -> Store part 0..*;
           role sold -> Product part 0..*;
           role buyer -> Person part 0..*;
           attr dateOfPurchase;
         }
         rel rents Person -- Product fwd 0..* inv 0..*;)",
      R"(semantics store { node s: Store; anchor s; col sid -> s.sid; }
         semantics product { node p: Product; anchor p; col prodid -> p.prodid; }
         semantics person { node p: Person; anchor p; col pid -> p.pid; }
         semantics sells {
           node r: Sell; node s: Store; node p: Product; node b: Person;
           edge seller r s; edge sold r p; edge buyer r b;
           anchor r;
           col sid -> s.sid; col prodid -> p.prodid; col pid -> b.pid;
           col date -> r.dateOfPurchase;
         }
         semantics rents {
           node p: Person; node q: Product;
           edge rents p q;
           anchor rents$0;
           col pid -> p.pid; col prodid -> q.prodid;
         })"));
  SEMAP_ASSIGN_OR_RETURN(sem::AnnotatedSchema target, AnnotatedFromText(
      R"(schema sales_tgt;
         table shop(shopid) key(shopid);
         table item(itemid) key(itemid);
         table customer(custid) key(custid);
         table purchases(shopid, itemid, custid, pdate) key(shopid, itemid, custid)
           fk (shopid) -> shop(shopid)
           fk (itemid) -> item(itemid)
           fk (custid) -> customer(custid);)",
      R"(cm sales_tgt_cm;
         class Shop { shopid key; }
         class Item { itemid key; }
         class Customer { custid key; }
         reified Purchase {
           role shop -> Shop part 0..*;
           role item -> Item part 0..*;
           role customer -> Customer part 0..*;
           attr pdate;
         })",
      R"(semantics shop { node s: Shop; anchor s; col shopid -> s.shopid; }
         semantics item { node i: Item; anchor i; col itemid -> i.itemid; }
         semantics customer { node c: Customer; anchor c; col custid -> c.custid; }
         semantics purchases {
           node r: Purchase; node s: Shop; node i: Item; node c: Customer;
           edge shop r s; edge item r i; edge customer r c;
           anchor r;
           col shopid -> s.shopid; col itemid -> i.itemid;
           col custid -> c.custid; col pdate -> r.pdate;
         })"));

  eval::Domain domain;
  domain.name = "sales-reified-example";
  domain.source_label = "sales_src";
  domain.target_label = "sales_tgt";
  domain.source_cm_label = "sales ER (reified Sell)";
  domain.target_cm_label = "sales ER (reified Purchase)";
  domain.source = std::move(source);
  domain.target = std::move(target);

  eval::TestCase ternary;
  ternary.name = "ternary-sale-to-purchase";
  ternary.correspondences = {Corr("sells.sid", "purchases.shopid"),
                             Corr("sells.prodid", "purchases.itemid"),
                             Corr("sells.pid", "purchases.custid"),
                             Corr("sells.date", "purchases.pdate")};
  ternary.benchmark = {Bench(
      "sells(w0, w1, w2, w3) -> purchases(w0, w1, w2, w3)")};
  domain.cases.push_back(std::move(ternary));
  return domain;
}

}  // namespace semap::data
