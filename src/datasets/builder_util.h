// Helpers for assembling evaluation domains from the text formats.
#ifndef SEMAP_DATASETS_BUILDER_UTIL_H_
#define SEMAP_DATASETS_BUILDER_UTIL_H_

#include <string_view>

#include "eval/experiment.h"
#include "util/result.h"

namespace semap::data {

/// \brief Parse and assemble one annotated side from the three text
/// formats (schema DDL, CM, semantics).
Result<sem::AnnotatedSchema> AnnotatedFromText(std::string_view schema_text,
                                               std::string_view cm_text,
                                               std::string_view semantics_text);

/// \brief Parse "table.column" into a ColumnRef.
Result<rel::ColumnRef> ParseColumnRef(std::string_view text);

/// \brief Correspondence from "src_table.col" / "tgt_table.col" literals
/// (aborts on malformed literals — dataset definitions are compiled-in).
disc::Correspondence Corr(std::string_view source, std::string_view target);

/// \brief Benchmark tgd from its text form (aborts on malformed input).
logic::Tgd Bench(std::string_view tgd_text);

}  // namespace semap::data

#endif  // SEMAP_DATASETS_BUILDER_UTIL_H_
