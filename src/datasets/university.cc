// UTCS / UTDB (Table 1 row 5): the University of Toronto CS department
// and DB group databases, whose semantics the authors had recovered
// against the large KA ontology (105 concepts) and a CS-department
// ontology (62 concepts) in their earlier semantics-discovery work. Both
// CMs dwarf their schemas: only a handful of concepts carry tables. The
// source's Person hierarchy lives entirely above the prof/grad leaf
// tables (no superclass table, no RICs) — the classic Example 1.2 setup.
#include "cm/parser.h"
#include "datasets/builder_util.h"
#include "datasets/domains.h"
#include "datasets/padding.h"
#include "semantics/er2rel.h"

namespace semap::data {

namespace {

constexpr const char* kSourceCm = R"(
cm ka_ontology;
class Person3 { perid key; pername; }
class FacultyMember;
class Student3;
class Prof { pftitle; }
class Grad { gryear; }
class Course { crsid key; crsname; }
class Paper { papid key; paptitle; }
class Proj { prjid key; prjname; }
class Dept { dpid key; dpname; }
isa FacultyMember -> Person3;
isa Student3 -> Person3;
isa Prof -> FacultyMember;
isa Grad -> Student3;
rel inDept Prof -- Dept fwd 1..1 inv 0..*;
rel leads Prof -- Proj fwd 0..1 inv 0..*;
rel worksOn Grad -- Proj fwd 0..* inv 0..*;
rel writesPaper Prof -- Paper fwd 0..* inv 1..*;
)";

constexpr const char* kTargetCm = R"(
cm csdept_ontology;
class Member { mid key; mname; mtitle; myear; }
class Publication2 { pbid key; pbtitle; }
class Project2 { pjid key; pjname; }
class Seminar { smid key; smtopic; }
class Sponsor { spnid key; spnname; }
class Area2 { aid2 key; aname2; }
class Visitor { vid2 key; vname2; }
class Machine { mcid key; mcname; }
class Grant { gid2 key; gname2; }
rel memberProj Member -- Project2 fwd 0..* inv 0..*;
rel pubProj Publication2 -- Project2 fwd 0..* inv 0..*;
rel attendsSem Member -- Seminar fwd 0..* inv 0..*;
reified Authorship {
  role author -> Member part 0..*;
  role pub -> Publication2 part 0..*;
  attr authorOrder;
}
)";

}  // namespace

Result<eval::Domain> BuildUniversity() {
  SEMAP_ASSIGN_OR_RETURN(cm::ConceptualModel source_model,
                         cm::ParseCm(kSourceCm));
  // Only the leaf/plain concepts carry tables: prof, grad, course, paper,
  // proj, dept, plus the two many-to-many link tables = 8 (the KA
  // hierarchy above prof/grad stays conceptual).
  std::set<std::string> source_core = {"Person3", "FacultyMember", "Student3",
                                       "Prof",    "Grad",          "Course",
                                       "Paper",   "Proj",          "Dept"};
  // Core graph: 9 classes + 2 auto-reified m:n = 11 nodes; 94 peripheral
  // KA concepts complete the published 105.
  SEMAP_RETURN_NOT_OK(PadCm(source_model, "KaAux", 94,
                            {"Person3", "Paper", "Proj", "Course", "Dept"}));
  sem::Er2RelOptions source_opts;
  source_opts.merge_functional_relationships = true;
  source_opts.merge_isa_into_leaves = true;
  source_opts.only_classes = source_core;
  SEMAP_ASSIGN_OR_RETURN(sem::AnnotatedSchema source,
                         sem::Er2Rel(source_model, "UTCS", source_opts));

  SEMAP_ASSIGN_OR_RETURN(cm::ConceptualModel target_model,
                         cm::ParseCm(kTargetCm));
  std::set<std::string> target_core;
  for (const cm::CmClass& cls : target_model.classes()) {
    target_core.insert(cls.name);
  }
  target_core.insert("Authorship");
  // Core graph: 9 classes + 3 auto-reified m:n + 1 reified = 13 nodes; 49
  // peripheral CS-department concepts complete the published 62.
  SEMAP_RETURN_NOT_OK(PadCm(target_model, "CsAux", 49,
                            {"Member", "Publication2", "Project2"}));
  sem::Er2RelOptions target_opts;
  target_opts.merge_functional_relationships = true;
  target_opts.only_classes = target_core;
  SEMAP_ASSIGN_OR_RETURN(sem::AnnotatedSchema target,
                         sem::Er2Rel(target_model, "UTDB", target_opts));

  eval::Domain domain;
  domain.name = "University";
  domain.source_label = "UTCS";
  domain.target_label = "UTDB";
  domain.source_cm_label = "KA onto.";
  domain.target_cm_label = "CS dept. onto.";
  domain.source = std::move(source);
  domain.target = std::move(target);

  // Case 1 (both): grad students on projects against members of projects.
  {
    eval::TestCase c;
    c.name = "member-project";
    c.correspondences = {
        Corr("Grad.pername", "Member.mname"),
        Corr("Proj.prjname", "Project2.pjname"),
    };
    c.benchmark = {Bench(
        "Grad(g, w0, yr), worksOn(g, pj), Proj(pj, w1) -> "
        "Member(m, w0, t2, y2), memberProj(m, p2), Project2(p2, w1)")};
    domain.cases.push_back(std::move(c));
  }
  // Case 2 (semantic only): merging prof and grad leaf tables into the
  // target's single Member table through the KA Person hierarchy —
  // invisible to RICs (Example 1.2).
  {
    eval::TestCase c;
    c.name = "member-merge";
    c.correspondences = {
        Corr("Prof.pername", "Member.mname"),
        Corr("Prof.pftitle", "Member.mtitle"),
        Corr("Grad.gryear", "Member.myear"),
    };
    c.benchmark = {Bench(
        "Prof(p, w0, w1, d, pj), Grad(p, n2, w2) -> Member(m, w0, w1, w2)")};
    domain.cases.push_back(std::move(c));
  }
  return domain;
}

}  // namespace semap::data
