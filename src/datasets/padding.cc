#include "datasets/padding.h"

namespace semap::data {

Status PadCm(cm::ConceptualModel& model, const std::string& prefix, int count,
             const std::vector<std::string>& anchors) {
  if (anchors.empty()) {
    return Status::InvalidArgument("PadCm needs at least one anchor class");
  }
  for (int i = 0; i < count; ++i) {
    cm::CmClass aux;
    aux.name = prefix + std::to_string(i);
    aux.attributes = {{aux.name + "_id", /*is_key=*/true},
                      {aux.name + "_info", /*is_key=*/false}};
    SEMAP_RETURN_NOT_OK(model.AddClass(std::move(aux)));
    cm::CmRelationship rel;
    rel.name = "of_" + prefix + std::to_string(i);
    rel.from_class = prefix + std::to_string(i);
    rel.to_class = anchors[static_cast<size_t>(i) % anchors.size()];
    rel.forward = cm::Cardinality::ExactlyOne();
    rel.inverse = cm::Cardinality::Any();
    SEMAP_RETURN_NOT_OK(model.AddRelationship(std::move(rel)));
  }
  return Status::OK();
}

size_t CmNodeCount(const sem::AnnotatedSchema& side) {
  return side.graph().ClassNodes().size();
}

}  // namespace semap::data
