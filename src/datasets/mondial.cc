// Mondial1 / Mondial2 (Table 1 row 2): geography databases. The source
// follows the CIA factbook ontology (52 concepts, functional relationships
// merged into entity tables); the target is a reverse-engineered ER model
// whose 26 concepts all materialize as tables. Modeling heterogeneity:
// the source reifies country-continent and country-organization
// relationships and represents capitals as a functional relationship to
// City, while the target uses plain many-to-many tables and a capital
// *attribute* on Nation; the source splits lakes into salt/fresh leaf
// subclasses that the target folds into one Basin table (Example 1.2).
#include "cm/parser.h"
#include "datasets/builder_util.h"
#include "datasets/domains.h"
#include "datasets/padding.h"
#include "semantics/er2rel.h"

namespace semap::data {

namespace {

constexpr const char* kSourceCm = R"(
cm factbook;
class Country { code key; cname; area; }
class Province { pcode key; pname; }
class City { citycode key; cityname; population; }
class Continent { conid key; conname; }
class Organization { oid key; oname; }
class Sea { seaid key; seaname; }
class River { riverid key; rivername; }
class Lake { lakeid key; lakename; }
class SaltLake { salinity; }
class FreshLake { volume; }
class Mountain { mid key; mname; height; }
class Desert { did key; dname; }
class Island { isid key; isname; }
class Language { langid key; langname; }
class Religion { relid key; relname; }
class EthnicGroup { egid key; egname; }
class Government { gid key; gtype; }
class Currency { curid key; curname; }
class Airport { apid key; apname; }
class Port { portid key; portname; }
class Glacier { glid key; glname; }
isa SaltLake -> Lake;
isa FreshLake -> Lake;
rel inCountry Province -- Country fwd 1..1 inv 0..*;
rel inProvince City -- Province fwd 1..1 inv 0..*;
rel capitalOf Country -- City fwd 0..1 inv 0..*;
rel flowsInto River -- Sea fwd 0..1 inv 0..*;
rel currencyOf Country -- Currency fwd 1..1 inv 0..*;
rel governedBy Country -- Government fwd 1..1 inv 0..*;
rel speaks Country -- Language fwd 0..* inv 0..*;
rel practices Country -- Religion fwd 0..* inv 0..*;
rel hasEthnic Country -- EthnicGroup fwd 0..* inv 0..*;
rel borders Country -- Country fwd 0..* inv 0..*;
rel flowsThrough River -- Country fwd 0..* inv 0..*;
rel inDesert Island -- Desert fwd 0..* inv 0..*;
rel servesCity Airport -- City fwd 0..1 inv 0..*;
rel portOf Port -- City fwd 1..1 inv 0..*;
rel glacierOn Glacier -- Mountain fwd 0..1 inv 0..*;
reified Encompasses {
  role containedCountry -> Country part 0..*;
  role continent -> Continent part 0..*;
  attr percentage;
}
reified Membership {
  role member -> Country part 0..*;
  role org -> Organization part 0..*;
  attr since;
}
)";

constexpr const char* kTargetCm = R"(
cm mondial2_er;
class Nation { nid key; nname; narea; capitalName; }
class State { sid key; sname; }
class Town { tid key; tname; tpop; }
class Cont { contid key; contname; }
class Org { orgid key; orgname; }
class Tongue { tonid key; tonname; }
class Faith { fid key; fname; }
class Ethnic { ethid key; ethname; }
class Peak { peakid key; peakname; }
class Stream { strid key; strname; }
class Basin { basid key; basname; salinity; volume; }
class Isle { isleid key; islename; }
class Wasteland { wid key; wname; }
class Regime { regid key; regname; }
class Money { monid key; monname; }
class Census { cenid key; cenyear; }
class Airfield { afid key; afname; }
class Haven { havid key; havname; }
rel stateOf State -- Nation fwd 1..1 inv 0..*;
rel townIn Town -- State fwd 1..1 inv 0..*;
rel regimeOf Nation -- Regime fwd 1..1 inv 0..*;
rel moneyOf Nation -- Money fwd 1..1 inv 0..*;
rel censusOf Census -- Nation fwd 1..1 inv 0..*;
rel nspeaks Nation -- Tongue fwd 0..* inv 0..*;
rel nfaith Nation -- Faith fwd 0..* inv 0..*;
rel nborders Nation -- Nation fwd 0..* inv 0..*;
rel onCont Nation -- Cont fwd 0..* inv 0..*;
rel flowsAcross Stream -- Nation fwd 0..* inv 0..*;
rel spokenOn Tongue -- Cont fwd 0..* inv 0..*;
reified Affiliation {
  role amember -> Nation part 0..*;
  role agroup -> Org part 0..*;
  attr joined;
}
reified IsleIn {
  role theIsle -> Isle part 0..*;
  role theBasin -> Basin part 0..*;
  attr isledist;
}
)";

}  // namespace

Result<eval::Domain> BuildMondial() {
  SEMAP_ASSIGN_OR_RETURN(cm::ConceptualModel source_model,
                         cm::ParseCm(kSourceCm));
  std::set<std::string> source_core;
  for (const cm::CmClass& cls : source_model.classes()) {
    source_core.insert(cls.name);
  }
  for (const cm::ReifiedRelationship& r : source_model.reified()) {
    source_core.insert(r.class_name);
  }
  // Core graph: 21 classes + 6 auto-reified m:n + 2 reified = 29 nodes;
  // 23 peripheral factbook concepts complete the published 52.
  SEMAP_RETURN_NOT_OK(PadCm(source_model, "FactAux", 23,
                            {"Country", "City", "River", "Mountain"}));
  sem::Er2RelOptions source_opts;
  source_opts.merge_functional_relationships = true;
  source_opts.merge_isa_into_leaves = true;  // SaltLake / FreshLake leaves
  source_opts.only_classes = source_core;
  SEMAP_ASSIGN_OR_RETURN(sem::AnnotatedSchema source,
                         sem::Er2Rel(source_model, "Mondial1", source_opts));

  SEMAP_ASSIGN_OR_RETURN(cm::ConceptualModel target_model,
                         cm::ParseCm(kTargetCm));
  sem::Er2RelOptions target_opts;
  target_opts.merge_functional_relationships = true;
  SEMAP_ASSIGN_OR_RETURN(sem::AnnotatedSchema target,
                         sem::Er2Rel(target_model, "Mondial2", target_opts));

  eval::Domain domain;
  domain.name = "Mondial";
  domain.source_label = "Mondial1";
  domain.target_label = "Mondial2";
  domain.source_cm_label = "factbook";
  domain.target_cm_label = "mondial2 ER";
  domain.source = std::move(source);
  domain.target = std::move(target);

  // Case 1 (both): province-in-country against state-of-nation.
  {
    eval::TestCase c;
    c.name = "province-state";
    c.correspondences = {
        Corr("Province.pname", "State.sname"),
        Corr("Country.cname", "Nation.nname"),
    };
    c.benchmark = {Bench(
        "Province(p, w0, c), Country(c, w1, a, cap, cur, gov) -> "
        "State(s, w0, n), Nation(n, w1, na, capn, reg, mon)")};
    domain.cases.push_back(std::move(c));
  }
  // Case 2 (both): the two-hop functional chain city-province-country.
  {
    eval::TestCase c;
    c.name = "city-chain";
    c.correspondences = {
        Corr("City.cityname", "Town.tname"),
        Corr("Country.cname", "Nation.nname"),
    };
    c.benchmark = {Bench(
        "City(ct, w0, pop, p), Province(p, pn, c), "
        "Country(c, w1, a, cap, cur, gov) -> "
        "Town(t, w0, tp, s), State(s, sn, n), Nation(n, w1, na, capn, reg, "
        "mon)")};
    domain.cases.push_back(std::move(c));
  }
  // Case 3 (both): capital as functional relationship vs capital as
  // attribute.
  {
    eval::TestCase c;
    c.name = "capital";
    c.correspondences = {
        Corr("City.cityname", "Nation.capitalName"),
        Corr("Country.cname", "Nation.nname"),
    };
    c.benchmark = {Bench(
        "Country(c, w1, a, cap, cur, gov), City(cap, w0, pop, p) -> "
        "Nation(n, w1, na, w0, reg, mon)")};
    domain.cases.push_back(std::move(c));
  }
  // Case 4 (semantic only): languages spoken on a continent — the
  // composition speaks ∘ encompasses the chase cannot assemble
  // (Example 1.1 situation).
  {
    eval::TestCase c;
    c.name = "language-continent";
    c.correspondences = {
        Corr("Language.langname", "Tongue.tonname"),
        Corr("Continent.conname", "Cont.contname"),
    };
    c.benchmark = {Bench(
        "Language(l, w0), speaks(c, l), Encompasses(c, k, pct), "
        "Continent(k, w1) -> "
        "Tongue(t, w0), spokenOn(t, k2), Cont(k2, w1)")};
    domain.cases.push_back(std::move(c));
  }
  // Case 5 (semantic only): salt/fresh lake leaf tables merged into the
  // target's single Basin table via the Lake superclass (Example 1.2).
  {
    eval::TestCase c;
    c.name = "lake-merge";
    c.correspondences = {
        Corr("SaltLake.lakename", "Basin.basname"),
        Corr("SaltLake.salinity", "Basin.salinity"),
        Corr("FreshLake.volume", "Basin.volume"),
    };
    c.benchmark = {Bench(
        "SaltLake(l, w0, w1), FreshLake(l, n, w2) -> Basin(b, w0, w1, w2)")};
    domain.cases.push_back(std::move(c));
  }
  return domain;
}

}  // namespace semap::data
