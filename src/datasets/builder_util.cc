#include "datasets/builder_util.h"

#include <cstdio>
#include <cstdlib>

#include "cm/parser.h"
#include "logic/parser.h"
#include "relational/schema_parser.h"
#include "semantics/semantics_parser.h"

namespace semap::data {

Result<sem::AnnotatedSchema> AnnotatedFromText(
    std::string_view schema_text, std::string_view cm_text,
    std::string_view semantics_text) {
  SEMAP_ASSIGN_OR_RETURN(rel::RelationalSchema schema,
                         rel::ParseSchema(schema_text));
  SEMAP_ASSIGN_OR_RETURN(cm::ConceptualModel model, cm::ParseCm(cm_text));
  SEMAP_ASSIGN_OR_RETURN(cm::CmGraph graph, cm::CmGraph::Build(model));
  SEMAP_ASSIGN_OR_RETURN(std::vector<sem::STree> strees,
                         sem::ParseSemantics(graph, semantics_text));
  sem::AnnotatedSchema annotated(std::move(schema), std::move(graph));
  for (sem::STree& stree : strees) {
    SEMAP_RETURN_NOT_OK(annotated.AddSemantics(std::move(stree)));
  }
  return annotated;
}

Result<rel::ColumnRef> ParseColumnRef(std::string_view text) {
  size_t dot = text.find('.');
  if (dot == std::string_view::npos || dot == 0 || dot + 1 == text.size()) {
    return Status::ParseError("expected 'table.column', got '" +
                              std::string(text) + "'");
  }
  rel::ColumnRef ref;
  ref.table = std::string(text.substr(0, dot));
  ref.column = std::string(text.substr(dot + 1));
  return ref;
}

disc::Correspondence Corr(std::string_view source, std::string_view target) {
  auto src = ParseColumnRef(source);
  auto tgt = ParseColumnRef(target);
  if (!src.ok() || !tgt.ok()) {
    std::fprintf(stderr, "bad correspondence literal: %.*s <-> %.*s\n",
                 static_cast<int>(source.size()), source.data(),
                 static_cast<int>(target.size()), target.data());
    std::abort();
  }
  return disc::Correspondence{*src, *tgt};
}

logic::Tgd Bench(std::string_view tgd_text) {
  auto tgd = logic::ParseTgd(tgd_text);
  if (!tgd.ok()) {
    std::fprintf(stderr, "bad benchmark tgd: %s\n  %s\n",
                 std::string(tgd_text).c_str(),
                 tgd.status().ToString().c_str());
    std::abort();
  }
  return *tgd;
}

}  // namespace semap::data
