// Programmatic reconstructions of the paper's seven evaluation dataset
// pairs (Table 1). Each matches the published scale (#tables per schema,
// #concepts per CM, #mappings tested) and embeds the phenomena the paper
// reports as driving the results: ISA hierarchies encoded differently on
// the two sides (Example 1.2), minimally-lossy many-to-many compositions
// (Example 1.1), reified relationships, partOf discrimination
// (Example 1.3), and plain er2rel-designed tables. See DESIGN.md §3 for
// the substitution rationale.
#ifndef SEMAP_DATASETS_DOMAINS_H_
#define SEMAP_DATASETS_DOMAINS_H_

#include <vector>

#include "eval/experiment.h"
#include "util/result.h"

namespace semap::data {

Result<eval::Domain> BuildDblp();        // DBLP1/DBLP2, 22/9 tables, 75/7 nodes, 6 cases
Result<eval::Domain> BuildMondial();     // Mondial1/2, 28/26 tables, 52/26 nodes, 5 cases
Result<eval::Domain> BuildAmalgam();     // Amalgam1/2, 15/27 tables, 8/26 nodes, 7 cases
Result<eval::Domain> Build3Sdb();        // 3Sdb1/2, 9/9 tables, 9/11 nodes, 3 cases
Result<eval::Domain> BuildUniversity();  // UTCS/UTDB, 8/13 tables, 105/62 nodes, 2 cases
Result<eval::Domain> BuildHotel();       // HotelA/B, 6/5 tables, 7/7 nodes, 5 cases
Result<eval::Domain> BuildNetwork();     // NetworkA/B, 18/19 tables, 28/27 nodes, 6 cases

/// All seven domains, in Table 1 order.
Result<std::vector<eval::Domain>> BuildAllDomains();

}  // namespace semap::data

#endif  // SEMAP_DATASETS_DOMAINS_H_
