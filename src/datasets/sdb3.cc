// 3Sdb1 / 3Sdb2 (Table 1 row 4): two versions of a repository of data on
// biological samples explored during gene expression analysis (Jiang et
// al., RE'06). Version 1 models samples, donors, assays and genes with
// functional relationships merged into entity tables plus a reified
// sample-derivation relationship; version 2 refactors specimens and
// studies into ISA hierarchies whose superclasses (Specimen, Study) have
// no tables — their ISA links are invisible to RICs, which is what makes
// the specimen-marker case semantic-only.
#include "cm/parser.h"
#include "datasets/builder_util.h"
#include "datasets/domains.h"
#include "semantics/er2rel.h"

namespace semap::data {

namespace {

constexpr const char* kSourceCm = R"(
cm sdb1_er;
class Sample { sampid key; sname; }
class Donor { donid key; dname; dage; }
class Tissue { tisid key; tname; }
class Assay { assid key; adate; }
class Gene { genid key; gname; }
class Lab { labid key; labname; }
class Protocol { protid key; pver; }
rel fromDonor Sample -- Donor fwd 1..1 inv 0..*;
rel ofTissue Sample -- Tissue fwd 1..1 inv 0..*;
rel onSample Assay -- Sample fwd 1..1 inv 0..*;
rel runBy Assay -- Lab fwd 1..1 inv 0..*;
rel usesProtocol Assay -- Protocol fwd 0..1 inv 0..*;
rel measures Assay -- Gene fwd 0..* inv 0..*;
reified Derivation {
  role dparent -> Sample part 0..*;
  role dchild -> Sample part 0..*;
  attr dmethod;
}
)";

constexpr const char* kTargetCm = R"(
cm sdb2_er;
class Specimen { spid key; spname; }
class TissueSpecimen { ttype; }
class CellSpecimen { cline; }
class Study { stid key; sdate; }
class InVitro { ivtemp; }
class InVivo { dose; }
class Subject { subid key; subname; subage; }
class Marker { mkid key; mkname; }
class Facility { fcid key; fcname; }
class Method { mtid key; mtname; }
isa TissueSpecimen -> Specimen;
isa CellSpecimen -> Specimen;
isa InVitro -> Study;
isa InVivo -> Study;
disjoint InVitro, InVivo;
rel tFrom TissueSpecimen -- Subject fwd 1..1 inv 0..*;
rel cFrom CellSpecimen -- Subject fwd 1..1 inv 0..*;
rel ivOn InVitro -- TissueSpecimen fwd 1..1 inv 0..*;
rel ivvOn InVivo -- Subject fwd 1..1 inv 0..*;
rel ivFac InVitro -- Facility fwd 1..1 inv 0..*;
rel ivvFac InVivo -- Facility fwd 1..1 inv 0..*;
rel ivMeth InVitro -- Method fwd 0..1 inv 0..*;
rel ivvMeth InVivo -- Method fwd 0..1 inv 0..*;
rel detects Study -- Marker fwd 0..* inv 0..*;
)";

}  // namespace

Result<eval::Domain> Build3Sdb() {
  SEMAP_ASSIGN_OR_RETURN(cm::ConceptualModel source_model,
                         cm::ParseCm(kSourceCm));
  sem::Er2RelOptions source_opts;
  source_opts.merge_functional_relationships = true;
  SEMAP_ASSIGN_OR_RETURN(sem::AnnotatedSchema source,
                         sem::Er2Rel(source_model, "3Sdb1", source_opts));

  SEMAP_ASSIGN_OR_RETURN(cm::ConceptualModel target_model,
                         cm::ParseCm(kTargetCm));
  sem::Er2RelOptions target_opts;
  target_opts.merge_functional_relationships = true;
  target_opts.merge_isa_into_leaves = true;
  SEMAP_ASSIGN_OR_RETURN(sem::AnnotatedSchema target,
                         sem::Er2Rel(target_model, "3Sdb2", target_opts));

  eval::Domain domain;
  domain.name = "3Sdb";
  domain.source_label = "3Sdb1";
  domain.target_label = "3Sdb2";
  domain.source_cm_label = "3Sdb1 ER";
  domain.target_cm_label = "3Sdb2 ER";
  domain.source = std::move(source);
  domain.target = std::move(target);

  // Case 1 (both): sample-with-donor against tissue-specimen-with-subject.
  {
    eval::TestCase c;
    c.name = "sample-donor";
    c.correspondences = {
        Corr("Sample.sname", "TissueSpecimen.spname"),
        Corr("Donor.dname", "Subject.subname"),
    };
    c.benchmark = {Bench(
        "Sample(s, w0, don, tis), Donor(don, w1, age) -> "
        "TissueSpecimen(ts, w0, tt, sub), Subject(sub, w1, sa)")};
    domain.cases.push_back(std::move(c));
  }
  // Case 2 (semantic only): which genes/markers were measured on a
  // specimen — on the target this runs through the Study superclass that
  // has no table, so the ISA link is invisible to the chase.
  {
    eval::TestCase c;
    c.name = "specimen-marker";
    c.correspondences = {
        Corr("Sample.sname", "TissueSpecimen.spname"),
        Corr("Gene.gname", "Marker.mkname"),
    };
    c.benchmark = {Bench(
        "Sample(s, w0, don, tis), Assay(a, ad, s, lab, prot), "
        "measures(a, g), Gene(g, w1) -> "
        "TissueSpecimen(ts, w0, tt, sub), InVitro(st, sd, temp, ts, fc, mt), "
        "detects(st, mk), Marker(mk, w1)")};
    domain.cases.push_back(std::move(c));
  }
  // Case 3 (both): assay facility against in-vitro study facility.
  {
    eval::TestCase c;
    c.name = "assay-facility";
    c.correspondences = {
        Corr("Assay.adate", "InVitro.sdate"),
        Corr("Lab.labname", "Facility.fcname"),
    };
    c.benchmark = {Bench(
        "Assay(a, w0, s, lab, prot), Lab(lab, w1) -> "
        "InVitro(st, w0, temp, ts, fc, mt), Facility(fc, w1)")};
    domain.cases.push_back(std::move(c));
  }
  return domain;
}

}  // namespace semap::data
