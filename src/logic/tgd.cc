#include "logic/tgd.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "logic/containment.h"
#include "logic/memo.h"
#include "util/string_util.h"

namespace semap::logic {

std::string Tgd::ToString() const {
  std::vector<std::string> src_atoms;
  for (const Atom& a : source.body) src_atoms.push_back(a.ToString());
  std::vector<std::string> tgt_atoms;
  for (const Atom& a : target.body) tgt_atoms.push_back(a.ToString());
  std::vector<std::string> frontier_names;
  for (const Term& t : source.head) frontier_names.push_back(t.ToString());
  std::string out = "forall " + Join(frontier_names, ", ") + " . ";
  out += Join(src_atoms, " & ");
  out += " -> ";
  std::vector<std::string> exists = target.ExistentialVariables();
  if (!exists.empty()) {
    out += "exists " + Join(exists, ", ") + " . ";
  }
  out += Join(tgt_atoms, " & ");
  return out;
}

namespace {

// The alignment substitutions keyed by variable name; images are inserted
// verbatim, exactly like logic::ApplySubstitution.
using NameSub = std::unordered_map<std::string, Term>;

// The existential-prefix rule, applied recursively: variables whose name
// does not already start with "w" (the frontier) get the side prefix.
Term PrefixVars(const Term& t, const char* prefix) {
  switch (t.kind) {
    case TermKind::kVariable:
      if (!t.name.empty() && t.name[0] == 'w') return t;
      return Term::Var(std::string(prefix) + t.name);
    case TermKind::kConstant:
      return t;
    case TermKind::kFunction: {
      Term out = t;
      for (Term& a : out.args) a = PrefixVars(a, prefix);
      return out;
    }
  }
  return t;
}

// Plain substitution (no prefixing), mirroring ApplySubstitution.
Term SubstOnly(const Term& t, const NameSub& sub) {
  switch (t.kind) {
    case TermKind::kVariable: {
      auto it = sub.find(t.name);
      return it == sub.end() ? t : it->second;
    }
    case TermKind::kConstant:
      return t;
    case TermKind::kFunction: {
      Term out = t;
      for (Term& a : out.args) a = SubstOnly(a, sub);
      return out;
    }
  }
  return t;
}

// Substitution followed by the existential-prefix rule in one walk — the
// prefix applies to untouched variables and to variables inside
// substitution images alike, which is what the two sequential passes of
// the unfused form produced.
Term AlignTerm(const Term& t, const NameSub& sub, const char* prefix) {
  switch (t.kind) {
    case TermKind::kVariable: {
      auto it = sub.find(t.name);
      return PrefixVars(it == sub.end() ? t : it->second, prefix);
    }
    case TermKind::kConstant:
      return t;
    case TermKind::kFunction: {
      Term out = t;
      for (Term& a : out.args) a = AlignTerm(a, sub, prefix);
      return out;
    }
  }
  return t;
}

ConjunctiveQuery AlignQuery(const ConjunctiveQuery& q, const NameSub& sub,
                            const char* prefix) {
  ConjunctiveQuery out;
  out.head_predicate = q.head_predicate;
  out.head.reserve(q.head.size());
  for (const Term& t : q.head) out.head.push_back(AlignTerm(t, sub, prefix));
  out.body.reserve(q.body.size());
  for (const Atom& a : q.body) {
    Atom atom;
    atom.predicate = a.predicate;
    atom.terms.reserve(a.terms.size());
    for (const Term& t : a.terms) {
      atom.terms.push_back(AlignTerm(t, sub, prefix));
    }
    out.body.push_back(std::move(atom));
  }
  return out;
}

}  // namespace

Tgd AlignTgd(const ConjunctiveQuery& source_in,
             const ConjunctiveQuery& target_in) {
  // One fused walk per side: head variables align to w0.. (first
  // occurrence wins), the target head maps onto the aligned source head,
  // and every other variable gets its side prefix on the way past.
  NameSub sigma;
  for (size_t i = 0; i < source_in.head.size(); ++i) {
    sigma.emplace(source_in.head[i].name,
                  Term::Var("w" + std::to_string(i)));
  }
  NameSub tau;
  for (size_t i = 0; i < target_in.head.size() && i < source_in.head.size();
       ++i) {
    tau.emplace(target_in.head[i].name, SubstOnly(source_in.head[i], sigma));
  }
  return Tgd{AlignQuery(source_in, sigma, "s_"),
             AlignQuery(target_in, tau, "t_")};
}

bool EquivalentTgds(const Tgd& a, const Tgd& b) {
  if (a.source.head.size() != b.source.head.size() ||
      a.target.head.size() != b.target.head.size() ||
      b.source.head.size() != b.target.head.size()) {
    return false;
  }
  // The frontier orders of independently produced mappings may differ; try
  // every alignment of b's frontier against a's (frontiers are tiny).
  const size_t n = b.source.head.size();
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  do {
    Tgd permuted = b;
    for (size_t i = 0; i < n; ++i) {
      permuted.source.head[i] = b.source.head[perm[i]];
      permuted.target.head[i] = b.target.head[perm[i]];
    }
    if (Equivalent(a.source, permuted.source) &&
        Equivalent(a.target, permuted.target)) {
      return true;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return false;
}

bool EquivalentTgds(const Tgd& a, const Tgd& b, EquivCache* cache) {
  if (cache == nullptr) return EquivalentTgds(a, b);
  if (a.source.head.size() != b.source.head.size() ||
      a.target.head.size() != b.target.head.size() ||
      b.source.head.size() != b.target.head.size()) {
    return false;
  }
  return EquivalentTgds(a, cache->Intern(a.source), cache->Intern(a.target),
                        b, cache->Intern(b.source), cache->Intern(b.target),
                        *cache);
}

bool EquivalentTgds(const Tgd& a, CqRef a_src, CqRef a_tgt, const Tgd& b,
                    CqRef b_src, CqRef b_tgt, EquivCache& cache) {
  if (a.source.head.size() != b.source.head.size() ||
      a.target.head.size() != b.target.head.size() ||
      b.source.head.size() != b.target.head.size()) {
    return false;
  }
  // Predicate-set precheck (see header): a mask mismatch on either side
  // rules out every frontier permutation at once.
  if (cache.use_signatures &&
      (cache.PredicateMask(a_src) != cache.PredicateMask(b_src) ||
       cache.PredicateMask(a_tgt) != cache.PredicateMask(b_tgt))) {
    ++cache.mutable_stats().signature_skips;
    return false;
  }
  // The identity alignment, straight off the handles — no copies, no
  // re-interning. Singleton frontiers stop here.
  if (cache.EquivalentRefs(a_src, b_src, /*minimized=*/false) &&
      cache.EquivalentRefs(a_tgt, b_tgt, /*minimized=*/false)) {
    return true;
  }
  const size_t n = b.source.head.size();
  if (n < 2) return false;
  // Non-identity alignments: a permutation only moves heads, so the
  // bodies are copied once, outside the loop.
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  Tgd permuted = b;
  while (std::next_permutation(perm.begin(), perm.end())) {
    for (size_t i = 0; i < n; ++i) {
      permuted.source.head[i] = b.source.head[perm[i]];
      permuted.target.head[i] = b.target.head[perm[i]];
    }
    if (cache.EquivalentRefs(a_src, cache.Intern(permuted.source),
                             /*minimized=*/false) &&
        cache.EquivalentRefs(a_tgt, cache.Intern(permuted.target),
                             /*minimized=*/false)) {
      return true;
    }
  }
  return false;
}

}  // namespace semap::logic
