#include "logic/tgd.h"

#include <algorithm>
#include <numeric>

#include "logic/containment.h"
#include "util/string_util.h"

namespace semap::logic {

std::string Tgd::ToString() const {
  std::vector<std::string> src_atoms;
  for (const Atom& a : source.body) src_atoms.push_back(a.ToString());
  std::vector<std::string> tgt_atoms;
  for (const Atom& a : target.body) tgt_atoms.push_back(a.ToString());
  std::vector<std::string> frontier_names;
  for (const Term& t : source.head) frontier_names.push_back(t.ToString());
  std::string out = "forall " + Join(frontier_names, ", ") + " . ";
  out += Join(src_atoms, " & ");
  out += " -> ";
  std::vector<std::string> exists = target.ExistentialVariables();
  if (!exists.empty()) {
    out += "exists " + Join(exists, ", ") + " . ";
  }
  out += Join(tgt_atoms, " & ");
  return out;
}

Tgd AlignTgd(const ConjunctiveQuery& source_in,
             const ConjunctiveQuery& target_in) {
  Substitution sigma;
  for (size_t i = 0; i < source_in.head.size(); ++i) {
    const std::string& v = source_in.head[i].name;
    if (sigma.count(v) == 0) sigma[v] = Term::Var("w" + std::to_string(i));
  }
  ConjunctiveQuery source = ApplySubstitution(source_in, sigma);

  Substitution tau;
  for (size_t i = 0; i < target_in.head.size() && i < source.head.size();
       ++i) {
    const std::string& v = target_in.head[i].name;
    if (tau.count(v) == 0) tau[v] = source.head[i];
  }
  ConjunctiveQuery target = ApplySubstitution(target_in, tau);

  auto prefix_existentials = [](ConjunctiveQuery& q, const std::string& p) {
    Substitution sub;
    for (const std::string& v : q.Variables()) {
      if (v.rfind("w", 0) != 0) sub[v] = Term::Var(p + v);
    }
    q = ApplySubstitution(q, sub);
  };
  prefix_existentials(source, "s_");
  prefix_existentials(target, "t_");
  return Tgd{std::move(source), std::move(target)};
}

bool EquivalentTgds(const Tgd& a, const Tgd& b) {
  if (a.source.head.size() != b.source.head.size() ||
      a.target.head.size() != b.target.head.size() ||
      b.source.head.size() != b.target.head.size()) {
    return false;
  }
  // The frontier orders of independently produced mappings may differ; try
  // every alignment of b's frontier against a's (frontiers are tiny).
  const size_t n = b.source.head.size();
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  do {
    Tgd permuted = b;
    for (size_t i = 0; i < n; ++i) {
      permuted.source.head[i] = b.source.head[perm[i]];
      permuted.target.head[i] = b.target.head[perm[i]];
    }
    if (Equivalent(a.source, permuted.source) &&
        Equivalent(a.target, permuted.target)) {
      return true;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return false;
}

}  // namespace semap::logic
