#include "logic/containment.h"

#include <algorithm>

namespace semap::logic {

namespace {

// Extend `sub` so that pattern maps onto target; returns false (leaving sub
// possibly extended — callers snapshot) when impossible.
bool MatchTerm(const Term& pattern, const Term& target, Substitution& sub) {
  switch (pattern.kind) {
    case TermKind::kVariable: {
      auto it = sub.find(pattern.name);
      if (it != sub.end()) return it->second == target;
      sub[pattern.name] = target;
      return true;
    }
    case TermKind::kConstant:
      return target.kind == TermKind::kConstant && target.name == pattern.name;
    case TermKind::kFunction: {
      if (target.kind != TermKind::kFunction || target.name != pattern.name ||
          target.args.size() != pattern.args.size()) {
        return false;
      }
      for (size_t i = 0; i < pattern.args.size(); ++i) {
        if (!MatchTerm(pattern.args[i], target.args[i], sub)) return false;
      }
      return true;
    }
  }
  return false;
}

bool MatchAtom(const Atom& pattern, const Atom& target, Substitution& sub) {
  if (pattern.predicate != target.predicate ||
      pattern.terms.size() != target.terms.size()) {
    return false;
  }
  for (size_t i = 0; i < pattern.terms.size(); ++i) {
    if (!MatchTerm(pattern.terms[i], target.terms[i], sub)) return false;
  }
  return true;
}

// Backstop against catastrophic backtracking on bodies with many
// same-predicate atoms; hitting it reports "no homomorphism", which is the
// conservative answer for every caller (containment checks fail open).
constexpr long kMaxHomSteps = 200000;

bool SearchBody(const std::vector<Atom>& pattern_body, size_t index,
                const std::vector<Atom>& target_body, Substitution& sub,
                long& steps) {
  if (index == pattern_body.size()) return true;
  for (const Atom& candidate : target_body) {
    if (++steps > kMaxHomSteps) return false;
    Substitution snapshot = sub;
    if (MatchAtom(pattern_body[index], candidate, sub) &&
        SearchBody(pattern_body, index + 1, target_body, sub, steps)) {
      return true;
    }
    sub = std::move(snapshot);
  }
  return false;
}

}  // namespace

std::optional<Substitution> FindHomomorphism(const ConjunctiveQuery& from,
                                             const ConjunctiveQuery& to) {
  if (from.head.size() != to.head.size()) return std::nullopt;
  Substitution sub;
  for (size_t i = 0; i < from.head.size(); ++i) {
    if (!MatchTerm(from.head[i], to.head[i], sub)) return std::nullopt;
  }
  // Match the most selective pattern atoms first: fewer same-predicate
  // candidates in the target means earlier pruning.
  std::vector<Atom> ordered = from.body;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [&](const Atom& a, const Atom& b) {
                     auto count = [&](const Atom& atom) {
                       size_t n = 0;
                       for (const Atom& t : to.body) {
                         if (t.predicate == atom.predicate) ++n;
                       }
                       return n;
                     };
                     return count(a) < count(b);
                   });
  long steps = 0;
  if (!SearchBody(ordered, 0, to.body, sub, steps)) return std::nullopt;
  return sub;
}

bool Contains(const ConjunctiveQuery& q_super, const ConjunctiveQuery& q_sub) {
  return FindHomomorphism(q_super, q_sub).has_value();
}

bool Equivalent(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
  return Contains(a, b) && Contains(b, a);
}

ConjunctiveQuery Minimize(const ConjunctiveQuery& query) {
  ConjunctiveQuery current = query;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < current.body.size(); ++i) {
      ConjunctiveQuery candidate = current;
      candidate.body.erase(candidate.body.begin() + static_cast<long>(i));
      // Removing an atom only generalizes; the removal is sound when the
      // smaller query still contains the original (hom current -> candidate).
      if (FindHomomorphism(current, candidate).has_value()) {
        current = std::move(candidate);
        changed = true;
        break;
      }
    }
  }
  return current;
}

}  // namespace semap::logic
