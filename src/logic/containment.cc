#include "logic/containment.h"

#include <algorithm>
#include <string_view>
#include <utility>

namespace semap::logic {

namespace {

// Extend `sub` so that pattern maps onto target; returns false (leaving sub
// possibly extended — callers snapshot) when impossible.
bool MatchTerm(const Term& pattern, const Term& target, Substitution& sub) {
  switch (pattern.kind) {
    case TermKind::kVariable: {
      auto it = sub.find(pattern.name);
      if (it != sub.end()) return it->second == target;
      sub[pattern.name] = target;
      return true;
    }
    case TermKind::kConstant:
      return target.kind == TermKind::kConstant && target.name == pattern.name;
    case TermKind::kFunction: {
      if (target.kind != TermKind::kFunction || target.name != pattern.name ||
          target.args.size() != pattern.args.size()) {
        return false;
      }
      for (size_t i = 0; i < pattern.args.size(); ++i) {
        if (!MatchTerm(pattern.args[i], target.args[i], sub)) return false;
      }
      return true;
    }
  }
  return false;
}

bool MatchAtom(const Atom& pattern, const Atom& target, Substitution& sub) {
  if (pattern.predicate != target.predicate ||
      pattern.terms.size() != target.terms.size()) {
    return false;
  }
  for (size_t i = 0; i < pattern.terms.size(); ++i) {
    if (!MatchTerm(pattern.terms[i], target.terms[i], sub)) return false;
  }
  return true;
}

// Backstop against catastrophic backtracking on bodies with many
// same-predicate atoms; hitting it reports "no homomorphism", which is the
// conservative answer for every caller (containment checks fail open).
constexpr long kMaxHomSteps = 200000;

bool SearchBody(const std::vector<Atom>& pattern_body, size_t index,
                const std::vector<Atom>& target_body, Substitution& sub,
                long& steps) {
  if (index == pattern_body.size()) return true;
  for (const Atom& candidate : target_body) {
    if (++steps > kMaxHomSteps) return false;
    Substitution snapshot = sub;
    if (MatchAtom(pattern_body[index], candidate, sub) &&
        SearchBody(pattern_body, index + 1, target_body, sub, steps)) {
      return true;
    }
    sub = std::move(snapshot);
  }
  return false;
}

// ---- Existence-only homomorphism search --------------------------------
//
// Same search, same atom ordering, same step accounting as the
// Substitution-returning path above — so verdicts (including the
// fail-open step-limit behavior) are identical — but bindings live in an
// append-only vector of (name, target-term pointer) pairs: undo is a
// truncation, lookups are linear scans of a handful of entries, and no
// std::map of Term copies is ever built. Contains/Equivalent/Minimize
// only need the yes/no answer, and they ask it thousands of times per
// run.

struct FastSub {
  std::vector<std::pair<std::string_view, const Term*>> bindings;

  const Term* Find(std::string_view name) const {
    for (const auto& [bound, term] : bindings) {
      if (bound == name) return term;
    }
    return nullptr;
  }
};

bool FastMatchTerm(const Term& pattern, const Term& target, FastSub& sub) {
  switch (pattern.kind) {
    case TermKind::kVariable: {
      if (const Term* bound = sub.Find(pattern.name)) {
        return *bound == target;
      }
      sub.bindings.push_back({pattern.name, &target});
      return true;
    }
    case TermKind::kConstant:
      return target.kind == TermKind::kConstant && target.name == pattern.name;
    case TermKind::kFunction: {
      if (target.kind != TermKind::kFunction || target.name != pattern.name ||
          target.args.size() != pattern.args.size()) {
        return false;
      }
      for (size_t i = 0; i < pattern.args.size(); ++i) {
        if (!FastMatchTerm(pattern.args[i], target.args[i], sub)) return false;
      }
      return true;
    }
  }
  return false;
}

bool FastMatchAtom(const Atom& pattern, const Atom& target, FastSub& sub) {
  if (pattern.predicate != target.predicate ||
      pattern.terms.size() != target.terms.size()) {
    return false;
  }
  for (size_t i = 0; i < pattern.terms.size(); ++i) {
    if (!FastMatchTerm(pattern.terms[i], target.terms[i], sub)) return false;
  }
  return true;
}

bool FastSearchBody(const std::vector<const Atom*>& pattern_body, size_t index,
                    const std::vector<const Atom*>& target_body, FastSub& sub,
                    long& steps) {
  if (index == pattern_body.size()) return true;
  for (const Atom* candidate : target_body) {
    if (++steps > kMaxHomSteps) return false;
    size_t mark = sub.bindings.size();
    if (FastMatchAtom(*pattern_body[index], *candidate, sub) &&
        FastSearchBody(pattern_body, index + 1, target_body, sub, steps)) {
      return true;
    }
    sub.bindings.resize(mark);
  }
  return false;
}

bool HasHomomorphism(const std::vector<Term>& from_head,
                     const std::vector<const Atom*>& from_body,
                     const std::vector<Term>& to_head,
                     const std::vector<const Atom*>& to_body) {
  if (from_head.size() != to_head.size()) return false;
  FastSub sub;
  for (size_t i = 0; i < from_head.size(); ++i) {
    if (!FastMatchTerm(from_head[i], to_head[i], sub)) return false;
  }
  // Match the most selective pattern atoms first: fewer same-predicate
  // candidates in the target means earlier pruning. Counts are computed
  // once per atom, not inside the comparator.
  std::vector<std::pair<size_t, const Atom*>> keyed;
  keyed.reserve(from_body.size());
  for (const Atom* a : from_body) {
    size_t n = 0;
    for (const Atom* t : to_body) {
      if (t->predicate == a->predicate) ++n;
    }
    keyed.push_back({n, a});
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  std::vector<const Atom*> ordered;
  ordered.reserve(keyed.size());
  for (const auto& [n, a] : keyed) ordered.push_back(a);
  long steps = 0;
  return FastSearchBody(ordered, 0, to_body, sub, steps);
}

std::vector<const Atom*> AtomPtrs(const std::vector<Atom>& body) {
  std::vector<const Atom*> ptrs;
  ptrs.reserve(body.size());
  for (const Atom& a : body) ptrs.push_back(&a);
  return ptrs;
}

}  // namespace

std::optional<Substitution> FindHomomorphism(const ConjunctiveQuery& from,
                                             const ConjunctiveQuery& to) {
  if (from.head.size() != to.head.size()) return std::nullopt;
  Substitution sub;
  for (size_t i = 0; i < from.head.size(); ++i) {
    if (!MatchTerm(from.head[i], to.head[i], sub)) return std::nullopt;
  }
  // Match the most selective pattern atoms first: fewer same-predicate
  // candidates in the target means earlier pruning.
  std::vector<Atom> ordered = from.body;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [&](const Atom& a, const Atom& b) {
                     auto count = [&](const Atom& atom) {
                       size_t n = 0;
                       for (const Atom& t : to.body) {
                         if (t.predicate == atom.predicate) ++n;
                       }
                       return n;
                     };
                     return count(a) < count(b);
                   });
  long steps = 0;
  if (!SearchBody(ordered, 0, to.body, sub, steps)) return std::nullopt;
  return sub;
}

bool Contains(const ConjunctiveQuery& q_super, const ConjunctiveQuery& q_sub) {
  return HasHomomorphism(q_super.head, AtomPtrs(q_super.body), q_sub.head,
                         AtomPtrs(q_sub.body));
}

bool Equivalent(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
  return Contains(a, b) && Contains(b, a);
}

ConjunctiveQuery Minimize(const ConjunctiveQuery& query) {
  return Minimize(ConjunctiveQuery(query));
}

ConjunctiveQuery Minimize(ConjunctiveQuery&& query) {
  ConjunctiveQuery current = std::move(query);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < current.body.size(); ++i) {
      // The removed atom must map onto another atom with the same
      // predicate; when its predicate occurs only once in the body, no
      // such image exists and the search is skipped (the atom is kept).
      size_t same_predicate = 0;
      for (const Atom& atom : current.body) {
        if (atom.predicate == current.body[i].predicate) ++same_predicate;
      }
      if (same_predicate <= 1) continue;
      // Removing an atom only generalizes; the removal is sound when the
      // smaller query still contains the original (hom current -> candidate).
      std::vector<const Atom*> pattern = AtomPtrs(current.body);
      std::vector<const Atom*> target;
      target.reserve(current.body.size() - 1);
      for (size_t j = 0; j < current.body.size(); ++j) {
        if (j != i) target.push_back(&current.body[j]);
      }
      if (HasHomomorphism(current.head, pattern, current.head, target)) {
        current.body.erase(current.body.begin() + static_cast<long>(i));
        changed = true;
        break;
      }
    }
  }
  return current;
}

}  // namespace semap::logic
