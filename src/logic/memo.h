// EquivCache: memoized, signature-pruned equivalence / containment over
// conjunctive queries, built on the interned logic core.
//
// The rewriting engine asks the same questions about the same (up to
// variable renaming and body order) queries thousands of times per run —
// thousands of enumerated rewritings collapse to a few dozen survivors.
// EquivCache makes the repeat questions cheap, without ever changing an
// answer:
//
//  * signature pruning — a homomorphism from q1 into q2 maps every body
//    atom of q1 onto a same-predicate atom of q2, so when q1 mentions a
//    predicate q2 lacks, containment fails without a search. For
//    *minimized* queries (cores) more is true: equivalent cores are
//    isomorphic, so equivalence requires equal body sizes and equal
//    predicate multisets. Signatures are renaming-invariant and computed
//    once per interned handle;
//  * memoization — verdicts are cached in per-run tables keyed by pairs
//    of interned pointers, so a comparison repeated across candidates is
//    a hash lookup.
//
// Both are sound: they only ever skip work whose outcome is forced (the
// core-isomorphism pruning is applied only when the caller vouches that
// both sides are minimized). The cache is single-threaded by design (one
// per rewriting session / run).
#ifndef SEMAP_LOGIC_MEMO_H_
#define SEMAP_LOGIC_MEMO_H_

#include <cstdint>
#include <unordered_map>
#include <utility>

#include "logic/interner.h"

namespace semap::logic {

/// Counters exposed so the rewriting layer can surface `rewriting.*`
/// metrics; monotonic over the cache's lifetime.
struct EquivCacheStats {
  int64_t memo_hits = 0;        // pointer-equality or cached-verdict hits
  int64_t signature_skips = 0;  // decided by signature alone
  int64_t hom_searches = 0;     // full homomorphism searches still run
};

class EquivCache {
 public:
  explicit EquivCache(Interner* interner) : interner_(interner) {}
  EquivCache(const EquivCache&) = delete;
  EquivCache& operator=(const EquivCache&) = delete;

  /// Canonical handle for a query value (interned as-is).
  CqRef Intern(const ConjunctiveQuery& q) { return interner_->Intern(q); }

  /// Canonical-form handle: queries equal up to variable renaming and
  /// body order share the returned pointer. Memoized per interned input.
  CqRef Canonical(CqRef q);

  /// Same verdicts as logic::Equivalent / logic::Contains, cheaper on
  /// repeats. Set `minimized` only when BOTH queries are cores (outputs
  /// of logic::Minimize, possibly renamed): that unlocks the
  /// core-isomorphism signature pruning, which is unsound for
  /// non-minimized inputs. `use_signatures` / `use_memo` are test escapes
  /// that force the slow path (soundness pinning); both default on.
  bool EquivalentRefs(CqRef a, CqRef b, bool minimized);
  bool ContainsRefs(CqRef q_super, CqRef q_sub);

  /// Value-level conveniences: intern, then compare by handle. Safe for
  /// arbitrary (non-minimized) inputs.
  bool Equivalent(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
    return EquivalentRefs(Intern(a), Intern(b), /*minimized=*/false);
  }
  bool Contains(const ConjunctiveQuery& q_super,
                const ConjunctiveQuery& q_sub) {
    return ContainsRefs(Intern(q_super), Intern(q_sub));
  }

  /// Bloom mask of `q`'s body predicates (renaming-invariant). Exposed for
  /// set-equality prechecks above the CQ level (e.g. tgd equivalence):
  /// equal predicate sets imply equal masks, so a mask mismatch soundly
  /// proves the sets — and hence the queries — inequivalent.
  uint64_t PredicateMask(CqRef q) { return SignatureOf(q).predicate_mask; }

  const EquivCacheStats& stats() const { return stats_; }
  /// For collaborating fast paths (tgd-level pruning) that decide with the
  /// cache's signatures and want their skips counted with the cache's.
  EquivCacheStats& mutable_stats() { return stats_; }

  bool use_signatures = true;
  bool use_memo = true;

 private:
  struct Signature {
    uint64_t predicate_mask = 0;   // bloom of body predicates
    uint64_t multiset_hash = 0;    // order-independent body predicate hash
    uint32_t body_size = 0;
    uint32_t head_size = 0;
  };

  const Signature& SignatureOf(CqRef q);
  bool ContainsImpl(CqRef super, CqRef sub);

  struct PairHash {
    size_t operator()(const std::pair<CqRef, CqRef>& p) const {
      return std::hash<const void*>{}(p.first) * 1000003u ^
             std::hash<const void*>{}(p.second);
    }
  };

  Interner* interner_;
  EquivCacheStats stats_;
  std::unordered_map<CqRef, CqRef> canonical_;
  std::unordered_map<CqRef, Signature> signatures_;
  std::unordered_map<std::pair<CqRef, CqRef>, bool, PairHash> contains_;
};

}  // namespace semap::logic

#endif  // SEMAP_LOGIC_MEMO_H_
