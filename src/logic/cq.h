// First-order building blocks: terms, atoms and conjunctive queries.
//
// Conjunctive queries are the lingua franca of the library: table semantics
// are LAV formulas (CQ bodies over CM predicates), discovered conceptual
// subgraphs are encoded as CQs, rewritings are CQs over table predicates,
// and the evaluation matches generated mappings against benchmarks by CQ
// equivalence.
#ifndef SEMAP_LOGIC_CQ_H_
#define SEMAP_LOGIC_CQ_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace semap::logic {

enum class TermKind {
  kVariable,
  kConstant,
  kFunction,  // uninterpreted function application, e.g. a Skolem term
};

// The value constructors below (Term::Var/Const/Func and aggregate
// Term{...}/Atom{...}) are the legacy construction path: each call
// allocates fresh strings and compares structurally. Hot paths construct
// through logic::TermFactory (logic/interner.h) instead, which hash-conses
// the structures so equality is a pointer compare. The value constructors
// stay available — values remain the interchange type at API boundaries —
// but new search/filter code should take interned handles. Define
// SEMAP_DEPRECATE_FREE_TERMS to have the compiler flag every remaining
// free-construction site.
#if defined(SEMAP_DEPRECATE_FREE_TERMS)
#define SEMAP_TERM_DEPRECATED \
  [[deprecated("construct via logic::TermFactory (logic/interner.h)")]]
#else
#define SEMAP_TERM_DEPRECATED
#endif

/// \brief A variable, constant, or (Skolem) function term.
struct Term {
  TermKind kind = TermKind::kVariable;
  std::string name;
  std::vector<Term> args;  // kFunction only

  /// Deprecated for hot paths: prefer logic::TermFactory::Var, which
  /// returns a hash-consed handle (see logic/interner.h and
  /// docs/LOGIC_CORE.md).
  SEMAP_TERM_DEPRECATED static Term Var(std::string name) {
    return Term{TermKind::kVariable, std::move(name), {}};
  }
  /// Deprecated for hot paths: prefer logic::TermFactory::Constant.
  SEMAP_TERM_DEPRECATED static Term Const(std::string name) {
    return Term{TermKind::kConstant, std::move(name), {}};
  }
  /// Deprecated for hot paths: prefer logic::TermFactory::Func.
  SEMAP_TERM_DEPRECATED static Term Func(std::string symbol,
                                         std::vector<Term> args) {
    return Term{TermKind::kFunction, std::move(symbol), std::move(args)};
  }

  bool IsVar() const { return kind == TermKind::kVariable; }

  std::string ToString() const;

  bool operator==(const Term& other) const;
  bool operator<(const Term& other) const;
};

/// \brief predicate(t1, ..., tn).
struct Atom {
  std::string predicate;
  std::vector<Term> terms;

  std::string ToString() const;
  bool operator==(const Atom&) const = default;
  bool operator<(const Atom& other) const {
    if (predicate != other.predicate) return predicate < other.predicate;
    return terms < other.terms;
  }
};

/// \brief head(x̄) :- body. Variables in the body not in the head are
/// existentially quantified.
struct ConjunctiveQuery {
  std::string head_predicate = "ans";
  std::vector<Term> head;
  std::vector<Atom> body;

  /// All distinct variable names appearing in head or body, in first-seen
  /// order.
  std::vector<std::string> Variables() const;
  /// Variables appearing in the body but not the head.
  std::vector<std::string> ExistentialVariables() const;

  std::string ToString() const;
};

/// \brief Substitution of variable names by terms.
using Substitution = std::map<std::string, Term>;

/// Apply `sub` to a term / atom / query (variables without an entry are
/// left unchanged).
Term ApplySubstitution(const Term& term, const Substitution& sub);
Atom ApplySubstitution(const Atom& atom, const Substitution& sub);
ConjunctiveQuery ApplySubstitution(const ConjunctiveQuery& query,
                                   const Substitution& sub);

/// \brief Rename every variable with the given prefix + counter; used to
/// make two queries variable-disjoint.
ConjunctiveQuery RenameApart(const ConjunctiveQuery& query,
                             const std::string& prefix);

}  // namespace semap::logic

#endif  // SEMAP_LOGIC_CQ_H_
