#include "logic/parser.h"

#include <set>

#include "util/lexer.h"

namespace semap::logic {

namespace {

// term := IDENT | IDENT '(' term, ... ')'   (nested = function term)
Result<Term> ParseTerm(TokenCursor& cur) {
  SEMAP_ASSIGN_OR_RETURN(std::string name, cur.ExpectIdentifier());
  if (cur.TryConsumePunct("(")) {
    std::vector<Term> args;
    if (!cur.TryConsumePunct(")")) {
      do {
        SEMAP_ASSIGN_OR_RETURN(Term arg, ParseTerm(cur));
        args.push_back(std::move(arg));
      } while (cur.TryConsumePunct(","));
      SEMAP_RETURN_NOT_OK(cur.ExpectPunct(")"));
    }
    return Term::Func(std::move(name), std::move(args));
  }
  return Term::Var(std::move(name));
}

Result<Atom> ParseAtomAt(TokenCursor& cur) {
  Atom atom;
  SEMAP_ASSIGN_OR_RETURN(atom.predicate, cur.ExpectIdentifier());
  // Dotted predicates ("Person.pname") for attribute atoms.
  while (cur.TryConsumePunct(".")) {
    SEMAP_ASSIGN_OR_RETURN(std::string part, cur.ExpectIdentifier());
    atom.predicate += "." + part;
  }
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct("("));
  if (!cur.TryConsumePunct(")")) {
    do {
      SEMAP_ASSIGN_OR_RETURN(Term term, ParseTerm(cur));
      atom.terms.push_back(std::move(term));
    } while (cur.TryConsumePunct(","));
    SEMAP_RETURN_NOT_OK(cur.ExpectPunct(")"));
  }
  return atom;
}

Result<std::vector<Atom>> ParseAtomList(TokenCursor& cur) {
  std::vector<Atom> atoms;
  do {
    SEMAP_ASSIGN_OR_RETURN(Atom atom, ParseAtomAt(cur));
    atoms.push_back(std::move(atom));
  } while (cur.TryConsumePunct(","));
  return atoms;
}

void CollectVars(const Term& t, std::vector<std::string>& order,
                 std::set<std::string>& seen) {
  if (t.IsVar()) {
    if (seen.insert(t.name).second) order.push_back(t.name);
    return;
  }
  for (const Term& a : t.args) CollectVars(a, order, seen);
}

}  // namespace

Result<Atom> ParseAtom(std::string_view input) {
  SEMAP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  TokenCursor cur(std::move(tokens));
  SEMAP_ASSIGN_OR_RETURN(Atom atom, ParseAtomAt(cur));
  if (!cur.AtEnd()) return cur.ErrorHere("trailing input after atom");
  return atom;
}

Result<ConjunctiveQuery> ParseCq(std::string_view input) {
  SEMAP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  TokenCursor cur(std::move(tokens));
  ConjunctiveQuery query;
  SEMAP_ASSIGN_OR_RETURN(Atom head, ParseAtomAt(cur));
  query.head_predicate = head.predicate;
  query.head = std::move(head.terms);
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct(":"));
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct("-"));
  SEMAP_ASSIGN_OR_RETURN(query.body, ParseAtomList(cur));
  if (!cur.AtEnd()) return cur.ErrorHere("trailing input after query");
  return query;
}

Result<Tgd> ParseTgd(std::string_view input) {
  SEMAP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  TokenCursor cur(std::move(tokens));
  Tgd tgd;
  SEMAP_ASSIGN_OR_RETURN(tgd.source.body, ParseAtomList(cur));
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct("->"));
  SEMAP_ASSIGN_OR_RETURN(tgd.target.body, ParseAtomList(cur));
  if (!cur.AtEnd()) return cur.ErrorHere("trailing input after tgd");

  // Frontier: variables on both sides, ordered by source appearance.
  std::vector<std::string> source_order;
  std::set<std::string> source_seen;
  for (const Atom& a : tgd.source.body) {
    for (const Term& t : a.terms) CollectVars(t, source_order, source_seen);
  }
  std::set<std::string> target_vars;
  {
    std::vector<std::string> order;
    std::set<std::string> seen;
    for (const Atom& a : tgd.target.body) {
      for (const Term& t : a.terms) CollectVars(t, order, seen);
    }
    target_vars = std::move(seen);
  }
  for (const std::string& v : source_order) {
    if (target_vars.count(v) > 0) {
      tgd.source.head.push_back(Term::Var(v));
      tgd.target.head.push_back(Term::Var(v));
    }
  }
  return tgd;
}

}  // namespace semap::logic
