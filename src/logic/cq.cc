#include "logic/cq.h"

#include <tuple>

#include "util/string_util.h"

namespace semap::logic {

std::string Term::ToString() const {
  switch (kind) {
    case TermKind::kVariable:
      return name;
    case TermKind::kConstant:
      return "'" + name + "'";
    case TermKind::kFunction: {
      std::vector<std::string> rendered;
      rendered.reserve(args.size());
      for (const Term& a : args) rendered.push_back(a.ToString());
      return name + "(" + Join(rendered, ", ") + ")";
    }
  }
  return "?";
}

bool Term::operator==(const Term& other) const {
  return kind == other.kind && name == other.name && args == other.args;
}

bool Term::operator<(const Term& other) const {
  if (kind != other.kind) return kind < other.kind;
  if (name != other.name) return name < other.name;
  return args < other.args;
}

std::string Atom::ToString() const {
  std::vector<std::string> rendered;
  rendered.reserve(terms.size());
  for (const Term& t : terms) rendered.push_back(t.ToString());
  return predicate + "(" + Join(rendered, ", ") + ")";
}

namespace {

void CollectVariables(const Term& term, std::vector<std::string>& out,
                      std::set<std::string>& seen) {
  if (term.IsVar()) {
    if (seen.insert(term.name).second) out.push_back(term.name);
    return;
  }
  for (const Term& a : term.args) CollectVariables(a, out, seen);
}

}  // namespace

std::vector<std::string> ConjunctiveQuery::Variables() const {
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const Term& t : head) CollectVariables(t, out, seen);
  for (const Atom& a : body) {
    for (const Term& t : a.terms) CollectVariables(t, out, seen);
  }
  return out;
}

std::vector<std::string> ConjunctiveQuery::ExistentialVariables() const {
  std::set<std::string> head_vars;
  {
    std::vector<std::string> hv;
    std::set<std::string> seen;
    for (const Term& t : head) CollectVariables(t, hv, seen);
    head_vars.insert(hv.begin(), hv.end());
  }
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const Atom& a : body) {
    for (const Term& t : a.terms) CollectVariables(t, out, seen);
  }
  std::vector<std::string> filtered;
  for (const std::string& v : out) {
    if (head_vars.count(v) == 0) filtered.push_back(v);
  }
  return filtered;
}

std::string ConjunctiveQuery::ToString() const {
  std::vector<std::string> head_terms;
  head_terms.reserve(head.size());
  for (const Term& t : head) head_terms.push_back(t.ToString());
  std::vector<std::string> body_atoms;
  body_atoms.reserve(body.size());
  for (const Atom& a : body) body_atoms.push_back(a.ToString());
  return head_predicate + "(" + Join(head_terms, ", ") + ") :- " +
         Join(body_atoms, ", ");
}

Term ApplySubstitution(const Term& term, const Substitution& sub) {
  if (term.IsVar()) {
    auto it = sub.find(term.name);
    return it == sub.end() ? term : it->second;
  }
  if (term.kind == TermKind::kFunction) {
    Term out = term;
    for (Term& a : out.args) a = ApplySubstitution(a, sub);
    return out;
  }
  return term;
}

Atom ApplySubstitution(const Atom& atom, const Substitution& sub) {
  Atom out = atom;
  for (Term& t : out.terms) t = ApplySubstitution(t, sub);
  return out;
}

ConjunctiveQuery ApplySubstitution(const ConjunctiveQuery& query,
                                   const Substitution& sub) {
  ConjunctiveQuery out = query;
  for (Term& t : out.head) t = ApplySubstitution(t, sub);
  for (Atom& a : out.body) a = ApplySubstitution(a, sub);
  return out;
}

ConjunctiveQuery RenameApart(const ConjunctiveQuery& query,
                             const std::string& prefix) {
  Substitution sub;
  int counter = 0;
  for (const std::string& v : query.Variables()) {
    sub[v] = Term::Var(prefix + std::to_string(counter++));
  }
  return ApplySubstitution(query, sub);
}

}  // namespace semap::logic
