// Hash-consed (interned) terms, atoms and conjunctive queries: the logic
// core behind the rewriting hot path.
//
// An Interner owns one canonical, arena-allocated node per structurally
// distinct Term / Atom / ConjunctiveQuery ever interned through it, so
//
//   pointer equality  <=>  structural equality      (within one interner)
//
// and every duplicate check, memo-table key and substitution lookup in the
// rewriting engine becomes a pointer compare instead of a recursive
// string-by-string walk. `TermFactory` is the construction face of the
// same object: all new Term/Atom construction in src/logic and
// src/rewriting goes through it (the free `Term::Var` / brace-init style
// remains as a deprecated compatibility surface — see docs/LOGIC_CORE.md).
//
// Interning is thread-safe: one interner may be shared by the supervised
// worker pool (`--jobs=N`), and concurrent Intern() calls for equal values
// return the same pointer. Per-run search scratch built on top of the
// interner (RewriteSession) is single-threaded by design.
#ifndef SEMAP_LOGIC_INTERNER_H_
#define SEMAP_LOGIC_INTERNER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "logic/cq.h"

namespace semap::logic {

/// Canonical handles. Never null once returned; owned by the Interner that
/// produced them and valid for its lifetime.
using TermRef = const Term*;
using AtomRef = const Atom*;
using CqRef = const ConjunctiveQuery*;

/// \brief Monotonic arena: chunked placement-new allocation, freed (and
/// destructor-swept) all at once. Candidate teardown in the rewriter is a
/// Reset() — a pointer rewind plus the registered destructor sweep — not a
/// per-node free.
class Arena {
 public:
  Arena() = default;
  ~Arena() { Reset(); }
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Construct a T inside the arena. T's destructor runs at Reset().
  template <typename T, typename... Args>
  T* Create(Args&&... args) {
    void* slot = Allocate(sizeof(T), alignof(T));
    T* obj = new (slot) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      dtors_.push_back({obj, [](void* p) { static_cast<T*>(p)->~T(); }});
    }
    return obj;
  }

  /// Destroy every object and rewind; chunk memory is kept for reuse.
  void Reset();

  /// Bytes handed out since construction (monotonic, survives Reset so the
  /// `rewriting.arena_bytes` counter reflects total arena traffic).
  size_t bytes_allocated() const { return bytes_allocated_; }

 private:
  void* Allocate(size_t size, size_t align);

  struct Chunk {
    std::unique_ptr<char[]> data;
    size_t capacity = 0;
    size_t used = 0;
  };
  struct Dtor {
    void* object;
    void (*destroy)(void*);
  };
  std::vector<Chunk> chunks_;
  std::vector<Dtor> dtors_;
  size_t bytes_allocated_ = 0;
};

/// \brief Hash-consing factory for the logic core. See file comment.
class Interner {
 public:
  Interner() = default;
  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;

  // ---- Construction API (the TermFactory face) ----

  /// Canonical variable / constant / function-application terms.
  TermRef Var(std::string_view name);
  TermRef Constant(std::string_view name);
  TermRef Func(std::string_view symbol, std::vector<Term> args);
  TermRef Func(std::string_view symbol, const std::vector<TermRef>& args);

  /// Canonical atom from interned terms (the hot-path form) or values.
  AtomRef MakeAtom(std::string_view predicate,
                   const std::vector<TermRef>& terms);
  AtomRef MakeAtom(std::string_view predicate, std::vector<Term> terms);

  // ---- Canonicalization of existing values ----

  TermRef Intern(const Term& term);
  AtomRef Intern(const Atom& atom);
  CqRef Intern(const ConjunctiveQuery& query);

  /// Dense id of an interned node, assigned in first-intern order (so it
  /// is deterministic for a deterministic call sequence). Ids are the memo
  /// keys of the rewriting engine's per-run tables.
  uint32_t IdOf(TermRef term) const;
  uint32_t IdOf(AtomRef atom) const;
  uint32_t IdOf(CqRef query) const;

  /// Interned argument / term handles of an interned function term / atom,
  /// computed once at intern time so the unification hot loop never
  /// re-interns children. The argument must be a handle returned by this
  /// interner (they are stored inline with the node, so the lookup is a
  /// pointer cast — no lock, no hash). Safe to call concurrently with
  /// Intern(): a node's children are filled in before its handle escapes
  /// and never change afterwards.
  const std::vector<TermRef>& ArgsOf(TermRef term) const;
  const std::vector<TermRef>& TermsOf(AtomRef atom) const;

  /// Number of distinct nodes interned so far (terms + atoms + queries).
  size_t size() const;
  /// Bytes allocated by the node arena.
  size_t arena_bytes() const;

 private:
  struct TermNode;
  struct AtomNode;
  struct TermPtrHash {
    size_t operator()(const Term* t) const;
  };
  struct TermPtrEq {
    bool operator()(const Term* a, const Term* b) const { return *a == *b; }
  };
  struct AtomPtrHash {
    size_t operator()(const Atom* a) const;
  };
  struct AtomPtrEq {
    bool operator()(const Atom* a, const Atom* b) const { return *a == *b; }
  };
  struct CqPtrHash {
    size_t operator()(const ConjunctiveQuery* q) const;
  };
  struct CqPtrEq {
    bool operator()(const ConjunctiveQuery* a,
                    const ConjunctiveQuery* b) const;
  };

  TermRef InternTermLocked(const Term& term);
  AtomRef InternAtomLocked(const Atom& atom);

  mutable std::mutex mu_;
  Arena arena_;
  std::unordered_map<const Term*, uint32_t, TermPtrHash, TermPtrEq> terms_;
  std::unordered_map<const Atom*, uint32_t, AtomPtrHash, AtomPtrEq> atoms_;
  std::unordered_map<const ConjunctiveQuery*, uint32_t, CqPtrHash, CqPtrEq>
      queries_;
  uint32_t next_id_ = 0;
};

/// The construction face of the interner; see docs/LOGIC_CORE.md. All new
/// Term/Atom construction in src/logic and src/rewriting takes one of
/// these instead of calling the deprecated free constructors.
using TermFactory = Interner;

// ---- Interned substitution and unification -------------------------------
//
// The rewriting search keeps its substitution as a pointer-keyed map from
// interned variable to interned term. Lookups hash a pointer, equality is
// a pointer compare, and undoing a failed unification is popping a trail —
// no snapshot copies of the whole substitution.

using RefBinding = std::unordered_map<TermRef, TermRef>;
using RefTrail = std::vector<TermRef>;

/// Fully resolve `term` under `binding`; resolved function terms are
/// re-interned through `interner` so the result is canonical.
TermRef ResolveRef(TermRef term, const RefBinding& binding,
                   Interner& interner);

/// Extend `binding` to a most general unifier of `a` and `b` (occurs check
/// included). Newly bound variables are pushed onto `trail`; on failure the
/// binding is left partially extended — undo with UndoRefTrail to a mark
/// taken before the call. Semantics mirror logic::Unify exactly.
bool UnifyRefs(TermRef a, TermRef b, RefBinding& binding, RefTrail& trail,
               Interner& interner);

/// Atom-level unification: same predicate, same arity, argument-wise.
bool UnifyAtomRefs(AtomRef a, AtomRef b, RefBinding& binding, RefTrail& trail,
                   Interner& interner);

/// Pop trail entries down to `mark`, erasing their bindings.
void UndoRefTrail(RefBinding& binding, RefTrail& trail, size_t mark);

// ---- Canonical forms -----------------------------------------------------

/// \brief Rename variables by first occurrence (head then body), sort the
/// body, rename again: a deterministic canonical form such that two
/// queries with equal CanonicalCq results are variable-renamings /
/// body-reorderings of one another (hence equivalent). The converse does
/// not hold — canonical inequality proves nothing — which is exactly what
/// a sound fast path needs. Interning the canonical form makes "seen this
/// rewriting before?" a pointer compare.
ConjunctiveQuery CanonicalCq(const ConjunctiveQuery& query);

}  // namespace semap::logic

#endif  // SEMAP_LOGIC_INTERNER_H_
