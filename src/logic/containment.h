// Conjunctive-query homomorphism, containment, equivalence, minimization.
//
// Containment is decided by the classical homomorphism theorem
// (Chandra–Merlin): q2 ⊆ q1 iff there is a homomorphism from q1 into q2
// mapping head to head. Bodies in this library are small (a handful of
// atoms), so the exponential worst case never bites.
#ifndef SEMAP_LOGIC_CONTAINMENT_H_
#define SEMAP_LOGIC_CONTAINMENT_H_

#include <optional>

#include "logic/cq.h"

namespace semap::logic {

/// \brief Find a homomorphism h from `from` into `to`: h maps variables of
/// `from` to terms of `to`, constants and function symbols to themselves,
/// every body atom of `from` onto some body atom of `to`, and the head of
/// `from` onto the head of `to`.
std::optional<Substitution> FindHomomorphism(const ConjunctiveQuery& from,
                                             const ConjunctiveQuery& to);

/// \brief q_sub ⊆ q_super: every answer of q_sub is an answer of q_super.
bool Contains(const ConjunctiveQuery& q_super, const ConjunctiveQuery& q_sub);

/// \brief Mutual containment.
bool Equivalent(const ConjunctiveQuery& a, const ConjunctiveQuery& b);

/// \brief Remove redundant body atoms: the core of the query, unique up to
/// isomorphism.
ConjunctiveQuery Minimize(const ConjunctiveQuery& query);

/// \brief Move overload: minimizes in place, sparing the copy when the
/// caller is done with the argument.
ConjunctiveQuery Minimize(ConjunctiveQuery&& query);

}  // namespace semap::logic

#endif  // SEMAP_LOGIC_CONTAINMENT_H_
