// Source-to-target tuple-generating dependencies (GLAV mappings).
//
//   ∀x̄ ( φ_S(x̄) → ∃ȳ ψ_T(x̄, ȳ) )
//
// represented as a pair of conjunctive queries over the *frontier*
// variables x̄: `source` has body φ_S and head x̄; `target` has body ψ_T and
// the same head x̄ (its remaining variables are the existential ȳ). Both
// the semantic technique and the RIC-based baseline emit mappings in this
// form, exactly as the paper does.
#ifndef SEMAP_LOGIC_TGD_H_
#define SEMAP_LOGIC_TGD_H_

#include <string>
#include <vector>

#include "logic/cq.h"
#include "logic/interner.h"

namespace semap::logic {

class EquivCache;

struct Tgd {
  ConjunctiveQuery source;
  ConjunctiveQuery target;

  /// Frontier (exported) variables: the shared head.
  const std::vector<Term>& frontier() const { return source.head; }

  std::string ToString() const;
};

/// \brief Logical equivalence of mappings: the source sides are equivalent
/// CQs and the target sides are equivalent CQs, under the same frontier.
bool EquivalentTgds(const Tgd& a, const Tgd& b);

/// Same verdict through an EquivCache (logic/memo.h): the per-side
/// equivalence checks are memoized and signature-pruned, and inequivalent
/// pairs are rejected up front by comparing body predicate *sets* (bloom
/// masks) — equivalence forces equal sets on each side, and frontier
/// permutations never change a predicate. Sets, not multisets: AlignTgd's
/// head substitution can merge variables and leave redundant atoms, so the
/// sides are not cores and multiset equality is not implied. A null cache
/// falls back to the plain overload.
bool EquivalentTgds(const Tgd& a, const Tgd& b, EquivCache* cache);

/// Ref-accelerated form of the cached overload: `a_src`/`a_tgt` and
/// `b_src`/`b_tgt` must be `cache.Intern(...)` handles of the matching
/// sides of `a` and `b`. Verdicts are identical; the point is that a dedup
/// loop interns each tgd's sides once and reuses the handles across every
/// comparison instead of re-hashing both queries per call.
bool EquivalentTgds(const Tgd& a, CqRef a_src, CqRef a_tgt, const Tgd& b,
                    CqRef b_src, CqRef b_tgt, EquivCache& cache);

/// \brief Build a tgd from two queries whose heads are positionally
/// aligned (position i of both heads carries correspondence i): renames
/// the source head onto frontier variables w0.., maps the target head onto
/// them, and prefixes the remaining (existential) variables with "s_" /
/// "t_" so the sides cannot collide.
Tgd AlignTgd(const ConjunctiveQuery& source, const ConjunctiveQuery& target);

}  // namespace semap::logic

#endif  // SEMAP_LOGIC_TGD_H_
