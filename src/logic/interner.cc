#include "logic/interner.h"

#include <algorithm>
#include <cstring>

namespace semap::logic {

namespace {

constexpr size_t kChunkSize = 64 * 1024;

size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

size_t HashTermValue(const Term& t) {
  size_t h = HashCombine(static_cast<size_t>(t.kind),
                         std::hash<std::string>{}(t.name));
  for (const Term& a : t.args) h = HashCombine(h, HashTermValue(a));
  return h;
}

size_t HashAtomValue(const Atom& a) {
  size_t h = std::hash<std::string>{}(a.predicate);
  for (const Term& t : a.terms) h = HashCombine(h, HashTermValue(t));
  return h;
}

size_t HashCqValue(const ConjunctiveQuery& q) {
  size_t h = std::hash<std::string>{}(q.head_predicate);
  for (const Term& t : q.head) h = HashCombine(h, HashTermValue(t));
  for (const Atom& a : q.body) h = HashCombine(h, HashAtomValue(a));
  return h;
}

}  // namespace

// Arena node layouts. The public handle is a pointer to the leading value
// member, so the interned children of a handle are one cast away instead
// of a locked hash-map find — ArgsOf/TermsOf sit inside the unification
// inner loop. Handles are only ever minted here, which is what makes the
// cast in ArgsOf/TermsOf valid; the child vectors are filled before the
// handle escapes the interning call and never mutated again, which is
// what makes the lock-free reads safe alongside concurrent Intern().
struct Interner::TermNode {
  Term value;
  std::vector<TermRef> args;  // interned children of a function term
};
struct Interner::AtomNode {
  Atom value;
  std::vector<TermRef> terms;  // interned argument terms
};

void Arena::Reset() {
  // Destroy in reverse construction order, as a stack would.
  for (auto it = dtors_.rbegin(); it != dtors_.rend(); ++it) {
    it->destroy(it->object);
  }
  dtors_.clear();
  for (Chunk& chunk : chunks_) chunk.used = 0;
}

void* Arena::Allocate(size_t size, size_t align) {
  for (Chunk& chunk : chunks_) {
    size_t offset = (chunk.used + align - 1) & ~(align - 1);
    if (offset + size <= chunk.capacity) {
      chunk.used = offset + size;
      bytes_allocated_ += size;
      return chunk.data.get() + offset;
    }
  }
  Chunk chunk;
  chunk.capacity = std::max(kChunkSize, size + align);
  chunk.data = std::make_unique<char[]>(chunk.capacity);
  // The chunk base is new[]-aligned (max_align_t); logic nodes never need
  // more, so offset 0 is always correctly aligned for the first object.
  chunk.used = size;
  bytes_allocated_ += size;
  chunks_.push_back(std::move(chunk));
  return chunks_.back().data.get();
}

size_t Interner::TermPtrHash::operator()(const Term* t) const {
  return HashTermValue(*t);
}
size_t Interner::AtomPtrHash::operator()(const Atom* a) const {
  return HashAtomValue(*a);
}
size_t Interner::CqPtrHash::operator()(const ConjunctiveQuery* q) const {
  return HashCqValue(*q);
}
bool Interner::CqPtrEq::operator()(const ConjunctiveQuery* a,
                                   const ConjunctiveQuery* b) const {
  return a->head_predicate == b->head_predicate && a->head == b->head &&
         a->body == b->body;
}

TermRef Interner::Var(std::string_view name) {
  Term t{TermKind::kVariable, std::string(name), {}};
  return Intern(t);
}

TermRef Interner::Constant(std::string_view name) {
  Term t{TermKind::kConstant, std::string(name), {}};
  return Intern(t);
}

TermRef Interner::Func(std::string_view symbol, std::vector<Term> args) {
  Term t{TermKind::kFunction, std::string(symbol), std::move(args)};
  return Intern(t);
}

TermRef Interner::Func(std::string_view symbol,
                       const std::vector<TermRef>& args) {
  Term t{TermKind::kFunction, std::string(symbol), {}};
  t.args.reserve(args.size());
  for (TermRef a : args) t.args.push_back(*a);
  return Intern(t);
}

AtomRef Interner::MakeAtom(std::string_view predicate,
                           const std::vector<TermRef>& terms) {
  Atom a{std::string(predicate), {}};
  a.terms.reserve(terms.size());
  for (TermRef t : terms) a.terms.push_back(*t);
  return Intern(a);
}

AtomRef Interner::MakeAtom(std::string_view predicate,
                           std::vector<Term> terms) {
  Atom a{std::string(predicate), std::move(terms)};
  return Intern(a);
}

TermRef Interner::InternTermLocked(const Term& term) {
  auto it = terms_.find(&term);
  if (it != terms_.end()) return it->first;
  TermNode* node = arena_.Create<TermNode>();
  node->value = term;
  terms_.emplace(&node->value, next_id_++);
  if (term.kind == TermKind::kFunction) {
    node->args.reserve(term.args.size());
    for (const Term& a : term.args) node->args.push_back(InternTermLocked(a));
  }
  return &node->value;
}

AtomRef Interner::InternAtomLocked(const Atom& atom) {
  auto it = atoms_.find(&atom);
  if (it != atoms_.end()) return it->first;
  AtomNode* node = arena_.Create<AtomNode>();
  node->value = atom;
  atoms_.emplace(&node->value, next_id_++);
  node->terms.reserve(atom.terms.size());
  for (const Term& t : atom.terms) node->terms.push_back(InternTermLocked(t));
  return &node->value;
}

TermRef Interner::Intern(const Term& term) {
  std::lock_guard<std::mutex> lock(mu_);
  return InternTermLocked(term);
}

AtomRef Interner::Intern(const Atom& atom) {
  std::lock_guard<std::mutex> lock(mu_);
  return InternAtomLocked(atom);
}

CqRef Interner::Intern(const ConjunctiveQuery& query) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(&query);
  if (it != queries_.end()) return it->first;
  ConjunctiveQuery* node = arena_.Create<ConjunctiveQuery>(query);
  queries_.emplace(node, next_id_++);
  return node;
}

const std::vector<TermRef>& Interner::ArgsOf(TermRef term) const {
  // `term` is a handle minted by InternTermLocked, i.e. the leading member
  // of a TermNode; its args vector is immutable once the handle escapes,
  // so this needs neither the map nor the mutex.
  return reinterpret_cast<const TermNode*>(term)->args;
}

const std::vector<TermRef>& Interner::TermsOf(AtomRef atom) const {
  return reinterpret_cast<const AtomNode*>(atom)->terms;
}

uint32_t Interner::IdOf(TermRef term) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = terms_.find(term);
  return it == terms_.end() ? UINT32_MAX : it->second;
}

uint32_t Interner::IdOf(AtomRef atom) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = atoms_.find(atom);
  return it == atoms_.end() ? UINT32_MAX : it->second;
}

uint32_t Interner::IdOf(CqRef query) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(query);
  return it == queries_.end() ? UINT32_MAX : it->second;
}

size_t Interner::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return terms_.size() + atoms_.size() + queries_.size();
}

size_t Interner::arena_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return arena_.bytes_allocated();
}

// ---- Interned unification ------------------------------------------------

namespace {

bool OccursRef(TermRef var, TermRef term, const RefBinding& binding,
               Interner& interner) {
  TermRef resolved = ResolveRef(term, binding, interner);
  if (resolved->IsVar()) return resolved == var;
  if (resolved->kind == TermKind::kFunction) {
    for (TermRef a : interner.ArgsOf(resolved)) {
      if (OccursRef(var, a, binding, interner)) return true;
    }
  }
  return false;
}

}  // namespace

TermRef ResolveRef(TermRef term, const RefBinding& binding,
                   Interner& interner) {
  TermRef current = term;
  while (current->IsVar()) {
    auto it = binding.find(current);
    if (it == binding.end()) break;
    current = it->second;
  }
  if (current->kind == TermKind::kFunction) {
    const std::vector<TermRef>& in_args = interner.ArgsOf(current);
    bool changed = false;
    std::vector<TermRef> args;
    args.reserve(in_args.size());
    for (TermRef a : in_args) {
      TermRef out = ResolveRef(a, binding, interner);
      changed |= out != a;
      args.push_back(out);
    }
    if (changed) return interner.Func(current->name, args);
  }
  return current;
}

bool UnifyRefs(TermRef a, TermRef b, RefBinding& binding, RefTrail& trail,
               Interner& interner) {
  TermRef ra = ResolveRef(a, binding, interner);
  TermRef rb = ResolveRef(b, binding, interner);
  if (ra->IsVar()) {
    if (ra == rb) return true;
    if (OccursRef(ra, rb, binding, interner)) return false;
    binding.emplace(ra, rb);
    trail.push_back(ra);
    return true;
  }
  if (rb->IsVar()) {
    if (OccursRef(rb, ra, binding, interner)) return false;
    binding.emplace(rb, ra);
    trail.push_back(rb);
    return true;
  }
  if (ra == rb) return true;  // interned: structural equality is free
  if (ra->kind != rb->kind || ra->name != rb->name ||
      ra->args.size() != rb->args.size()) {
    return false;
  }
  const std::vector<TermRef>& args_a = interner.ArgsOf(ra);
  const std::vector<TermRef>& args_b = interner.ArgsOf(rb);
  for (size_t i = 0; i < args_a.size(); ++i) {
    if (!UnifyRefs(args_a[i], args_b[i], binding, trail, interner)) {
      return false;
    }
  }
  return true;
}

bool UnifyAtomRefs(AtomRef a, AtomRef b, RefBinding& binding, RefTrail& trail,
                   Interner& interner) {
  if (a->predicate != b->predicate || a->terms.size() != b->terms.size()) {
    return false;
  }
  const std::vector<TermRef>& terms_a = interner.TermsOf(a);
  const std::vector<TermRef>& terms_b = interner.TermsOf(b);
  for (size_t i = 0; i < terms_a.size(); ++i) {
    if (!UnifyRefs(terms_a[i], terms_b[i], binding, trail, interner)) {
      return false;
    }
  }
  return true;
}

void UndoRefTrail(RefBinding& binding, RefTrail& trail, size_t mark) {
  while (trail.size() > mark) {
    binding.erase(trail.back());
    trail.pop_back();
  }
}

// ---- Canonical forms -----------------------------------------------------

namespace {

void RenameByFirstOccurrence(ConjunctiveQuery& q) {
  Substitution sub;
  int counter = 0;
  auto visit = [&](auto&& self, const Term& t) -> void {
    if (t.IsVar()) {
      if (sub.count(t.name) == 0) {
        sub[t.name] = Term::Var("c" + std::to_string(counter++));
      }
      return;
    }
    for (const Term& a : t.args) self(self, a);
  };
  for (const Term& t : q.head) visit(visit, t);
  for (const Atom& a : q.body) {
    for (const Term& t : a.terms) visit(visit, t);
  }
  q = ApplySubstitution(q, sub);
}

}  // namespace

ConjunctiveQuery CanonicalCq(const ConjunctiveQuery& query) {
  ConjunctiveQuery canon = query;
  // Rename, sort, rename again, sort again: the first rename pins a
  // name-independent baseline, each sort makes atom order canonical under
  // the current names, and the second rename re-bases names on the sorted
  // order. Deterministic, and idempotent on its own output.
  RenameByFirstOccurrence(canon);
  std::sort(canon.body.begin(), canon.body.end());
  RenameByFirstOccurrence(canon);
  std::sort(canon.body.begin(), canon.body.end());
  return canon;
}

}  // namespace semap::logic
