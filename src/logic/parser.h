// Small text formats for logic objects, used by tests and by dataset
// benchmark definitions:
//
//   atom:   person(v0)
//   cq:     ans(v0, v1) :- person(v0), writes(v0, y)
//   tgd:    person(w0), writes(w0, b) -> employee(w0, e)
//
// In a tgd the frontier is the set of variables appearing on both sides,
// ordered by first appearance in the source; both heads are set to it.
// Terms are variables by default; 'quoted' names are constants.
#ifndef SEMAP_LOGIC_PARSER_H_
#define SEMAP_LOGIC_PARSER_H_

#include <string_view>

#include "logic/cq.h"
#include "logic/tgd.h"
#include "util/result.h"

namespace semap::logic {

Result<Atom> ParseAtom(std::string_view input);
Result<ConjunctiveQuery> ParseCq(std::string_view input);
Result<Tgd> ParseTgd(std::string_view input);

}  // namespace semap::logic

#endif  // SEMAP_LOGIC_PARSER_H_
