#include "logic/memo.h"

#include <functional>
#include <string>

#include "logic/containment.h"

namespace semap::logic {

namespace {

uint64_t PredicateBit(const std::string& predicate) {
  return 1ULL << (std::hash<std::string>{}(predicate) & 63u);
}

// Per-predicate value summed into an order-independent body hash: equal
// predicate multisets always produce equal sums, so differing sums prove
// differing multisets (the direction the pruning relies on).
uint64_t PredicateHash(const std::string& predicate) {
  return std::hash<std::string>{}(predicate) | 1ULL;
}

}  // namespace

CqRef EquivCache::Canonical(CqRef q) {
  auto it = canonical_.find(q);
  if (it != canonical_.end()) return it->second;
  CqRef canon = interner_->Intern(CanonicalCq(*q));
  canonical_.emplace(q, canon);
  return canon;
}

const EquivCache::Signature& EquivCache::SignatureOf(CqRef q) {
  auto it = signatures_.find(q);
  if (it != signatures_.end()) return it->second;
  Signature sig;
  sig.body_size = static_cast<uint32_t>(q->body.size());
  sig.head_size = static_cast<uint32_t>(q->head.size());
  for (const Atom& atom : q->body) {
    sig.predicate_mask |= PredicateBit(atom.predicate);
    sig.multiset_hash += PredicateHash(atom.predicate);
  }
  return signatures_.emplace(q, sig).first->second;
}

bool EquivCache::ContainsImpl(CqRef super, CqRef sub) {
  if (super == sub) {
    ++stats_.memo_hits;
    return true;
  }
  if (use_signatures) {
    const Signature& s_super = SignatureOf(super);
    const Signature& s_sub = SignatureOf(sub);
    // A homomorphism super -> sub maps every body atom of super onto a
    // same-predicate atom of sub and preserves head arity; a bloom bit set
    // in super but clear in sub proves a predicate sub lacks.
    if (s_super.head_size != s_sub.head_size ||
        (s_super.predicate_mask & ~s_sub.predicate_mask) != 0) {
      ++stats_.signature_skips;
      return false;
    }
  }
  if (use_memo) {
    auto it = contains_.find({super, sub});
    if (it != contains_.end()) {
      ++stats_.memo_hits;
      return it->second;
    }
  }
  ++stats_.hom_searches;
  bool verdict = logic::Contains(*super, *sub);
  if (use_memo) contains_.emplace(std::make_pair(super, sub), verdict);
  return verdict;
}

bool EquivCache::EquivalentRefs(CqRef a, CqRef b, bool minimized) {
  if (a == b) {
    ++stats_.memo_hits;
    return true;
  }
  if (use_signatures && minimized) {
    // Equivalent cores are isomorphic, so they agree on body size and the
    // body predicate multiset; any mismatch proves inequivalence. A
    // redundant atom would break the isomorphism claim, hence the
    // minimized-only gate.
    const Signature& sa = SignatureOf(a);
    const Signature& sb = SignatureOf(b);
    if (sa.body_size != sb.body_size || sa.head_size != sb.head_size ||
        sa.predicate_mask != sb.predicate_mask ||
        sa.multiset_hash != sb.multiset_hash) {
      ++stats_.signature_skips;
      return false;
    }
  }
  return ContainsImpl(a, b) && ContainsImpl(b, a);
}

bool EquivCache::ContainsRefs(CqRef q_super, CqRef q_sub) {
  return ContainsImpl(q_super, q_sub);
}

}  // namespace semap::logic
