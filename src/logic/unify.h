// First-order unification (with occurs check) over Term. Used by the LAV
// rewriting stage to resolve CSG queries against inverse rules.
#ifndef SEMAP_LOGIC_UNIFY_H_
#define SEMAP_LOGIC_UNIFY_H_

#include <optional>

#include "logic/cq.h"

namespace semap::logic {

/// \brief Fully resolve `term` under `sub` (variables are looked up
/// repeatedly; function arguments are resolved recursively).
Term Resolve(const Term& term, const Substitution& sub);

/// \brief Extend `sub` to a most general unifier of `a` and `b`; returns
/// false (leaving `sub` partially extended — callers snapshot) when the
/// terms do not unify.
bool Unify(const Term& a, const Term& b, Substitution& sub);

/// \brief Unify two atoms (same predicate and arity, argument-wise).
bool UnifyAtoms(const Atom& a, const Atom& b, Substitution& sub);

}  // namespace semap::logic

#endif  // SEMAP_LOGIC_UNIFY_H_
