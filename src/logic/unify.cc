#include "logic/unify.h"

namespace semap::logic {

namespace {

bool Occurs(const std::string& var, const Term& term, const Substitution& sub) {
  Term resolved = Resolve(term, sub);
  if (resolved.IsVar()) return resolved.name == var;
  if (resolved.kind == TermKind::kFunction) {
    for (const Term& a : resolved.args) {
      if (Occurs(var, a, sub)) return true;
    }
  }
  return false;
}

}  // namespace

Term Resolve(const Term& term, const Substitution& sub) {
  Term current = term;
  // Walk variable bindings to the end of the chain.
  while (current.IsVar()) {
    auto it = sub.find(current.name);
    if (it == sub.end()) break;
    current = it->second;
  }
  if (current.kind == TermKind::kFunction) {
    for (Term& a : current.args) a = Resolve(a, sub);
  }
  return current;
}

bool Unify(const Term& a, const Term& b, Substitution& sub) {
  Term ra = Resolve(a, sub);
  Term rb = Resolve(b, sub);
  if (ra.IsVar()) {
    if (rb.IsVar() && rb.name == ra.name) return true;
    if (Occurs(ra.name, rb, sub)) return false;
    sub[ra.name] = rb;
    return true;
  }
  if (rb.IsVar()) {
    if (Occurs(rb.name, ra, sub)) return false;
    sub[rb.name] = ra;
    return true;
  }
  if (ra.kind != rb.kind || ra.name != rb.name ||
      ra.args.size() != rb.args.size()) {
    return false;
  }
  for (size_t i = 0; i < ra.args.size(); ++i) {
    if (!Unify(ra.args[i], rb.args[i], sub)) return false;
  }
  return true;
}

bool UnifyAtoms(const Atom& a, const Atom& b, Substitution& sub) {
  if (a.predicate != b.predicate || a.terms.size() != b.terms.size()) {
    return false;
  }
  for (size_t i = 0; i < a.terms.size(); ++i) {
    if (!Unify(a.terms[i], b.terms[i], sub)) return false;
  }
  return true;
}

}  // namespace semap::logic
