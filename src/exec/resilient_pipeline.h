// Resilient mapping pipeline: per-table graceful degradation from the
// paper's semantic technique down to the RIC-based (Clio-style) baseline.
//
// The semantic discovery is the high-fidelity but combinatorial path; the
// RIC baseline is cheaper and always terminates on the same inputs. This
// pipeline exploits that asymmetry: correspondences are grouped by target
// table and each group runs a degradation cascade —
//
//   tier 0  full semantic discovery
//   tier 1  restricted semantic discovery (no lossy joins, tighter tree
//           caps) under a halved budget
//   tier 2  RIC baseline (the lifeline: exempt from step budgets and
//           fault injection, deadline-only)
//
// Every governed tier runs under a ResourceGovernor slice of the overall
// deadline/step budget and is retried under exponentially shrinking step
// budgets before the cascade moves down a tier. The DegradationReport
// records, per target table, which tier produced the result and why the
// higher tiers were abandoned, so operators can tell a degraded answer
// from a full one.
//
// Deterministic fault injection for tests: options.fault_after (or the
// SEMAP_FAULT_AFTER environment variable) forces kResourceExhausted in
// the semantic tiers after that many charged steps; the cascade must then
// fall back to the baseline rather than crash or return a malformed
// result.
#ifndef SEMAP_EXEC_RESILIENT_PIPELINE_H_
#define SEMAP_EXEC_RESILIENT_PIPELINE_H_

#include <chrono>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "baseline/ric_mapper.h"
#include "exec/run_context.h"
#include "rewriting/semantic_mapper.h"
#include "util/diag.h"
#include "util/result.h"

namespace semap::exec {

enum class DegradationTier {
  kSemanticFull = 0,
  kSemanticRestricted = 1,
  kRicBaseline = 2,
  kFailed = 3,
  /// Fail-soft loading put this table's inputs aside (dangling
  /// correspondences): no tier ran at all.
  kQuarantined = 4,
};

const char* TierName(DegradationTier tier);

/// \brief Per-target-table cascade outcome.
struct TableOutcome {
  std::string target_table;
  DegradationTier tier = DegradationTier::kFailed;
  size_t mappings = 0;
  /// Why higher tiers were abandoned (governor statuses, truncation
  /// notes), in cascade order.
  std::vector<std::string> notes;
};

struct DegradationReport {
  std::vector<TableOutcome> tables;
  /// Correspondences dropped by fail-soft validation before any cascade
  /// ran (dangling table/column references).
  size_t quarantined_correspondences = 0;

  /// True when any table settled below full semantic discovery.
  bool AnyDegraded() const;
  /// True when any table reached the RIC tier, was quarantined, or failed
  /// outright.
  bool AnyAtBaselineOrWorse() const;

  std::string ToString() const;
};

struct ResilientPipelineOptions {
  rew::SemanticMapperOptions semantic;
  baseline::RicMapperOptions ric;
  /// Overall wall-clock deadline for the whole pipeline; < 0 = none.
  int64_t deadline_ms = -1;
  /// Step budget for the first semantic attempt of each table; later
  /// attempts and tiers get exponentially smaller slices. < 0 = none.
  int64_t max_steps = -1;
  /// Deterministic fault injection into the semantic tiers; < 0 = take
  /// SEMAP_FAULT_AFTER from the environment (unset = no injection).
  int64_t fault_after = -1;
  /// Shrinking-budget retries per governed tier before degrading.
  size_t retries_per_tier = 1;
  /// Deprecated: pass an exec::RunContext instead (honored when the
  /// context carries no sink). When set, malformed inputs no longer fail
  /// the run: correspondences naming unknown columns are quarantined with
  /// kDanglingCorrespondence (their tables reported at tier
  /// kQuarantined), columns without semantics degrade their table with
  /// kUnliftableCorrespondence, and any unsafe produced mapping is
  /// discarded with kUnsafeTgd.
  DiagnosticSink* sink = nullptr;
};

/// \brief One emitted mapping, tagged with the tier that produced it.
struct ResilientMapping {
  DegradationTier tier = DegradationTier::kSemanticFull;
  std::string target_table;
  logic::Tgd tgd;
  std::vector<disc::Correspondence> covered;
  // Populated by the semantic tiers only.
  std::string source_algebra;
  std::string target_algebra;
};

struct ResilientResult {
  std::vector<ResilientMapping> mappings;
  DegradationReport report;
};

// --- Building blocks shared by the serial pipeline and the supervisor ---
//
// RunResilientPipeline is PrepareResilientRun + one RunTableCascade per
// surviving table + a MappingMerger pass, run serially on the calling
// thread. exec/supervisor.h reuses the same three pieces to run the
// cascades on a worker pool with retry, watchdog deadlines and
// checkpointing; keeping them public is what guarantees --jobs=N and the
// serial path can never drift apart.

/// \brief The fail-soft front half of a resilient run: dangling
/// correspondences quarantined (with ctx.sink) or rejected (without),
/// survivors grouped by target table in deterministic (sorted) order.
struct PreparedRun {
  /// Surviving correspondences grouped by target table.
  std::map<std::string, std::vector<disc::Correspondence>> groups;
  /// Tables whose every correspondence was quarantined: ready-made
  /// kQuarantined outcomes, in sorted order.
  std::vector<TableOutcome> quarantined_tables;
  /// "quarantined: <corr>" notes for tables that still cascade.
  std::map<std::string, std::vector<std::string>> quarantine_notes;
  size_t quarantined_correspondences = 0;
};

Result<PreparedRun> PrepareResilientRun(
    const sem::AnnotatedSchema& source, const sem::AnnotatedSchema& target,
    const std::vector<disc::Correspondence>& correspondences,
    const RunContext& ctx);

/// \brief Configuration of one table's degradation cascade.
struct TableCascadeOptions {
  rew::SemanticMapperOptions semantic;
  baseline::RicMapperOptions ric;
  /// Absolute wall-clock deadline shared by every tier (the run-wide
  /// --deadline-ms); nullopt = none.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Step budget of the first semantic attempt; see ResilientPipelineOptions.
  int64_t max_steps = -1;
  /// Resolved fault injection point; nullopt = none.
  std::optional<int64_t> fault_after;
  size_t retries_per_tier = 1;
  /// False once the circuit breaker has tripped: skip the semantic tiers
  /// and serve the table straight from the RIC baseline.
  bool semantic_enabled = true;
};

/// \brief One table's cascade outcome plus its raw (pre-merge) mappings.
struct TableWork {
  TableOutcome outcome;
  std::vector<ResilientMapping> mappings;
  /// True when the semantic tiers were lost to exhaustion (budget,
  /// deadline, injected fault) rather than answering cleanly — the
  /// failure a supervisor retry might recover from.
  bool transient_failure = false;
};

/// \brief Run the tier cascade for one target table. Opens a `cascade`
/// span on ctx and counts tier attempts / governor trips; ctx.governor,
/// when set, becomes the *parent* of every tier governor (the
/// supervisor's per-unit budget slice — a watchdog Cancel on it unwinds
/// the whole cascade at the next charge).
TableWork RunTableCascade(const sem::AnnotatedSchema& source,
                          const sem::AnnotatedSchema& target,
                          const std::string& table,
                          const std::vector<disc::Correspondence>& group,
                          const TableCascadeOptions& options,
                          const RunContext& ctx);

/// \brief Cross-table assembly: TGD-safety-checks each mapping (with
/// ctx.sink), collapses cross-table duplicates onto their first
/// occurrence, and accumulates the final mapping list. Feed tables in
/// sorted order to reproduce the serial pipeline's output exactly.
class MappingMerger {
 public:
  explicit MappingMerger(const RunContext& ctx) : ctx_(ctx) {}

  /// True when the mapping survived (safe and not a duplicate).
  bool Emit(ResilientMapping mapping);

  std::vector<ResilientMapping>& mappings() { return mappings_; }

 private:
  RunContext ctx_;
  std::vector<ResilientMapping> mappings_;
};

/// \brief Run the degradation cascade over every target table named by
/// `correspondences`. Without a sink, returns an error for malformed
/// inputs (unknown columns, empty correspondence set); with
/// `options.sink` set, malformed correspondences are quarantined instead
/// (only an empty correspondence set still fails). Resource exhaustion
/// never surfaces as an error — it surfaces as a degraded tier in the
/// report.
/// The RunContext's tracer/metrics observe the whole cascade: one
/// `cascade` span per target table with a nested `tier` span per attempt
/// (each carrying the usual discovery/rewriting phase spans beneath it),
/// plus `pipeline.*` and `governor.trips` counters. The context's
/// governor is ignored — the cascade manufactures its own per-tier
/// governor slices from deadline_ms/max_steps — but its sink/tracer/
/// metrics flow into every tier. The context-free overload is the
/// deprecated pre-RunContext path.
Result<ResilientResult> RunResilientPipeline(
    const sem::AnnotatedSchema& source, const sem::AnnotatedSchema& target,
    const std::vector<disc::Correspondence>& correspondences,
    const ResilientPipelineOptions& options, const RunContext& ctx);
Result<ResilientResult> RunResilientPipeline(
    const sem::AnnotatedSchema& source, const sem::AnnotatedSchema& target,
    const std::vector<disc::Correspondence>& correspondences,
    const ResilientPipelineOptions& options = {});

}  // namespace semap::exec

#endif  // SEMAP_EXEC_RESILIENT_PIPELINE_H_
