// Crash-safe checkpoint journal for supervised runs: semap.checkpoint.v1.
//
// Discovery over many target tables is a batch job; a mid-run crash or
// kill must not lose the tables already finished. The supervisor appends
// one JSON line per completed work unit — the table's cascade outcome
// plus its raw (pre-merge) mappings, fully serialized — behind a header
// line that fingerprints the scenario. A run restarted with
// --resume=<journal> loads the finished units, skips their tables, and
// merges the cached mappings as if they had just been computed, so the
// final mapping set is identical to an uninterrupted run.
//
// Durability: every append rewrites the whole journal to `<path>.tmp`,
// fsyncs, and renames over `<path>` — the journal on disk is always a
// complete, well-formed prefix of the run (never a torn line). Journals
// are small (one line per target table), so the rewrite is cheap.
//
// The fingerprint is a stable 64-bit hash over both schemas and the
// correspondence set; resuming against different inputs is refused
// rather than silently merging stale mappings. The line format is
// documented in docs/FORMATS.md.
#ifndef SEMAP_EXEC_CHECKPOINT_H_
#define SEMAP_EXEC_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exec/resilient_pipeline.h"
#include "semantics/stree.h"
#include "util/result.h"

namespace semap::exec {

inline constexpr const char kCheckpointSchema[] = "semap.checkpoint.v1";

/// \brief One journaled work unit: a finished table's outcome and raw
/// mappings (pre-merge — dedup against other tables happens at
/// assembly, so resume reproduces the exact serial merge).
struct CheckpointedUnit {
  TableOutcome outcome;
  std::vector<ResilientMapping> mappings;
};

/// \brief Stable scenario fingerprint: schemas (tables, columns, keys)
/// plus the correspondence set. Order-sensitive on purpose — the
/// journal caches *this* run's inputs, nothing weaker.
uint64_t ScenarioFingerprint(
    const sem::AnnotatedSchema& source, const sem::AnnotatedSchema& target,
    const std::vector<disc::Correspondence>& correspondences);

/// Serialize / parse one journal line (also used by tests to pin the
/// format).
std::string SerializeCheckpointUnit(const CheckpointedUnit& unit);
Result<CheckpointedUnit> ParseCheckpointUnit(const std::string& line);

class CheckpointJournal {
 public:
  /// Start a fresh journal at `path` (truncating any previous file) with
  /// the header line written and synced.
  static Result<CheckpointJournal> Create(std::string path,
                                          uint64_t fingerprint);

  /// Open `path` for resumption: parse the header (its fingerprint must
  /// match), fill `completed` with the finished units, and keep
  /// appending to the same file. A missing file degrades to Create so
  /// `--resume` also works on the first run. A trailing malformed line
  /// (torn by a crash mid-rename on exotic filesystems) is dropped with
  /// a note in `*warning`; a malformed header or fingerprint mismatch is
  /// an error.
  static Result<CheckpointJournal> Resume(std::string path,
                                          uint64_t fingerprint,
                                          std::vector<CheckpointedUnit>* completed,
                                          std::string* warning = nullptr);

  /// Append one finished unit: rewrite-to-temp, fsync, rename.
  Status Append(const CheckpointedUnit& unit);

  const std::string& path() const { return path_; }

 private:
  CheckpointJournal(std::string path, std::vector<std::string> lines)
      : path_(std::move(path)), lines_(std::move(lines)) {}

  Status Flush() const;

  std::string path_;
  std::vector<std::string> lines_;  // header first, then one per unit
};

}  // namespace semap::exec

#endif  // SEMAP_EXEC_CHECKPOINT_H_
