// Crash-safe checkpoint journal for supervised runs.
//
// Discovery over many target tables is a batch job; a mid-run crash or
// kill must not lose the tables already finished. The supervisor stores
// one record per completed work unit — the table's cascade outcome, its
// raw (pre-merge) mappings and its provenance, fully serialized as a
// semap.checkpoint.v1 unit line — in a store::MappingStore, whose
// semap.journal.v1 container makes every append an fsynced,
// CRC32-framed record (store/journal.h). A run restarted with
// --resume=<journal> replays the store, skips the finished tables, and
// merges the cached mappings as if they had just been computed, so the
// final mapping set — and, with journaled provenance, the --explain
// output — is identical to an uninterrupted run.
//
// The unit line itself also carries a trailing "crc" member (CRC32 of
// the line with that member removed). Inside the journal this is
// redundant with the frame checksum; it exists for the legacy
// semap.checkpoint.v1 JSON-lines format, where a torn tail could
// truncate a payload into different-but-still-valid JSON. Resume still
// reads the legacy format (with or without "crc") and migrates it to
// the journaled store in place.
//
// The fingerprint is a stable 64-bit hash over both schemas and the
// correspondence set; resuming against different inputs is refused
// rather than silently merging stale mappings. Both formats are
// documented in docs/FORMATS.md; the crash-safety contract is in
// docs/ROBUSTNESS.md.
#ifndef SEMAP_EXEC_CHECKPOINT_H_
#define SEMAP_EXEC_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exec/resilient_pipeline.h"
#include "obs/provenance.h"
#include "semantics/stree.h"
#include "store/mapping_store.h"
#include "util/result.h"

namespace semap::exec {

inline constexpr const char kCheckpointSchema[] = "semap.checkpoint.v1";

/// \brief One journaled work unit: a finished table's outcome, raw
/// mappings (pre-merge — dedup against other tables happens at
/// assembly, so resume reproduces the exact serial merge), and the
/// unit's provenance so a resumed --explain matches an uninterrupted
/// run's byte-for-byte.
struct CheckpointedUnit {
  TableOutcome outcome;
  std::vector<ResilientMapping> mappings;
  /// Pre-merge provenance captured at unit completion; absent on units
  /// read from journals written before provenance was journaled (the
  /// resume then falls back to reconstructed origin-"checkpoint"
  /// derivations).
  bool has_provenance = false;
  obs::TableProvenance provenance;
};

/// \brief Stable scenario fingerprint: schemas (tables, columns, keys)
/// plus the correspondence set. Order-sensitive on purpose — the
/// journal caches *this* run's inputs, nothing weaker.
uint64_t ScenarioFingerprint(
    const sem::AnnotatedSchema& source, const sem::AnnotatedSchema& target,
    const std::vector<disc::Correspondence>& correspondences);

/// Serialize / parse one semap.checkpoint.v1 unit line (also used by
/// tests to pin the format). Serialization always appends the "crc"
/// member; parsing validates it when present and accepts legacy lines
/// without it.
std::string SerializeCheckpointUnit(const CheckpointedUnit& unit);
Result<CheckpointedUnit> ParseCheckpointUnit(const std::string& line);

class CheckpointJournal {
 public:
  /// Start a fresh journal at `path`, atomically replacing any previous
  /// file. All I/O goes through `env` (Env::Default() when null) — the
  /// seam crash-matrix tests inject faults through.
  static Result<CheckpointJournal> Create(std::string path,
                                          uint64_t fingerprint,
                                          store::Env* env = nullptr);

  /// Open `path` for resumption: replay the store (its fingerprint must
  /// match), fill `completed` with the finished units, and keep
  /// appending. A missing file degrades to Create so `--resume` also
  /// works on the first run. A torn tail (crash mid-append) is dropped
  /// with a note in `*warning`; a fingerprint mismatch is an error. A
  /// legacy JSON-lines checkpoint is read, migrated to the journaled
  /// store in place, and noted in `*warning`.
  static Result<CheckpointJournal> Resume(
      std::string path, uint64_t fingerprint,
      std::vector<CheckpointedUnit>* completed, std::string* warning = nullptr,
      store::Env* env = nullptr);

  /// Append one finished unit: one fsynced journal record, O(unit).
  Status Append(const CheckpointedUnit& unit);

  const std::string& path() const { return store_.path(); }

 private:
  explicit CheckpointJournal(store::MappingStore store)
      : store_(std::move(store)) {}

  store::MappingStore store_;
};

}  // namespace semap::exec

#endif  // SEMAP_EXEC_CHECKPOINT_H_
