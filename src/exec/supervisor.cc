#include "exec/supervisor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "exec/explain_capture.h"

namespace semap::exec {

namespace {

using Clock = std::chrono::steady_clock;

/// Seed a unit event with the run's request correlation id (if any), so
/// pipeline activity in a shared event stream is attributable to the
/// semap.rpc.v1 request that caused it.
obs::WideEvent TracedEvent(const RunContext& ctx) {
  obs::WideEvent event;
  if (!ctx.trace_id.empty()) event.Str("trace_id", ctx.trace_id);
  return event;
}

/// One dispatched table: the unit of isolation, retry and checkpointing.
struct Unit {
  std::string table;
  const std::vector<disc::Correspondence>* group = nullptr;
  const std::vector<std::string>* quarantine_notes = nullptr;
};

/// Everything a finished unit hands back to the supervising thread. The
/// observability objects are private to the unit while it runs (none of
/// them is thread-safe) and merged into the run's context at assembly,
/// in sorted table order, so concurrent completion order never leaks
/// into the output.
struct UnitDone {
  TableWork work;
  size_t attempts = 0;
  std::vector<int64_t> retry_delays_ms;
  int64_t queue_wait_ns = 0;
  std::unique_ptr<DiagnosticSink> sink;
  std::unique_ptr<obs::Tracer> tracer;
  int64_t tracer_offset_ns = 0;
  std::unique_ptr<obs::Metrics> metrics;
  std::unique_ptr<obs::ProvenanceRecorder> provenance;
};

/// Watchdog thread for per-unit deadlines. Workers lease a watch on
/// their unit governor for the duration of each attempt; the watchdog
/// Cancels any governor whose deadline passes, which unwinds that
/// cascade at its next charge (cancellation is cooperative — it
/// interrupts governed loops, not arbitrary code) without touching the
/// sibling units.
class Watchdog {
 public:
  Watchdog() : thread_([this] { Loop(); }) {}

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_one();
    thread_.join();
  }

  void Watch(ResourceGovernor* governor, Clock::time_point deadline) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      watched_[governor] = deadline;
    }
    cv_.notify_one();
  }

  void Unwatch(ResourceGovernor* governor) {
    std::lock_guard<std::mutex> lock(mu_);
    watched_.erase(governor);
  }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      if (watched_.empty()) {
        cv_.wait(lock);
        continue;
      }
      const Clock::time_point now = Clock::now();
      Clock::time_point next = Clock::time_point::max();
      for (auto it = watched_.begin(); it != watched_.end();) {
        if (it->second <= now) {
          it->first->Cancel(Status::DeadlineExceeded(
              "unit deadline exceeded (watchdog cancellation)"));
          it = watched_.erase(it);
        } else {
          next = std::min(next, it->second);
          ++it;
        }
      }
      if (watched_.empty()) continue;
      cv_.wait_until(lock, next);
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::map<ResourceGovernor*, Clock::time_point> watched_;
  bool stop_ = false;
  std::thread thread_;
};

/// RAII watch lease: registered for the span of one attempt, always
/// unregistered before the governor leaves scope.
class WatchLease {
 public:
  WatchLease(Watchdog* watchdog, ResourceGovernor* governor,
             Clock::time_point deadline)
      : watchdog_(watchdog), governor_(governor) {
    if (watchdog_ != nullptr) watchdog_->Watch(governor_, deadline);
  }
  ~WatchLease() {
    if (watchdog_ != nullptr) watchdog_->Unwatch(governor_);
  }
  WatchLease(const WatchLease&) = delete;
  WatchLease& operator=(const WatchLease&) = delete;

 private:
  Watchdog* watchdog_;
  ResourceGovernor* governor_;
};

/// State shared by the workers, all of it guarded by `mu` except the
/// breaker flag (read on the hot path of every attempt).
struct Shared {
  std::mutex mu;
  size_t next = 0;
  bool halted = false;
  bool interrupted = false;
  size_t fresh_completed = 0;
  size_t consecutive_semantic_losses = 0;
  std::atomic<bool> breaker_tripped{false};
  std::map<std::string, UnitDone> done;
  CheckpointJournal* journal = nullptr;
  std::string journal_warning;
  /// Shutdown plumbing: the caller's cancel flag and the governor every
  /// unit governor parents to, so one Cancel unwinds all running
  /// cascades cooperatively.
  const std::atomic<bool>* cancel = nullptr;
  ResourceGovernor* interrupt_root = nullptr;
};

bool CancelRequested(const Shared* shared) {
  return shared->cancel != nullptr &&
         shared->cancel->load(std::memory_order_relaxed);
}

/// Run one unit to completion: up to unit_attempts attempts, each under
/// a fresh governor slice (watchdog-leased when a unit deadline is
/// configured) and a fresh scratch sink, retrying transient semantic
/// losses under the backoff schedule. Only the kept (final) attempt's
/// diagnostics survive, so a retried unit does not report the same lift
/// problems twice.
UnitDone RunUnit(const sem::AnnotatedSchema& source,
                 const sem::AnnotatedSchema& target, const Unit& unit,
                 const SupervisorOptions& options,
                 const TableCascadeOptions& base_opts, const RunContext& ctx,
                 Shared* shared, Watchdog* watchdog) {
  UnitDone done;
  if (ctx.sink != nullptr) done.sink = std::make_unique<DiagnosticSink>();
  if (ctx.tracer != nullptr) {
    done.tracer = std::make_unique<obs::Tracer>();
    done.tracer_offset_ns = ctx.tracer->NowNs();
  }
  if (ctx.metrics != nullptr) done.metrics = std::make_unique<obs::Metrics>();

  const size_t max_attempts = std::max<size_t>(1, options.unit_attempts);
  const Backoff backoff(options.backoff);
  bool breaker_open = false;
  for (size_t attempt = 0; attempt < max_attempts; ++attempt) {
    ++done.attempts;
    breaker_open = shared->breaker_tripped.load(std::memory_order_relaxed);

    TableCascadeOptions attempt_opts = base_opts;
    attempt_opts.semantic_enabled = !breaker_open;
    // Transient-fault simulation: the injected fault afflicts only the
    // first fault_attempts attempts, so a retry genuinely recovers.
    if (options.fault_attempts > 0 && attempt >= options.fault_attempts) {
      attempt_opts.fault_after.reset();
    }

    // The unit's own governor slice, parent of every tier governor the
    // cascade creates below it: one Cancel here unwinds them all. The
    // slice itself parents to the run's interrupt root, so a shutdown
    // request unwinds every unit with a single Cancel there.
    ResourceGovernor unit_governor;
    if (shared->interrupt_root != nullptr) {
      unit_governor.set_parent(shared->interrupt_root);
    }
    std::optional<WatchLease> lease;
    if (options.unit_deadline_ms >= 0) {
      unit_governor.set_deadline_ms(options.unit_deadline_ms);
      lease.emplace(watchdog, &unit_governor,
                    Clock::now() +
                        std::chrono::milliseconds(options.unit_deadline_ms));
    }

    DiagnosticSink attempt_sink;
    // Like the sink, provenance is per-attempt: only the kept (final)
    // attempt's records survive, matching the TableWork the unit reports.
    // The events stream is shared and append-only — every attempt shows.
    // A checkpointing run records provenance even when this run did not
    // ask for --explain: the journaled unit must carry it so a LATER
    // resume that does ask can still reproduce the full explain output.
    std::unique_ptr<obs::ProvenanceRecorder> attempt_provenance;
    if (ctx.provenance != nullptr || shared->journal != nullptr) {
      attempt_provenance = std::make_unique<obs::ProvenanceRecorder>();
    }
    RunContext unit_ctx;
    unit_ctx.governor = &unit_governor;
    unit_ctx.sink = done.sink != nullptr ? &attempt_sink : nullptr;
    unit_ctx.tracer = done.tracer.get();
    unit_ctx.metrics = done.metrics.get();
    unit_ctx.provenance = attempt_provenance.get();
    unit_ctx.events = ctx.events;

    TableWork work = RunTableCascade(source, target, unit.table, *unit.group,
                                     attempt_opts, unit_ctx);
    lease.reset();

    const bool retry = work.transient_failure && attempt + 1 < max_attempts &&
                       !shared->breaker_tripped.load(std::memory_order_relaxed) &&
                       !CancelRequested(shared);
    if (!retry) {
      done.work = std::move(work);
      done.provenance = std::move(attempt_provenance);
      if (done.sink != nullptr) {
        for (const Diagnostic& d : attempt_sink.diagnostics()) {
          done.sink->Add(d);
        }
      }
      break;
    }
    const int64_t delay_ms = backoff.DelayMs(attempt);
    done.retry_delays_ms.push_back(delay_ms);
    if (ctx.events != nullptr) {
      ctx.events->Emit("unit_retry",
                       TracedEvent(ctx)
                           .Str("table", unit.table)
                           .Int("attempt", static_cast<int64_t>(attempt + 1))
                           .Int("delay_ms", delay_ms));
    }
    if (delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
  }

  // Mirror the serial pipeline: fail-soft quarantine drops lead the
  // table's notes; supervisor annotations trail them. Fault-free runs
  // take one attempt with the breaker closed and add nothing, keeping
  // --jobs=N note-for-note identical to the serial path.
  TableOutcome& outcome = done.work.outcome;
  if (unit.quarantine_notes != nullptr) {
    outcome.notes.insert(outcome.notes.begin(), unit.quarantine_notes->begin(),
                         unit.quarantine_notes->end());
  }
  if (done.attempts > 1) {
    outcome.notes.push_back("supervisor: " + std::to_string(done.attempts) +
                            " attempt(s)");
  }
  if (breaker_open) {
    outcome.notes.push_back(
        "supervisor: circuit breaker open, semantic tiers skipped");
  }
  return done;
}

/// Worker loop: claim the next unclaimed unit, run it, publish the
/// result, update the breaker, journal the completion. Runs on each pool
/// thread, or inline on the calling thread when jobs <= 1.
void WorkerLoop(const sem::AnnotatedSchema& source,
                const sem::AnnotatedSchema& target,
                const std::vector<Unit>& units,
                const SupervisorOptions& options,
                const TableCascadeOptions& base_opts, const RunContext& ctx,
                Shared* shared, Watchdog* watchdog) {
  for (;;) {
    size_t index = 0;
    Clock::time_point claimed_at;
    {
      std::lock_guard<std::mutex> lock(shared->mu);
      if (CancelRequested(shared)) {
        // Shutdown observed with work still queued: record the interrupt
        // so the caller can distinguish "done" from "stopped".
        if (shared->next < units.size()) shared->interrupted = true;
        return;
      }
      if (shared->halted || shared->next >= units.size()) return;
      index = shared->next++;
      claimed_at = Clock::now();
    }
    const Unit& unit = units[index];
    int64_t unit_start_ns = 0;
    if (ctx.events != nullptr) {
      unit_start_ns = ctx.events->NowNs();
      ctx.events->Emit("unit_start",
                       TracedEvent(ctx).Str("table", unit.table));
    }
    UnitDone done =
        RunUnit(source, target, unit, options, base_opts, ctx, shared, watchdog);
    done.queue_wait_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             Clock::now() - claimed_at)
                             .count();
    if (ctx.events != nullptr) {
      ctx.events->Emit(
          "unit_done",
          TracedEvent(ctx)
              .Str("table", unit.table)
              .Str("tier", TierName(done.work.outcome.tier))
              .Int("attempts", static_cast<int64_t>(done.attempts))
              .Int("mappings",
                   static_cast<int64_t>(done.work.outcome.mappings))
              .Int("duration_ns", ctx.events->NowNs() - unit_start_ns));
    }

    std::lock_guard<std::mutex> lock(shared->mu);
    // A unit that lost its semantic tiers while a shutdown was pending
    // was (very likely) unwound by the interrupt root, not by a real
    // exhaustion: discard it — neither journaled, nor merged, nor
    // counted against the breaker — so the resumed run recomputes the
    // table instead of caching a cancellation artifact.
    if (CancelRequested(shared) && done.work.transient_failure) {
      shared->interrupted = true;
      if (ctx.events != nullptr) {
        ctx.events->Emit("unit_interrupted",
                         TracedEvent(ctx).Str("table", unit.table));
      }
      return;
    }
    // Circuit breaker: `transient_failure` marks a unit whose semantic
    // tiers were lost to exhaustion (it is never set once the breaker is
    // open, since those units run without semantic tiers). A semantic
    // success closes the window; a clean RIC answer neither counts nor
    // resets.
    if (options.breaker_threshold > 0 &&
        !shared->breaker_tripped.load(std::memory_order_relaxed)) {
      if (done.work.transient_failure) {
        if (++shared->consecutive_semantic_losses >=
            options.breaker_threshold) {
          shared->breaker_tripped.store(true, std::memory_order_relaxed);
          if (ctx.events != nullptr) {
            ctx.events->Emit(
                "breaker_trip",
                obs::WideEvent().Int(
                    "consecutive_losses",
                    static_cast<int64_t>(
                        shared->consecutive_semantic_losses)));
          }
        }
      } else if (done.work.outcome.tier == DegradationTier::kSemanticFull ||
                 done.work.outcome.tier ==
                     DegradationTier::kSemanticRestricted) {
        shared->consecutive_semantic_losses = 0;
      }
    }
    if (shared->journal != nullptr) {
      CheckpointedUnit checkpoint;
      checkpoint.outcome = done.work.outcome;
      checkpoint.mappings = done.work.mappings;
      // Journal the unit's pre-merge provenance alongside its mappings:
      // a resumed --explain then restores the search history instead of
      // reconstructing origin-"checkpoint" stubs.
      if (done.provenance != nullptr) {
        const auto& tables = done.provenance->tables();
        if (auto prov = tables.find(unit.table); prov != tables.end()) {
          checkpoint.provenance = prov->second;
          checkpoint.has_provenance = true;
        }
      }
      Status append = shared->journal->Append(checkpoint);
      if (!append.ok() && shared->journal_warning.empty()) {
        shared->journal_warning =
            "checkpoint append failed: " + append.ToString();
      }
      if (ctx.events != nullptr) {
        ctx.events->Emit("checkpoint_append",
                         obs::WideEvent()
                             .Str("table", unit.table)
                             .Bool("ok", append.ok()));
      }
    }
    shared->done.emplace(unit.table, std::move(done));
    ++shared->fresh_completed;
    if (options.halt_after_units > 0 &&
        shared->fresh_completed >= options.halt_after_units) {
      shared->halted = true;  // simulated kill: stop dispatching
    }
  }
}

}  // namespace

Result<SupervisorResult> RunSupervisedPipeline(
    const sem::AnnotatedSchema& source, const sem::AnnotatedSchema& target,
    const std::vector<disc::Correspondence>& correspondences,
    const SupervisorOptions& options, const RunContext& run_ctx) {
  if (correspondences.empty()) {
    return Status::InvalidArgument("no correspondences given");
  }
  RunContext ctx = run_ctx;
  if (ctx.sink == nullptr) ctx.sink = options.pipeline.sink;
  // Units get their own governor slices; a caller-provided governor is
  // not part of this entry point's contract (same as the serial path).
  ctx.governor = nullptr;

  auto prepared = PrepareResilientRun(source, target, correspondences, ctx);
  if (!prepared.ok()) return prepared.status();

  SupervisorResult result;

  // Checkpoint journal: open (or resume) before any unit runs, so even a
  // run killed on its first table leaves a well-formed journal behind.
  std::unique_ptr<CheckpointJournal> journal;
  std::map<std::string, CheckpointedUnit> checkpointed;
  if (!options.checkpoint_path.empty()) {
    const uint64_t fingerprint =
        ScenarioFingerprint(source, target, correspondences);
    if (options.resume) {
      std::vector<CheckpointedUnit> completed;
      std::string warning;
      auto resumed = CheckpointJournal::Resume(options.checkpoint_path,
                                               fingerprint, &completed,
                                               &warning, options.io_env);
      if (!resumed.ok()) return resumed.status();
      journal = std::make_unique<CheckpointJournal>(
          std::move(resumed).ValueOrDie());
      result.journal_warning = std::move(warning);
      for (CheckpointedUnit& unit : completed) {
        // Trust only tables this run actually cascades; the fingerprint
        // already guarantees the scenario matches.
        if (prepared->groups.count(unit.outcome.target_table) > 0) {
          std::string table = unit.outcome.target_table;
          checkpointed.emplace(std::move(table), std::move(unit));
        }
      }
    } else {
      auto created = CheckpointJournal::Create(options.checkpoint_path,
                                               fingerprint, options.io_env);
      if (!created.ok()) return created.status();
      journal = std::make_unique<CheckpointJournal>(
          std::move(created).ValueOrDie());
    }
  }

  // The work queue: every cascading table not already served by the
  // journal, in sorted (map) order.
  std::vector<Unit> units;
  units.reserve(prepared->groups.size());
  for (const auto& [table, group] : prepared->groups) {
    if (checkpointed.count(table) > 0) continue;
    Unit unit;
    unit.table = table;
    unit.group = &group;
    if (auto it = prepared->quarantine_notes.find(table);
        it != prepared->quarantine_notes.end()) {
      unit.quarantine_notes = &it->second;
    }
    units.push_back(std::move(unit));
  }

  TableCascadeOptions base_opts;
  base_opts.semantic = options.pipeline.semantic;
  base_opts.ric = options.pipeline.ric;
  base_opts.max_steps = options.pipeline.max_steps;
  base_opts.retries_per_tier = options.pipeline.retries_per_tier;
  if (options.pipeline.fault_after >= 0) {
    base_opts.fault_after = options.pipeline.fault_after;
  } else {
    base_opts.fault_after = ResourceGovernor::FaultAfterFromEnv();
  }
  if (options.pipeline.deadline_ms >= 0) {
    base_opts.deadline =
        Clock::now() + std::chrono::milliseconds(options.pipeline.deadline_ms);
  }

  // Shutdown plumbing: every unit governor parents to this root, and a
  // small monitor thread trips it as soon as the caller's cancel flag
  // reads true, unwinding every running cascade at its next charge.
  ResourceGovernor interrupt_root;

  Shared shared;
  shared.journal = journal.get();
  shared.cancel = options.cancel;
  shared.interrupt_root = options.cancel != nullptr ? &interrupt_root : nullptr;

  {
    // Scoped so the watchdog and monitor (when present) are joined
    // before assembly.
    std::unique_ptr<Watchdog> watchdog;
    if (options.unit_deadline_ms >= 0 && !units.empty()) {
      watchdog = std::make_unique<Watchdog>();
    }
    std::atomic<bool> monitor_stop{false};
    std::thread monitor;
    if (options.cancel != nullptr && !units.empty()) {
      monitor = std::thread([&interrupt_root, &monitor_stop,
                             cancel = options.cancel] {
        while (!monitor_stop.load(std::memory_order_relaxed)) {
          if (cancel->load(std::memory_order_relaxed)) {
            interrupt_root.Cancel(Status::DeadlineExceeded(
                "run interrupted (shutdown requested)"));
            return;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
      });
    }
    const size_t jobs = std::max<size_t>(1, options.jobs);
    const size_t pool = std::min(jobs, units.size());
    if (pool <= 1) {
      WorkerLoop(source, target, units, options, base_opts, ctx, &shared,
                 watchdog.get());
    } else {
      std::vector<std::thread> workers;
      workers.reserve(pool);
      for (size_t i = 0; i < pool; ++i) {
        workers.emplace_back([&] {
          WorkerLoop(source, target, units, options, base_opts, ctx, &shared,
                     watchdog.get());
        });
      }
      for (std::thread& worker : workers) worker.join();
    }
    if (monitor.joinable()) {
      monitor_stop.store(true, std::memory_order_relaxed);
      monitor.join();
    }
  }

  // --- Assembly: single-threaded, in sorted table order -------------
  // Exactly the serial pipeline's merge, which is what makes --jobs=N
  // (and resumed runs) reproduce its mapping set and report.
  result.run.report.quarantined_correspondences =
      prepared->quarantined_correspondences;
  result.run.report.tables = std::move(prepared->quarantined_tables);
  if (ctx.provenance != nullptr) {
    for (const TableOutcome& outcome : result.run.report.tables) {
      ctx.provenance->RecordOutcome(outcome.target_table,
                                    TierName(outcome.tier), outcome.notes);
    }
  }
  ctx.Count("pipeline.tables", static_cast<int64_t>(prepared->groups.size()));
  ctx.Count("pipeline.quarantined_correspondences",
            static_cast<int64_t>(prepared->quarantined_correspondences));

  MappingMerger merger(ctx);
  for (const auto& [table, group] : prepared->groups) {
    if (auto cp = checkpointed.find(table); cp != checkpointed.end()) {
      // Served from the journal: its outcome (quarantine notes included)
      // and raw mappings were recorded at completion; only the merge
      // reruns, which is deterministic.
      ctx.Count("supervisor.units_resumed");
      if (ctx.events != nullptr) {
        ctx.events->Emit("checkpoint_resume",
                         obs::WideEvent()
                             .Str("table", table)
                             .Str("tier", TierName(cp->second.outcome.tier))
                             .Int("mappings",
                                  static_cast<int64_t>(
                                      cp->second.mappings.size())));
      }
      UnitReport report;
      report.table = table;
      report.from_checkpoint = true;
      if (ctx.provenance != nullptr && cp->second.has_provenance) {
        // The journal carries the unit's pre-merge provenance: adopt it
        // exactly as MergeFrom would a live recorder's, then let the
        // deterministic merge replay re-stamp emitted/tier below — the
        // resumed --explain output is byte-identical to an
        // uninterrupted run's.
        ctx.provenance->AdoptTable(cp->second.provenance);
        ctx.provenance->RecordOutcome(table,
                                      TierName(cp->second.outcome.tier),
                                      cp->second.outcome.notes);
      } else if (ctx.provenance != nullptr) {
        // Journals written before provenance was checkpointed keep the
        // unit's result, not its search history: reconstruct one
        // derivation per cached mapping (origin "checkpoint") so the
        // one-derivation-per-emitted-TGD invariant survives a resume;
        // the rejection log of the original run is gone.
        for (const ResilientMapping& mapping : cp->second.mappings) {
          obs::DerivationRecord derivation;
          derivation.tgd = mapping.tgd.ToString();
          derivation.origin = "checkpoint";
          for (const disc::Correspondence& corr : mapping.covered) {
            derivation.covered.push_back(corr.ToString());
          }
          derivation.skolems = SkolemDecisionsOf(mapping.tgd);
          derivation.source_algebra = mapping.source_algebra;
          derivation.target_algebra = mapping.target_algebra;
          ctx.provenance->BeginTable(table);
          ctx.provenance->RecordDerivation(std::move(derivation));
          ctx.provenance->EndTable();
        }
        ctx.provenance->RecordOutcome(table,
                                      TierName(cp->second.outcome.tier),
                                      cp->second.outcome.notes);
      }
      for (ResilientMapping& mapping : cp->second.mappings) {
        merger.Emit(std::move(mapping));
      }
      if (cp->second.outcome.tier != DegradationTier::kSemanticFull) {
        ctx.Count("pipeline.degraded_tables");
      }
      result.run.report.tables.push_back(std::move(cp->second.outcome));
      result.units.push_back(std::move(report));
      continue;
    }
    auto it = shared.done.find(table);
    if (it == shared.done.end()) continue;  // halted before this table ran
    UnitDone& done = it->second;
    if (ctx.sink != nullptr && done.sink != nullptr) {
      for (const Diagnostic& d : done.sink->diagnostics()) ctx.sink->Add(d);
    }
    if (ctx.tracer != nullptr && done.tracer != nullptr) {
      ctx.tracer->Absorb(*done.tracer, "unit/" + table, done.tracer_offset_ns);
    }
    if (ctx.metrics != nullptr && done.metrics != nullptr) {
      ctx.metrics->MergeFrom(*done.metrics);
      ctx.metrics->RecordDurationNs("supervisor.queue_wait",
                                    done.queue_wait_ns);
    }
    if (ctx.provenance != nullptr && done.provenance != nullptr) {
      ctx.provenance->MergeFrom(*done.provenance);
      ctx.provenance->RecordOutcome(table, TierName(done.work.outcome.tier),
                                    done.work.outcome.notes);
    }
    ctx.Count("supervisor.unit_attempts", static_cast<int64_t>(done.attempts));
    result.retries += done.attempts - 1;
    for (ResilientMapping& mapping : done.work.mappings) {
      merger.Emit(std::move(mapping));
    }
    if (done.work.outcome.tier != DegradationTier::kSemanticFull) {
      ctx.Count("pipeline.degraded_tables");
    }
    result.run.report.tables.push_back(std::move(done.work.outcome));
    UnitReport report;
    report.table = table;
    report.attempts = done.attempts;
    report.retry_delays_ms = std::move(done.retry_delays_ms);
    report.queue_wait_ns = done.queue_wait_ns;
    result.units.push_back(std::move(report));
  }
  result.run.mappings = std::move(merger.mappings());
  ctx.Count("pipeline.mappings_emitted",
            static_cast<int64_t>(result.run.mappings.size()));
  if (result.retries > 0) {
    ctx.Count("supervisor.retries", static_cast<int64_t>(result.retries));
  }
  result.breaker_tripped =
      shared.breaker_tripped.load(std::memory_order_relaxed);
  if (result.breaker_tripped) ctx.Count("supervisor.breaker_trips");
  result.halted = shared.halted;
  result.interrupted = shared.interrupted;
  if (result.interrupted) ctx.Count("supervisor.interrupted");
  if (result.journal_warning.empty()) {
    result.journal_warning = std::move(shared.journal_warning);
  }
  return result;
}

}  // namespace semap::exec
