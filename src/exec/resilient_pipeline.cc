#include "exec/resilient_pipeline.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>

namespace semap::exec {

const char* TierName(DegradationTier tier) {
  switch (tier) {
    case DegradationTier::kSemanticFull:
      return "semantic-full";
    case DegradationTier::kSemanticRestricted:
      return "semantic-restricted";
    case DegradationTier::kRicBaseline:
      return "ric-baseline";
    case DegradationTier::kFailed:
      return "failed";
  }
  return "unknown";
}

bool DegradationReport::AnyDegraded() const {
  for (const TableOutcome& t : tables) {
    if (t.tier != DegradationTier::kSemanticFull) return true;
  }
  return false;
}

bool DegradationReport::AnyAtBaselineOrWorse() const {
  for (const TableOutcome& t : tables) {
    if (t.tier == DegradationTier::kRicBaseline ||
        t.tier == DegradationTier::kFailed) {
      return true;
    }
  }
  return false;
}

std::string DegradationReport::ToString() const {
  std::string out = "degradation report (" + std::to_string(tables.size()) +
                    " target table(s)):\n";
  for (const TableOutcome& t : tables) {
    out += "  " + t.target_table + ": " + TierName(t.tier) + ", " +
           std::to_string(t.mappings) + " mapping(s)\n";
    for (const std::string& note : t.notes) {
      out += "    - " + note + "\n";
    }
  }
  return out;
}

namespace {

using Clock = std::chrono::steady_clock;

struct Deadline {
  std::optional<Clock::time_point> at;

  /// Milliseconds left, clamped at 0; nullopt when no deadline is set.
  std::optional<int64_t> RemainingMs() const {
    if (!at.has_value()) return std::nullopt;
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        *at - Clock::now());
    return std::max<int64_t>(0, left.count());
  }
};

void ConfigureGovernor(ResourceGovernor* governor, const Deadline& deadline,
                       int64_t step_budget,
                       const std::optional<int64_t>& fault_after) {
  if (auto ms = deadline.RemainingMs(); ms.has_value()) {
    governor->set_deadline_ms(*ms);
  }
  if (step_budget >= 0) governor->set_max_steps(step_budget);
  if (fault_after.has_value()) governor->InjectFailureAfter(*fault_after);
}

/// Tier-1 search restrictions: no lossy joins, tight enumeration caps —
/// the cheapest configuration that can still find functional mappings.
rew::SemanticMapperOptions RestrictSemantic(rew::SemanticMapperOptions opts) {
  opts.discovery.allow_lossy = false;
  opts.discovery.max_trees_per_side =
      std::min<size_t>(opts.discovery.max_trees_per_side, 2);
  opts.discovery.max_candidates =
      std::min<size_t>(opts.discovery.max_candidates, 4);
  opts.max_rewritings_per_side =
      std::min<size_t>(opts.max_rewritings_per_side, 2);
  return opts;
}

}  // namespace

Result<ResilientResult> RunResilientPipeline(
    const sem::AnnotatedSchema& source, const sem::AnnotatedSchema& target,
    const std::vector<disc::Correspondence>& correspondences,
    const ResilientPipelineOptions& options) {
  if (correspondences.empty()) {
    return Status::InvalidArgument("no correspondences given");
  }
  for (const disc::Correspondence& corr : correspondences) {
    if (!source.schema().HasColumn(corr.source)) {
      return Status::NotFound("unknown source column " +
                              corr.source.ToString());
    }
    if (!target.schema().HasColumn(corr.target)) {
      return Status::NotFound("unknown target column " +
                              corr.target.ToString());
    }
  }

  std::optional<int64_t> fault_after;
  if (options.fault_after >= 0) {
    fault_after = options.fault_after;
  } else {
    fault_after = ResourceGovernor::FaultAfterFromEnv();
  }
  Deadline deadline;
  if (options.deadline_ms >= 0) {
    deadline.at = Clock::now() + std::chrono::milliseconds(options.deadline_ms);
  }

  // Per-table cascades, in deterministic (sorted) table order.
  std::map<std::string, std::vector<disc::Correspondence>> groups;
  for (const disc::Correspondence& corr : correspondences) {
    groups[corr.target.table].push_back(corr);
  }

  ResilientResult result;
  auto emit = [&result](ResilientMapping mapping) {
    // Cross-table duplicates (two groups reaching the same expression)
    // collapse onto the first, least-degraded occurrence.
    for (const ResilientMapping& existing : result.mappings) {
      if (logic::EquivalentTgds(existing.tgd, mapping.tgd)) return false;
    }
    result.mappings.push_back(std::move(mapping));
    return true;
  };

  for (const auto& [table, group] : groups) {
    TableOutcome outcome;
    outcome.target_table = table;
    bool settled = false;

    // Governed semantic tiers, each retried under halving step budgets.
    const DegradationTier semantic_tiers[] = {
        DegradationTier::kSemanticFull, DegradationTier::kSemanticRestricted};
    bool semantic_answered_empty = false;
    for (DegradationTier tier : semantic_tiers) {
      if (settled || semantic_answered_empty) break;
      rew::SemanticMapperOptions sem_opts =
          tier == DegradationTier::kSemanticFull
              ? options.semantic
              : RestrictSemantic(options.semantic);
      int64_t tier_budget = options.max_steps;
      if (tier_budget >= 0 && tier == DegradationTier::kSemanticRestricted) {
        tier_budget /= 2;
      }
      for (size_t attempt = 0; attempt <= options.retries_per_tier;
           ++attempt) {
        int64_t budget = tier_budget;
        if (budget >= 0) budget >>= attempt;
        ResourceGovernor governor;
        ConfigureGovernor(&governor, deadline, budget, fault_after);
        sem_opts.discovery.governor = &governor;
        auto mappings =
            rew::GenerateSemanticMappings(source, target, group, sem_opts);
        std::string attempt_label = std::string(TierName(tier)) +
                                    " (attempt " +
                                    std::to_string(attempt + 1) + ")";
        if (!mappings.ok()) {
          outcome.notes.push_back(attempt_label + ": " +
                                  mappings.status().ToString());
          break;  // A real error will not improve under a smaller budget.
        }
        if (!mappings->empty()) {
          outcome.tier = tier;
          outcome.mappings = mappings->size();
          if (governor.exhausted()) {
            outcome.notes.push_back(attempt_label + ": partial result, " +
                                    governor.status().ToString());
            for (const std::string& note : governor.truncations()) {
              outcome.notes.push_back(attempt_label + ": " + note);
            }
          }
          for (rew::GeneratedMapping& m : *mappings) {
            ResilientMapping out;
            out.tier = tier;
            out.target_table = table;
            out.tgd = std::move(m.tgd);
            out.covered = std::move(m.covered);
            out.source_algebra = std::move(m.source_algebra);
            out.target_algebra = std::move(m.target_algebra);
            emit(std::move(out));
          }
          settled = true;
          break;
        }
        outcome.notes.push_back(attempt_label + ": no mappings (" +
                                governor.status().ToString() + ")");
        // A clean empty result is the technique's answer, not a resource
        // problem; shrinking the budget or the search space cannot add
        // mappings, so skip straight to the baseline.
        if (!governor.exhausted()) {
          semantic_answered_empty = true;
          break;
        }
      }
    }

    if (!settled) {
      // The lifeline: the RIC baseline always terminates, so it runs
      // exempt from step budgets and fault injection (deadline only).
      baseline::RicMapperOptions ric_opts = options.ric;
      ResourceGovernor governor;
      ConfigureGovernor(&governor, deadline, /*step_budget=*/-1,
                        /*fault_after=*/std::nullopt);
      ric_opts.governor = &governor;
      auto ric = baseline::GenerateRicMappings(source.schema(),
                                               target.schema(), group,
                                               ric_opts);
      if (ric.ok() && !ric->empty()) {
        outcome.tier = DegradationTier::kRicBaseline;
        outcome.mappings = ric->size();
        if (governor.exhausted()) {
          outcome.notes.push_back(std::string(TierName(outcome.tier)) +
                                  ": partial result, " +
                                  governor.status().ToString());
        }
        for (baseline::RicMapping& m : *ric) {
          ResilientMapping out;
          out.tier = DegradationTier::kRicBaseline;
          out.target_table = table;
          out.tgd = std::move(m.tgd);
          out.covered = std::move(m.covered);
          emit(std::move(out));
        }
      } else {
        outcome.tier = DegradationTier::kFailed;
        outcome.notes.push_back(
            std::string(TierName(DegradationTier::kRicBaseline)) + ": " +
            (ric.ok() ? std::string("no mappings (") +
                            governor.status().ToString() + ")"
                      : ric.status().ToString()));
      }
    }
    result.report.tables.push_back(std::move(outcome));
  }
  return result;
}

}  // namespace semap::exec
