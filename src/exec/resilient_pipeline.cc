#include "exec/resilient_pipeline.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>

#include "validate/tgd_check.h"

namespace semap::exec {

const char* TierName(DegradationTier tier) {
  switch (tier) {
    case DegradationTier::kSemanticFull:
      return "semantic-full";
    case DegradationTier::kSemanticRestricted:
      return "semantic-restricted";
    case DegradationTier::kRicBaseline:
      return "ric-baseline";
    case DegradationTier::kFailed:
      return "failed";
    case DegradationTier::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

bool DegradationReport::AnyDegraded() const {
  for (const TableOutcome& t : tables) {
    if (t.tier != DegradationTier::kSemanticFull) return true;
  }
  return false;
}

bool DegradationReport::AnyAtBaselineOrWorse() const {
  for (const TableOutcome& t : tables) {
    if (t.tier == DegradationTier::kRicBaseline ||
        t.tier == DegradationTier::kFailed ||
        t.tier == DegradationTier::kQuarantined) {
      return true;
    }
  }
  return false;
}

std::string DegradationReport::ToString() const {
  std::string out = "degradation report (" + std::to_string(tables.size()) +
                    " target table(s)):\n";
  if (quarantined_correspondences > 0) {
    out += "  quarantined correspondence(s): " +
           std::to_string(quarantined_correspondences) + "\n";
  }
  for (const TableOutcome& t : tables) {
    out += "  " + t.target_table + ": " + TierName(t.tier) + ", " +
           std::to_string(t.mappings) + " mapping(s)\n";
    for (const std::string& note : t.notes) {
      out += "    - " + note + "\n";
    }
  }
  return out;
}

namespace {

using Clock = std::chrono::steady_clock;

/// Milliseconds left until `deadline`, clamped at 0.
std::optional<int64_t> RemainingMs(
    const std::optional<Clock::time_point>& deadline) {
  if (!deadline.has_value()) return std::nullopt;
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      *deadline - Clock::now());
  return std::max<int64_t>(0, left.count());
}

void ConfigureGovernor(ResourceGovernor* governor,
                       const std::optional<Clock::time_point>& deadline,
                       int64_t step_budget,
                       const std::optional<int64_t>& fault_after,
                       ResourceGovernor* parent) {
  if (auto ms = RemainingMs(deadline); ms.has_value()) {
    governor->set_deadline_ms(*ms);
  }
  if (step_budget >= 0) governor->set_max_steps(step_budget);
  if (fault_after.has_value()) governor->InjectFailureAfter(*fault_after);
  if (parent != nullptr) governor->set_parent(parent);
}

/// Tier-1 search restrictions: no lossy joins, tight enumeration caps —
/// the cheapest configuration that can still find functional mappings.
rew::SemanticMapperOptions RestrictSemantic(rew::SemanticMapperOptions opts) {
  opts.discovery.allow_lossy = false;
  opts.discovery.max_trees_per_side =
      std::min<size_t>(opts.discovery.max_trees_per_side, 2);
  opts.discovery.max_candidates =
      std::min<size_t>(opts.discovery.max_candidates, 4);
  opts.max_rewritings_per_side =
      std::min<size_t>(opts.max_rewritings_per_side, 2);
  return opts;
}

}  // namespace

Result<PreparedRun> PrepareResilientRun(
    const sem::AnnotatedSchema& source, const sem::AnnotatedSchema& target,
    const std::vector<disc::Correspondence>& correspondences,
    const RunContext& ctx) {
  PreparedRun prepared;
  // Fail-soft validation: without a sink a dangling correspondence is a
  // hard error (the caller asked for strict inputs); with one it is
  // quarantined — dropped with a diagnostic, its table reported at tier
  // kQuarantined — and the rest of the run proceeds.
  std::map<std::string, std::vector<std::string>> quarantined_by_table;
  for (const disc::Correspondence& corr : correspondences) {
    const rel::ColumnRef* dangling = nullptr;
    const char* side = nullptr;
    if (!source.schema().HasColumn(corr.source)) {
      dangling = &corr.source;
      side = "source";
    } else if (!target.schema().HasColumn(corr.target)) {
      dangling = &corr.target;
      side = "target";
    }
    if (dangling == nullptr) {
      prepared.groups[corr.target.table].push_back(corr);
      continue;
    }
    if (ctx.sink == nullptr) {
      return Status::NotFound("unknown " + std::string(side) + " column " +
                              dangling->ToString());
    }
    ctx.sink->Error(diag::kDanglingCorrespondence,
                    "unknown " + std::string(side) + " column " +
                        dangling->ToString() + "; quarantining " +
                        corr.ToString(),
                    {}, "fix the column name or remove the statement");
    quarantined_by_table[corr.target.table].push_back(corr.ToString());
    ++prepared.quarantined_correspondences;
  }

  // Tables whose every correspondence was quarantined never cascade; they
  // surface directly at tier kQuarantined. Partially affected tables keep
  // the drops as notes on their eventual cascade outcome.
  for (const auto& [table, dropped] : quarantined_by_table) {
    if (prepared.groups.count(table)) {
      for (const std::string& corr : dropped) {
        prepared.quarantine_notes[table].push_back("quarantined: " + corr);
      }
      continue;
    }
    TableOutcome outcome;
    outcome.target_table = table;
    outcome.tier = DegradationTier::kQuarantined;
    for (const std::string& corr : dropped) {
      outcome.notes.push_back("quarantined: " + corr);
    }
    prepared.quarantined_tables.push_back(std::move(outcome));
  }
  return prepared;
}

bool MappingMerger::Emit(ResilientMapping mapping) {
  // An unsafe tgd (frontier variable the source query never binds) is a
  // generator bug, never a valid answer: discard it rather than ship an
  // unexecutable mapping.
  if (ctx_.sink != nullptr &&
      !validate::CheckTgdSafety(mapping.tgd, *ctx_.sink)) {
    if (ctx_.provenance != nullptr) {
      ctx_.provenance->MarkDropped(mapping.target_table,
                                   mapping.tgd.ToString(), "unsafe-tgd");
    }
    return false;
  }
  // Cross-table duplicates (two groups reaching the same expression)
  // collapse onto the first, least-degraded occurrence.
  for (const ResilientMapping& existing : mappings_) {
    if (logic::EquivalentTgds(existing.tgd, mapping.tgd)) {
      if (ctx_.provenance != nullptr) {
        ctx_.provenance->MarkDropped(
            mapping.target_table, mapping.tgd.ToString(),
            "duplicate of a mapping emitted for " + existing.target_table);
      }
      return false;
    }
  }
  if (ctx_.provenance != nullptr) {
    ctx_.provenance->ConfirmEmitted(mapping.target_table,
                                    mapping.tgd.ToString(),
                                    TierName(mapping.tier));
  }
  mappings_.push_back(std::move(mapping));
  return true;
}

TableWork RunTableCascade(const sem::AnnotatedSchema& source,
                          const sem::AnnotatedSchema& target,
                          const std::string& table,
                          const std::vector<disc::Correspondence>& group,
                          const TableCascadeOptions& options,
                          const RunContext& ctx) {
  obs::Span cascade_span = ctx.Span("cascade");
  cascade_span.AddAttr("table", table);
  obs::ProvenanceTableScope provenance_scope(ctx.provenance, table);
  int64_t cascade_start_ns = 0;
  if (ctx.events != nullptr) {
    cascade_start_ns = ctx.events->NowNs();
    ctx.events->Emit("cascade_start", obs::WideEvent().Str("table", table));
  }
  TableWork work;
  work.outcome.target_table = table;
  TableOutcome& outcome = work.outcome;
  bool settled = false;

  // Governed semantic tiers, each retried under halving step budgets.
  const DegradationTier semantic_tiers[] = {
      DegradationTier::kSemanticFull, DegradationTier::kSemanticRestricted};
  bool semantic_answered_empty = false;
  bool last_semantic_exhausted = false;
  for (DegradationTier tier : semantic_tiers) {
    if (!options.semantic_enabled) break;
    if (settled || semantic_answered_empty) break;
    rew::SemanticMapperOptions sem_opts =
        tier == DegradationTier::kSemanticFull
            ? options.semantic
            : RestrictSemantic(options.semantic);
    int64_t tier_budget = options.max_steps;
    if (tier_budget >= 0 && tier == DegradationTier::kSemanticRestricted) {
      tier_budget /= 2;
    }
    for (size_t attempt = 0; attempt <= options.retries_per_tier; ++attempt) {
      int64_t budget = tier_budget;
      if (budget >= 0) budget >>= attempt;
      ResourceGovernor governor;
      ConfigureGovernor(&governor, options.deadline, budget,
                        options.fault_after, ctx.governor);
      // Discovery reports unliftable correspondences into a scratch sink
      // so cascade retries do not duplicate them; lifting is
      // deterministic, so the first attempt's findings stand for all.
      DiagnosticSink lift_sink;
      RunContext tier_ctx = ctx.WithGovernor(&governor);
      tier_ctx.sink = ctx.sink != nullptr ? &lift_sink : nullptr;
      ctx.Count("pipeline.tier_attempts");
      if (ctx.provenance != nullptr) {
        ctx.provenance->BeginAttempt(TierName(tier), attempt + 1);
      }
      int64_t tier_start_ns =
          ctx.events != nullptr ? ctx.events->NowNs() : 0;
      obs::Span tier_span = ctx.Span("tier");
      tier_span.AddAttr("tier", TierName(tier));
      tier_span.AddAttr("attempt", static_cast<int64_t>(attempt + 1));
      rew::MapRequest map_req;
      map_req.source = &source;
      map_req.target = &target;
      map_req.correspondences = &group;
      map_req.options = sem_opts;
      auto mappings = rew::GenerateMappings(map_req, tier_ctx);
      if (governor.exhausted()) ctx.Count("governor.trips");
      last_semantic_exhausted = governor.exhausted();
      tier_span.End();
      if (ctx.provenance != nullptr) {
        obs::AttemptRecord record;
        record.tier = TierName(tier);
        record.attempt = attempt + 1;
        record.mappings = mappings.ok() ? mappings->size() : 0;
        if (!mappings.ok()) {
          record.status = "error";
          record.detail = mappings.status().ToString();
        } else if (!mappings->empty()) {
          record.status = "ok";
          if (governor.exhausted()) {
            record.detail = "partial result, " + governor.status().ToString();
          }
        } else if (governor.exhausted()) {
          record.status = "exhausted";
          record.detail = governor.status().ToString();
        } else {
          record.status = "empty";
          record.detail = governor.status().ToString();
        }
        ctx.provenance->RecordAttempt(std::move(record));
      }
      if (ctx.events != nullptr) {
        ctx.events->Emit(
            "tier_end",
            obs::WideEvent()
                .Str("table", table)
                .Str("tier", TierName(tier))
                .Int("attempt", static_cast<int64_t>(attempt + 1))
                .Str("status", !mappings.ok()          ? "error"
                               : !mappings->empty()    ? "ok"
                               : governor.exhausted()  ? "exhausted"
                                                       : "empty")
                .Int("mappings",
                     static_cast<int64_t>(mappings.ok() ? mappings->size()
                                                        : 0))
                .Int("duration_ns", ctx.events->NowNs() - tier_start_ns));
      }
      if (ctx.sink != nullptr && tier == DegradationTier::kSemanticFull &&
          attempt == 0) {
        for (const Diagnostic& d : lift_sink.diagnostics()) {
          ctx.sink->Add(d);
        }
      }
      std::string attempt_label = std::string(TierName(tier)) + " (attempt " +
                                  std::to_string(attempt + 1) + ")";
      if (!mappings.ok()) {
        outcome.notes.push_back(attempt_label + ": " +
                                mappings.status().ToString());
        last_semantic_exhausted = false;
        break;  // A real error will not improve under a smaller budget.
      }
      if (!mappings->empty()) {
        outcome.tier = tier;
        outcome.mappings = mappings->size();
        if (governor.exhausted()) {
          outcome.notes.push_back(attempt_label + ": partial result, " +
                                  governor.status().ToString());
          for (const std::string& note : governor.truncations()) {
            outcome.notes.push_back(attempt_label + ": " + note);
          }
        }
        for (rew::GeneratedMapping& m : *mappings) {
          ResilientMapping out;
          out.tier = tier;
          out.target_table = table;
          out.tgd = std::move(m.tgd);
          out.covered = std::move(m.covered);
          out.source_algebra = std::move(m.source_algebra);
          out.target_algebra = std::move(m.target_algebra);
          work.mappings.push_back(std::move(out));
        }
        settled = true;
        break;
      }
      outcome.notes.push_back(attempt_label + ": no mappings (" +
                              governor.status().ToString() + ")");
      // A clean empty result is the technique's answer, not a resource
      // problem; shrinking the budget or the search space cannot add
      // mappings, so skip straight to the baseline.
      if (!governor.exhausted()) {
        semantic_answered_empty = true;
        break;
      }
    }
  }

  if (!settled) {
    // The lifeline: the RIC baseline always terminates, so it runs
    // exempt from step budgets and fault injection (deadline only).
    baseline::RicMapperOptions ric_opts = options.ric;
    ResourceGovernor governor;
    ConfigureGovernor(&governor, options.deadline, /*step_budget=*/-1,
                      /*fault_after=*/std::nullopt, ctx.governor);
    ctx.Count("pipeline.tier_attempts");
    if (ctx.provenance != nullptr) {
      ctx.provenance->BeginAttempt(TierName(DegradationTier::kRicBaseline), 1);
    }
    int64_t tier_start_ns = ctx.events != nullptr ? ctx.events->NowNs() : 0;
    obs::Span tier_span = ctx.Span("tier");
    tier_span.AddAttr("tier", TierName(DegradationTier::kRicBaseline));
    auto ric =
        baseline::GenerateRicMappings(source.schema(), target.schema(), group,
                                      ric_opts, ctx.WithGovernor(&governor));
    if (governor.exhausted()) ctx.Count("governor.trips");
    tier_span.End();
    if (ctx.provenance != nullptr) {
      obs::AttemptRecord record;
      record.tier = TierName(DegradationTier::kRicBaseline);
      record.attempt = 1;
      record.mappings = ric.ok() ? ric->size() : 0;
      if (!ric.ok()) {
        record.status = "error";
        record.detail = ric.status().ToString();
      } else if (!ric->empty()) {
        record.status = "ok";
        if (governor.exhausted()) {
          record.detail = "partial result, " + governor.status().ToString();
        }
      } else {
        record.status = governor.exhausted() ? "exhausted" : "empty";
        record.detail = governor.status().ToString();
      }
      ctx.provenance->RecordAttempt(std::move(record));
    }
    if (ctx.events != nullptr) {
      ctx.events->Emit(
          "tier_end",
          obs::WideEvent()
              .Str("table", table)
              .Str("tier", TierName(DegradationTier::kRicBaseline))
              .Int("attempt", 1)
              .Str("status", !ric.ok()             ? "error"
                             : !ric->empty()       ? "ok"
                             : governor.exhausted() ? "exhausted"
                                                    : "empty")
              .Int("mappings",
                   static_cast<int64_t>(ric.ok() ? ric->size() : 0))
              .Int("duration_ns", ctx.events->NowNs() - tier_start_ns));
    }
    if (ric.ok() && !ric->empty()) {
      outcome.tier = DegradationTier::kRicBaseline;
      outcome.mappings = ric->size();
      if (governor.exhausted()) {
        outcome.notes.push_back(std::string(TierName(outcome.tier)) +
                                ": partial result, " +
                                governor.status().ToString());
      }
      for (baseline::RicMapping& m : *ric) {
        ResilientMapping out;
        out.tier = DegradationTier::kRicBaseline;
        out.target_table = table;
        out.tgd = std::move(m.tgd);
        out.covered = std::move(m.covered);
        work.mappings.push_back(std::move(out));
      }
    } else {
      outcome.tier = DegradationTier::kFailed;
      outcome.notes.push_back(
          std::string(TierName(DegradationTier::kRicBaseline)) + ": " +
          (ric.ok() ? std::string("no mappings (") +
                          governor.status().ToString() + ")"
                    : ric.status().ToString()));
    }
    // Exhaustion in the semantic tiers (budget, deadline, injected fault)
    // is the transient kind of failure a fresh attempt might clear; a
    // clean empty answer or a real error is not.
    work.transient_failure =
        options.semantic_enabled && last_semantic_exhausted;
  }
  cascade_span.AddAttr("tier", TierName(outcome.tier));
  cascade_span.AddAttr("mappings", static_cast<int64_t>(outcome.mappings));
  if (ctx.events != nullptr) {
    ctx.events->Emit("cascade_end",
                     obs::WideEvent()
                         .Str("table", table)
                         .Str("tier", TierName(outcome.tier))
                         .Int("mappings",
                              static_cast<int64_t>(outcome.mappings))
                         .Int("duration_ns",
                              ctx.events->NowNs() - cascade_start_ns));
  }
  return work;
}

Result<ResilientResult> RunResilientPipeline(
    const sem::AnnotatedSchema& source, const sem::AnnotatedSchema& target,
    const std::vector<disc::Correspondence>& correspondences,
    const ResilientPipelineOptions& options) {
  return RunResilientPipeline(source, target, correspondences, options,
                              RunContext{});
}

Result<ResilientResult> RunResilientPipeline(
    const sem::AnnotatedSchema& source, const sem::AnnotatedSchema& target,
    const std::vector<disc::Correspondence>& correspondences,
    const ResilientPipelineOptions& options, const RunContext& run_ctx) {
  if (correspondences.empty()) {
    return Status::InvalidArgument("no correspondences given");
  }
  RunContext ctx = run_ctx;
  if (ctx.sink == nullptr) ctx.sink = options.sink;
  // The cascade manufactures its own governor slices; a caller-provided
  // governor is not part of this entry point's contract.
  ctx.governor = nullptr;

  auto prepared =
      PrepareResilientRun(source, target, correspondences, ctx);
  if (!prepared.ok()) return prepared.status();

  TableCascadeOptions cascade_opts;
  cascade_opts.semantic = options.semantic;
  cascade_opts.ric = options.ric;
  cascade_opts.max_steps = options.max_steps;
  cascade_opts.retries_per_tier = options.retries_per_tier;
  if (options.fault_after >= 0) {
    cascade_opts.fault_after = options.fault_after;
  } else {
    cascade_opts.fault_after = ResourceGovernor::FaultAfterFromEnv();
  }
  if (options.deadline_ms >= 0) {
    cascade_opts.deadline =
        Clock::now() + std::chrono::milliseconds(options.deadline_ms);
  }

  ResilientResult result;
  result.report.quarantined_correspondences =
      prepared->quarantined_correspondences;
  result.report.tables = std::move(prepared->quarantined_tables);
  if (ctx.provenance != nullptr) {
    for (const TableOutcome& outcome : result.report.tables) {
      ctx.provenance->RecordOutcome(outcome.target_table,
                                    TierName(outcome.tier), outcome.notes);
    }
  }

  MappingMerger merger(ctx);
  ctx.Count("pipeline.tables", static_cast<int64_t>(prepared->groups.size()));
  ctx.Count("pipeline.quarantined_correspondences",
            static_cast<int64_t>(result.report.quarantined_correspondences));
  for (const auto& [table, group] : prepared->groups) {
    TableWork work =
        RunTableCascade(source, target, table, group, cascade_opts, ctx);
    if (auto it = prepared->quarantine_notes.find(table);
        it != prepared->quarantine_notes.end()) {
      work.outcome.notes.insert(work.outcome.notes.begin(),
                                it->second.begin(), it->second.end());
    }
    if (ctx.provenance != nullptr) {
      ctx.provenance->RecordOutcome(table, TierName(work.outcome.tier),
                                    work.outcome.notes);
    }
    for (ResilientMapping& mapping : work.mappings) {
      merger.Emit(std::move(mapping));
    }
    if (work.outcome.tier != DegradationTier::kSemanticFull) {
      ctx.Count("pipeline.degraded_tables");
    }
    result.report.tables.push_back(std::move(work.outcome));
  }
  result.mappings = std::move(merger.mappings());
  ctx.Count("pipeline.mappings_emitted",
            static_cast<int64_t>(result.mappings.size()));
  return result;
}

}  // namespace semap::exec
