// Provenance capture helpers shared by the mapping generators.
//
// obs/provenance.h deliberately knows nothing about logic::Tgd (it sits
// below exec/run_context.h in the layering), so the translation from a
// TGD to its recorded Skolem-merge decisions lives here, header-only,
// where rewriting/, baseline/ and exec/ can all reach it without a link
// dependency.
#ifndef SEMAP_EXEC_EXPLAIN_CAPTURE_H_
#define SEMAP_EXEC_EXPLAIN_CAPTURE_H_

#include <string>
#include <vector>

#include "logic/tgd.h"
#include "obs/provenance.h"

namespace semap::exec {

namespace internal {

inline void CollectSkolemTerms(const logic::Term& term,
                               std::vector<obs::SkolemDecision>* out) {
  if (term.kind == logic::TermKind::kFunction) {
    bool seen = false;
    for (const obs::SkolemDecision& d : *out) {
      if (d.function == term.name) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      obs::SkolemDecision decision;
      decision.function = term.name;
      // The naming convention of rewriting/inverse_rules.h encodes the
      // merge decision: id_<Class> terms merge instances on a composite
      // key across tables; sk_<table>_<var> terms are table-local
      // (unidentified concept, no cross-table merge).
      if (term.name.rfind("id_", 0) == 0) {
        decision.kind = "key-merge";
      } else if (term.name.rfind("sk_", 0) == 0) {
        decision.kind = "table-local";
      } else {
        decision.kind = "unknown";
      }
      out->push_back(std::move(decision));
    }
  }
  for (const logic::Term& arg : term.args) CollectSkolemTerms(arg, out);
}

}  // namespace internal

/// \brief The distinct Skolem functions a TGD applies (both sides — the
/// existential witnesses live on the target side, but inverse rules can
/// surface them in the source rewriting too), each classified by the
/// merge decision its name encodes.
inline std::vector<obs::SkolemDecision> SkolemDecisionsOf(
    const logic::Tgd& tgd) {
  std::vector<obs::SkolemDecision> out;
  for (const logic::Atom& atom : tgd.source.body) {
    for (const logic::Term& term : atom.terms) {
      internal::CollectSkolemTerms(term, &out);
    }
  }
  for (const logic::Atom& atom : tgd.target.body) {
    for (const logic::Term& term : atom.terms) {
      internal::CollectSkolemTerms(term, &out);
    }
  }
  return out;
}

/// \brief Skolem-merge decisions drawn from a rule set, restricted to the
/// rules of the given tables. The emitted TGDs are function-free by
/// construction (the rewriter rejects results still carrying a Skolem
/// term), so the decisions that shaped a mapping live in the inverse
/// rules of the tables it mentions, not in the TGD text.
///
/// RuleRange is any range of rule-like objects with `head` and
/// `table_atom` logic::Atom members (rew::InverseRule — taken as a
/// template so this header does not pull rewriting/ into exec/'s
/// interface).
template <typename RuleRange, typename TableSet>
inline std::vector<obs::SkolemDecision> SkolemDecisionsFromRules(
    const RuleRange& rules, const TableSet& tables) {
  std::vector<obs::SkolemDecision> out;
  for (const auto& rule : rules) {
    if (tables.count(rule.table_atom.predicate) == 0) continue;
    for (const logic::Term& term : rule.head.terms) {
      internal::CollectSkolemTerms(term, &out);
    }
  }
  return out;
}

}  // namespace semap::exec

#endif  // SEMAP_EXEC_EXPLAIN_CAPTURE_H_
