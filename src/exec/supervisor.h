// Supervised concurrent execution: a fixed-size worker pool over
// per-table work units, with fault isolation, retry, a circuit breaker,
// and checkpoint/resume.
//
// Discovery is embarrassingly parallel across target tables — one
// s-tree inference → tree search → CSG pairing → rewriting cascade per
// table, sharing only immutable schemas — yet one hung Steiner search or
// a mid-run kill used to cost the whole batch. The supervisor treats
// each table as a WorkUnit and wraps it in the machinery large batch
// systems consider table stakes:
//
//   * isolation  — every unit attempt runs under its own child
//     RunContext: a private governor slice (parent of the cascade's tier
//     governors), a private DiagnosticSink, a private Tracer (absorbed
//     into the run trace as a `unit/<table>` span) and private Metrics
//     (merged after completion). A unit cannot corrupt or stall its
//     siblings.
//   * watchdog   — with --unit-deadline-ms, a watchdog thread Cancels
//     the governor of any unit that overstays its per-unit deadline, so
//     the cascade unwinds at its next charge even between the governor's
//     own (sampled) clock checks. Cancellation is cooperative: it
//     interrupts governed loops, not arbitrary code.
//   * retry      — a unit that lost its semantic tiers to exhaustion
//     (budget, deadline, injected fault — the transient failures) is
//     retried up to unit_attempts times under capped exponential backoff
//     with seeded deterministic jitter (util/backoff.h, --retry-seed).
//     Clean empty answers and real errors are final: retrying cannot
//     improve them.
//   * breaker    — after breaker_threshold *consecutive* units lose
//     their semantic tiers, the circuit breaker trips and every unit
//     started afterwards skips straight to the RIC baseline tier
//     (reusing the degradation cascade) instead of grinding through more
//     timeouts.
//   * checkpoint — with a journal path, every completed unit is appended
//     to a crash-safe semap.checkpoint.v1 journal (exec/checkpoint.h); a
//     killed run restarted with resume=true skips finished tables and
//     merges their cached mappings into an identical final mapping set.
//
// Determinism: units are merged in sorted table order whatever order
// they complete in, so --jobs=N produces the same mapping set and
// degradation report as --jobs=1 (and as the serial
// RunResilientPipeline) on any fault-free run.
#ifndef SEMAP_EXEC_SUPERVISOR_H_
#define SEMAP_EXEC_SUPERVISOR_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "exec/checkpoint.h"
#include "exec/resilient_pipeline.h"
#include "exec/run_context.h"
#include "util/backoff.h"
#include "util/result.h"

namespace semap::exec {

struct SupervisorOptions {
  /// Cascade configuration (semantic/ric options, run deadline, step
  /// budget, fault injection, retries per tier) — exactly the serial
  /// pipeline's knobs.
  ResilientPipelineOptions pipeline;
  /// Worker threads. 1 (the default) runs the units inline on the
  /// calling thread and reproduces the serial pipeline exactly.
  size_t jobs = 1;
  /// Per-unit wall-clock deadline, watchdog-enforced; < 0 = none.
  int64_t unit_deadline_ms = -1;
  /// Total attempts per unit (1 = no supervisor-level retry).
  size_t unit_attempts = 2;
  /// Delays between unit attempts; seed it (--retry-seed) for
  /// reproducible schedules.
  BackoffPolicy backoff;
  /// Consecutive semantic-tier losses before the breaker trips the rest
  /// of the run down to the RIC tier; 0 disables the breaker.
  size_t breaker_threshold = 3;
  /// Deterministic transient-fault simulation: apply the pipeline's
  /// fault injection only to the first N attempts of each unit, so a
  /// retry "clears" the fault. 0 = the fault (if any) is permanent.
  size_t fault_attempts = 0;
  /// Journal path; empty = no checkpointing.
  std::string checkpoint_path;
  /// Load an existing journal at checkpoint_path first and skip its
  /// finished tables.
  bool resume = false;
  /// Test hook simulating a mid-run kill: stop dispatching new units
  /// once this many fresh units have completed (0 = never). The journal
  /// then holds exactly the completed prefix.
  size_t halt_after_units = 0;
  /// Cooperative shutdown flag (not owned; e.g. set by a SIGINT/SIGTERM
  /// handler). Once it reads true, no new unit is dispatched, running
  /// units are cancelled through their governors, and the run returns
  /// with `interrupted` set — the checkpoint journal and observability
  /// streams flushed, interrupted units neither journaled nor merged.
  const std::atomic<bool>* cancel = nullptr;
  /// I/O seam for all checkpoint-store operations (store/env.h);
  /// Env::Default() when null. Crash-matrix tests inject syscall-level
  /// faults here; SEMAP_IO_FAULT arms it in semap_map.
  store::Env* io_env = nullptr;
};

/// \brief Per-unit execution summary.
struct UnitReport {
  std::string table;
  /// Attempts actually run; 0 for units served from the checkpoint.
  size_t attempts = 0;
  bool from_checkpoint = false;
  /// Backoff delays slept before each retry, in order.
  std::vector<int64_t> retry_delays_ms;
  int64_t queue_wait_ns = 0;
};

struct SupervisorResult {
  /// Merged mappings + degradation report, identical in shape to the
  /// serial pipeline's.
  ResilientResult run;
  /// One entry per cascading table, sorted by table name.
  std::vector<UnitReport> units;
  size_t retries = 0;
  bool breaker_tripped = false;
  /// True when halt_after_units stopped the run early (test hook).
  bool halted = false;
  /// True when the cancel flag interrupted the run: some tables were
  /// never dispatched (or were unwound mid-cascade and discarded). The
  /// tables that did finish are checkpointed and merged as usual.
  bool interrupted = false;
  /// Non-fatal journal trouble (torn tail line dropped on resume,
  /// append failure); empty when clean.
  std::string journal_warning;
};

/// \brief Run the per-table cascades on a supervised worker pool. Same
/// contract as RunResilientPipeline (fail-soft with a sink, exhaustion
/// surfaces as degraded tiers, never as errors) plus the supervision
/// above. The RunContext's sink/tracer/metrics observe the whole run;
/// its governor is ignored (units get their own slices).
Result<SupervisorResult> RunSupervisedPipeline(
    const sem::AnnotatedSchema& source, const sem::AnnotatedSchema& target,
    const std::vector<disc::Correspondence>& correspondences,
    const SupervisorOptions& options, const RunContext& ctx = {});

}  // namespace semap::exec

#endif  // SEMAP_EXEC_SUPERVISOR_H_
