// A tiny in-memory relational instance with labeled nulls — enough of a
// data-exchange substrate to *execute* generated schema mappings: evaluate
// a mapping's source query over source data and materialize target tuples,
// Skolemizing the existential positions with fresh nulls (the standard
// universal-solution construction of Fagin et al., the paper's [7]).
//
// This is how the integration tests check that a discovered mapping is
// not just syntactically expected but moves the right data.
#ifndef SEMAP_EXEC_INSTANCE_H_
#define SEMAP_EXEC_INSTANCE_H_

#include <map>
#include <string>
#include <vector>

#include "logic/cq.h"
#include "logic/tgd.h"
#include "util/result.h"

namespace semap::exec {

/// \brief A data value: a constant string or a labeled null (⊥k).
struct Value {
  bool is_null = false;
  std::string text;  // constant text, or printable label for nulls
  int null_id = -1;

  static Value Const(std::string text) {
    Value v;
    v.text = std::move(text);
    return v;
  }
  static Value Null(int id) {
    Value v;
    v.is_null = true;
    v.null_id = id;
    v.text = "_N" + std::to_string(id);
    return v;
  }

  bool operator==(const Value& other) const {
    if (is_null != other.is_null) return false;
    return is_null ? null_id == other.null_id : text == other.text;
  }
  bool operator<(const Value& other) const {
    if (is_null != other.is_null) return is_null < other.is_null;
    return is_null ? null_id < other.null_id : text < other.text;
  }
  std::string ToString() const { return text; }
};

using Tuple = std::vector<Value>;

/// \brief A relational instance: named relations holding tuples.
class Instance {
 public:
  /// Insert `tuple` into `table` (duplicates are kept out).
  void Insert(const std::string& table, Tuple tuple);

  /// Convenience: insert a row of constants.
  void InsertRow(const std::string& table,
                 const std::vector<std::string>& values);

  const std::vector<Tuple>& Rows(const std::string& table) const;
  bool HasTable(const std::string& table) const;
  size_t TotalTuples() const;
  const std::map<std::string, std::vector<Tuple>>& relations() const {
    return relations_;
  }

  /// Fresh labeled null (monotone counter per instance).
  Value FreshNull() { return Value::Null(next_null_++); }

  std::string ToString() const;

 private:
  std::map<std::string, std::vector<Tuple>> relations_;
  int next_null_ = 0;
};

/// \brief Evaluate a conjunctive query over `instance`: one output tuple
/// per satisfying assignment, projected onto the head terms (duplicates
/// removed). Body predicates are table names; terms may be variables or
/// constants. Function terms are not evaluable and yield an error.
Result<std::vector<Tuple>> EvaluateQuery(const logic::ConjunctiveQuery& query,
                                         const Instance& instance);

/// \brief Apply a source-to-target tgd once (one naive-chase step): for
/// every match of the source side in `source`, add the target atoms to
/// `target`, instantiating each existential variable with a fresh labeled
/// null per match. Returns the number of tuples added.
Result<size_t> ApplyTgd(const logic::Tgd& tgd, const Instance& source,
                        Instance* target);

/// \brief True if every tuple of `sub` appears in `super` *up to a
/// homomorphism on nulls* (nulls may map to any value, consistently) —
/// the standard comparison for data-exchange solutions.
bool ContainsUpToNulls(const Instance& super, const Instance& sub);

/// \brief True when (source, target) satisfies the tgd: every match of the
/// tgd's source side in `source` extends to a match of its target side in
/// `target` (the defining property of a data-exchange solution; ApplyTgd's
/// output always satisfies it).
Result<bool> SatisfiesTgd(const logic::Tgd& tgd, const Instance& source,
                          const Instance& target);

}  // namespace semap::exec

#endif  // SEMAP_EXEC_INSTANCE_H_
