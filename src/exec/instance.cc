#include "exec/instance.h"

#include <algorithm>
#include <set>

namespace semap::exec {

void Instance::Insert(const std::string& table, Tuple tuple) {
  std::vector<Tuple>& rows = relations_[table];
  if (std::find(rows.begin(), rows.end(), tuple) == rows.end()) {
    rows.push_back(std::move(tuple));
  }
}

void Instance::InsertRow(const std::string& table,
                         const std::vector<std::string>& values) {
  Tuple tuple;
  tuple.reserve(values.size());
  for (const std::string& v : values) tuple.push_back(Value::Const(v));
  Insert(table, std::move(tuple));
}

const std::vector<Tuple>& Instance::Rows(const std::string& table) const {
  static const std::vector<Tuple> kEmpty;
  auto it = relations_.find(table);
  return it == relations_.end() ? kEmpty : it->second;
}

bool Instance::HasTable(const std::string& table) const {
  return relations_.count(table) > 0;
}

size_t Instance::TotalTuples() const {
  size_t n = 0;
  for (const auto& [table, rows] : relations_) n += rows.size();
  return n;
}

std::string Instance::ToString() const {
  std::string out;
  for (const auto& [table, rows] : relations_) {
    out += table + ":\n";
    for (const Tuple& row : rows) {
      out += "  (";
      for (size_t i = 0; i < row.size(); ++i) {
        if (i > 0) out += ", ";
        out += row[i].ToString();
      }
      out += ")\n";
    }
  }
  return out;
}

namespace {

using Binding = std::map<std::string, Value>;

/// Match `term` against `value`, extending `binding`.
bool MatchTerm(const logic::Term& term, const Value& value, Binding& binding) {
  switch (term.kind) {
    case logic::TermKind::kVariable: {
      auto it = binding.find(term.name);
      if (it != binding.end()) return it->second == value;
      binding[term.name] = value;
      return true;
    }
    case logic::TermKind::kConstant:
      return !value.is_null && value.text == term.name;
    case logic::TermKind::kFunction:
      return false;  // not evaluable
  }
  return false;
}

void Search(const logic::ConjunctiveQuery& query, const Instance& instance,
            size_t atom_index, Binding& binding,
            std::set<Tuple>& results) {
  if (atom_index == query.body.size()) {
    Tuple out;
    out.reserve(query.head.size());
    for (const logic::Term& t : query.head) {
      if (t.kind == logic::TermKind::kConstant) {
        out.push_back(Value::Const(t.name));
      } else {
        auto it = binding.find(t.name);
        // Unbound head variables should not occur in safe queries; treat
        // as a null-less sentinel constant to keep evaluation total.
        out.push_back(it == binding.end() ? Value::Const("?") : it->second);
      }
    }
    results.insert(std::move(out));
    return;
  }
  const logic::Atom& atom = query.body[atom_index];
  for (const Tuple& row : instance.Rows(atom.predicate)) {
    if (row.size() != atom.terms.size()) continue;
    Binding snapshot = binding;
    bool ok = true;
    for (size_t i = 0; i < row.size(); ++i) {
      if (!MatchTerm(atom.terms[i], row[i], binding)) {
        ok = false;
        break;
      }
    }
    if (ok) Search(query, instance, atom_index + 1, binding, results);
    binding = std::move(snapshot);
  }
}

}  // namespace

Result<std::vector<Tuple>> EvaluateQuery(const logic::ConjunctiveQuery& query,
                                         const Instance& instance) {
  for (const logic::Atom& atom : query.body) {
    for (const logic::Term& t : atom.terms) {
      if (t.kind == logic::TermKind::kFunction) {
        return Status::Unsupported("function terms are not evaluable: " +
                                   atom.ToString());
      }
    }
  }
  std::set<Tuple> results;
  Binding binding;
  Search(query, instance, 0, binding, results);
  return std::vector<Tuple>(results.begin(), results.end());
}

Result<size_t> ApplyTgd(const logic::Tgd& tgd, const Instance& source,
                        Instance* target) {
  // Evaluate the source side with *all* source variables exported, so the
  // target side can reference any of them (frontier variables included).
  logic::ConjunctiveQuery body_query = tgd.source;
  body_query.head.clear();
  for (const std::string& v : tgd.source.Variables()) {
    body_query.head.push_back(logic::Term::Var(v));
  }
  SEMAP_ASSIGN_OR_RETURN(std::vector<Tuple> matches,
                         EvaluateQuery(body_query, source));

  size_t before = target->TotalTuples();
  std::vector<std::string> exported;
  for (const logic::Term& t : body_query.head) exported.push_back(t.name);

  for (const Tuple& match : matches) {
    std::map<std::string, Value> env;
    for (size_t i = 0; i < exported.size(); ++i) {
      env[exported[i]] = match[i];
    }
    // Fresh nulls for the target-side existential variables, one per
    // match (naive chase).
    for (const std::string& v : tgd.target.Variables()) {
      if (env.count(v) == 0) env[v] = target->FreshNull();
    }
    for (const logic::Atom& atom : tgd.target.body) {
      Tuple row;
      row.reserve(atom.terms.size());
      for (const logic::Term& t : atom.terms) {
        if (t.kind == logic::TermKind::kConstant) {
          row.push_back(Value::Const(t.name));
        } else if (t.kind == logic::TermKind::kVariable) {
          row.push_back(env[t.name]);
        } else {
          return Status::Unsupported("function term in tgd target: " +
                                     atom.ToString());
        }
      }
      target->Insert(atom.predicate, std::move(row));
    }
  }
  return target->TotalTuples() - before;
}

namespace {

bool MatchTuples(const Tuple& pattern, const Tuple& target,
                 std::map<int, Value>& null_map) {
  if (pattern.size() != target.size()) return false;
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (pattern[i].is_null) {
      auto it = null_map.find(pattern[i].null_id);
      if (it != null_map.end()) {
        if (!(it->second == target[i])) return false;
      } else {
        null_map[pattern[i].null_id] = target[i];
      }
    } else if (!(pattern[i] == target[i])) {
      return false;
    }
  }
  return true;
}

struct SubEntry {
  const std::string* table;
  const Tuple* tuple;
};

bool SearchNulls(const std::vector<SubEntry>& entries, size_t index,
                 const Instance& super, std::map<int, Value>& null_map) {
  if (index == entries.size()) return true;
  for (const Tuple& candidate : super.Rows(*entries[index].table)) {
    std::map<int, Value> snapshot = null_map;
    if (MatchTuples(*entries[index].tuple, candidate, null_map) &&
        SearchNulls(entries, index + 1, super, null_map)) {
      return true;
    }
    null_map = std::move(snapshot);
  }
  return false;
}

}  // namespace

Result<bool> SatisfiesTgd(const logic::Tgd& tgd, const Instance& source,
                          const Instance& target) {
  // Evaluate the source side exporting the frontier; each frontier value
  // combination must extend to a target-side match.
  SEMAP_ASSIGN_OR_RETURN(std::vector<Tuple> matches,
                         EvaluateQuery(tgd.source, source));
  for (const Tuple& match : matches) {
    // Substitute the frontier values as constants into the target query.
    logic::ConjunctiveQuery probe = tgd.target;
    logic::Substitution sub;
    for (size_t i = 0; i < tgd.target.head.size() && i < match.size(); ++i) {
      const logic::Term& head = tgd.target.head[i];
      if (!head.IsVar()) continue;
      // Nulls in the frontier cannot be written as constants; treat the
      // whole match as satisfied only via a fresh variable (the null can
      // match anything a variable can).
      if (match[i].is_null) continue;
      sub[head.name] = logic::Term::Const(match[i].text);
    }
    probe = ApplySubstitution(probe, sub);
    probe.head.clear();
    SEMAP_ASSIGN_OR_RETURN(std::vector<Tuple> witnesses,
                           EvaluateQuery(probe, target));
    if (witnesses.empty()) return false;
  }
  return true;
}

bool ContainsUpToNulls(const Instance& super, const Instance& sub) {
  // Collect every tuple of `sub` (with its table); nulls must map
  // consistently across all of them.
  std::vector<SubEntry> entries;
  for (const auto& [table, rows] : sub.relations()) {
    for (const Tuple& t : rows) {
      entries.push_back({&table, &t});
    }
  }
  std::map<int, Value> null_map;
  return SearchNulls(entries, 0, super, null_map);
}

}  // namespace semap::exec
