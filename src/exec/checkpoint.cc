#include "exec/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/trace.h"  // obs::JsonEscape
#include "util/json.h"

namespace semap::exec {

namespace {

// --- fingerprint ---------------------------------------------------------

uint64_t Fnv1a(uint64_t hash, std::string_view text) {
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  hash ^= 0x1f;  // field separator, so {"ab","c"} != {"a","bc"}
  hash *= 0x100000001b3ULL;
  return hash;
}

uint64_t HashSchema(uint64_t hash, const rel::RelationalSchema& schema) {
  hash = Fnv1a(hash, schema.name());
  for (const rel::Table& table : schema.tables()) {
    hash = Fnv1a(hash, table.name());
    for (const std::string& column : table.columns()) {
      hash = Fnv1a(hash, column);
    }
    for (const std::string& key : table.primary_key()) {
      hash = Fnv1a(hash, key);
    }
  }
  return hash;
}

std::string HexFingerprint(uint64_t fingerprint) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buf;
}

// --- serialization -------------------------------------------------------

void EmitTerm(const logic::Term& term, std::string* out) {
  switch (term.kind) {
    case logic::TermKind::kVariable:
      *out += "{\"k\":\"v\",\"n\":\"" + obs::JsonEscape(term.name) + "\"}";
      return;
    case logic::TermKind::kConstant:
      *out += "{\"k\":\"c\",\"n\":\"" + obs::JsonEscape(term.name) + "\"}";
      return;
    case logic::TermKind::kFunction:
      *out += "{\"k\":\"f\",\"n\":\"" + obs::JsonEscape(term.name) +
              "\",\"a\":[";
      for (size_t i = 0; i < term.args.size(); ++i) {
        if (i > 0) *out += ",";
        EmitTerm(term.args[i], out);
      }
      *out += "]}";
      return;
  }
}

void EmitTerms(const std::vector<logic::Term>& terms, std::string* out) {
  *out += "[";
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) *out += ",";
    EmitTerm(terms[i], out);
  }
  *out += "]";
}

void EmitCq(const logic::ConjunctiveQuery& cq, std::string* out) {
  *out += "{\"pred\":\"" + obs::JsonEscape(cq.head_predicate) + "\",\"head\":";
  EmitTerms(cq.head, out);
  *out += ",\"body\":[";
  for (size_t i = 0; i < cq.body.size(); ++i) {
    if (i > 0) *out += ",";
    *out += "{\"p\":\"" + obs::JsonEscape(cq.body[i].predicate) + "\",\"t\":";
    EmitTerms(cq.body[i].terms, out);
    *out += "}";
  }
  *out += "]}";
}

Result<logic::Term> ParseTerm(const json::Value& value);

Result<std::vector<logic::Term>> ParseTerms(const json::Value& value) {
  if (!value.is_array()) {
    return Status::ParseError("checkpoint: term list is not an array");
  }
  std::vector<logic::Term> terms;
  for (const json::Value& element : value.AsArray()) {
    auto term = ParseTerm(element);
    if (!term.ok()) return term.status();
    terms.push_back(std::move(*term));
  }
  return terms;
}

Result<logic::Term> ParseTerm(const json::Value& value) {
  if (!value.is_object()) {
    return Status::ParseError("checkpoint: term is not an object");
  }
  const std::string kind = value.GetString("k");
  const std::string name = value.GetString("n");
  if (kind == "v") return logic::Term::Var(name);
  if (kind == "c") return logic::Term::Const(name);
  if (kind == "f") {
    const json::Value* args = value.Find("a");
    std::vector<logic::Term> parsed;
    if (args != nullptr) {
      auto terms = ParseTerms(*args);
      if (!terms.ok()) return terms.status();
      parsed = std::move(*terms);
    }
    return logic::Term::Func(name, std::move(parsed));
  }
  return Status::ParseError("checkpoint: unknown term kind '" + kind + "'");
}

Result<logic::ConjunctiveQuery> ParseCq(const json::Value& value) {
  if (!value.is_object()) {
    return Status::ParseError("checkpoint: cq is not an object");
  }
  logic::ConjunctiveQuery cq;
  cq.head_predicate = value.GetString("pred", "ans");
  const json::Value* head = value.Find("head");
  if (head != nullptr) {
    auto terms = ParseTerms(*head);
    if (!terms.ok()) return terms.status();
    cq.head = std::move(*terms);
  }
  const json::Value* body = value.Find("body");
  if (body != nullptr) {
    if (!body->is_array()) {
      return Status::ParseError("checkpoint: cq body is not an array");
    }
    for (const json::Value& atom_value : body->AsArray()) {
      logic::Atom atom;
      atom.predicate = atom_value.GetString("p");
      const json::Value* terms_value = atom_value.Find("t");
      if (terms_value != nullptr) {
        auto terms = ParseTerms(*terms_value);
        if (!terms.ok()) return terms.status();
        atom.terms = std::move(*terms);
      }
      cq.body.push_back(std::move(atom));
    }
  }
  return cq;
}

Result<DegradationTier> TierFromName(const std::string& name) {
  for (DegradationTier tier :
       {DegradationTier::kSemanticFull, DegradationTier::kSemanticRestricted,
        DegradationTier::kRicBaseline, DegradationTier::kFailed,
        DegradationTier::kQuarantined}) {
    if (name == TierName(tier)) return tier;
  }
  return Status::ParseError("checkpoint: unknown tier '" + name + "'");
}

}  // namespace

uint64_t ScenarioFingerprint(
    const sem::AnnotatedSchema& source, const sem::AnnotatedSchema& target,
    const std::vector<disc::Correspondence>& correspondences) {
  uint64_t hash = 0xcbf29ce484222325ULL;  // FNV offset basis
  hash = HashSchema(hash, source.schema());
  hash = HashSchema(hash, target.schema());
  for (const disc::Correspondence& corr : correspondences) {
    hash = Fnv1a(hash, corr.ToString());
  }
  return hash;
}

std::string SerializeCheckpointUnit(const CheckpointedUnit& unit) {
  std::string out = "{\"record\":\"unit\",\"table\":\"" +
                    obs::JsonEscape(unit.outcome.target_table) + "\"";
  out += ",\"tier\":\"";
  out += TierName(unit.outcome.tier);
  out += "\"";
  out += ",\"notes\":[";
  for (size_t i = 0; i < unit.outcome.notes.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + obs::JsonEscape(unit.outcome.notes[i]) + "\"";
  }
  out += "],\"mappings\":[";
  for (size_t i = 0; i < unit.mappings.size(); ++i) {
    const ResilientMapping& m = unit.mappings[i];
    if (i > 0) out += ",";
    out += "{\"tier\":\"";
    out += TierName(m.tier);
    out += "\",\"table\":\"" + obs::JsonEscape(m.target_table) + "\"";
    out += ",\"src_alg\":\"" + obs::JsonEscape(m.source_algebra) + "\"";
    out += ",\"tgt_alg\":\"" + obs::JsonEscape(m.target_algebra) + "\"";
    out += ",\"covered\":[";
    for (size_t j = 0; j < m.covered.size(); ++j) {
      const disc::Correspondence& c = m.covered[j];
      if (j > 0) out += ",";
      out += "{\"st\":\"" + obs::JsonEscape(c.source.table) + "\",\"sc\":\"" +
             obs::JsonEscape(c.source.column) + "\",\"tt\":\"" +
             obs::JsonEscape(c.target.table) + "\",\"tc\":\"" +
             obs::JsonEscape(c.target.column) + "\"}";
    }
    out += "],\"tgd\":{\"source\":";
    EmitCq(m.tgd.source, &out);
    out += ",\"target\":";
    EmitCq(m.tgd.target, &out);
    out += "}}";
  }
  out += "]}";
  return out;
}

Result<CheckpointedUnit> ParseCheckpointUnit(const std::string& line) {
  auto doc = json::Parse(line);
  if (!doc.ok()) return doc.status();
  if (doc->GetString("record") != "unit") {
    return Status::ParseError("checkpoint: line is not a unit record");
  }
  CheckpointedUnit unit;
  unit.outcome.target_table = doc->GetString("table");
  if (unit.outcome.target_table.empty()) {
    return Status::ParseError("checkpoint: unit record lacks a table");
  }
  auto tier = TierFromName(doc->GetString("tier"));
  if (!tier.ok()) return tier.status();
  unit.outcome.tier = *tier;
  if (const json::Value* notes = doc->Find("notes"); notes != nullptr) {
    for (const json::Value& note : notes->AsArray()) {
      if (note.is_string()) unit.outcome.notes.push_back(note.AsString());
    }
  }
  if (const json::Value* mappings = doc->Find("mappings");
      mappings != nullptr) {
    for (const json::Value& entry : mappings->AsArray()) {
      ResilientMapping mapping;
      auto mapping_tier = TierFromName(entry.GetString("tier"));
      if (!mapping_tier.ok()) return mapping_tier.status();
      mapping.tier = *mapping_tier;
      mapping.target_table = entry.GetString("table");
      mapping.source_algebra = entry.GetString("src_alg");
      mapping.target_algebra = entry.GetString("tgt_alg");
      if (const json::Value* covered = entry.Find("covered");
          covered != nullptr) {
        for (const json::Value& c : covered->AsArray()) {
          disc::Correspondence corr;
          corr.source.table = c.GetString("st");
          corr.source.column = c.GetString("sc");
          corr.target.table = c.GetString("tt");
          corr.target.column = c.GetString("tc");
          mapping.covered.push_back(std::move(corr));
        }
      }
      const json::Value* tgd = entry.Find("tgd");
      if (tgd == nullptr) {
        return Status::ParseError("checkpoint: mapping lacks a tgd");
      }
      const json::Value* source_cq = tgd->Find("source");
      const json::Value* target_cq = tgd->Find("target");
      if (source_cq == nullptr || target_cq == nullptr) {
        return Status::ParseError("checkpoint: tgd lacks source/target");
      }
      auto source = ParseCq(*source_cq);
      if (!source.ok()) return source.status();
      auto target = ParseCq(*target_cq);
      if (!target.ok()) return target.status();
      mapping.tgd.source = std::move(*source);
      mapping.tgd.target = std::move(*target);
      unit.mappings.push_back(std::move(mapping));
    }
  }
  unit.outcome.mappings = unit.mappings.size();
  return unit;
}

Status CheckpointJournal::Flush() const {
  const std::string tmp = path_ + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("checkpoint: cannot open " + tmp + ": " +
                            std::strerror(errno));
  }
  std::string content;
  for (const std::string& line : lines_) {
    content += line;
    content += '\n';
  }
  size_t written = 0;
  while (written < content.size()) {
    ssize_t n = ::write(fd, content.data() + written,
                        content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = Status::Internal("checkpoint: write to " + tmp +
                                       " failed: " + std::strerror(errno));
      ::close(fd);
      return status;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status status = Status::Internal("checkpoint: fsync of " + tmp +
                                     " failed: " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    return Status::Internal("checkpoint: rename to " + path_ + " failed: " +
                            std::strerror(errno));
  }
  return Status::OK();
}

Result<CheckpointJournal> CheckpointJournal::Create(std::string path,
                                                    uint64_t fingerprint) {
  std::vector<std::string> lines;
  lines.push_back(std::string("{\"schema\":\"") + kCheckpointSchema +
                  "\",\"fingerprint\":\"" + HexFingerprint(fingerprint) +
                  "\"}");
  CheckpointJournal journal(std::move(path), std::move(lines));
  SEMAP_RETURN_NOT_OK(journal.Flush());
  return journal;
}

Result<CheckpointJournal> CheckpointJournal::Resume(
    std::string path, uint64_t fingerprint,
    std::vector<CheckpointedUnit>* completed, std::string* warning) {
  std::ifstream in(path);
  if (!in) return Create(std::move(path), fingerprint);

  std::vector<std::string> raw;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) raw.push_back(line);
  }
  if (raw.empty()) return Create(std::move(path), fingerprint);

  auto header = json::Parse(raw[0]);
  if (!header.ok() || header->GetString("schema") != kCheckpointSchema) {
    return Status::InvalidArgument(
        "checkpoint: " + path + " is not a " + kCheckpointSchema +
        " journal");
  }
  if (header->GetString("fingerprint") != HexFingerprint(fingerprint)) {
    return Status::InvalidArgument(
        "checkpoint: " + path +
        " was written for different inputs (fingerprint mismatch); delete "
        "it or rerun without --resume");
  }
  std::vector<std::string> lines;
  lines.push_back(raw[0]);
  for (size_t i = 1; i < raw.size(); ++i) {
    auto unit = ParseCheckpointUnit(raw[i]);
    if (!unit.ok()) {
      // A torn or corrupt line invalidates itself and everything after it
      // (the journal is strictly append-ordered); the units before it
      // stay usable.
      if (warning != nullptr) {
        *warning = "checkpoint: dropped " + std::to_string(raw.size() - i) +
                   " unreadable line(s) from " + path + " (" +
                   unit.status().message() + ")";
      }
      break;
    }
    completed->push_back(std::move(*unit));
    lines.push_back(raw[i]);
  }
  return CheckpointJournal(std::move(path), std::move(lines));
}

Status CheckpointJournal::Append(const CheckpointedUnit& unit) {
  lines_.push_back(SerializeCheckpointUnit(unit));
  return Flush();
}

}  // namespace semap::exec
