#include "exec/checkpoint.h"

#include <cstdio>
#include <utility>

#include "obs/trace.h"  // obs::JsonEscape
#include "util/crc32.h"
#include "util/json.h"

namespace semap::exec {

namespace {

// --- fingerprint ---------------------------------------------------------

uint64_t Fnv1a(uint64_t hash, std::string_view text) {
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  hash ^= 0x1f;  // field separator, so {"ab","c"} != {"a","bc"}
  hash *= 0x100000001b3ULL;
  return hash;
}

uint64_t HashSchema(uint64_t hash, const rel::RelationalSchema& schema) {
  hash = Fnv1a(hash, schema.name());
  for (const rel::Table& table : schema.tables()) {
    hash = Fnv1a(hash, table.name());
    for (const std::string& column : table.columns()) {
      hash = Fnv1a(hash, column);
    }
    for (const std::string& key : table.primary_key()) {
      hash = Fnv1a(hash, key);
    }
  }
  return hash;
}

std::string HexFingerprint(uint64_t fingerprint) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buf;
}

// --- serialization -------------------------------------------------------

void EmitTerm(const logic::Term& term, std::string* out) {
  switch (term.kind) {
    case logic::TermKind::kVariable:
      *out += "{\"k\":\"v\",\"n\":\"" + obs::JsonEscape(term.name) + "\"}";
      return;
    case logic::TermKind::kConstant:
      *out += "{\"k\":\"c\",\"n\":\"" + obs::JsonEscape(term.name) + "\"}";
      return;
    case logic::TermKind::kFunction:
      *out += "{\"k\":\"f\",\"n\":\"" + obs::JsonEscape(term.name) +
              "\",\"a\":[";
      for (size_t i = 0; i < term.args.size(); ++i) {
        if (i > 0) *out += ",";
        EmitTerm(term.args[i], out);
      }
      *out += "]}";
      return;
  }
}

void EmitTerms(const std::vector<logic::Term>& terms, std::string* out) {
  *out += "[";
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) *out += ",";
    EmitTerm(terms[i], out);
  }
  *out += "]";
}

void EmitCq(const logic::ConjunctiveQuery& cq, std::string* out) {
  *out += "{\"pred\":\"" + obs::JsonEscape(cq.head_predicate) + "\",\"head\":";
  EmitTerms(cq.head, out);
  *out += ",\"body\":[";
  for (size_t i = 0; i < cq.body.size(); ++i) {
    if (i > 0) *out += ",";
    *out += "{\"p\":\"" + obs::JsonEscape(cq.body[i].predicate) + "\",\"t\":";
    EmitTerms(cq.body[i].terms, out);
    *out += "}";
  }
  *out += "]}";
}

Result<logic::Term> ParseTerm(const json::Value& value);

Result<std::vector<logic::Term>> ParseTerms(const json::Value& value) {
  if (!value.is_array()) {
    return Status::ParseError("checkpoint: term list is not an array");
  }
  std::vector<logic::Term> terms;
  for (const json::Value& element : value.AsArray()) {
    auto term = ParseTerm(element);
    if (!term.ok()) return term.status();
    terms.push_back(std::move(*term));
  }
  return terms;
}

Result<logic::Term> ParseTerm(const json::Value& value) {
  if (!value.is_object()) {
    return Status::ParseError("checkpoint: term is not an object");
  }
  const std::string kind = value.GetString("k");
  const std::string name = value.GetString("n");
  if (kind == "v") return logic::Term::Var(name);
  if (kind == "c") return logic::Term::Const(name);
  if (kind == "f") {
    const json::Value* args = value.Find("a");
    std::vector<logic::Term> parsed;
    if (args != nullptr) {
      auto terms = ParseTerms(*args);
      if (!terms.ok()) return terms.status();
      parsed = std::move(*terms);
    }
    return logic::Term::Func(name, std::move(parsed));
  }
  return Status::ParseError("checkpoint: unknown term kind '" + kind + "'");
}

Result<logic::ConjunctiveQuery> ParseCq(const json::Value& value) {
  if (!value.is_object()) {
    return Status::ParseError("checkpoint: cq is not an object");
  }
  logic::ConjunctiveQuery cq;
  cq.head_predicate = value.GetString("pred", "ans");
  const json::Value* head = value.Find("head");
  if (head != nullptr) {
    auto terms = ParseTerms(*head);
    if (!terms.ok()) return terms.status();
    cq.head = std::move(*terms);
  }
  const json::Value* body = value.Find("body");
  if (body != nullptr) {
    if (!body->is_array()) {
      return Status::ParseError("checkpoint: cq body is not an array");
    }
    for (const json::Value& atom_value : body->AsArray()) {
      logic::Atom atom;
      atom.predicate = atom_value.GetString("p");
      const json::Value* terms_value = atom_value.Find("t");
      if (terms_value != nullptr) {
        auto terms = ParseTerms(*terms_value);
        if (!terms.ok()) return terms.status();
        atom.terms = std::move(*terms);
      }
      cq.body.push_back(std::move(atom));
    }
  }
  return cq;
}

Result<DegradationTier> TierFromName(const std::string& name) {
  for (DegradationTier tier :
       {DegradationTier::kSemanticFull, DegradationTier::kSemanticRestricted,
        DegradationTier::kRicBaseline, DegradationTier::kFailed,
        DegradationTier::kQuarantined}) {
    if (name == TierName(tier)) return tier;
  }
  return Status::ParseError("checkpoint: unknown tier '" + name + "'");
}

}  // namespace

uint64_t ScenarioFingerprint(
    const sem::AnnotatedSchema& source, const sem::AnnotatedSchema& target,
    const std::vector<disc::Correspondence>& correspondences) {
  uint64_t hash = 0xcbf29ce484222325ULL;  // FNV offset basis
  hash = HashSchema(hash, source.schema());
  hash = HashSchema(hash, target.schema());
  for (const disc::Correspondence& corr : correspondences) {
    hash = Fnv1a(hash, corr.ToString());
  }
  return hash;
}

std::string SerializeCheckpointUnit(const CheckpointedUnit& unit) {
  std::string out = "{\"record\":\"unit\",\"table\":\"" +
                    obs::JsonEscape(unit.outcome.target_table) + "\"";
  out += ",\"tier\":\"";
  out += TierName(unit.outcome.tier);
  out += "\"";
  out += ",\"notes\":[";
  for (size_t i = 0; i < unit.outcome.notes.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + obs::JsonEscape(unit.outcome.notes[i]) + "\"";
  }
  out += "],\"mappings\":[";
  for (size_t i = 0; i < unit.mappings.size(); ++i) {
    const ResilientMapping& m = unit.mappings[i];
    if (i > 0) out += ",";
    out += "{\"tier\":\"";
    out += TierName(m.tier);
    out += "\",\"table\":\"" + obs::JsonEscape(m.target_table) + "\"";
    out += ",\"src_alg\":\"" + obs::JsonEscape(m.source_algebra) + "\"";
    out += ",\"tgt_alg\":\"" + obs::JsonEscape(m.target_algebra) + "\"";
    out += ",\"covered\":[";
    for (size_t j = 0; j < m.covered.size(); ++j) {
      const disc::Correspondence& c = m.covered[j];
      if (j > 0) out += ",";
      out += "{\"st\":\"" + obs::JsonEscape(c.source.table) + "\",\"sc\":\"" +
             obs::JsonEscape(c.source.column) + "\",\"tt\":\"" +
             obs::JsonEscape(c.target.table) + "\",\"tc\":\"" +
             obs::JsonEscape(c.target.column) + "\"}";
    }
    out += "],\"tgd\":{\"source\":";
    EmitCq(m.tgd.source, &out);
    out += ",\"target\":";
    EmitCq(m.tgd.target, &out);
    out += "}}";
  }
  out += "]";
  if (unit.has_provenance) {
    out += ",\"prov\":" + obs::TableProvenanceToJson(unit.provenance);
  }
  out += "}";
  // Trailing integrity member: CRC32 of the line as it stands (i.e. of
  // the line with the crc member removed). Catches the
  // truncated-but-still-valid-JSON tails a plain parse cannot.
  const std::string crc = Crc32Hex(Crc32(out));
  out.back() = ',';
  out += "\"crc\":\"" + crc + "\"}";
  return out;
}

namespace {

// `,"crc":"xxxxxxxx"}` — the exact tail SerializeCheckpointUnit appends.
constexpr size_t kCrcSuffixLen = 18;

/// Validate and strip a trailing crc member, if one is present. Returns
/// the line to parse, or an error when the checksum does not match.
Result<std::string> CheckUnitLineCrc(const std::string& line) {
  if (line.size() < kCrcSuffixLen ||
      line.compare(line.size() - kCrcSuffixLen, 8, ",\"crc\":\"") != 0 ||
      line.compare(line.size() - 2, 2, "\"}") != 0) {
    return line;  // legacy line without a crc member: accepted as-is
  }
  const std::string stated = line.substr(line.size() - 10, 8);
  std::string body = line.substr(0, line.size() - kCrcSuffixLen);
  body += "}";
  if (Crc32Hex(Crc32(body)) != stated) {
    return Status::ParseError(
        "checkpoint: unit record fails its crc32 check (torn or corrupt "
        "line)");
  }
  return body;
}

}  // namespace

Result<CheckpointedUnit> ParseCheckpointUnit(const std::string& line) {
  auto checked = CheckUnitLineCrc(line);
  if (!checked.ok()) return checked.status();
  auto doc = json::Parse(*checked);
  if (!doc.ok()) return doc.status();
  if (doc->GetString("record") != "unit") {
    return Status::ParseError("checkpoint: line is not a unit record");
  }
  CheckpointedUnit unit;
  unit.outcome.target_table = doc->GetString("table");
  if (unit.outcome.target_table.empty()) {
    return Status::ParseError("checkpoint: unit record lacks a table");
  }
  auto tier = TierFromName(doc->GetString("tier"));
  if (!tier.ok()) return tier.status();
  unit.outcome.tier = *tier;
  if (const json::Value* notes = doc->Find("notes"); notes != nullptr) {
    for (const json::Value& note : notes->AsArray()) {
      if (note.is_string()) unit.outcome.notes.push_back(note.AsString());
    }
  }
  if (const json::Value* mappings = doc->Find("mappings");
      mappings != nullptr) {
    for (const json::Value& entry : mappings->AsArray()) {
      ResilientMapping mapping;
      auto mapping_tier = TierFromName(entry.GetString("tier"));
      if (!mapping_tier.ok()) return mapping_tier.status();
      mapping.tier = *mapping_tier;
      mapping.target_table = entry.GetString("table");
      mapping.source_algebra = entry.GetString("src_alg");
      mapping.target_algebra = entry.GetString("tgt_alg");
      if (const json::Value* covered = entry.Find("covered");
          covered != nullptr) {
        for (const json::Value& c : covered->AsArray()) {
          disc::Correspondence corr;
          corr.source.table = c.GetString("st");
          corr.source.column = c.GetString("sc");
          corr.target.table = c.GetString("tt");
          corr.target.column = c.GetString("tc");
          mapping.covered.push_back(std::move(corr));
        }
      }
      const json::Value* tgd = entry.Find("tgd");
      if (tgd == nullptr) {
        return Status::ParseError("checkpoint: mapping lacks a tgd");
      }
      const json::Value* source_cq = tgd->Find("source");
      const json::Value* target_cq = tgd->Find("target");
      if (source_cq == nullptr || target_cq == nullptr) {
        return Status::ParseError("checkpoint: tgd lacks source/target");
      }
      auto source = ParseCq(*source_cq);
      if (!source.ok()) return source.status();
      auto target = ParseCq(*target_cq);
      if (!target.ok()) return target.status();
      mapping.tgd.source = std::move(*source);
      mapping.tgd.target = std::move(*target);
      unit.mappings.push_back(std::move(mapping));
    }
  }
  unit.outcome.mappings = unit.mappings.size();
  if (const json::Value* prov = doc->Find("prov"); prov != nullptr) {
    auto provenance = obs::TableProvenanceFromJson(*prov);
    if (!provenance.ok()) return provenance.status();
    unit.provenance = std::move(*provenance);
    unit.has_provenance = true;
  }
  return unit;
}

namespace {

void AddWarning(std::string* warning, const std::string& note) {
  if (warning == nullptr) return;
  if (!warning->empty()) *warning += "; ";
  *warning += note;
}

/// Read a legacy semap.checkpoint.v1 JSON-lines file (the pre-journal
/// format: header line, then one unit per line, rewritten whole per
/// append). Torn-tail semantics match the old reader: the first
/// unreadable line invalidates itself and everything after it.
Status ReadLegacyCheckpoint(const std::string& path,
                            const std::string& content, uint64_t fingerprint,
                            std::vector<CheckpointedUnit>* completed,
                            std::string* warning) {
  std::vector<std::string> raw;
  size_t pos = 0;
  while (pos < content.size()) {
    size_t end = content.find('\n', pos);
    if (end == std::string::npos) end = content.size();
    if (end > pos) raw.push_back(content.substr(pos, end - pos));
    pos = end + 1;
  }
  if (raw.empty()) return Status::OK();

  auto header = json::Parse(raw[0]);
  if (!header.ok() || header->GetString("schema") != kCheckpointSchema) {
    return Status::InvalidArgument("checkpoint: " + path + " is not a " +
                                   kCheckpointSchema + " journal");
  }
  if (header->GetString("fingerprint") != HexFingerprint(fingerprint)) {
    return Status::InvalidArgument(
        "checkpoint: " + path +
        " was written for different inputs (fingerprint mismatch); delete "
        "it or rerun without --resume");
  }
  for (size_t i = 1; i < raw.size(); ++i) {
    auto unit = ParseCheckpointUnit(raw[i]);
    if (!unit.ok()) {
      AddWarning(warning, "checkpoint: dropped " +
                              std::to_string(raw.size() - i) +
                              " unreadable line(s) from " + path + " (" +
                              unit.status().message() + ")");
      break;
    }
    completed->push_back(std::move(*unit));
  }
  return Status::OK();
}

}  // namespace

Result<CheckpointJournal> CheckpointJournal::Create(std::string path,
                                                    uint64_t fingerprint,
                                                    store::Env* env) {
  SEMAP_ASSIGN_OR_RETURN(
      store::MappingStore store,
      store::MappingStore::Create(std::move(path), fingerprint, env));
  SEMAP_RETURN_NOT_OK(store.PutMeta("format", kCheckpointSchema));
  return CheckpointJournal(std::move(store));
}

Result<CheckpointJournal> CheckpointJournal::Resume(
    std::string path, uint64_t fingerprint,
    std::vector<CheckpointedUnit>* completed, std::string* warning,
    store::Env* env) {
  store::Env* io = env != nullptr ? env : store::Env::Default();
  if (io->Exists(path)) {
    SEMAP_ASSIGN_OR_RETURN(const std::string content, io->ReadFile(path));
    const bool journaled =
        content.compare(0, sizeof(store::kJournalSchema) - 1,
                        store::kJournalSchema) == 0;
    if (!journaled) {
      // Legacy JSON-lines checkpoint: read it the old way, then migrate
      // to the journaled store in place (the store's first rotation
      // atomically replaces the legacy file). A crash mid-migration
      // loses at most cached work, never correctness: the new store is
      // well-formed at every step and unsaved tables just recompute.
      SEMAP_RETURN_NOT_OK(ReadLegacyCheckpoint(path, content, fingerprint,
                                               completed, warning));
      SEMAP_ASSIGN_OR_RETURN(
          store::MappingStore store,
          store::MappingStore::Create(path, fingerprint, env));
      SEMAP_RETURN_NOT_OK(store.PutMeta("format", kCheckpointSchema));
      for (const CheckpointedUnit& unit : *completed) {
        SEMAP_RETURN_NOT_OK(store.PutUnit(unit.outcome.target_table,
                                          SerializeCheckpointUnit(unit)));
      }
      AddWarning(warning, "checkpoint: migrated legacy " +
                              std::string(kCheckpointSchema) +
                              " journal at " + path + " to " +
                              store::kJournalSchema);
      return CheckpointJournal(std::move(store));
    }
  }
  auto opened = store::MappingStore::Open(path, fingerprint, env);
  if (!opened.ok()) {
    if (opened.status().code() == StatusCode::kInvalidArgument) {
      return Status::InvalidArgument(
          "checkpoint: " + path +
          " was written for different inputs (fingerprint mismatch); delete "
          "it or rerun without --resume");
    }
    return opened.status();
  }
  store::MappingStore store = std::move(opened).ValueOrDie();
  if (!store.warning().empty()) {
    AddWarning(warning, "checkpoint: " + store.warning());
  }
  for (const auto& [table, line] : store.units()) {
    auto unit = ParseCheckpointUnit(line);
    if (!unit.ok()) {
      // Frames are CRC-checked, so an unparsable unit is a writer bug,
      // not crash damage; drop just that table and recompute it.
      AddWarning(warning, "checkpoint: dropped unreadable unit for table '" +
                              table + "' (" + unit.status().message() + ")");
      continue;
    }
    completed->push_back(std::move(*unit));
  }
  return CheckpointJournal(std::move(store));
}

Status CheckpointJournal::Append(const CheckpointedUnit& unit) {
  return store_.PutUnit(unit.outcome.target_table,
                        SerializeCheckpointUnit(unit));
}

}  // namespace semap::exec
