// RunContext: the one bundle of per-run cross-cutting services threaded
// through the whole pipeline — resource governance (PR 1), structured
// diagnostics (PR 2), and tracing/metrics (PR 3) — replacing the earlier
// pattern of adding one raw pointer per concern to every options struct.
//
// All members are optional and non-owning; a default-constructed
// RunContext means "no governance, no diagnostics, no observability" and
// every helper below degrades to a branch on null — the pipeline's
// behavior and allocations are then identical to an uninstrumented build.
//
// This header is deliberately header-only and depends only on util/ and
// obs/, so the lower pipeline layers (discovery, rewriting, baseline) can
// accept a RunContext without linking against the exec library.
#ifndef SEMAP_EXEC_RUN_CONTEXT_H_
#define SEMAP_EXEC_RUN_CONTEXT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/trace.h"
#include "util/budget.h"
#include "util/diag.h"

namespace semap::exec {

struct RunContext {
  /// Cooperative resource budget; null = ungoverned.
  ResourceGovernor* governor = nullptr;
  /// Fail-soft diagnostics; null = strict (first problem is an error).
  DiagnosticSink* sink = nullptr;
  /// Span tracing; null = disabled (zero cost).
  obs::Tracer* tracer = nullptr;
  /// Counters and histograms; null = disabled (zero cost).
  obs::Metrics* metrics = nullptr;
  /// Mapping provenance (semap.explain.v1); null = disabled (zero cost).
  /// Call sites guard on null before rendering any record text.
  obs::ProvenanceRecorder* provenance = nullptr;
  /// Wide-event stream (semap.events.v1); null = disabled (zero cost).
  obs::EventEmitter* events = nullptr;
  /// Request correlation id (semap.rpc.v1 trace_id) when this run serves
  /// one request; empty = standalone run. The supervisor stamps it onto
  /// every unit event it emits, so a served request's pipeline activity
  /// is attributable in the shared event stream. An empty string costs
  /// nothing (SSO, never rendered).
  std::string trace_id;

  /// Charge `steps` against the governor; true while work may proceed.
  bool Charge(int64_t steps = 1) const {
    return GovernorCharge(governor, steps);
  }
  /// True when the governor exists and has tripped.
  bool Exhausted() const { return GovernorExhausted(governor); }
  /// Open a span (inert when tracing is disabled).
  obs::Span Span(std::string_view name) const {
    return obs::StartSpan(tracer, name);
  }
  /// Bump a counter (no-op when metrics are disabled).
  void Count(std::string_view name, int64_t delta = 1) const {
    obs::Count(metrics, name, delta);
  }
  /// Time a scope into a duration histogram (inert when disabled).
  obs::ScopedTimer Timer(std::string_view name) const {
    return obs::ScopedTimer(metrics, name);
  }

  /// This context with the governor swapped out — how the resilient
  /// pipeline hands each cascade tier its own budget slice while keeping
  /// the run's sink/tracer/metrics.
  RunContext WithGovernor(ResourceGovernor* g) const {
    RunContext out = *this;
    out.governor = g;
    return out;
  }
};

}  // namespace semap::exec

#endif  // SEMAP_EXEC_RUN_CONTEXT_H_
