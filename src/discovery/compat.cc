#include "discovery/compat.h"

#include <algorithm>
#include <queue>

namespace semap::disc {

namespace {

/// Undirected adjacency over fragment nodes; each entry is (neighbor,
/// graph-edge id traversed in that direction).
std::vector<std::vector<std::pair<int, int>>> FragmentAdjacency(
    const cm::CmGraph& graph, const Csg& csg) {
  std::vector<std::vector<std::pair<int, int>>> adj(csg.fragment.nodes.size());
  for (const sem::Fragment::Edge& e : csg.fragment.edges) {
    adj[static_cast<size_t>(e.from)].push_back({e.to, e.graph_edge});
    int partner = graph.edge(e.graph_edge).partner;
    if (partner >= 0) {
      adj[static_cast<size_t>(e.to)].push_back({e.from, partner});
    }
  }
  return adj;
}

}  // namespace

Connection TreeConnection(const cm::CmGraph& graph, const Csg& csg, int a_idx,
                          int b_idx) {
  Connection out;
  if (a_idx < 0 || b_idx < 0) return out;
  if (a_idx == b_idx) {
    out.exists = true;
    out.forward = cm::Cardinality::ExactlyOne();
    out.backward = cm::Cardinality::ExactlyOne();
    out.all_partof = false;
    return out;
  }
  auto adj = FragmentAdjacency(graph, csg);
  // BFS for the unique path a -> b.
  std::vector<int> prev_node(csg.fragment.nodes.size(), -1);
  std::vector<int> prev_edge(csg.fragment.nodes.size(), -1);
  std::vector<bool> visited(csg.fragment.nodes.size(), false);
  std::queue<int> queue;
  queue.push(a_idx);
  visited[static_cast<size_t>(a_idx)] = true;
  while (!queue.empty()) {
    int cur = queue.front();
    queue.pop();
    if (cur == b_idx) break;
    for (auto [next, eid] : adj[static_cast<size_t>(cur)]) {
      if (visited[static_cast<size_t>(next)]) continue;
      visited[static_cast<size_t>(next)] = true;
      prev_node[static_cast<size_t>(next)] = cur;
      prev_edge[static_cast<size_t>(next)] = eid;
      queue.push(next);
    }
  }
  if (!visited[static_cast<size_t>(b_idx)]) return out;

  // Reconstruct the path b <- a and compose cardinalities both ways.
  std::vector<const cm::GraphEdge*> forward_path;
  int cur = b_idx;
  while (cur != a_idx) {
    forward_path.push_back(&graph.edge(prev_edge[static_cast<size_t>(cur)]));
    cur = prev_node[static_cast<size_t>(cur)];
  }
  std::reverse(forward_path.begin(), forward_path.end());
  std::vector<const cm::GraphEdge*> backward_path;
  for (auto it = forward_path.rbegin(); it != forward_path.rend(); ++it) {
    const cm::GraphEdge* e = *it;
    backward_path.push_back(e->partner >= 0 ? &graph.edge(e->partner) : e);
  }

  out.exists = true;
  out.forward = cm::CmGraph::ComposePath(forward_path);
  out.backward = cm::CmGraph::ComposePath(backward_path);
  out.all_partof = true;
  out.steps = 0;
  for (const cm::GraphEdge* e : forward_path) {
    if (e->kind != cm::EdgeKind::kIsa) {
      out.has_non_isa = true;
      if (e->semantic_type != cm::SemanticType::kPartOf) {
        out.all_partof = false;
      }
    }
    out.steps += (e->kind == cm::EdgeKind::kRole) ? 1 : 2;
  }
  if (!out.has_non_isa) out.all_partof = false;
  return out;
}

bool HasDisjointnessViolation(const cm::CmGraph& graph, const Csg& csg) {
  // For every fragment node acting as a superclass, collect the subclass
  // fragment nodes attached to it by ISA edges; any disjoint pair means the
  // tree asserts membership in two disjoint classes for one instance.
  const size_t n = csg.fragment.nodes.size();
  std::vector<std::vector<int>> subs_of(n);
  for (const sem::Fragment::Edge& e : csg.fragment.edges) {
    const cm::GraphEdge& ge = graph.edge(e.graph_edge);
    if (ge.kind != cm::EdgeKind::kIsa) continue;
    // The ISA relation runs sub -> super on the non-inverted edge.
    int sub_idx = ge.inverted ? e.to : e.from;
    int super_idx = ge.inverted ? e.from : e.to;
    subs_of[static_cast<size_t>(super_idx)].push_back(sub_idx);
  }
  for (size_t i = 0; i < n; ++i) {
    const std::vector<int>& subs = subs_of[i];
    for (size_t a = 0; a < subs.size(); ++a) {
      for (size_t b = a + 1; b < subs.size(); ++b) {
        int na = csg.fragment.nodes[static_cast<size_t>(subs[a])].graph_node;
        int nb = csg.fragment.nodes[static_cast<size_t>(subs[b])].graph_node;
        if (graph.AreDisjoint(na, nb)) return true;
      }
    }
  }
  return false;
}

Compat JudgeConnections(const Connection& source, const Connection& target,
                        bool a_identified, bool b_identified) {
  if (!source.exists || !target.exists) return Compat::kCompatible;
  // A non-functional source connection out of an *identified* endpoint
  // would attach several distinct instances to one target instance,
  // violating the target's functional constraint (Example 1.1's
  // hypothetical upper bound of 1 on hasBookSoldAt).
  if (a_identified && target.forward.IsFunctional() &&
      !source.forward.IsFunctional()) {
    return Compat::kIncompatible;
  }
  if (b_identified && target.backward.IsFunctional() &&
      !source.backward.IsFunctional()) {
    return Compat::kIncompatible;
  }
  // partOf vs non-partOf pairings are suspicious (Example 1.3). Pure-ISA
  // connections carry no relationship semantics to compare.
  if (source.has_non_isa && target.has_non_isa &&
      source.all_partof != target.all_partof) {
    return Compat::kDowngrade;
  }
  return Compat::kCompatible;
}

Csg CsgFromSTree(const cm::CmGraph& graph, const sem::STree& stree) {
  Csg csg;
  for (const sem::STreeNode& n : stree.nodes) {
    csg.fragment.nodes.push_back({n.graph_node});
  }
  for (const sem::STreeEdge& e : stree.edges) {
    csg.fragment.edges.push_back({e.from, e.to, e.graph_edge});
    if (!graph.edge(e.graph_edge).IsFunctional()) ++csg.lossy_edges;
  }
  if (stree.anchor.has_value()) {
    csg.root = *stree.anchor;
    return csg;
  }
  // Derive a root: a node from which every tree path runs functionally.
  auto adj = FragmentAdjacency(graph, csg);
  for (size_t r = 0; r < csg.fragment.nodes.size(); ++r) {
    bool ok = true;
    std::vector<bool> visited(csg.fragment.nodes.size(), false);
    std::vector<int> stack = {static_cast<int>(r)};
    visited[r] = true;
    while (!stack.empty() && ok) {
      int cur = stack.back();
      stack.pop_back();
      for (auto [next, eid] : adj[static_cast<size_t>(cur)]) {
        if (visited[static_cast<size_t>(next)]) continue;
        if (!graph.edge(eid).IsFunctional()) {
          ok = false;
          break;
        }
        visited[static_cast<size_t>(next)] = true;
        stack.push_back(next);
      }
    }
    if (ok && std::all_of(visited.begin(), visited.end(),
                          [](bool v) { return v; })) {
      csg.root = static_cast<int>(r);
      break;
    }
  }
  return csg;
}

}  // namespace semap::disc
