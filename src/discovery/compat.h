// Semantic-similarity judgements between connections, plus the
// consistency filters of Section 3.2/3.3:
//  * composed cardinality of the unique tree path between two nodes;
//  * disjointness filter (a tree implying membership in two disjoint
//    classes is unsatisfiable);
//  * compatibility of a source connection with a target connection by
//    cardinality and by semantic type (partOf vs non-partOf).
#ifndef SEMAP_DISCOVERY_COMPAT_H_
#define SEMAP_DISCOVERY_COMPAT_H_

#include <optional>

#include "discovery/csg.h"
#include "semantics/stree.h"

namespace semap::disc {

/// \brief The semantics of the unique path between two nodes of a tree CSG.
struct Connection {
  bool exists = false;
  cm::Cardinality forward;   // composed a -> b
  cm::Cardinality backward;  // composed b -> a
  bool all_partof = false;   // every non-ISA step carries the partOf tag
  bool has_non_isa = false;  // the path has at least one non-ISA step
  int steps = 0;             // edges on the path (roles count as halves, x2)
};

/// \brief Path semantics between fragment nodes `a_idx` and `b_idx` of a
/// tree-shaped CSG (edges usable in both directions; inverse cardinalities
/// come from partner edges).
Connection TreeConnection(const cm::CmGraph& graph, const Csg& csg, int a_idx,
                          int b_idx);

/// \brief True when the CSG contains C -isa-> P -isa⁻-> D with C and D
/// disjoint: such a query is equivalent to false and must be eliminated.
bool HasDisjointnessViolation(const cm::CmGraph& graph, const Csg& csg);

enum class Compat {
  kCompatible,
  kDowngrade,     // suspicious (e.g. partOf paired with non-partOf)
  kIncompatible,  // e.g. many-to-many source into a functional target
};

/// \brief Judge whether a source connection may realize a target
/// connection. Source data flows into the target, so a source connection
/// that is many-to-many cannot populate a target connection constrained to
/// be functional — but only when the endpoint being multiplied is
/// *identified* by its corresponded attribute (`a_identified` /
/// `b_identified`: the exported attribute is a key of the target class):
/// unidentified endpoints are fresh existentials and can never collide.
/// Differing partOf semantics merely downgrades (Example 1.3).
Compat JudgeConnections(const Connection& source, const Connection& target,
                        bool a_identified = true, bool b_identified = true);

/// \brief Convert a table's s-tree into a CSG. The root is the declared
/// anchor; absent one, a node from which every tree path runs functionally
/// (if any).
Csg CsgFromSTree(const cm::CmGraph& graph, const sem::STree& stree);

}  // namespace semap::disc

#endif  // SEMAP_DISCOVERY_COMPAT_H_
