// Element correspondences: the simple column-to-column matches the whole
// pipeline starts from, and their lifting onto CM-graph class nodes.
#ifndef SEMAP_DISCOVERY_CORRESPONDENCE_H_
#define SEMAP_DISCOVERY_CORRESPONDENCE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "relational/schema.h"
#include "semantics/stree.h"
#include "util/diag.h"
#include "util/result.h"

namespace semap::disc {

/// \brief v: source.table.column <-> target.table.column.
struct Correspondence {
  rel::ColumnRef source;
  rel::ColumnRef target;

  std::string ToString() const {
    return source.ToString() + " <-> " + target.ToString();
  }
  bool operator==(const Correspondence&) const = default;
};

/// \brief A correspondence lifted to the conceptual level: the class nodes
/// (and attributes) its two columns are bound to by the table semantics.
struct LiftedCorrespondence {
  Correspondence corr;
  int source_node = -1;  // class node in the source CM graph
  std::string source_attribute;
  int target_node = -1;  // class node in the target CM graph
  std::string target_attribute;
};

/// \brief Lift all correspondences via the table semantics. Without a
/// `sink` this fails when a corresponded column has no semantics (unknown
/// table / unbound column). With a `sink` it fail-softs instead: the
/// unliftable correspondence is skipped with a kUnliftableCorrespondence
/// warning and the rest are returned, so discovery degrades the affected
/// table rather than aborting the whole run.
Result<std::vector<LiftedCorrespondence>> LiftCorrespondences(
    const sem::AnnotatedSchema& source, const sem::AnnotatedSchema& target,
    const std::vector<Correspondence>& correspondences,
    DiagnosticSink* sink = nullptr);

/// \brief Marked class nodes on one side: node -> indices of lifted
/// correspondences touching it.
std::map<int, std::vector<size_t>> MarkedNodes(
    const std::vector<LiftedCorrespondence>& lifted, bool source_side);

/// \brief Node-level correspondence: true when some lifted correspondence
/// pairs `source_node` with `target_node`.
bool NodesCorrespond(const std::vector<LiftedCorrespondence>& lifted,
                     int source_node, int target_node);

/// \brief Tables mentioned by the correspondences on one side; their
/// s-trees are the paper's "pre-selected s-trees".
std::set<std::string> PreSelectedTables(
    const std::vector<Correspondence>& correspondences, bool source_side);

/// \brief Parse a correspondence file: one `src_table.col <-> tgt_table.col;`
/// per statement, '#'//'//' comments allowed — the canonical entry point.
/// kStrict fails fast on the first problem; kLenient (sink required)
/// collects coded diagnostics, synchronizes past the next ';' after a
/// malformed statement, and returns the well-formed correspondences —
/// failing only when the options are themselves invalid (kLenient
/// without a sink). When `spans` is non-null, a lenient parse fills it
/// with one SourceSpan per returned correspondence (its first token),
/// for later cross-artifact diagnostics; strict parses leave it
/// untouched.
Result<std::vector<Correspondence>> ParseCorrespondences(
    std::string_view input, const ParseOptions& options,
    std::vector<SourceSpan>* spans = nullptr);

/// Historical names, delegating to the canonical entry point.
Result<std::vector<Correspondence>> ParseCorrespondences(
    std::string_view input);
std::vector<Correspondence> ParseCorrespondencesLenient(
    std::string_view input, DiagnosticSink& sink,
    std::vector<SourceSpan>* spans = nullptr);

}  // namespace semap::disc

#endif  // SEMAP_DISCOVERY_CORRESPONDENCE_H_
