#include "discovery/tree_search.h"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>

namespace semap::disc {

namespace {

constexpr int64_t kInf = std::numeric_limits<int64_t>::max();

bool EdgeAllowed(const cm::GraphEdge& e, const TreeSearchOptions& options) {
  if (e.kind == cm::EdgeKind::kAttribute) return false;
  if (!options.use_isa && e.kind == cm::EdgeKind::kIsa) return false;
  if (options.functional_only && !e.IsFunctional()) return false;
  if (options.excluded_nodes.count(e.to) > 0) return false;
  return true;
}

/// The context the search actually runs under: the caller's context, with
/// the deprecated options.governor honored when the context has none.
exec::RunContext Effective(const TreeSearchOptions& options,
                           const exec::RunContext& ctx) {
  exec::RunContext out = ctx;
  if (out.governor == nullptr) out.governor = options.governor;
  return out;
}

}  // namespace

ShortestPaths ComputeShortestPaths(const cm::CmGraph& graph,
                                   const CostModel& costs, int root,
                                   const TreeSearchOptions& options) {
  return ComputeShortestPaths(graph, costs, root, options, {});
}

ShortestPaths ComputeShortestPaths(const cm::CmGraph& graph,
                                   const CostModel& costs, int root,
                                   const TreeSearchOptions& options,
                                   const exec::RunContext& run_ctx) {
  const exec::RunContext ctx = Effective(options, run_ctx);
  ctx.Count("tree_search.shortest_path_runs");
  const size_t n = graph.nodes().size();
  ShortestPaths sp;
  sp.dist.assign(n, kInf);
  sp.parent_edge.assign(n, -1);
  sp.parent_edges.assign(n, {});
  sp.dist[static_cast<size_t>(root)] = 0;

  using Entry = std::pair<int64_t, int>;  // (dist, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  queue.push({0, root});
  // Cancellation leaves the still-unsettled nodes at ∞, which callers
  // already treat as "unreachable" — the partial result stays well-formed.
  while (!queue.empty()) {
    if (!ctx.Charge()) break;
    auto [d, u] = queue.top();
    queue.pop();
    if (d > sp.dist[static_cast<size_t>(u)]) continue;
    for (int eid : graph.OutEdges(u)) {
      const cm::GraphEdge& e = graph.edge(eid);
      if (!EdgeAllowed(e, options)) continue;
      int64_t nd = d + costs.EdgeCost(eid);
      if (nd < sp.dist[static_cast<size_t>(e.to)]) {
        sp.dist[static_cast<size_t>(e.to)] = nd;
        sp.parent_edge[static_cast<size_t>(e.to)] = eid;
        queue.push({nd, e.to});
      }
    }
  }
  // Collect every tie-optimal parent edge.
  for (const cm::GraphEdge& e : graph.edges()) {
    if (!EdgeAllowed(e, options)) continue;
    size_t to = static_cast<size_t>(e.to);
    size_t from = static_cast<size_t>(e.from);
    if (sp.dist[from] != kInf && sp.dist[to] != kInf &&
        sp.dist[from] + costs.EdgeCost(e.id) == sp.dist[to]) {
      sp.parent_edges[to].push_back(e.id);
    }
  }
  return sp;
}

std::optional<Csg> GrowTree(const cm::CmGraph& graph, const CostModel& costs,
                            int root, const std::vector<int>& terminals,
                            const TreeSearchOptions& options,
                            std::vector<int>* uncovered) {
  return GrowTree(graph, costs, root, terminals, options, {}, uncovered);
}

std::optional<Csg> GrowTree(const cm::CmGraph& graph, const CostModel& costs,
                            int root, const std::vector<int>& terminals,
                            const TreeSearchOptions& options,
                            const exec::RunContext& ctx,
                            std::vector<int>* uncovered) {
  ShortestPaths sp = ComputeShortestPaths(graph, costs, root, options, ctx);
  if (uncovered != nullptr) uncovered->clear();

  // Union of root->terminal paths: the set of edges on any used path.
  std::map<int, int> node_index;   // graph node -> fragment index
  std::vector<int> tree_edges;     // graph edge ids, parent -> child
  std::set<int> edge_set;
  bool any_covered = false;
  for (int t : terminals) {
    if (sp.dist[static_cast<size_t>(t)] == kInf) {
      if (uncovered != nullptr) uncovered->push_back(t);
      continue;
    }
    any_covered = true;
    int cur = t;
    while (cur != root) {
      int eid = sp.parent_edge[static_cast<size_t>(cur)];
      if (eid < 0 || edge_set.count(eid) > 0) break;  // reached shared prefix
      edge_set.insert(eid);
      tree_edges.push_back(eid);
      cur = graph.edge(eid).from;
    }
  }
  if (!any_covered) return std::nullopt;

  Csg csg;
  auto ensure_node = [&](int graph_node) {
    auto it = node_index.find(graph_node);
    if (it != node_index.end()) return it->second;
    int idx = static_cast<int>(csg.fragment.nodes.size());
    csg.fragment.nodes.push_back({graph_node});
    node_index.emplace(graph_node, idx);
    return idx;
  };
  ensure_node(root);
  csg.root = 0;
  // Emit edges parent -> child; order them root-outward for readability.
  std::reverse(tree_edges.begin(), tree_edges.end());
  for (int eid : tree_edges) {
    const cm::GraphEdge& e = graph.edge(eid);
    int from_idx = ensure_node(e.from);
    int to_idx = ensure_node(e.to);
    csg.fragment.edges.push_back({from_idx, to_idx, eid});
    csg.cost += costs.EdgeCost(eid);
    if (!e.IsFunctional()) ++csg.lossy_edges;
    if (costs.IsPreSelected(eid)) ++csg.pre_selected_used;
  }
  return csg;
}

namespace {

/// Recursive enumeration of optimal parent choices (see GrowAllTrees).
class TreeEnumerator {
 public:
  TreeEnumerator(const cm::CmGraph& graph, const CostModel& costs,
                 const ShortestPaths& sp, int root,
                 const std::vector<int>& terminals, size_t cap,
                 const exec::RunContext& ctx)
      : graph_(graph), costs_(costs), sp_(sp), root_(root),
        terminals_(terminals), cap_(cap), ctx_(ctx) {}

  std::vector<Csg> Run() {
    std::vector<int> pending;
    for (int t : terminals_) {
      if (t != root_) pending.push_back(t);
    }
    Enumerate(pending);
    return std::move(results_);
  }

 private:
  void Enumerate(std::vector<int> pending) {
    if (results_.size() >= cap_) return;
    if (!ctx_.Charge()) return;
    while (!pending.empty() &&
           (pending.back() == root_ || choice_.count(pending.back()) > 0)) {
      pending.pop_back();
    }
    if (pending.empty()) {
      Materialize();
      return;
    }
    int n = pending.back();
    pending.pop_back();
    for (int eid : sp_.parent_edges[static_cast<size_t>(n)]) {
      const cm::GraphEdge& e = graph_.edge(eid);
      // Reject choices whose parent chain loops back to n.
      bool cyclic = false;
      std::set<int> visited = {n};
      int cur = e.from;
      while (cur != root_) {
        if (!visited.insert(cur).second) {
          cyclic = true;
          break;
        }
        auto it = choice_.find(cur);
        if (it == choice_.end()) break;  // unresolved: checked later
        cur = graph_.edge(it->second).from;
      }
      if (cyclic) continue;
      choice_[n] = eid;
      std::vector<int> next = pending;
      if (e.from != root_ && choice_.count(e.from) == 0) {
        next.push_back(e.from);
      }
      Enumerate(std::move(next));
      choice_.erase(n);
      if (results_.size() >= cap_) return;
    }
  }

  void Materialize() {
    // Walk each terminal's chain; collect edges; reject broken chains.
    std::set<int> edge_set;
    std::vector<int> ordered_edges;
    for (int t : terminals_) {
      int cur = t;
      std::set<int> walk_guard;
      while (cur != root_) {
        if (!walk_guard.insert(cur).second) return;  // loop: malformed
        auto it = choice_.find(cur);
        if (it == choice_.end()) return;
        if (edge_set.insert(it->second).second) {
          ordered_edges.push_back(it->second);
        }
        cur = graph_.edge(it->second).from;
      }
    }
    Csg csg;
    std::map<int, int> node_index;
    auto ensure_node = [&](int graph_node) {
      auto it = node_index.find(graph_node);
      if (it != node_index.end()) return it->second;
      int idx = static_cast<int>(csg.fragment.nodes.size());
      csg.fragment.nodes.push_back({graph_node});
      node_index.emplace(graph_node, idx);
      return idx;
    };
    ensure_node(root_);
    csg.root = 0;
    std::reverse(ordered_edges.begin(), ordered_edges.end());
    for (int eid : ordered_edges) {
      const cm::GraphEdge& e = graph_.edge(eid);
      int from_idx = ensure_node(e.from);
      int to_idx = ensure_node(e.to);
      csg.fragment.edges.push_back({from_idx, to_idx, eid});
      csg.cost += costs_.EdgeCost(eid);
      if (!e.IsFunctional()) ++csg.lossy_edges;
      if (costs_.IsPreSelected(eid)) ++csg.pre_selected_used;
    }
    // Dedup by undirected edge set.
    std::set<int> key = csg.UndirectedEdgeSet(graph_);
    for (const std::set<int>& s : seen_) {
      if (s == key) return;
    }
    seen_.push_back(std::move(key));
    results_.push_back(std::move(csg));
  }

  const cm::CmGraph& graph_;
  const CostModel& costs_;
  const ShortestPaths& sp_;
  int root_;
  const std::vector<int>& terminals_;
  size_t cap_;
  exec::RunContext ctx_;
  std::map<int, int> choice_;  // node -> chosen parent edge
  std::vector<Csg> results_;
  std::vector<std::set<int>> seen_;
};

}  // namespace

std::vector<Csg> GrowAllTrees(const cm::CmGraph& graph, const CostModel& costs,
                              int root, const std::vector<int>& terminals,
                              const TreeSearchOptions& options,
                              std::vector<int>* uncovered) {
  return GrowAllTrees(graph, costs, root, terminals, options, {}, uncovered);
}

std::vector<Csg> GrowAllTrees(const cm::CmGraph& graph, const CostModel& costs,
                              int root, const std::vector<int>& terminals,
                              const TreeSearchOptions& options,
                              const exec::RunContext& run_ctx,
                              std::vector<int>* uncovered) {
  const exec::RunContext ctx = Effective(options, run_ctx);
  ShortestPaths sp = ComputeShortestPaths(graph, costs, root, options, ctx);
  if (uncovered != nullptr) uncovered->clear();
  std::vector<int> reachable;
  for (int t : terminals) {
    if (sp.dist[static_cast<size_t>(t)] == kInf) {
      if (uncovered != nullptr) uncovered->push_back(t);
    } else {
      reachable.push_back(t);
    }
  }
  if (reachable.empty()) return {};
  TreeEnumerator enumerator(graph, costs, sp, root, reachable,
                            options.max_results, ctx);
  std::vector<Csg> trees = enumerator.Run();
  ctx.Count("tree_search.trees_enumerated",
            static_cast<int64_t>(trees.size()));
  if (ctx.governor != nullptr) {
    for (const Csg& tree : trees) {
      ctx.governor->ChargeMemory(static_cast<int64_t>(
          tree.fragment.nodes.size() * sizeof(sem::Fragment::Node) +
          tree.fragment.edges.size() * sizeof(sem::Fragment::Edge)));
    }
  }
  return trees;
}

std::vector<Csg> MinimalTrees(const cm::CmGraph& graph, const CostModel& costs,
                              const std::vector<int>& terminals,
                              const TreeSearchOptions& options) {
  return MinimalTrees(graph, costs, terminals, options, {});
}

std::vector<Csg> MinimalTrees(const cm::CmGraph& graph, const CostModel& costs,
                              const std::vector<int>& terminals,
                              const TreeSearchOptions& options,
                              const exec::RunContext& run_ctx) {
  const exec::RunContext ctx = Effective(options, run_ctx);
  obs::ScopedTimer timer(ctx.metrics, "tree_search.minimal_trees_ns");
  std::vector<Csg> candidates;
  const std::vector<int> roots = graph.ClassNodes();
  size_t roots_tried = 0;
  for (int root : roots) {
    if (!ctx.Charge()) break;
    ++roots_tried;
    if (options.excluded_nodes.count(root) > 0) continue;
    std::vector<int> uncovered;
    std::vector<Csg> trees =
        GrowAllTrees(graph, costs, root, terminals, options, ctx, &uncovered);
    if (!uncovered.empty()) continue;
    for (Csg& tree : trees) candidates.push_back(std::move(tree));
  }
  ctx.Count("tree_search.roots_tried", static_cast<int64_t>(roots_tried));
  if (ctx.Exhausted() && roots_tried < roots.size()) {
    ctx.governor->NoteTruncation(
        "MinimalTrees: stopped after " + std::to_string(roots_tried) + "/" +
        std::to_string(roots.size()) + " candidate roots");
  }
  if (candidates.empty()) return candidates;

  // Keep minimal cost; prefer more pre-selected edges, then fewer nodes.
  int64_t best_cost = kInf;
  for (const Csg& c : candidates) best_cost = std::min(best_cost, c.cost);
  std::vector<Csg> kept;
  for (Csg& c : candidates) {
    if (c.cost == best_cost) kept.push_back(std::move(c));
  }
  int best_pre = 0;
  for (const Csg& c : kept) best_pre = std::max(best_pre, c.pre_selected_used);
  std::erase_if(kept, [&](const Csg& c) {
    return c.pre_selected_used < best_pre;
  });

  // Node-set minimality (Case A.2): drop trees strictly containing another
  // kept tree's node set. Reified pass-through nodes are ignored — a path
  // through a reified relationship counts as a single edge (§3.3), so the
  // reified node is not an "extra" concept.
  std::vector<std::set<int>> node_sets;
  node_sets.reserve(kept.size());
  for (const Csg& c : kept) {
    std::set<int> nodes;
    for (int n : c.GraphNodeSet()) {
      if (!graph.node(n).reified) nodes.insert(n);
    }
    node_sets.push_back(std::move(nodes));
  }
  std::vector<bool> dominated(kept.size(), false);
  for (size_t i = 0; i < kept.size(); ++i) {
    for (size_t j = 0; j < kept.size(); ++j) {
      if (i == j || dominated[j]) continue;
      if (node_sets[j].size() < node_sets[i].size() &&
          std::includes(node_sets[i].begin(), node_sets[i].end(),
                        node_sets[j].begin(), node_sets[j].end())) {
        dominated[i] = true;
        break;
      }
    }
  }
  std::vector<Csg> minimal;
  for (size_t i = 0; i < kept.size(); ++i) {
    if (!dominated[i]) minimal.push_back(std::move(kept[i]));
  }

  // Deduplicate by undirected edge set.
  std::vector<Csg> unique;
  std::vector<std::set<int>> seen;
  for (Csg& c : minimal) {
    std::set<int> key = c.UndirectedEdgeSet(graph);
    bool duplicate = false;
    for (const std::set<int>& s : seen) {
      if (s == key) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      seen.push_back(std::move(key));
      unique.push_back(std::move(c));
      if (unique.size() >= options.max_results) break;
    }
  }
  return unique;
}

}  // namespace semap::disc
