// CM-to-CM mapping discovery — the paper's closing direction: "we also
// plan to investigate the related problem of finding complex semantic
// mappings between two CMs/ontologies, given a set of element
// correspondences."
//
// Given two conceptual models (no relational schemas, no s-trees) and
// attribute-level correspondences, discover pairs of semantically similar
// conceptual subgraphs and return them together with their CM-level
// conjunctive queries. This reuses the Steiner search and compatibility
// machinery of the schema-mapping discoverer; without tables there are no
// pre-selected s-trees, so both sides run the Case-B construction.
#ifndef SEMAP_DISCOVERY_CM_MAPPER_H_
#define SEMAP_DISCOVERY_CM_MAPPER_H_

#include <string>
#include <vector>

#include "discovery/compat.h"
#include "discovery/discoverer.h"
#include "logic/cq.h"
#include "util/result.h"

namespace semap::disc {

/// \brief An attribute-level correspondence between two CMs.
struct CmCorrespondence {
  std::string source_class;
  std::string source_attribute;
  std::string target_class;
  std::string target_attribute;

  std::string ToString() const {
    return source_class + "." + source_attribute + " <-> " + target_class +
           "." + target_attribute;
  }
};

/// \brief A discovered CM-level mapping: two similar CSGs plus their
/// conjunctive-query encodings (head variables v0.. follow the covered
/// correspondence order).
struct CmMappingCandidate {
  Csg source_csg;
  Csg target_csg;
  std::vector<size_t> covered;  // indices into the input correspondences
  int penalty = 0;
  logic::ConjunctiveQuery source_query;
  logic::ConjunctiveQuery target_query;
};

/// \brief Discover CM-to-CM mapping candidates, best first.
Result<std::vector<CmMappingCandidate>> DiscoverCmMappings(
    const cm::CmGraph& source, const cm::CmGraph& target,
    const std::vector<CmCorrespondence>& correspondences,
    const DiscoveryOptions& options = {});

}  // namespace semap::disc

#endif  // SEMAP_DISCOVERY_CM_MAPPER_H_
