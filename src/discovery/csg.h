// Conceptual subgraphs (CSGs): the trees/paths the discovery algorithm
// finds in a CM graph to connect marked class nodes.
#ifndef SEMAP_DISCOVERY_CSG_H_
#define SEMAP_DISCOVERY_CSG_H_

#include <cstdint>
#include <optional>
#include <set>
#include <string>

#include "cm/graph.h"
#include "semantics/encoder.h"

namespace semap::disc {

/// \brief A discovered conceptual subgraph. The fragment holds class nodes
/// and connecting edges; attribute selections are added later, when the
/// CSG is turned into a query.
struct Csg {
  sem::Fragment fragment;
  std::optional<int> root;  // index into fragment.nodes
  int64_t cost = 0;
  int lossy_edges = 0;        // edges traversed in a non-functional direction
  int pre_selected_used = 0;  // edges borrowed from pre-selected s-trees

  /// Graph class-node ids present in the fragment.
  std::set<int> GraphNodeSet() const;
  /// Index of the first fragment node referencing `graph_node`, or -1.
  int FindNodeIndex(int graph_node) const;
  /// Undirected identity: the set of edge-pair ids, for deduplication.
  std::set<int> UndirectedEdgeSet(const cm::CmGraph& graph) const;
  /// True when every edge is traversed in a functional direction.
  bool IsFunctionalTree() const { return lossy_edges == 0; }

  std::string ToString(const cm::CmGraph& graph) const;
};

}  // namespace semap::disc

#endif  // SEMAP_DISCOVERY_CSG_H_
