// Minimal (functional) tree search over the CM graph.
//
// Trees are grown as unions of minimal-cost paths out of a candidate root
// (a shortest-path subtree), which is exact for the paper's "minimal
// functional trees": with the Wald–Sorenson cost model, any anchored
// functional tree is a union of functional root-to-terminal paths. A
// brute-force reference implementation backs the property tests.
#ifndef SEMAP_DISCOVERY_TREE_SEARCH_H_
#define SEMAP_DISCOVERY_TREE_SEARCH_H_

#include <optional>
#include <set>
#include <vector>

#include "discovery/cost_model.h"
#include "discovery/csg.h"
#include "exec/run_context.h"
#include "util/budget.h"

namespace semap::disc {

struct TreeSearchOptions {
  /// Restrict traversal to functional-direction edges (strict Case A/B
  /// trees). When false, non-functional edges are allowed at the
  /// Wald–Sorenson penalty ("minimally lossy joins").
  bool functional_only = true;
  /// Ablation flag: when false, ISA edges are never traversed.
  bool use_isa = true;
  /// Maximum number of trees MinimalTrees returns.
  size_t max_results = 8;
  /// Class nodes the search must not touch (used when splitting an
  /// inconsistent connection: the split-away node stays out).
  std::set<int> excluded_nodes;
  /// Deprecated: pass an exec::RunContext instead. Honored (when the
  /// context carries no governor) so pre-RunContext call sites keep
  /// working unchanged.
  ResourceGovernor* governor = nullptr;
};

/// \brief Single-source minimal-cost paths from `root` over class nodes.
struct ShortestPaths {
  std::vector<int64_t> dist;      // indexed by graph node id; INT64_MAX = ∞
  std::vector<int> parent_edge;   // one optimal edge per node; -1 at root/∞
  /// All optimal parent edges per node (ties included): every edge e with
  /// dist[e.from] + cost(e) == dist[e.to].
  std::vector<std::vector<int>> parent_edges;
};

ShortestPaths ComputeShortestPaths(const cm::CmGraph& graph,
                                   const CostModel& costs, int root,
                                   const TreeSearchOptions& options,
                                   const exec::RunContext& ctx);
ShortestPaths ComputeShortestPaths(const cm::CmGraph& graph,
                                   const CostModel& costs, int root,
                                   const TreeSearchOptions& options);

/// \brief Grow the minimal-cost tree rooted at `root` covering every
/// reachable terminal. `uncovered` (optional out) receives terminals that
/// were unreachable. Returns nullopt when no terminal is reachable or the
/// tree would be a single node with no terminals.
std::optional<Csg> GrowTree(const cm::CmGraph& graph, const CostModel& costs,
                            int root, const std::vector<int>& terminals,
                            const TreeSearchOptions& options,
                            const exec::RunContext& ctx,
                            std::vector<int>* uncovered = nullptr);
std::optional<Csg> GrowTree(const cm::CmGraph& graph, const CostModel& costs,
                            int root, const std::vector<int>& terminals,
                            const TreeSearchOptions& options,
                            std::vector<int>* uncovered = nullptr);

/// \brief All minimal-cost trees rooted at `root` covering every reachable
/// terminal: enumerates the alternative optimal parent choices (e.g. two
/// parallel functional relationships of equal cost), up to
/// options.max_results trees, deduplicated by undirected edge set.
std::vector<Csg> GrowAllTrees(const cm::CmGraph& graph, const CostModel& costs,
                              int root, const std::vector<int>& terminals,
                              const TreeSearchOptions& options,
                              const exec::RunContext& ctx,
                              std::vector<int>* uncovered = nullptr);
std::vector<Csg> GrowAllTrees(const cm::CmGraph& graph, const CostModel& costs,
                              int root, const std::vector<int>& terminals,
                              const TreeSearchOptions& options,
                              std::vector<int>* uncovered = nullptr);

/// \brief Enumerate minimal trees covering all `terminals`, over every
/// candidate root: keeps full-coverage trees of minimal cost, prunes trees
/// whose node set strictly contains another's (Case A.2 minimality), and
/// deduplicates by undirected edge set. Tie-breaks prefer trees using more
/// pre-selected s-tree edges, then fewer nodes.
///
/// The RunContext carries the governor charged by every search loop plus
/// tracing/metrics; the context-free overloads delegate with a context
/// built from options.governor (the deprecated pre-RunContext path).
std::vector<Csg> MinimalTrees(const cm::CmGraph& graph, const CostModel& costs,
                              const std::vector<int>& terminals,
                              const TreeSearchOptions& options,
                              const exec::RunContext& ctx);
std::vector<Csg> MinimalTrees(const cm::CmGraph& graph, const CostModel& costs,
                              const std::vector<int>& terminals,
                              const TreeSearchOptions& options);

}  // namespace semap::disc

#endif  // SEMAP_DISCOVERY_TREE_SEARCH_H_
