#include "discovery/csg.h"

#include <algorithm>

#include "util/string_util.h"

namespace semap::disc {

std::set<int> Csg::GraphNodeSet() const {
  std::set<int> out;
  for (const sem::Fragment::Node& n : fragment.nodes) out.insert(n.graph_node);
  return out;
}

int Csg::FindNodeIndex(int graph_node) const {
  for (size_t i = 0; i < fragment.nodes.size(); ++i) {
    if (fragment.nodes[i].graph_node == graph_node) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::set<int> Csg::UndirectedEdgeSet(const cm::CmGraph& graph) const {
  std::set<int> out;
  for (const sem::Fragment::Edge& e : fragment.edges) {
    const cm::GraphEdge& ge = graph.edge(e.graph_edge);
    out.insert(ge.partner >= 0 ? std::min(ge.id, ge.partner) : ge.id);
  }
  return out;
}

std::string Csg::ToString(const cm::CmGraph& graph) const {
  std::vector<std::string> node_strs;
  for (size_t i = 0; i < fragment.nodes.size(); ++i) {
    std::string s = graph.node(fragment.nodes[i].graph_node).name;
    if (root.has_value() && static_cast<size_t>(*root) == i) s += "(root)";
    node_strs.push_back(std::move(s));
  }
  std::string out = "CSG{" + Join(node_strs, ", ");
  if (!fragment.edges.empty()) {
    std::vector<std::string> edge_strs;
    for (const sem::Fragment::Edge& e : fragment.edges) {
      edge_strs.push_back(
          graph.node(fragment.nodes[static_cast<size_t>(e.from)].graph_node)
              .name +
          " -" + graph.edge(e.graph_edge).Label() + "-> " +
          graph.node(fragment.nodes[static_cast<size_t>(e.to)].graph_node)
              .name);
    }
    out += "; " + Join(edge_strs, ", ");
  }
  out += "; cost=" + std::to_string(cost) + "}";
  return out;
}

}  // namespace semap::disc
