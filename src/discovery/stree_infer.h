// S-tree inference: bootstrap a table's semantics from simple
// column-to-attribute hints against a CM — a lightweight take on the
// authors' companion semantics-discovery tool ([2,3] in the paper;
// "we have recently developed a tool to recover the semantics of a legacy
// database schema in terms of an existing CM"), built on the same minimal
// functional tree search the mapping discoverer uses.
//
// Given hints {column -> Class.attribute}, the inferred s-tree is the
// minimal functional tree connecting the hinted classes (lossy fallback if
// none), rooted per the search, with every hinted column bound. Users can
// then review/adjust the tree before attaching it to an AnnotatedSchema.
#ifndef SEMAP_DISCOVERY_STREE_INFER_H_
#define SEMAP_DISCOVERY_STREE_INFER_H_

#include <map>
#include <string>

#include "discovery/discoverer.h"
#include "semantics/stree.h"
#include "util/result.h"

namespace semap::disc {

/// \brief A column's hinted attribute.
struct AttributeHint {
  std::string class_name;
  std::string attribute;
};

/// \brief Infer the s-tree of `table_def` from per-column hints. Every
/// column of the table must be hinted; hints must reference existing
/// class attributes. Two columns may hint the same class (different
/// attributes) and share its node; hinting the *same attribute* from two
/// columns (which would require concept copies) is unsupported.
Result<sem::STree> InferSTree(
    const cm::CmGraph& graph, const rel::Table& table_def,
    const std::map<std::string, AttributeHint>& hints,
    const DiscoveryOptions& options = {});

}  // namespace semap::disc

#endif  // SEMAP_DISCOVERY_STREE_INFER_H_
