#include "discovery/cm_mapper.h"

#include <algorithm>
#include <map>

#include "discovery/cost_model.h"
#include "discovery/tree_search.h"
#include "semantics/encoder.h"

namespace semap::disc {

namespace {

struct LiftedCmCorrespondence {
  int source_node = -1;
  int target_node = -1;
  std::string source_attribute;
  std::string target_attribute;
};

Result<std::vector<LiftedCmCorrespondence>> Lift(
    const cm::CmGraph& source, const cm::CmGraph& target,
    const std::vector<CmCorrespondence>& correspondences) {
  std::vector<LiftedCmCorrespondence> out;
  for (const CmCorrespondence& corr : correspondences) {
    LiftedCmCorrespondence lifted;
    lifted.source_node = source.FindClassNode(corr.source_class);
    lifted.target_node = target.FindClassNode(corr.target_class);
    if (lifted.source_node < 0) {
      return Status::NotFound("unknown source class '" + corr.source_class +
                              "'");
    }
    if (lifted.target_node < 0) {
      return Status::NotFound("unknown target class '" + corr.target_class +
                              "'");
    }
    if (source.FindAttributeNode(corr.source_class, corr.source_attribute) <
        0) {
      return Status::NotFound("unknown attribute " + corr.source_class + "." +
                              corr.source_attribute);
    }
    if (target.FindAttributeNode(corr.target_class, corr.target_attribute) <
        0) {
      return Status::NotFound("unknown attribute " + corr.target_class + "." +
                              corr.target_attribute);
    }
    lifted.source_attribute = corr.source_attribute;
    lifted.target_attribute = corr.target_attribute;
    out.push_back(std::move(lifted));
  }
  return out;
}

std::vector<Csg> FindTrees(const cm::CmGraph& graph, const CostModel& costs,
                           const std::vector<int>& marked,
                           const DiscoveryOptions& options) {
  TreeSearchOptions opts;
  opts.use_isa = options.use_isa;
  opts.max_results = options.max_trees_per_side;
  opts.functional_only = true;
  std::vector<Csg> trees = MinimalTrees(graph, costs, marked, opts);
  if (trees.empty() && options.allow_lossy) {
    opts.functional_only = false;
    trees = MinimalTrees(graph, costs, marked, opts);
  }
  if (options.use_disjointness_filter) {
    std::erase_if(trees, [&](const Csg& c) {
      return HasDisjointnessViolation(graph, c);
    });
  }
  return trees;
}

Result<logic::ConjunctiveQuery> EncodeSide(
    const cm::CmGraph& graph, const Csg& csg,
    const std::vector<LiftedCmCorrespondence>& lifted,
    const std::vector<size_t>& covered, bool source_side) {
  sem::Fragment fragment = csg.fragment;
  std::vector<std::string> head_vars;
  for (size_t k = 0; k < covered.size(); ++k) {
    const LiftedCmCorrespondence& lc = lifted[covered[k]];
    int node_idx = csg.FindNodeIndex(source_side ? lc.source_node
                                                 : lc.target_node);
    if (node_idx < 0) {
      return Status::Internal("covered node missing from CSG");
    }
    std::string var = "v" + std::to_string(k);
    fragment.attrs.push_back(
        {node_idx,
         source_side ? lc.source_attribute : lc.target_attribute, var});
    head_vars.push_back(std::move(var));
  }
  return sem::EncodeFragment(graph, fragment, head_vars);
}

}  // namespace

Result<std::vector<CmMappingCandidate>> DiscoverCmMappings(
    const cm::CmGraph& source, const cm::CmGraph& target,
    const std::vector<CmCorrespondence>& correspondences,
    const DiscoveryOptions& options) {
  if (correspondences.empty()) {
    return Status::InvalidArgument("no correspondences given");
  }
  SEMAP_ASSIGN_OR_RETURN(std::vector<LiftedCmCorrespondence> lifted,
                         Lift(source, target, correspondences));

  // No tables -> no pre-selected s-tree edges on either side.
  CostModel source_costs(source, {});
  CostModel target_costs(target, {});

  std::set<int> target_marked_set;
  for (const auto& lc : lifted) target_marked_set.insert(lc.target_node);
  std::vector<int> target_marked(target_marked_set.begin(),
                                 target_marked_set.end());
  std::vector<Csg> target_trees =
      FindTrees(target, target_costs, target_marked, options);

  std::vector<CmMappingCandidate> candidates;
  for (Csg& target_csg : target_trees) {
    std::set<int> tgt_nodes = target_csg.GraphNodeSet();
    std::set<int> source_marked_set;
    for (const auto& lc : lifted) {
      if (tgt_nodes.count(lc.target_node) > 0) {
        source_marked_set.insert(lc.source_node);
      }
    }
    if (source_marked_set.empty()) continue;
    std::vector<int> source_marked(source_marked_set.begin(),
                                   source_marked_set.end());
    std::vector<Csg> source_trees =
        FindTrees(source, source_costs, source_marked, options);

    for (Csg& source_csg : source_trees) {
      CmMappingCandidate cand;
      cand.source_csg = source_csg;
      cand.target_csg = target_csg;
      std::set<int> src_nodes = cand.source_csg.GraphNodeSet();
      for (size_t i = 0; i < lifted.size(); ++i) {
        if (src_nodes.count(lifted[i].source_node) > 0 &&
            tgt_nodes.count(lifted[i].target_node) > 0) {
          cand.covered.push_back(i);
        }
      }
      if (cand.covered.empty()) continue;
      if (options.use_semantic_type_filter) {
        bool incompatible = false;
        for (size_t a = 0; a < cand.covered.size() && !incompatible; ++a) {
          for (size_t b = a + 1; b < cand.covered.size(); ++b) {
            const auto& la = lifted[cand.covered[a]];
            const auto& lb = lifted[cand.covered[b]];
            Connection src_conn = TreeConnection(
                source, cand.source_csg,
                cand.source_csg.FindNodeIndex(la.source_node),
                cand.source_csg.FindNodeIndex(lb.source_node));
            Connection tgt_conn = TreeConnection(
                target, cand.target_csg,
                cand.target_csg.FindNodeIndex(la.target_node),
                cand.target_csg.FindNodeIndex(lb.target_node));
            auto identified = [&](const LiftedCmCorrespondence& lc) {
              int attr = target.FindAttributeNode(
                  target.node(lc.target_node).name, lc.target_attribute);
              return attr >= 0 && target.node(attr).is_key_attribute;
            };
            switch (JudgeConnections(src_conn, tgt_conn, identified(la),
                                     identified(lb))) {
              case Compat::kIncompatible:
                incompatible = true;
                break;
              case Compat::kDowngrade:
                ++cand.penalty;
                break;
              case Compat::kCompatible:
                break;
            }
            if (incompatible) break;
          }
        }
        if (incompatible) continue;
      }
      SEMAP_ASSIGN_OR_RETURN(
          cand.source_query,
          EncodeSide(source, cand.source_csg, lifted, cand.covered,
                     /*source_side=*/true));
      SEMAP_ASSIGN_OR_RETURN(
          cand.target_query,
          EncodeSide(target, cand.target_csg, lifted, cand.covered,
                     /*source_side=*/false));
      candidates.push_back(std::move(cand));
    }
  }

  // Keep, per covered set, the least-penalized candidates; sort best first.
  std::map<std::string, int> best_penalty;
  auto key_of = [](const CmMappingCandidate& c) {
    std::string key;
    for (size_t i : c.covered) key += std::to_string(i) + ",";
    return key;
  };
  for (const CmMappingCandidate& c : candidates) {
    auto it = best_penalty.find(key_of(c));
    if (it == best_penalty.end() || c.penalty < it->second) {
      best_penalty[key_of(c)] = c.penalty;
    }
  }
  std::erase_if(candidates, [&](const CmMappingCandidate& c) {
    return c.penalty > best_penalty[key_of(c)];
  });
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const CmMappingCandidate& a,
                      const CmMappingCandidate& b) {
                     if (a.covered.size() != b.covered.size()) {
                       return a.covered.size() > b.covered.size();
                     }
                     if (a.penalty != b.penalty) return a.penalty < b.penalty;
                     return a.source_csg.cost + a.target_csg.cost <
                            b.source_csg.cost + b.target_csg.cost;
                   });
  if (candidates.size() > options.max_candidates) {
    candidates.resize(options.max_candidates);
  }
  return candidates;
}

}  // namespace semap::disc
