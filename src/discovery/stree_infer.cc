#include "discovery/stree_infer.h"

#include <set>

#include "discovery/cost_model.h"
#include "discovery/tree_search.h"

namespace semap::disc {

Result<sem::STree> InferSTree(
    const cm::CmGraph& graph, const rel::Table& table_def,
    const std::map<std::string, AttributeHint>& hints,
    const DiscoveryOptions& options) {
  // Validate hints: every column hinted, every hint resolvable, no
  // attribute hinted twice (that would need concept copies).
  std::set<int> marked_set;
  std::set<std::pair<std::string, std::string>> used_attributes;
  for (const std::string& column : table_def.columns()) {
    auto it = hints.find(column);
    if (it == hints.end()) {
      return Status::InvalidArgument("no hint for column '" + column + "'");
    }
    const AttributeHint& hint = it->second;
    int node = graph.FindClassNode(hint.class_name);
    if (node < 0) {
      return Status::NotFound("unknown class '" + hint.class_name + "'");
    }
    if (graph.FindAttributeNode(hint.class_name, hint.attribute) < 0) {
      return Status::NotFound("class '" + hint.class_name +
                              "' has no attribute '" + hint.attribute + "'");
    }
    if (!used_attributes.insert({hint.class_name, hint.attribute}).second) {
      return Status::Unsupported(
          "attribute " + hint.class_name + "." + hint.attribute +
          " hinted by two columns: concept copies require a hand-written "
          "s-tree");
    }
    marked_set.insert(node);
  }
  std::vector<int> marked(marked_set.begin(), marked_set.end());

  // Minimal functional tree over the hinted classes; minimally-lossy
  // fallback mirrors the discoverer.
  CostModel costs(graph, {});
  TreeSearchOptions opts;
  opts.use_isa = options.use_isa;
  opts.max_results = 1;
  std::vector<Csg> trees = MinimalTrees(graph, costs, marked, opts);
  if (trees.empty() && options.allow_lossy) {
    opts.functional_only = false;
    trees = MinimalTrees(graph, costs, marked, opts);
  }
  if (trees.empty()) {
    return Status::NotFound(
        "the hinted classes are not connected in the CM graph");
  }
  const Csg& tree = trees[0];

  sem::STree stree;
  stree.table = table_def.name();
  for (size_t i = 0; i < tree.fragment.nodes.size(); ++i) {
    stree.nodes.push_back(
        {"n" + std::to_string(i), tree.fragment.nodes[i].graph_node});
  }
  for (const sem::Fragment::Edge& e : tree.fragment.edges) {
    stree.edges.push_back({e.from, e.to, e.graph_edge});
  }
  if (tree.root.has_value()) stree.anchor = tree.root;
  for (const std::string& column : table_def.columns()) {
    const AttributeHint& hint = hints.at(column);
    int node_idx = tree.FindNodeIndex(graph.FindClassNode(hint.class_name));
    stree.bindings.push_back({column, node_idx, hint.attribute});
  }
  SEMAP_RETURN_NOT_OK(stree.Validate(graph, table_def));
  return stree;
}

}  // namespace semap::disc
