#include "discovery/correspondence.h"

#include "util/lexer.h"

namespace semap::disc {

Result<std::vector<LiftedCorrespondence>> LiftCorrespondences(
    const sem::AnnotatedSchema& source, const sem::AnnotatedSchema& target,
    const std::vector<Correspondence>& correspondences,
    DiagnosticSink* sink) {
  std::vector<LiftedCorrespondence> out;
  out.reserve(correspondences.size());
  for (const Correspondence& corr : correspondences) {
    auto src = source.AttributeForColumn(corr.source);
    if (!src.has_value()) {
      if (sink != nullptr) {
        sink->Warning(diag::kUnliftableCorrespondence,
                      "no semantics for source column " +
                          corr.source.ToString() + "; skipping " +
                          corr.ToString(),
                      {}, "the correspondence still drives RIC-only rewrite");
        continue;
      }
      return Status::NotFound("no semantics for source column " +
                              corr.source.ToString());
    }
    auto tgt = target.AttributeForColumn(corr.target);
    if (!tgt.has_value()) {
      if (sink != nullptr) {
        sink->Warning(diag::kUnliftableCorrespondence,
                      "no semantics for target column " +
                          corr.target.ToString() + "; skipping " +
                          corr.ToString(),
                      {}, "the correspondence still drives RIC-only rewrite");
        continue;
      }
      return Status::NotFound("no semantics for target column " +
                              corr.target.ToString());
    }
    LiftedCorrespondence lifted;
    lifted.corr = corr;
    lifted.source_node = src->first;
    lifted.source_attribute = src->second;
    lifted.target_node = tgt->first;
    lifted.target_attribute = tgt->second;
    out.push_back(std::move(lifted));
  }
  return out;
}

std::map<int, std::vector<size_t>> MarkedNodes(
    const std::vector<LiftedCorrespondence>& lifted, bool source_side) {
  std::map<int, std::vector<size_t>> out;
  for (size_t i = 0; i < lifted.size(); ++i) {
    int node = source_side ? lifted[i].source_node : lifted[i].target_node;
    out[node].push_back(i);
  }
  return out;
}

bool NodesCorrespond(const std::vector<LiftedCorrespondence>& lifted,
                     int source_node, int target_node) {
  for (const LiftedCorrespondence& lc : lifted) {
    if (lc.source_node == source_node && lc.target_node == target_node) {
      return true;
    }
  }
  return false;
}

std::set<std::string> PreSelectedTables(
    const std::vector<Correspondence>& correspondences, bool source_side) {
  std::set<std::string> out;
  for (const Correspondence& corr : correspondences) {
    out.insert(source_side ? corr.source.table : corr.target.table);
  }
  return out;
}

namespace {

// One `src_table.col <-> tgt_table.col;` statement.
Result<Correspondence> ParseCorrStmt(TokenCursor& cur) {
  Correspondence corr;
  SEMAP_ASSIGN_OR_RETURN(corr.source.table, cur.ExpectIdentifier());
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct("."));
  SEMAP_ASSIGN_OR_RETURN(corr.source.column, cur.ExpectIdentifier());
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct("<->"));
  SEMAP_ASSIGN_OR_RETURN(corr.target.table, cur.ExpectIdentifier());
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct("."));
  SEMAP_ASSIGN_OR_RETURN(corr.target.column, cur.ExpectIdentifier());
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct(";"));
  return corr;
}

Result<std::vector<Correspondence>> ParseCorrespondencesStrict(
    std::string_view input) {
  SEMAP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  TokenCursor cur(std::move(tokens));
  std::vector<Correspondence> out;
  while (!cur.AtEnd()) {
    SEMAP_ASSIGN_OR_RETURN(Correspondence corr, ParseCorrStmt(cur));
    out.push_back(std::move(corr));
  }
  return out;
}

std::vector<Correspondence> ParseCorrespondencesLenientImpl(
    std::string_view input, DiagnosticSink& sink,
    std::vector<SourceSpan>* spans) {
  TokenCursor cur(TokenizeLenient(input, sink));
  std::vector<Correspondence> out;
  while (!cur.AtEnd()) {
    SourceSpan span = cur.SpanHere();
    auto corr = ParseCorrStmt(cur);
    if (!corr.ok()) {
      cur.DiagnoseHere(sink, corr.status());
      cur.SynchronizePast(";");
      continue;
    }
    out.push_back(std::move(*corr));
    if (spans != nullptr) spans->push_back(span);
  }
  return out;
}

}  // namespace

Result<std::vector<Correspondence>> ParseCorrespondences(
    std::string_view input, const ParseOptions& options,
    std::vector<SourceSpan>* spans) {
  if (options.mode == ParseMode::kLenient) {
    if (options.sink == nullptr) {
      return Status::InvalidArgument(
          "lenient parse requires ParseOptions::sink");
    }
    return ParseCorrespondencesLenientImpl(input, *options.sink, spans);
  }
  return ParseCorrespondencesStrict(input);
}

Result<std::vector<Correspondence>> ParseCorrespondences(
    std::string_view input) {
  return ParseCorrespondences(input, ParseOptions{});
}

std::vector<Correspondence> ParseCorrespondencesLenient(
    std::string_view input, DiagnosticSink& sink,
    std::vector<SourceSpan>* spans) {
  return *ParseCorrespondences(input, {ParseMode::kLenient, &sink}, spans);
}

}  // namespace semap::disc
