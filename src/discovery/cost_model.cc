#include "discovery/cost_model.h"

namespace semap::disc {

CostModel::CostModel(const cm::CmGraph& graph, std::set<int> pre_selected_edges)
    : graph_(graph), pre_selected_edges_(std::move(pre_selected_edges)) {
  // Sum of all functional-direction edge costs, + 1 so a single lossy edge
  // always loses to any all-functional alternative.
  int64_t total = 0;
  for (const cm::GraphEdge& e : graph.edges()) {
    if (e.kind == cm::EdgeKind::kAttribute) continue;
    if (e.IsFunctional()) {
      total += (e.kind == cm::EdgeKind::kRole) ? kUnitEdgeCost / 2
                                               : kUnitEdgeCost;
    }
  }
  lossy_penalty_ = total + 1;
}

int64_t CostModel::EdgeCost(int edge_id) const {
  const cm::GraphEdge& e = graph_.edge(edge_id);
  int64_t base;
  if (pre_selected_edges_.count(edge_id) > 0) {
    base = 0;
  } else if (e.kind == cm::EdgeKind::kRole) {
    base = kUnitEdgeCost / 2;
  } else {
    base = kUnitEdgeCost;
  }
  if (!e.IsFunctional()) base += lossy_penalty_;
  return base;
}

}  // namespace semap::disc
