// Edge-cost model for CSG search, per Sections 3.2 and 3.3:
//
//  * edges belonging to pre-selected s-trees cost nothing — columns in the
//    same table represent particularly relevant connections;
//  * a role edge costs half a normal edge, so a two-role passage through a
//    reified relationship counts as a path of length one;
//  * ISA edges count like functional relationship edges;
//  * a non-functional traversal direction costs more than the sum of all
//    functional edges in the graph (Wald–Sorenson), so lossy joins are
//    taken only when nothing functional exists.
#ifndef SEMAP_DISCOVERY_COST_MODEL_H_
#define SEMAP_DISCOVERY_COST_MODEL_H_

#include <cstdint>
#include <set>

#include "cm/graph.h"

namespace semap::disc {

/// Cost of one normal functional edge (role edges cost half of this).
inline constexpr int64_t kUnitEdgeCost = 2;

class CostModel {
 public:
  /// `pre_selected_edges`: graph edge ids (including inverse partners)
  /// belonging to the pre-selected s-trees.
  CostModel(const cm::CmGraph& graph, std::set<int> pre_selected_edges);

  /// Traversal cost of edge `edge_id` in its own direction.
  int64_t EdgeCost(int edge_id) const;

  /// The penalty added to every non-functional traversal; strictly larger
  /// than the sum of all functional edge costs in the graph.
  int64_t LossyPenalty() const { return lossy_penalty_; }

  bool IsPreSelected(int edge_id) const {
    return pre_selected_edges_.count(edge_id) > 0;
  }

 private:
  const cm::CmGraph& graph_;
  std::set<int> pre_selected_edges_;
  int64_t lossy_penalty_ = 0;
};

}  // namespace semap::disc

#endif  // SEMAP_DISCOVERY_COST_MODEL_H_
