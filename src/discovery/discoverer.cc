#include "discovery/discoverer.h"

#include <algorithm>
#include <limits>
#include <map>

#include "util/string_util.h"

namespace semap::disc {

int MappingCandidate::AttachNode(size_t lifted_index, int graph_node,
                                 bool source_side) const {
  const std::map<size_t, int>& attachments =
      source_side ? source_attachments : target_attachments;
  auto it = attachments.find(lifted_index);
  if (it != attachments.end()) return it->second;
  return (source_side ? source_csg : target_csg).FindNodeIndex(graph_node);
}

std::string MappingCandidate::ToString(const cm::CmGraph& source_graph,
                                       const cm::CmGraph& target_graph) const {
  return "candidate{source=" + source_csg.ToString(source_graph) +
         ", target=" + target_csg.ToString(target_graph) +
         ", covered=" + std::to_string(covered.size()) +
         ", penalty=" + std::to_string(penalty) + "}";
}

ReifiedCategory CategoryOfReified(const cm::CmGraph& graph, int node) {
  int non_functional_roles = 0;
  for (int eid : graph.OutEdges(node)) {
    const cm::GraphEdge& e = graph.edge(eid);
    if (e.kind != cm::EdgeKind::kRole || e.inverted) continue;
    // The participation constraint lives on the inverse role edge.
    const cm::GraphEdge& inv = graph.edge(e.partner);
    if (!inv.IsFunctional()) ++non_functional_roles;
  }
  if (non_functional_roles >= 2) return ReifiedCategory::kManyToMany;
  if (non_functional_roles == 1) return ReifiedCategory::kManyToOne;
  return ReifiedCategory::kOneToOne;
}

Discoverer::Discoverer(const sem::AnnotatedSchema& source,
                       const sem::AnnotatedSchema& target,
                       std::vector<Correspondence> correspondences,
                       DiscoveryOptions options, const exec::RunContext& ctx)
    : source_(source),
      target_(target),
      correspondences_(std::move(correspondences)),
      options_(options),
      ctx_(ctx) {
  // Deprecated per-pointer options are honored when the context lacks the
  // corresponding service, so both construction styles behave alike.
  if (ctx_.governor == nullptr) ctx_.governor = options_.governor;
  if (ctx_.sink == nullptr) ctx_.sink = options_.sink;
}

Discoverer::Discoverer(const sem::AnnotatedSchema& source,
                       const sem::AnnotatedSchema& target,
                       std::vector<Correspondence> correspondences,
                       DiscoveryOptions options)
    : Discoverer(source, target, std::move(correspondences), options,
                 exec::RunContext{}) {}

namespace {

/// Graph edges (including partners) of the pre-selected s-trees on one
/// side.
std::set<int> PreSelectedEdges(const sem::AnnotatedSchema& side,
                               const std::set<std::string>& tables) {
  std::set<int> out;
  for (const std::string& table : tables) {
    const sem::STree* stree = side.FindSemantics(table);
    if (stree == nullptr) continue;
    std::set<int> edges = stree->GraphEdges(side.graph());
    out.insert(edges.begin(), edges.end());
  }
  return out;
}

/// Best-coverage partial trees: used when no single tree covers all marked
/// nodes. Keeps trees maximizing covered terminals, then minimal cost.
std::vector<Csg> BestPartialTrees(const cm::CmGraph& graph,
                                  const CostModel& costs,
                                  const std::vector<int>& terminals,
                                  const TreeSearchOptions& opts,
                                  const exec::RunContext& ctx) {
  std::vector<std::pair<size_t, Csg>> scored;  // (covered count, tree)
  for (int root : graph.ClassNodes()) {
    if (!ctx.Charge()) break;
    std::vector<int> uncovered;
    std::optional<Csg> tree =
        GrowTree(graph, costs, root, terminals, opts, ctx, &uncovered);
    if (!tree.has_value()) continue;
    scored.push_back({terminals.size() - uncovered.size(), std::move(*tree)});
  }
  if (scored.empty()) return {};
  size_t best_cov = 0;
  for (const auto& [cov, tree] : scored) best_cov = std::max(best_cov, cov);
  int64_t best_cost = std::numeric_limits<int64_t>::max();
  for (const auto& [cov, tree] : scored) {
    if (cov == best_cov) best_cost = std::min(best_cost, tree.cost);
  }
  std::vector<Csg> out;
  std::vector<std::set<int>> seen;
  for (auto& [cov, tree] : scored) {
    if (cov != best_cov || tree.cost != best_cost) continue;
    std::set<int> key = tree.UndirectedEdgeSet(graph);
    bool dup = false;
    for (const std::set<int>& s : seen) {
      if (s == key) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      seen.push_back(std::move(key));
      out.push_back(std::move(tree));
      if (out.size() >= opts.max_results) break;
    }
  }
  return out;
}

}  // namespace

std::vector<Csg> Discoverer::FindTargetCsgs(
    const CostModel& target_costs) const {
  std::set<std::string> tables = PreSelectedTables(correspondences_, false);
  // Case A: a single pre-selected target table -> its s-tree is the CSG.
  if (tables.size() == 1) {
    const sem::STree* stree = target_.FindSemantics(*tables.begin());
    if (stree != nullptr) {
      return {CsgFromSTree(target_.graph(), *stree)};
    }
  }
  // Case B: connect the marked target nodes by minimal functional trees.
  std::vector<int> marked;
  for (const auto& [node, idx] : MarkedNodes(lifted_, /*source_side=*/false)) {
    marked.push_back(node);
  }
  TreeSearchOptions opts;
  opts.functional_only = true;
  opts.use_isa = options_.use_isa;
  opts.max_results = options_.max_trees_per_side;
  std::vector<Csg> trees =
      MinimalTrees(target_.graph(), target_costs, marked, opts, ctx_);
  if (trees.empty() && options_.allow_lossy) {
    opts.functional_only = false;
    trees = MinimalTrees(target_.graph(), target_costs, marked, opts, ctx_);
  }
  if (trees.empty()) {
    // Fall back to the pre-selected s-trees individually; each covers a
    // subset of the correspondences.
    for (const std::string& table : tables) {
      const sem::STree* stree = target_.FindSemantics(table);
      if (stree != nullptr) {
        trees.push_back(CsgFromSTree(target_.graph(), *stree));
      }
    }
  }
  return trees;
}

std::vector<Csg> Discoverer::FindSourceCsgs(
    const Csg& target_csg, const std::vector<int>& marked_source,
    bool target_many_to_many, const CostModel& source_costs) const {
  const cm::CmGraph& graph = source_.graph();
  TreeSearchOptions opts;
  opts.use_isa = options_.use_isa;
  opts.max_results = options_.max_trees_per_side;
  // Functional trees suffice for functional targets; many-to-many targets
  // may require minimally-lossy connections (Example 3.2).
  opts.functional_only = !(target_many_to_many && options_.allow_lossy);

  std::vector<Csg> out;
  // Case A.1: roots corresponding to the target anchor.
  if (target_csg.root.has_value()) {
    int anchor_graph_node =
        target_csg.fragment.nodes[static_cast<size_t>(*target_csg.root)]
            .graph_node;
    std::vector<Csg> anchored;
    for (int s : graph.ClassNodes()) {
      if (!ctx_.Charge()) break;
      if (!NodesCorrespond(lifted_, s, anchor_graph_node)) continue;
      std::vector<int> uncovered;
      std::vector<Csg> trees = GrowAllTrees(
          graph, source_costs, s, marked_source, opts, ctx_, &uncovered);
      if (!uncovered.empty()) continue;
      for (Csg& tree : trees) anchored.push_back(std::move(tree));
    }
    if (options_.use_disjointness_filter) {
      const size_t before = anchored.size();
      std::erase_if(anchored, [&](const Csg& c) {
        if (!HasDisjointnessViolation(graph, c)) return false;
        RecordCsgRejection(c, "anchored source tree violates a disjointness "
                              "constraint");
        return true;
      });
      ctx_.Count("discovery.pruned.disjointness",
                 static_cast<int64_t>(before - anchored.size()));
    }
    if (!anchored.empty()) {
      int64_t best = std::numeric_limits<int64_t>::max();
      for (const Csg& c : anchored) best = std::min(best, c.cost);
      for (Csg& c : anchored) {
        if (c.cost == best) out.push_back(std::move(c));
      }
      return out;
    }
  }
  // Case A.2: minimal functional trees over all roots.
  auto consistent_trees = [&](const std::vector<int>& terminals,
                              const std::set<int>& excluded) {
    TreeSearchOptions local = opts;
    local.excluded_nodes = excluded;
    std::vector<Csg> trees =
        MinimalTrees(graph, source_costs, terminals, local, ctx_);
    if (trees.empty() && local.functional_only && options_.allow_lossy) {
      // "passing, if necessary, through non-functional edges".
      TreeSearchOptions lossy = local;
      lossy.functional_only = false;
      trees = MinimalTrees(graph, source_costs, terminals, lossy, ctx_);
    }
    if (options_.use_disjointness_filter) {
      const size_t before = trees.size();
      std::erase_if(trees, [&](const Csg& c) {
        if (!HasDisjointnessViolation(graph, c)) return false;
        RecordCsgRejection(c, "minimal source tree violates a disjointness "
                              "constraint");
        return true;
      });
      ctx_.Count("discovery.pruned.disjointness",
                 static_cast<int64_t>(before - trees.size()));
    }
    return trees;
  };
  out = consistent_trees(marked_source, {});
  if (!out.empty()) return out;

  // No consistent tree covers every marked node (e.g. the only full
  // connection asserts membership in two disjoint classes). Per Case A,
  // "the correspondences will be split among the tree and the remaining
  // unconnected nodes": return consistent trees over maximal proper
  // subsets of the marked nodes instead.
  if (marked_source.size() > 2) {
    for (size_t skip = 0; skip < marked_source.size(); ++skip) {
      if (!ctx_.Charge()) break;
      std::vector<int> subset;
      for (size_t i = 0; i < marked_source.size(); ++i) {
        if (i != skip) subset.push_back(marked_source[i]);
      }
      // The split-away node must stay out, or the tree degenerates back to
      // the full (inconsistent) connection.
      std::vector<Csg> trees =
          consistent_trees(subset, {marked_source[skip]});
      for (Csg& tree : trees) {
        out.push_back(std::move(tree));
        if (out.size() >= options_.max_trees_per_side) return out;
      }
    }
    if (!out.empty()) return out;
  }
  out = BestPartialTrees(graph, source_costs, marked_source, opts, ctx_);
  if (options_.use_disjointness_filter) {
    const size_t before = out.size();
    std::erase_if(out, [&](const Csg& c) {
      if (!HasDisjointnessViolation(graph, c)) return false;
      RecordCsgRejection(c, "best-coverage partial tree violates a "
                            "disjointness constraint");
      return true;
    });
    ctx_.Count("discovery.pruned.disjointness",
               static_cast<int64_t>(before - out.size()));
  }
  return out;
}

void Discoverer::RecordCsgRejection(const Csg& csg,
                                    const std::string& detail) const {
  if (ctx_.provenance == nullptr) return;
  obs::RejectionRecord rejection;
  rejection.candidate = csg.ToString(source_.graph());
  rejection.filter = "disjointness";
  rejection.detail = detail;
  ctx_.provenance->RecordRejection(std::move(rejection));
}

void Discoverer::RecordCandidateRejection(const MappingCandidate& cand,
                                          const std::string& filter,
                                          const std::string& detail) const {
  if (ctx_.provenance == nullptr) return;
  obs::RejectionRecord rejection;
  rejection.candidate = cand.ToString(source_.graph(), target_.graph());
  rejection.filter = filter;
  rejection.detail = detail;
  rejection.covered = cand.covered.size();
  rejection.penalty = cand.penalty;
  ctx_.provenance->RecordRejection(std::move(rejection));
}

bool Discoverer::AssembleCandidate(Csg source_csg, const Csg& target_csg,
                                   MappingCandidate* out) const {
  const cm::CmGraph& src_graph = source_.graph();
  const cm::CmGraph& tgt_graph = target_.graph();
  MappingCandidate cand;
  cand.source_csg = std::move(source_csg);
  cand.target_csg = target_csg;
  if (out != nullptr) {
    cand.source_attachments = out->source_attachments;
    cand.target_attachments = out->target_attachments;
  }

  std::set<int> src_nodes = cand.source_csg.GraphNodeSet();
  std::set<int> tgt_nodes = cand.target_csg.GraphNodeSet();
  for (size_t i = 0; i < lifted_.size(); ++i) {
    if (src_nodes.count(lifted_[i].source_node) > 0 &&
        tgt_nodes.count(lifted_[i].target_node) > 0) {
      cand.covered.push_back(i);
    }
  }
  if (cand.covered.empty()) return false;

  if (options_.use_disjointness_filter &&
      (HasDisjointnessViolation(src_graph, cand.source_csg) ||
       HasDisjointnessViolation(tgt_graph, cand.target_csg))) {
    ctx_.Count("discovery.pruned.disjointness");
    RecordCandidateRejection(cand, "disjointness",
                             "paired CSGs assert membership in disjoint "
                             "classes");
    return false;
  }

  if (options_.use_semantic_type_filter) {
    // Pairwise connection compatibility between covered correspondences.
    for (size_t a = 0; a < cand.covered.size(); ++a) {
      for (size_t b = a + 1; b < cand.covered.size(); ++b) {
        const LiftedCorrespondence& la = lifted_[cand.covered[a]];
        const LiftedCorrespondence& lb = lifted_[cand.covered[b]];
        Connection src_conn = TreeConnection(
            src_graph, cand.source_csg,
            cand.AttachNode(cand.covered[a], la.source_node, true),
            cand.AttachNode(cand.covered[b], lb.source_node, true));
        Connection tgt_conn = TreeConnection(
            tgt_graph, cand.target_csg,
            cand.AttachNode(cand.covered[a], la.target_node, false),
            cand.AttachNode(cand.covered[b], lb.target_node, false));
        auto identified = [&](const LiftedCorrespondence& lc) {
          int attr = tgt_graph.FindAttributeNode(
              tgt_graph.node(lc.target_node).name, lc.target_attribute);
          return attr >= 0 && tgt_graph.node(attr).is_key_attribute;
        };
        switch (JudgeConnections(src_conn, tgt_conn, identified(la),
                                 identified(lb))) {
          case Compat::kIncompatible:
            ctx_.Count("discovery.pruned.semantic_type");
            RecordCandidateRejection(
                cand, "semantic-type",
                "incompatible connection between " + la.corr.ToString() +
                    " and " + lb.corr.ToString() +
                    " (source cardinality cannot populate the identified "
                    "functional target)");
            return false;
          case Compat::kDowngrade:
            ctx_.Count("discovery.downgrades");
            ++cand.penalty;
            break;
          case Compat::kCompatible:
            break;
        }
      }
    }
    // Reified-anchor preferences: a reified target anchor prefers a
    // similarly rooted source tree with the same category / arity /
    // semantic type.
    if (cand.target_csg.root.has_value() && cand.source_csg.root.has_value()) {
      const cm::GraphNode& t_root = tgt_graph.node(
          cand.target_csg.fragment
              .nodes[static_cast<size_t>(*cand.target_csg.root)]
              .graph_node);
      const cm::GraphNode& s_root = src_graph.node(
          cand.source_csg.fragment
              .nodes[static_cast<size_t>(*cand.source_csg.root)]
              .graph_node);
      if (t_root.reified) {
        if (!s_root.reified) {
          ++cand.penalty;
        } else {
          if (CategoryOfReified(tgt_graph, t_root.id) !=
              CategoryOfReified(src_graph, s_root.id)) {
            ++cand.penalty;
          }
          if (t_root.arity != s_root.arity) ++cand.penalty;
          if (t_root.semantic_type != s_root.semantic_type) ++cand.penalty;
        }
      }
    }
  }

  *out = std::move(cand);
  return true;
}

Result<std::vector<MappingCandidate>> Discoverer::Run() {
  {
    obs::Span span = ctx_.Span("stree_inference");
    SEMAP_ASSIGN_OR_RETURN(lifted_,
                           LiftCorrespondences(source_, target_,
                                               correspondences_,
                                               ctx_.sink));
    span.AddAttr("lifted", static_cast<int64_t>(lifted_.size()));
  }
  ctx_.Count("discovery.correspondences_lifted",
             static_cast<int64_t>(lifted_.size()));
  ctx_.Count("discovery.correspondences_unliftable",
             static_cast<int64_t>(correspondences_.size() - lifted_.size()));
  if (lifted_.empty()) {
    if (ctx_.sink != nullptr && !correspondences_.empty()) {
      // Every correspondence was skipped as unliftable (already reported
      // to the sink): a clean empty answer, so the caller can degrade to
      // the RIC baseline instead of aborting.
      return std::vector<MappingCandidate>();
    }
    return Status::InvalidArgument("no correspondences given");
  }

  CostModel source_costs(
      source_.graph(),
      PreSelectedEdges(source_, PreSelectedTables(correspondences_, true)));
  CostModel target_costs(
      target_.graph(),
      PreSelectedEdges(target_, PreSelectedTables(correspondences_, false)));

  std::vector<MappingCandidate> candidates;
  std::set<std::string> seen_keys;
  auto push_candidate = [&](MappingCandidate cand) {
    // Dedup by (source edges+nodes, target edges+nodes, covered set).
    std::string key;
    for (int n : cand.source_csg.GraphNodeSet()) key += std::to_string(n) + ",";
    key += "|";
    for (int e : cand.source_csg.UndirectedEdgeSet(source_.graph())) {
      key += std::to_string(e) + ",";
    }
    key += "||";
    for (int n : cand.target_csg.GraphNodeSet()) key += std::to_string(n) + ",";
    key += "|";
    for (int e : cand.target_csg.UndirectedEdgeSet(target_.graph())) {
      key += std::to_string(e) + ",";
    }
    key += "||";
    for (size_t i : cand.covered) key += std::to_string(i) + ",";
    if (seen_keys.insert(key).second) candidates.push_back(std::move(cand));
  };

  // Attachments pin a correspondence to the s-tree *copy* its column is
  // bound to (e.g. pers.pid vs pers.spousePid both reach Person but bind
  // different copies).
  auto stree_attachments = [&](const sem::AnnotatedSchema& side,
                               const std::string& table, bool source_side) {
    std::map<size_t, int> out;
    const sem::STree* stree = side.FindSemantics(table);
    if (stree == nullptr) return out;
    for (size_t i = 0; i < lifted_.size(); ++i) {
      const rel::ColumnRef& ref =
          source_side ? lifted_[i].corr.source : lifted_[i].corr.target;
      if (ref.table != table) continue;
      const sem::ColumnBinding* binding = stree->FindBinding(ref.column);
      if (binding != nullptr) out[i] = binding->node;
    }
    return out;
  };

  // Target Case A attachments (the target CSG is a single table's s-tree).
  std::map<size_t, int> target_attachments;
  {
    std::set<std::string> target_tables =
        PreSelectedTables(correspondences_, false);
    if (target_tables.size() == 1) {
      target_attachments =
          stree_attachments(target_, *target_tables.begin(), false);
    }
  }

  std::vector<Csg> target_csgs;
  {
    obs::Span span = ctx_.Span("tree_search");
    target_csgs = FindTargetCsgs(target_costs);
    span.AddAttr("target_csgs", static_cast<int64_t>(target_csgs.size()));
  }
  ctx_.Count("discovery.target_csgs",
             static_cast<int64_t>(target_csgs.size()));
  obs::Span pairing_span = ctx_.Span("csg_pairing");
  size_t targets_paired = 0;
  for (const Csg& target_csg : target_csgs) {
    if (!ctx_.Charge()) break;
    ++targets_paired;
    // Marked source nodes restricted to correspondences this target CSG
    // covers.
    std::set<int> tgt_nodes = target_csg.GraphNodeSet();
    std::set<int> marked_set;
    std::set<std::string> covered_source_tables;
    for (const LiftedCorrespondence& lc : lifted_) {
      if (tgt_nodes.count(lc.target_node) > 0) {
        marked_set.insert(lc.source_node);
        covered_source_tables.insert(lc.corr.source.table);
      }
    }
    if (marked_set.empty()) continue;
    std::vector<int> marked_source(marked_set.begin(), marked_set.end());

    bool target_mn = target_csg.lossy_edges > 0 || !target_csg.root.has_value();
    if (target_csg.root.has_value()) {
      const cm::GraphNode& root_node = target_.graph().node(
          target_csg.fragment.nodes[static_cast<size_t>(*target_csg.root)]
              .graph_node);
      if (root_node.reified &&
          CategoryOfReified(target_.graph(), root_node.id) !=
              ReifiedCategory::kOneToOne) {
        target_mn = true;
      }
    }

    // Symmetric Case A on the source: when every covered source column
    // comes from one table with semantics, that table's s-tree *is* the
    // source CSG (it carries the concept copies no graph search can
    // reconstruct).
    std::vector<Csg> source_csgs;
    std::map<size_t, int> source_attachments;
    if (covered_source_tables.size() == 1) {
      const sem::STree* stree =
          source_.FindSemantics(*covered_source_tables.begin());
      if (stree != nullptr) {
        source_csgs.push_back(CsgFromSTree(source_.graph(), *stree));
        source_attachments = stree_attachments(
            source_, *covered_source_tables.begin(), true);
      }
    }
    if (source_csgs.empty()) {
      source_csgs =
          FindSourceCsgs(target_csg, marked_source, target_mn, source_costs);
    }
    ctx_.Count("discovery.source_csgs",
               static_cast<int64_t>(source_csgs.size()));
    for (Csg& source_csg : source_csgs) {
      if (!ctx_.Charge()) break;
      MappingCandidate cand;
      cand.source_attachments = source_attachments;
      cand.target_attachments = target_attachments;
      if (AssembleCandidate(std::move(source_csg), target_csg, &cand)) {
        push_candidate(std::move(cand));
      }
    }
  }
  // A tripped governor ends enumeration, never discovery: the candidates
  // assembled before the budget ran out are filtered and ranked normally
  // below, and the governor records what was left unexplored.
  if (ctx_.Exhausted() && targets_paired < target_csgs.size()) {
    ctx_.governor->NoteTruncation(
        "Discoverer: paired " + std::to_string(targets_paired) + "/" +
        std::to_string(target_csgs.size()) + " target CSGs");
    if (ctx_.provenance != nullptr) {
      obs::RejectionRecord rejection;
      rejection.candidate = std::to_string(target_csgs.size() -
                                           targets_paired) +
                            " unpaired target CSG(s)";
      rejection.filter = "budget";
      rejection.detail = "search budget exhausted after pairing " +
                         std::to_string(targets_paired) + "/" +
                         std::to_string(target_csgs.size()) + " target CSGs";
      ctx_.provenance->RecordRejection(std::move(rejection));
    }
  }
  pairing_span.AddAttr("candidates",
                       static_cast<int64_t>(candidates.size()));
  pairing_span.End();
  ctx_.Count("discovery.candidates_assembled",
             static_cast<int64_t>(candidates.size()));

  obs::Span filter_span = ctx_.Span("filtering");
  const size_t assembled = candidates.size();
  // Keep, per covered-correspondence set, only the least-penalized
  // candidates ("eliminated or downgraded", Example 1.3).
  std::map<std::string, int> best_penalty;
  auto covered_key = [](const MappingCandidate& c) {
    std::string key;
    for (size_t i : c.covered) key += std::to_string(i) + ",";
    return key;
  };
  for (const MappingCandidate& c : candidates) {
    std::string key = covered_key(c);
    auto it = best_penalty.find(key);
    if (it == best_penalty.end() || c.penalty < it->second) {
      best_penalty[key] = c.penalty;
    }
  }
  std::erase_if(candidates, [&](const MappingCandidate& c) {
    const int best = best_penalty[covered_key(c)];
    if (c.penalty <= best) return false;
    RecordCandidateRejection(
        c, "penalty",
        "penalty " + std::to_string(c.penalty) + " beaten by " +
            std::to_string(best) + " for the same covered set");
    return true;
  });

  // Best first: more coverage, lower penalty, lower combined cost.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const MappingCandidate& a, const MappingCandidate& b) {
                     if (a.covered.size() != b.covered.size()) {
                       return a.covered.size() > b.covered.size();
                     }
                     if (a.penalty != b.penalty) return a.penalty < b.penalty;
                     return a.source_csg.cost + a.target_csg.cost <
                            b.source_csg.cost + b.target_csg.cost;
                   });
  ctx_.Count("discovery.pruned.penalty",
             static_cast<int64_t>(assembled - candidates.size()));
  if (candidates.size() > options_.max_candidates) {
    ctx_.Count("discovery.pruned.candidate_cap",
               static_cast<int64_t>(candidates.size() -
                                    options_.max_candidates));
    for (size_t i = options_.max_candidates; i < candidates.size(); ++i) {
      RecordCandidateRejection(
          candidates[i], "candidate-cap",
          "ranked #" + std::to_string(i + 1) + ", below the max_candidates=" +
              std::to_string(options_.max_candidates) + " cutoff");
    }
    candidates.resize(options_.max_candidates);
  }
  filter_span.AddAttr("kept", static_cast<int64_t>(candidates.size()));
  filter_span.End();
  ctx_.Count("discovery.candidates_returned",
             static_cast<int64_t>(candidates.size()));
  return candidates;
}

}  // namespace semap::disc
