// The paper's core algorithm (Section 3): from lifted correspondences,
// discover pairs of semantically similar conceptual subgraphs.
//
// Case A: when all corresponded target columns fall in one table, the
// target CSG is that table's s-tree; source CSGs are grown from roots
// corresponding to the target anchor (A.1) or, failing that, as minimal
// functional trees over the marked source nodes (A.2).
// Case B: corresponded target columns spanning several tables first get
// their own minimal functional trees in the target.
// Reified targets (e.g. many-to-many relationship tables) prefer similarly
// rooted source trees (same category / arity / semantic type) and fall
// back to minimally-lossy connections (Example 3.2).
#ifndef SEMAP_DISCOVERY_DISCOVERER_H_
#define SEMAP_DISCOVERY_DISCOVERER_H_

#include <map>
#include <string>
#include <vector>

#include "discovery/compat.h"
#include "discovery/correspondence.h"
#include "discovery/cost_model.h"
#include "discovery/csg.h"
#include "discovery/tree_search.h"
#include "semantics/stree.h"
#include "util/result.h"

namespace semap::disc {

struct DiscoveryOptions {
  /// Ablation: traverse ISA edges (the paper's main recall advantage).
  bool use_isa = true;
  /// Ablation: eliminate CSGs made unsatisfiable by disjointness.
  bool use_disjointness_filter = true;
  /// Ablation: cardinality/partOf compatibility filtering between paired
  /// connections (the paper's main precision advantage).
  bool use_semantic_type_filter = true;
  /// Permit minimally-lossy (non-functional) connections when functional
  /// trees cannot cover the marked nodes or the target is many-to-many.
  bool allow_lossy = true;
  /// Cap on returned candidates.
  size_t max_candidates = 8;
  /// Cap on trees enumerated per side.
  size_t max_trees_per_side = 8;
  /// Deprecated: pass an exec::RunContext to the Discoverer instead. Both
  /// pointers are honored (when the context lacks them) so pre-RunContext
  /// call sites keep working unchanged. The governor is shared with every
  /// tree search this discovery spawns — when it trips, Run() returns the
  /// candidates assembled so far instead of an error; with a sink set, a
  /// correspondence whose column has no semantics is skipped with a
  /// kUnliftableCorrespondence warning instead of failing the run.
  ResourceGovernor* governor = nullptr;
  DiagnosticSink* sink = nullptr;
};

/// \brief A conceptual mapping candidate: a pair of semantically similar
/// CSGs plus the correspondences the pair covers.
struct MappingCandidate {
  Csg source_csg;
  Csg target_csg;
  std::vector<size_t> covered;  // indices into the lifted correspondences
  int penalty = 0;              // semantic-similarity downgrades
  /// When a CSG comes from a table's s-tree, correspondences attach to the
  /// *copy* their column is bound to (lifted index -> fragment node
  /// index); without an entry the first fragment node of the class is
  /// used. This is what keeps pers(pid, spousePid)-style recursive tables
  /// from collapsing both columns onto one instance.
  std::map<size_t, int> source_attachments;
  std::map<size_t, int> target_attachments;

  /// Fragment node realizing lifted correspondence `lifted_index` on the
  /// chosen side, honoring attachments.
  int AttachNode(size_t lifted_index, int graph_node, bool source_side) const;

  std::string ToString(const cm::CmGraph& source_graph,
                       const cm::CmGraph& target_graph) const;
};

class Discoverer {
 public:
  /// The RunContext carries the run's governor, diagnostic sink, tracer
  /// and metrics; Run() emits one span per discovery phase
  /// (stree_inference, tree_search, csg_pairing, filtering) when tracing
  /// is enabled. See docs/OBSERVABILITY.md for the span/counter taxonomy.
  Discoverer(const sem::AnnotatedSchema& source,
             const sem::AnnotatedSchema& target,
             std::vector<Correspondence> correspondences,
             DiscoveryOptions options, const exec::RunContext& ctx);

  /// Deprecated compat: builds the context from options.governor /
  /// options.sink (no tracing, no metrics).
  Discoverer(const sem::AnnotatedSchema& source,
             const sem::AnnotatedSchema& target,
             std::vector<Correspondence> correspondences,
             DiscoveryOptions options = {});

  /// Run discovery; candidates come back sorted best-first (more coverage,
  /// lower penalty, lower cost).
  Result<std::vector<MappingCandidate>> Run();

  /// Lifted correspondences (valid after Run()).
  const std::vector<LiftedCorrespondence>& lifted() const { return lifted_; }

 private:
  /// Source CSG candidates for one target CSG.
  std::vector<Csg> FindSourceCsgs(const Csg& target_csg,
                                  const std::vector<int>& marked_source,
                                  bool target_many_to_many,
                                  const CostModel& source_costs) const;

  /// Target CSGs per Case A / Case B.
  std::vector<Csg> FindTargetCsgs(const CostModel& target_costs) const;

  /// Assemble, filter and score a candidate; false to drop it.
  bool AssembleCandidate(Csg source_csg, const Csg& target_csg,
                         MappingCandidate* out) const;

  /// Provenance capture for pruned source trees / assembled candidates;
  /// no-ops (no string rendering) when ctx_ carries no recorder.
  void RecordCsgRejection(const Csg& csg, const std::string& detail) const;
  void RecordCandidateRejection(const MappingCandidate& cand,
                                const std::string& filter,
                                const std::string& detail) const;

  const sem::AnnotatedSchema& source_;
  const sem::AnnotatedSchema& target_;
  std::vector<Correspondence> correspondences_;
  DiscoveryOptions options_;
  exec::RunContext ctx_;
  std::vector<LiftedCorrespondence> lifted_;
};

/// \brief Category of a reified relationship node, read off the
/// participation constraints on its role inverses.
enum class ReifiedCategory { kManyToMany, kManyToOne, kOneToOne };

ReifiedCategory CategoryOfReified(const cm::CmGraph& graph, int node);

}  // namespace semap::disc

#endif  // SEMAP_DISCOVERY_DISCOVERER_H_
