// Convenience builder for s-trees: resolves class / relationship / role /
// ISA names against a CmGraph, including the sugar of naming a
// many-to-many binary relationship directly — the builder inserts the
// auto-reified node and both role edges.
#ifndef SEMAP_SEMANTICS_STREE_BUILDER_H_
#define SEMAP_SEMANTICS_STREE_BUILDER_H_

#include <string>

#include "semantics/stree.h"
#include "util/result.h"

namespace semap::sem {

class STreeBuilder {
 public:
  STreeBuilder(const cm::CmGraph& graph, std::string table)
      : graph_(graph) {
    tree_.table = std::move(table);
  }

  /// Declare node `alias` of class `class_name`. The name may be a declared
  /// class, an explicit reified-relationship class, or the name of a
  /// many-to-many binary relationship (resolving to its auto-reified node).
  Status AddNode(const std::string& alias, const std::string& class_name);

  /// Connect two declared nodes with the relationship / role / "isa" edge
  /// called `name`. For a many-to-many binary relationship this inserts an
  /// implicit auto-reified node ("<name>$<k>") plus the two role edges.
  Status AddEdge(const std::string& name, const std::string& alias_a,
                 const std::string& alias_b);

  Status SetAnchor(const std::string& alias);

  Status BindColumn(const std::string& column, const std::string& alias,
                    const std::string& attribute);

  /// Number of nodes added so far (for generating fresh aliases).
  size_t NodeCount() const { return tree_.nodes.size(); }

  /// The finished tree. Structural validation happens when the tree is
  /// attached to an AnnotatedSchema.
  STree Build() && { return std::move(tree_); }

 private:
  Result<int> RequireNode(const std::string& alias) const;
  /// Add an s-tree edge for graph edge `graph_edge` oriented from
  /// `from_idx` to `to_idx`.
  void PushEdge(int from_idx, int to_idx, int graph_edge);

  const cm::CmGraph& graph_;
  STree tree_;
  int implicit_counter_ = 0;
};

}  // namespace semap::sem

#endif  // SEMAP_SEMANTICS_STREE_BUILDER_H_
