#include "semantics/encoder.h"

#include <map>
#include <numeric>

namespace semap::sem {

using logic::Atom;
using logic::ConjunctiveQuery;
using logic::Term;

namespace {

/// Union-find over fragment node indices; ISA edges merge variables.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

Result<ConjunctiveQuery> EncodeFragment(const cm::CmGraph& graph,
                                        const Fragment& fragment,
                                        const std::vector<std::string>& head_vars,
                                        const std::string& head_predicate,
                                        std::vector<std::string>* var_of_node_out) {
  const size_t n = fragment.nodes.size();
  for (const Fragment::Edge& e : fragment.edges) {
    if (e.from < 0 || static_cast<size_t>(e.from) >= n || e.to < 0 ||
        static_cast<size_t>(e.to) >= n) {
      return Status::InvalidArgument("fragment edge index out of range");
    }
    const cm::GraphEdge& ge = graph.edge(e.graph_edge);
    if (ge.from != fragment.nodes[static_cast<size_t>(e.from)].graph_node ||
        ge.to != fragment.nodes[static_cast<size_t>(e.to)].graph_node) {
      return Status::InvalidArgument(
          "fragment edge endpoints disagree with graph edge '" + ge.Label() +
          "'");
    }
  }

  // ISA edges equate the variables of their endpoints.
  UnionFind uf(n);
  for (const Fragment::Edge& e : fragment.edges) {
    if (graph.edge(e.graph_edge).kind == cm::EdgeKind::kIsa) {
      uf.Union(static_cast<size_t>(e.from), static_cast<size_t>(e.to));
    }
  }
  std::vector<std::string> var_of_node(n);
  {
    std::map<size_t, std::string> rep_var;
    int counter = 0;
    for (size_t i = 0; i < n; ++i) {
      size_t rep = uf.Find(i);
      auto it = rep_var.find(rep);
      if (it == rep_var.end()) {
        it = rep_var.emplace(rep, "x" + std::to_string(counter++)).first;
      }
      var_of_node[i] = it->second;
    }
  }
  if (var_of_node_out != nullptr) *var_of_node_out = var_of_node;

  ConjunctiveQuery query;
  query.head_predicate = head_predicate;
  int fresh_counter = 0;
  auto fresh_var = [&fresh_counter]() {
    return "f" + std::to_string(fresh_counter++);
  };

  // Class atoms; auto-reified nodes are un-reified below.
  for (size_t i = 0; i < n; ++i) {
    const cm::GraphNode& cls = graph.node(fragment.nodes[i].graph_node);
    if (cls.auto_reified) continue;
    query.body.push_back(Atom{cls.name, {Term::Var(var_of_node[i])}});
  }

  // Relationship and role edges. Role edges incident to auto-reified nodes
  // are collected per fragment node and collapsed into one binary atom.
  struct ReifiedPair {
    std::string src_var;
    std::string tgt_var;
  };
  std::map<size_t, ReifiedPair> auto_pairs;  // fragment node -> fillers seen

  for (const Fragment::Edge& e : fragment.edges) {
    const cm::GraphEdge& ge = graph.edge(e.graph_edge);
    const std::string& from_var = var_of_node[static_cast<size_t>(e.from)];
    const std::string& to_var = var_of_node[static_cast<size_t>(e.to)];
    switch (ge.kind) {
      case cm::EdgeKind::kIsa:
        break;  // handled by unification
      case cm::EdgeKind::kAttribute:
        return Status::InvalidArgument(
            "attribute edges belong in Fragment::attrs, not edges");
      case cm::EdgeKind::kRelationship: {
        // p(c1, c2): a non-inverted edge runs c1 -> c2, an inverted one
        // c2 -> c1.
        Term a = Term::Var(ge.inverted ? to_var : from_var);
        Term b = Term::Var(ge.inverted ? from_var : to_var);
        query.body.push_back(Atom{ge.name, {std::move(a), std::move(b)}});
        break;
      }
      case cm::EdgeKind::kRole: {
        // Determine which fragment node is the reified end.
        size_t reified_idx =
            static_cast<size_t>(ge.inverted ? e.to : e.from);
        size_t filler_idx = static_cast<size_t>(ge.inverted ? e.from : e.to);
        const cm::GraphNode& reified_node =
            graph.node(fragment.nodes[reified_idx].graph_node);
        if (reified_node.auto_reified) {
          ReifiedPair& pair = auto_pairs[reified_idx];
          if (ge.name == "src") {
            pair.src_var = var_of_node[filler_idx];
          } else {
            pair.tgt_var = var_of_node[filler_idx];
          }
        } else {
          query.body.push_back(
              Atom{ge.name,
                   {Term::Var(var_of_node[reified_idx]),
                    Term::Var(var_of_node[filler_idx])}});
        }
        break;
      }
    }
  }

  // Collapse auto-reified nodes back into binary relationship atoms. A
  // missing role filler becomes a fresh existential variable.
  for (size_t i = 0; i < n; ++i) {
    const cm::GraphNode& cls = graph.node(fragment.nodes[i].graph_node);
    if (!cls.auto_reified) continue;
    ReifiedPair pair;
    auto it = auto_pairs.find(i);
    if (it != auto_pairs.end()) pair = it->second;
    if (pair.src_var.empty()) pair.src_var = fresh_var();
    if (pair.tgt_var.empty()) pair.tgt_var = fresh_var();
    query.body.push_back(
        Atom{cls.name, {Term::Var(pair.src_var), Term::Var(pair.tgt_var)}});
  }

  // Attribute selections.
  for (const Fragment::AttrSel& sel : fragment.attrs) {
    if (sel.node < 0 || static_cast<size_t>(sel.node) >= n) {
      return Status::InvalidArgument("attribute selection node out of range");
    }
    const cm::GraphNode& cls =
        graph.node(fragment.nodes[static_cast<size_t>(sel.node)].graph_node);
    if (graph.FindAttributeNode(cls.name, sel.attribute) < 0) {
      return Status::NotFound("class '" + cls.name + "' has no attribute '" +
                              sel.attribute + "'");
    }
    query.body.push_back(
        Atom{cls.name + "." + sel.attribute,
             {Term::Var(var_of_node[static_cast<size_t>(sel.node)]),
              Term::Var(sel.var)}});
  }

  for (const std::string& v : head_vars) {
    query.head.push_back(Term::Var(v));
  }
  return query;
}

Fragment FragmentFromSTree(const STree& stree) {
  Fragment fragment;
  for (const STreeNode& n : stree.nodes) {
    fragment.nodes.push_back({n.graph_node});
  }
  for (const STreeEdge& e : stree.edges) {
    fragment.edges.push_back({e.from, e.to, e.graph_edge});
  }
  for (const ColumnBinding& b : stree.bindings) {
    fragment.attrs.push_back({b.node, b.attribute, b.column});
  }
  return fragment;
}

Result<ConjunctiveQuery> EncodeTableSemantics(const cm::CmGraph& graph,
                                              const rel::Table& table_def,
                                              const STree& stree) {
  Fragment fragment = FragmentFromSTree(stree);
  // Head variables are the column names in table declaration order.
  return EncodeFragment(graph, fragment, table_def.columns(), stree.table);
}

}  // namespace semap::sem
