// er2rel: the standard EER-to-relational design methodology
// (Markowitz–Shoshani style) referenced throughout the paper.
//
// Given a conceptual model it derives a relational schema *and* the s-tree
// semantics of every generated table, producing a ready-made
// AnnotatedSchema. This is how the paper's experimental setup
// forward-engineered the I3CON ontologies into relational schemas, and how
// this reproduction builds its dataset pairs without hand-writing every
// s-tree.
//
// Design rules implemented:
//  * entity table per class, keyed by its (possibly inherited) key;
//  * functional binary relationship merged into the source entity table as
//    foreign-key columns (or split into its own table, see options);
//  * many-to-many binary relationship -> relationship table keyed by both
//    participants, whose s-tree runs through the auto-reified node;
//  * explicit reified relationship -> table keyed by the concatenation of
//    its role keys, carrying its descriptive attributes;
//  * ISA either as one table per class with a RIC from subclass key to
//    superclass key (when the key is inherited), or collapsed into
//    leaf-class tables carrying inherited attributes (Example 1.2 style),
//    in which case the ISA link is *not* visible as a RIC — exactly the
//    situation where the paper's semantic technique beats the baseline.
#ifndef SEMAP_SEMANTICS_ER2REL_H_
#define SEMAP_SEMANTICS_ER2REL_H_

#include <set>
#include <string>

#include "cm/model.h"
#include "semantics/stree.h"
#include "util/result.h"

namespace semap::sem {

struct Er2RelOptions {
  /// Merge functional relationships into the source entity's table. When
  /// false each functional relationship becomes its own table keyed by the
  /// source entity's key.
  bool merge_functional_relationships = true;
  /// Collapse ISA hierarchies into leaf-class tables carrying inherited
  /// attributes (no superclass tables, no ISA RICs).
  bool merge_isa_into_leaves = false;
  /// When non-empty, only these classes get tables; relationships and
  /// reified relationships are materialized only when every participant
  /// (and the reified class itself) is listed. The rest of the CM remains
  /// conceptual — a database usually covers a fragment of a large domain
  /// ontology.
  std::set<std::string> only_classes;
};

/// \brief Apply the er2rel design to `model`, returning the schema (named
/// `schema_name`) with attached per-table s-trees.
Result<AnnotatedSchema> Er2Rel(const cm::ConceptualModel& model,
                               const std::string& schema_name,
                               const Er2RelOptions& options = {});

}  // namespace semap::sem

#endif  // SEMAP_SEMANTICS_ER2REL_H_
