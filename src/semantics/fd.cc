#include "semantics/fd.h"

#include <queue>

#include "util/string_util.h"

namespace semap::sem {

std::string TableFd::ToString() const {
  return table + ": " + Join(lhs, ",") + " -> " + Join(rhs, ",");
}

namespace {

/// Bound columns completing the key of node `idx`'s class, or empty.
std::vector<std::string> CompleteKeyColumns(const cm::CmGraph& graph,
                                            const STree& stree, int idx) {
  const cm::GraphNode& cls =
      graph.node(stree.nodes[static_cast<size_t>(idx)].graph_node);
  const cm::CmClass* model_cls = graph.model().FindClass(cls.name);
  if (model_cls == nullptr) return {};
  std::vector<std::string> key_attrs = model_cls->KeyAttributes();
  if (key_attrs.empty()) return {};
  std::vector<std::string> cols;
  for (const std::string& ka : key_attrs) {
    const ColumnBinding* found = nullptr;
    for (const ColumnBinding& b : stree.bindings) {
      if (b.node == idx && b.attribute == ka) {
        found = &b;
        break;
      }
    }
    if (found == nullptr) return {};
    cols.push_back(found->column);
  }
  return cols;
}

}  // namespace

std::vector<TableFd> DeriveTableFds(const cm::CmGraph& graph,
                                    const STree& stree) {
  const size_t n = stree.nodes.size();
  // Undirected adjacency with the directed graph edge per traversal.
  std::vector<std::vector<std::pair<int, int>>> adj(n);
  for (const STreeEdge& e : stree.edges) {
    adj[static_cast<size_t>(e.from)].push_back({e.to, e.graph_edge});
    int partner = graph.edge(e.graph_edge).partner;
    if (partner >= 0) {
      adj[static_cast<size_t>(e.to)].push_back({e.from, partner});
    }
  }

  std::vector<TableFd> fds;
  for (size_t a = 0; a < n; ++a) {
    std::vector<std::string> lhs =
        CompleteKeyColumns(graph, stree, static_cast<int>(a));
    if (lhs.empty()) continue;
    // Nodes reachable from `a` along functional-direction paths.
    std::vector<bool> reached(n, false);
    reached[a] = true;
    std::queue<size_t> queue;
    queue.push(a);
    while (!queue.empty()) {
      size_t cur = queue.front();
      queue.pop();
      for (auto [next, eid] : adj[cur]) {
        if (reached[static_cast<size_t>(next)]) continue;
        if (!graph.edge(eid).IsFunctional()) continue;
        reached[static_cast<size_t>(next)] = true;
        queue.push(static_cast<size_t>(next));
      }
    }
    TableFd fd;
    fd.table = stree.table;
    fd.lhs = lhs;
    for (const ColumnBinding& b : stree.bindings) {
      if (reached[static_cast<size_t>(b.node)]) fd.rhs.push_back(b.column);
    }
    if (!fd.rhs.empty()) fds.push_back(std::move(fd));
  }
  return fds;
}

std::vector<TableFd> DeriveSchemaFds(const AnnotatedSchema& side) {
  std::vector<TableFd> out;
  for (const auto& [table, stree] : side.semantics()) {
    std::vector<TableFd> fds = DeriveTableFds(side.graph(), stree);
    out.insert(out.end(), fds.begin(), fds.end());
  }
  return out;
}

std::string CrossTableFd::ToString() const {
  return table_a + "[" + Join(key_a, ",") + "]." + col_a + " == " + table_b +
         "[" + Join(key_b, ",") + "]." + col_b;
}

std::vector<CrossTableFd> DeriveCrossTableFds(const AnnotatedSchema& side) {
  // Collect, per table, every binding of an attribute of an *identified*
  // node: (graph class node, attribute) -> (table, identifying key cols,
  // value column).
  struct Entry {
    std::string table;
    std::vector<std::string> key_cols;
    std::string column;
    int graph_node;
    std::string attribute;
  };
  std::vector<Entry> entries;
  const cm::CmGraph& graph = side.graph();
  for (const auto& [table, stree] : side.semantics()) {
    for (const ColumnBinding& b : stree.bindings) {
      std::vector<std::string> key_cols =
          CompleteKeyColumns(graph, stree, b.node);
      if (key_cols.empty()) continue;
      entries.push_back(Entry{table, std::move(key_cols), b.column,
                              stree.nodes[static_cast<size_t>(b.node)]
                                  .graph_node,
                              b.attribute});
    }
  }
  std::vector<CrossTableFd> out;
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      const Entry& a = entries[i];
      const Entry& b = entries[j];
      if (a.table == b.table) continue;  // covered by DeriveTableFds
      if (a.graph_node != b.graph_node || a.attribute != b.attribute) continue;
      out.push_back(CrossTableFd{a.table, a.key_cols, a.column, b.table,
                                 b.key_cols, b.column});
    }
  }
  return out;
}

}  // namespace semap::sem
