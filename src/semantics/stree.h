// Semantic trees (s-trees): the representation of table semantics.
//
// An s-tree is a subtree of the CM graph whose class nodes may be
// *copies* of the same concept (to handle recursive and multiple
// relationships while staying a tree, per Section 2). Each table column is
// bound bijectively to an attribute of some s-tree node, and the tree may
// carry an *anchor* — the central object the table was derived from under
// an er2rel design.
//
// An AnnotatedSchema bundles one side of a mapping problem: the relational
// schema, its CM (compiled to a CmGraph), and an s-tree per table.
#ifndef SEMAP_SEMANTICS_STREE_H_
#define SEMAP_SEMANTICS_STREE_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cm/graph.h"
#include "relational/schema.h"
#include "util/result.h"

namespace semap::sem {

/// \brief A node of an s-tree. Distinct s-tree nodes may reference the same
/// CM-graph class node — those are the paper's concept copies
/// (Person, Person_copy1, ...).
struct STreeNode {
  std::string alias;   // unique within the tree, e.g. "p", "b"
  int graph_node = -1; // class node id in the CmGraph
};

/// \brief A directed edge of the s-tree, from nodes[from] to nodes[to],
/// realized by CM-graph edge `graph_edge` (whose endpoints must agree).
struct STreeEdge {
  int from = -1;
  int to = -1;
  int graph_edge = -1;
};

/// \brief Binding of a table column to an attribute of an s-tree node.
struct ColumnBinding {
  std::string column;
  int node = -1;          // index into STree::nodes
  std::string attribute;  // attribute name declared on that node's class
};

/// \brief The semantics of one table.
class STree {
 public:
  std::string table;
  std::vector<STreeNode> nodes;
  std::vector<STreeEdge> edges;
  std::vector<ColumnBinding> bindings;
  std::optional<int> anchor;  // index into nodes

  /// Index of the node with `alias`, or -1.
  int FindNode(const std::string& alias) const;
  /// The binding for `column`, or nullptr.
  const ColumnBinding* FindBinding(const std::string& column) const;

  /// Class node ids (in the CM graph) covered by this tree.
  std::set<int> GraphNodes() const;
  /// Graph edge ids used by this tree, including inverse partners.
  std::set<int> GraphEdges(const cm::CmGraph& graph) const;

  /// Columns that identify the class at node `node_idx`: bindings whose
  /// attribute is a key attribute of that class. Drives Skolem merging in
  /// the rewriting stage.
  std::vector<std::string> IdentifierColumns(const cm::CmGraph& graph,
                                             int node_idx) const;

  /// Structural checks against `graph` and `table_def`: aliases unique,
  /// edges well-formed and endpoint-consistent, bindings bijective onto the
  /// table's columns, the edge set forms a tree over the nodes (connected,
  /// acyclic) when the tree has more than one node.
  Status Validate(const cm::CmGraph& graph, const rel::Table& table_def) const;

  std::string ToString(const cm::CmGraph& graph) const;
};

/// \brief One side (source or target) of a mapping problem.
class AnnotatedSchema {
 public:
  AnnotatedSchema() = default;
  AnnotatedSchema(rel::RelationalSchema schema, cm::CmGraph graph)
      : schema_(std::move(schema)),
        graph_(std::make_shared<cm::CmGraph>(std::move(graph))) {}

  const rel::RelationalSchema& schema() const { return schema_; }
  const cm::CmGraph& graph() const { return *graph_; }

  /// Attach the semantics of one table (validates against schema + graph).
  Status AddSemantics(STree stree);

  const STree* FindSemantics(const std::string& table) const;
  const std::map<std::string, STree>& semantics() const { return semantics_; }

  /// Resolve a column to the CM-graph class node carrying its attribute,
  /// via the table's s-tree; -1 when the table has no semantics or the
  /// column is unbound.
  int ClassNodeForColumn(const rel::ColumnRef& ref) const;
  /// Resolve a column to (class node, attribute name); nullopt when
  /// unbound.
  std::optional<std::pair<int, std::string>> AttributeForColumn(
      const rel::ColumnRef& ref) const;

 private:
  rel::RelationalSchema schema_;
  std::shared_ptr<cm::CmGraph> graph_;  // shared: STrees index into it
  std::map<std::string, STree> semantics_;
};

}  // namespace semap::sem

#endif  // SEMAP_SEMANTICS_STREE_H_
