#include "semantics/stree.h"

#include <algorithm>

#include "util/string_util.h"

namespace semap::sem {

int STree::FindNode(const std::string& alias) const {
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].alias == alias) return static_cast<int>(i);
  }
  return -1;
}

const ColumnBinding* STree::FindBinding(const std::string& column) const {
  for (const ColumnBinding& b : bindings) {
    if (b.column == column) return &b;
  }
  return nullptr;
}

std::set<int> STree::GraphNodes() const {
  std::set<int> out;
  for (const STreeNode& n : nodes) out.insert(n.graph_node);
  return out;
}

std::set<int> STree::GraphEdges(const cm::CmGraph& graph) const {
  std::set<int> out;
  for (const STreeEdge& e : edges) {
    out.insert(e.graph_edge);
    int partner = graph.edge(e.graph_edge).partner;
    if (partner >= 0) out.insert(partner);
  }
  return out;
}

std::vector<std::string> STree::IdentifierColumns(const cm::CmGraph& graph,
                                                  int node_idx) const {
  std::vector<std::string> out;
  for (const ColumnBinding& b : bindings) {
    if (b.node != node_idx) continue;
    const cm::GraphNode& cls = graph.node(nodes[static_cast<size_t>(b.node)].graph_node);
    int attr_node = graph.FindAttributeNode(cls.name, b.attribute);
    if (attr_node >= 0 && graph.node(attr_node).is_key_attribute) {
      out.push_back(b.column);
    }
  }
  return out;
}

Status STree::Validate(const cm::CmGraph& graph,
                       const rel::Table& table_def) const {
  if (nodes.empty()) {
    return Status::InvalidArgument("s-tree for '" + table + "' has no nodes");
  }
  std::set<std::string> aliases;
  for (const STreeNode& n : nodes) {
    if (!aliases.insert(n.alias).second) {
      return Status::InvalidArgument("duplicate alias '" + n.alias +
                                     "' in s-tree for '" + table + "'");
    }
    if (n.graph_node < 0 ||
        n.graph_node >= static_cast<int>(graph.nodes().size()) ||
        !graph.node(n.graph_node).IsClass()) {
      return Status::InvalidArgument("s-tree node '" + n.alias +
                                     "' does not reference a class node");
    }
  }
  for (const STreeEdge& e : edges) {
    if (e.from < 0 || e.from >= static_cast<int>(nodes.size()) || e.to < 0 ||
        e.to >= static_cast<int>(nodes.size())) {
      return Status::InvalidArgument("s-tree edge out of range in '" + table +
                                     "'");
    }
    const cm::GraphEdge& ge = graph.edge(e.graph_edge);
    if (ge.from != nodes[static_cast<size_t>(e.from)].graph_node ||
        ge.to != nodes[static_cast<size_t>(e.to)].graph_node) {
      return Status::InvalidArgument(
          "s-tree edge endpoints disagree with graph edge '" + ge.Label() +
          "' in '" + table + "'");
    }
  }
  // Tree shape: undirected-connected and |edges| == |nodes| - 1.
  if (nodes.size() > 1) {
    if (edges.size() != nodes.size() - 1) {
      return Status::InvalidArgument("s-tree for '" + table + "' has " +
                                     std::to_string(edges.size()) +
                                     " edges for " +
                                     std::to_string(nodes.size()) + " nodes");
    }
    std::vector<std::vector<int>> adj(nodes.size());
    for (const STreeEdge& e : edges) {
      adj[static_cast<size_t>(e.from)].push_back(e.to);
      adj[static_cast<size_t>(e.to)].push_back(e.from);
    }
    std::vector<bool> visited(nodes.size(), false);
    std::vector<int> stack = {0};
    visited[0] = true;
    size_t reached = 1;
    while (!stack.empty()) {
      int cur = stack.back();
      stack.pop_back();
      for (int next : adj[static_cast<size_t>(cur)]) {
        if (!visited[static_cast<size_t>(next)]) {
          visited[static_cast<size_t>(next)] = true;
          ++reached;
          stack.push_back(next);
        }
      }
    }
    if (reached != nodes.size()) {
      return Status::InvalidArgument("s-tree for '" + table +
                                     "' is not connected");
    }
  }
  // Bindings: bijective onto the table's columns; attributes exist.
  std::set<std::string> bound;
  for (const ColumnBinding& b : bindings) {
    if (!table_def.HasColumn(b.column)) {
      return Status::NotFound("s-tree binds unknown column '" + b.column +
                              "' of table '" + table + "'");
    }
    if (!bound.insert(b.column).second) {
      return Status::InvalidArgument("column '" + b.column +
                                     "' bound twice in s-tree for '" + table +
                                     "'");
    }
    if (b.node < 0 || b.node >= static_cast<int>(nodes.size())) {
      return Status::InvalidArgument("binding for '" + b.column +
                                     "' references missing node");
    }
    const cm::GraphNode& cls =
        graph.node(nodes[static_cast<size_t>(b.node)].graph_node);
    if (graph.FindAttributeNode(cls.name, b.attribute) < 0) {
      return Status::NotFound("class '" + cls.name + "' has no attribute '" +
                              b.attribute + "' (s-tree for '" + table + "')");
    }
  }
  for (const std::string& col : table_def.columns()) {
    if (bound.count(col) == 0) {
      return Status::InvalidArgument("column '" + col + "' of table '" + table +
                                     "' is not bound by its s-tree");
    }
  }
  if (anchor.has_value() &&
      (*anchor < 0 || *anchor >= static_cast<int>(nodes.size()))) {
    return Status::InvalidArgument("anchor out of range in s-tree for '" +
                                   table + "'");
  }
  return Status::OK();
}

std::string STree::ToString(const cm::CmGraph& graph) const {
  std::string out = "s-tree for " + table + ": ";
  std::vector<std::string> node_strs;
  for (const STreeNode& n : nodes) {
    std::string s = n.alias + ":" + graph.node(n.graph_node).name;
    if (anchor.has_value() && nodes[static_cast<size_t>(*anchor)].alias == n.alias) {
      s += "(anchor)";
    }
    node_strs.push_back(s);
  }
  out += Join(node_strs, ", ");
  if (!edges.empty()) {
    out += "; edges: ";
    std::vector<std::string> edge_strs;
    for (const STreeEdge& e : edges) {
      edge_strs.push_back(nodes[static_cast<size_t>(e.from)].alias + " -" +
                          graph.edge(e.graph_edge).Label() + "-> " +
                          nodes[static_cast<size_t>(e.to)].alias);
    }
    out += Join(edge_strs, ", ");
  }
  return out;
}

Status AnnotatedSchema::AddSemantics(STree stree) {
  const rel::Table* table_def = schema_.FindTable(stree.table);
  if (table_def == nullptr) {
    return Status::NotFound("semantics for unknown table '" + stree.table +
                            "'");
  }
  SEMAP_RETURN_NOT_OK(stree.Validate(*graph_, *table_def));
  if (semantics_.count(stree.table) > 0) {
    return Status::AlreadyExists("semantics for table '" + stree.table +
                                 "' already attached");
  }
  semantics_.emplace(stree.table, std::move(stree));
  return Status::OK();
}

const STree* AnnotatedSchema::FindSemantics(const std::string& table) const {
  auto it = semantics_.find(table);
  if (it == semantics_.end()) return nullptr;
  return &it->second;
}

int AnnotatedSchema::ClassNodeForColumn(const rel::ColumnRef& ref) const {
  auto attr = AttributeForColumn(ref);
  if (!attr.has_value()) return -1;
  return attr->first;
}

std::optional<std::pair<int, std::string>> AnnotatedSchema::AttributeForColumn(
    const rel::ColumnRef& ref) const {
  const STree* stree = FindSemantics(ref.table);
  if (stree == nullptr) return std::nullopt;
  const ColumnBinding* binding = stree->FindBinding(ref.column);
  if (binding == nullptr) return std::nullopt;
  int graph_node = stree->nodes[static_cast<size_t>(binding->node)].graph_node;
  return std::make_pair(graph_node, binding->attribute);
}

}  // namespace semap::sem
