#include "semantics/er2rel.h"

#include <algorithm>
#include <map>
#include <set>

#include "semantics/stree_builder.h"

namespace semap::sem {

namespace {

/// Resolved key of a class: the class (possibly an ancestor) declaring the
/// key attributes, and their names.
struct EffectiveKey {
  std::string declaring_class;
  std::vector<std::string> attributes;
};

/// Walk up single-inheritance chains until a class with key attributes is
/// found.
Result<EffectiveKey> ResolveKey(const cm::ConceptualModel& model,
                                const std::string& cls_name) {
  std::string current = cls_name;
  std::set<std::string> visited;
  while (visited.insert(current).second) {
    const cm::CmClass* cls = model.FindClass(current);
    if (cls == nullptr) {
      return Status::NotFound("er2rel: class '" + current + "' not found");
    }
    std::vector<std::string> keys = cls->KeyAttributes();
    if (!keys.empty()) {
      return EffectiveKey{current, std::move(keys)};
    }
    std::vector<std::string> supers = model.SuperclassesOf(current);
    if (supers.empty()) {
      return Status::InvalidArgument("er2rel: class '" + cls_name +
                                     "' has no (inherited) key");
    }
    current = supers[0];
  }
  return Status::InvalidArgument("er2rel: ISA cycle at class '" + cls_name +
                                 "'");
}

/// Pick a column name not yet in `used`, starting from `base` and
/// prefixing with `prefix` (then numbering) on collision.
/// Bind `cols` to the key attributes of `key`, routing through ISA chain
/// nodes when the key is declared on an ancestor of `cls_name` (the
/// attribute lives on the ancestor, so the s-tree must contain it).
Status BindKeyColumns(const cm::ConceptualModel& model,
                      sem::STreeBuilder& builder, const std::string& alias,
                      const std::string& cls_name, const EffectiveKey& key,
                      const std::vector<std::string>& cols) {
  std::string bind_alias = alias;
  if (key.declaring_class != cls_name) {
    // Walk one superclass chain from cls_name up to the declaring class.
    std::string current = cls_name;
    std::string current_alias = alias;
    while (current != key.declaring_class) {
      std::vector<std::string> supers = model.SuperclassesOf(current);
      if (supers.empty()) {
        return Status::Internal("er2rel: lost ISA chain from '" + cls_name +
                                "' to '" + key.declaring_class + "'");
      }
      std::string parent = supers[0];
      std::string parent_alias = alias + "_up" +
                                 std::to_string(builder.NodeCount());
      SEMAP_RETURN_NOT_OK(builder.AddNode(parent_alias, parent));
      SEMAP_RETURN_NOT_OK(builder.AddEdge("isa", current_alias, parent_alias));
      current = parent;
      current_alias = parent_alias;
    }
    bind_alias = current_alias;
  }
  for (size_t i = 0; i < cols.size(); ++i) {
    SEMAP_RETURN_NOT_OK(
        builder.BindColumn(cols[i], bind_alias, key.attributes[i]));
  }
  return Status::OK();
}

std::string FreshColumn(std::set<std::string>& used, const std::string& prefix,
                        const std::string& base) {
  std::string candidate = base;
  if (used.count(candidate) > 0) candidate = prefix + "_" + base;
  int n = 2;
  while (used.count(candidate) > 0) {
    candidate = prefix + std::to_string(n++) + "_" + base;
  }
  used.insert(candidate);
  return candidate;
}

}  // namespace

Result<AnnotatedSchema> Er2Rel(const cm::ConceptualModel& model,
                               const std::string& schema_name,
                               const Er2RelOptions& options) {
  SEMAP_RETURN_NOT_OK(model.Validate());
  SEMAP_ASSIGN_OR_RETURN(cm::CmGraph graph, cm::CmGraph::Build(model));

  rel::RelationalSchema schema(schema_name);
  std::vector<STree> strees;
  // Key columns of each generated entity table, for FK targets.
  std::map<std::string, std::vector<std::string>> table_keys;
  std::vector<rel::Ric> pending_rics;
  // Columns appended to already-created entity tables by merged functional
  // relationships; applied in the final rebuild.
  std::vector<std::pair<std::string, std::vector<std::string>>>
      table_extensions;

  auto has_subclasses = [&](const std::string& cls) {
    for (const cm::IsaLink& link : model.isa_links()) {
      if (link.super == cls) return true;
    }
    return false;
  };
  auto included = [&](const std::string& cls) {
    return options.only_classes.empty() || options.only_classes.count(cls) > 0;
  };

  // ---- Entity tables ----
  for (const cm::CmClass& cls : model.classes()) {
    if (!included(cls.name)) continue;
    if (options.merge_isa_into_leaves && has_subclasses(cls.name)) continue;
    SEMAP_ASSIGN_OR_RETURN(EffectiveKey key, ResolveKey(model, cls.name));

    std::set<std::string> used;
    std::vector<std::string> columns;
    std::vector<std::string> pk;
    STreeBuilder builder(graph, cls.name);
    SEMAP_RETURN_NOT_OK(builder.AddNode("c0", cls.name));
    SEMAP_RETURN_NOT_OK(builder.SetAnchor("c0"));

    // Chain of ancestor nodes (c0 = the class itself, c1 its parent, ...)
    // is materialized lazily while binding inherited attributes.
    std::map<std::string, std::string> alias_of_class = {{cls.name, "c0"}};
    auto ensure_ancestor_alias =
        [&](const std::string& ancestor) -> Result<std::string> {
      auto it = alias_of_class.find(ancestor);
      if (it != alias_of_class.end()) return it->second;
      // Walk one superclass chain from cls to ancestor, adding ISA edges.
      std::string current = cls.name;
      std::string current_alias = "c0";
      while (current != ancestor) {
        std::vector<std::string> supers = model.SuperclassesOf(current);
        if (supers.empty()) {
          return Status::Internal("er2rel: lost ISA chain to '" + ancestor +
                                  "'");
        }
        const std::string& parent = supers[0];
        auto pit = alias_of_class.find(parent);
        std::string parent_alias;
        if (pit == alias_of_class.end()) {
          parent_alias = "c" + std::to_string(alias_of_class.size());
          SEMAP_RETURN_NOT_OK(builder.AddNode(parent_alias, parent));
          SEMAP_RETURN_NOT_OK(
              builder.AddEdge("isa", current_alias, parent_alias));
          alias_of_class[parent] = parent_alias;
        } else {
          parent_alias = pit->second;
        }
        current = parent;
        current_alias = parent_alias;
      }
      return current_alias;
    };

    // Key columns first.
    for (const std::string& ka : key.attributes) {
      std::string col = FreshColumn(used, cls.name, ka);
      columns.push_back(col);
      pk.push_back(col);
      SEMAP_ASSIGN_OR_RETURN(std::string alias,
                             ensure_ancestor_alias(key.declaring_class));
      SEMAP_RETURN_NOT_OK(builder.BindColumn(col, alias, ka));
    }
    // Inherited non-key attributes first (matching the paper's
    // programmer(ssn, name, acnt) layout), when collapsing ISA into
    // leaves.
    if (options.merge_isa_into_leaves) {
      std::string current = cls.name;
      std::set<std::string> seen = {current};
      while (true) {
        std::vector<std::string> supers = model.SuperclassesOf(current);
        if (supers.empty() || !seen.insert(supers[0]).second) break;
        current = supers[0];
        const cm::CmClass* ancestor = model.FindClass(current);
        if (ancestor == nullptr) break;
        SEMAP_ASSIGN_OR_RETURN(std::string alias,
                               ensure_ancestor_alias(current));
        for (const cm::CmAttribute& attr : ancestor->attributes) {
          if (attr.is_key) continue;  // key already handled above
          std::string col = FreshColumn(used, current, attr.name);
          columns.push_back(col);
          SEMAP_RETURN_NOT_OK(builder.BindColumn(col, alias, attr.name));
        }
      }
    }
    // Own non-key attributes.
    for (const cm::CmAttribute& attr : cls.attributes) {
      if (attr.is_key) continue;
      std::string col = FreshColumn(used, cls.name, attr.name);
      columns.push_back(col);
      SEMAP_RETURN_NOT_OK(builder.BindColumn(col, "c0", attr.name));
    }

    SEMAP_RETURN_NOT_OK(schema.AddTable(rel::Table(cls.name, columns, pk)));
    table_keys[cls.name] = pk;
    strees.push_back(std::move(builder).Build());
  }

  // ISA RICs: subclass table -> superclass table, only when the subclass
  // inherits the superclass key (same key columns) and both have tables.
  if (!options.merge_isa_into_leaves) {
    for (const cm::IsaLink& link : model.isa_links()) {
      const cm::CmClass* sub = model.FindClass(link.sub);
      if (sub == nullptr || !sub->KeyAttributes().empty()) continue;
      auto sub_it = table_keys.find(link.sub);
      auto super_it = table_keys.find(link.super);
      if (sub_it == table_keys.end() || super_it == table_keys.end()) continue;
      if (sub_it->second != super_it->second) continue;
      pending_rics.push_back(rel::Ric{"", link.sub, sub_it->second, link.super,
                                      super_it->second});
    }
  }

  // ---- Binary relationships ----
  for (const cm::CmRelationship& rel : model.relationships()) {
    if (!included(rel.from_class) || !included(rel.to_class)) continue;
    // Normalize so the functional direction (if any) runs from `src`.
    bool fwd_functional = rel.forward.IsFunctional();
    bool inv_functional = rel.inverse.IsFunctional();
    std::string src = rel.from_class;
    std::string dst = rel.to_class;
    if (!fwd_functional && inv_functional) std::swap(src, dst);
    bool functional = fwd_functional || inv_functional;

    SEMAP_ASSIGN_OR_RETURN(EffectiveKey src_key, ResolveKey(model, src));
    SEMAP_ASSIGN_OR_RETURN(EffectiveKey dst_key, ResolveKey(model, dst));

    // A functional relationship merges into the source entity's table when
    // that table exists; otherwise (e.g. the source class was collapsed by
    // merge_isa_into_leaves) it falls through to its own table below.
    const rel::Table* src_table = schema.FindTable(src);
    if (functional && options.merge_functional_relationships &&
        src_table != nullptr) {
      // Choose FK column names avoiding both the table's current columns
      // and any already-staged extensions.
      std::set<std::string> used(src_table->columns().begin(),
                                 src_table->columns().end());
      for (const auto& [table, cols] : table_extensions) {
        if (table == src) used.insert(cols.begin(), cols.end());
      }
      std::vector<std::string> fk_cols;
      for (const std::string& ka : dst_key.attributes) {
        fk_cols.push_back(FreshColumn(used, rel.name, ka));
      }
      // Extend the matching s-tree: the destination node, the relationship
      // edge, and — when the key is inherited — the ISA chain up to its
      // declaring ancestor.
      for (STree& st : strees) {
        if (st.table != src) continue;
        std::string alias = "r" + std::to_string(st.nodes.size());
        int dst_node = graph.FindClassNode(dst);
        st.nodes.push_back({alias, dst_node});
        int to_idx = static_cast<int>(st.nodes.size()) - 1;
        int from_idx = st.FindNode("c0");
        int eid = -1;
        for (int cand : graph.OutEdges(graph.FindClassNode(src))) {
          const cm::GraphEdge& e = graph.edge(cand);
          if (e.kind == cm::EdgeKind::kAttribute) continue;
          if (e.name == rel.name && e.to == dst_node) {
            eid = cand;
            break;
          }
        }
        if (eid < 0) {
          return Status::Internal("er2rel: edge for '" + rel.name +
                                  "' not found in graph");
        }
        st.edges.push_back({from_idx, to_idx, eid});
        int bind_idx = to_idx;
        std::string current = dst;
        while (current != dst_key.declaring_class) {
          std::vector<std::string> supers = model.SuperclassesOf(current);
          if (supers.empty()) {
            return Status::Internal("er2rel: lost ISA chain to '" +
                                    dst_key.declaring_class + "'");
          }
          const std::string& parent = supers[0];
          int parent_node = graph.FindClassNode(parent);
          st.nodes.push_back(
              {alias + "_up" + std::to_string(st.nodes.size()), parent_node});
          int parent_idx = static_cast<int>(st.nodes.size()) - 1;
          int isa_edge = -1;
          for (int cand :
               graph.OutEdges(st.nodes[static_cast<size_t>(bind_idx)]
                                  .graph_node)) {
            const cm::GraphEdge& e = graph.edge(cand);
            if (e.kind == cm::EdgeKind::kIsa && !e.inverted &&
                e.to == parent_node) {
              isa_edge = cand;
              break;
            }
          }
          if (isa_edge < 0) {
            return Status::Internal("er2rel: missing ISA edge to '" + parent +
                                    "'");
          }
          st.edges.push_back({bind_idx, parent_idx, isa_edge});
          bind_idx = parent_idx;
          current = parent;
        }
        for (size_t i = 0; i < fk_cols.size(); ++i) {
          st.bindings.push_back(
              {fk_cols[i], bind_idx, dst_key.attributes[i]});
        }
        break;
      }
      // Stage the column extension for the final schema rebuild.
      table_extensions.push_back({src, fk_cols});
      if (table_keys.count(dst) > 0) {
        pending_rics.push_back(
            rel::Ric{"", src, fk_cols, dst, table_keys[dst]});
      }
      continue;
    }

    // Own table: rel(src_key..., dst_key...). Functional: PK = src key;
    // many-to-many: PK = both sides.
    std::set<std::string> used;
    std::vector<std::string> columns;
    std::vector<std::string> src_cols;
    std::vector<std::string> dst_cols;
    for (const std::string& ka : src_key.attributes) {
      std::string col = FreshColumn(used, src, ka);
      columns.push_back(col);
      src_cols.push_back(col);
    }
    for (const std::string& ka : dst_key.attributes) {
      std::string col = FreshColumn(used, dst, ka);
      columns.push_back(col);
      dst_cols.push_back(col);
    }
    std::vector<std::string> pk = src_cols;
    if (!functional) pk.insert(pk.end(), dst_cols.begin(), dst_cols.end());
    SEMAP_RETURN_NOT_OK(schema.AddTable(rel::Table(rel.name, columns, pk)));
    if (table_keys.count(src) > 0) {
      pending_rics.push_back(rel::Ric{"", rel.name, src_cols, src,
                                      table_keys[src]});
    }
    if (table_keys.count(dst) > 0) {
      pending_rics.push_back(rel::Ric{"", rel.name, dst_cols, dst,
                                      table_keys[dst]});
    }

    STreeBuilder builder(graph, rel.name);
    SEMAP_RETURN_NOT_OK(builder.AddNode("a", src));
    SEMAP_RETURN_NOT_OK(builder.AddNode("b", dst));
    SEMAP_RETURN_NOT_OK(builder.AddEdge(rel.name, "a", "b"));
    if (functional) {
      SEMAP_RETURN_NOT_OK(builder.SetAnchor("a"));
    } else {
      // The m:n expansion added the implicit reified node "<rel>$0".
      SEMAP_RETURN_NOT_OK(builder.SetAnchor(rel.name + "$0"));
    }
    SEMAP_RETURN_NOT_OK(
        BindKeyColumns(model, builder, "a", src, src_key, src_cols));
    SEMAP_RETURN_NOT_OK(
        BindKeyColumns(model, builder, "b", dst, dst_key, dst_cols));
    strees.push_back(std::move(builder).Build());
  }

  // ---- Reified relationships ----
  for (const cm::ReifiedRelationship& reified : model.reified()) {
    if (!included(reified.class_name)) continue;
    {
      bool all_fillers = true;
      for (const cm::Role& role : reified.roles) {
        if (!included(role.filler_class)) {
          all_fillers = false;
          break;
        }
      }
      if (!all_fillers) continue;
    }
    std::set<std::string> used;
    std::vector<std::string> columns;
    std::vector<std::string> pk;
    STreeBuilder builder(graph, reified.class_name);
    SEMAP_RETURN_NOT_OK(builder.AddNode("r", reified.class_name));
    SEMAP_RETURN_NOT_OK(builder.SetAnchor("r"));
    int role_idx = 0;
    for (const cm::Role& role : reified.roles) {
      SEMAP_ASSIGN_OR_RETURN(EffectiveKey key,
                             ResolveKey(model, role.filler_class));
      std::string alias = "p" + std::to_string(role_idx++);
      SEMAP_RETURN_NOT_OK(builder.AddNode(alias, role.filler_class));
      SEMAP_RETURN_NOT_OK(builder.AddEdge(role.name, "r", alias));
      std::vector<std::string> role_cols;
      for (const std::string& ka : key.attributes) {
        std::string col = FreshColumn(used, role.name, ka);
        columns.push_back(col);
        role_cols.push_back(col);
        pk.push_back(col);
      }
      SEMAP_RETURN_NOT_OK(BindKeyColumns(model, builder, alias,
                                         role.filler_class, key, role_cols));
      if (table_keys.count(role.filler_class) > 0) {
        pending_rics.push_back(rel::Ric{"", reified.class_name, role_cols,
                                        role.filler_class,
                                        table_keys[role.filler_class]});
      }
    }
    for (const cm::CmAttribute& attr : reified.attributes) {
      std::string col = FreshColumn(used, reified.class_name, attr.name);
      columns.push_back(col);
      SEMAP_RETURN_NOT_OK(builder.BindColumn(col, "r", attr.name));
    }
    SEMAP_RETURN_NOT_OK(
        schema.AddTable(rel::Table(reified.class_name, columns, pk)));
    strees.push_back(std::move(builder).Build());
  }

  // ---- Apply staged entity-table extensions and RICs ----
  rel::RelationalSchema final_schema(schema_name);
  for (const rel::Table& t : schema.tables()) {
    std::vector<std::string> columns = t.columns();
    for (const auto& [table, cols] : table_extensions) {
      if (table == t.name()) {
        columns.insert(columns.end(), cols.begin(), cols.end());
      }
    }
    SEMAP_RETURN_NOT_OK(
        final_schema.AddTable(rel::Table(t.name(), columns, t.primary_key())));
  }
  for (rel::Ric& ric : pending_rics) {
    SEMAP_RETURN_NOT_OK(final_schema.AddRic(std::move(ric)));
  }

  AnnotatedSchema annotated(std::move(final_schema), std::move(graph));
  for (STree& st : strees) {
    SEMAP_RETURN_NOT_OK(annotated.AddSemantics(std::move(st)));
  }
  return annotated;
}

}  // namespace semap::sem
