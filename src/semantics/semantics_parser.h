// Text format for table semantics (s-trees).
//
//   semantics writes {
//     node p: Person;
//     node b: Book;
//     edge writes p b;
//     anchor p;
//     col pname -> p.pname;
//     col bid -> b.bid;
//   }
//
// `node` declares an s-tree node (repeated class = concept copy); `edge`
// names a relationship, role, or "isa" connecting two aliases — naming a
// many-to-many binary relationship inserts its reified node implicitly;
// `anchor` marks the central node; `col` binds a table column to a node's
// attribute.
#ifndef SEMAP_SEMANTICS_SEMANTICS_PARSER_H_
#define SEMAP_SEMANTICS_SEMANTICS_PARSER_H_

#include <string_view>
#include <vector>

#include "semantics/stree.h"
#include "util/diag.h"
#include "util/result.h"

namespace semap::sem {

/// \brief Parse one or more `semantics` blocks against `graph` — the
/// canonical entry point. The returned trees are structurally resolved
/// but not yet validated against a relational schema; attach them to an
/// AnnotatedSchema for that. kStrict fails fast on the first problem;
/// kLenient (sink required) collects coded diagnostics, synchronizes at
/// item boundaries, and returns the blocks that resolved cleanly — a
/// block that contributed any error is quarantined (its whole tree
/// dropped with a kQuarantined note) rather than returned half-built, so
/// downstream discovery degrades that one table instead of consuming a
/// broken s-tree. Fails only when the options are themselves invalid
/// (kLenient without a sink).
Result<std::vector<STree>> ParseSemantics(const cm::CmGraph& graph,
                                          std::string_view input,
                                          const ParseOptions& options);

/// Historical names, delegating to the canonical entry point.
Result<std::vector<STree>> ParseSemantics(const cm::CmGraph& graph,
                                          std::string_view input);
std::vector<STree> ParseSemanticsLenient(const cm::CmGraph& graph,
                                         std::string_view input,
                                         DiagnosticSink& sink);

}  // namespace semap::sem

#endif  // SEMAP_SEMANTICS_SEMANTICS_PARSER_H_
