// Encoding of CM-graph fragments (s-trees and discovered conceptual
// subgraphs) as conjunctive queries over CM predicates, per Section 2 and
// Example 3.3 of the paper.
//
// The encoding uses unary predicates for classes, binary predicates for
// relationships and roles, and binary predicates "Class.attr" for
// attributes. ISA edges do not produce predicates; instead their endpoints
// share one variable (a subclass instance *is* a superclass instance).
// Nodes that were auto-reified from many-to-many binary relationships are
// un-reified on output: their two role edges collapse back into a single
// binary atom, so formulas look exactly like the paper's.
#ifndef SEMAP_SEMANTICS_ENCODER_H_
#define SEMAP_SEMANTICS_ENCODER_H_

#include <string>
#include <vector>

#include "cm/graph.h"
#include "logic/cq.h"
#include "semantics/stree.h"
#include "util/result.h"

namespace semap::sem {

/// \brief A fragment of the CM graph to encode: nodes (possibly repeated
/// graph nodes = concept copies), connecting edges, and attribute
/// selections that become the formula's free variables.
struct Fragment {
  struct Node {
    int graph_node = -1;
  };
  struct Edge {
    int from = -1;  // index into nodes
    int to = -1;
    int graph_edge = -1;
  };
  struct AttrSel {
    int node = -1;
    std::string attribute;
    std::string var;  // variable name to expose for this attribute
  };

  std::vector<Node> nodes;
  std::vector<Edge> edges;
  std::vector<AttrSel> attrs;
};

/// \brief Encode `fragment` as a CQ whose head is `head_vars` (names of
/// AttrSel vars, or other variables bound in the body). When
/// `var_of_node` is non-null it receives, per fragment node, the instance
/// variable assigned to it (ISA-unified nodes share one variable).
Result<logic::ConjunctiveQuery> EncodeFragment(
    const cm::CmGraph& graph, const Fragment& fragment,
    const std::vector<std::string>& head_vars,
    const std::string& head_predicate = "ans",
    std::vector<std::string>* var_of_node = nullptr);

/// \brief Build the fragment of an s-tree; attribute variables are named
/// after the bound columns.
Fragment FragmentFromSTree(const STree& stree);

/// \brief The LAV semantics of a table: T(cols) :- Φ, with Φ the encoding
/// of its s-tree and head variables the column names in table order.
Result<logic::ConjunctiveQuery> EncodeTableSemantics(
    const cm::CmGraph& graph, const rel::Table& table_def, const STree& stree);

}  // namespace semap::sem

#endif  // SEMAP_SEMANTICS_ENCODER_H_
