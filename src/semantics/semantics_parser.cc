#include "semantics/semantics_parser.h"

#include "semantics/stree_builder.h"
#include "util/lexer.h"

namespace semap::sem {

namespace {

Result<STree> ParseBlock(const cm::CmGraph& graph, TokenCursor& cur) {
  SEMAP_ASSIGN_OR_RETURN(std::string table, cur.ExpectIdentifier());
  STreeBuilder builder(graph, table);
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct("{"));
  while (!cur.TryConsumePunct("}")) {
    if (cur.TryConsumeIdent("node")) {
      SEMAP_ASSIGN_OR_RETURN(std::string alias, cur.ExpectIdentifier());
      SEMAP_RETURN_NOT_OK(cur.ExpectPunct(":"));
      SEMAP_ASSIGN_OR_RETURN(std::string cls, cur.ExpectIdentifier());
      SEMAP_RETURN_NOT_OK(cur.ExpectPunct(";"));
      SEMAP_RETURN_NOT_OK(builder.AddNode(alias, cls));
    } else if (cur.TryConsumeIdent("edge")) {
      SEMAP_ASSIGN_OR_RETURN(std::string name, cur.ExpectIdentifier());
      SEMAP_ASSIGN_OR_RETURN(std::string a, cur.ExpectIdentifier());
      SEMAP_ASSIGN_OR_RETURN(std::string b, cur.ExpectIdentifier());
      SEMAP_RETURN_NOT_OK(cur.ExpectPunct(";"));
      SEMAP_RETURN_NOT_OK(builder.AddEdge(name, a, b));
    } else if (cur.TryConsumeIdent("anchor")) {
      SEMAP_ASSIGN_OR_RETURN(std::string alias, cur.ExpectIdentifier());
      SEMAP_RETURN_NOT_OK(cur.ExpectPunct(";"));
      SEMAP_RETURN_NOT_OK(builder.SetAnchor(alias));
    } else if (cur.TryConsumeIdent("col")) {
      SEMAP_ASSIGN_OR_RETURN(std::string column, cur.ExpectIdentifier());
      SEMAP_RETURN_NOT_OK(cur.ExpectPunct("->"));
      SEMAP_ASSIGN_OR_RETURN(std::string alias, cur.ExpectIdentifier());
      SEMAP_RETURN_NOT_OK(cur.ExpectPunct("."));
      SEMAP_ASSIGN_OR_RETURN(std::string attr, cur.ExpectIdentifier());
      SEMAP_RETURN_NOT_OK(cur.ExpectPunct(";"));
      SEMAP_RETURN_NOT_OK(builder.BindColumn(column, alias, attr));
    } else {
      return cur.ErrorHere("expected 'node', 'edge', 'anchor' or 'col'");
    }
  }
  return std::move(builder).Build();
}

}  // namespace

Result<std::vector<STree>> ParseSemantics(const cm::CmGraph& graph,
                                          std::string_view input) {
  SEMAP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  TokenCursor cur(std::move(tokens));
  std::vector<STree> out;
  while (!cur.AtEnd()) {
    SEMAP_RETURN_NOT_OK(cur.ExpectIdent("semantics"));
    SEMAP_ASSIGN_OR_RETURN(STree tree, ParseBlock(graph, cur));
    out.push_back(std::move(tree));
  }
  return out;
}

}  // namespace semap::sem
