#include "semantics/semantics_parser.h"

#include <set>
#include <string>
#include <utility>

#include "semantics/stree_builder.h"
#include "util/lexer.h"

namespace semap::sem {

namespace {

// One item inside a `semantics` block, parsed syntactically before it is
// applied to a builder — both drivers share the grammar this way.
struct SemItem {
  enum class Kind { kNode, kEdge, kAnchor, kCol };
  Kind kind = Kind::kNode;
  // node: a=alias, b=class; edge: a=name, b/c=aliases; anchor: a=alias;
  // col: a=column, b=alias, c=attribute.
  std::string a, b, c;
  SourceSpan span;  // the item keyword
};

Result<SemItem> ParseSemItem(TokenCursor& cur) {
  SemItem item;
  item.span = cur.SpanHere();
  if (cur.TryConsumeIdent("node")) {
    item.kind = SemItem::Kind::kNode;
    SEMAP_ASSIGN_OR_RETURN(item.a, cur.ExpectIdentifier());
    SEMAP_RETURN_NOT_OK(cur.ExpectPunct(":"));
    SEMAP_ASSIGN_OR_RETURN(item.b, cur.ExpectIdentifier());
    SEMAP_RETURN_NOT_OK(cur.ExpectPunct(";"));
  } else if (cur.TryConsumeIdent("edge")) {
    item.kind = SemItem::Kind::kEdge;
    SEMAP_ASSIGN_OR_RETURN(item.a, cur.ExpectIdentifier());
    SEMAP_ASSIGN_OR_RETURN(item.b, cur.ExpectIdentifier());
    SEMAP_ASSIGN_OR_RETURN(item.c, cur.ExpectIdentifier());
    SEMAP_RETURN_NOT_OK(cur.ExpectPunct(";"));
  } else if (cur.TryConsumeIdent("anchor")) {
    item.kind = SemItem::Kind::kAnchor;
    SEMAP_ASSIGN_OR_RETURN(item.a, cur.ExpectIdentifier());
    SEMAP_RETURN_NOT_OK(cur.ExpectPunct(";"));
  } else if (cur.TryConsumeIdent("col")) {
    item.kind = SemItem::Kind::kCol;
    SEMAP_ASSIGN_OR_RETURN(item.a, cur.ExpectIdentifier());
    SEMAP_RETURN_NOT_OK(cur.ExpectPunct("->"));
    SEMAP_ASSIGN_OR_RETURN(item.b, cur.ExpectIdentifier());
    SEMAP_RETURN_NOT_OK(cur.ExpectPunct("."));
    SEMAP_ASSIGN_OR_RETURN(item.c, cur.ExpectIdentifier());
    SEMAP_RETURN_NOT_OK(cur.ExpectPunct(";"));
  } else {
    return cur.ErrorHere("expected 'node', 'edge', 'anchor' or 'col'");
  }
  return item;
}

Status ApplyItem(STreeBuilder& builder, const SemItem& item) {
  switch (item.kind) {
    case SemItem::Kind::kNode:
      return builder.AddNode(item.a, item.b);
    case SemItem::Kind::kEdge:
      return builder.AddEdge(item.a, item.b, item.c);
    case SemItem::Kind::kAnchor:
      return builder.SetAnchor(item.a);
    case SemItem::Kind::kCol:
      return builder.BindColumn(item.a, item.b, item.c);
  }
  return Status::OK();
}

/// Code for an item the builder rejected: resolution failures against the
/// CM get kBadNode/kBadEdge/kBadBinding; references to aliases the block
/// never declared get kUnknownAlias.
const char* ClassifyItemRejection(const SemItem& item,
                                  const std::set<std::string>& aliases) {
  switch (item.kind) {
    case SemItem::Kind::kNode:
      return diag::kBadNode;
    case SemItem::Kind::kEdge:
      if (!aliases.count(item.b) || !aliases.count(item.c)) {
        return diag::kUnknownAlias;
      }
      return diag::kBadEdge;
    case SemItem::Kind::kAnchor:
      return diag::kUnknownAlias;
    case SemItem::Kind::kCol:
      if (!aliases.count(item.b)) return diag::kUnknownAlias;
      return diag::kBadBinding;
  }
  return diag::kBadNode;
}

Result<STree> ParseBlock(const cm::CmGraph& graph, TokenCursor& cur) {
  SEMAP_ASSIGN_OR_RETURN(std::string table, cur.ExpectIdentifier());
  STreeBuilder builder(graph, table);
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct("{"));
  while (!cur.TryConsumePunct("}")) {
    SEMAP_ASSIGN_OR_RETURN(SemItem item, ParseSemItem(cur));
    SEMAP_RETURN_NOT_OK(ApplyItem(builder, item));
  }
  return std::move(builder).Build();
}

Result<std::vector<STree>> ParseSemanticsStrict(const cm::CmGraph& graph,
                                                std::string_view input) {
  SEMAP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  TokenCursor cur(std::move(tokens));
  std::vector<STree> out;
  while (!cur.AtEnd()) {
    SEMAP_RETURN_NOT_OK(cur.ExpectIdent("semantics"));
    SEMAP_ASSIGN_OR_RETURN(STree tree, ParseBlock(graph, cur));
    out.push_back(std::move(tree));
  }
  return out;
}

std::vector<STree> ParseSemanticsLenientImpl(const cm::CmGraph& graph,
                                             std::string_view input,
                                             DiagnosticSink& sink) {
  TokenCursor cur(TokenizeLenient(input, sink));
  std::vector<STree> out;
  while (!cur.AtEnd()) {
    if (!cur.TryConsumeIdent("semantics")) {
      cur.DiagnoseHere(sink, cur.ErrorHere("expected 'semantics'"));
      cur.SynchronizeTo({"semantics"});
      continue;
    }
    const size_t mark = sink.error_count();
    auto table = cur.ExpectIdentifier();
    Status header = table.ok() ? cur.ExpectPunct("{") : table.status();
    if (!header.ok()) {
      cur.DiagnoseHere(sink, header);
      cur.SynchronizeTo({"semantics"});
      continue;
    }
    STreeBuilder builder(graph, *table);
    std::set<std::string> aliases;
    bool closed = false;
    while (!cur.AtEnd()) {
      if (cur.TryConsumePunct("}")) {
        closed = true;
        break;
      }
      if (cur.Peek().IsIdent("semantics")) break;  // run-on: missing '}'
      auto item = ParseSemItem(cur);
      if (!item.ok()) {
        cur.DiagnoseHere(sink, item.status());
        cur.SynchronizeTo({"node", "edge", "anchor", "col", "semantics", "}"});
        continue;
      }
      Status applied = ApplyItem(builder, *item);
      if (!applied.ok()) {
        sink.Error(ClassifyItemRejection(*item, aliases),
                   std::string(applied.message()), item->span,
                   "the item was dropped");
        continue;
      }
      if (item->kind == SemItem::Kind::kNode) aliases.insert(item->a);
    }
    if (!closed) {
      sink.Error(diag::kUnexpectedEnd,
                 "unterminated semantics block for table '" + *table + "'",
                 cur.SpanHere(), "add the missing '}'");
    }
    if (sink.ErrorsSince(mark) > 0) {
      sink.Note(diag::kQuarantined,
                "semantics for table '" + *table +
                    "' quarantined: the block has errors",
                {}, "the table degrades to RIC-only discovery");
      continue;
    }
    out.push_back(std::move(builder).Build());
  }
  return out;
}

}  // namespace

Result<std::vector<STree>> ParseSemantics(const cm::CmGraph& graph,
                                          std::string_view input,
                                          const ParseOptions& options) {
  if (options.mode == ParseMode::kLenient) {
    if (options.sink == nullptr) {
      return Status::InvalidArgument(
          "lenient parse requires ParseOptions::sink");
    }
    return ParseSemanticsLenientImpl(graph, input, *options.sink);
  }
  return ParseSemanticsStrict(graph, input);
}

Result<std::vector<STree>> ParseSemantics(const cm::CmGraph& graph,
                                          std::string_view input) {
  return ParseSemantics(graph, input, {});
}

std::vector<STree> ParseSemanticsLenient(const cm::CmGraph& graph,
                                         std::string_view input,
                                         DiagnosticSink& sink) {
  return *ParseSemantics(graph, input, {ParseMode::kLenient, &sink});
}

}  // namespace semap::sem
