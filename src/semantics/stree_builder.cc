#include "semantics/stree_builder.h"

namespace semap::sem {

Status STreeBuilder::AddNode(const std::string& alias,
                             const std::string& class_name) {
  if (tree_.FindNode(alias) >= 0) {
    return Status::AlreadyExists("duplicate s-tree alias '" + alias + "'");
  }
  int graph_node = graph_.FindClassNode(class_name);
  if (graph_node < 0) graph_node = graph_.FindAutoReifiedNode(class_name);
  if (graph_node < 0) {
    return Status::NotFound("unknown class '" + class_name +
                            "' in s-tree for '" + tree_.table + "'");
  }
  tree_.nodes.push_back({alias, graph_node});
  return Status::OK();
}

Result<int> STreeBuilder::RequireNode(const std::string& alias) const {
  int idx = tree_.FindNode(alias);
  if (idx < 0) {
    return Status::NotFound("undeclared s-tree alias '" + alias +
                            "' in s-tree for '" + tree_.table + "'");
  }
  return idx;
}

void STreeBuilder::PushEdge(int from_idx, int to_idx, int graph_edge) {
  tree_.edges.push_back({from_idx, to_idx, graph_edge});
}

Status STreeBuilder::AddEdge(const std::string& name,
                             const std::string& alias_a,
                             const std::string& alias_b) {
  SEMAP_ASSIGN_OR_RETURN(int a_idx, RequireNode(alias_a));
  SEMAP_ASSIGN_OR_RETURN(int b_idx, RequireNode(alias_b));
  int a_node = tree_.nodes[static_cast<size_t>(a_idx)].graph_node;
  int b_node = tree_.nodes[static_cast<size_t>(b_idx)].graph_node;

  // Direct edge (relationship, ISA, or role) from a to b, either direction
  // flag; the s-tree edge records the direction actually found.
  for (bool inverted : {false, true}) {
    for (int eid : graph_.OutEdges(a_node)) {
      const cm::GraphEdge& e = graph_.edge(eid);
      if (e.kind == cm::EdgeKind::kAttribute) continue;
      if (e.name == name && e.inverted == inverted && e.to == b_node) {
        PushEdge(a_idx, b_idx, eid);
        return Status::OK();
      }
    }
  }
  // From b to a (e.g. the role edge of a reified node given filler-first).
  for (bool inverted : {false, true}) {
    for (int eid : graph_.OutEdges(b_node)) {
      const cm::GraphEdge& e = graph_.edge(eid);
      if (e.kind == cm::EdgeKind::kAttribute) continue;
      if (e.name == name && e.inverted == inverted && e.to == a_node) {
        PushEdge(b_idx, a_idx, eid);
        return Status::OK();
      }
    }
  }

  // Many-to-many binary relationship: expand through its auto-reified node.
  int rnode = graph_.FindAutoReifiedNode(name);
  if (rnode >= 0) {
    const cm::CmRelationship* rel = graph_.model().FindRelationship(name);
    std::string implicit_alias =
        name + "$" + std::to_string(implicit_counter_++);
    tree_.nodes.push_back({implicit_alias, rnode});
    int r_idx = static_cast<int>(tree_.nodes.size()) - 1;
    // Role "src" points at rel->from_class, "tgt" at rel->to_class. For a
    // self-relationship both ends match; assign a->src, b->tgt.
    const cm::GraphNode& a_cls = graph_.node(a_node);
    bool a_is_src = (a_cls.name == rel->from_class);
    const std::string& a_role = a_is_src ? "src" : "tgt";
    const std::string& b_role = a_is_src ? "tgt" : "src";
    int ea = -1;
    int eb = -1;
    for (int eid : graph_.OutEdges(rnode)) {
      const cm::GraphEdge& e = graph_.edge(eid);
      if (e.kind != cm::EdgeKind::kRole || e.inverted) continue;
      if (e.name == a_role && e.to == a_node) ea = eid;
      if (e.name == b_role && e.to == b_node) eb = eid;
    }
    if (ea < 0 || eb < 0) {
      return Status::NotFound("relationship '" + name +
                              "' does not connect the classes of '" + alias_a +
                              "' and '" + alias_b + "'");
    }
    PushEdge(r_idx, a_idx, ea);
    PushEdge(r_idx, b_idx, eb);
    return Status::OK();
  }

  return Status::NotFound("no edge '" + name + "' between '" + alias_a +
                          "' and '" + alias_b + "' in s-tree for '" +
                          tree_.table + "'");
}

Status STreeBuilder::SetAnchor(const std::string& alias) {
  SEMAP_ASSIGN_OR_RETURN(int idx, RequireNode(alias));
  tree_.anchor = idx;
  return Status::OK();
}

Status STreeBuilder::BindColumn(const std::string& column,
                                const std::string& alias,
                                const std::string& attribute) {
  SEMAP_ASSIGN_OR_RETURN(int idx, RequireNode(alias));
  tree_.bindings.push_back({column, idx, attribute});
  return Status::OK();
}

}  // namespace semap::sem
