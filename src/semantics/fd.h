// Functional dependencies implied by table semantics.
//
// "Functional properties in the CM determine functional dependencies"
// (Section 3.2): if s-tree node A is identified by bound key columns X and
// node B is reachable from A along a functional-direction tree path, then
// X functionally determines every column bound at B. The evaluation
// harness chases with these FDs (as equality-generating dependencies) so
// that rewritings that differ only by functionally-redundant joins compare
// as equivalent.
#ifndef SEMAP_SEMANTICS_FD_H_
#define SEMAP_SEMANTICS_FD_H_

#include <string>
#include <vector>

#include "semantics/stree.h"

namespace semap::sem {

/// \brief X -> Y over the columns of one table.
struct TableFd {
  std::string table;
  std::vector<std::string> lhs;
  std::vector<std::string> rhs;

  std::string ToString() const;
};

/// \brief FDs implied by one table's s-tree (includes the primary key FD
/// when the key identifies the anchor).
std::vector<TableFd> DeriveTableFds(const cm::CmGraph& graph,
                                    const STree& stree);

/// \brief FDs of every table of a schema side.
std::vector<TableFd> DeriveSchemaFds(const AnnotatedSchema& side);

/// \brief A cross-table dependency: when a row of `table_a` and a row of
/// `table_b` agree on the identifying columns (`key_a` == `key_b`), the
/// value columns agree too (`col_a` == `col_b`) — because both columns
/// realize the *same CM attribute* of the *same identified concept* (e.g.
/// prof.pername and grad.pername both store Person.pername keyed by
/// perid).
struct CrossTableFd {
  std::string table_a;
  std::vector<std::string> key_a;
  std::string col_a;
  std::string table_b;
  std::vector<std::string> key_b;
  std::string col_b;

  std::string ToString() const;
};

/// \brief All cross-table FDs implied by shared CM attributes across the
/// side's table semantics (pairs over distinct tables only; same-table
/// dependencies are covered by DeriveSchemaFds).
std::vector<CrossTableFd> DeriveCrossTableFds(const AnnotatedSchema& side);

}  // namespace semap::sem

#endif  // SEMAP_SEMANTICS_FD_H_
