// ResourceGovernor: cooperative resource governance for the discovery
// stack.
//
// The semantic search is combinatorial (minimal-tree enumeration, CSG
// pairing, inverse-rule rewriting); a pathological schema can make any of
// those loops explode. A governor carries a wall-clock deadline, a
// monotonic step budget and a memory-estimate budget, and every long
// loop charges it at its checkpoint. Once any budget is exhausted the
// governor turns sticky-non-OK and the loops unwind, returning the
// partial — but structurally well-formed — results they accumulated so
// far, annotated via NoteTruncation with what was cut off.
//
// A null governor pointer means "ungoverned"; all call sites treat it as
// an unlimited budget so the default pipeline behaves exactly as before.
//
// Thread safety: Charge / ChargeMemory / Cancel / exhausted / status may
// race freely across threads — the counters are atomics and the terminal
// status is write-once (published through an atomic flag), so the first
// trip wins and every later observer reads the same status. This is what
// lets the supervisor's watchdog Cancel() a worker's governor from
// outside, and lets several workers share one parent budget.
// NoteTruncation is mutex-guarded; truncations() returns a reference and
// must only be read once the governed work has quiesced (after the
// workers running under this governor have finished), which is how every
// call site already uses it.
//
// Parent chaining: set_parent(p) makes every Charge/ChargeMemory forward
// to `p` as well, so a per-unit governor can both enforce its own slice
// (unit deadline) and draw down a shared run-wide budget. A parent trip
// propagates into the child on its next charge.
//
// Deterministic fault injection: InjectFailureAfter(n) forces
// kResourceExhausted on the (n+1)-th charged step regardless of clocks,
// and the SEMAP_FAULT_AFTER environment variable (read by
// FaultAfterFromEnv) lets tests and operators inject the same failure
// into an unmodified binary.
#ifndef SEMAP_UTIL_BUDGET_H_
#define SEMAP_UTIL_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/status.h"

namespace semap {

class ResourceGovernor {
 public:
  /// Unlimited governor: never trips until a budget or injection is set.
  ResourceGovernor() = default;

  /// Deadline `ms` milliseconds from now. Negative values mean
  /// "already expired" (useful for deterministic tests).
  void set_deadline_ms(int64_t ms) {
    deadline_ = Clock::now() + std::chrono::milliseconds(ms);
  }
  /// Total step budget; every Charge(n) consumes n of it.
  void set_max_steps(int64_t steps) { max_steps_ = steps; }
  /// Budget for the memory *estimate* accumulated via ChargeMemory.
  void set_max_memory_bytes(int64_t bytes) { max_memory_bytes_ = bytes; }
  /// Also draw every charge down from `parent` (not owned; must outlive
  /// this governor). A tripped parent trips this governor on its next
  /// charge with the parent's status.
  void set_parent(ResourceGovernor* parent) { parent_ = parent; }

  /// Force kResourceExhausted once `n` steps have been charged.
  void InjectFailureAfter(int64_t n) { fault_after_ = n; }

  /// Parsed value of SEMAP_FAULT_AFTER, if set and numeric.
  static std::optional<int64_t> FaultAfterFromEnv();

  /// Charge `steps` units of work. Returns OK while budgets hold;
  /// afterwards returns (and keeps returning) the terminal status.
  Status Charge(int64_t steps = 1);

  /// Add `bytes` to the memory estimate and re-check the budget.
  Status ChargeMemory(int64_t bytes);

  /// Trip the governor from outside with `status` (must be non-OK): the
  /// supervisor's watchdog uses this to force a stuck unit to unwind at
  /// its next charge. Safe from any thread; the first trip (from any
  /// source) wins.
  void Cancel(Status status);

  /// True once any budget tripped; the governor stays exhausted.
  bool exhausted() const {
    return tripped_.load(std::memory_order_acquire);
  }

  /// OK, or the terminal status that first tripped. The returned
  /// reference stays valid and immutable once exhausted() is true.
  const Status& status() const {
    static const Status kOk = Status::OK();
    return exhausted() ? terminal_ : kOk;
  }

  /// Record what a cancelled loop left undone (e.g. "MinimalTrees:
  /// stopped after 3/17 roots").
  void NoteTruncation(std::string note) {
    std::lock_guard<std::mutex> lock(mutex_);
    truncations_.push_back(std::move(note));
  }
  /// Only valid once work charging this governor has quiesced.
  const std::vector<std::string>& truncations() const { return truncations_; }

  int64_t steps_used() const {
    return steps_used_.load(std::memory_order_relaxed);
  }
  int64_t memory_used() const {
    return memory_used_.load(std::memory_order_relaxed);
  }

  /// One-line usage summary for reports and logs.
  std::string ToString() const;

 private:
  using Clock = std::chrono::steady_clock;

  Status Trip(Status status);

  // Budgets are configured before the governed work starts and constant
  // afterwards, so they need no synchronization of their own.
  std::optional<Clock::time_point> deadline_;
  std::optional<int64_t> max_steps_;
  std::optional<int64_t> max_memory_bytes_;
  std::optional<int64_t> fault_after_;
  ResourceGovernor* parent_ = nullptr;

  std::atomic<int64_t> steps_used_{0};
  std::atomic<int64_t> memory_used_{0};
  std::atomic<uint64_t> deadline_check_counter_{0};
  // terminal_ is written exactly once, under mutex_, before tripped_ is
  // released; readers that observe tripped_ may read terminal_ freely.
  std::atomic<bool> tripped_{false};
  Status terminal_;
  mutable std::mutex mutex_;
  std::vector<std::string> truncations_;
};

/// True when work may proceed: no governor, or budget left after
/// charging `steps`. The canonical loop checkpoint.
inline bool GovernorCharge(ResourceGovernor* governor, int64_t steps = 1) {
  return governor == nullptr || governor->Charge(steps).ok();
}

/// True when the governor exists and has tripped (for truncation notes).
inline bool GovernorExhausted(const ResourceGovernor* governor) {
  return governor != nullptr && governor->exhausted();
}

}  // namespace semap

#endif  // SEMAP_UTIL_BUDGET_H_
