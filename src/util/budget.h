// ResourceGovernor: cooperative resource governance for the discovery
// stack.
//
// The semantic search is combinatorial (minimal-tree enumeration, CSG
// pairing, inverse-rule rewriting); a pathological schema can make any of
// those loops explode. A governor carries a wall-clock deadline, a
// monotonic step budget and a memory-estimate budget, and every long
// loop charges it at its checkpoint. Once any budget is exhausted the
// governor turns sticky-non-OK and the loops unwind, returning the
// partial — but structurally well-formed — results they accumulated so
// far, annotated via NoteTruncation with what was cut off.
//
// A null governor pointer means "ungoverned"; all call sites treat it as
// an unlimited budget so the default pipeline behaves exactly as before.
//
// Deterministic fault injection: InjectFailureAfter(n) forces
// kResourceExhausted on the (n+1)-th charged step regardless of clocks,
// and the SEMAP_FAULT_AFTER environment variable (read by
// FaultAfterFromEnv) lets tests and operators inject the same failure
// into an unmodified binary.
#ifndef SEMAP_UTIL_BUDGET_H_
#define SEMAP_UTIL_BUDGET_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/status.h"

namespace semap {

class ResourceGovernor {
 public:
  /// Unlimited governor: never trips until a budget or injection is set.
  ResourceGovernor() = default;

  /// Deadline `ms` milliseconds from now. Negative values mean
  /// "already expired" (useful for deterministic tests).
  void set_deadline_ms(int64_t ms) {
    deadline_ = Clock::now() + std::chrono::milliseconds(ms);
  }
  /// Total step budget; every Charge(n) consumes n of it.
  void set_max_steps(int64_t steps) { max_steps_ = steps; }
  /// Budget for the memory *estimate* accumulated via ChargeMemory.
  void set_max_memory_bytes(int64_t bytes) { max_memory_bytes_ = bytes; }

  /// Force kResourceExhausted once `n` steps have been charged.
  void InjectFailureAfter(int64_t n) { fault_after_ = n; }

  /// Parsed value of SEMAP_FAULT_AFTER, if set and numeric.
  static std::optional<int64_t> FaultAfterFromEnv();

  /// Charge `steps` units of work. Returns OK while budgets hold;
  /// afterwards returns (and keeps returning) the terminal status.
  Status Charge(int64_t steps = 1);

  /// Add `bytes` to the memory estimate and re-check the budget.
  Status ChargeMemory(int64_t bytes);

  /// True once any budget tripped; the governor stays exhausted.
  bool exhausted() const { return !terminal_.ok(); }

  /// OK, or the terminal status that first tripped.
  const Status& status() const { return terminal_; }

  /// Record what a cancelled loop left undone (e.g. "MinimalTrees:
  /// stopped after 3/17 roots").
  void NoteTruncation(std::string note) {
    truncations_.push_back(std::move(note));
  }
  const std::vector<std::string>& truncations() const { return truncations_; }

  int64_t steps_used() const { return steps_used_; }
  int64_t memory_used() const { return memory_used_; }

  /// One-line usage summary for reports and logs.
  std::string ToString() const;

 private:
  using Clock = std::chrono::steady_clock;

  Status Trip(Status status);

  std::optional<Clock::time_point> deadline_;
  std::optional<int64_t> max_steps_;
  std::optional<int64_t> max_memory_bytes_;
  std::optional<int64_t> fault_after_;
  int64_t steps_used_ = 0;
  int64_t memory_used_ = 0;
  uint64_t deadline_check_counter_ = 0;
  Status terminal_;  // OK until a budget trips; sticky afterwards.
  std::vector<std::string> truncations_;
};

/// True when work may proceed: no governor, or budget left after
/// charging `steps`. The canonical loop checkpoint.
inline bool GovernorCharge(ResourceGovernor* governor, int64_t steps = 1) {
  return governor == nullptr || governor->Charge(steps).ok();
}

/// True when the governor exists and has tripped (for truncation notes).
inline bool GovernorExhausted(const ResourceGovernor* governor) {
  return governor != nullptr && governor->exhausted();
}

}  // namespace semap

#endif  // SEMAP_UTIL_BUDGET_H_
