#include "util/json.h"

#include <cctype>
#include <cstdlib>

namespace semap::json {

const Value* Value::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : *object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Value::GetString(std::string_view key,
                             const std::string& fallback) const {
  const Value* v = Find(key);
  return v != nullptr && v->is_string() ? v->AsString() : fallback;
}

int64_t Value::GetInt(std::string_view key, int64_t fallback) const {
  const Value* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsInt() : fallback;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> Run() {
    auto value = ParseValue();
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Fail(const std::string& message) const {
    return Status::ParseError("json: " + message + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<Value> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        auto s = ParseString();
        if (!s.ok()) return s.status();
        return Value(std::move(*s));
      }
      case 't':
        if (ConsumeWord("true")) return Value(true);
        return Fail("invalid literal");
      case 'f':
        if (ConsumeWord("false")) return Value(false);
        return Fail("invalid literal");
      case 'n':
        if (ConsumeWord("null")) return Value();
        return Fail("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<Value> ParseObject() {
    ++pos_;  // '{'
    Object members;
    SkipWhitespace();
    if (Consume('}')) return Value(std::move(members));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      auto key = ParseString();
      if (!key.ok()) return key.status();
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':'");
      auto value = ParseValue();
      if (!value.ok()) return value;
      members.emplace_back(std::move(*key), std::move(*value));
      SkipWhitespace();
      if (Consume('}')) return Value(std::move(members));
      if (!Consume(',')) return Fail("expected ',' or '}'");
    }
  }

  Result<Value> ParseArray() {
    ++pos_;  // '['
    Array elements;
    SkipWhitespace();
    if (Consume(']')) return Value(std::move(elements));
    while (true) {
      auto value = ParseValue();
      if (!value.ok()) return value;
      elements.push_back(std::move(*value));
      SkipWhitespace();
      if (Consume(']')) return Value(std::move(elements));
      if (!Consume(',')) return Fail("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Fail("invalid \\u escape");
              }
            }
            // The writer only escapes control characters; encode the rest
            // of the BMP as UTF-8 for completeness.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xc0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3f));
            } else {
              out += static_cast<char>(0xe0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (code & 0x3f));
            }
            break;
          }
          default:
            return Fail("invalid escape");
        }
        continue;
      }
      out += c;
      ++pos_;
    }
    return Fail("unterminated string");
  }

  Result<Value> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Fail("invalid number");
    return Value(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Parse(std::string_view text) { return Parser(text).Run(); }

}  // namespace semap::json
