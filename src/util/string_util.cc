#include "util/string_util.h"

#include <cctype>

namespace semap {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> SplitAndTrim(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) pos = s.size();
    std::string_view piece = Trim(s.substr(start, pos - start));
    if (!piece.empty()) out.emplace_back(piece);
    start = pos + 1;
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace semap
