// CRC32 (IEEE 802.3, the zlib polynomial): the integrity check shared by
// the mapping-store journal frames (store/journal.h) and the hardened
// checkpoint lines (exec/checkpoint.h).
//
// A torn append — the process killed mid-write, a short write on a full
// disk — leaves a record whose prefix may still parse; a length prefix
// plus a CRC over the payload turns "happens to parse" into "provably
// intact". The polynomial is the reflected 0xEDB88320 used by zlib, so
// validators outside the binary (scripts/check_obs_json.py) can verify
// the same checksums with Python's stdlib.
#ifndef SEMAP_UTIL_CRC32_H_
#define SEMAP_UTIL_CRC32_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace semap {

/// Incremental update: fold `data` into a running CRC (start from 0).
uint32_t Crc32Update(uint32_t crc, std::string_view data);

/// CRC32 of `data` in one shot (zlib-compatible: crc32(0, ...) there).
inline uint32_t Crc32(std::string_view data) { return Crc32Update(0, data); }

/// The journal's on-disk rendering: exactly 8 lowercase hex digits.
std::string Crc32Hex(uint32_t crc);

}  // namespace semap

#endif  // SEMAP_UTIL_CRC32_H_
