// A small hand-written tokenizer shared by the schema / CM / semantics
// text-format parsers.
//
// Token classes: identifiers ([A-Za-z_][A-Za-z0-9_$]*), integers,
// punctuation (single characters plus the multi-char arrows "->", "<-",
// "--", "..", "<->"), and end-of-input. Comments run from '#' or "//" to
// end of line. Whitespace separates tokens.
#ifndef SEMAP_UTIL_LEXER_H_
#define SEMAP_UTIL_LEXER_H_

#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "util/diag.h"
#include "util/result.h"
#include "util/status.h"

namespace semap {

enum class TokenKind {
  kIdentifier,
  kInteger,
  kPunct,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int line = 0;
  int column = 0;

  bool Is(TokenKind k) const { return kind == k; }
  bool IsPunct(std::string_view p) const {
    return kind == TokenKind::kPunct && text == p;
  }
  bool IsIdent(std::string_view name) const {
    return kind == TokenKind::kIdentifier && text == name;
  }
};

/// Source span of a token (its 1-based line/column).
inline SourceSpan SpanOf(const Token& tok) {
  return SourceSpan{tok.line, tok.column};
}

/// \brief Tokenize `input`; returns the token stream terminated by a kEnd
/// token, or a ParseError naming the offending line/column.
Result<std::vector<Token>> Tokenize(std::string_view input);

/// \brief Recovery-mode tokenizer: unexpected characters are reported to
/// `sink` (kUnexpectedChar) and skipped; never fails.
std::vector<Token> TokenizeLenient(std::string_view input,
                                   DiagnosticSink& sink);

/// \brief Cursor over a token stream with the usual Peek/Next/Expect helpers.
///
/// All Expect* helpers return ParseError statuses that carry the line and
/// column of the unexpected token.
class TokenCursor {
 public:
  explicit TokenCursor(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek(int lookahead = 0) const;
  Token Next();
  bool AtEnd() const { return Peek().Is(TokenKind::kEnd); }

  /// Consume the next token if it is the punctuation `p`.
  bool TryConsumePunct(std::string_view p);
  /// Consume the next token if it is the identifier `name` (exact match).
  bool TryConsumeIdent(std::string_view name);

  Status ExpectPunct(std::string_view p);
  Status ExpectIdent(std::string_view name);
  Result<std::string> ExpectIdentifier();
  Result<long> ExpectInteger();

  /// ParseError pinned to the current token.
  Status ErrorHere(std::string_view message) const;

  /// Span of the current token.
  SourceSpan SpanHere() const { return SpanOf(Peek()); }

  /// Report `status` (a failed parse whose cursor sits at the offending
  /// token) to `sink` as kUnexpectedToken / kUnexpectedEnd — unless the
  /// status is the AlreadyDiagnosed sentinel, in which case nothing is
  /// added.
  void DiagnoseHere(DiagnosticSink& sink, const Status& status) const;

  /// Panic-mode recovery: advance at least one token, then stop *before*
  /// the next token whose text matches one of `anchors` (identifier or
  /// punctuation), or at end of input.
  void SynchronizeTo(std::initializer_list<std::string_view> anchors);

  /// Panic-mode recovery: advance until the punctuation `p` has been
  /// consumed, or to end of input.
  void SynchronizePast(std::string_view p);

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace semap

#endif  // SEMAP_UTIL_LEXER_H_
