// Minimal JSON reader for the library's own machine-readable formats
// (semap.checkpoint.v1 journal lines; usable on the trace/metrics/bench
// exports in tests). Writer-side escaping lives in obs/trace.h
// (obs::JsonEscape); this header is the matching parse direction, kept
// dependency-free so util/ stays the bottom layer.
//
// The value model is deliberately small: null, bool, double, string,
// array, object (string-keyed, insertion order preserved). Numbers are
// stored as double — the journal only carries small integers and this
// code never round-trips big ones.
#ifndef SEMAP_UTIL_JSON_H_
#define SEMAP_UTIL_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.h"

namespace semap::json {

class Value;

using Array = std::vector<Value>;
using Object = std::vector<std::pair<std::string, Value>>;

enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

class Value {
 public:
  Value() = default;
  explicit Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit Value(double n) : kind_(Kind::kNumber), number_(n) {}
  explicit Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  explicit Value(Array a)
      : kind_(Kind::kArray), array_(std::make_shared<Array>(std::move(a))) {}
  explicit Value(Object o)
      : kind_(Kind::kObject), object_(std::make_shared<Object>(std::move(o))) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  int64_t AsInt() const { return static_cast<int64_t>(number_); }
  const std::string& AsString() const { return string_; }
  const Array& AsArray() const {
    static const Array kEmpty;
    return array_ ? *array_ : kEmpty;
  }
  const Object& AsObject() const {
    static const Object kEmpty;
    return object_ ? *object_ : kEmpty;
  }

  /// Object member lookup; null when absent or not an object.
  const Value* Find(std::string_view key) const;

  /// Convenience accessors for the "member with expected type" pattern;
  /// fall back to the given default when absent or mistyped.
  std::string GetString(std::string_view key,
                        const std::string& fallback = {}) const;
  int64_t GetInt(std::string_view key, int64_t fallback = 0) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

/// Parse one JSON document (the whole input; trailing whitespace allowed,
/// anything else is a kParseError).
Result<Value> Parse(std::string_view text);

}  // namespace semap::json

#endif  // SEMAP_UTIL_JSON_H_
