// Capped exponential backoff with deterministic jitter.
//
// Retry schedules must be reproducible — tests assert exact delay
// sequences and a bug report's "it retried at 10ms, 23ms, 41ms" should
// replay bit-for-bit — so the jitter comes from a splitmix64 PRNG seeded
// explicitly (the supervisor's --retry-seed flag) instead of from a
// global random source. DelayMs is a pure function of (policy, seed,
// attempt): callers can compute a whole schedule up front, and unit
// tests never have to sleep.
//
// Shape: delay(k) = min(initial * multiplier^k, cap), then jittered
// multiplicatively into [delay * (1 - jitter), delay * (1 + jitter)].
#ifndef SEMAP_UTIL_BACKOFF_H_
#define SEMAP_UTIL_BACKOFF_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace semap {

struct BackoffPolicy {
  /// Delay before the first retry (attempt 0), milliseconds.
  int64_t initial_ms = 10;
  /// Growth factor per further attempt.
  double multiplier = 2.0;
  /// Cap applied before jitter, milliseconds.
  int64_t max_ms = 1000;
  /// Jitter half-width as a fraction of the capped delay, in [0, 1].
  /// 0 = fully deterministic schedule.
  double jitter = 0.25;
  /// PRNG seed for the jitter stream (--retry-seed).
  uint64_t seed = 0;
};

/// splitmix64: tiny, well-mixed, and stable across platforms — exactly
/// what a reproducible jitter stream needs.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

class Backoff {
 public:
  explicit Backoff(BackoffPolicy policy = {}) : policy_(policy) {}

  const BackoffPolicy& policy() const { return policy_; }

  /// Jittered delay before retry number `attempt` (0-based). Pure:
  /// the same (policy, seed, attempt) always yields the same delay.
  int64_t DelayMs(size_t attempt) const {
    double delay = static_cast<double>(policy_.initial_ms);
    for (size_t i = 0; i < attempt; ++i) {
      delay *= policy_.multiplier;
      if (delay >= static_cast<double>(policy_.max_ms)) break;
    }
    delay = std::min(delay, static_cast<double>(policy_.max_ms));
    if (policy_.jitter > 0) {
      // Uniform in [-jitter, +jitter], from the (seed, attempt) stream.
      uint64_t bits =
          SplitMix64(policy_.seed ^ (0x517cc1b727220a95ULL *
                                     static_cast<uint64_t>(attempt + 1)));
      double unit =
          static_cast<double>(bits >> 11) / static_cast<double>(1ULL << 53);
      delay *= 1.0 + policy_.jitter * (2.0 * unit - 1.0);
    }
    return std::max<int64_t>(0, static_cast<int64_t>(delay));
  }

  /// The first `retries` delays, for logs and tests.
  std::vector<int64_t> Schedule(size_t retries) const {
    std::vector<int64_t> out;
    out.reserve(retries);
    for (size_t i = 0; i < retries; ++i) out.push_back(DelayMs(i));
    return out;
  }

 private:
  BackoffPolicy policy_;
};

}  // namespace semap

#endif  // SEMAP_UTIL_BACKOFF_H_
