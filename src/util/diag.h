// Structured diagnostics: coded, source-located, severity-tagged findings
// collected across a whole load instead of aborting at the first problem.
//
// The parsers' recovery ("lenient") entry points and the cross-artifact
// validator append Diagnostics to a DiagnosticSink and return the
// well-formed subset of their input; callers inspect the sink to decide
// whether the load is clean, degraded, or unusable. Every code is stable
// ("SEMAP-Exxx" errors, "SEMAP-Wxxx" warnings, "SEMAP-Nxxx" notes) and
// documented in the error-code appendix of docs/FORMATS.md.
#ifndef SEMAP_UTIL_DIAG_H_
#define SEMAP_UTIL_DIAG_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace semap {

enum class Severity {
  kNote,
  kWarning,
  kError,
};

std::string_view SeverityName(Severity severity);

/// \brief 1-based line/column of the offending token; {0,0} when the
/// finding has no single source location (cross-artifact checks).
struct SourceSpan {
  int line = 0;
  int column = 0;

  bool IsValid() const { return line > 0 && column > 0; }
  bool operator==(const SourceSpan&) const = default;
};

/// Stable diagnostic codes. Append-only: never renumber, never reuse.
namespace diag {
// Lexical / syntactic (all four formats).
inline constexpr const char kUnexpectedChar[] = "SEMAP-E001";
inline constexpr const char kUnexpectedToken[] = "SEMAP-E002";
inline constexpr const char kUnexpectedEnd[] = "SEMAP-E003";
// Relational schema.
inline constexpr const char kDuplicateTable[] = "SEMAP-E010";
inline constexpr const char kDuplicateColumn[] = "SEMAP-E011";
inline constexpr const char kBadKey[] = "SEMAP-E012";
inline constexpr const char kDanglingRic[] = "SEMAP-E013";
inline constexpr const char kRicArity[] = "SEMAP-E014";
inline constexpr const char kRicNonKeyTarget[] = "SEMAP-W015";
// Conceptual model.
inline constexpr const char kDuplicateDefinition[] = "SEMAP-E020";
inline constexpr const char kBadCardinality[] = "SEMAP-E021";
inline constexpr const char kUnknownClass[] = "SEMAP-E022";
inline constexpr const char kFewRoles[] = "SEMAP-E023";
inline constexpr const char kIsaCycle[] = "SEMAP-E024";
inline constexpr const char kEmptyCardinality[] = "SEMAP-W025";
inline constexpr const char kDuplicateAttribute[] = "SEMAP-E026";
// Table semantics (s-trees).
inline constexpr const char kBadNode[] = "SEMAP-E030";
inline constexpr const char kBadEdge[] = "SEMAP-E031";
inline constexpr const char kUnknownAlias[] = "SEMAP-E032";
inline constexpr const char kBadBinding[] = "SEMAP-E033";
inline constexpr const char kInvalidSTree[] = "SEMAP-E034";
// Correspondences.
inline constexpr const char kDanglingCorrespondence[] = "SEMAP-E040";
inline constexpr const char kUnliftableCorrespondence[] = "SEMAP-W041";
inline constexpr const char kDuplicateCorrespondence[] = "SEMAP-W042";
// Produced mappings.
inline constexpr const char kUnsafeTgd[] = "SEMAP-E060";
// Loader bookkeeping.
inline constexpr const char kQuarantined[] = "SEMAP-N090";
}  // namespace diag

/// \brief One finding: what went wrong, where, how bad, and (optionally)
/// how to fix it.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string code;      // stable code from the diag:: namespace
  std::string message;
  SourceSpan span;
  std::string artifact;  // which input, e.g. "source.cm" or a file path
  std::string hint;      // optional fix hint

  /// "source.cm:3:7: error SEMAP-E022: message (hint: ...)".
  std::string ToString() const;
};

/// \brief Collects the diagnostics of one load. Parsers in recovery mode
/// append many per file instead of returning the first error.
class DiagnosticSink {
 public:
  /// Default artifact label stamped onto diagnostics added without one.
  void set_artifact(std::string name) { artifact_ = std::move(name); }
  const std::string& artifact() const { return artifact_; }

  void Add(Diagnostic d);
  void Error(std::string_view code, std::string message, SourceSpan span = {},
             std::string hint = {});
  void Warning(std::string_view code, std::string message,
               SourceSpan span = {}, std::string hint = {});
  void Note(std::string_view code, std::string message, SourceSpan span = {},
            std::string hint = {});

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool empty() const { return diagnostics_.empty(); }
  size_t error_count() const { return errors_; }
  size_t warning_count() const { return warnings_; }
  bool has_errors() const { return errors_ > 0; }

  /// Errors added after `mark` (a previous error_count()); lets a parser
  /// tell whether one artifact/block contributed errors.
  size_t ErrorsSince(size_t mark) const { return errors_ - mark; }

  /// All diagnostics, one per line, plus a summary line.
  std::string ToString() const;

 private:
  std::string artifact_;
  std::vector<Diagnostic> diagnostics_;
  size_t errors_ = 0;
  size_t warnings_ = 0;
};

/// \brief Sentinel used by recovery-mode parsers: the condition has already
/// been reported to the sink, so the caller should synchronize without
/// adding another diagnostic.
Status AlreadyDiagnosed();
bool IsAlreadyDiagnosed(const Status& status);

/// \brief How a parser treats malformed input.
enum class ParseMode {
  /// Fail-fast: the first problem aborts the parse with an error Status.
  kStrict,
  /// Recovery: report every problem to the sink, synchronize, and return
  /// the well-formed subset of the input. Requires `ParseOptions::sink`.
  kLenient,
};

/// \brief The one knob set every text parser takes: every format exposes a
/// canonical `Parse*(input, ParseOptions)` entry point dispatching on
/// `mode` (the historical `Parse*` / `Parse*Lenient` names delegate to
/// it). See docs/FORMATS.md.
struct ParseOptions {
  ParseMode mode = ParseMode::kStrict;
  /// Where lenient parses report their findings (not owned). Mandatory
  /// for kLenient — lenient without a sink is InvalidArgument, never a
  /// silent drop. Ignored by kStrict.
  DiagnosticSink* sink = nullptr;
};

}  // namespace semap

#endif  // SEMAP_UTIL_DIAG_H_
