// Status: lightweight error propagation in the Arrow/RocksDB style.
//
// Library code never throws across public API boundaries; fallible
// operations return Status (no payload) or Result<T> (payload or error).
#ifndef SEMAP_UTIL_STATUS_H_
#define SEMAP_UTIL_STATUS_H_

#include <cassert>
#include <ostream>
#include <string>
#include <utility>

namespace semap {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kInternal,
  kUnsupported,
  kDeadlineExceeded,
  kResourceExhausted,
};

/// \brief Outcome of a fallible operation: OK, or a code plus message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk);
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagate a non-OK Status from the enclosing function.
#define SEMAP_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::semap::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

}  // namespace semap

#endif  // SEMAP_UTIL_STATUS_H_
