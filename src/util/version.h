// Library version, reported by the CLI tools' --version flag. Bumped per
// release line; the minor tracks feature PRs.
#ifndef SEMAP_UTIL_VERSION_H_
#define SEMAP_UTIL_VERSION_H_

namespace semap {

inline constexpr const char kSemapVersion[] = "0.9.0";

}  // namespace semap

#endif  // SEMAP_UTIL_VERSION_H_
