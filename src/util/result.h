// Result<T>: a value or a non-OK Status, in the Arrow style.
#ifndef SEMAP_UTIL_RESULT_H_
#define SEMAP_UTIL_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "util/status.h"

namespace semap {

/// \brief Holds either a successfully computed T or the Status explaining
/// why it could not be computed.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, mirrors
  // arrow::Result so `return value;` and `return status;` both work.
  Result(T value) : state_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : state_(std::move(status)) {
    assert(!std::get<Status>(state_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(state_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(state_);
  }

  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(state_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(state_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(std::get<T>(state_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> state_;
};

/// Assign the value of a Result expression to `lhs` or propagate its error.
#define SEMAP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).ValueOrDie();

#define SEMAP_ASSIGN_OR_RETURN(lhs, expr)                                  \
  SEMAP_ASSIGN_OR_RETURN_IMPL(SEMAP_CONCAT_(_semap_result_, __LINE__), lhs, \
                              expr)

#define SEMAP_CONCAT_INNER_(a, b) a##b
#define SEMAP_CONCAT_(a, b) SEMAP_CONCAT_INNER_(a, b)

}  // namespace semap

#endif  // SEMAP_UTIL_RESULT_H_
