// Small string helpers shared across the library.
#ifndef SEMAP_UTIL_STRING_UTIL_H_
#define SEMAP_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace semap {

/// Join the elements of `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Split `s` on `delim`, trimming whitespace from every piece; empty pieces
/// are dropped.
std::vector<std::string> SplitAndTrim(std::string_view s, char delim);

/// Strip leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Lower-case ASCII copy.
std::string ToLower(std::string_view s);

}  // namespace semap

#endif  // SEMAP_UTIL_STRING_UTIL_H_
