#include "util/lexer.h"

#include <cctype>

namespace semap {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> out;
  int line = 1;
  int column = 1;
  size_t i = 0;
  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n && i < input.size(); ++k, ++i) {
      if (input[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
  };

  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Comments: '#' or '//' to end of line.
    if (c == '#' || (c == '/' && i + 1 < input.size() && input[i + 1] == '/')) {
      while (i < input.size() && input[i] != '\n') advance(1);
      continue;
    }
    Token tok;
    tok.line = line;
    tok.column = column;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < input.size() && IsIdentChar(input[i])) advance(1);
      tok.kind = TokenKind::kIdentifier;
      tok.text = std::string(input.substr(start, i - start));
      out.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < input.size() &&
             std::isdigit(static_cast<unsigned char>(input[i]))) {
        advance(1);
      }
      tok.kind = TokenKind::kInteger;
      tok.text = std::string(input.substr(start, i - start));
      out.push_back(std::move(tok));
      continue;
    }
    // Multi-character punctuation, longest match first.
    static constexpr std::string_view kMulti[] = {"<->", "->", "<-", "--", ".."};
    bool matched = false;
    for (std::string_view m : kMulti) {
      if (input.substr(i, m.size()) == m) {
        tok.kind = TokenKind::kPunct;
        tok.text = std::string(m);
        advance(m.size());
        out.push_back(std::move(tok));
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static constexpr std::string_view kSingle = "(){}[],;:.*<>=+-?";
    if (kSingle.find(c) != std::string_view::npos) {
      tok.kind = TokenKind::kPunct;
      tok.text = std::string(1, c);
      advance(1);
      out.push_back(std::move(tok));
      continue;
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at line " + std::to_string(line) + ", column " +
                              std::to_string(column));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.line = line;
  end.column = column;
  out.push_back(std::move(end));
  return out;
}

const Token& TokenCursor::Peek(int lookahead) const {
  size_t idx = pos_ + static_cast<size_t>(lookahead);
  if (idx >= tokens_.size()) idx = tokens_.size() - 1;  // the kEnd sentinel
  return tokens_[idx];
}

Token TokenCursor::Next() {
  Token tok = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return tok;
}

bool TokenCursor::TryConsumePunct(std::string_view p) {
  if (Peek().IsPunct(p)) {
    Next();
    return true;
  }
  return false;
}

bool TokenCursor::TryConsumeIdent(std::string_view name) {
  if (Peek().IsIdent(name)) {
    Next();
    return true;
  }
  return false;
}

Status TokenCursor::ExpectPunct(std::string_view p) {
  if (!TryConsumePunct(p)) {
    return ErrorHere("expected '" + std::string(p) + "'");
  }
  return Status::OK();
}

Status TokenCursor::ExpectIdent(std::string_view name) {
  if (!TryConsumeIdent(name)) {
    return ErrorHere("expected keyword '" + std::string(name) + "'");
  }
  return Status::OK();
}

Result<std::string> TokenCursor::ExpectIdentifier() {
  if (!Peek().Is(TokenKind::kIdentifier)) {
    return ErrorHere("expected identifier");
  }
  return Next().text;
}

Result<long> TokenCursor::ExpectInteger() {
  if (!Peek().Is(TokenKind::kInteger)) {
    return ErrorHere("expected integer");
  }
  return std::stol(Next().text);
}

Status TokenCursor::ErrorHere(std::string_view message) const {
  const Token& tok = Peek();
  std::string got = tok.Is(TokenKind::kEnd) ? "<end of input>" : "'" + tok.text + "'";
  return Status::ParseError(std::string(message) + " but got " + got +
                            " at line " + std::to_string(tok.line) +
                            ", column " + std::to_string(tok.column));
}

}  // namespace semap
