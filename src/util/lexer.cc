#include "util/lexer.h"

#include <cctype>

namespace semap {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

/// Shared scanner. `on_bad_char(c, line, column)` is called for characters
/// no token class accepts; it returns true to skip the character and keep
/// scanning (recovery mode) or false to stop immediately (strict mode).
template <typename OnBadChar>
std::vector<Token> Scan(std::string_view input, OnBadChar&& on_bad_char) {
  std::vector<Token> out;
  int line = 1;
  int column = 1;
  size_t i = 0;
  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n && i < input.size(); ++k, ++i) {
      if (input[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
  };

  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Comments: '#' or '//' to end of line.
    if (c == '#' || (c == '/' && i + 1 < input.size() && input[i + 1] == '/')) {
      while (i < input.size() && input[i] != '\n') advance(1);
      continue;
    }
    Token tok;
    tok.line = line;
    tok.column = column;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < input.size() && IsIdentChar(input[i])) advance(1);
      tok.kind = TokenKind::kIdentifier;
      tok.text = std::string(input.substr(start, i - start));
      out.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < input.size() &&
             std::isdigit(static_cast<unsigned char>(input[i]))) {
        advance(1);
      }
      tok.kind = TokenKind::kInteger;
      tok.text = std::string(input.substr(start, i - start));
      out.push_back(std::move(tok));
      continue;
    }
    // Multi-character punctuation, longest match first.
    static constexpr std::string_view kMulti[] = {"<->", "->", "<-", "--", ".."};
    bool matched = false;
    for (std::string_view m : kMulti) {
      if (input.substr(i, m.size()) == m) {
        tok.kind = TokenKind::kPunct;
        tok.text = std::string(m);
        advance(m.size());
        out.push_back(std::move(tok));
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static constexpr std::string_view kSingle = "(){}[],;:.*<>=+-?";
    if (kSingle.find(c) != std::string_view::npos) {
      tok.kind = TokenKind::kPunct;
      tok.text = std::string(1, c);
      advance(1);
      out.push_back(std::move(tok));
      continue;
    }
    if (!on_bad_char(c, line, column)) break;
    advance(1);
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.line = line;
  end.column = column;
  out.push_back(std::move(end));
  return out;
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view input) {
  Status error = Status::OK();
  std::vector<Token> out =
      Scan(input, [&error](char c, int line, int column) {
        error = Status::ParseError(
            "unexpected character '" + std::string(1, c) + "' at line " +
            std::to_string(line) + ", column " + std::to_string(column));
        return false;
      });
  if (!error.ok()) return error;
  return out;
}

std::vector<Token> TokenizeLenient(std::string_view input,
                                   DiagnosticSink& sink) {
  return Scan(input, [&sink](char c, int line, int column) {
    sink.Error(diag::kUnexpectedChar,
               "unexpected character '" + std::string(1, c) + "'",
               SourceSpan{line, column},
               "only identifiers, integers, punctuation and #-comments "
               "are recognized");
    return true;
  });
}

const Token& TokenCursor::Peek(int lookahead) const {
  size_t idx = pos_ + static_cast<size_t>(lookahead);
  if (idx >= tokens_.size()) idx = tokens_.size() - 1;  // the kEnd sentinel
  return tokens_[idx];
}

Token TokenCursor::Next() {
  Token tok = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return tok;
}

bool TokenCursor::TryConsumePunct(std::string_view p) {
  if (Peek().IsPunct(p)) {
    Next();
    return true;
  }
  return false;
}

bool TokenCursor::TryConsumeIdent(std::string_view name) {
  if (Peek().IsIdent(name)) {
    Next();
    return true;
  }
  return false;
}

Status TokenCursor::ExpectPunct(std::string_view p) {
  if (!TryConsumePunct(p)) {
    return ErrorHere("expected '" + std::string(p) + "'");
  }
  return Status::OK();
}

Status TokenCursor::ExpectIdent(std::string_view name) {
  if (!TryConsumeIdent(name)) {
    return ErrorHere("expected keyword '" + std::string(name) + "'");
  }
  return Status::OK();
}

Result<std::string> TokenCursor::ExpectIdentifier() {
  if (!Peek().Is(TokenKind::kIdentifier)) {
    return ErrorHere("expected identifier");
  }
  return Next().text;
}

Result<long> TokenCursor::ExpectInteger() {
  if (!Peek().Is(TokenKind::kInteger)) {
    return ErrorHere("expected integer");
  }
  return std::stol(Next().text);
}

void TokenCursor::DiagnoseHere(DiagnosticSink& sink,
                               const Status& status) const {
  if (IsAlreadyDiagnosed(status)) return;
  const Token& tok = Peek();
  sink.Error(tok.Is(TokenKind::kEnd) ? diag::kUnexpectedEnd
                                     : diag::kUnexpectedToken,
             status.message(), SpanOf(tok));
}

void TokenCursor::SynchronizeTo(
    std::initializer_list<std::string_view> anchors) {
  if (!AtEnd()) Next();
  while (!AtEnd()) {
    const Token& tok = Peek();
    for (std::string_view anchor : anchors) {
      if (tok.text == anchor) return;
    }
    Next();
  }
}

void TokenCursor::SynchronizePast(std::string_view p) {
  while (!AtEnd()) {
    if (Next().IsPunct(p)) return;
  }
}

Status TokenCursor::ErrorHere(std::string_view message) const {
  const Token& tok = Peek();
  std::string got = tok.Is(TokenKind::kEnd) ? "<end of input>" : "'" + tok.text + "'";
  return Status::ParseError(std::string(message) + " but got " + got +
                            " at line " + std::to_string(tok.line) +
                            ", column " + std::to_string(tok.column));
}

}  // namespace semap
