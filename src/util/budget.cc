#include "util/budget.h"

#include <cstdlib>

namespace semap {

namespace {
// Reading the monotonic clock on every charged step would dominate tight
// loops; with work items costing at least a queue operation each, a
// deadline resolution of a few dozen steps is indistinguishable from
// exact. The first charge always checks so an already-expired deadline
// trips immediately.
constexpr uint64_t kDeadlineCheckInterval = 16;
}  // namespace

std::optional<int64_t> ResourceGovernor::FaultAfterFromEnv() {
  const char* raw = std::getenv("SEMAP_FAULT_AFTER");
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  char* end = nullptr;
  long long value = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0' || value < 0) return std::nullopt;
  return static_cast<int64_t>(value);
}

Status ResourceGovernor::Trip(Status status) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!tripped_.load(std::memory_order_relaxed)) {
      terminal_ = std::move(status);
      tripped_.store(true, std::memory_order_release);
    }
  }
  return terminal_;
}

void ResourceGovernor::Cancel(Status status) {
  if (status.ok()) return;
  Trip(std::move(status));
}

Status ResourceGovernor::Charge(int64_t steps) {
  if (exhausted()) return terminal_;
  if (parent_ != nullptr) {
    Status parent_status = parent_->Charge(steps);
    if (!parent_status.ok()) return Trip(std::move(parent_status));
  }
  const int64_t used =
      steps_used_.fetch_add(steps, std::memory_order_relaxed) + steps;
  if (fault_after_.has_value() && used > *fault_after_) {
    return Trip(Status::ResourceExhausted(
        "injected fault after " + std::to_string(*fault_after_) + " steps"));
  }
  if (max_steps_.has_value() && used > *max_steps_) {
    return Trip(Status::ResourceExhausted(
        "step budget of " + std::to_string(*max_steps_) + " exhausted"));
  }
  if (deadline_.has_value() &&
      (deadline_check_counter_.fetch_add(1, std::memory_order_relaxed) %
       kDeadlineCheckInterval) == 0 &&
      Clock::now() > *deadline_) {
    return Trip(Status::DeadlineExceeded(
        "deadline exceeded after " + std::to_string(used) + " steps"));
  }
  return Status::OK();
}

Status ResourceGovernor::ChargeMemory(int64_t bytes) {
  if (exhausted()) return terminal_;
  if (parent_ != nullptr) {
    Status parent_status = parent_->ChargeMemory(bytes);
    if (!parent_status.ok()) return Trip(std::move(parent_status));
  }
  const int64_t used =
      memory_used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (max_memory_bytes_.has_value() && used > *max_memory_bytes_) {
    return Trip(Status::ResourceExhausted(
        "memory estimate exceeds budget of " +
        std::to_string(*max_memory_bytes_) + " bytes"));
  }
  return Status::OK();
}

std::string ResourceGovernor::ToString() const {
  std::string out = "governor{steps=" + std::to_string(steps_used());
  if (max_steps_.has_value()) out += "/" + std::to_string(*max_steps_);
  if (memory_used() > 0 || max_memory_bytes_.has_value()) {
    out += ", mem=" + std::to_string(memory_used());
    if (max_memory_bytes_.has_value()) {
      out += "/" + std::to_string(*max_memory_bytes_);
    }
  }
  out += ", status=" + status().ToString();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!truncations_.empty()) {
      out += ", truncated=" + std::to_string(truncations_.size());
    }
  }
  out += "}";
  return out;
}

}  // namespace semap
