#include "util/budget.h"

#include <cstdlib>

namespace semap {

namespace {
// Reading the monotonic clock on every charged step would dominate tight
// loops; with work items costing at least a queue operation each, a
// deadline resolution of a few dozen steps is indistinguishable from
// exact. The first charge always checks so an already-expired deadline
// trips immediately.
constexpr uint64_t kDeadlineCheckInterval = 16;
}  // namespace

std::optional<int64_t> ResourceGovernor::FaultAfterFromEnv() {
  const char* raw = std::getenv("SEMAP_FAULT_AFTER");
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  char* end = nullptr;
  long long value = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0' || value < 0) return std::nullopt;
  return static_cast<int64_t>(value);
}

Status ResourceGovernor::Trip(Status status) {
  if (terminal_.ok()) terminal_ = std::move(status);
  return terminal_;
}

Status ResourceGovernor::Charge(int64_t steps) {
  if (!terminal_.ok()) return terminal_;
  steps_used_ += steps;
  if (fault_after_.has_value() && steps_used_ > *fault_after_) {
    return Trip(Status::ResourceExhausted(
        "injected fault after " + std::to_string(*fault_after_) + " steps"));
  }
  if (max_steps_.has_value() && steps_used_ > *max_steps_) {
    return Trip(Status::ResourceExhausted(
        "step budget of " + std::to_string(*max_steps_) + " exhausted"));
  }
  if (deadline_.has_value() &&
      (deadline_check_counter_++ % kDeadlineCheckInterval) == 0 &&
      Clock::now() > *deadline_) {
    return Trip(Status::DeadlineExceeded(
        "deadline exceeded after " + std::to_string(steps_used_) + " steps"));
  }
  return Status::OK();
}

Status ResourceGovernor::ChargeMemory(int64_t bytes) {
  if (!terminal_.ok()) return terminal_;
  memory_used_ += bytes;
  if (max_memory_bytes_.has_value() && memory_used_ > *max_memory_bytes_) {
    return Trip(Status::ResourceExhausted(
        "memory estimate exceeds budget of " +
        std::to_string(*max_memory_bytes_) + " bytes"));
  }
  return Status::OK();
}

std::string ResourceGovernor::ToString() const {
  std::string out = "governor{steps=" + std::to_string(steps_used_);
  if (max_steps_.has_value()) out += "/" + std::to_string(*max_steps_);
  if (memory_used_ > 0 || max_memory_bytes_.has_value()) {
    out += ", mem=" + std::to_string(memory_used_);
    if (max_memory_bytes_.has_value()) {
      out += "/" + std::to_string(*max_memory_bytes_);
    }
  }
  out += ", status=" + terminal_.ToString();
  if (!truncations_.empty()) {
    out += ", truncated=" + std::to_string(truncations_.size());
  }
  out += "}";
  return out;
}

}  // namespace semap
