#include "util/crc32.h"

#include <array>
#include <cstdio>

namespace semap {

namespace {

// Reflected-polynomial table, computed once at first use. constexpr-able,
// but a lazy static keeps compile times flat and the table off the binary
// when the store is never linked in.
const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, std::string_view data) {
  const std::array<uint32_t, 256>& table = Crc32Table();
  crc = ~crc;
  for (unsigned char byte : data) {
    crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

std::string Crc32Hex(uint32_t crc) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

}  // namespace semap
