#include "util/status.h"

namespace semap {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace semap
