#include "util/diag.h"

namespace semap {

std::string_view SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::ToString() const {
  std::string out = artifact.empty() ? std::string("<input>") : artifact;
  if (span.IsValid()) {
    out += ":" + std::to_string(span.line) + ":" + std::to_string(span.column);
  }
  out += ": ";
  out += SeverityName(severity);
  out += " ";
  out += code;
  out += ": " + message;
  if (!hint.empty()) out += " (hint: " + hint + ")";
  return out;
}

void DiagnosticSink::Add(Diagnostic d) {
  if (d.artifact.empty()) d.artifact = artifact_;
  if (d.severity == Severity::kError) ++errors_;
  if (d.severity == Severity::kWarning) ++warnings_;
  diagnostics_.push_back(std::move(d));
}

void DiagnosticSink::Error(std::string_view code, std::string message,
                           SourceSpan span, std::string hint) {
  Add(Diagnostic{Severity::kError, std::string(code), std::move(message), span,
                 /*artifact=*/{}, std::move(hint)});
}

void DiagnosticSink::Warning(std::string_view code, std::string message,
                             SourceSpan span, std::string hint) {
  Add(Diagnostic{Severity::kWarning, std::string(code), std::move(message),
                 span, /*artifact=*/{}, std::move(hint)});
}

void DiagnosticSink::Note(std::string_view code, std::string message,
                          SourceSpan span, std::string hint) {
  Add(Diagnostic{Severity::kNote, std::string(code), std::move(message), span,
                 /*artifact=*/{}, std::move(hint)});
}

std::string DiagnosticSink::ToString() const {
  std::string out;
  for (const Diagnostic& d : diagnostics_) {
    out += d.ToString() + "\n";
  }
  out += std::to_string(errors_) + " error(s), " + std::to_string(warnings_) +
         " warning(s), " +
         std::to_string(diagnostics_.size() - errors_ - warnings_) +
         " note(s)\n";
  return out;
}

namespace {
constexpr const char kAlreadyDiagnosedMessage[] = "(already diagnosed)";
}  // namespace

Status AlreadyDiagnosed() {
  return Status::ParseError(kAlreadyDiagnosedMessage);
}

bool IsAlreadyDiagnosed(const Status& status) {
  return status.code() == StatusCode::kParseError &&
         status.message() == kAlreadyDiagnosedMessage;
}

}  // namespace semap
