#include "eval/experiment.h"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "logic/containment.h"
#include "semantics/fd.h"

namespace semap::eval {

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

namespace {

std::vector<baseline::ColumnFd> SemanticFds(const sem::AnnotatedSchema& side) {
  std::vector<baseline::ColumnFd> out;
  for (const sem::TableFd& fd : sem::DeriveSchemaFds(side)) {
    out.push_back(baseline::ColumnFd{fd.table, fd.lhs, fd.rhs});
  }
  return out;
}

// Both normal forms of one query under a side's constraints: the EGD-only
// form (same size; used as the homomorphism *pattern*) and the full chase
// (the canonical instance; used as the homomorphism *target*). Equivalence
// under dependencies Σ is q1 ≡_Σ q2 iff hom(q2 → chase_Σ(q1)) and
// hom(q1 → chase_Σ(q2)); keeping the patterns unchased keeps the check
// tractable even when cyclic RICs force the chase to its atom cap.
struct NormalForms {
  logic::ConjunctiveQuery egd;
  logic::ConjunctiveQuery full;
};

NormalForms Normalize(const logic::ConjunctiveQuery& q,
                      const rel::RelationalSchema& schema,
                      const std::vector<baseline::ColumnFd>& fds,
                      const std::vector<sem::CrossTableFd>& cross) {
  NormalForms out;
  baseline::ChaseOptions egd_only;
  egd_only.apply_rics = false;
  out.egd =
      baseline::ChaseQueryWithConstraints(schema, q, fds, cross, egd_only);
  out.full = baseline::ChaseQueryWithConstraints(schema, out.egd, fds, cross);
  return out;
}

bool EquivalentUnderConstraints(const NormalForms& a, const NormalForms& b) {
  return logic::Contains(b.egd, a.full) && logic::Contains(a.egd, b.full);
}

bool MatchesWithFds(const logic::Tgd& generated, const logic::Tgd& benchmark,
                    const sem::AnnotatedSchema& source,
                    const sem::AnnotatedSchema& target,
                    const std::vector<baseline::ColumnFd>& source_fds,
                    const std::vector<baseline::ColumnFd>& target_fds,
                    const std::vector<sem::CrossTableFd>& source_cross,
                    const std::vector<sem::CrossTableFd>& target_cross) {
  if (generated.source.head.size() != benchmark.source.head.size() ||
      generated.target.head.size() != benchmark.target.head.size()) {
    return false;
  }
  NormalForms g_src = Normalize(generated.source, source.schema(), source_fds,
                                source_cross);
  NormalForms g_tgt = Normalize(generated.target, target.schema(), target_fds,
                                target_cross);
  // The frontier orders of independently produced mappings may differ; try
  // every alignment of the benchmark's frontier (frontiers are tiny).
  const size_t n = benchmark.source.head.size();
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  do {
    logic::Tgd permuted = benchmark;
    for (size_t i = 0; i < n; ++i) {
      permuted.source.head[i] = benchmark.source.head[perm[i]];
      permuted.target.head[i] = benchmark.target.head[perm[i]];
    }
    NormalForms b_src = Normalize(permuted.source, source.schema(),
                                  source_fds, source_cross);
    NormalForms b_tgt = Normalize(permuted.target, target.schema(),
                                  target_fds, target_cross);
    if (EquivalentUnderConstraints(g_src, b_src) &&
        EquivalentUnderConstraints(g_tgt, b_tgt)) {
      return true;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return false;
}

}  // namespace

bool MatchesBenchmark(const logic::Tgd& generated, const logic::Tgd& benchmark,
                      const sem::AnnotatedSchema& source,
                      const sem::AnnotatedSchema& target) {
  return MatchesWithFds(generated, benchmark, source, target,
                        SemanticFds(source), SemanticFds(target),
                        sem::DeriveCrossTableFds(source),
                        sem::DeriveCrossTableFds(target));
}

CaseResult ScoreCase(const std::string& name,
                     const std::vector<std::vector<logic::Tgd>>& generated,
                     const std::vector<logic::Tgd>& benchmark,
                     const sem::AnnotatedSchema& source,
                     const sem::AnnotatedSchema& target) {
  CaseResult result;
  result.name = name;
  result.generated = generated.size();
  result.expected = benchmark.size();
  std::vector<baseline::ColumnFd> source_fds = SemanticFds(source);
  std::vector<baseline::ColumnFd> target_fds = SemanticFds(target);
  std::vector<sem::CrossTableFd> source_cross = sem::DeriveCrossTableFds(source);
  std::vector<sem::CrossTableFd> target_cross = sem::DeriveCrossTableFds(target);
  std::vector<bool> benchmark_used(benchmark.size(), false);
  for (const std::vector<logic::Tgd>& variants : generated) {
    bool mapping_matched = false;
    for (size_t i = 0; i < benchmark.size() && !mapping_matched; ++i) {
      if (benchmark_used[i]) continue;
      for (const logic::Tgd& variant : variants) {
        if (MatchesWithFds(variant, benchmark[i], source, target, source_fds,
                           target_fds, source_cross, target_cross)) {
          benchmark_used[i] = true;
          ++result.matched;
          mapping_matched = true;
          break;
        }
      }
    }
  }
  result.precision = result.generated == 0
                         ? 0.0
                         : static_cast<double>(result.matched) /
                               static_cast<double>(result.generated);
  result.recall = result.expected == 0
                      ? 0.0
                      : static_cast<double>(result.matched) /
                            static_cast<double>(result.expected);
  return result;
}

MethodResult EvaluateSemantic(const Domain& domain,
                              const rew::SemanticMapperOptions& options) {
  MethodResult out;
  out.method = "semantic";
  for (const TestCase& test_case : domain.cases) {
    auto start = std::chrono::steady_clock::now();
    auto mappings = rew::GenerateSemanticMappings(
        domain.source, domain.target, test_case.correspondences, options);
    double elapsed = Seconds(start);
    std::vector<std::vector<logic::Tgd>> generated;
    if (mappings.ok()) {
      for (const rew::GeneratedMapping& m : *mappings) {
        generated.push_back(m.variants);
      }
    }
    CaseResult cr = ScoreCase(test_case.name, generated, test_case.benchmark,
                              domain.source, domain.target);
    cr.seconds = elapsed;
    out.total_seconds += elapsed;
    out.cases.push_back(std::move(cr));
  }
  for (const CaseResult& cr : out.cases) {
    out.avg_precision += cr.precision;
    out.avg_recall += cr.recall;
  }
  if (!out.cases.empty()) {
    out.avg_precision /= static_cast<double>(out.cases.size());
    out.avg_recall /= static_cast<double>(out.cases.size());
  }
  return out;
}

MethodResult EvaluateRic(const Domain& domain,
                         const baseline::RicMapperOptions& options) {
  MethodResult out;
  out.method = "ric";
  for (const TestCase& test_case : domain.cases) {
    auto start = std::chrono::steady_clock::now();
    auto mappings = baseline::GenerateRicMappings(
        domain.source.schema(), domain.target.schema(),
        test_case.correspondences, options);
    double elapsed = Seconds(start);
    std::vector<std::vector<logic::Tgd>> generated;
    if (mappings.ok()) {
      for (const baseline::RicMapping& m : *mappings) {
        generated.push_back({m.tgd});
      }
    }
    CaseResult cr = ScoreCase(test_case.name, generated, test_case.benchmark,
                              domain.source, domain.target);
    cr.seconds = elapsed;
    out.total_seconds += elapsed;
    out.cases.push_back(std::move(cr));
  }
  for (const CaseResult& cr : out.cases) {
    out.avg_precision += cr.precision;
    out.avg_recall += cr.recall;
  }
  if (!out.cases.empty()) {
    out.avg_precision /= static_cast<double>(out.cases.size());
    out.avg_recall /= static_cast<double>(out.cases.size());
  }
  return out;
}

}  // namespace semap::eval
