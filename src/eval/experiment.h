// Experimental harness reproducing Section 4: domains (schema pairs with
// CMs and semantics), test cases (correspondence sets plus manually
// created benchmark mappings), and the precision/recall methodology.
#ifndef SEMAP_EVAL_EXPERIMENT_H_
#define SEMAP_EVAL_EXPERIMENT_H_

#include <string>
#include <vector>

#include "baseline/ric_mapper.h"
#include "discovery/correspondence.h"
#include "logic/tgd.h"
#include "rewriting/semantic_mapper.h"
#include "semantics/stree.h"

namespace semap::eval {

/// \brief One experiment: a correspondence set and the manually-created
/// non-trivial benchmark mapping(s) expected for it.
struct TestCase {
  std::string name;
  std::vector<disc::Correspondence> correspondences;
  std::vector<logic::Tgd> benchmark;
};

/// \brief A schema pair with attached CMs and semantics, plus its test
/// cases — one row of the paper's Table 1.
struct Domain {
  std::string name;
  std::string source_label;  // e.g. "DBLP1"
  std::string target_label;  // e.g. "DBLP2"
  std::string source_cm_label;
  std::string target_cm_label;
  sem::AnnotatedSchema source;
  sem::AnnotatedSchema target;
  std::vector<TestCase> cases;
};

struct CaseResult {
  std::string name;
  size_t generated = 0;  // |P|
  size_t expected = 0;   // |R|
  size_t matched = 0;    // |P ∩ R|
  double precision = 0;
  double recall = 0;
  double seconds = 0;
};

struct MethodResult {
  std::string method;
  double avg_precision = 0;
  double avg_recall = 0;
  double total_seconds = 0;
  std::vector<CaseResult> cases;
};

/// \brief Mapping equality per the paper's strict criterion — the same
/// pair of connections — decided as tgd equivalence *under the schema
/// constraints*: both source sides are chased over the source RICs, key
/// FDs and CM-derived FDs (sem::DeriveSchemaFds), and both target sides
/// likewise, before comparing.
bool MatchesBenchmark(const logic::Tgd& generated, const logic::Tgd& benchmark,
                      const sem::AnnotatedSchema& source,
                      const sem::AnnotatedSchema& target);

/// \brief Precision/recall of a generated mapping set against a benchmark
/// set. Each generated mapping is a *connection pair* rendered by one or
/// more equivalent-intent expression variants; it matches a benchmark if
/// any variant does (the paper counts "the same pair of connections").
/// Each benchmark matches at most one generated mapping.
CaseResult ScoreCase(const std::string& name,
                     const std::vector<std::vector<logic::Tgd>>& generated,
                     const std::vector<logic::Tgd>& benchmark,
                     const sem::AnnotatedSchema& source,
                     const sem::AnnotatedSchema& target);

/// \brief Run the semantic technique over every case of `domain`.
MethodResult EvaluateSemantic(const Domain& domain,
                              const rew::SemanticMapperOptions& options = {});

/// \brief Run the RIC-based baseline over every case of `domain`.
MethodResult EvaluateRic(const Domain& domain,
                         const baseline::RicMapperOptions& options = {});

}  // namespace semap::eval

#endif  // SEMAP_EVAL_EXPERIMENT_H_
