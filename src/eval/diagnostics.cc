#include "eval/diagnostics.h"

#include "util/string_util.h"

namespace semap::eval {

std::string MappingDiagnostics::ToString() const {
  std::string out =
      "source matches: " + std::to_string(source_matches) + "\n";
  for (const TableDiagnostics& t : tables) {
    out += t.table + ": " + std::to_string(t.tuples) + " tuple(s)";
    std::vector<std::string> null_cols;
    for (const auto& [col, n] : t.nulls_per_column) {
      if (n > 0) null_cols.push_back(col + "=" + std::to_string(n));
    }
    if (!null_cols.empty()) {
      out += ", invented values: " + Join(null_cols, ", ");
    }
    if (t.key_violations > 0) {
      out += ", PRIMARY KEY VIOLATIONS: " + std::to_string(t.key_violations);
    }
    out += "\n";
  }
  return out;
}

Result<MappingDiagnostics> DiagnoseMapping(
    const logic::Tgd& tgd, const exec::Instance& source_data,
    const rel::RelationalSchema& target_schema) {
  MappingDiagnostics out;

  // Count source matches.
  logic::ConjunctiveQuery body_query = tgd.source;
  body_query.head.clear();
  for (const std::string& v : tgd.source.Variables()) {
    body_query.head.push_back(logic::Term::Var(v));
  }
  SEMAP_ASSIGN_OR_RETURN(std::vector<exec::Tuple> matches,
                         exec::EvaluateQuery(body_query, source_data));
  out.source_matches = matches.size();

  exec::Instance target_data;
  SEMAP_RETURN_NOT_OK(
      exec::ApplyTgd(tgd, source_data, &target_data).status());

  for (const auto& [table, rows] : target_data.relations()) {
    TableDiagnostics diag;
    diag.table = table;
    diag.tuples = rows.size();
    const rel::Table* def = target_schema.FindTable(table);
    std::vector<std::string> columns;
    if (def != nullptr) {
      columns = def->columns();
    }
    for (const exec::Tuple& row : rows) {
      for (size_t i = 0; i < row.size(); ++i) {
        if (!row[i].is_null) continue;
        std::string col =
            i < columns.size() ? columns[i] : "$" + std::to_string(i);
        ++diag.nulls_per_column[col];
      }
    }
    // Primary-key violations: same key values, different rows.
    if (def != nullptr && !def->primary_key().empty()) {
      std::vector<int> key_positions;
      for (const std::string& k : def->primary_key()) {
        key_positions.push_back(def->ColumnIndex(k));
      }
      for (size_t i = 0; i < rows.size(); ++i) {
        for (size_t j = i + 1; j < rows.size(); ++j) {
          bool keys_equal = true;
          for (int pos : key_positions) {
            if (pos < 0 || static_cast<size_t>(pos) >= rows[i].size() ||
                !(rows[i][static_cast<size_t>(pos)] ==
                  rows[j][static_cast<size_t>(pos)])) {
              keys_equal = false;
              break;
            }
          }
          if (keys_equal) ++diag.key_violations;
        }
      }
    }
    out.tables.push_back(std::move(diag));
  }
  return out;
}

}  // namespace semap::eval
