// Textual reporting of evaluation results: Table-1 style characteristics
// rows, per-case precision/recall details, and Figure 6/7 style
// comparison tables.
#ifndef SEMAP_EVAL_REPORT_H_
#define SEMAP_EVAL_REPORT_H_

#include <string>
#include <vector>

#include "eval/experiment.h"

namespace semap::eval {

/// \brief One row of Table 1 for `domain` (both schemas), including the
/// measured semantic mapping-generation time.
std::string FormatTable1Row(const Domain& domain,
                            const MethodResult& semantic);

/// \brief Header matching FormatTable1Row.
std::string FormatTable1Header();

/// \brief Per-case details of one method run.
std::string FormatCaseDetails(const Domain& domain,
                              const MethodResult& result);

/// \brief Figure 6/7 style comparison: one row per domain with both
/// methods' average precision or recall.
std::string FormatComparisonTable(
    const std::vector<std::string>& domain_names,
    const std::vector<MethodResult>& semantic,
    const std::vector<MethodResult>& ric, bool precision);

}  // namespace semap::eval

#endif  // SEMAP_EVAL_REPORT_H_
