// Mapping diagnostics: execute a generated mapping over a sample source
// instance and report what a user debugging the mapping would want —
// how many target tuples it produces, how many invented (null) values per
// column, and whether the materialized data violates the target's primary
// keys. Clio couples mapping generation with debugging; the paper
// positions the semantic technique as embeddable in exactly that loop
// (§6), so the library ships the corresponding instrumentation.
#ifndef SEMAP_EVAL_DIAGNOSTICS_H_
#define SEMAP_EVAL_DIAGNOSTICS_H_

#include <map>
#include <string>
#include <vector>

#include "exec/instance.h"
#include "relational/schema.h"
#include "util/result.h"

namespace semap::eval {

struct TableDiagnostics {
  std::string table;
  size_t tuples = 0;
  /// Invented (labeled-null) values per column name.
  std::map<std::string, size_t> nulls_per_column;
  /// Pairs of tuples agreeing on the primary key but differing elsewhere.
  size_t key_violations = 0;
};

struct MappingDiagnostics {
  size_t source_matches = 0;  // satisfying assignments of the source side
  std::vector<TableDiagnostics> tables;

  std::string ToString() const;
};

/// \brief Apply `tgd` to `source_data` and analyze the produced target
/// tuples against `target_schema`.
Result<MappingDiagnostics> DiagnoseMapping(
    const logic::Tgd& tgd, const exec::Instance& source_data,
    const rel::RelationalSchema& target_schema);

}  // namespace semap::eval

#endif  // SEMAP_EVAL_DIAGNOSTICS_H_
