#include "eval/report.h"

#include <cstdarg>
#include <cstdio>

namespace semap::eval {

namespace {

/// The paper's "#nodes in CM" metric: class nodes of the compiled graph.
size_t NodeCount(const sem::AnnotatedSchema& side) {
  return side.graph().ClassNodes().size();
}

std::string Sprintf(const char* fmt, ...) {
  char buffer[512];
  va_list args;
  va_start(args, fmt);
  vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  return buffer;
}

}  // namespace

std::string FormatTable1Header() {
  return Sprintf("%-10s %8s %-18s %7s %10s %10s\n", "Schema", "#tables",
                 "associated CM", "#nodes", "#mappings", "time(s)");
}

std::string FormatTable1Row(const Domain& domain,
                            const MethodResult& semantic) {
  std::string out;
  out += Sprintf("%-10s %8zu %-18s %7zu %10zu %10.4f\n",
                 domain.source_label.c_str(), domain.source.schema().tables().size(),
                 domain.source_cm_label.c_str(),
                 NodeCount(domain.source), domain.cases.size(),
                 semantic.total_seconds);
  out += Sprintf("%-10s %8zu %-18s %7zu %10s %10s\n",
                 domain.target_label.c_str(), domain.target.schema().tables().size(),
                 domain.target_cm_label.c_str(),
                 NodeCount(domain.target), "", "");
  return out;
}

std::string FormatCaseDetails(const Domain& domain,
                              const MethodResult& result) {
  std::string out = domain.name + " [" + result.method + "]\n";
  for (const CaseResult& cr : result.cases) {
    out += Sprintf("  %-28s |P|=%-3zu |R|=%-3zu matched=%-3zu P=%.2f R=%.2f "
                   "(%.4fs)\n",
                   cr.name.c_str(), cr.generated, cr.expected, cr.matched,
                   cr.precision, cr.recall, cr.seconds);
  }
  out += Sprintf("  %-28s avg precision=%.3f avg recall=%.3f\n", "==",
                 result.avg_precision, result.avg_recall);
  return out;
}

std::string FormatComparisonTable(
    const std::vector<std::string>& domain_names,
    const std::vector<MethodResult>& semantic,
    const std::vector<MethodResult>& ric, bool precision) {
  std::string out = Sprintf("%-12s %10s %10s\n", "Domain", "Semantic", "RIC");
  for (size_t i = 0; i < domain_names.size(); ++i) {
    double s = precision ? semantic[i].avg_precision : semantic[i].avg_recall;
    double r = precision ? ric[i].avg_precision : ric[i].avg_recall;
    out += Sprintf("%-12s %10.3f %10.3f\n", domain_names[i].c_str(), s, r);
  }
  return out;
}

}  // namespace semap::eval
