// semap.journal.v1 — an append-only, crash-safe record journal.
//
// The unit of durability is one framed record:
//
//   R <lsn> <type> <length> <crc32>\n<payload bytes>\n
//
// lsn is a logical sequence number, strictly increasing for the life of
// the journal (it survives segment rotation, so higher layers can order
// and deduplicate state across restarts); type is a short token the
// catalog dispatches on; length is the payload byte count; crc32 is 8
// lowercase hex digits of the payload's CRC32 (util/crc32.h). The file
// opens with a header line:
//
//   semap.journal.v1 <crc32-of-json> {"fingerprint":"<16hex>","segment":N}
//
// Appends are genuine appends — one write of the whole frame, one fsync —
// so the cost of journaling a record is O(record), not O(journal) (the
// previous checkpoint rewrote the entire file per append). Rotation and
// recovery use the classic tmp+fsync+rename segment discipline: a new
// segment is written to `<path>.tmp`, fsynced, and renamed over `<path>`,
// so the visible file is always either the old complete segment or the
// new complete segment.
//
// Replay is the single source of truth for reading (ceph's
// JournalingObjectStore discipline: everything the store knows, it
// learned by replaying the journal into memory). Replay stops at the
// first frame that is short, malformed, CRC-mismatched, or non-monotonic
// in lsn — everything before it is the recovered prefix; everything from
// it on is the torn tail a crash left, reported in the warning and
// dropped. Opening for append after a torn tail first rotates the clean
// prefix into a fresh segment, so appends never land beyond garbage.
//
// Crash-safety invariants (exercised syscall-by-syscall in
// tests/crash_matrix_test.cc through the store::Env seam):
//   I1  a kill at any write/fsync/rename leaves a file whose replay
//       yields a prefix of the records appended so far;
//   I2  replay is idempotent: replaying the same file twice yields the
//       same record sequence (lsns make duplicates detectable upstream);
//   I3  a record whose Append returned OK is in every future replay
//       (fsync-before-return), absent a post-return fault.
#ifndef SEMAP_STORE_JOURNAL_H_
#define SEMAP_STORE_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "store/env.h"
#include "util/result.h"

namespace semap::store {

inline constexpr const char kJournalSchema[] = "semap.journal.v1";

/// \brief One replayed (or to-be-rotated) record.
struct JournalRecord {
  uint64_t lsn = 0;
  std::string type;
  std::string payload;
};

/// \brief Everything replay recovered from a journal file.
struct ReplayResult {
  uint64_t fingerprint = 0;
  uint32_t segment = 0;
  std::vector<JournalRecord> records;
  /// Non-empty when a torn tail was dropped (how many bytes, and why
  /// the first bad frame was rejected).
  std::string warning;
};

class Journal {
 public:
  Journal(Journal&&) = default;
  Journal& operator=(Journal&&) = default;

  /// Start a fresh journal at `path`: header-only segment written via
  /// tmp+fsync+rename, then opened for appending.
  static Result<Journal> Create(std::string path, uint64_t fingerprint,
                                Env* env = nullptr);

  /// Open an existing journal for appending: replay it into `*replay`
  /// (fingerprint must match), rotate away any torn tail, and continue
  /// lsn numbering where the file left off. A missing file degrades to
  /// Create.
  static Result<Journal> Open(std::string path, uint64_t fingerprint,
                              ReplayResult* replay, Env* env = nullptr);

  /// Read-only replay of `path` (no append handle, no recovery rewrite):
  /// the validation and double-replay entry point.
  static Result<ReplayResult> Replay(const std::string& path,
                                     Env* env = nullptr);

  /// Append one record: frame + payload in a single write, then fsync.
  /// Returns the record's lsn.
  Result<uint64_t> Append(std::string_view type, std::string_view payload);

  /// Segment rotation: rewrite the journal as header (segment+1) plus
  /// exactly `live` (their lsns preserved) via tmp+fsync+rename, and
  /// re-open for appending. Compaction = rotating with the catalog's
  /// surviving records.
  Status Rotate(const std::vector<JournalRecord>& live);

  const std::string& path() const { return path_; }
  uint64_t fingerprint() const { return fingerprint_; }
  uint32_t segment() const { return segment_; }
  /// The lsn the next Append will assign.
  uint64_t next_lsn() const { return next_lsn_; }
  /// Records in the current segment (rotation-policy input).
  size_t record_count() const { return record_count_; }

 private:
  Journal(std::string path, Env* env) : path_(std::move(path)), env_(env) {}

  std::string HeaderLine() const;
  Status OpenAppender();

  std::string path_;
  Env* env_;
  uint64_t fingerprint_ = 0;
  uint32_t segment_ = 1;
  uint64_t next_lsn_ = 1;
  size_t record_count_ = 0;
  std::unique_ptr<File> appender_;
};

}  // namespace semap::store

#endif  // SEMAP_STORE_JOURNAL_H_
