#include "store/journal.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "util/crc32.h"
#include "util/json.h"

namespace semap::store {

namespace {

std::string HexFingerprint64(uint64_t fingerprint) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, fingerprint);
  return buf;
}

std::string HeaderJson(uint64_t fingerprint, uint32_t segment) {
  return "{\"fingerprint\":\"" + HexFingerprint64(fingerprint) +
         "\",\"segment\":" + std::to_string(segment) + "}";
}

std::string FrameFor(const JournalRecord& record) {
  std::string frame = "R " + std::to_string(record.lsn) + " " + record.type +
                      " " + std::to_string(record.payload.size()) + " " +
                      Crc32Hex(Crc32(record.payload)) + "\n";
  frame += record.payload;
  frame += '\n';
  return frame;
}

/// Parse the next space-delimited token of `line` starting at `*pos`;
/// empty when the line is exhausted.
std::string_view NextToken(std::string_view line, size_t* pos) {
  while (*pos < line.size() && line[*pos] == ' ') ++*pos;
  const size_t start = *pos;
  while (*pos < line.size() && line[*pos] != ' ') ++*pos;
  return line.substr(start, *pos - start);
}

bool ParseU64(std::string_view token, uint64_t* out, int base = 10) {
  if (token.empty()) return false;
  char* end = nullptr;
  const std::string copy(token);
  errno = 0;
  const uint64_t value = std::strtoull(copy.c_str(), &end, base);
  if (errno != 0 || end != copy.c_str() + copy.size()) return false;
  *out = value;
  return true;
}

/// Parse one record frame beginning at `pos`. On success advances `*pos`
/// past the trailing newline and returns true; on any defect fills
/// `*reason` and leaves `*pos` at the frame start (the torn-tail
/// boundary).
bool ParseFrame(std::string_view data, size_t* pos, uint64_t prev_lsn,
                JournalRecord* out, std::string* reason) {
  const size_t frame_start = *pos;
  const size_t line_end = data.find('\n', frame_start);
  if (line_end == std::string_view::npos) {
    *reason = "unterminated record header";
    return false;
  }
  const std::string_view line = data.substr(frame_start, line_end - frame_start);
  size_t cursor = 0;
  if (NextToken(line, &cursor) != "R") {
    *reason = "record header does not start with 'R'";
    return false;
  }
  uint64_t lsn = 0;
  if (!ParseU64(NextToken(line, &cursor), &lsn)) {
    *reason = "record header has no parsable lsn";
    return false;
  }
  if (lsn <= prev_lsn) {
    *reason = "lsn " + std::to_string(lsn) + " is not above predecessor " +
              std::to_string(prev_lsn);
    return false;
  }
  const std::string_view type = NextToken(line, &cursor);
  if (type.empty()) {
    *reason = "record header has no type";
    return false;
  }
  uint64_t length = 0;
  if (!ParseU64(NextToken(line, &cursor), &length)) {
    *reason = "record header has no parsable length";
    return false;
  }
  const std::string_view crc_token = NextToken(line, &cursor);
  uint64_t expected_crc = 0;
  if (crc_token.size() != 8 || !ParseU64(crc_token, &expected_crc, 16)) {
    *reason = "record header has no parsable crc32";
    return false;
  }
  const size_t payload_start = line_end + 1;
  if (payload_start + length + 1 > data.size()) {
    *reason = "record payload is short (" +
              std::to_string(data.size() - payload_start) + " of " +
              std::to_string(length) + "+1 bytes)";
    return false;
  }
  if (data[payload_start + length] != '\n') {
    *reason = "record payload is not newline-terminated at its stated length";
    return false;
  }
  const std::string_view payload = data.substr(payload_start, length);
  if (Crc32(payload) != static_cast<uint32_t>(expected_crc)) {
    *reason = "record payload fails its crc32 check";
    return false;
  }
  out->lsn = lsn;
  out->type = std::string(type);
  out->payload = std::string(payload);
  *pos = payload_start + length + 1;
  return true;
}

}  // namespace

std::string Journal::HeaderLine() const {
  const std::string json = HeaderJson(fingerprint_, segment_);
  return std::string(kJournalSchema) + " " + Crc32Hex(Crc32(json)) + " " +
         json + "\n";
}

Status Journal::OpenAppender() {
  SEMAP_ASSIGN_OR_RETURN(appender_, env_->OpenAppend(path_));
  return Status::OK();
}

Result<Journal> Journal::Create(std::string path, uint64_t fingerprint,
                                Env* env) {
  if (env == nullptr) env = Env::Default();
  Journal journal(std::move(path), env);
  journal.fingerprint_ = fingerprint;
  // Rotate pre-increments the segment, so a fresh journal starts at 1.
  journal.segment_ = 0;
  SEMAP_RETURN_NOT_OK(journal.Rotate({}));
  return journal;
}

Result<ReplayResult> Journal::Replay(const std::string& path, Env* env) {
  if (env == nullptr) env = Env::Default();
  SEMAP_ASSIGN_OR_RETURN(const std::string data, env->ReadFile(path));

  ReplayResult replay;
  const size_t header_end = data.find('\n');
  if (header_end == std::string::npos) {
    return Status::ParseError(path + ": missing journal header line");
  }
  const std::string_view header(data.data(), header_end);
  size_t cursor = 0;
  if (NextToken(header, &cursor) != kJournalSchema) {
    return Status::ParseError(path + ": not a " + kJournalSchema + " file");
  }
  const std::string_view header_crc_token = NextToken(header, &cursor);
  uint64_t header_crc = 0;
  if (header_crc_token.size() != 8 ||
      !ParseU64(header_crc_token, &header_crc, 16)) {
    return Status::ParseError(path + ": journal header has no parsable crc32");
  }
  while (cursor < header.size() && header[cursor] == ' ') ++cursor;
  const std::string_view header_json = header.substr(cursor);
  if (Crc32(header_json) != static_cast<uint32_t>(header_crc)) {
    return Status::ParseError(path + ": journal header fails its crc32 check");
  }
  SEMAP_ASSIGN_OR_RETURN(const json::Value meta, json::Parse(header_json));
  const std::string fingerprint_hex = meta.GetString("fingerprint");
  if (!ParseU64(fingerprint_hex, &replay.fingerprint, 16)) {
    return Status::ParseError(path + ": journal header has no fingerprint");
  }
  replay.segment = static_cast<uint32_t>(meta.GetInt("segment", 1));

  size_t pos = header_end + 1;
  uint64_t prev_lsn = 0;
  while (pos < data.size()) {
    JournalRecord record;
    std::string reason;
    if (!ParseFrame(data, &pos, prev_lsn, &record, &reason)) {
      replay.warning = "dropped torn journal tail (" +
                       std::to_string(data.size() - pos) + " bytes at offset " +
                       std::to_string(pos) + "): " + reason;
      break;
    }
    prev_lsn = record.lsn;
    replay.records.push_back(std::move(record));
  }
  return replay;
}

Result<Journal> Journal::Open(std::string path, uint64_t fingerprint,
                              ReplayResult* replay, Env* env) {
  if (env == nullptr) env = Env::Default();
  if (!env->Exists(path)) {
    *replay = ReplayResult{};
    replay->fingerprint = fingerprint;
    replay->segment = 1;
    return Create(std::move(path), fingerprint, env);
  }
  SEMAP_ASSIGN_OR_RETURN(*replay, Replay(path, env));
  if (replay->fingerprint != fingerprint) {
    return Status::InvalidArgument(
        path + ": journal fingerprint " +
        HexFingerprint64(replay->fingerprint) + " does not match inputs (" +
        HexFingerprint64(fingerprint) + ")");
  }
  Journal journal(std::move(path), env);
  journal.fingerprint_ = fingerprint;
  journal.segment_ = replay->segment;
  journal.record_count_ = replay->records.size();
  journal.next_lsn_ =
      replay->records.empty() ? 1 : replay->records.back().lsn + 1;
  if (!replay->warning.empty()) {
    // Appending past garbage would put durable records beyond the point
    // where replay stops; rewrite the clean prefix as a fresh segment
    // first.
    SEMAP_RETURN_NOT_OK(journal.Rotate(replay->records));
  } else {
    SEMAP_RETURN_NOT_OK(journal.OpenAppender());
  }
  return journal;
}

Result<uint64_t> Journal::Append(std::string_view type,
                                 std::string_view payload) {
  if (appender_ == nullptr) {
    return Status::Internal(path_ + ": journal is not open for appending");
  }
  JournalRecord record;
  record.lsn = next_lsn_;
  record.type = std::string(type);
  record.payload = std::string(payload);
  SEMAP_RETURN_NOT_OK(appender_->Write(FrameFor(record)));
  SEMAP_RETURN_NOT_OK(appender_->Sync());
  ++next_lsn_;
  ++record_count_;
  return record.lsn;
}

Status Journal::Rotate(const std::vector<JournalRecord>& live) {
  appender_.reset();
  ++segment_;
  std::string content = HeaderLine();
  uint64_t max_lsn = 0;
  for (const JournalRecord& record : live) {
    content += FrameFor(record);
    if (record.lsn > max_lsn) max_lsn = record.lsn;
  }
  const std::string tmp = path_ + ".tmp";
  SEMAP_ASSIGN_OR_RETURN(std::unique_ptr<File> out, env_->OpenTrunc(tmp));
  SEMAP_RETURN_NOT_OK(out->Write(content));
  SEMAP_RETURN_NOT_OK(out->Sync());
  SEMAP_RETURN_NOT_OK(out->Close());
  out.reset();
  SEMAP_RETURN_NOT_OK(env_->Rename(tmp, path_));
  record_count_ = live.size();
  if (next_lsn_ <= max_lsn) next_lsn_ = max_lsn + 1;
  return OpenAppender();
}

}  // namespace semap::store
