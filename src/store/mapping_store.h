// MappingStore — the crash-safe catalog of discovered mappings and run
// metadata, journaled through store::Journal.
//
// The store holds two keyed namespaces:
//   * units: per-table discovery results (the checkpoint layer serializes
//     a CheckpointedUnit per key — key is the table name);
//   * meta:  run-level metadata (options digest, schema notes, anything
//     a resumed run wants to cross-check).
//
// Everything the store knows it learned by replaying the journal
// (store/journal.h): each Put appends one record `<key>\n<value>` and
// fsyncs before updating memory, so a catalog entry exists in memory
// only if it is durable. Replay applies records idempotently — a record
// updates a key iff its lsn is above the lsn already applied for that
// key — so replaying a journal twice (or a compacted journal that still
// carries a superseded record) converges to the same catalog.
//
// Compaction rewrites the journal as one record per live key (latest
// value, original lsn) via the journal's tmp+fsync+rename rotation. The
// store self-compacts on open once dead records dominate, so a long
// append-heavy run cannot grow the file without bound.
#ifndef SEMAP_STORE_MAPPING_STORE_H_
#define SEMAP_STORE_MAPPING_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "store/journal.h"
#include "util/result.h"

namespace semap::store {

class MappingStore {
 public:
  MappingStore(MappingStore&&) = default;
  MappingStore& operator=(MappingStore&&) = default;

  /// Open (or create) the store at `path`. The journal's fingerprint must
  /// match `fingerprint` — opening someone else's store is refused, not
  /// repaired. A torn tail is dropped with a warning(); dead records
  /// trigger self-compaction.
  static Result<MappingStore> Open(std::string path, uint64_t fingerprint,
                                   Env* env = nullptr);

  /// Start an empty store at `path`, atomically replacing whatever file
  /// is there (the journal's tmp+fsync+rename rotation): the
  /// ignore-existing-content counterpart of Open.
  static Result<MappingStore> Create(std::string path, uint64_t fingerprint,
                                     Env* env = nullptr);

  /// Durably set `key` in the unit namespace (fsync-before-return).
  Status PutUnit(std::string_view key, std::string_view value);
  /// Durably set `key` in the meta namespace.
  Status PutMeta(std::string_view key, std::string_view value);

  const std::map<std::string, std::string>& units() const { return units_; }
  const std::map<std::string, std::string>& meta() const { return meta_; }

  /// Rewrite the journal to exactly the live catalog (latest value per
  /// key, lsns preserved).
  Status Compact();

  /// Non-empty when opening dropped a torn tail.
  const std::string& warning() const { return warning_; }
  const std::string& path() const { return journal_.path(); }
  uint64_t fingerprint() const { return journal_.fingerprint(); }
  /// Records in the current journal segment (dead + live); tests use
  /// this to observe compaction.
  size_t journal_record_count() const { return journal_.record_count(); }

 private:
  explicit MappingStore(Journal journal) : journal_(std::move(journal)) {}

  Status Put(std::string_view type, std::string_view key,
             std::string_view value);
  size_t live_count() const { return units_.size() + meta_.size(); }

  Journal journal_;
  std::map<std::string, std::string> units_;
  std::map<std::string, std::string> meta_;
  /// Latest applied lsn per "<type>:<key>" — the idempotency ledger.
  std::map<std::string, uint64_t> applied_;
  std::string warning_;
};

}  // namespace semap::store

#endif  // SEMAP_STORE_MAPPING_STORE_H_
