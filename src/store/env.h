// store::Env — the syscall seam under all mapping-store I/O.
//
// Crash safety cannot be tested by hoping: every claim the journal makes
// ("a kill at any point leaves a recoverable prefix") has to be driven
// through an actual fault at an actual syscall. So the store never calls
// open/write/fsync/rename directly; it goes through an Env, and the test
// Env can fail, short-write, or simulate a process kill at the k-th
// occurrence of any operation.
//
// Three implementations matter:
//   * the default Env (Env::Default()) does real POSIX I/O;
//   * FaultEnv wraps another Env with a fault-point registry — per-op
//     counters plus one armed FaultPlan. Mode kFail makes the k-th op
//     return an error and then recovers (a transient fault: ENOSPC that
//     clears, a blip); kShortWrite persists half of the k-th write and
//     then behaves as killed; kCrash persists nothing of the k-th op and
//     behaves as killed. "Killed" means every later operation through
//     this Env fails — the on-disk state is frozen exactly as a SIGKILL
//     at that syscall would leave it, while the hosting test process
//     keeps running and can then "restart" by reopening the store with a
//     clean Env.
//   * counters alone (no plan) make FaultEnv a probe for sizing crash
//     matrices: run once, read counts(), sweep k over them.
//
// SEMAP_IO_FAULT extends the SEMAP_FAULT_AFTER idiom to I/O: set it to
// "<op>:<k>[:<mode>]" (e.g. "write:3:crash", "rename:1:fail",
// "fsync:2:short") and semap_map arms a FaultEnv over the default Env,
// so crash drills run against an unmodified binary.
#ifndef SEMAP_STORE_ENV_H_
#define SEMAP_STORE_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "util/result.h"

namespace semap::store {

/// \brief The I/O operations the fault registry can count and fail.
enum class IoOp { kOpen, kWrite, kFsync, kRename };

const char* IoOpName(IoOp op);

/// \brief An open file handle behind the seam. Write/Sync route through
/// the owning Env's fault registry; Close is best-effort (destructor
/// closes too).
class File {
 public:
  virtual ~File() = default;
  virtual Status Write(std::string_view data) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  /// Open `path` for appending (created if missing).
  virtual Result<std::unique_ptr<File>> OpenAppend(const std::string& path) = 0;
  /// Open `path` truncated (the tmp side of tmp+fsync+rename).
  virtual Result<std::unique_ptr<File>> OpenTrunc(const std::string& path) = 0;
  /// Atomically replace `to` with `from` (POSIX rename semantics).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  /// Whole-file read; NotFound when the file does not exist.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;
  virtual bool Exists(const std::string& path) = 0;
  virtual Status Remove(const std::string& path) = 0;

  /// The real-POSIX environment (process-wide singleton, never null).
  static Env* Default();
};

enum class FaultMode {
  /// The k-th op fails and the environment recovers: a transient error.
  kFail,
  /// The k-th op is a write that persists only its first half, then the
  /// environment behaves as killed. For non-write ops, same as kCrash.
  kShortWrite,
  /// The k-th op persists nothing and the environment behaves as killed:
  /// every later operation fails, freezing the on-disk state.
  kCrash,
};

/// \brief One armed fault: fail the `after`-th (1-based) occurrence of
/// `op` with `mode`.
struct FaultPlan {
  IoOp op = IoOp::kWrite;
  int64_t after = 0;
  FaultMode mode = FaultMode::kCrash;
};

/// Parsed SEMAP_IO_FAULT ("<op>:<k>[:<mode>]"); nullopt when unset or
/// malformed (a malformed value is ignored, like SEMAP_FAULT_AFTER).
std::optional<FaultPlan> FaultPlanFromEnv();

/// \brief Fault-injecting Env: counts every operation and fires the
/// armed plan at its k-th occurrence. Not thread-safe by design — store
/// I/O is already serialized by its callers (the supervisor journals
/// under its completion lock).
class FaultEnv : public Env {
 public:
  /// Wrap `base` (not owned; Env::Default() if null).
  explicit FaultEnv(Env* base = nullptr);

  void set_plan(FaultPlan plan) { plan_ = plan; }
  void clear_plan() { plan_.reset(); }

  /// Ops observed so far, per kind (counted whether or not they failed).
  int64_t count(IoOp op) const;
  const std::map<IoOp, int64_t>& counts() const { return counts_; }

  /// True once a kCrash/kShortWrite plan fired: the simulated process is
  /// dead and all further I/O fails.
  bool crashed() const { return crashed_; }

  Result<std::unique_ptr<File>> OpenAppend(const std::string& path) override;
  Result<std::unique_ptr<File>> OpenTrunc(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Result<std::string> ReadFile(const std::string& path) override;
  bool Exists(const std::string& path) override;
  Status Remove(const std::string& path) override;

 private:
  friend class FaultFile;

  /// Count one occurrence of `op` and decide its fate: OK to proceed,
  /// or the injected failure. Sets crashed_ for kill modes.
  Status Hit(IoOp op);
  /// Like Hit for kWrite, but reports how many bytes of `size` to
  /// persist before failing (size = all of them = no fault).
  size_t WriteBudget(size_t size, Status* status);

  Env* base_;
  std::optional<FaultPlan> plan_;
  std::map<IoOp, int64_t> counts_;
  bool crashed_ = false;
};

}  // namespace semap::store

#endif  // SEMAP_STORE_ENV_H_
