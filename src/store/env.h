// store::Env — the syscall seam under all mapping-store and serving I/O.
//
// Crash safety cannot be tested by hoping: every claim the journal makes
// ("a kill at any point leaves a recoverable prefix") has to be driven
// through an actual fault at an actual syscall. So the store never calls
// open/write/fsync/rename directly; it goes through an Env, and the test
// Env can fail, short-write, or simulate a process kill at the k-th
// occurrence of any operation. The serving layer (src/serve/) routes its
// socket ops — accept/recv/send/close — through the same registry, so
// one sweep covers both halves of a served request: the wire and the
// journal.
//
// Three implementations matter:
//   * the default Env (Env::Default()) does real POSIX I/O;
//   * FaultEnv wraps another Env with a fault-point registry — per-op
//     counters plus a list of armed FaultPlans. Mode kFail makes the
//     k-th op return an error and then recovers (a transient fault:
//     ENOSPC that clears, a blip); kReset is the socket flavour of a
//     transient fault — it kills the connection the op served, not the
//     process (for file ops it behaves like kFail); kShortWrite persists
//     half of the k-th write and then behaves as killed (on a socket:
//     half the bytes cross the wire and the peer vanishes); kCrash
//     persists nothing of the k-th op and behaves as killed. "Killed"
//     means every later operation through this Env fails — the on-disk
//     state is frozen exactly as a SIGKILL at that syscall would leave
//     it, while the hosting test process keeps running and can then
//     "restart" by reopening the store with a clean Env.
//   * counters alone (no plan) make FaultEnv a probe for sizing crash
//     matrices: run once, read counts(), sweep k over them.
//
// SEMAP_IO_FAULT extends the SEMAP_FAULT_AFTER idiom to I/O: set it to a
// comma-separated list of "<op>:<k>[:<mode>]" specs (e.g.
// "write:3:crash", "rename:1:fail", "send:2:reset", or the composed
// "write:2:short,fsync:4:crash") and semap_map / semap_serve arm a
// FaultEnv over the default Env, so crash drills run against unmodified
// binaries. A list with any malformed spec is ignored whole — a typo'd
// drill should do nothing rather than half of something.
//
// FaultEnv is thread-safe: serve workers share one registry, so counters
// and plan matching are serialized by an internal mutex.
#ifndef SEMAP_STORE_ENV_H_
#define SEMAP_STORE_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace semap::store {

/// \brief The I/O operations the fault registry can count and fail.
/// kOpen..kRename are filesystem ops issued by the store; kAccept..kClose
/// are socket ops issued by the serving layer.
enum class IoOp { kOpen, kWrite, kFsync, kRename, kAccept, kRecv, kSend, kClose };

const char* IoOpName(IoOp op);

/// \brief An open file handle behind the seam. Write/Sync route through
/// the owning Env's fault registry; Close is best-effort (destructor
/// closes too).
class File {
 public:
  virtual ~File() = default;
  virtual Status Write(std::string_view data) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  /// Open `path` for appending (created if missing).
  virtual Result<std::unique_ptr<File>> OpenAppend(const std::string& path) = 0;
  /// Open `path` truncated (the tmp side of tmp+fsync+rename).
  virtual Result<std::unique_ptr<File>> OpenTrunc(const std::string& path) = 0;
  /// Atomically replace `to` with `from` (POSIX rename semantics).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  /// Whole-file read; NotFound when the file does not exist.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;
  virtual bool Exists(const std::string& path) = 0;
  virtual Status Remove(const std::string& path) = 0;

  /// The real-POSIX environment (process-wide singleton, never null).
  static Env* Default();
};

enum class FaultMode {
  /// The k-th op fails and the environment recovers: a transient error.
  kFail,
  /// Socket ops: the k-th op fails and its connection is torn down, but
  /// the environment recovers — a peer reset, not a process death. For
  /// file ops, same as kFail.
  kReset,
  /// The k-th op is a write/send that persists (delivers) only its first
  /// half, then the environment behaves as killed. For other ops, same
  /// as kCrash.
  kShortWrite,
  /// The k-th op persists nothing and the environment behaves as killed:
  /// every later operation fails, freezing the on-disk state.
  kCrash,
};

/// \brief One armed fault: fail the `after`-th (1-based) occurrence of
/// `op` with `mode`.
struct FaultPlan {
  IoOp op = IoOp::kWrite;
  int64_t after = 0;
  FaultMode mode = FaultMode::kCrash;
};

/// Parsed SEMAP_IO_FAULT: a comma-separated list of "<op>:<k>[:<mode>]"
/// specs. Empty when unset; empty when ANY spec is malformed (the whole
/// value is ignored, like SEMAP_FAULT_AFTER).
std::vector<FaultPlan> FaultPlansFromEnv();

/// Back-compat single-plan view: the first plan of FaultPlansFromEnv(),
/// nullopt when the variable is unset or malformed.
std::optional<FaultPlan> FaultPlanFromEnv();

/// \brief What HitSocket decided for one socket operation.
struct SocketVerdict {
  /// Bytes of the op's payload that still cross the wire before the
  /// fault lands (send: bytes delivered; recv: bytes handed to the
  /// caller). Equal to the full size when no fault fired.
  size_t budget = 0;
  /// True when the connection is dead after this op (reset, short, or
  /// kill). False for kFail: the op errored but the socket may retry.
  bool conn_fatal = false;
  Status status = Status::OK();
};

/// \brief Fault-injecting Env: counts every operation and fires each
/// armed plan at its k-th occurrence. When several plans match the same
/// occurrence the strongest mode wins (crash > short > reset > fail).
/// Thread-safe: counters and plans are guarded by a mutex so serve
/// workers can share one registry.
class FaultEnv : public Env {
 public:
  /// Wrap `base` (not owned; Env::Default() if null).
  explicit FaultEnv(Env* base = nullptr);

  /// Replace all armed plans with this one.
  void set_plan(FaultPlan plan);
  void set_plans(std::vector<FaultPlan> plans);
  void add_plan(FaultPlan plan);
  void clear_plan();

  /// Ops observed so far, per kind (counted whether or not they failed).
  int64_t count(IoOp op) const;
  /// Snapshot of all per-op counters (copied under the lock).
  std::map<IoOp, int64_t> counts() const;

  /// True once a kCrash/kShortWrite plan fired: the simulated process is
  /// dead and all further I/O fails.
  bool crashed() const;

  /// Count one occurrence of a socket `op` and decide its fate. `size`
  /// is the payload size for send/recv (0 for accept/close); the verdict
  /// says how many of those bytes survive and whether the connection or
  /// the whole environment dies. Public: the serve socket layer is in a
  /// different library and wraps real sockets, not Files.
  SocketVerdict HitSocket(IoOp op, size_t size);

  Result<std::unique_ptr<File>> OpenAppend(const std::string& path) override;
  Result<std::unique_ptr<File>> OpenTrunc(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Result<std::string> ReadFile(const std::string& path) override;
  bool Exists(const std::string& path) override;
  Status Remove(const std::string& path) override;

 private:
  friend class FaultFile;

  /// Count one occurrence of `op` and decide its fate: OK to proceed,
  /// or the injected failure. Sets crashed_ for kill modes.
  Status Hit(IoOp op);
  /// Like Hit for kWrite, but reports how many bytes of `size` to
  /// persist before failing (size = all of them = no fault).
  size_t WriteBudget(size_t size, Status* status);

  /// The strongest armed mode for the `seen`-th occurrence of `op`, or
  /// nullopt. Caller holds mu_.
  std::optional<FaultMode> MatchLocked(IoOp op, int64_t seen) const;

  Env* base_;
  mutable std::mutex mu_;
  std::vector<FaultPlan> plans_;
  std::map<IoOp, int64_t> counts_;
  bool crashed_ = false;
};

}  // namespace semap::store

#endif  // SEMAP_STORE_ENV_H_
