#include "store/mapping_store.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace semap::store {

namespace {

constexpr char kUnitType[] = "unit";
constexpr char kMetaType[] = "meta";

/// Dead records tolerated before open-time self-compaction: a segment may
/// carry up to this many superseded records per live one (plus a flat
/// allowance so small stores never churn).
constexpr size_t kCompactSlack = 64;

std::string LedgerKey(std::string_view type, std::string_view key) {
  return std::string(type) + ":" + std::string(key);
}

std::string FramePayload(std::string_view key, std::string_view value) {
  return std::string(key) + "\n" + std::string(value);
}

/// Split a `<key>\n<value>` payload; false when there is no separator.
bool SplitPayload(const std::string& payload, std::string* key,
                  std::string* value) {
  const size_t nl = payload.find('\n');
  if (nl == std::string::npos) return false;
  *key = payload.substr(0, nl);
  *value = payload.substr(nl + 1);
  return true;
}

}  // namespace

Result<MappingStore> MappingStore::Open(std::string path, uint64_t fingerprint,
                                        Env* env) {
  ReplayResult replay;
  SEMAP_ASSIGN_OR_RETURN(Journal journal,
                         Journal::Open(std::move(path), fingerprint, &replay,
                                       env));
  MappingStore store(std::move(journal));
  store.warning_ = replay.warning;
  for (const JournalRecord& record : replay.records) {
    std::string key;
    std::string value;
    if (!SplitPayload(record.payload, &key, &value)) {
      // An intact frame with an unsplittable payload is a writer bug,
      // not a crash artifact; surface it rather than guessing.
      return Status::ParseError(store.journal_.path() + ": record lsn " +
                                std::to_string(record.lsn) +
                                " has no key/value separator");
    }
    const std::string ledger = LedgerKey(record.type, key);
    auto applied = store.applied_.find(ledger);
    if (applied != store.applied_.end() && record.lsn <= applied->second) {
      continue;  // Idempotent replay: an older (or re-seen) record is a no-op.
    }
    store.applied_[ledger] = record.lsn;
    if (record.type == kUnitType) {
      store.units_[key] = std::move(value);
    } else if (record.type == kMetaType) {
      store.meta_[key] = std::move(value);
    }
    // Unknown types are preserved in the ledger but not materialized:
    // a newer writer's records survive replay by an older reader.
  }
  if (store.journal_.record_count() >
      2 * store.live_count() + kCompactSlack) {
    SEMAP_RETURN_NOT_OK(store.Compact());
  }
  return store;
}

Result<MappingStore> MappingStore::Create(std::string path,
                                          uint64_t fingerprint, Env* env) {
  SEMAP_ASSIGN_OR_RETURN(Journal journal,
                         Journal::Create(std::move(path), fingerprint, env));
  return MappingStore(std::move(journal));
}

Status MappingStore::Put(std::string_view type, std::string_view key,
                         std::string_view value) {
  SEMAP_ASSIGN_OR_RETURN(const uint64_t lsn,
                         journal_.Append(type, FramePayload(key, value)));
  applied_[LedgerKey(type, key)] = lsn;
  if (type == kUnitType) {
    units_[std::string(key)] = std::string(value);
  } else {
    meta_[std::string(key)] = std::string(value);
  }
  return Status::OK();
}

Status MappingStore::PutUnit(std::string_view key, std::string_view value) {
  return Put(kUnitType, key, value);
}

Status MappingStore::PutMeta(std::string_view key, std::string_view value) {
  return Put(kMetaType, key, value);
}

Status MappingStore::Compact() {
  std::vector<JournalRecord> live;
  live.reserve(live_count());
  for (const auto& [key, value] : meta_) {
    JournalRecord record;
    record.lsn = applied_[LedgerKey(kMetaType, key)];
    record.type = kMetaType;
    record.payload = FramePayload(key, value);
    live.push_back(std::move(record));
  }
  for (const auto& [key, value] : units_) {
    JournalRecord record;
    record.lsn = applied_[LedgerKey(kUnitType, key)];
    record.type = kUnitType;
    record.payload = FramePayload(key, value);
    live.push_back(std::move(record));
  }
  // The journal requires strictly increasing lsns within a segment.
  std::sort(live.begin(), live.end(),
            [](const JournalRecord& a, const JournalRecord& b) {
              return a.lsn < b.lsn;
            });
  return journal_.Rotate(live);
}

}  // namespace semap::store
