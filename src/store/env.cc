#include "store/env.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace semap::store {

const char* IoOpName(IoOp op) {
  switch (op) {
    case IoOp::kOpen:
      return "open";
    case IoOp::kWrite:
      return "write";
    case IoOp::kFsync:
      return "fsync";
    case IoOp::kRename:
      return "rename";
    case IoOp::kAccept:
      return "accept";
    case IoOp::kRecv:
      return "recv";
    case IoOp::kSend:
      return "send";
    case IoOp::kClose:
      return "close";
  }
  return "?";
}

namespace {

// --- the real POSIX environment ------------------------------------------

class PosixFile : public File {
 public:
  explicit PosixFile(int fd) : fd_(fd) {}
  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Write(std::string_view data) override {
    size_t written = 0;
    while (written < data.size()) {
      ssize_t n = ::write(fd_, data.data() + written, data.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(std::string("write failed: ") +
                                std::strerror(errno));
      }
      written += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return Status::Internal(std::string("fsync failed: ") +
                              std::strerror(errno));
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) {
      return Status::Internal(std::string("close failed: ") +
                              std::strerror(errno));
    }
    return Status::OK();
  }

 private:
  int fd_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<File>> OpenAppend(const std::string& path) override {
    return Open(path, O_WRONLY | O_CREAT | O_APPEND);
  }

  Result<std::unique_ptr<File>> OpenTrunc(const std::string& path) override {
    return Open(path, O_WRONLY | O_CREAT | O_TRUNC);
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::Internal("rename " + from + " -> " + to + " failed: " +
                              std::strerror(errno));
    }
    return Status::OK();
  }

  Result<std::string> ReadFile(const std::string& path) override {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::NotFound("cannot open " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  bool Exists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Status Remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Status::Internal("unlink " + path + " failed: " +
                              std::strerror(errno));
    }
    return Status::OK();
  }

 private:
  Result<std::unique_ptr<File>> Open(const std::string& path, int flags) {
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
      return Status::Internal("cannot open " + path + ": " +
                              std::strerror(errno));
    }
    return std::unique_ptr<File>(new PosixFile(fd));
  }
};

// --- the fault-injecting environment -------------------------------------

Status SimulatedCrash() {
  return Status::Internal("simulated crash: environment is dead");
}

bool ParseFaultSpec(const std::string& spec, FaultPlan* plan) {
  const size_t first = spec.find(':');
  if (first == std::string::npos) return false;
  const size_t second = spec.find(':', first + 1);
  const std::string op = spec.substr(0, first);
  const std::string count = second == std::string::npos
                                ? spec.substr(first + 1)
                                : spec.substr(first + 1, second - first - 1);
  const std::string mode =
      second == std::string::npos ? "crash" : spec.substr(second + 1);

  if (op == "open") {
    plan->op = IoOp::kOpen;
  } else if (op == "write") {
    plan->op = IoOp::kWrite;
  } else if (op == "fsync") {
    plan->op = IoOp::kFsync;
  } else if (op == "rename") {
    plan->op = IoOp::kRename;
  } else if (op == "accept") {
    plan->op = IoOp::kAccept;
  } else if (op == "recv") {
    plan->op = IoOp::kRecv;
  } else if (op == "send") {
    plan->op = IoOp::kSend;
  } else if (op == "close") {
    plan->op = IoOp::kClose;
  } else {
    return false;
  }
  char* end = nullptr;
  plan->after = std::strtoll(count.c_str(), &end, 10);
  if (end == count.c_str() || *end != '\0' || plan->after <= 0) {
    return false;
  }
  if (mode == "fail") {
    plan->mode = FaultMode::kFail;
  } else if (mode == "reset") {
    plan->mode = FaultMode::kReset;
  } else if (mode == "short") {
    plan->mode = FaultMode::kShortWrite;
  } else if (mode == "crash") {
    plan->mode = FaultMode::kCrash;
  } else {
    return false;
  }
  return true;
}

}  // namespace

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

std::vector<FaultPlan> FaultPlansFromEnv() {
  const char* raw = std::getenv("SEMAP_IO_FAULT");
  if (raw == nullptr || *raw == '\0') return {};
  const std::string value(raw);
  std::vector<FaultPlan> plans;
  size_t start = 0;
  while (start <= value.size()) {
    const size_t comma = value.find(',', start);
    const std::string spec =
        value.substr(start, comma == std::string::npos ? std::string::npos
                                                       : comma - start);
    FaultPlan plan;
    if (!ParseFaultSpec(spec, &plan)) return {};  // all-or-nothing
    plans.push_back(plan);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return plans;
}

std::optional<FaultPlan> FaultPlanFromEnv() {
  std::vector<FaultPlan> plans = FaultPlansFromEnv();
  if (plans.empty()) return std::nullopt;
  return plans.front();
}

// Named (not anonymous) so FaultEnv's friend declaration reaches it.
/// File handle routing Write/Sync through the owning FaultEnv's registry.
class FaultFile : public File {
 public:
  FaultFile(FaultEnv* env, std::unique_ptr<File> base)
      : env_(env), base_(std::move(base)) {}

  Status Write(std::string_view data) override {
    Status verdict;
    const size_t budget = env_->WriteBudget(data.size(), &verdict);
    if (budget > 0) {
      // Persist the surviving prefix even when the op then "kills" the
      // process: that is exactly what a real crash mid-write leaves.
      Status written = base_->Write(data.substr(0, budget));
      if (!written.ok()) return written;
    }
    return verdict;
  }

  Status Sync() override {
    SEMAP_RETURN_NOT_OK(env_->Hit(IoOp::kFsync));
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

 private:
  FaultEnv* env_;
  std::unique_ptr<File> base_;
};

FaultEnv::FaultEnv(Env* base)
    : base_(base != nullptr ? base : Env::Default()) {}

void FaultEnv::set_plan(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plans_.assign(1, plan);
}

void FaultEnv::set_plans(std::vector<FaultPlan> plans) {
  std::lock_guard<std::mutex> lock(mu_);
  plans_ = std::move(plans);
}

void FaultEnv::add_plan(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plans_.push_back(plan);
}

void FaultEnv::clear_plan() {
  std::lock_guard<std::mutex> lock(mu_);
  plans_.clear();
}

int64_t FaultEnv::count(IoOp op) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counts_.find(op);
  return it == counts_.end() ? 0 : it->second;
}

std::map<IoOp, int64_t> FaultEnv::counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

bool FaultEnv::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

std::optional<FaultMode> FaultEnv::MatchLocked(IoOp op, int64_t seen) const {
  std::optional<FaultMode> strongest;
  for (const FaultPlan& plan : plans_) {
    if (plan.op != op || plan.after != seen) continue;
    // FaultMode's declaration order IS the severity order.
    if (!strongest.has_value() || plan.mode > *strongest) {
      strongest = plan.mode;
    }
  }
  return strongest;
}

Status FaultEnv::Hit(IoOp op) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return SimulatedCrash();
  const int64_t seen = ++counts_[op];
  const std::optional<FaultMode> mode = MatchLocked(op, seen);
  if (!mode.has_value()) return Status::OK();
  const std::string what = std::string("injected ") + IoOpName(op) +
                           " fault at occurrence #" + std::to_string(seen);
  // kReset has no connection to kill on the filesystem side: transient.
  if (*mode == FaultMode::kFail || *mode == FaultMode::kReset) {
    return Status::Internal(what);
  }
  crashed_ = true;
  return Status::Internal(what + " (simulated kill)");
}

size_t FaultEnv::WriteBudget(size_t size, Status* status) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) {
    *status = SimulatedCrash();
    return 0;
  }
  const int64_t seen = ++counts_[IoOp::kWrite];
  const std::optional<FaultMode> mode = MatchLocked(IoOp::kWrite, seen);
  if (!mode.has_value()) {
    *status = Status::OK();
    return size;
  }
  const std::string what =
      "injected write fault at occurrence #" + std::to_string(seen);
  if (*mode == FaultMode::kFail || *mode == FaultMode::kReset) {
    *status = Status::Internal(what);
    return 0;
  }
  crashed_ = true;
  *status = Status::Internal(what + " (simulated kill)");
  return *mode == FaultMode::kShortWrite ? size / 2 : 0;
}

SocketVerdict FaultEnv::HitSocket(IoOp op, size_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  SocketVerdict verdict;
  if (crashed_) {
    verdict.conn_fatal = true;
    verdict.status = SimulatedCrash();
    return verdict;
  }
  const int64_t seen = ++counts_[op];
  const std::optional<FaultMode> mode = MatchLocked(op, seen);
  if (!mode.has_value()) {
    verdict.budget = size;
    return verdict;
  }
  const std::string what = std::string("injected ") + IoOpName(op) +
                           " fault at occurrence #" + std::to_string(seen);
  switch (*mode) {
    case FaultMode::kFail:
      verdict.status = Status::Internal(what);
      break;
    case FaultMode::kReset:
      verdict.conn_fatal = true;
      verdict.status = Status::Internal(what + " (connection reset)");
      break;
    case FaultMode::kShortWrite:
      // Half the payload crosses the wire, then the peer is gone. The
      // process lives: a torn connection is a client's problem, not a
      // server death.
      verdict.budget = size / 2;
      verdict.conn_fatal = true;
      verdict.status = Status::Internal(what + " (short, peer lost)");
      break;
    case FaultMode::kCrash:
      crashed_ = true;
      verdict.conn_fatal = true;
      verdict.status = Status::Internal(what + " (simulated kill)");
      break;
  }
  return verdict;
}

Result<std::unique_ptr<File>> FaultEnv::OpenAppend(const std::string& path) {
  SEMAP_RETURN_NOT_OK(Hit(IoOp::kOpen));
  auto file = base_->OpenAppend(path);
  if (!file.ok()) return file.status();
  return std::unique_ptr<File>(
      new FaultFile(this, std::move(*file)));
}

Result<std::unique_ptr<File>> FaultEnv::OpenTrunc(const std::string& path) {
  SEMAP_RETURN_NOT_OK(Hit(IoOp::kOpen));
  auto file = base_->OpenTrunc(path);
  if (!file.ok()) return file.status();
  return std::unique_ptr<File>(
      new FaultFile(this, std::move(*file)));
}

Status FaultEnv::Rename(const std::string& from, const std::string& to) {
  SEMAP_RETURN_NOT_OK(Hit(IoOp::kRename));
  return base_->Rename(from, to);
}

Result<std::string> FaultEnv::ReadFile(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_) return SimulatedCrash();
  }
  return base_->ReadFile(path);
}

bool FaultEnv::Exists(const std::string& path) {
  return base_->Exists(path);
}

Status FaultEnv::Remove(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_) return SimulatedCrash();
  }
  return base_->Remove(path);
}

}  // namespace semap::store
