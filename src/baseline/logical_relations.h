// Clio-style logical relations: for each table, chase the referential
// integrity constraints to assemble the maximal set of logically connected
// elements (Popa et al., VLDB'02; the paper's Example 1.1 baseline).
#ifndef SEMAP_BASELINE_LOGICAL_RELATIONS_H_
#define SEMAP_BASELINE_LOGICAL_RELATIONS_H_

#include <map>
#include <string>
#include <vector>

#include "logic/cq.h"
#include "semantics/fd.h"
#include "relational/schema.h"

namespace semap::baseline {

/// \brief One logical relation: a join query over tables, produced by
/// chasing one table's atom over the schema's RICs. Variables are shared
/// across atoms exactly where the RICs equate columns.
struct LogicalRelation {
  std::string seed_table;
  std::vector<logic::Atom> atoms;

  /// The variable at `table`.`column` (first atom of that table), or "".
  std::string VariableFor(const rel::RelationalSchema& schema,
                          const rel::ColumnRef& ref) const;
  /// True if some atom is over `table`.
  bool MentionsTable(const std::string& table) const;

  std::string ToString() const;
};

struct ChaseOptions {
  /// Bound on total atoms per logical relation; terminates the chase in
  /// the presence of cyclic RICs (the standard chase need not terminate).
  size_t max_atoms = 24;
  /// In ChaseQueryWithConstraints: expand referenced atoms over the RICs.
  /// Disable to apply only the (EGD) functional dependencies, which never
  /// grow the query — the cheap normal form used when deduplicating
  /// rewritings.
  bool apply_rics = true;
  /// In ChaseQueryWithConstraints: treat `extra_fds` as the complete EGD
  /// set and skip assembling the per-table primary-key FDs. Callers that
  /// chase many queries against one schema pre-append the key FDs once
  /// (in `schema.tables()` order, matching the default assembly) instead
  /// of copying every table's column list per call.
  bool extra_fds_complete = false;
};

/// \brief A column-level functional dependency usable as an EGD during the
/// chase (primary keys induce one per table automatically; callers may add
/// semantically derived ones, cf. sem::DeriveTableFds).
struct ColumnFd {
  std::string table;
  std::vector<std::string> lhs;
  std::vector<std::string> rhs;
};

/// \brief Chase a whole query over the schema's RICs *and* functional
/// dependencies (primary keys plus `extra_fds`): tgds add referenced
/// atoms; EGDs unify the determined columns of same-table atoms agreeing
/// on the determinant (which may rename head variables). Queries
/// equivalent under the constraints become plainly equivalent after this,
/// which is how the evaluation compares generated mappings to benchmarks.
logic::ConjunctiveQuery ChaseQueryWithConstraints(
    const rel::RelationalSchema& schema, logic::ConjunctiveQuery query,
    const std::vector<ColumnFd>& extra_fds = {},
    const ChaseOptions& options = {});

/// \brief Overload that additionally applies cross-table EGDs
/// (sem::CrossTableFd): rows of two tables agreeing on their identifying
/// columns agree on columns realizing the same CM attribute.
logic::ConjunctiveQuery ChaseQueryWithConstraints(
    const rel::RelationalSchema& schema, logic::ConjunctiveQuery query,
    const std::vector<ColumnFd>& extra_fds,
    const std::vector<sem::CrossTableFd>& cross_fds,
    const ChaseOptions& options = {});

/// \brief Chase an arbitrary atom set over the schema's RICs: add every
/// implied referenced atom until fixpoint (or the atom cap). Also used to
/// decide query equivalence *under constraints* in the evaluation.
std::vector<logic::Atom> ChaseAtoms(const rel::RelationalSchema& schema,
                                    std::vector<logic::Atom> atoms,
                                    const ChaseOptions& options = {});

/// \brief Chase `seed_table` over the schema's RICs.
LogicalRelation ChaseTable(const rel::RelationalSchema& schema,
                           const std::string& seed_table,
                           const ChaseOptions& options = {});

/// \brief All logical relations of a schema (one per table), with exact
/// duplicates (same atom multiset up to variable renaming) removed.
std::vector<LogicalRelation> LogicalRelationsOf(
    const rel::RelationalSchema& schema, const ChaseOptions& options = {});

}  // namespace semap::baseline

#endif  // SEMAP_BASELINE_LOGICAL_RELATIONS_H_
