#include "baseline/ric_mapper.h"

#include <algorithm>
#include <set>

#include "exec/explain_capture.h"

namespace semap::baseline {

using logic::Atom;
using logic::ConjunctiveQuery;
using logic::Term;

namespace {

/// Prune unnecessary joins ("ones that did not introduce new attributes
/// not covered by correspondences"): repeatedly strip atoms of
/// non-corresponded tables that sit at the edge of the var-sharing graph,
/// leaving the minimal connected subquery around the corresponded tables.
std::vector<Atom> PruneJoins(const std::vector<Atom>& atoms,
                             const std::set<std::string>& protected_tables) {
  std::vector<Atom> current = atoms;
  bool changed = true;
  while (changed && current.size() > 1) {
    changed = false;
    for (size_t i = 0; i < current.size(); ++i) {
      if (protected_tables.count(current[i].predicate) > 0) continue;
      // Count how many other atoms this one shares variables with.
      std::set<std::string> my_vars;
      for (const Term& t : current[i].terms) my_vars.insert(t.name);
      int neighbors = 0;
      for (size_t j = 0; j < current.size(); ++j) {
        if (i == j) continue;
        for (const Term& t : current[j].terms) {
          if (my_vars.count(t.name) > 0) {
            ++neighbors;
            break;
          }
        }
      }
      if (neighbors <= 1) {
        current.erase(current.begin() + static_cast<long>(i));
        changed = true;
        break;
      }
    }
  }
  return current;
}

}  // namespace

Result<std::vector<RicMapping>> GenerateRicMappings(
    const rel::RelationalSchema& source, const rel::RelationalSchema& target,
    const std::vector<disc::Correspondence>& correspondences,
    const RicMapperOptions& options) {
  return GenerateRicMappings(source, target, correspondences, options,
                             exec::RunContext{});
}

Result<std::vector<RicMapping>> GenerateRicMappings(
    const rel::RelationalSchema& source, const rel::RelationalSchema& target,
    const std::vector<disc::Correspondence>& correspondences,
    const RicMapperOptions& options, const exec::RunContext& run_ctx) {
  exec::RunContext ctx = run_ctx;
  if (ctx.governor == nullptr) ctx.governor = options.governor;
  obs::Span span = ctx.Span("ric_baseline");
  for (const disc::Correspondence& corr : correspondences) {
    if (!source.HasColumn(corr.source)) {
      return Status::NotFound("unknown source column " +
                              corr.source.ToString());
    }
    if (!target.HasColumn(corr.target)) {
      return Status::NotFound("unknown target column " +
                              corr.target.ToString());
    }
  }
  std::vector<LogicalRelation> source_lrs =
      LogicalRelationsOf(source, options.chase);
  std::vector<LogicalRelation> target_lrs =
      LogicalRelationsOf(target, options.chase);

  ctx.Count("baseline.logical_relations",
            static_cast<int64_t>(source_lrs.size() + target_lrs.size()));
  std::vector<RicMapping> mappings;
  size_t pairs_tried = 0;
  const size_t total_pairs = source_lrs.size() * target_lrs.size();
  // Emitted on every exit path (cap hit, exhaustion, completion).
  auto finish = [&] {
    ctx.Count("baseline.pairs_examined", static_cast<int64_t>(pairs_tried));
    ctx.Count("baseline.mappings_emitted",
              static_cast<int64_t>(mappings.size()));
    span.AddAttr("mappings", static_cast<int64_t>(mappings.size()));
    span.End();
  };
  for (const LogicalRelation& slr : source_lrs) {
    if (ctx.Exhausted()) break;
    for (const LogicalRelation& tlr : target_lrs) {
      if (!ctx.Charge()) break;
      ++pairs_tried;
      // Covered correspondences: both ends present in the pair.
      std::vector<size_t> covered;
      for (size_t i = 0; i < correspondences.size(); ++i) {
        if (slr.MentionsTable(correspondences[i].source.table) &&
            tlr.MentionsTable(correspondences[i].target.table)) {
          covered.push_back(i);
        }
      }
      if (covered.empty()) continue;

      // Heads: one frontier position per covered correspondence.
      ConjunctiveQuery src_q;
      ConjunctiveQuery tgt_q;
      std::set<std::string> src_tables;
      std::set<std::string> tgt_tables;
      for (size_t i : covered) {
        std::string sv = slr.VariableFor(source, correspondences[i].source);
        std::string tv = tlr.VariableFor(target, correspondences[i].target);
        src_q.head.push_back(Term::Var(sv));
        tgt_q.head.push_back(Term::Var(tv));
        src_tables.insert(correspondences[i].source.table);
        tgt_tables.insert(correspondences[i].target.table);
      }
      src_q.body = options.prune_unnecessary_joins
                       ? PruneJoins(slr.atoms, src_tables)
                       : slr.atoms;
      tgt_q.body = options.prune_unnecessary_joins
                       ? PruneJoins(tlr.atoms, tgt_tables)
                       : tlr.atoms;

      RicMapping mapping;
      mapping.tgd = logic::AlignTgd(src_q, tgt_q);
      for (size_t i : covered) mapping.covered.push_back(correspondences[i]);
      bool duplicate = false;
      for (const RicMapping& existing : mappings) {
        if (logic::EquivalentTgds(existing.tgd, mapping.tgd)) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) {
        if (ctx.provenance != nullptr) {
          // Render the logical-relation pair the way discovery renders a
          // CSG: the joined table predicates on each side.
          auto lr_text = [](const LogicalRelation& lr) {
            std::string out = "lr{";
            for (size_t a = 0; a < lr.atoms.size(); ++a) {
              if (a > 0) out += ",";
              out += lr.atoms[a].predicate;
            }
            return out + "}";
          };
          obs::DerivationRecord derivation;
          derivation.tgd = mapping.tgd.ToString();
          derivation.origin = "ric-baseline";
          for (const disc::Correspondence& corr : mapping.covered) {
            derivation.covered.push_back(corr.ToString());
          }
          derivation.source_csg = lr_text(slr);
          derivation.target_csg = lr_text(tlr);
          derivation.skolems = exec::SkolemDecisionsOf(mapping.tgd);
          ctx.provenance->RecordDerivation(std::move(derivation));
        }
        mappings.push_back(std::move(mapping));
        if (mappings.size() >= options.max_mappings) {
          finish();
          return mappings;
        }
      }
    }
  }
  if (ctx.Exhausted() && pairs_tried < total_pairs) {
    ctx.governor->NoteTruncation(
        "GenerateRicMappings: examined " + std::to_string(pairs_tried) + "/" +
        std::to_string(total_pairs) + " logical-relation pairs");
  }
  finish();
  return mappings;
}

}  // namespace semap::baseline
