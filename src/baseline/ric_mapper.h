// The RIC-based mapping technique the paper compares against (Clio):
// pair source and target logical relations, keep pairs covering at least
// one correspondence, prune unnecessary joins (joins that introduce no
// corresponded attributes — the optimization of Fuxman et al. the paper's
// methodology applies), and emit s-t tgds.
#ifndef SEMAP_BASELINE_RIC_MAPPER_H_
#define SEMAP_BASELINE_RIC_MAPPER_H_

#include <vector>

#include "baseline/logical_relations.h"
#include "discovery/correspondence.h"
#include "exec/run_context.h"
#include "logic/tgd.h"
#include "util/budget.h"
#include "util/result.h"

namespace semap::baseline {

struct RicMapperOptions {
  ChaseOptions chase;
  /// Apply the unnecessary-join pruning heuristic.
  bool prune_unnecessary_joins = true;
  /// Cap on emitted mappings.
  size_t max_mappings = 64;
  /// Deprecated: pass an exec::RunContext instead. Honored (when the
  /// context carries no governor); charged per logical-relation pair.
  /// When it trips, the mappings emitted so far are returned.
  ResourceGovernor* governor = nullptr;
};

/// \brief One RIC-based mapping: the tgd plus the correspondences the
/// logical-relation pair covers.
struct RicMapping {
  logic::Tgd tgd;
  std::vector<disc::Correspondence> covered;
};

/// \brief Generate all RIC-based candidate mappings for the given schemas
/// and correspondences. With tracing enabled the whole run is one
/// `ric_baseline` span; `baseline.*` counters record pairs examined and
/// mappings emitted. The context-free overload is the deprecated
/// pre-RunContext path.
Result<std::vector<RicMapping>> GenerateRicMappings(
    const rel::RelationalSchema& source, const rel::RelationalSchema& target,
    const std::vector<disc::Correspondence>& correspondences,
    const RicMapperOptions& options, const exec::RunContext& ctx);
Result<std::vector<RicMapping>> GenerateRicMappings(
    const rel::RelationalSchema& source, const rel::RelationalSchema& target,
    const std::vector<disc::Correspondence>& correspondences,
    const RicMapperOptions& options = {});

}  // namespace semap::baseline

#endif  // SEMAP_BASELINE_RIC_MAPPER_H_
