#include "baseline/logical_relations.h"

#include <algorithm>
#include <set>

#include "logic/containment.h"
#include "util/string_util.h"

namespace semap::baseline {

using logic::Atom;
using logic::Term;

std::string LogicalRelation::VariableFor(const rel::RelationalSchema& schema,
                                         const rel::ColumnRef& ref) const {
  const rel::Table* table = schema.FindTable(ref.table);
  if (table == nullptr) return "";
  int pos = table->ColumnIndex(ref.column);
  if (pos < 0) return "";
  for (const Atom& atom : atoms) {
    if (atom.predicate == ref.table &&
        pos < static_cast<int>(atom.terms.size())) {
      return atom.terms[static_cast<size_t>(pos)].name;
    }
  }
  return "";
}

bool LogicalRelation::MentionsTable(const std::string& table) const {
  for (const Atom& atom : atoms) {
    if (atom.predicate == table) return true;
  }
  return false;
}

std::string LogicalRelation::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(atoms.size());
  for (const Atom& a : atoms) parts.push_back(a.ToString());
  return Join(parts, " join ");
}

std::vector<Atom> ChaseAtoms(const rel::RelationalSchema& schema,
                             std::vector<Atom> atoms,
                             const ChaseOptions& options) {
  // Fresh variables must avoid everything already used.
  std::set<std::string> used;
  for (const Atom& a : atoms) {
    for (const Term& t : a.terms) {
      if (t.kind == logic::TermKind::kVariable) used.insert(t.name);
    }
  }
  int fresh = 0;
  auto fresh_var = [&fresh, &used]() {
    std::string name;
    do {
      name = "ch_x" + std::to_string(fresh++);
    } while (used.count(name) > 0);
    used.insert(name);
    return Term::Var(name);
  };

  // Standard chase: for each atom and applicable RIC, add the referenced
  // atom unless one agreeing on the referenced key columns already exists.
  bool changed = true;
  while (changed && atoms.size() < options.max_atoms) {
    changed = false;
    for (size_t ai = 0; ai < atoms.size() && !changed; ++ai) {
      const Atom atom = atoms[ai];  // copy: the vector may grow
      const rel::Table* atom_table = schema.FindTable(atom.predicate);
      if (atom_table == nullptr) continue;
      for (const rel::Ric* ric : schema.RicsFrom(atom.predicate)) {
        const rel::Table* to_table = schema.FindTable(ric->to_table);
        if (to_table == nullptr) continue;
        // Variables on the referencing side.
        std::vector<Term> ref_vars;
        bool ok = true;
        for (const std::string& col : ric->from_columns) {
          int pos = atom_table->ColumnIndex(col);
          if (pos < 0) {
            ok = false;
            break;
          }
          ref_vars.push_back(atom.terms[static_cast<size_t>(pos)]);
        }
        if (!ok) continue;
        // Does an atom of to_table already agree on the referenced columns?
        bool satisfied = false;
        for (const Atom& other : atoms) {
          if (other.predicate != ric->to_table) continue;
          bool agrees = true;
          for (size_t k = 0; k < ric->to_columns.size(); ++k) {
            int pos = to_table->ColumnIndex(ric->to_columns[k]);
            if (pos < 0 ||
                !(other.terms[static_cast<size_t>(pos)] == ref_vars[k])) {
              agrees = false;
              break;
            }
          }
          if (agrees) {
            satisfied = true;
            break;
          }
        }
        if (satisfied) continue;
        Atom added;
        added.predicate = ric->to_table;
        added.terms.resize(to_table->columns().size());
        for (size_t p = 0; p < added.terms.size(); ++p) {
          added.terms[p] = fresh_var();
        }
        for (size_t k = 0; k < ric->to_columns.size(); ++k) {
          int pos = to_table->ColumnIndex(ric->to_columns[k]);
          added.terms[static_cast<size_t>(pos)] = ref_vars[k];
        }
        atoms.push_back(std::move(added));
        changed = true;
        break;
      }
    }
  }
  return atoms;
}

logic::ConjunctiveQuery ChaseQueryWithConstraints(
    const rel::RelationalSchema& schema, logic::ConjunctiveQuery query,
    const std::vector<ColumnFd>& extra_fds, const ChaseOptions& options) {
  return ChaseQueryWithConstraints(schema, std::move(query), extra_fds, {},
                                   options);
}

logic::ConjunctiveQuery ChaseQueryWithConstraints(
    const rel::RelationalSchema& schema, logic::ConjunctiveQuery query,
    const std::vector<ColumnFd>& extra_fds,
    const std::vector<sem::CrossTableFd>& cross_fds,
    const ChaseOptions& options) {
  if (options.apply_rics) {
    query.body = ChaseAtoms(schema, std::move(query.body), options);
  }

  // Assemble the EGDs: the primary key of each table plus the extras.
  std::vector<ColumnFd> fds = extra_fds;
  for (const rel::Table& table : schema.tables()) {
    if (table.primary_key().empty()) continue;
    fds.push_back(
        ColumnFd{table.name(), table.primary_key(), table.columns()});
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < query.body.size() && !changed; ++i) {
      for (size_t j = i + 1; j < query.body.size() && !changed; ++j) {
        const Atom& a = query.body[i];
        const Atom& b = query.body[j];
        // Cross-table EGDs apply to pairs over (possibly) different tables.
        for (const sem::CrossTableFd& cfd : cross_fds) {
          const Atom* pa = nullptr;
          const Atom* pb = nullptr;
          if (a.predicate == cfd.table_a && b.predicate == cfd.table_b) {
            pa = &a;
            pb = &b;
          } else if (b.predicate == cfd.table_a && a.predicate == cfd.table_b) {
            pa = &b;
            pb = &a;
          } else {
            continue;
          }
          const rel::Table* ta = schema.FindTable(cfd.table_a);
          const rel::Table* tb = schema.FindTable(cfd.table_b);
          if (ta == nullptr || tb == nullptr ||
              cfd.key_a.size() != cfd.key_b.size()) {
            continue;
          }
          bool keys_agree = !cfd.key_a.empty();
          for (size_t k = 0; k < cfd.key_a.size(); ++k) {
            int pos_a = ta->ColumnIndex(cfd.key_a[k]);
            int pos_b = tb->ColumnIndex(cfd.key_b[k]);
            if (pos_a < 0 || pos_b < 0 ||
                !(pa->terms[static_cast<size_t>(pos_a)] ==
                  pb->terms[static_cast<size_t>(pos_b)])) {
              keys_agree = false;
              break;
            }
          }
          if (!keys_agree) continue;
          int pos_a = ta->ColumnIndex(cfd.col_a);
          int pos_b = tb->ColumnIndex(cfd.col_b);
          if (pos_a < 0 || pos_b < 0) continue;
          const Term& va = pa->terms[static_cast<size_t>(pos_a)];
          const Term& vb = pb->terms[static_cast<size_t>(pos_b)];
          if (va == vb) continue;
          logic::Substitution sub;
          if (va.IsVar()) {
            sub[va.name] = vb;
          } else if (vb.IsVar()) {
            sub[vb.name] = va;
          } else {
            continue;
          }
          query = logic::ApplySubstitution(query, sub);
          changed = true;
          break;
        }
        if (changed) break;
        if (a.predicate != b.predicate) continue;
        if (a == b) {
          query.body.erase(query.body.begin() + static_cast<long>(j));
          changed = true;
          break;
        }
        const rel::Table* table = schema.FindTable(a.predicate);
        if (table == nullptr) continue;
        for (const ColumnFd& fd : fds) {
          if (fd.table != a.predicate) continue;
          bool lhs_agree = !fd.lhs.empty();
          for (const std::string& col : fd.lhs) {
            int pos = table->ColumnIndex(col);
            if (pos < 0 || !(a.terms[static_cast<size_t>(pos)] ==
                             b.terms[static_cast<size_t>(pos)])) {
              lhs_agree = false;
              break;
            }
          }
          if (!lhs_agree) continue;
          logic::Substitution sub;
          for (const std::string& col : fd.rhs) {
            int posi = table->ColumnIndex(col);
            if (posi < 0) continue;
            size_t p = static_cast<size_t>(posi);
            Term ta = logic::ApplySubstitution(a.terms[p], sub);
            Term tb = logic::ApplySubstitution(b.terms[p], sub);
            if (ta == tb) continue;
            if (ta.IsVar()) {
              sub[ta.name] = tb;
            } else if (tb.IsVar()) {
              sub[tb.name] = ta;
            }
          }
          if (!sub.empty()) {
            query = logic::ApplySubstitution(query, sub);
            changed = true;
            break;
          }
        }
      }
    }
  }
  std::sort(query.body.begin(), query.body.end());
  query.body.erase(std::unique(query.body.begin(), query.body.end()),
                   query.body.end());
  return query;
}

LogicalRelation ChaseTable(const rel::RelationalSchema& schema,
                           const std::string& seed_table,
                           const ChaseOptions& options) {
  LogicalRelation lr;
  lr.seed_table = seed_table;
  const rel::Table* seed = schema.FindTable(seed_table);
  if (seed == nullptr) return lr;

  Atom seed_atom;
  seed_atom.predicate = seed_table;
  for (size_t i = 0; i < seed->columns().size(); ++i) {
    seed_atom.terms.push_back(
        Term::Var(seed_table + "_x" + std::to_string(i)));
  }
  lr.atoms = ChaseAtoms(schema, {std::move(seed_atom)}, options);
  return lr;
}

std::vector<LogicalRelation> LogicalRelationsOf(
    const rel::RelationalSchema& schema, const ChaseOptions& options) {
  std::vector<LogicalRelation> out;
  for (const rel::Table& table : schema.tables()) {
    LogicalRelation lr = ChaseTable(schema, table.name(), options);
    // Skip exact duplicates (same query up to renaming): a table fully
    // subsumed by another's chase still yields its own logical relation in
    // Clio, so only *identical* ones (same atom count and mutual
    // containment over full heads) are merged.
    bool duplicate = false;
    logic::ConjunctiveQuery q1;
    q1.body = lr.atoms;
    for (const LogicalRelation& existing : out) {
      if (existing.atoms.size() != lr.atoms.size()) continue;
      logic::ConjunctiveQuery q2;
      q2.body = existing.atoms;
      if (logic::Equivalent(q1, q2)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) out.push_back(std::move(lr));
  }
  return out;
}

}  // namespace semap::baseline
