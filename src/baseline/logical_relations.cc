#include "baseline/logical_relations.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <utility>

#include "logic/containment.h"
#include "util/string_util.h"

namespace semap::baseline {

using logic::Atom;
using logic::Term;

namespace {

// In-place ApplySubstitution: an EGD firing rewrites terms across the
// whole query anyway, and the query here is a throwaway intermediate, so
// substituting in place spares a full-query copy per fired dependency.
// Images are inserted verbatim, exactly like logic::ApplySubstitution.
void SubstituteInPlace(logic::ConjunctiveQuery& query,
                       const logic::Substitution& sub) {
  auto fix = [&sub](auto&& self, Term& t) -> void {
    if (t.IsVar()) {
      auto it = sub.find(t.name);
      if (it != sub.end()) t = it->second;
      return;
    }
    for (Term& a : t.args) self(self, a);
  };
  for (Term& t : query.head) fix(fix, t);
  for (Atom& a : query.body) {
    for (Term& t : a.terms) fix(fix, t);
  }
}

}  // namespace

std::string LogicalRelation::VariableFor(const rel::RelationalSchema& schema,
                                         const rel::ColumnRef& ref) const {
  const rel::Table* table = schema.FindTable(ref.table);
  if (table == nullptr) return "";
  int pos = table->ColumnIndex(ref.column);
  if (pos < 0) return "";
  for (const Atom& atom : atoms) {
    if (atom.predicate == ref.table &&
        pos < static_cast<int>(atom.terms.size())) {
      return atom.terms[static_cast<size_t>(pos)].name;
    }
  }
  return "";
}

bool LogicalRelation::MentionsTable(const std::string& table) const {
  for (const Atom& atom : atoms) {
    if (atom.predicate == table) return true;
  }
  return false;
}

std::string LogicalRelation::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(atoms.size());
  for (const Atom& a : atoms) parts.push_back(a.ToString());
  return Join(parts, " join ");
}

std::vector<Atom> ChaseAtoms(const rel::RelationalSchema& schema,
                             std::vector<Atom> atoms,
                             const ChaseOptions& options) {
  // Fresh variables must avoid everything already used.
  std::set<std::string> used;
  for (const Atom& a : atoms) {
    for (const Term& t : a.terms) {
      if (t.kind == logic::TermKind::kVariable) used.insert(t.name);
    }
  }
  int fresh = 0;
  auto fresh_var = [&fresh, &used]() {
    std::string name;
    do {
      name = "ch_x" + std::to_string(fresh++);
    } while (used.count(name) > 0);
    used.insert(name);
    return Term::Var(name);
  };

  // Standard chase: for each atom and applicable RIC, add the referenced
  // atom unless one agreeing on the referenced key columns already exists.
  bool changed = true;
  while (changed && atoms.size() < options.max_atoms) {
    changed = false;
    for (size_t ai = 0; ai < atoms.size() && !changed; ++ai) {
      const Atom atom = atoms[ai];  // copy: the vector may grow
      const rel::Table* atom_table = schema.FindTable(atom.predicate);
      if (atom_table == nullptr) continue;
      for (const rel::Ric* ric : schema.RicsFrom(atom.predicate)) {
        const rel::Table* to_table = schema.FindTable(ric->to_table);
        if (to_table == nullptr) continue;
        // Variables on the referencing side.
        std::vector<Term> ref_vars;
        bool ok = true;
        for (const std::string& col : ric->from_columns) {
          int pos = atom_table->ColumnIndex(col);
          if (pos < 0) {
            ok = false;
            break;
          }
          ref_vars.push_back(atom.terms[static_cast<size_t>(pos)]);
        }
        if (!ok) continue;
        // Does an atom of to_table already agree on the referenced columns?
        bool satisfied = false;
        for (const Atom& other : atoms) {
          if (other.predicate != ric->to_table) continue;
          bool agrees = true;
          for (size_t k = 0; k < ric->to_columns.size(); ++k) {
            int pos = to_table->ColumnIndex(ric->to_columns[k]);
            if (pos < 0 ||
                !(other.terms[static_cast<size_t>(pos)] == ref_vars[k])) {
              agrees = false;
              break;
            }
          }
          if (agrees) {
            satisfied = true;
            break;
          }
        }
        if (satisfied) continue;
        Atom added;
        added.predicate = ric->to_table;
        added.terms.resize(to_table->columns().size());
        for (size_t p = 0; p < added.terms.size(); ++p) {
          added.terms[p] = fresh_var();
        }
        for (size_t k = 0; k < ric->to_columns.size(); ++k) {
          int pos = to_table->ColumnIndex(ric->to_columns[k]);
          added.terms[static_cast<size_t>(pos)] = ref_vars[k];
        }
        atoms.push_back(std::move(added));
        changed = true;
        break;
      }
    }
  }
  return atoms;
}

logic::ConjunctiveQuery ChaseQueryWithConstraints(
    const rel::RelationalSchema& schema, logic::ConjunctiveQuery query,
    const std::vector<ColumnFd>& extra_fds, const ChaseOptions& options) {
  return ChaseQueryWithConstraints(schema, std::move(query), extra_fds, {},
                                   options);
}

logic::ConjunctiveQuery ChaseQueryWithConstraints(
    const rel::RelationalSchema& schema, logic::ConjunctiveQuery query,
    const std::vector<ColumnFd>& extra_fds,
    const std::vector<sem::CrossTableFd>& cross_fds,
    const ChaseOptions& options) {
  if (options.apply_rics) {
    query.body = ChaseAtoms(schema, std::move(query.body), options);
  }

  // Assemble the EGDs: the primary key of each table plus the extras
  // (unless the caller pre-assembled the full list).
  std::vector<ColumnFd> assembled;
  if (!options.extra_fds_complete) {
    assembled = extra_fds;
    for (const rel::Table& table : schema.tables()) {
      if (table.primary_key().empty()) continue;
      assembled.push_back(
          ColumnFd{table.name(), table.primary_key(), table.columns()});
    }
  }
  const std::vector<ColumnFd>& fds =
      options.extra_fds_complete ? extra_fds : assembled;

  // Applicability screen: an EGD can only fire on a same-table atom pair
  // (key / extra FDs, duplicate collapse) or on a pair over some
  // cross-FD's two tables. Most queries join distinct tables and match
  // neither, so the quadratic FD scan below is skipped outright.
  // Substitutions never change predicates and atoms are only removed, so
  // the screen stays valid across iterations.
  bool same_table_pair = false;
  for (size_t i = 0; i < query.body.size() && !same_table_pair; ++i) {
    for (size_t j = i + 1; j < query.body.size(); ++j) {
      if (query.body[i].predicate == query.body[j].predicate) {
        same_table_pair = true;
        break;
      }
    }
  }
  // Cross-FD plans: table pointers and column positions resolved once per
  // call instead of once per atom pair per chase iteration. Cross-FDs
  // whose tables or columns do not resolve (or whose key is empty) can
  // never fire and are dropped here — the fixpoint below is unaffected.
  struct CrossPlan {
    const sem::CrossTableFd* cfd;
    std::vector<std::pair<size_t, size_t>> key_pos;  // (pos in a, pos in b)
    size_t col_a_pos;
    size_t col_b_pos;
  };
  std::vector<CrossPlan> cross_plans;
  for (const sem::CrossTableFd& cfd : cross_fds) {
    bool has_a = false;
    bool has_b = false;
    for (const Atom& atom : query.body) {
      has_a = has_a || atom.predicate == cfd.table_a;
      has_b = has_b || atom.predicate == cfd.table_b;
    }
    if (!has_a || !has_b) continue;
    const rel::Table* ta = schema.FindTable(cfd.table_a);
    const rel::Table* tb = schema.FindTable(cfd.table_b);
    if (ta == nullptr || tb == nullptr ||
        cfd.key_a.size() != cfd.key_b.size() || cfd.key_a.empty()) {
      continue;
    }
    CrossPlan plan;
    plan.cfd = &cfd;
    bool ok = true;
    for (size_t k = 0; k < cfd.key_a.size(); ++k) {
      int pos_a = ta->ColumnIndex(cfd.key_a[k]);
      int pos_b = tb->ColumnIndex(cfd.key_b[k]);
      if (pos_a < 0 || pos_b < 0) {
        ok = false;
        break;
      }
      plan.key_pos.emplace_back(static_cast<size_t>(pos_a),
                                static_cast<size_t>(pos_b));
    }
    int col_a = ta->ColumnIndex(cfd.col_a);
    int col_b = tb->ColumnIndex(cfd.col_b);
    if (!ok || col_a < 0 || col_b < 0) continue;
    plan.col_a_pos = static_cast<size_t>(col_a);
    plan.col_b_pos = static_cast<size_t>(col_b);
    cross_plans.push_back(std::move(plan));
  }

  // Same-table FD plans, grouped by table with column positions resolved
  // up front (preserving the scan order of `fds` within each table). FDs
  // with an empty or unresolvable left-hand side can never fire.
  struct FdPlan {
    std::vector<size_t> lhs_pos;
    std::vector<size_t> rhs_pos;  // unresolvable rhs columns dropped, as before
  };
  std::unordered_map<std::string, std::vector<FdPlan>> fd_plans;
  if (same_table_pair) {
    for (const ColumnFd& fd : fds) {
      const rel::Table* table = schema.FindTable(fd.table);
      if (table == nullptr || fd.lhs.empty()) continue;
      FdPlan plan;
      bool ok = true;
      for (const std::string& col : fd.lhs) {
        int pos = table->ColumnIndex(col);
        if (pos < 0) {
          ok = false;
          break;
        }
        plan.lhs_pos.push_back(static_cast<size_t>(pos));
      }
      if (!ok) continue;
      for (const std::string& col : fd.rhs) {
        int pos = table->ColumnIndex(col);
        if (pos >= 0) plan.rhs_pos.push_back(static_cast<size_t>(pos));
      }
      fd_plans[fd.table].push_back(std::move(plan));
    }
  }

  bool changed = same_table_pair || !cross_plans.empty();
  while (changed) {
    changed = false;
    for (size_t i = 0; i < query.body.size() && !changed; ++i) {
      for (size_t j = i + 1; j < query.body.size() && !changed; ++j) {
        const Atom& a = query.body[i];
        const Atom& b = query.body[j];
        // Cross-table EGDs apply to pairs over (possibly) different tables.
        for (const CrossPlan& plan : cross_plans) {
          const Atom* pa = nullptr;
          const Atom* pb = nullptr;
          if (a.predicate == plan.cfd->table_a &&
              b.predicate == plan.cfd->table_b) {
            pa = &a;
            pb = &b;
          } else if (b.predicate == plan.cfd->table_a &&
                     a.predicate == plan.cfd->table_b) {
            pa = &b;
            pb = &a;
          } else {
            continue;
          }
          bool keys_agree = true;
          for (const auto& [pos_a, pos_b] : plan.key_pos) {
            if (!(pa->terms[pos_a] == pb->terms[pos_b])) {
              keys_agree = false;
              break;
            }
          }
          if (!keys_agree) continue;
          const Term& va = pa->terms[plan.col_a_pos];
          const Term& vb = pb->terms[plan.col_b_pos];
          if (va == vb) continue;
          logic::Substitution sub;
          if (va.IsVar()) {
            sub[va.name] = vb;
          } else if (vb.IsVar()) {
            sub[vb.name] = va;
          } else {
            continue;
          }
          SubstituteInPlace(query, sub);
          changed = true;
          break;
        }
        if (changed) break;
        if (a.predicate != b.predicate) continue;
        if (a == b) {
          query.body.erase(query.body.begin() + static_cast<long>(j));
          changed = true;
          break;
        }
        auto plans_it = fd_plans.find(a.predicate);
        if (plans_it == fd_plans.end()) continue;
        for (const FdPlan& plan : plans_it->second) {
          bool lhs_agree = true;
          for (size_t pos : plan.lhs_pos) {
            if (!(a.terms[pos] == b.terms[pos])) {
              lhs_agree = false;
              break;
            }
          }
          if (!lhs_agree) continue;
          logic::Substitution sub;
          for (size_t p : plan.rhs_pos) {
            Term ta = logic::ApplySubstitution(a.terms[p], sub);
            Term tb = logic::ApplySubstitution(b.terms[p], sub);
            if (ta == tb) continue;
            if (ta.IsVar()) {
              sub[ta.name] = tb;
            } else if (tb.IsVar()) {
              sub[tb.name] = ta;
            }
          }
          if (!sub.empty()) {
            SubstituteInPlace(query, sub);
            changed = true;
            break;
          }
        }
      }
    }
  }
  std::sort(query.body.begin(), query.body.end());
  query.body.erase(std::unique(query.body.begin(), query.body.end()),
                   query.body.end());
  return query;
}

LogicalRelation ChaseTable(const rel::RelationalSchema& schema,
                           const std::string& seed_table,
                           const ChaseOptions& options) {
  LogicalRelation lr;
  lr.seed_table = seed_table;
  const rel::Table* seed = schema.FindTable(seed_table);
  if (seed == nullptr) return lr;

  Atom seed_atom;
  seed_atom.predicate = seed_table;
  for (size_t i = 0; i < seed->columns().size(); ++i) {
    seed_atom.terms.push_back(
        Term::Var(seed_table + "_x" + std::to_string(i)));
  }
  lr.atoms = ChaseAtoms(schema, {std::move(seed_atom)}, options);
  return lr;
}

std::vector<LogicalRelation> LogicalRelationsOf(
    const rel::RelationalSchema& schema, const ChaseOptions& options) {
  std::vector<LogicalRelation> out;
  for (const rel::Table& table : schema.tables()) {
    LogicalRelation lr = ChaseTable(schema, table.name(), options);
    // Skip exact duplicates (same query up to renaming): a table fully
    // subsumed by another's chase still yields its own logical relation in
    // Clio, so only *identical* ones (same atom count and mutual
    // containment over full heads) are merged.
    bool duplicate = false;
    logic::ConjunctiveQuery q1;
    q1.body = lr.atoms;
    for (const LogicalRelation& existing : out) {
      if (existing.atoms.size() != lr.atoms.size()) continue;
      logic::ConjunctiveQuery q2;
      q2.body = existing.atoms;
      if (logic::Equivalent(q1, q2)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) out.push_back(std::move(lr));
  }
  return out;
}

}  // namespace semap::baseline
