// Inverse rules (Section 3.4, Example 3.4): from the LAV semantics of each
// table, derive one rule per CM predicate produced by the table, with
// Skolem functions naming the existential class instances.
//
// Key-based Skolem merging: when an s-tree node's class is fully
// identified by bound key columns, the instance term is the key column
// variable itself (single-attribute key) or a shared "id_<Class>" function
// of the key columns (composite key) — so instances produced by different
// tables join, exactly as the paper's "use z instead of x as the internal
// identifier". Unidentified instances get a table-local Skolem
// "sk_<table>_<var>" applied to all columns, which never joins across
// tables.
#ifndef SEMAP_REWRITING_INVERSE_RULES_H_
#define SEMAP_REWRITING_INVERSE_RULES_H_

#include <vector>

#include "logic/cq.h"
#include "logic/interner.h"
#include "semantics/stree.h"
#include "util/result.h"

namespace semap::rew {

/// \brief head :- table_atom. Head terms are built from the table atom's
/// column variables (possibly under Skolem functions).
struct InverseRule {
  logic::Atom head;
  logic::Atom table_atom;

  std::string ToString() const {
    return head.ToString() + " :- " + table_atom.ToString();
  }
};

/// \brief All inverse rules of one table. When `factory` is non-null the
/// produced rule heads and table atoms are hash-consed through it, making
/// the factory the canonical store for the run: everything downstream
/// (rewriting sessions, equivalence caches) that interns the same
/// structures gets the already-canonical handles back. The returned rules
/// themselves stay value-typed — they are the interchange representation.
Result<std::vector<InverseRule>> InverseRulesForTable(
    const cm::CmGraph& graph, const rel::Table& table_def,
    const sem::STree& stree, logic::TermFactory* factory);
/// Legacy entry (no factory): delegates with a null factory.
Result<std::vector<InverseRule>> InverseRulesForTable(
    const cm::CmGraph& graph, const rel::Table& table_def,
    const sem::STree& stree);

/// \brief All inverse rules of a schema side (tables without semantics are
/// skipped). Same factory contract as InverseRulesForTable.
Result<std::vector<InverseRule>> InverseRulesForSchema(
    const sem::AnnotatedSchema& side, logic::TermFactory* factory);
/// Legacy entry (no factory): delegates with a null factory.
Result<std::vector<InverseRule>> InverseRulesForSchema(
    const sem::AnnotatedSchema& side);

}  // namespace semap::rew

#endif  // SEMAP_REWRITING_INVERSE_RULES_H_
