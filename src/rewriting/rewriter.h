// Maximally-contained rewriting of a CM-level conjunctive query into
// queries over the relational tables, using the inverse rules
// (Section 3.4). Every body atom of the CM query is resolved against the
// head of some inverse rule; the accumulated table atoms, under the
// composed unifier, form one rewriting. Rewritings whose answer variables
// remain bound to Skolem terms are unusable and dropped.
//
// Post-filters, per the paper's Example 3.4:
//  * a rewriting must mention every table linked by the covered
//    correspondences (q'1 is eliminated);
//  * a rewriting strictly contained in another surviving rewriting is
//    eliminated (q'2 ⊆ q'3 eliminates q'2).
#ifndef SEMAP_REWRITING_REWRITER_H_
#define SEMAP_REWRITING_REWRITER_H_

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "exec/run_context.h"
#include "logic/containment.h"
#include "rewriting/inverse_rules.h"
#include "util/budget.h"
#include "util/result.h"

namespace semap::rew {

struct RewriteOptions {
  /// Cap on enumerated rewritings (before filtering).
  size_t max_rewritings = 32;
  /// Tables that must appear in a surviving rewriting (the tables whose
  /// columns participate in the covered correspondences).
  std::set<std::string> required_tables;
  /// Eliminate rewritings strictly contained in another.
  bool keep_only_maximal = true;
  /// Normal form used for the dedup/containment comparisons (typically the
  /// chase under the schema's RICs and functional dependencies followed by
  /// minimization, so that e.g. reading an attribute from a second
  /// key-joined row of the same table compares equal to reading it from
  /// the first). Identity when unset. The *returned* rewritings are the
  /// original, un-normalized queries.
  std::function<logic::ConjunctiveQuery(const logic::ConjunctiveQuery&)>
      normalize;
  /// Deprecated: pass an exec::RunContext instead. Honored (when the
  /// context carries no governor) so pre-RunContext call sites keep
  /// working; charged per resolution step. When it trips, the rewritings
  /// enumerated so far are filtered and returned as usual.
  ResourceGovernor* governor = nullptr;
};

/// \brief Rewrite `cm_query` into table-level queries. The result may be
/// empty when the tables cannot produce the query. The context's metrics
/// record resolution steps and survivor counts (`rewriting.*` counters);
/// the governor (context's, else options.governor) bounds the search.
Result<std::vector<logic::ConjunctiveQuery>> RewriteQuery(
    const logic::ConjunctiveQuery& cm_query,
    const std::vector<InverseRule>& rules, const RewriteOptions& options,
    const exec::RunContext& ctx);
Result<std::vector<logic::ConjunctiveQuery>> RewriteQuery(
    const logic::ConjunctiveQuery& cm_query,
    const std::vector<InverseRule>& rules, const RewriteOptions& options);

}  // namespace semap::rew

#endif  // SEMAP_REWRITING_REWRITER_H_
