// Maximally-contained rewriting of a CM-level conjunctive query into
// queries over the relational tables, using the inverse rules
// (Section 3.4). Every body atom of the CM query is resolved against the
// head of some inverse rule; the accumulated table atoms, under the
// composed unifier, form one rewriting. Rewritings whose answer variables
// remain bound to Skolem terms are unusable and dropped.
//
// Post-filters, per the paper's Example 3.4:
//  * a rewriting must mention every table linked by the covered
//    correspondences (q'1 is eliminated);
//  * a rewriting strictly contained in another surviving rewriting is
//    eliminated (q'2 ⊆ q'3 eliminates q'2).
//
// The engine runs on the interned logic core (logic/interner.h): rule
// heads are indexed by predicate, unification binds interned handles on a
// trail, duplicate rewritings are skipped by canonical form, and the
// post-filters memoize their homomorphism verdicts per session
// (logic/memo.h). Counters: rewriting.resolution_steps,
// rewritings_enumerated, rewritings_kept, rules_indexed_hits, memo_hits,
// signature_skips, arena_bytes.
#ifndef SEMAP_REWRITING_REWRITER_H_
#define SEMAP_REWRITING_REWRITER_H_

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "exec/run_context.h"
#include "logic/containment.h"
#include "rewriting/inverse_rules.h"
#include "rewriting/session.h"
#include "util/budget.h"
#include "util/result.h"

namespace semap::rew {

struct RewriteOptions {
  /// Cap on enumerated rewritings (before filtering).
  size_t max_rewritings = 32;
  /// Tables that must appear in a surviving rewriting (the tables whose
  /// columns participate in the covered correspondences).
  std::set<std::string> required_tables;
  /// Eliminate rewritings strictly contained in another.
  bool keep_only_maximal = true;
  /// Normal form used for the dedup/containment comparisons (typically the
  /// chase under the schema's RICs and functional dependencies followed by
  /// minimization, so that e.g. reading an attribute from a second
  /// key-joined row of the same table compares equal to reading it from
  /// the first). Identity when unset. The *returned* rewritings are the
  /// original, un-normalized queries.
  ///
  /// One session memoizes normal forms per query: every Rewrite through a
  /// given session must pass the same normalize function. The function's
  /// output must be minimized (a core), as the chase-then-minimize
  /// normalizer's is — the dedup filter's core-isomorphism pruning
  /// (logic/memo.h) relies on it.
  std::function<logic::ConjunctiveQuery(const logic::ConjunctiveQuery&)>
      normalize;
  /// Deprecated: pass an exec::RunContext instead. Honored (when the
  /// context carries no governor) so pre-RunContext call sites keep
  /// working; charged per resolution step. When it trips, the rewritings
  /// enumerated so far are filtered and returned as usual.
  ResourceGovernor* governor = nullptr;
};

/// \brief One rewriting request: the canonical entry point's argument.
/// `session` carries the inverse rules (indexed and interned) plus the
/// per-run memo tables; reusing one session across the requests of a run
/// is what makes the memoization pay.
struct Request {
  const logic::ConjunctiveQuery* query = nullptr;
  RewriteSession* session = nullptr;
  RewriteOptions options;
};

/// \brief Rewrite `req.query` into table-level queries — the canonical
/// entry point. The result may be empty when the tables cannot produce the
/// query. The context's metrics record the `rewriting.*` counters; the
/// governor (context's, else options.governor) bounds the search.
Result<std::vector<logic::ConjunctiveQuery>> Rewrite(
    const Request& req, const exec::RunContext& ctx);

/// Deprecated: build a Request (with a RewriteSession over `rules`) and
/// call Rewrite. These shims construct a throwaway session per call, so
/// cross-call memoization is lost; they remain for pre-session call sites.
Result<std::vector<logic::ConjunctiveQuery>> RewriteQuery(
    const logic::ConjunctiveQuery& cm_query,
    const std::vector<InverseRule>& rules, const RewriteOptions& options,
    const exec::RunContext& ctx);
Result<std::vector<logic::ConjunctiveQuery>> RewriteQuery(
    const logic::ConjunctiveQuery& cm_query,
    const std::vector<InverseRule>& rules, const RewriteOptions& options);

}  // namespace semap::rew

namespace semap {
/// Canonical namespace name: `rewriting::Rewrite(request, ctx)`.
namespace rewriting = rew;
}  // namespace semap

#endif  // SEMAP_REWRITING_REWRITER_H_
