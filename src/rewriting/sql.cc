#include "rewriting/sql.h"

#include <map>

#include "util/string_util.h"

namespace semap::rew {

Result<std::vector<std::string>> RenderSql(
    const logic::Tgd& tgd, const ColumnResolver& source_columns,
    const ColumnResolver& target_columns) {
  // FROM clause with aliases, and the first qualified column per source
  // variable (join conditions come from repeated variables).
  std::map<std::string, std::string> var_column;  // var -> "s0.col"
  std::vector<std::string> from_parts;
  std::vector<std::string> where;
  for (size_t i = 0; i < tgd.source.body.size(); ++i) {
    const logic::Atom& atom = tgd.source.body[i];
    const std::vector<std::string>* cols = source_columns(atom.predicate);
    if (cols == nullptr || cols->size() != atom.terms.size()) {
      return Status::NotFound("unknown source table or arity mismatch: " +
                              atom.ToString());
    }
    std::string alias = "s" + std::to_string(i);
    from_parts.push_back(atom.predicate + " AS " + alias);
    for (size_t p = 0; p < atom.terms.size(); ++p) {
      const logic::Term& t = atom.terms[p];
      std::string qualified = alias + "." + (*cols)[p];
      if (t.kind == logic::TermKind::kConstant) {
        where.push_back(qualified + " = '" + t.name + "'");
      } else if (t.kind == logic::TermKind::kVariable) {
        auto it = var_column.find(t.name);
        if (it == var_column.end()) {
          var_column[t.name] = qualified;
        } else {
          where.push_back(it->second + " = " + qualified);
        }
      } else {
        return Status::Unsupported("function term in tgd source: " +
                                   atom.ToString());
      }
    }
  }

  // Skolem expression per existential target variable: a function of the
  // exported (frontier) columns, tagged with the variable name so distinct
  // existentials invent distinct values.
  std::vector<std::string> frontier_cols;
  for (const logic::Term& t : tgd.source.head) {
    auto it = var_column.find(t.name);
    if (it == var_column.end()) {
      return Status::InvalidArgument("frontier variable '" + t.name +
                                     "' unbound in tgd source");
    }
    frontier_cols.push_back(it->second);
  }
  auto value_of = [&](const logic::Term& t) -> Result<std::string> {
    if (t.kind == logic::TermKind::kConstant) return "'" + t.name + "'";
    if (t.kind != logic::TermKind::kVariable) {
      return Status::Unsupported("function term in tgd target");
    }
    auto it = var_column.find(t.name);
    if (it != var_column.end()) return it->second;
    // Existential: Skolemize over the frontier.
    return "SK('" + t.name + "'" +
           (frontier_cols.empty() ? "" : ", " + Join(frontier_cols, ", ")) +
           ")";
  };

  std::vector<std::string> statements;
  for (const logic::Atom& atom : tgd.target.body) {
    const std::vector<std::string>* cols = target_columns(atom.predicate);
    if (cols == nullptr || cols->size() != atom.terms.size()) {
      return Status::NotFound("unknown target table or arity mismatch: " +
                              atom.ToString());
    }
    std::vector<std::string> select_items;
    for (size_t p = 0; p < atom.terms.size(); ++p) {
      SEMAP_ASSIGN_OR_RETURN(std::string value, value_of(atom.terms[p]));
      select_items.push_back(value + " AS " + (*cols)[p]);
    }
    std::string sql = "INSERT INTO " + atom.predicate + " (" +
                      Join(*cols, ", ") + ")\n  SELECT DISTINCT " +
                      Join(select_items, ", ") + "\n  FROM " +
                      Join(from_parts, ", ");
    if (!where.empty()) {
      sql += "\n  WHERE " + Join(where, " AND ");
    }
    sql += ";";
    statements.push_back(std::move(sql));
  }
  return statements;
}

}  // namespace semap::rew
