// SQL rendering of generated mappings: each s-t tgd becomes an
// INSERT ... SELECT per target atom, with existential variables realized
// as Skolem expressions over the exported columns — the way mappings are
// executed in data-exchange systems (the paper's §1: "when mappings are
// realized as queries (as in data exchange), Skolem functions are
// generally used to represent existentially quantified variables").
#ifndef SEMAP_REWRITING_SQL_H_
#define SEMAP_REWRITING_SQL_H_

#include <string>
#include <vector>

#include "logic/tgd.h"
#include "rewriting/algebra.h"
#include "util/result.h"

namespace semap::rew {

/// \brief Render `tgd` as one INSERT ... SELECT statement per target atom.
/// `source_columns` / `target_columns` resolve table column names (see
/// ColumnResolver). Existential target variables become
/// SK('<var>', <exported cols...>) expressions; the same variable yields
/// the same expression across the tgd's target atoms, so value invention
/// is consistent.
Result<std::vector<std::string>> RenderSql(const logic::Tgd& tgd,
                                           const ColumnResolver& source_columns,
                                           const ColumnResolver& target_columns);

}  // namespace semap::rew

#endif  // SEMAP_REWRITING_SQL_H_
