// RewriteSession: per-run state shared by every RewriteQuery of one
// schema side — the indexed, memoized face of the inverse-rule set.
//
// A session owns:
//  * the logic::Interner (TermFactory) through which every rule head and
//    table atom is hash-consed once, so the search engine compares terms
//    by pointer instead of by string;
//  * an index of the inverse rules by (head predicate, arity), preserving
//    the original rule order (the enumeration order of rewritings — and
//    hence the emitted output — depends on it);
//  * the subgoal-viability memo: for a fully-unresolved goal atom, whether
//    it unifies with a fresh renaming of a given rule's head. The verdict
//    depends only on the two structures, so it holds across candidates;
//  * the logic::EquivCache used by the post-enumeration filters
//    (normalize / dedup / maximality memoization and signature pruning).
//
// Sessions are single-threaded by design: the supervised worker pool runs
// one pipeline unit (and therefore one session) per task. The interner
// itself is thread-safe, so interned handles may be shared further.
#ifndef SEMAP_REWRITING_SESSION_H_
#define SEMAP_REWRITING_SESSION_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "logic/interner.h"
#include "logic/memo.h"
#include "rewriting/inverse_rules.h"

namespace semap::rew {

/// Test escapes: each flag forces one fast path back onto the slow,
/// always-correct path so tests can pin that the fast path never changes
/// an answer. All default on.
struct SessionTuning {
  bool use_memo = true;        // subgoal viability + EquivCache memo tables
  bool use_signatures = true;  // EquivCache predicate-signature pruning
  bool use_dup_skip = true;    // canonical-form skip of duplicate rewritings
};

class RewriteSession {
 public:
  using Tuning = SessionTuning;

  /// One inverse rule, interned. `head` / `table_atom` are canonical
  /// handles into the session interner; `table_pred_id` is the session's
  /// dense id of the table predicate (used for instance matching and the
  /// canonical duplicate keys without touching strings).
  struct Rule {
    const InverseRule* rule = nullptr;
    logic::AtomRef head = nullptr;
    logic::AtomRef table_atom = nullptr;
    int table_pred_id = -1;
  };

  /// `rules` must outlive the session. When `factory` is non-null the
  /// session interns through it instead of an owned interner — pass the
  /// run's shared TermFactory (the one InverseRulesForSchema canonicalized
  /// the rules through) so both schema sides and the mapper-level caches
  /// share one canonical store; the factory must outlive the session.
  explicit RewriteSession(const std::vector<InverseRule>& rules,
                          Tuning tuning = Tuning(),
                          logic::TermFactory* factory = nullptr);
  RewriteSession(const RewriteSession&) = delete;
  RewriteSession& operator=(const RewriteSession&) = delete;

  /// Rules whose head matches (predicate, arity), in original rule order.
  /// Returns a stable empty vector when none match.
  const std::vector<const Rule*>& Candidates(std::string_view predicate,
                                             size_t arity) const;

  /// Dense id of a predicate name, assigned on first use. The id space is
  /// shared by rules and queries, so equal names always compare equal by
  /// id. `-1` is never returned (use a -1 sentinel for "absent").
  int PredId(std::string_view predicate);

  /// Subgoal-viability memo: can `goal` (fully unresolved) unify with a
  /// fresh renaming of `rule`'s head? Returns true and fills `*viable` on
  /// a hit. Keys are interned handles, so lookups never walk structure.
  bool LookupViability(logic::AtomRef goal, const Rule* rule,
                       bool* viable) const;
  void StoreViability(logic::AtomRef goal, const Rule* rule, bool viable);

  /// Normalize memo, keyed by the engine's canonical duplicate key of the
  /// raw rewriting (renaming-invariant; built from session-stable
  /// predicate ids and interned-constant handles). Equal keys mean the raw
  /// rewritings are variable-renamings of each other, so their normalized
  /// forms are too — and the memoized form is only ever consulted in
  /// renaming-invariant verdicts (equivalence / containment). Returns
  /// nullptr on a miss.
  logic::CqRef LookupNormalized(const std::vector<int64_t>& key) const;
  void StoreNormalized(const std::vector<int64_t>& key, logic::CqRef norm);

  logic::Interner& interner() { return *interner_; }
  logic::EquivCache& equiv() { return equiv_; }
  const Tuning& tuning() const { return tuning_; }
  size_t rule_count() const { return rules_.size(); }

  /// Total bytes hash-consed through the session interner (feeds the
  /// `rewriting.arena_bytes` counter).
  size_t arena_bytes() const { return interner_->arena_bytes(); }

 private:
  // Heterogeneous (string_view) lookup: the hot path calls PredId and
  // Candidates with views into interned atoms; hashing must not allocate.
  struct SvHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct SvEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };
  struct KeyHash {
    using is_transparent = void;
    size_t operator()(const std::pair<std::string, size_t>& k) const {
      return std::hash<std::string_view>{}(k.first) * 31 + k.second;
    }
    size_t operator()(const std::pair<std::string_view, size_t>& k) const {
      return std::hash<std::string_view>{}(k.first) * 31 + k.second;
    }
  };
  struct KeyEq {
    using is_transparent = void;
    template <typename A, typename B>
    bool operator()(const std::pair<A, size_t>& a,
                    const std::pair<B, size_t>& b) const {
      return std::string_view(a.first) == std::string_view(b.first) &&
             a.second == b.second;
    }
  };
  struct ViabilityHash {
    size_t operator()(
        const std::pair<logic::AtomRef, const Rule*>& k) const {
      return std::hash<const void*>{}(k.first) * 1000003u ^
             std::hash<const void*>{}(k.second);
    }
  };
  struct NormKeyHash {
    size_t operator()(const std::vector<int64_t>& v) const {
      size_t h = v.size();
      for (int64_t x : v) {
        h = h * 1099511628211ULL ^ static_cast<uint64_t>(x);
      }
      return h;
    }
  };

  Tuning tuning_;
  std::unique_ptr<logic::Interner> owned_interner_;
  logic::Interner* interner_;
  logic::EquivCache equiv_;
  std::vector<Rule> rules_;
  std::unordered_map<std::pair<std::string, size_t>,
                     std::vector<const Rule*>, KeyHash, KeyEq>
      by_head_;
  std::unordered_map<std::string, int, SvHash, SvEq> pred_ids_;
  std::unordered_map<std::pair<logic::AtomRef, const Rule*>, bool,
                     ViabilityHash>
      viability_;
  std::unordered_map<std::vector<int64_t>, logic::CqRef, NormKeyHash>
      normalized_;
};

}  // namespace semap::rew

#endif  // SEMAP_REWRITING_SESSION_H_
