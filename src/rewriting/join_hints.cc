#include "rewriting/join_hints.h"

namespace semap::rew {

std::string JoinHint::ToString() const {
  std::string out = from_class + " -" + relationship + "-> " + to_class;
  out += outer ? "  [LEFT OUTER JOIN: participation may be 0]"
               : "  [inner join: total participation]";
  return out;
}

std::vector<JoinHint> DeriveJoinHints(const cm::CmGraph& graph,
                                      const disc::Csg& csg) {
  std::vector<JoinHint> hints;
  hints.reserve(csg.fragment.edges.size());
  for (const sem::Fragment::Edge& e : csg.fragment.edges) {
    const cm::GraphEdge& ge = graph.edge(e.graph_edge);
    JoinHint hint;
    hint.from_class =
        graph.node(csg.fragment.nodes[static_cast<size_t>(e.from)].graph_node)
            .name;
    hint.to_class =
        graph.node(csg.fragment.nodes[static_cast<size_t>(e.to)].graph_node)
            .name;
    hint.relationship = ge.Label();
    // The traversed direction's minimum participation: 0 means some
    // instances of `from` have no partner, so an inner join would drop
    // them.
    hint.outer = ge.card.min == 0;
    hints.push_back(std::move(hint));
  }
  return hints;
}

}  // namespace semap::rew
