// End-to-end semantic mapping generation: the public facade that runs the
// whole pipeline of the paper —
//   correspondences -> lifted marks -> CSG discovery -> CM-level queries
//   -> inverse-rule rewriting -> GLAV mappings (s-t tgds) + algebra text.
#ifndef SEMAP_REWRITING_SEMANTIC_MAPPER_H_
#define SEMAP_REWRITING_SEMANTIC_MAPPER_H_

#include <string>
#include <vector>

#include "discovery/discoverer.h"
#include "rewriting/join_hints.h"
#include "rewriting/session.h"
#include "logic/tgd.h"
#include "util/result.h"

namespace semap::rew {

/// \brief One generated schema mapping — a *pair of connections* in the
/// paper's sense, i.e. one conceptual candidate, rendered by a primary tgd
/// plus any alternative expression variants (different but equally
/// plausible rewrite choices, e.g. reading a shared attribute from either
/// of two tables).
struct GeneratedMapping {
  logic::Tgd tgd;                    // primary rendering (== variants[0])
  std::vector<logic::Tgd> variants;  // all renderings, most compact first
  std::string source_algebra;
  std::string target_algebra;
  /// Per-CSG-edge outer-join hints (Section 6): joins whose traversed
  /// minimum cardinality is 0 should become left outer joins.
  std::vector<JoinHint> source_join_hints;
  std::vector<JoinHint> target_join_hints;
  std::vector<disc::Correspondence> covered;
  disc::MappingCandidate candidate;

  std::string ToString() const { return tgd.ToString(); }
};

struct SemanticMapperOptions {
  disc::DiscoveryOptions discovery;
  /// Cap on emitted mappings.
  size_t max_mappings = 8;
  /// Cap on rewritings kept per CSG side.
  size_t max_rewritings_per_side = 8;
  /// Fast-path escapes for the rewriting sessions and the mapper-level
  /// equivalence cache (tests pin that every fast path is
  /// verdict-preserving by flipping these off). All default on.
  SessionTuning tuning;
};

/// \brief One mapping-generation request: the canonical entry point's
/// argument (the rewriting::Request idiom one level up). The pointed-to
/// schemas and correspondences must outlive the call.
struct MapRequest {
  const sem::AnnotatedSchema* source = nullptr;
  const sem::AnnotatedSchema* target = nullptr;
  const std::vector<disc::Correspondence>* correspondences = nullptr;
  SemanticMapperOptions options;
};

/// \brief Run the full semantic pipeline — the canonical entry point. The
/// RunContext's tracer gets the discovery phase spans plus a `rewriting`
/// span; the governor (context's, else options.discovery.governor) covers
/// discovery and rewriting with one budget. Internally one RewriteSession
/// per schema side carries the interned rules and memo tables across every
/// candidate of the run.
Result<std::vector<GeneratedMapping>> GenerateMappings(
    const MapRequest& req, const exec::RunContext& ctx);

/// Deprecated: build a MapRequest and call GenerateMappings. These shims
/// delegate; the context-free one is the pre-RunContext path.
Result<std::vector<GeneratedMapping>> GenerateSemanticMappings(
    const sem::AnnotatedSchema& source, const sem::AnnotatedSchema& target,
    const std::vector<disc::Correspondence>& correspondences,
    const SemanticMapperOptions& options, const exec::RunContext& ctx);
Result<std::vector<GeneratedMapping>> GenerateSemanticMappings(
    const sem::AnnotatedSchema& source, const sem::AnnotatedSchema& target,
    const std::vector<disc::Correspondence>& correspondences,
    const SemanticMapperOptions& options = {});

}  // namespace semap::rew

#endif  // SEMAP_REWRITING_SEMANTIC_MAPPER_H_
