// End-to-end semantic mapping generation: the public facade that runs the
// whole pipeline of the paper —
//   correspondences -> lifted marks -> CSG discovery -> CM-level queries
//   -> inverse-rule rewriting -> GLAV mappings (s-t tgds) + algebra text.
#ifndef SEMAP_REWRITING_SEMANTIC_MAPPER_H_
#define SEMAP_REWRITING_SEMANTIC_MAPPER_H_

#include <string>
#include <vector>

#include "discovery/discoverer.h"
#include "rewriting/join_hints.h"
#include "logic/tgd.h"
#include "util/result.h"

namespace semap::rew {

/// \brief One generated schema mapping — a *pair of connections* in the
/// paper's sense, i.e. one conceptual candidate, rendered by a primary tgd
/// plus any alternative expression variants (different but equally
/// plausible rewrite choices, e.g. reading a shared attribute from either
/// of two tables).
struct GeneratedMapping {
  logic::Tgd tgd;                    // primary rendering (== variants[0])
  std::vector<logic::Tgd> variants;  // all renderings, most compact first
  std::string source_algebra;
  std::string target_algebra;
  /// Per-CSG-edge outer-join hints (Section 6): joins whose traversed
  /// minimum cardinality is 0 should become left outer joins.
  std::vector<JoinHint> source_join_hints;
  std::vector<JoinHint> target_join_hints;
  std::vector<disc::Correspondence> covered;
  disc::MappingCandidate candidate;

  std::string ToString() const { return tgd.ToString(); }
};

struct SemanticMapperOptions {
  disc::DiscoveryOptions discovery;
  /// Cap on emitted mappings.
  size_t max_mappings = 8;
  /// Cap on rewritings kept per CSG side.
  size_t max_rewritings_per_side = 8;
};

/// \brief Run the full semantic pipeline. The RunContext's tracer gets the
/// discovery phase spans plus a `rewriting` span; the governor (context's,
/// else options.discovery.governor) covers discovery and rewriting with
/// one budget. The context-free overload is the deprecated pre-RunContext
/// path.
Result<std::vector<GeneratedMapping>> GenerateSemanticMappings(
    const sem::AnnotatedSchema& source, const sem::AnnotatedSchema& target,
    const std::vector<disc::Correspondence>& correspondences,
    const SemanticMapperOptions& options, const exec::RunContext& ctx);
Result<std::vector<GeneratedMapping>> GenerateSemanticMappings(
    const sem::AnnotatedSchema& source, const sem::AnnotatedSchema& target,
    const std::vector<disc::Correspondence>& correspondences,
    const SemanticMapperOptions& options = {});

}  // namespace semap::rew

#endif  // SEMAP_REWRITING_SEMANTIC_MAPPER_H_
