#include "rewriting/rewriter.h"

#include <algorithm>
#include <map>

#include "logic/unify.h"

namespace semap::rew {

using logic::Atom;
using logic::ConjunctiveQuery;
using logic::Substitution;
using logic::Term;

namespace {

/// Rename every variable of `term` with `prefix`.
Term PrefixVars(const Term& term, const std::string& prefix) {
  Term out = term;
  if (out.IsVar()) {
    out.name = prefix + out.name;
    return out;
  }
  for (Term& a : out.args) a = PrefixVars(a, prefix);
  return out;
}

Atom PrefixVars(const Atom& atom, const std::string& prefix) {
  Atom out = atom;
  for (Term& t : out.terms) t = PrefixVars(t, prefix);
  return out;
}

struct SearchState {
  const ConjunctiveQuery* query = nullptr;
  const std::vector<InverseRule>* rules = nullptr;
  const RewriteOptions* options = nullptr;
  exec::RunContext ctx;
  std::vector<Atom> table_atoms;
  // One entry per table_atoms element: (table predicate, variable prefix)
  // identifying the row instance, so later goals can be satisfied by the
  // same row (the paper's rewritings join one atom per row, not one atom
  // per resolved predicate).
  std::vector<std::pair<std::string, std::string>> instances;
  Substitution subst;
  int rule_use_counter = 0;
  long steps = 0;
  std::vector<ConjunctiveQuery> results;
};

// Backstop against pathological rule sets; bodies in practice have a
// handful of atoms, so normal searches finish in a few hundred steps.
constexpr long kMaxSearchSteps = 500000;

bool TermIsVariable(const Term& t) { return t.kind == logic::TermKind::kVariable; }

void Search(SearchState& state, size_t atom_index) {
  if (state.results.size() >= state.options->max_rewritings) return;
  if (++state.steps > kMaxSearchSteps) return;
  if (!state.ctx.Charge()) return;
  const ConjunctiveQuery& query = *state.query;
  if (atom_index == query.body.size()) {
    ConjunctiveQuery rewriting;
    rewriting.head_predicate = query.head_predicate;
    for (const Term& t : query.head) {
      Term resolved = logic::Resolve(t, state.subst);
      // An answer variable still bound to a Skolem term cannot be produced
      // from the tables: reject this combination.
      if (!TermIsVariable(resolved)) return;
      rewriting.head.push_back(std::move(resolved));
    }
    for (const Atom& a : state.table_atoms) {
      Atom resolved = a;
      for (Term& t : resolved.terms) t = logic::Resolve(t, state.subst);
      // Table atoms with Skolem-valued columns can never hold real rows.
      for (const Term& t : resolved.terms) {
        if (t.kind == logic::TermKind::kFunction) return;
      }
      rewriting.body.push_back(std::move(resolved));
    }
    // Deduplicate identical atoms introduced by shared rule uses.
    std::sort(rewriting.body.begin(), rewriting.body.end());
    rewriting.body.erase(
        std::unique(rewriting.body.begin(), rewriting.body.end()),
        rewriting.body.end());
    // Required-table filter applied inline: rewritings missing a
    // corresponded table must not consume the result budget (the valid
    // ones can hide arbitrarily deep in the enumeration order).
    for (const std::string& table : state.options->required_tables) {
      bool found = false;
      for (const Atom& a : rewriting.body) {
        if (a.predicate == table) {
          found = true;
          break;
        }
      }
      if (!found) return;
    }
    state.results.push_back(std::move(rewriting));
    return;
  }
  const Atom& goal = query.body[atom_index];
  std::vector<const InverseRule*> candidates;
  for (const InverseRule& rule : *state.rules) {
    if (rule.head.predicate != goal.predicate ||
        rule.head.terms.size() != goal.terms.size()) {
      continue;
    }
    candidates.push_back(&rule);
  }
  // Rules over the corresponded (required) tables lead; those tables must
  // appear in any surviving rewriting, so exploring them first reaches the
  // intended expressions before the result cap.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](const InverseRule* a, const InverseRule* b) {
                     return state.options->required_tables.count(
                                a->table_atom.predicate) >
                            state.options->required_tables.count(
                                b->table_atom.predicate);
                   });
  // Pass 1: satisfy the goal from a row instance already joined into the
  // partial rewriting (same table, same variable prefix) — this is what
  // yields the paper's compact rewritings, and enumerating it first keeps
  // them ahead of the result cap. Iterate by index, not iterator: the
  // recursive call pushes and pops instances, which can reallocate the
  // vector (the entries below `instance_count` themselves are stable).
  const size_t instance_count = state.instances.size();
  for (const InverseRule* rule : candidates) {
    for (size_t i = 0; i < instance_count; ++i) {
      if (state.instances[i].first != rule->table_atom.predicate) continue;
      Atom head = PrefixVars(rule->head, state.instances[i].second);
      Substitution snapshot = state.subst;
      if (logic::UnifyAtoms(goal, head, state.subst)) {
        Search(state, atom_index + 1);
      }
      state.subst = std::move(snapshot);
    }
  }
  // Pass 2: a fresh row instance per rule.
  for (const InverseRule* rule : candidates) {
    std::string prefix = "u" + std::to_string(state.rule_use_counter) + "_";
    Atom head = PrefixVars(rule->head, prefix);
    Atom table_atom = PrefixVars(rule->table_atom, prefix);
    Substitution snapshot = state.subst;
    ++state.rule_use_counter;
    if (logic::UnifyAtoms(goal, head, state.subst)) {
      state.table_atoms.push_back(table_atom);
      state.instances.push_back({rule->table_atom.predicate, prefix});
      Search(state, atom_index + 1);
      state.table_atoms.pop_back();
      state.instances.pop_back();
    }
    state.subst = std::move(snapshot);
  }
}

}  // namespace

Result<std::vector<ConjunctiveQuery>> RewriteQuery(
    const ConjunctiveQuery& cm_query, const std::vector<InverseRule>& rules,
    const RewriteOptions& options) {
  return RewriteQuery(cm_query, rules, options, exec::RunContext{});
}

Result<std::vector<ConjunctiveQuery>> RewriteQuery(
    const ConjunctiveQuery& cm_query, const std::vector<InverseRule>& rules,
    const RewriteOptions& options, const exec::RunContext& run_ctx) {
  exec::RunContext ctx = run_ctx;
  if (ctx.governor == nullptr) ctx.governor = options.governor;
  obs::ScopedTimer timer(ctx.metrics, "rewriting.rewrite_query_ns");
  // Resolve the most constrained goals first (fewest matching rules):
  // relationship atoms typically have a single producing table, so the
  // class and attribute atoms that follow are satisfied by reusing the
  // rows those joins introduced.
  ConjunctiveQuery ordered = cm_query;
  std::stable_sort(ordered.body.begin(), ordered.body.end(),
                   [&](const Atom& a, const Atom& b) {
                     auto rule_count = [&](const Atom& atom) {
                       size_t n = 0;
                       for (const InverseRule& rule : rules) {
                         if (rule.head.predicate == atom.predicate &&
                             rule.head.terms.size() == atom.terms.size()) {
                           ++n;
                         }
                       }
                       return n;
                     };
                     return rule_count(a) < rule_count(b);
                   });

  SearchState state;
  state.query = &ordered;
  state.rules = &rules;
  state.options = &options;
  state.ctx = ctx;
  Search(state, 0);
  ctx.Count("rewriting.resolution_steps", state.steps);
  ctx.Count("rewriting.rewritings_enumerated",
            static_cast<int64_t>(state.results.size()));
  if (ctx.Exhausted()) {
    ctx.governor->NoteTruncation(
        "RewriteQuery: enumeration stopped after " +
        std::to_string(state.steps) + " resolution steps with " +
        std::to_string(state.results.size()) + " rewriting(s)");
  }

  // Minimization may fold away a required table's only atom (when another
  // table subsumes it), so the filter is re-checked after minimizing.
  std::vector<ConjunctiveQuery> rewritings;
  for (ConjunctiveQuery& q : state.results) {
    ConjunctiveQuery minimized = logic::Minimize(q);
    bool ok = true;
    for (const std::string& table : options.required_tables) {
      bool found = false;
      for (const Atom& a : minimized.body) {
        if (a.predicate == table) {
          found = true;
          break;
        }
      }
      if (!found) {
        ok = false;
        break;
      }
    }
    if (ok) rewritings.push_back(std::move(minimized));
  }

  // Drop duplicates and, when requested, rewritings strictly contained in
  // another survivor — both judged on the normalized (e.g. chased) forms,
  // so variants equivalent under the schema constraints collapse onto the
  // first (most compact, thanks to reuse-first enumeration) one.
  auto normalize = [&](const ConjunctiveQuery& q) {
    return options.normalize ? options.normalize(q) : q;
  };
  std::vector<ConjunctiveQuery> unique;
  std::vector<ConjunctiveQuery> unique_norm;
  for (ConjunctiveQuery& q : rewritings) {
    ConjunctiveQuery norm = normalize(q);
    bool duplicate = false;
    for (const ConjunctiveQuery& kept : unique_norm) {
      if (logic::Equivalent(kept, norm)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      unique.push_back(std::move(q));
      unique_norm.push_back(std::move(norm));
    }
  }
  if (options.keep_only_maximal) {
    std::vector<bool> keep(unique.size(), true);
    for (size_t i = 0; i < unique.size(); ++i) {
      for (size_t j = 0; j < unique.size(); ++j) {
        if (i == j) continue;
        if (logic::Contains(unique_norm[j], unique_norm[i]) &&
            !logic::Contains(unique_norm[i], unique_norm[j])) {
          keep[i] = false;
          break;
        }
      }
    }
    std::vector<ConjunctiveQuery> maximal;
    for (size_t i = 0; i < unique.size(); ++i) {
      if (keep[i]) maximal.push_back(std::move(unique[i]));
    }
    ctx.Count("rewriting.rewritings_kept",
              static_cast<int64_t>(maximal.size()));
    return maximal;
  }
  ctx.Count("rewriting.rewritings_kept", static_cast<int64_t>(unique.size()));
  return unique;
}

}  // namespace semap::rew
