#include "rewriting/rewriter.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "logic/interner.h"
#include "logic/memo.h"

namespace semap::rew {

using logic::Atom;
using logic::AtomRef;
using logic::ConjunctiveQuery;
using logic::Term;
using logic::TermRef;

namespace {

// Backstop against pathological rule sets; bodies in practice have a
// handful of atoms, so normal searches finish in a few hundred steps.
constexpr long kMaxSearchSteps = 500000;

// Separator token in canonical duplicate keys; variable codes are small
// negatives and constant codes are interned pointers, so INT64_MIN can
// never collide with either.
constexpr int64_t kAtomSep = INT64_MIN;

struct KeyHash {
  size_t operator()(const std::vector<int64_t>& v) const {
    size_t h = v.size();
    for (int64_t x : v) {
      h = h * 1099511628211ULL ^ static_cast<uint64_t>(x);
    }
    return h;
  }
};

/// Open-addressed set of int64 key sequences. Keys live back-to-back in
/// one arena and the table holds (hash, offset, length) — inserting never
/// allocates per key, and teardown frees two vectors instead of walking
/// thousands of heap nodes (the unordered_set<vector> it replaces showed
/// up in profiles mostly for its destructor).
class FlatKeySet {
 public:
  /// True if the key was newly inserted, false if already present.
  bool Insert(const std::vector<int64_t>& key) {
    if ((entries_.size() + 1) * 4 >= table_.size() * 3) Grow();
    uint64_t h = KeyHash{}(key);
    size_t mask = table_.size() - 1;
    for (size_t i = h & mask;; i = (i + 1) & mask) {
      int32_t slot = table_[i];
      if (slot < 0) {
        uint32_t off = static_cast<uint32_t>(arena_.size());
        arena_.insert(arena_.end(), key.begin(), key.end());
        table_[i] = static_cast<int32_t>(entries_.size());
        entries_.push_back(Entry{h, off, static_cast<uint32_t>(key.size())});
        return true;
      }
      const Entry& e = entries_[static_cast<size_t>(slot)];
      if (e.hash == h && e.len == key.size() &&
          std::equal(key.begin(), key.end(), arena_.begin() + e.off)) {
        return false;
      }
    }
  }

 private:
  struct Entry {
    uint64_t hash;
    uint32_t off;
    uint32_t len;
  };
  void Grow() {
    size_t cap = table_.empty() ? 64 : table_.size() * 2;
    table_.assign(cap, -1);
    size_t mask = cap - 1;
    for (size_t idx = 0; idx < entries_.size(); ++idx) {
      size_t i = entries_[idx].hash & mask;
      while (table_[i] >= 0) i = (i + 1) & mask;
      table_[i] = static_cast<int32_t>(idx);
    }
  }
  std::vector<int64_t> arena_;
  std::vector<Entry> entries_;
  std::vector<int32_t> table_;  // index into entries_, -1 = empty
};

/// The resolution engine: structure-shared terms. A term in flight is a
/// (handle, environment) pair — the handle is the interned rule/query term
/// as written, the environment names one use of a rule (the paper's "fresh
/// copy per application"). Variables never get renamed during the search;
/// the environment id plays the role the "u<N>_" prefix plays in the
/// emitted strings, and the prefix is only materialized for surviving
/// rewritings. Binding is a per-environment slot list plus an undo trail,
/// so backtracking never copies a substitution.
struct Value {
  TermRef term = nullptr;
  uint32_t env = 0;
};

inline bool SameVar(const Value& a, const Value& b) {
  return a.term == b.term && a.env == b.env;
}

struct Frame {
  int use = -1;  // -1 for the query environment, else N of the "u<N>_" prefix
  std::vector<std::pair<TermRef, Value>> slots;
};

class Engine {
 public:
  Engine(const Request& req, const exec::RunContext& ctx)
      : query_(*req.query),
        session_(*req.session),
        options_(req.options),
        ctx_(ctx) {}

  Result<std::vector<ConjunctiveQuery>> Run();

 private:
  using SessionRule = RewriteSession::Rule;

  // ---- binding environment ----
  const Value* Find(TermRef var, uint32_t env) const {
    for (const auto& slot : frames_[env].slots) {
      if (slot.first == var) return &slot.second;
    }
    return nullptr;
  }
  Value Walk(Value v) const {
    while (v.term->IsVar()) {
      const Value* bound = Find(v.term, v.env);
      if (bound == nullptr) break;
      v = *bound;
    }
    return v;
  }
  void Bind(const Value& var, const Value& value) {
    frames_[var.env].slots.push_back({var.term, value});
    trail_.push_back(var);
  }
  void Undo(size_t mark) {
    while (trail_.size() > mark) {
      frames_[trail_.back().env].slots.pop_back();
      trail_.pop_back();
    }
  }

  bool Occurs(const Value& var, Value t) const {
    Value r = Walk(t);
    if (r.term->IsVar()) return SameVar(r, var);
    if (r.term->kind == logic::TermKind::kFunction) {
      for (TermRef a : session_.interner().ArgsOf(r.term)) {
        if (Occurs(var, Value{a, r.env})) return true;
      }
    }
    return false;
  }

  // Mirrors logic::Unify exactly, including the binding orientation (the
  // side that gets bound decides which variable name survives into the
  // emitted rewriting).
  bool Unify(Value a, Value b) {
    Value ra = Walk(a);
    Value rb = Walk(b);
    if (ra.term->IsVar()) {
      if (rb.term->IsVar() && SameVar(ra, rb)) return true;
      if (Occurs(ra, rb)) return false;
      Bind(ra, rb);
      return true;
    }
    if (rb.term->IsVar()) {
      if (Occurs(rb, ra)) return false;
      Bind(rb, ra);
      return true;
    }
    if (ra.term->kind != rb.term->kind || ra.term->name != rb.term->name ||
        ra.term->args.size() != rb.term->args.size()) {
      return false;
    }
    const std::vector<TermRef>& args_a = session_.interner().ArgsOf(ra.term);
    const std::vector<TermRef>& args_b = session_.interner().ArgsOf(rb.term);
    for (size_t i = 0; i < args_a.size(); ++i) {
      if (!Unify(Value{args_a[i], ra.env}, Value{args_b[i], rb.env})) {
        return false;
      }
    }
    return true;
  }

  bool UnifyAtoms(AtomRef a, uint32_t env_a, AtomRef b, uint32_t env_b) {
    if (a->predicate != b->predicate || a->terms.size() != b->terms.size()) {
      return false;
    }
    const std::vector<TermRef>& terms_a = session_.interner().TermsOf(a);
    const std::vector<TermRef>& terms_b = session_.interner().TermsOf(b);
    for (size_t i = 0; i < terms_a.size(); ++i) {
      if (!Unify(Value{terms_a[i], env_a}, Value{terms_b[i], env_b})) {
        return false;
      }
    }
    return true;
  }

  // A goal is pristine when every term still reads as written (no variable
  // bound, no function term): then the outcome of unifying it with a fresh
  // copy of a rule head depends on the two structures alone, and the
  // session's viability memo applies across candidates.
  bool Pristine(AtomRef goal) const {
    for (TermRef t : session_.interner().TermsOf(goal)) {
      if (t->kind == logic::TermKind::kFunction) return false;
      if (t->IsVar() && Find(t, 0) != nullptr) return false;
    }
    return true;
  }

  void Search(size_t atom_index);
  void Leaf();
  Term Materialize(Value v) const;
  std::vector<int64_t> MinimizedKey(const ConjunctiveQuery& q);

  // ---- inputs / setup ----
  ConjunctiveQuery query_;  // body reordered most-constrained-first
  RewriteSession& session_;
  const RewriteOptions& options_;
  exec::RunContext ctx_;
  std::vector<AtomRef> goals_;
  std::vector<TermRef> head_;
  std::vector<std::vector<const SessionRule*>> goal_candidates_;
  std::vector<int> required_ids_;

  // ---- search state ----
  std::vector<Frame> frames_;
  std::vector<Value> trail_;
  std::vector<std::pair<const SessionRule*, uint32_t>> table_atoms_;
  std::vector<std::pair<int, uint32_t>> instances_;  // (table pred id, env)
  int rule_use_counter_ = 0;
  long steps_ = 0;
  std::vector<ConjunctiveQuery> results_;
  std::vector<bool> is_dup_;
  FlatKeySet seen_keys_;

  // ---- leaf scratch (reused across leaves) ----
  std::vector<Value> head_vals_;
  std::vector<Value> term_vals_;
  std::vector<std::pair<Value, int64_t>> var_codes_;
  std::vector<int64_t> key_;
  std::vector<std::pair<size_t, size_t>> atom_spans_;

  // ---- counters ----
  int64_t index_hits_ = 0;
  int64_t memo_hits_ = 0;
  int64_t dup_skips_ = 0;
  int64_t normalize_misses_ = 0;
};

void Engine::Search(size_t atom_index) {
  if (results_.size() >= options_.max_rewritings) return;
  if (++steps_ > kMaxSearchSteps) return;
  if (!ctx_.Charge()) return;
  if (atom_index == goals_.size()) {
    Leaf();
    return;
  }
  AtomRef goal = goals_[atom_index];
  const std::vector<const SessionRule*>& candidates =
      goal_candidates_[atom_index];
  ++index_hits_;
  // Pass 1: satisfy the goal from a row instance already joined into the
  // partial rewriting (same table, same environment) — this is what yields
  // the paper's compact rewritings, and enumerating it first keeps them
  // ahead of the result cap. The entries below `instance_count` are stable
  // across the recursion.
  const size_t instance_count = instances_.size();
  for (const SessionRule* rule : candidates) {
    for (size_t i = 0; i < instance_count; ++i) {
      if (instances_[i].first != rule->table_pred_id) continue;
      size_t mark = trail_.size();
      if (UnifyAtoms(goal, 0, rule->head, instances_[i].second)) {
        Search(atom_index + 1);
      }
      Undo(mark);
    }
  }
  // Pass 2: a fresh row instance per rule. The use counter advances for
  // every candidate — including memo-skipped ones — because its value
  // names the row variables of later successful uses.
  const bool memo_on = session_.tuning().use_memo;
  const bool pristine = memo_on && Pristine(goal);
  for (const SessionRule* rule : candidates) {
    int use = rule_use_counter_++;
    bool viable = true;
    bool from_memo = false;
    if (pristine && session_.LookupViability(goal, rule, &viable)) {
      from_memo = true;
      ++memo_hits_;
      if (!viable) continue;
    }
    frames_.push_back(Frame{use, {}});
    uint32_t env = static_cast<uint32_t>(frames_.size() - 1);
    size_t mark = trail_.size();
    bool ok = UnifyAtoms(goal, 0, rule->head, env);
    if (pristine && !from_memo) session_.StoreViability(goal, rule, ok);
    if (ok) {
      table_atoms_.push_back({rule, env});
      instances_.push_back({rule->table_pred_id, env});
      Search(atom_index + 1);
      table_atoms_.pop_back();
      instances_.pop_back();
    }
    Undo(mark);
    frames_.pop_back();
  }
}

Term Engine::Materialize(Value v) const {
  v = Walk(v);
  if (v.term->IsVar()) {
    const int use = frames_[v.env].use;
    if (use < 0) return Term::Var(v.term->name);
    return Term::Var("u" + std::to_string(use) + "_" + v.term->name);
  }
  if (v.term->kind == logic::TermKind::kConstant) return *v.term;
  Term out;
  out.kind = logic::TermKind::kFunction;
  out.name = v.term->name;
  for (TermRef a : session_.interner().ArgsOf(v.term)) {
    out.args.push_back(Materialize(Value{a, v.env}));
  }
  return out;
}

void Engine::Leaf() {
  // An answer variable still bound to a Skolem term cannot be produced
  // from the tables: reject this combination.
  head_vals_.clear();
  for (TermRef t : head_) {
    Value v = Walk(Value{t, 0});
    if (!v.term->IsVar()) return;
    head_vals_.push_back(v);
  }
  // Table atoms with Skolem-valued columns can never hold real rows.
  term_vals_.clear();
  atom_spans_.clear();
  for (const auto& [rule, env] : table_atoms_) {
    size_t begin = term_vals_.size();
    for (TermRef t : session_.interner().TermsOf(rule->table_atom)) {
      Value v = Walk(Value{t, env});
      if (v.term->kind == logic::TermKind::kFunction) return;
      term_vals_.push_back(v);
    }
    atom_spans_.push_back({begin, term_vals_.size()});
  }
  // Required-table filter applied inline: rewritings missing a
  // corresponded table must not consume the result budget (the valid ones
  // can hide arbitrarily deep in the enumeration order).
  for (int required : required_ids_) {
    bool found = false;
    for (const auto& [rule, env] : table_atoms_) {
      if (rule->table_pred_id == required) {
        found = true;
        break;
      }
    }
    if (!found) return;
  }
  if (session_.tuning().use_dup_skip) {
    // Canonical duplicate key: variables coded by first occurrence, atoms
    // sorted, variables recoded, atoms re-sorted (same scheme as
    // logic::CanonicalCq, over integer tokens). Equal keys mean the
    // rewriting is a variable-renaming / atom-reordering of one pushed
    // earlier in this run; the dedup filter would drop it against that
    // earlier one, so it is recorded as a placeholder and never
    // materialized, minimized or normalized. Unequal keys prove nothing —
    // those duplicates still fall through to the equivalence filter.
    var_codes_.clear();
    auto code_of = [&](const Value& v) -> int64_t {
      if (!v.term->IsVar()) {
        return static_cast<int64_t>(reinterpret_cast<uintptr_t>(v.term));
      }
      for (const auto& [seen, code] : var_codes_) {
        if (SameVar(seen, v)) return code;
      }
      int64_t code = -static_cast<int64_t>(var_codes_.size()) - 1;
      var_codes_.push_back({v, code});
      return code;
    };
    key_.clear();
    for (const Value& v : head_vals_) key_.push_back(code_of(v));
    std::vector<std::vector<int64_t>> atom_keys;
    atom_keys.reserve(atom_spans_.size());
    for (size_t a = 0; a < atom_spans_.size(); ++a) {
      std::vector<int64_t> ak;
      ak.push_back(table_atoms_[a].first->table_pred_id);
      for (size_t i = atom_spans_[a].first; i < atom_spans_[a].second; ++i) {
        ak.push_back(code_of(term_vals_[i]));
      }
      atom_keys.push_back(std::move(ak));
    }
    std::sort(atom_keys.begin(), atom_keys.end());
    atom_keys.erase(std::unique(atom_keys.begin(), atom_keys.end()),
                    atom_keys.end());
    // Recode variables by first occurrence in the sorted order, then sort
    // again under the new codes.
    std::vector<int64_t> recode;
    int64_t assigned = 0;
    auto renumber = [&](int64_t code) -> int64_t {
      if (code >= 0) return code;
      size_t idx = static_cast<size_t>(-code) - 1;
      if (recode.size() <= idx) recode.resize(idx + 1, 0);
      if (recode[idx] == 0) recode[idx] = -(++assigned);
      return recode[idx];
    };
    for (int64_t& c : key_) c = renumber(c);
    for (std::vector<int64_t>& ak : atom_keys) {
      for (size_t i = 1; i < ak.size(); ++i) ak[i] = renumber(ak[i]);
    }
    std::sort(atom_keys.begin(), atom_keys.end());
    for (const std::vector<int64_t>& ak : atom_keys) {
      key_.push_back(kAtomSep);
      key_.insert(key_.end(), ak.begin(), ak.end());
    }
    if (!seen_keys_.Insert(key_)) {
      results_.emplace_back();
      is_dup_.push_back(true);
      return;
    }
  }
  ConjunctiveQuery rewriting;
  rewriting.head_predicate = query_.head_predicate;
  for (const Value& v : head_vals_) rewriting.head.push_back(Materialize(v));
  for (size_t a = 0; a < atom_spans_.size(); ++a) {
    Atom out;
    out.predicate = table_atoms_[a].first->rule->table_atom.predicate;
    for (size_t i = atom_spans_[a].first; i < atom_spans_[a].second; ++i) {
      out.terms.push_back(Materialize(term_vals_[i]));
    }
    rewriting.body.push_back(std::move(out));
  }
  // Deduplicate identical atoms introduced by shared rule uses.
  std::sort(rewriting.body.begin(), rewriting.body.end());
  rewriting.body.erase(
      std::unique(rewriting.body.begin(), rewriting.body.end()),
      rewriting.body.end());
  results_.push_back(std::move(rewriting));
  is_dup_.push_back(false);
}

// Canonical integer key of a minimized rewriting (value form): variables
// coded by first occurrence, constants and predicates by their
// session-stable ids, atoms sorted / recoded / re-sorted — the Leaf key
// scheme applied to a materialized query. Renaming-invariant: two
// minimized rewritings get equal keys iff they are variable-renamings /
// atom-reorderings of each other.
std::vector<int64_t> Engine::MinimizedKey(const ConjunctiveQuery& q) {
  std::vector<std::pair<std::string_view, int64_t>> var_codes;
  auto code_of = [&](const Term& t) -> int64_t {
    if (t.kind != logic::TermKind::kVariable) return session_.PredId(t.name);
    for (const auto& [name, code] : var_codes) {
      if (name == t.name) return code;
    }
    int64_t code = -static_cast<int64_t>(var_codes.size()) - 1;
    var_codes.push_back({t.name, code});
    return code;
  };
  std::vector<int64_t> key;
  for (const Term& t : q.head) key.push_back(code_of(t));
  std::vector<std::vector<int64_t>> atom_keys;
  atom_keys.reserve(q.body.size());
  for (const Atom& a : q.body) {
    std::vector<int64_t> ak;
    ak.push_back(session_.PredId(a.predicate));
    for (const Term& t : a.terms) ak.push_back(code_of(t));
    atom_keys.push_back(std::move(ak));
  }
  std::sort(atom_keys.begin(), atom_keys.end());
  std::vector<int64_t> recode;
  int64_t assigned = 0;
  auto renumber = [&](int64_t code) -> int64_t {
    if (code >= 0) return code;
    size_t idx = static_cast<size_t>(-code) - 1;
    if (recode.size() <= idx) recode.resize(idx + 1, 0);
    if (recode[idx] == 0) recode[idx] = -(++assigned);
    return recode[idx];
  };
  for (int64_t& c : key) c = renumber(c);
  for (std::vector<int64_t>& ak : atom_keys) {
    for (size_t i = 1; i < ak.size(); ++i) ak[i] = renumber(ak[i]);
  }
  std::sort(atom_keys.begin(), atom_keys.end());
  for (const std::vector<int64_t>& ak : atom_keys) {
    key.push_back(kAtomSep);
    key.insert(key.end(), ak.begin(), ak.end());
  }
  return key;
}

Result<std::vector<ConjunctiveQuery>> Engine::Run() {
  // Resolve the most constrained goals first (fewest matching rules):
  // relationship atoms typically have a single producing table, so the
  // class and attribute atoms that follow are satisfied by reusing the
  // rows those joins introduced.
  std::stable_sort(query_.body.begin(), query_.body.end(),
                   [&](const Atom& a, const Atom& b) {
                     return session_.Candidates(a.predicate, a.terms.size())
                                .size() <
                            session_.Candidates(b.predicate, b.terms.size())
                                .size();
                   });
  logic::Interner& interner = session_.interner();
  for (const Atom& atom : query_.body) goals_.push_back(interner.Intern(atom));
  for (const Term& t : query_.head) head_.push_back(interner.Intern(t));
  for (const Atom& atom : query_.body) {
    // Rules over the corresponded (required) tables lead; those tables
    // must appear in any surviving rewriting, so exploring them first
    // reaches the intended expressions before the result cap.
    std::vector<const SessionRule*> candidates =
        session_.Candidates(atom.predicate, atom.terms.size());
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&](const SessionRule* a, const SessionRule* b) {
                       return options_.required_tables.count(
                                  a->rule->table_atom.predicate) >
                              options_.required_tables.count(
                                  b->rule->table_atom.predicate);
                     });
    goal_candidates_.push_back(std::move(candidates));
  }
  for (const std::string& table : options_.required_tables) {
    required_ids_.push_back(session_.PredId(table));
  }
  frames_.push_back(Frame{-1, {}});

  const size_t arena_before = session_.arena_bytes();
  const logic::EquivCacheStats stats_before = session_.equiv().stats();
  {
    obs::ScopedTimer search_timer(ctx_.metrics, "rewriting.search_ns");
    Search(0);
  }
  ctx_.Count("rewriting.resolution_steps", steps_);
  ctx_.Count("rewriting.rewritings_enumerated",
             static_cast<int64_t>(results_.size()));
  if (ctx_.Exhausted()) {
    ctx_.governor->NoteTruncation(
        "RewriteQuery: enumeration stopped after " + std::to_string(steps_) +
        " resolution steps with " + std::to_string(results_.size()) +
        " rewriting(s)");
  }

  // Minimization may fold away a required table's only atom (when another
  // table subsumes it), so the filter is re-checked after minimizing.
  // Canonical duplicates skip the whole filter chain: the rewriting they
  // duplicate has already gone through it.
  obs::ScopedTimer filter_timer(ctx_.metrics, "rewriting.filter_ns");
  // The canonical key of the *minimized* rewriting serves two filters: a
  // per-call skip of survivors whose minimized form is a renaming of an
  // earlier survivor's (the dedup loop is guaranteed to drop them — the
  // earlier one was either kept, making them equivalent to it, or dropped
  // against a kept one they are then also equivalent to), and the
  // session-wide normalize memo key.
  const bool want_key =
      session_.tuning().use_dup_skip || session_.tuning().use_memo;
  std::vector<ConjunctiveQuery> rewritings;
  std::vector<std::vector<int64_t>> rewriting_keys;
  FlatKeySet seen_minimized;
  for (size_t i = 0; i < results_.size(); ++i) {
    if (is_dup_[i]) {
      ++dup_skips_;
      continue;
    }
    ConjunctiveQuery minimized = logic::Minimize(std::move(results_[i]));
    bool ok = true;
    for (const std::string& table : options_.required_tables) {
      bool found = false;
      for (const Atom& a : minimized.body) {
        if (a.predicate == table) {
          found = true;
          break;
        }
      }
      if (!found) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    std::vector<int64_t> key;
    if (want_key) key = MinimizedKey(minimized);
    if (session_.tuning().use_dup_skip && !key.empty() &&
        !seen_minimized.Insert(key)) {
      ++dup_skips_;
      continue;
    }
    rewritings.push_back(std::move(minimized));
    rewriting_keys.push_back(std::move(key));
  }

  // Drop duplicates and, when requested, rewritings strictly contained in
  // another survivor — both judged on the normalized (e.g. chased) forms,
  // so variants equivalent under the schema constraints collapse onto the
  // first (most compact, thanks to reuse-first enumeration) one. With the
  // session caches enabled the verdicts come from the EquivCache
  // (memoized, signature-pruned); with both escapes off this is the plain
  // quadratic loop over logic::Equivalent / logic::Contains.
  logic::EquivCache& equiv = session_.equiv();
  const bool cached =
      session_.tuning().use_memo || session_.tuning().use_signatures;
  obs::ScopedTimer dedup_timer(ctx_.metrics, "rewriting.dedup_ns");
  std::vector<ConjunctiveQuery> unique;
  std::vector<ConjunctiveQuery> out;
  if (cached) {
    // Ref-based path: every survivor is interned once, and all verdicts
    // run over handles (pointer fast paths, signatures, pair memos). The
    // normalized forms are cores — the filter loop minimized the
    // survivors, and options_.normalize (when set) minimizes its own
    // output — so the core-isomorphism signature pruning applies. The
    // session-wide normalize memo is keyed by the canonical duplicate key
    // of the raw rewriting: the memoized form may be a renaming of this
    // call's, which is fine because it only feeds renaming-invariant
    // verdicts.
    const bool memo_on = session_.tuning().use_memo;
    auto normalize_ref = [&](const ConjunctiveQuery& q,
                             const std::vector<int64_t>& key) {
      obs::ScopedTimer normalize_timer(ctx_.metrics,
                                       "rewriting.normalize_ns");
      if (memo_on && !key.empty()) {
        if (logic::CqRef hit = session_.LookupNormalized(key)) {
          ++memo_hits_;
          return hit;
        }
      }
      ++normalize_misses_;
      logic::CqRef norm =
          equiv.Intern(options_.normalize ? options_.normalize(q) : q);
      if (memo_on && !key.empty()) session_.StoreNormalized(key, norm);
      return norm;
    };
    std::vector<logic::CqRef> unique_norm;
    for (size_t i = 0; i < rewritings.size(); ++i) {
      logic::CqRef norm = normalize_ref(rewritings[i], rewriting_keys[i]);
      bool duplicate = false;
      for (logic::CqRef kept : unique_norm) {
        if (equiv.EquivalentRefs(kept, norm, /*minimized=*/true)) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) {
        unique.push_back(std::move(rewritings[i]));
        unique_norm.push_back(norm);
      }
    }
    if (options_.keep_only_maximal) {
      std::vector<bool> keep(unique.size(), true);
      for (size_t i = 0; i < unique.size(); ++i) {
        for (size_t j = 0; j < unique.size(); ++j) {
          if (i == j) continue;
          if (equiv.ContainsRefs(unique_norm[j], unique_norm[i]) &&
              !equiv.ContainsRefs(unique_norm[i], unique_norm[j])) {
            keep[i] = false;
            break;
          }
        }
      }
      for (size_t i = 0; i < unique.size(); ++i) {
        if (keep[i]) out.push_back(std::move(unique[i]));
      }
    } else {
      out = std::move(unique);
    }
  } else {
    auto normalize = [&](const ConjunctiveQuery& q) -> ConjunctiveQuery {
      obs::ScopedTimer normalize_timer(ctx_.metrics,
                                       "rewriting.normalize_ns");
      ++normalize_misses_;
      return options_.normalize ? options_.normalize(q) : q;
    };
    std::vector<ConjunctiveQuery> unique_norm;
    for (ConjunctiveQuery& q : rewritings) {
      ConjunctiveQuery norm = normalize(q);
      bool duplicate = false;
      for (const ConjunctiveQuery& kept : unique_norm) {
        if (logic::Equivalent(kept, norm)) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) {
        unique.push_back(std::move(q));
        unique_norm.push_back(std::move(norm));
      }
    }
    if (options_.keep_only_maximal) {
      std::vector<bool> keep(unique.size(), true);
      for (size_t i = 0; i < unique.size(); ++i) {
        for (size_t j = 0; j < unique.size(); ++j) {
          if (i == j) continue;
          if (logic::Contains(unique_norm[j], unique_norm[i]) &&
              !logic::Contains(unique_norm[i], unique_norm[j])) {
            keep[i] = false;
            break;
          }
        }
      }
      for (size_t i = 0; i < unique.size(); ++i) {
        if (keep[i]) out.push_back(std::move(unique[i]));
      }
    } else {
      out = std::move(unique);
    }
  }
  ctx_.Count("rewriting.rewritings_kept", static_cast<int64_t>(out.size()));

  const logic::EquivCacheStats& stats_after = equiv.stats();
  ctx_.Count("rewriting.rules_indexed_hits", index_hits_);
  ctx_.Count("rewriting.normalize_misses", normalize_misses_);
  ctx_.Count("rewriting.memo_hits",
             memo_hits_ + dup_skips_ +
                 (stats_after.memo_hits - stats_before.memo_hits));
  ctx_.Count("rewriting.signature_skips",
             stats_after.signature_skips - stats_before.signature_skips);
  ctx_.Count("rewriting.arena_bytes",
             static_cast<int64_t>(session_.arena_bytes() - arena_before));
  return out;
}

}  // namespace

Result<std::vector<ConjunctiveQuery>> Rewrite(const Request& req,
                                              const exec::RunContext& run_ctx) {
  exec::RunContext ctx = run_ctx;
  if (ctx.governor == nullptr) ctx.governor = req.options.governor;
  obs::ScopedTimer timer(ctx.metrics, "rewriting.rewrite_query_ns");
  Engine engine(req, ctx);
  return engine.Run();
}

Result<std::vector<ConjunctiveQuery>> RewriteQuery(
    const ConjunctiveQuery& cm_query, const std::vector<InverseRule>& rules,
    const RewriteOptions& options) {
  return RewriteQuery(cm_query, rules, options, exec::RunContext{});
}

Result<std::vector<ConjunctiveQuery>> RewriteQuery(
    const ConjunctiveQuery& cm_query, const std::vector<InverseRule>& rules,
    const RewriteOptions& options, const exec::RunContext& run_ctx) {
  // Deprecated shim: a throwaway session per call loses the cross-call
  // memoization; long-lived callers should hold a RewriteSession and use
  // Rewrite directly.
  RewriteSession session(rules);
  Request req;
  req.query = &cm_query;
  req.session = &session;
  req.options = options;
  return Rewrite(req, run_ctx);
}

}  // namespace semap::rew
