// Rendering of table-level conjunctive queries as relational algebra text
// — the "algebraic expression" form the paper returns to the user.
#ifndef SEMAP_REWRITING_ALGEBRA_H_
#define SEMAP_REWRITING_ALGEBRA_H_

#include <functional>
#include <string>
#include <vector>

#include "logic/cq.h"

namespace semap::rew {

/// \brief Resolver from table name to its ordered column list (nullptr for
/// unknown tables, rendered positionally).
using ColumnResolver =
    std::function<const std::vector<std::string>*(const std::string&)>;

/// \brief Render `query` (body atoms over tables, one variable per column
/// position) as a projection over natural joins, e.g.
///
///   project[t0.pname, t2.sid](
///     person t0 join writes t1 on t0.pname = t1.pname
///               join soldAt t2 on t1.bid = t2.bid)
std::string RenderAlgebra(const logic::ConjunctiveQuery& query,
                          const ColumnResolver& columns_of);

}  // namespace semap::rew

#endif  // SEMAP_REWRITING_ALGEBRA_H_
