#include "rewriting/algebra.h"

#include <map>

#include "util/string_util.h"

namespace semap::rew {

std::string RenderAlgebra(const logic::ConjunctiveQuery& query,
                          const ColumnResolver& columns_of) {
  // Alias each atom, name each (alias, position) as alias.column, and
  // derive join conditions from repeated variables.
  struct Occurrence {
    std::string qualified;  // "t0.pname"
  };
  std::map<std::string, std::vector<Occurrence>> var_occurrences;
  std::vector<std::string> from_parts;
  for (size_t i = 0; i < query.body.size(); ++i) {
    const logic::Atom& atom = query.body[i];
    std::string alias = "t" + std::to_string(i);
    from_parts.push_back(atom.predicate + " " + alias);
    const std::vector<std::string>* cols = columns_of(atom.predicate);
    for (size_t p = 0; p < atom.terms.size(); ++p) {
      std::string col = (cols != nullptr && p < cols->size())
                            ? (*cols)[p]
                            : "$" + std::to_string(p);
      const logic::Term& t = atom.terms[p];
      if (t.kind == logic::TermKind::kVariable) {
        var_occurrences[t.name].push_back({alias + "." + col});
      }
    }
  }
  std::vector<std::string> conditions;
  for (const auto& [var, occs] : var_occurrences) {
    for (size_t i = 1; i < occs.size(); ++i) {
      conditions.push_back(occs[i - 1].qualified + " = " + occs[i].qualified);
    }
  }
  std::vector<std::string> projection;
  for (const logic::Term& h : query.head) {
    auto it = var_occurrences.find(h.name);
    projection.push_back(it != var_occurrences.end() && !it->second.empty()
                             ? it->second.front().qualified
                             : h.ToString());
  }
  std::string out = "project[" + Join(projection, ", ") + "](";
  out += Join(from_parts, " join ");
  if (!conditions.empty()) {
    out += " on " + Join(conditions, " and ");
  }
  out += ")";
  return out;
}

}  // namespace semap::rew
