#include "rewriting/session.h"

namespace semap::rew {

RewriteSession::RewriteSession(const std::vector<InverseRule>& rules,
                               Tuning tuning, logic::TermFactory* factory)
    : tuning_(tuning),
      owned_interner_(factory == nullptr ? new logic::Interner() : nullptr),
      interner_(factory == nullptr ? owned_interner_.get() : factory),
      equiv_(interner_) {
  equiv_.use_memo = tuning_.use_memo;
  equiv_.use_signatures = tuning_.use_signatures;
  rules_.reserve(rules.size());
  for (const InverseRule& rule : rules) {
    Rule entry;
    entry.rule = &rule;
    entry.head = interner_->Intern(rule.head);
    entry.table_atom = interner_->Intern(rule.table_atom);
    entry.table_pred_id = PredId(rule.table_atom.predicate);
    rules_.push_back(entry);
  }
  // Index after the vector is final: Rule pointers must not move.
  for (const Rule& entry : rules_) {
    by_head_[{entry.rule->head.predicate, entry.rule->head.terms.size()}]
        .push_back(&entry);
  }
}

const std::vector<const RewriteSession::Rule*>& RewriteSession::Candidates(
    std::string_view predicate, size_t arity) const {
  static const std::vector<const Rule*> kEmpty;
  auto it = by_head_.find(std::make_pair(predicate, arity));
  return it == by_head_.end() ? kEmpty : it->second;
}

int RewriteSession::PredId(std::string_view predicate) {
  auto it = pred_ids_.find(predicate);
  if (it != pred_ids_.end()) return it->second;
  int id = static_cast<int>(pred_ids_.size());
  pred_ids_.emplace(std::string(predicate), id);
  return id;
}

bool RewriteSession::LookupViability(logic::AtomRef goal, const Rule* rule,
                                     bool* viable) const {
  auto it = viability_.find({goal, rule});
  if (it == viability_.end()) return false;
  *viable = it->second;
  return true;
}

void RewriteSession::StoreViability(logic::AtomRef goal, const Rule* rule,
                                    bool viable) {
  viability_.emplace(std::make_pair(goal, rule), viable);
}

logic::CqRef RewriteSession::LookupNormalized(
    const std::vector<int64_t>& key) const {
  auto it = normalized_.find(key);
  return it == normalized_.end() ? nullptr : it->second;
}

void RewriteSession::StoreNormalized(const std::vector<int64_t>& key,
                                     logic::CqRef norm) {
  normalized_.emplace(key, norm);
}

}  // namespace semap::rew
