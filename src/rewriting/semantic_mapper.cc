#include "rewriting/semantic_mapper.h"

#include <algorithm>
#include <set>

#include "baseline/logical_relations.h"
#include "exec/explain_capture.h"
#include "logic/containment.h"
#include "rewriting/algebra.h"
#include "rewriting/inverse_rules.h"
#include "rewriting/rewriter.h"
#include "semantics/encoder.h"
#include "semantics/fd.h"

namespace semap::rew {

using logic::ConjunctiveQuery;
using logic::Substitution;
using logic::Term;

namespace {

/// Encode one CSG side of a candidate as a CM-level query whose head is
/// v0..v{n-1}, one variable per covered correspondence.
Result<ConjunctiveQuery> EncodeCsgQuery(
    const cm::CmGraph& graph, const disc::MappingCandidate& cand,
    const std::vector<disc::LiftedCorrespondence>& lifted, bool source_side) {
  const disc::Csg& csg = source_side ? cand.source_csg : cand.target_csg;
  sem::Fragment fragment = csg.fragment;
  std::vector<std::string> head_vars;
  for (size_t k = 0; k < cand.covered.size(); ++k) {
    const disc::LiftedCorrespondence& lc = lifted[cand.covered[k]];
    int node = source_side ? lc.source_node : lc.target_node;
    // Attachments keep correspondences on the concept *copy* their column
    // is bound to (recursive relationships).
    int node_idx = cand.AttachNode(cand.covered[k], node, source_side);
    if (node_idx < 0) {
      return Status::Internal("covered correspondence node missing from CSG");
    }
    std::string var = "v" + std::to_string(k);
    fragment.attrs.push_back(
        {node_idx, source_side ? lc.source_attribute : lc.target_attribute,
         var});
    head_vars.push_back(std::move(var));
  }
  return sem::EncodeFragment(graph, fragment, head_vars);
}

}  // namespace

Result<std::vector<GeneratedMapping>> GenerateSemanticMappings(
    const sem::AnnotatedSchema& source, const sem::AnnotatedSchema& target,
    const std::vector<disc::Correspondence>& correspondences,
    const SemanticMapperOptions& options) {
  // Deprecated shim: see GenerateMappings.
  return GenerateSemanticMappings(source, target, correspondences, options,
                                  exec::RunContext{});
}

Result<std::vector<GeneratedMapping>> GenerateSemanticMappings(
    const sem::AnnotatedSchema& source, const sem::AnnotatedSchema& target,
    const std::vector<disc::Correspondence>& correspondences,
    const SemanticMapperOptions& options, const exec::RunContext& ctx) {
  // Deprecated shim: build a MapRequest and call GenerateMappings.
  MapRequest req;
  req.source = &source;
  req.target = &target;
  req.correspondences = &correspondences;
  req.options = options;
  return GenerateMappings(req, ctx);
}

Result<std::vector<GeneratedMapping>> GenerateMappings(
    const MapRequest& req, const exec::RunContext& run_ctx) {
  const sem::AnnotatedSchema& source = *req.source;
  const sem::AnnotatedSchema& target = *req.target;
  const std::vector<disc::Correspondence>& correspondences =
      *req.correspondences;
  const SemanticMapperOptions& options = req.options;
  // Discovery and rewriting share one governor: a deadline covers the
  // pipeline end to end, not each stage separately.
  exec::RunContext ctx = run_ctx;
  if (ctx.governor == nullptr) ctx.governor = options.discovery.governor;
  if (ctx.sink == nullptr) ctx.sink = options.discovery.sink;
  disc::Discoverer discoverer(source, target, correspondences,
                              options.discovery, ctx);
  SEMAP_ASSIGN_OR_RETURN(std::vector<disc::MappingCandidate> candidates,
                         discoverer.Run());
  const std::vector<disc::LiftedCorrespondence>& lifted = discoverer.lifted();

  // One TermFactory for the whole run: inverse-rule construction
  // canonicalizes its output through it, and everything downstream (both
  // sessions, the tgd cache) shares the same hash-consed store.
  logic::TermFactory run_factory;
  SEMAP_ASSIGN_OR_RETURN(std::vector<InverseRule> source_rules,
                         InverseRulesForSchema(source, &run_factory));
  SEMAP_ASSIGN_OR_RETURN(std::vector<InverseRule> target_rules,
                         InverseRulesForSchema(target, &run_factory));

  // Normalizers for rewriting comparison: chase under the schema's RICs,
  // key FDs and CM-derived FDs, then minimize.
  auto make_normalizer = [](const sem::AnnotatedSchema& side) {
    std::vector<baseline::ColumnFd> fds;
    for (const sem::TableFd& fd : sem::DeriveSchemaFds(side)) {
      fds.push_back(baseline::ColumnFd{fd.table, fd.lhs, fd.rhs});
    }
    // Pre-append the per-table key FDs (same order the chase would
    // assemble them in) so the chase reuses one complete EGD list across
    // the hundreds of normalize calls of a run.
    for (const rel::Table& table : side.schema().tables()) {
      if (table.primary_key().empty()) continue;
      fds.push_back(baseline::ColumnFd{table.name(), table.primary_key(),
                                       table.columns()});
    }
    std::vector<sem::CrossTableFd> cross = sem::DeriveCrossTableFds(side);
    const rel::RelationalSchema* schema = &side.schema();
    // EGDs only: cheap, never grows the query, and suffices to collapse
    // rewritings that read an attribute from a second key-joined row.
    baseline::ChaseOptions chase_opts;
    chase_opts.apply_rics = false;
    chase_opts.extra_fds_complete = true;
    return [schema, fds, cross, chase_opts](const ConjunctiveQuery& q) {
      return logic::Minimize(baseline::ChaseQueryWithConstraints(
          *schema, q, fds, cross, chase_opts));
    };
  };
  auto source_normalize = make_normalizer(source);
  auto target_normalize = make_normalizer(target);

  // One rewriting session per schema side for the whole run: the inverse
  // rules are interned and indexed once, and the viability / normalize /
  // equivalence memo tables persist across candidates. A third,
  // mapper-level cache memoizes the tgd-side equivalence checks of the
  // variant and duplicate filters.
  RewriteSession source_session(source_rules, options.tuning, &run_factory);
  RewriteSession target_session(target_rules, options.tuning, &run_factory);
  logic::EquivCache tgd_equiv(&run_factory);
  tgd_equiv.use_memo = options.tuning.use_memo;
  tgd_equiv.use_signatures = options.tuning.use_signatures;
  logic::EquivCache* tgd_cache =
      options.tuning.use_memo || options.tuning.use_signatures ? &tgd_equiv
                                                               : nullptr;

  auto source_columns = [&](const std::string& table)
      -> const std::vector<std::string>* {
    const rel::Table* t = source.schema().FindTable(table);
    return t == nullptr ? nullptr : &t->columns();
  };
  auto target_columns = [&](const std::string& table)
      -> const std::vector<std::string>* {
    const rel::Table* t = target.schema().FindTable(table);
    return t == nullptr ? nullptr : &t->columns();
  };

  obs::Span rewriting_span = ctx.Span("rewriting");
  std::vector<GeneratedMapping> mappings;
  // Interned handles of each emitted mapping's primary tgd sides, parallel
  // to `mappings`: cross-candidate dedup compares by handle instead of
  // re-hashing every accepted mapping per new candidate.
  std::vector<std::pair<logic::CqRef, logic::CqRef>> mapping_refs;
  size_t candidates_rendered = 0;
  for (const disc::MappingCandidate& cand : candidates) {
    if (mappings.size() >= options.max_mappings) break;
    if (!ctx.Charge()) break;
    ++candidates_rendered;
    SEMAP_ASSIGN_OR_RETURN(
        ConjunctiveQuery src_cm,
        EncodeCsgQuery(source.graph(), cand, lifted, /*source_side=*/true));
    SEMAP_ASSIGN_OR_RETURN(
        ConjunctiveQuery tgt_cm,
        EncodeCsgQuery(target.graph(), cand, lifted, /*source_side=*/false));

    RewriteOptions src_opts;
    src_opts.max_rewritings = options.max_rewritings_per_side * 4;
    src_opts.normalize = source_normalize;
    for (size_t idx : cand.covered) {
      src_opts.required_tables.insert(lifted[idx].corr.source.table);
    }
    RewriteOptions tgt_opts;
    tgt_opts.max_rewritings = options.max_rewritings_per_side * 4;
    tgt_opts.normalize = target_normalize;
    for (size_t idx : cand.covered) {
      tgt_opts.required_tables.insert(lifted[idx].corr.target.table);
    }

    Request src_req;
    src_req.query = &src_cm;
    src_req.session = &source_session;
    src_req.options = std::move(src_opts);
    Request tgt_req;
    tgt_req.query = &tgt_cm;
    tgt_req.session = &target_session;
    tgt_req.options = std::move(tgt_opts);
    SEMAP_ASSIGN_OR_RETURN(std::vector<ConjunctiveQuery> src_rewritings,
                           Rewrite(src_req, ctx));
    SEMAP_ASSIGN_OR_RETURN(std::vector<ConjunctiveQuery> tgt_rewritings,
                           Rewrite(tgt_req, ctx));
    if (src_rewritings.empty() || tgt_rewritings.empty()) {
      if (ctx.provenance != nullptr) {
        obs::RejectionRecord rejection;
        rejection.candidate = cand.ToString(source.graph(), target.graph());
        rejection.filter = "no-rewriting";
        rejection.detail =
            std::string(src_rewritings.empty() ? "source" : "target") +
            " CM query has no relational rewriting over the required tables";
        rejection.covered = cand.covered.size();
        rejection.penalty = cand.penalty;
        ctx.provenance->RecordRejection(std::move(rejection));
      }
      continue;
    }
    // Most compact rewriting first (Occam: the paper returns the single
    // q'3-style expression); the rest become alternative variants.
    auto by_size = [](const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
      return a.body.size() < b.body.size();
    };
    std::stable_sort(src_rewritings.begin(), src_rewritings.end(), by_size);
    std::stable_sort(tgt_rewritings.begin(), tgt_rewritings.end(), by_size);
    if (src_rewritings.size() > options.max_rewritings_per_side) {
      src_rewritings.resize(options.max_rewritings_per_side);
    }
    if (tgt_rewritings.size() > options.max_rewritings_per_side) {
      tgt_rewritings.resize(options.max_rewritings_per_side);
    }

    GeneratedMapping mapping;
    std::vector<std::pair<logic::CqRef, logic::CqRef>> variant_refs;
    for (const ConjunctiveQuery& rs : src_rewritings) {
      for (const ConjunctiveQuery& rt : tgt_rewritings) {
        logic::Tgd tgd = logic::AlignTgd(rs, rt);
        // Intern each side once; the handles ride along with the variant
        // so no query is ever re-hashed by the dedup loops below.
        logic::CqRef tgd_src = nullptr;
        logic::CqRef tgd_tgt = nullptr;
        if (tgd_cache != nullptr) {
          tgd_src = tgd_cache->Intern(tgd.source);
          tgd_tgt = tgd_cache->Intern(tgd.target);
        }
        bool duplicate = false;
        for (size_t vi = 0; vi < mapping.variants.size(); ++vi) {
          const bool equal =
              tgd_cache != nullptr
                  ? logic::EquivalentTgds(
                        mapping.variants[vi], variant_refs[vi].first,
                        variant_refs[vi].second, tgd, tgd_src, tgd_tgt,
                        *tgd_cache)
                  : logic::EquivalentTgds(mapping.variants[vi], tgd);
          if (equal) {
            duplicate = true;
            break;
          }
        }
        if (!duplicate) {
          mapping.variants.push_back(std::move(tgd));
          variant_refs.emplace_back(tgd_src, tgd_tgt);
        }
      }
    }
    if (mapping.variants.empty()) continue;
    mapping.tgd = mapping.variants.front();
    // A candidate whose primary rendering duplicates an earlier mapping's
    // is the same mapping expression; skip it.
    bool duplicate_mapping = false;
    for (size_t mi = 0; mi < mappings.size(); ++mi) {
      const bool equal =
          tgd_cache != nullptr
              ? logic::EquivalentTgds(mappings[mi].tgd, mapping_refs[mi].first,
                                      mapping_refs[mi].second, mapping.tgd,
                                      variant_refs.front().first,
                                      variant_refs.front().second, *tgd_cache)
              : logic::EquivalentTgds(mappings[mi].tgd, mapping.tgd);
      if (equal) {
        duplicate_mapping = true;
        break;
      }
    }
    if (duplicate_mapping) {
      if (ctx.provenance != nullptr) {
        obs::RejectionRecord rejection;
        rejection.candidate = cand.ToString(source.graph(), target.graph());
        rejection.filter = "duplicate";
        rejection.detail =
            "primary rendering equivalent to an earlier candidate's mapping";
        rejection.covered = cand.covered.size();
        rejection.penalty = cand.penalty;
        ctx.provenance->RecordRejection(std::move(rejection));
      }
      continue;
    }
    mapping.source_algebra = RenderAlgebra(mapping.tgd.source, source_columns);
    mapping.target_algebra = RenderAlgebra(mapping.tgd.target, target_columns);
    mapping.source_join_hints = DeriveJoinHints(source.graph(), cand.source_csg);
    mapping.target_join_hints = DeriveJoinHints(target.graph(), cand.target_csg);
    for (size_t idx : cand.covered) {
      mapping.covered.push_back(lifted[idx].corr);
    }
    mapping.candidate = cand;
    if (ctx.provenance != nullptr) {
      obs::DerivationRecord derivation;
      derivation.tgd = mapping.tgd.ToString();
      derivation.origin = "semantic";
      for (size_t idx : cand.covered) {
        derivation.covered.push_back(lifted[idx].corr.ToString());
      }
      derivation.source_csg = cand.source_csg.ToString(source.graph());
      derivation.target_csg = cand.target_csg.ToString(target.graph());
      derivation.penalty = cand.penalty;
      derivation.variants = mapping.variants.size();
      // The rendered TGD is function-free; the Skolem-merge choices that
      // shaped it are the ones its tables' inverse rules made.
      std::set<std::string> src_tables;
      for (const logic::Atom& a : mapping.tgd.source.body) {
        src_tables.insert(a.predicate);
      }
      std::set<std::string> tgt_tables;
      for (const logic::Atom& a : mapping.tgd.target.body) {
        tgt_tables.insert(a.predicate);
      }
      derivation.skolems =
          exec::SkolemDecisionsFromRules(source_rules, src_tables);
      for (obs::SkolemDecision& d :
           exec::SkolemDecisionsFromRules(target_rules, tgt_tables)) {
        bool seen = false;
        for (const obs::SkolemDecision& have : derivation.skolems) {
          if (have.function == d.function) {
            seen = true;
            break;
          }
        }
        if (!seen) derivation.skolems.push_back(std::move(d));
      }
      derivation.source_algebra = mapping.source_algebra;
      derivation.target_algebra = mapping.target_algebra;
      ctx.provenance->RecordDerivation(std::move(derivation));
    }
    mappings.push_back(std::move(mapping));
    mapping_refs.push_back(variant_refs.front());
  }
  if (ctx.Exhausted() && candidates_rendered < candidates.size()) {
    ctx.governor->NoteTruncation(
        "GenerateSemanticMappings: rendered " +
        std::to_string(candidates_rendered) + "/" +
        std::to_string(candidates.size()) + " discovered candidates");
    if (ctx.provenance != nullptr) {
      obs::RejectionRecord rejection;
      rejection.candidate =
          std::to_string(candidates.size() - candidates_rendered) +
          " unrendered discovered candidate(s)";
      rejection.filter = "budget";
      rejection.detail = "rewriting budget exhausted after rendering " +
                         std::to_string(candidates_rendered) + "/" +
                         std::to_string(candidates.size()) + " candidates";
      ctx.provenance->RecordRejection(std::move(rejection));
    }
  }
  rewriting_span.AddAttr("mappings", static_cast<int64_t>(mappings.size()));
  rewriting_span.End();
  ctx.Count("rewriting.candidates_rendered",
            static_cast<int64_t>(candidates_rendered));
  ctx.Count("rewriting.mappings_emitted",
            static_cast<int64_t>(mappings.size()));
  return mappings;
}

}  // namespace semap::rew
