// Outer-join hints (Section 6): "a more careful look at the tree provides
// hints about when joins should really be treated as outer-joins (e.g.,
// when the minimum cardinality of an edge being traversed is 0, not 1);
// such information could be quite useful in computing more accurate
// mappings, expressed as nested tuple-generating dependencies."
//
// For every edge of a discovered CSG, traversed root-outward, a minimum
// participation of 0 means the subtree beyond it may be absent for some
// instances — the relational join realizing that edge should be an outer
// join so those instances are not dropped.
#ifndef SEMAP_REWRITING_JOIN_HINTS_H_
#define SEMAP_REWRITING_JOIN_HINTS_H_

#include <string>
#include <vector>

#include "discovery/csg.h"

namespace semap::rew {

struct JoinHint {
  std::string from_class;
  std::string to_class;
  std::string relationship;
  /// True when the traversed direction has minimum cardinality 0: realize
  /// the join as a LEFT OUTER JOIN toward `to_class`.
  bool outer = false;

  std::string ToString() const;
};

/// \brief One hint per CSG edge, in tree order. ISA edges toward a
/// superclass are total by definition (never outer); ISA⁻ edges and any
/// relationship/role traversal with min 0 are flagged outer.
std::vector<JoinHint> DeriveJoinHints(const cm::CmGraph& graph,
                                      const disc::Csg& csg);

}  // namespace semap::rew

#endif  // SEMAP_REWRITING_JOIN_HINTS_H_
