#include "rewriting/inverse_rules.h"

#include <algorithm>
#include <map>
#include <set>

#include "semantics/encoder.h"

namespace semap::rew {

using logic::Atom;
using logic::Substitution;
using logic::Term;

Result<std::vector<InverseRule>> InverseRulesForTable(
    const cm::CmGraph& graph, const rel::Table& table_def,
    const sem::STree& stree) {
  return InverseRulesForTable(graph, table_def, stree, nullptr);
}

Result<std::vector<InverseRule>> InverseRulesForTable(
    const cm::CmGraph& graph, const rel::Table& table_def,
    const sem::STree& stree, logic::TermFactory* factory) {
  sem::Fragment fragment = sem::FragmentFromSTree(stree);
  std::vector<std::string> var_of_node;
  SEMAP_ASSIGN_OR_RETURN(
      logic::ConjunctiveQuery encoded,
      sem::EncodeFragment(graph, fragment, table_def.columns(), stree.table,
                          &var_of_node));

  std::vector<Term> column_vars;
  column_vars.reserve(table_def.columns().size());
  for (const std::string& col : table_def.columns()) {
    column_vars.push_back(Term::Var(col));
  }

  // Identifier term per instance variable.
  Substitution id_subst;
  std::set<std::string> instance_vars(var_of_node.begin(), var_of_node.end());
  for (const std::string& v : instance_vars) {
    Term id_term = Term::Func("sk_" + stree.table + "_" + v, column_vars);
    for (size_t i = 0; i < stree.nodes.size(); ++i) {
      if (var_of_node[i] != v) continue;
      const cm::GraphNode& cls = graph.node(stree.nodes[i].graph_node);
      const cm::CmClass* model_cls = graph.model().FindClass(cls.name);
      if (model_cls == nullptr) continue;  // reified nodes have no keys here
      std::vector<std::string> key_attrs = model_cls->KeyAttributes();
      if (key_attrs.empty()) continue;
      // All key attributes must be bound at this node.
      std::vector<std::string> key_cols;
      bool complete = true;
      for (const std::string& ka : key_attrs) {
        const sem::ColumnBinding* found = nullptr;
        for (const sem::ColumnBinding& b : stree.bindings) {
          if (b.node == static_cast<int>(i) && b.attribute == ka) {
            found = &b;
            break;
          }
        }
        if (found == nullptr) {
          complete = false;
          break;
        }
        key_cols.push_back(found->column);
      }
      if (!complete) continue;
      if (key_cols.size() == 1) {
        id_term = Term::Var(key_cols[0]);
      } else {
        std::vector<Term> args;
        args.reserve(key_cols.size());
        for (const std::string& c : key_cols) args.push_back(Term::Var(c));
        id_term = Term::Func("id_" + cls.name, std::move(args));
      }
      break;
    }
    id_subst[v] = std::move(id_term);
  }
  // Fresh variables introduced by un-reification of partially present
  // auto-reified nodes are existential too: skolemize them.
  for (const std::string& v : encoded.ExistentialVariables()) {
    if (id_subst.count(v) > 0) continue;
    bool is_column = table_def.HasColumn(v);
    if (is_column) continue;
    id_subst[v] = Term::Func("sk_" + stree.table + "_" + v, column_vars);
  }

  Atom table_atom{stree.table, column_vars};
  std::vector<InverseRule> rules;
  rules.reserve(encoded.body.size());
  for (const Atom& atom : encoded.body) {
    rules.push_back(
        InverseRule{logic::ApplySubstitution(atom, id_subst), table_atom});
  }
  if (factory != nullptr) {
    // Canonicalize the produced structures: downstream interning of these
    // heads / table atoms (session indexes, equivalence caches sharing the
    // factory) becomes a hash hit returning the same handle.
    for (const InverseRule& rule : rules) {
      factory->Intern(rule.head);
      factory->Intern(rule.table_atom);
    }
  }
  return rules;
}

Result<std::vector<InverseRule>> InverseRulesForSchema(
    const sem::AnnotatedSchema& side) {
  return InverseRulesForSchema(side, nullptr);
}

Result<std::vector<InverseRule>> InverseRulesForSchema(
    const sem::AnnotatedSchema& side, logic::TermFactory* factory) {
  std::vector<InverseRule> out;
  for (const auto& [table, stree] : side.semantics()) {
    const rel::Table* table_def = side.schema().FindTable(table);
    if (table_def == nullptr) continue;
    SEMAP_ASSIGN_OR_RETURN(
        std::vector<InverseRule> rules,
        InverseRulesForTable(side.graph(), *table_def, stree, factory));
    out.insert(out.end(), std::make_move_iterator(rules.begin()),
               std::make_move_iterator(rules.end()));
  }
  return out;
}

}  // namespace semap::rew
