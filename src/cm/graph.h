// CM graph: the labeled directed graph compiled from a ConceptualModel
// (Section 2 of the paper).
//
// Nodes are class nodes (one per class, including reified-relationship
// classes) and attribute nodes (one per class attribute). Edges come in
// inverse pairs for relationships, roles and ISA; each direction carries
// its own cardinality, so "edge e is functional" is simply
// e.card.IsFunctional() regardless of which member of the pair it is.
//
// Per Section 3.3, many-to-many *binary* relationships are reified during
// graph construction: a class node tagged auto_reified is inserted with two
// roles ("src", "tgt"). The logic encoder un-reifies such nodes when
// emitting formulas so that, as in the paper, binary relationships appear
// as binary predicates.
#ifndef SEMAP_CM_GRAPH_H_
#define SEMAP_CM_GRAPH_H_

#include <map>
#include <string>
#include <vector>

#include "cm/model.h"
#include "util/result.h"

namespace semap::cm {

enum class NodeKind {
  kClass,
  kAttribute,
};

struct GraphNode {
  int id = -1;
  NodeKind kind = NodeKind::kClass;
  std::string name;         // class name, or attribute name
  std::string owner_class;  // attribute nodes only: the owning class
  bool reified = false;
  bool auto_reified = false;  // reified by graph construction from a binary
  int arity = 0;              // number of roles when reified
  SemanticType semantic_type = SemanticType::kNone;
  bool is_key_attribute = false;  // attribute nodes only

  bool IsClass() const { return kind == NodeKind::kClass; }
};

enum class EdgeKind {
  kRelationship,  // a (functional) binary relationship direction
  kAttribute,     // class node -> attribute node
  kIsa,           // subclass -> superclass (and its inverse)
  kRole,          // reified node -> filler (and its inverse)
};

struct GraphEdge {
  int id = -1;
  int from = -1;
  int to = -1;
  std::string name;       // relationship / role / attribute name
  bool inverted = false;  // true for the p⁻ member of an inverse pair
  EdgeKind kind = EdgeKind::kRelationship;
  Cardinality card;       // in this direction: #to-objects per from-object
  SemanticType semantic_type = SemanticType::kNone;
  int partner = -1;       // id of the inverse edge; -1 for attribute edges

  bool IsFunctional() const { return card.IsFunctional(); }
  /// Display label: "p" or "p-" for the inverse direction.
  std::string Label() const { return inverted ? name + "-" : name; }
};

/// \brief Immutable compiled graph over a ConceptualModel.
class CmGraph {
 public:
  /// Compile `model` (must Validate()) into a graph.
  static Result<CmGraph> Build(const ConceptualModel& model);

  const ConceptualModel& model() const { return model_; }

  const std::vector<GraphNode>& nodes() const { return nodes_; }
  const std::vector<GraphEdge>& edges() const { return edges_; }
  const GraphNode& node(int id) const { return nodes_[static_cast<size_t>(id)]; }
  const GraphEdge& edge(int id) const { return edges_[static_cast<size_t>(id)]; }

  /// Outgoing edge ids of `node` (all kinds).
  const std::vector<int>& OutEdges(int node) const {
    return out_edges_[static_cast<size_t>(node)];
  }

  /// Class-node id for `name`, or -1.
  int FindClassNode(const std::string& name) const;
  /// Attribute-node id for `cls`.`attr`, or -1.
  int FindAttributeNode(const std::string& cls, const std::string& attr) const;

  /// All class-node ids (skips attribute nodes).
  std::vector<int> ClassNodes() const;

  /// The edge from `from_node` with the given relationship/role name, in
  /// the requested direction (`inverted`); -1 if absent. For a binary
  /// relationship that was auto-reified this finds nothing — use
  /// FindAutoReifiedNode instead.
  int FindEdge(int from_node, const std::string& name, bool inverted) const;

  /// Node id of the auto-reified class for binary relationship `rel_name`,
  /// or -1 when that relationship was not reified.
  int FindAutoReifiedNode(const std::string& rel_name) const;

  /// Disjointness at the graph level (delegates to the model).
  bool AreDisjoint(int class_node_a, int class_node_b) const;

  /// Number of class nodes whose edges are all functional in one direction:
  /// cardinality composition along a directed path. Composing any
  /// non-functional step yields a non-functional result; minimums compose
  /// multiplicatively on the 0/1 lattice (any optional step makes the whole
  /// path optional).
  static Cardinality ComposePath(const std::vector<const GraphEdge*>& path);

  std::string ToString() const;

 private:
  CmGraph() = default;

  int AddNode(GraphNode node);
  /// Adds the pair (forward, inverse) and returns the forward edge id.
  int AddEdgePair(GraphEdge forward, GraphEdge inverse);

  ConceptualModel model_;
  std::vector<GraphNode> nodes_;
  std::vector<GraphEdge> edges_;
  std::vector<std::vector<int>> out_edges_;
  std::map<std::string, int> class_node_index_;
  std::map<std::pair<std::string, std::string>, int> attribute_node_index_;
  std::map<std::string, int> auto_reified_index_;
};

}  // namespace semap::cm

#endif  // SEMAP_CM_GRAPH_H_
