// Conceptual modeling language (CML) model, per Section 2 of the paper.
//
// CML captures the common features of EER and UML: classes with simple
// single-valued attributes (some marked as identifying keys), binary
// relationships with min..max cardinality constraints in both directions,
// ISA hierarchies with disjointness and covering constraints, and reified
// relationships (used for n-ary relationships, relationships with
// attributes, and — during graph construction — many-to-many binaries).
// Relationships may carry a semantic type tag such as partOf, which the
// discovery algorithm uses to discriminate candidates (Example 1.3).
#ifndef SEMAP_CM_MODEL_H_
#define SEMAP_CM_MODEL_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace semap::cm {

/// \brief Upper bound sentinel for unbounded ("*") cardinalities.
inline constexpr int kMany = -1;

/// \brief A min..max participation constraint. max == kMany means '*'.
struct Cardinality {
  int min = 0;
  int max = kMany;

  static Cardinality Any() { return {0, kMany}; }          // 0..*
  static Cardinality AtLeastOne() { return {1, kMany}; }   // 1..*
  static Cardinality ExactlyOne() { return {1, 1}; }       // 1..1
  static Cardinality AtMostOne() { return {0, 1}; }        // 0..1

  /// A direction of a relationship is functional when each domain object
  /// relates to at most one range object.
  bool IsFunctional() const { return max == 1; }
  /// Total participation: every domain object takes part.
  bool IsTotal() const { return min >= 1; }

  std::string ToString() const;
  bool operator==(const Cardinality&) const = default;
};

/// \brief Semantic category of a relationship, used for compatibility
/// filtering (Example 1.3 distinguishes partOf from plain relationships).
enum class SemanticType {
  kNone,
  kPartOf,
};

std::string ToString(SemanticType type);

struct CmAttribute {
  std::string name;
  bool is_key = false;

  bool operator==(const CmAttribute&) const = default;
};

/// \brief An entity class ("concept") with its attributes.
struct CmClass {
  std::string name;
  std::vector<CmAttribute> attributes;

  const CmAttribute* FindAttribute(const std::string& attr) const;
  /// Names of key attributes, in declaration order.
  std::vector<std::string> KeyAttributes() const;
};

/// \brief A binary relationship `name` from `from_class` to `to_class`.
///
/// `forward` constrains how many `to` objects relate to one `from` object;
/// `inverse` constrains the opposite direction.
struct CmRelationship {
  std::string name;
  std::string from_class;
  std::string to_class;
  Cardinality forward = Cardinality::Any();
  Cardinality inverse = Cardinality::Any();
  SemanticType semantic_type = SemanticType::kNone;

  bool IsManyToMany() const {
    return !forward.IsFunctional() && !inverse.IsFunctional();
  }

  std::string ToString() const;
};

/// \brief sub ISA super.
struct IsaLink {
  std::string sub;
  std::string super;
  bool operator==(const IsaLink&) const = default;
};

/// \brief The listed classes are pairwise disjoint.
struct DisjointnessConstraint {
  std::vector<std::string> classes;
};

/// \brief The subclasses jointly cover the superclass.
struct CoveringConstraint {
  std::string super;
  std::vector<std::string> subs;
};

/// \brief A role of a reified relationship: a functional link from the
/// reified class to the filler. `participation` constrains how many
/// instances of the reified relationship one filler object may appear in
/// (0/1..1 means "participates at most/exactly once").
struct Role {
  std::string name;
  std::string filler_class;
  Cardinality participation = Cardinality::Any();
};

/// \brief An explicitly reified relationship: n-ary relationships,
/// relationships with attributes, or higher-order relationships.
struct ReifiedRelationship {
  std::string class_name;
  std::vector<Role> roles;
  std::vector<CmAttribute> attributes;
  SemanticType semantic_type = SemanticType::kNone;
};

/// \brief A complete conceptual model.
class ConceptualModel {
 public:
  ConceptualModel() = default;
  explicit ConceptualModel(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  Status AddClass(CmClass cls);
  Status AddRelationship(CmRelationship rel);
  Status AddIsa(IsaLink link);
  Status AddDisjointness(DisjointnessConstraint constraint);
  Status AddCovering(CoveringConstraint constraint);
  Status AddReified(ReifiedRelationship reified);

  const CmClass* FindClass(const std::string& name) const;
  const CmRelationship* FindRelationship(const std::string& name) const;
  const ReifiedRelationship* FindReified(const std::string& class_name) const;

  const std::vector<CmClass>& classes() const { return classes_; }
  const std::vector<CmRelationship>& relationships() const {
    return relationships_;
  }
  const std::vector<IsaLink>& isa_links() const { return isa_links_; }
  const std::vector<DisjointnessConstraint>& disjointness() const {
    return disjointness_;
  }
  const std::vector<CoveringConstraint>& coverings() const {
    return coverings_;
  }
  const std::vector<ReifiedRelationship>& reified() const { return reified_; }

  /// Direct superclasses of `cls`.
  std::vector<std::string> SuperclassesOf(const std::string& cls) const;
  /// True if `sub` ISA* `super` (reflexive-transitive).
  bool IsSubclassOf(const std::string& sub, const std::string& super) const;
  /// True if the two classes are declared (or inherited-to-be) disjoint.
  bool AreDisjoint(const std::string& a, const std::string& b) const;

  /// Count of class nodes + reified nodes: the paper's "#nodes in CM"
  /// metric counts concepts.
  size_t ConceptCount() const { return classes_.size() + reified_.size(); }

  /// Check referential consistency: every relationship/ISA/constraint
  /// mentions declared classes; reified roles point at declared classes.
  Status Validate() const;

  std::string ToString() const;

 private:
  std::string name_;
  std::vector<CmClass> classes_;
  std::vector<CmRelationship> relationships_;
  std::vector<IsaLink> isa_links_;
  std::vector<DisjointnessConstraint> disjointness_;
  std::vector<CoveringConstraint> coverings_;
  std::vector<ReifiedRelationship> reified_;
  std::map<std::string, size_t> class_index_;
  std::map<std::string, size_t> reified_index_;
};

}  // namespace semap::cm

#endif  // SEMAP_CM_MODEL_H_
