#include "cm/parser.h"

#include <set>
#include <utility>

#include "util/lexer.h"

namespace semap::cm {

namespace {

// cardinality := INT '..' (INT | '*')
//
// `sink` (nullable) enables recovery-mode reporting: an inverted range is
// reported as kBadCardinality (and the statement abandoned via the
// AlreadyDiagnosed sentinel); a 0..0 range is kept but warned about.
Result<Cardinality> ParseCardinality(TokenCursor& cur, DiagnosticSink* sink) {
  Cardinality card;
  SourceSpan span = cur.SpanHere();
  SEMAP_ASSIGN_OR_RETURN(long min, cur.ExpectInteger());
  card.min = static_cast<int>(min);
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct(".."));
  if (cur.TryConsumePunct("*")) {
    card.max = kMany;
  } else {
    SEMAP_ASSIGN_OR_RETURN(long max, cur.ExpectInteger());
    card.max = static_cast<int>(max);
  }
  if (card.max != kMany && card.max < card.min) {
    if (sink != nullptr) {
      sink->Error(diag::kBadCardinality, "cardinality max must be >= min",
                  span, "write 'min..max' with min <= max, or 'min..*'");
      return AlreadyDiagnosed();
    }
    return cur.ErrorHere("cardinality max must be >= min");
  }
  if (sink != nullptr && card.min == 0 && card.max == 0) {
    sink->Warning(diag::kEmptyCardinality,
                  "cardinality 0..0 forbids all participation", span);
  }
  return card;
}

Result<CmClass> ParseClassStmt(TokenCursor& cur) {
  CmClass cls;
  SEMAP_ASSIGN_OR_RETURN(cls.name, cur.ExpectIdentifier());
  if (cur.Peek().IsPunct("{")) {
    SEMAP_RETURN_NOT_OK(cur.ExpectPunct("{"));
    while (!cur.TryConsumePunct("}")) {
      CmAttribute attr;
      SEMAP_ASSIGN_OR_RETURN(attr.name, cur.ExpectIdentifier());
      if (cur.TryConsumeIdent("key")) attr.is_key = true;
      SEMAP_RETURN_NOT_OK(cur.ExpectPunct(";"));
      cls.attributes.push_back(std::move(attr));
    }
  } else {
    SEMAP_RETURN_NOT_OK(cur.ExpectPunct(";"));
  }
  return cls;
}

Result<CmRelationship> ParseRelationshipStmt(TokenCursor& cur,
                                             DiagnosticSink* sink) {
  CmRelationship rel;
  if (cur.TryConsumeIdent("partof")) {
    rel.semantic_type = SemanticType::kPartOf;
  }
  SEMAP_ASSIGN_OR_RETURN(rel.name, cur.ExpectIdentifier());
  SEMAP_ASSIGN_OR_RETURN(rel.from_class, cur.ExpectIdentifier());
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct("--"));
  SEMAP_ASSIGN_OR_RETURN(rel.to_class, cur.ExpectIdentifier());
  if (cur.TryConsumeIdent("fwd")) {
    SEMAP_ASSIGN_OR_RETURN(rel.forward, ParseCardinality(cur, sink));
  }
  if (cur.TryConsumeIdent("inv")) {
    SEMAP_ASSIGN_OR_RETURN(rel.inverse, ParseCardinality(cur, sink));
  }
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct(";"));
  return rel;
}

Result<IsaLink> ParseIsaStmt(TokenCursor& cur) {
  IsaLink link;
  SEMAP_ASSIGN_OR_RETURN(link.sub, cur.ExpectIdentifier());
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct("->"));
  SEMAP_ASSIGN_OR_RETURN(link.super, cur.ExpectIdentifier());
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct(";"));
  return link;
}

Result<DisjointnessConstraint> ParseDisjointStmt(TokenCursor& cur) {
  DisjointnessConstraint constraint;
  do {
    SEMAP_ASSIGN_OR_RETURN(std::string cls, cur.ExpectIdentifier());
    constraint.classes.push_back(std::move(cls));
  } while (cur.TryConsumePunct(","));
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct(";"));
  return constraint;
}

Result<CoveringConstraint> ParseCoversStmt(TokenCursor& cur) {
  CoveringConstraint constraint;
  SEMAP_ASSIGN_OR_RETURN(constraint.super, cur.ExpectIdentifier());
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct("="));
  do {
    SEMAP_ASSIGN_OR_RETURN(std::string cls, cur.ExpectIdentifier());
    constraint.subs.push_back(std::move(cls));
  } while (cur.TryConsumePunct(","));
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct(";"));
  return constraint;
}

Result<ReifiedRelationship> ParseReifiedStmt(TokenCursor& cur,
                                             DiagnosticSink* sink) {
  ReifiedRelationship reified;
  if (cur.TryConsumeIdent("partof")) {
    reified.semantic_type = SemanticType::kPartOf;
  }
  SEMAP_ASSIGN_OR_RETURN(reified.class_name, cur.ExpectIdentifier());
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct("{"));
  while (!cur.TryConsumePunct("}")) {
    if (cur.TryConsumeIdent("role")) {
      Role role;
      SEMAP_ASSIGN_OR_RETURN(role.name, cur.ExpectIdentifier());
      SEMAP_RETURN_NOT_OK(cur.ExpectPunct("->"));
      SEMAP_ASSIGN_OR_RETURN(role.filler_class, cur.ExpectIdentifier());
      if (cur.TryConsumeIdent("part")) {
        SEMAP_ASSIGN_OR_RETURN(role.participation, ParseCardinality(cur, sink));
      }
      SEMAP_RETURN_NOT_OK(cur.ExpectPunct(";"));
      reified.roles.push_back(std::move(role));
    } else if (cur.TryConsumeIdent("attr")) {
      CmAttribute attr;
      SEMAP_ASSIGN_OR_RETURN(attr.name, cur.ExpectIdentifier());
      if (cur.TryConsumeIdent("key")) attr.is_key = true;
      SEMAP_RETURN_NOT_OK(cur.ExpectPunct(";"));
      reified.attributes.push_back(std::move(attr));
    } else {
      return cur.ErrorHere("expected 'role' or 'attr' in reified block");
    }
  }
  return reified;
}

// --- Recovery-mode assembly ---------------------------------------------

template <typename T>
struct Spanned {
  T value;
  SourceSpan span;
};

/// Everything the recovery-mode statement loop collected; assembled into a
/// ConceptualModel afterwards so that forward references work and broken
/// pieces can be dropped with precise diagnostics.
struct ParsedCm {
  std::string name;
  std::vector<Spanned<CmClass>> classes;
  std::vector<Spanned<CmRelationship>> relationships;
  std::vector<Spanned<IsaLink>> isa_links;
  std::vector<Spanned<DisjointnessConstraint>> disjointness;
  std::vector<Spanned<CoveringConstraint>> coverings;
  std::vector<Spanned<ReifiedRelationship>> reified;
};

void SyncToStatement(TokenCursor& cur) {
  cur.SynchronizeTo({"class", "rel", "isa", "disjoint", "covers", "reified"});
}

ParsedCm CollectStatements(TokenCursor& cur, DiagnosticSink& sink) {
  ParsedCm out;
  if (cur.TryConsumeIdent("cm")) {
    auto name = cur.ExpectIdentifier();
    Status header = name.ok() ? cur.ExpectPunct(";") : name.status();
    if (header.ok()) {
      out.name = std::move(*name);
    } else {
      cur.DiagnoseHere(sink, header);
      SyncToStatement(cur);
    }
  }
  while (!cur.AtEnd()) {
    SourceSpan span = cur.SpanHere();
    Status failed = Status::OK();
    if (cur.TryConsumeIdent("class")) {
      span = cur.SpanHere();
      auto cls = ParseClassStmt(cur);
      if (cls.ok()) out.classes.push_back({std::move(*cls), span});
      failed = cls.status();
    } else if (cur.TryConsumeIdent("rel")) {
      span = cur.SpanHere();
      auto rel = ParseRelationshipStmt(cur, &sink);
      if (rel.ok()) out.relationships.push_back({std::move(*rel), span});
      failed = rel.status();
    } else if (cur.TryConsumeIdent("isa")) {
      span = cur.SpanHere();
      auto link = ParseIsaStmt(cur);
      if (link.ok()) out.isa_links.push_back({std::move(*link), span});
      failed = link.status();
    } else if (cur.TryConsumeIdent("disjoint")) {
      span = cur.SpanHere();
      auto constraint = ParseDisjointStmt(cur);
      if (constraint.ok()) {
        out.disjointness.push_back({std::move(*constraint), span});
      }
      failed = constraint.status();
    } else if (cur.TryConsumeIdent("covers")) {
      span = cur.SpanHere();
      auto constraint = ParseCoversStmt(cur);
      if (constraint.ok()) out.coverings.push_back({std::move(*constraint), span});
      failed = constraint.status();
    } else if (cur.TryConsumeIdent("reified")) {
      span = cur.SpanHere();
      auto reified = ParseReifiedStmt(cur, &sink);
      if (reified.ok()) out.reified.push_back({std::move(*reified), span});
      failed = reified.status();
    } else {
      failed = cur.ErrorHere(
          "expected 'class', 'rel', 'isa', 'disjoint', 'covers' or 'reified'");
    }
    if (!failed.ok()) {
      cur.DiagnoseHere(sink, failed);
      SyncToStatement(cur);
    }
  }
  return out;
}

/// Drop reified relationships that are structurally broken (< 2 distinct
/// roles) or whose roles reference classes that do not survive, iterating
/// because dropping one reified class can invalidate another's role.
void FilterReified(ParsedCm& parsed, const std::set<std::string>& class_names,
                   DiagnosticSink& sink) {
  auto structurally_ok = [&sink](const Spanned<ReifiedRelationship>& r) {
    std::set<std::string> role_names;
    for (const Role& role : r.value.roles) role_names.insert(role.name);
    if (role_names.size() != r.value.roles.size()) {
      sink.Error(diag::kDuplicateDefinition,
                 "reified relationship '" + r.value.class_name +
                     "' has duplicate role names",
                 r.span, "the reified declaration was dropped");
      return false;
    }
    if (role_names.size() < 2) {
      sink.Error(diag::kFewRoles,
                 "reified relationship '" + r.value.class_name +
                     "' needs at least two distinct roles",
                 r.span, "the reified declaration was dropped");
      return false;
    }
    return true;
  };
  std::erase_if(parsed.reified, [&](const Spanned<ReifiedRelationship>& r) {
    return !structurally_ok(r);
  });

  bool changed = true;
  while (changed) {
    changed = false;
    std::set<std::string> known = class_names;
    for (const Spanned<ReifiedRelationship>& r : parsed.reified) {
      known.insert(r.value.class_name);
    }
    std::erase_if(parsed.reified, [&](const Spanned<ReifiedRelationship>& r) {
      for (const Role& role : r.value.roles) {
        if (known.count(role.filler_class) == 0) {
          sink.Error(diag::kUnknownClass,
                     "reified '" + r.value.class_name + "' role '" +
                         role.name + "' references unknown class '" +
                         role.filler_class + "'",
                     r.span, "the reified declaration was dropped");
          changed = true;
          return true;
        }
      }
      return false;
    });
  }
}

Result<ConceptualModel> ParseCmStrict(std::string_view input) {
  SEMAP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  TokenCursor cur(std::move(tokens));
  ConceptualModel model;
  if (cur.TryConsumeIdent("cm")) {
    SEMAP_ASSIGN_OR_RETURN(std::string name, cur.ExpectIdentifier());
    model.set_name(std::move(name));
    SEMAP_RETURN_NOT_OK(cur.ExpectPunct(";"));
  }
  while (!cur.AtEnd()) {
    if (cur.TryConsumeIdent("class")) {
      SEMAP_ASSIGN_OR_RETURN(CmClass cls, ParseClassStmt(cur));
      SEMAP_RETURN_NOT_OK(model.AddClass(std::move(cls)));
    } else if (cur.TryConsumeIdent("rel")) {
      SEMAP_ASSIGN_OR_RETURN(CmRelationship rel,
                             ParseRelationshipStmt(cur, nullptr));
      SEMAP_RETURN_NOT_OK(model.AddRelationship(std::move(rel)));
    } else if (cur.TryConsumeIdent("isa")) {
      SEMAP_ASSIGN_OR_RETURN(IsaLink link, ParseIsaStmt(cur));
      SEMAP_RETURN_NOT_OK(model.AddIsa(std::move(link)));
    } else if (cur.TryConsumeIdent("disjoint")) {
      SEMAP_ASSIGN_OR_RETURN(DisjointnessConstraint constraint,
                             ParseDisjointStmt(cur));
      SEMAP_RETURN_NOT_OK(model.AddDisjointness(std::move(constraint)));
    } else if (cur.TryConsumeIdent("covers")) {
      SEMAP_ASSIGN_OR_RETURN(CoveringConstraint constraint,
                             ParseCoversStmt(cur));
      SEMAP_RETURN_NOT_OK(model.AddCovering(std::move(constraint)));
    } else if (cur.TryConsumeIdent("reified")) {
      SEMAP_ASSIGN_OR_RETURN(ReifiedRelationship reified,
                             ParseReifiedStmt(cur, nullptr));
      SEMAP_RETURN_NOT_OK(model.AddReified(std::move(reified)));
    } else {
      return cur.ErrorHere(
          "expected 'class', 'rel', 'isa', 'disjoint', 'covers' or 'reified'");
    }
  }
  SEMAP_RETURN_NOT_OK(model.Validate());
  return model;
}

ConceptualModel ParseCmLenientImpl(std::string_view input,
                                   DiagnosticSink& sink) {
  TokenCursor cur(TokenizeLenient(input, sink));
  ParsedCm parsed = CollectStatements(cur, sink);

  ConceptualModel model;
  model.set_name(parsed.name);

  // Classes first: relationships and constraints may reference classes
  // declared later in the file.
  for (Spanned<CmClass>& cls : parsed.classes) {
    std::string name = cls.value.name;
    Status added = model.AddClass(std::move(cls.value));
    if (!added.ok()) {
      const char* code = model.FindClass(name) != nullptr
                             ? diag::kDuplicateDefinition
                             : diag::kDuplicateAttribute;
      sink.Error(code, added.message(), cls.span,
                 "the class declaration was dropped");
    }
  }

  std::set<std::string> class_names;
  for (const CmClass& cls : model.classes()) class_names.insert(cls.name);
  FilterReified(parsed, class_names, sink);
  for (Spanned<ReifiedRelationship>& r : parsed.reified) {
    Status added = model.AddReified(std::move(r.value));
    if (!added.ok()) {
      sink.Error(diag::kDuplicateDefinition, added.message(), r.span,
                 "the reified declaration was dropped");
    }
  }

  auto known = [&model](const std::string& name) {
    return model.FindClass(name) != nullptr ||
           model.FindReified(name) != nullptr;
  };
  auto report_unknown = [&sink](const std::string& what,
                                const std::string& name, SourceSpan span) {
    sink.Error(diag::kUnknownClass,
               what + " references unknown class '" + name + "'", span,
               "declare the class or drop the reference");
  };

  for (Spanned<CmRelationship>& rel : parsed.relationships) {
    if (!known(rel.value.from_class)) {
      report_unknown("relationship '" + rel.value.name + "'",
                     rel.value.from_class, rel.span);
      continue;
    }
    if (!known(rel.value.to_class)) {
      report_unknown("relationship '" + rel.value.name + "'",
                     rel.value.to_class, rel.span);
      continue;
    }
    Status added = model.AddRelationship(std::move(rel.value));
    if (!added.ok()) {
      sink.Error(diag::kDuplicateDefinition, added.message(), rel.span,
                 "the relationship was dropped");
    }
  }

  for (Spanned<IsaLink>& link : parsed.isa_links) {
    if (!known(link.value.sub) || !known(link.value.super)) {
      report_unknown("ISA link",
                     known(link.value.sub) ? link.value.super : link.value.sub,
                     link.span);
      continue;
    }
    // Adding sub -> super closes a cycle iff super already reaches sub.
    if (model.IsSubclassOf(link.value.super, link.value.sub)) {
      sink.Error(diag::kIsaCycle,
                 "ISA " + link.value.sub + " -> " + link.value.super +
                     " would close an ISA cycle",
                 link.span, "the ISA link was dropped");
      continue;
    }
    Status added = model.AddIsa(std::move(link.value));
    if (!added.ok()) {
      sink.Error(diag::kDuplicateDefinition, added.message(), link.span,
                 "the duplicate ISA link was dropped");
    }
  }

  for (Spanned<DisjointnessConstraint>& d : parsed.disjointness) {
    bool ok = true;
    for (const std::string& cls : d.value.classes) {
      if (!known(cls)) {
        report_unknown("disjointness constraint", cls, d.span);
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    Status added = model.AddDisjointness(std::move(d.value));
    if (!added.ok()) {
      sink.Error(diag::kUnexpectedToken, added.message(), d.span,
                 "the disjointness constraint was dropped");
    }
  }

  for (Spanned<CoveringConstraint>& cov : parsed.coverings) {
    bool ok = known(cov.value.super);
    if (!ok) report_unknown("covering constraint", cov.value.super, cov.span);
    for (const std::string& cls : cov.value.subs) {
      if (!ok) break;
      if (!known(cls)) {
        report_unknown("covering constraint", cls, cov.span);
        ok = false;
      }
    }
    if (!ok) continue;
    Status added = model.AddCovering(std::move(cov.value));
    if (!added.ok()) {
      sink.Error(diag::kUnexpectedToken, added.message(), cov.span,
                 "the covering constraint was dropped");
    }
  }

  // The filters above re-establish every invariant Validate() checks; a
  // failure here is a bug worth surfacing as a diagnostic, not a crash.
  Status valid = model.Validate();
  if (!valid.ok()) {
    sink.Error(diag::kUnknownClass,
               "recovered model failed validation: " + valid.message(), {});
  }
  return model;
}

}  // namespace

Result<ConceptualModel> ParseCm(std::string_view input,
                                const ParseOptions& options) {
  if (options.mode == ParseMode::kLenient) {
    if (options.sink == nullptr) {
      return Status::InvalidArgument(
          "lenient parse requires ParseOptions::sink");
    }
    return ParseCmLenientImpl(input, *options.sink);
  }
  return ParseCmStrict(input);
}

Result<ConceptualModel> ParseCm(std::string_view input) {
  return ParseCm(input, {});
}

ConceptualModel ParseCmLenient(std::string_view input, DiagnosticSink& sink) {
  return *ParseCm(input, {ParseMode::kLenient, &sink});
}

}  // namespace semap::cm
