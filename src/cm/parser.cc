#include "cm/parser.h"

#include "util/lexer.h"

namespace semap::cm {

namespace {

// cardinality := INT '..' (INT | '*')
Result<Cardinality> ParseCardinality(TokenCursor& cur) {
  Cardinality card;
  SEMAP_ASSIGN_OR_RETURN(long min, cur.ExpectInteger());
  card.min = static_cast<int>(min);
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct(".."));
  if (cur.TryConsumePunct("*")) {
    card.max = kMany;
  } else {
    SEMAP_ASSIGN_OR_RETURN(long max, cur.ExpectInteger());
    card.max = static_cast<int>(max);
  }
  if (card.max != kMany && card.max < card.min) {
    return cur.ErrorHere("cardinality max must be >= min");
  }
  return card;
}

// attribute entries inside '{ ... }': name ['key'] ';'
Result<std::vector<CmAttribute>> ParseAttributeBlock(TokenCursor& cur) {
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct("{"));
  std::vector<CmAttribute> attrs;
  while (!cur.TryConsumePunct("}")) {
    CmAttribute attr;
    SEMAP_ASSIGN_OR_RETURN(attr.name, cur.ExpectIdentifier());
    if (cur.TryConsumeIdent("key")) attr.is_key = true;
    SEMAP_RETURN_NOT_OK(cur.ExpectPunct(";"));
    attrs.push_back(std::move(attr));
  }
  return attrs;
}

Status ParseClass(TokenCursor& cur, ConceptualModel& model) {
  CmClass cls;
  SEMAP_ASSIGN_OR_RETURN(cls.name, cur.ExpectIdentifier());
  if (cur.Peek().IsPunct("{")) {
    SEMAP_ASSIGN_OR_RETURN(cls.attributes, ParseAttributeBlock(cur));
  } else {
    SEMAP_RETURN_NOT_OK(cur.ExpectPunct(";"));
  }
  return model.AddClass(std::move(cls));
}

Status ParseRelationship(TokenCursor& cur, ConceptualModel& model) {
  CmRelationship rel;
  if (cur.TryConsumeIdent("partof")) {
    rel.semantic_type = SemanticType::kPartOf;
  }
  SEMAP_ASSIGN_OR_RETURN(rel.name, cur.ExpectIdentifier());
  SEMAP_ASSIGN_OR_RETURN(rel.from_class, cur.ExpectIdentifier());
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct("--"));
  SEMAP_ASSIGN_OR_RETURN(rel.to_class, cur.ExpectIdentifier());
  if (cur.TryConsumeIdent("fwd")) {
    SEMAP_ASSIGN_OR_RETURN(rel.forward, ParseCardinality(cur));
  }
  if (cur.TryConsumeIdent("inv")) {
    SEMAP_ASSIGN_OR_RETURN(rel.inverse, ParseCardinality(cur));
  }
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct(";"));
  return model.AddRelationship(std::move(rel));
}

Status ParseIsa(TokenCursor& cur, ConceptualModel& model) {
  IsaLink link;
  SEMAP_ASSIGN_OR_RETURN(link.sub, cur.ExpectIdentifier());
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct("->"));
  SEMAP_ASSIGN_OR_RETURN(link.super, cur.ExpectIdentifier());
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct(";"));
  return model.AddIsa(std::move(link));
}

Status ParseDisjoint(TokenCursor& cur, ConceptualModel& model) {
  DisjointnessConstraint constraint;
  do {
    SEMAP_ASSIGN_OR_RETURN(std::string cls, cur.ExpectIdentifier());
    constraint.classes.push_back(std::move(cls));
  } while (cur.TryConsumePunct(","));
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct(";"));
  return model.AddDisjointness(std::move(constraint));
}

Status ParseCovers(TokenCursor& cur, ConceptualModel& model) {
  CoveringConstraint constraint;
  SEMAP_ASSIGN_OR_RETURN(constraint.super, cur.ExpectIdentifier());
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct("="));
  do {
    SEMAP_ASSIGN_OR_RETURN(std::string cls, cur.ExpectIdentifier());
    constraint.subs.push_back(std::move(cls));
  } while (cur.TryConsumePunct(","));
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct(";"));
  return model.AddCovering(std::move(constraint));
}

Status ParseReified(TokenCursor& cur, ConceptualModel& model) {
  ReifiedRelationship reified;
  if (cur.TryConsumeIdent("partof")) {
    reified.semantic_type = SemanticType::kPartOf;
  }
  SEMAP_ASSIGN_OR_RETURN(reified.class_name, cur.ExpectIdentifier());
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct("{"));
  while (!cur.TryConsumePunct("}")) {
    if (cur.TryConsumeIdent("role")) {
      Role role;
      SEMAP_ASSIGN_OR_RETURN(role.name, cur.ExpectIdentifier());
      SEMAP_RETURN_NOT_OK(cur.ExpectPunct("->"));
      SEMAP_ASSIGN_OR_RETURN(role.filler_class, cur.ExpectIdentifier());
      if (cur.TryConsumeIdent("part")) {
        SEMAP_ASSIGN_OR_RETURN(role.participation, ParseCardinality(cur));
      }
      SEMAP_RETURN_NOT_OK(cur.ExpectPunct(";"));
      reified.roles.push_back(std::move(role));
    } else if (cur.TryConsumeIdent("attr")) {
      CmAttribute attr;
      SEMAP_ASSIGN_OR_RETURN(attr.name, cur.ExpectIdentifier());
      if (cur.TryConsumeIdent("key")) attr.is_key = true;
      SEMAP_RETURN_NOT_OK(cur.ExpectPunct(";"));
      reified.attributes.push_back(std::move(attr));
    } else {
      return cur.ErrorHere("expected 'role' or 'attr' in reified block");
    }
  }
  return model.AddReified(std::move(reified));
}

}  // namespace

Result<ConceptualModel> ParseCm(std::string_view input) {
  SEMAP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  TokenCursor cur(std::move(tokens));
  ConceptualModel model;
  if (cur.TryConsumeIdent("cm")) {
    SEMAP_ASSIGN_OR_RETURN(std::string name, cur.ExpectIdentifier());
    model.set_name(std::move(name));
    SEMAP_RETURN_NOT_OK(cur.ExpectPunct(";"));
  }
  while (!cur.AtEnd()) {
    if (cur.TryConsumeIdent("class")) {
      SEMAP_RETURN_NOT_OK(ParseClass(cur, model));
    } else if (cur.TryConsumeIdent("rel")) {
      SEMAP_RETURN_NOT_OK(ParseRelationship(cur, model));
    } else if (cur.TryConsumeIdent("isa")) {
      SEMAP_RETURN_NOT_OK(ParseIsa(cur, model));
    } else if (cur.TryConsumeIdent("disjoint")) {
      SEMAP_RETURN_NOT_OK(ParseDisjoint(cur, model));
    } else if (cur.TryConsumeIdent("covers")) {
      SEMAP_RETURN_NOT_OK(ParseCovers(cur, model));
    } else if (cur.TryConsumeIdent("reified")) {
      SEMAP_RETURN_NOT_OK(ParseReified(cur, model));
    } else {
      return cur.ErrorHere(
          "expected 'class', 'rel', 'isa', 'disjoint', 'covers' or 'reified'");
    }
  }
  SEMAP_RETURN_NOT_OK(model.Validate());
  return model;
}

}  // namespace semap::cm
