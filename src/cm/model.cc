#include "cm/model.h"

#include <algorithm>
#include <set>

#include "util/string_util.h"

namespace semap::cm {

std::string Cardinality::ToString() const {
  std::string out = std::to_string(min);
  out += "..";
  out += max == kMany ? "*" : std::to_string(max);
  return out;
}

std::string ToString(SemanticType type) {
  switch (type) {
    case SemanticType::kNone:
      return "none";
    case SemanticType::kPartOf:
      return "partOf";
  }
  return "unknown";
}

const CmAttribute* CmClass::FindAttribute(const std::string& attr) const {
  for (const CmAttribute& a : attributes) {
    if (a.name == attr) return &a;
  }
  return nullptr;
}

std::vector<std::string> CmClass::KeyAttributes() const {
  std::vector<std::string> out;
  for (const CmAttribute& a : attributes) {
    if (a.is_key) out.push_back(a.name);
  }
  return out;
}

std::string CmRelationship::ToString() const {
  std::string out = "rel ";
  if (semantic_type != SemanticType::kNone) {
    out += cm::ToString(semantic_type) + " ";
  }
  out += name + " " + from_class + " -- " + to_class + " fwd " +
         forward.ToString() + " inv " + inverse.ToString();
  return out;
}

Status ConceptualModel::AddClass(CmClass cls) {
  if (cls.name.empty()) {
    return Status::InvalidArgument("class name must be non-empty");
  }
  if (class_index_.count(cls.name) > 0 || reified_index_.count(cls.name) > 0) {
    return Status::AlreadyExists("duplicate class '" + cls.name + "'");
  }
  std::set<std::string> seen;
  for (const CmAttribute& a : cls.attributes) {
    if (!seen.insert(a.name).second) {
      return Status::InvalidArgument("duplicate attribute '" + a.name +
                                     "' in class '" + cls.name + "'");
    }
  }
  class_index_[cls.name] = classes_.size();
  classes_.push_back(std::move(cls));
  return Status::OK();
}

Status ConceptualModel::AddRelationship(CmRelationship rel) {
  if (rel.name.empty()) {
    return Status::InvalidArgument("relationship name must be non-empty");
  }
  for (const CmRelationship& existing : relationships_) {
    if (existing.name == rel.name) {
      return Status::AlreadyExists("duplicate relationship '" + rel.name + "'");
    }
  }
  relationships_.push_back(std::move(rel));
  return Status::OK();
}

Status ConceptualModel::AddIsa(IsaLink link) {
  for (const IsaLink& existing : isa_links_) {
    if (existing == link) {
      return Status::AlreadyExists("duplicate ISA " + link.sub + " -> " +
                                   link.super);
    }
  }
  isa_links_.push_back(std::move(link));
  return Status::OK();
}

Status ConceptualModel::AddDisjointness(DisjointnessConstraint constraint) {
  if (constraint.classes.size() < 2) {
    return Status::InvalidArgument(
        "disjointness constraint needs at least two classes");
  }
  disjointness_.push_back(std::move(constraint));
  return Status::OK();
}

Status ConceptualModel::AddCovering(CoveringConstraint constraint) {
  if (constraint.subs.empty()) {
    return Status::InvalidArgument("covering constraint needs subclasses");
  }
  coverings_.push_back(std::move(constraint));
  return Status::OK();
}

Status ConceptualModel::AddReified(ReifiedRelationship reified) {
  if (reified.class_name.empty()) {
    return Status::InvalidArgument("reified relationship needs a class name");
  }
  if (class_index_.count(reified.class_name) > 0 ||
      reified_index_.count(reified.class_name) > 0) {
    return Status::AlreadyExists("duplicate class '" + reified.class_name +
                                 "'");
  }
  if (reified.roles.size() < 2) {
    return Status::InvalidArgument("reified relationship '" +
                                   reified.class_name +
                                   "' needs at least two roles");
  }
  reified_index_[reified.class_name] = reified_.size();
  reified_.push_back(std::move(reified));
  return Status::OK();
}

const CmClass* ConceptualModel::FindClass(const std::string& name) const {
  auto it = class_index_.find(name);
  if (it == class_index_.end()) return nullptr;
  return &classes_[it->second];
}

const CmRelationship* ConceptualModel::FindRelationship(
    const std::string& name) const {
  for (const CmRelationship& rel : relationships_) {
    if (rel.name == name) return &rel;
  }
  return nullptr;
}

const ReifiedRelationship* ConceptualModel::FindReified(
    const std::string& class_name) const {
  auto it = reified_index_.find(class_name);
  if (it == reified_index_.end()) return nullptr;
  return &reified_[it->second];
}

std::vector<std::string> ConceptualModel::SuperclassesOf(
    const std::string& cls) const {
  std::vector<std::string> out;
  for (const IsaLink& link : isa_links_) {
    if (link.sub == cls) out.push_back(link.super);
  }
  return out;
}

bool ConceptualModel::IsSubclassOf(const std::string& sub,
                                   const std::string& super) const {
  if (sub == super) return true;
  // BFS up the ISA hierarchy; cycles are guarded by the visited set.
  std::vector<std::string> frontier = {sub};
  std::set<std::string> visited = {sub};
  while (!frontier.empty()) {
    std::string cur = frontier.back();
    frontier.pop_back();
    for (const std::string& parent : SuperclassesOf(cur)) {
      if (parent == super) return true;
      if (visited.insert(parent).second) frontier.push_back(parent);
    }
  }
  return false;
}

bool ConceptualModel::AreDisjoint(const std::string& a,
                                  const std::string& b) const {
  // Two classes are disjoint if some declared disjointness set contains an
  // ancestor (or self) of each of them, distinct from one another.
  for (const DisjointnessConstraint& d : disjointness_) {
    for (size_t i = 0; i < d.classes.size(); ++i) {
      for (size_t j = 0; j < d.classes.size(); ++j) {
        if (i == j) continue;
        if (IsSubclassOf(a, d.classes[i]) && IsSubclassOf(b, d.classes[j])) {
          return true;
        }
      }
    }
  }
  return false;
}

Status ConceptualModel::Validate() const {
  auto known = [&](const std::string& name) {
    return class_index_.count(name) > 0 || reified_index_.count(name) > 0;
  };
  for (const CmRelationship& rel : relationships_) {
    if (!known(rel.from_class)) {
      return Status::NotFound("relationship '" + rel.name +
                              "' references unknown class '" + rel.from_class +
                              "'");
    }
    if (!known(rel.to_class)) {
      return Status::NotFound("relationship '" + rel.name +
                              "' references unknown class '" + rel.to_class +
                              "'");
    }
  }
  for (const IsaLink& link : isa_links_) {
    if (!known(link.sub) || !known(link.super)) {
      return Status::NotFound("ISA references unknown class: " + link.sub +
                              " -> " + link.super);
    }
  }
  for (const DisjointnessConstraint& d : disjointness_) {
    for (const std::string& c : d.classes) {
      if (!known(c)) {
        return Status::NotFound("disjointness references unknown class '" + c +
                                "'");
      }
    }
  }
  for (const CoveringConstraint& cov : coverings_) {
    if (!known(cov.super)) {
      return Status::NotFound("covering references unknown class '" +
                              cov.super + "'");
    }
    for (const std::string& c : cov.subs) {
      if (!known(c)) {
        return Status::NotFound("covering references unknown class '" + c +
                                "'");
      }
    }
  }
  for (const ReifiedRelationship& r : reified_) {
    std::set<std::string> role_names;
    for (const Role& role : r.roles) {
      if (!known(role.filler_class)) {
        return Status::NotFound("reified '" + r.class_name +
                                "' role '" + role.name +
                                "' references unknown class '" +
                                role.filler_class + "'");
      }
      if (!role_names.insert(role.name).second) {
        return Status::InvalidArgument("reified '" + r.class_name +
                                       "' has duplicate role '" + role.name +
                                       "'");
      }
    }
  }
  return Status::OK();
}

std::string ConceptualModel::ToString() const {
  std::string out = "cm " + name_ + ";\n";
  for (const CmClass& c : classes_) {
    out += "  class " + c.name + " {";
    std::vector<std::string> attrs;
    for (const CmAttribute& a : c.attributes) {
      attrs.push_back(a.is_key ? a.name + " key" : a.name);
    }
    out += Join(attrs, "; ") + "}\n";
  }
  for (const CmRelationship& r : relationships_) {
    out += "  " + r.ToString() + ";\n";
  }
  for (const IsaLink& link : isa_links_) {
    out += "  isa " + link.sub + " -> " + link.super + ";\n";
  }
  for (const ReifiedRelationship& r : reified_) {
    out += "  reified " + r.class_name + " (" +
           std::to_string(r.roles.size()) + " roles);\n";
  }
  return out;
}

}  // namespace semap::cm
