// Text format for conceptual models.
//
//   cm BookstoreSource;
//   class Person { pname key; }
//   class Book { bid key; }
//   rel writes Person -- Book fwd 0..* inv 1..*;
//   rel partof chairOf Department -- Faculty fwd 0..1 inv 0..1;
//   isa Engineer -> Employee;
//   disjoint Engineer, Secretary;
//   covers Employee = Engineer, Programmer;
//   reified Sell {
//     role seller -> Store part 0..*;
//     role buyer -> Person part 0..*;
//     role sold -> Product part 0..*;
//     attr date;
//   }
//
// Cardinalities read `min..max` with `*` for unbounded; `fwd` constrains
// how many right-hand objects relate to one left-hand object, `inv` the
// converse; both default to 0..*. A `partof` keyword after `rel`/`reified`
// tags the relationship's semantic type. A role's `part` clause constrains
// how many relationship instances one filler participates in (0..1 / 1..1
// make the role inverse functional).
#ifndef SEMAP_CM_PARSER_H_
#define SEMAP_CM_PARSER_H_

#include <string_view>

#include "cm/model.h"
#include "util/diag.h"
#include "util/result.h"

namespace semap::cm {

/// \brief Parse the CM text format described above — the canonical entry
/// point. The returned model has been Validate()d. kStrict fails fast on
/// the first problem; kLenient (sink required) collects coded
/// diagnostics, synchronizes at statement keywords, and returns the
/// well-formed subset of the model — malformed statements, duplicate
/// definitions, references to unknown classes, and ISA links that would
/// close a cycle are dropped (each with a diagnostic) — failing only when
/// the options are themselves invalid (kLenient without a sink).
Result<ConceptualModel> ParseCm(std::string_view input,
                                const ParseOptions& options);

/// Historical names, delegating to the canonical entry point.
Result<ConceptualModel> ParseCm(std::string_view input);
ConceptualModel ParseCmLenient(std::string_view input, DiagnosticSink& sink);

}  // namespace semap::cm

#endif  // SEMAP_CM_PARSER_H_
