#include "cm/graph.h"

#include <algorithm>

namespace semap::cm {

int CmGraph::AddNode(GraphNode node) {
  node.id = static_cast<int>(nodes_.size());
  nodes_.push_back(node);
  out_edges_.emplace_back();
  return node.id;
}

int CmGraph::AddEdgePair(GraphEdge forward, GraphEdge inverse) {
  forward.id = static_cast<int>(edges_.size());
  inverse.id = forward.id + 1;
  forward.partner = inverse.id;
  inverse.partner = forward.id;
  out_edges_[static_cast<size_t>(forward.from)].push_back(forward.id);
  out_edges_[static_cast<size_t>(inverse.from)].push_back(inverse.id);
  edges_.push_back(std::move(forward));
  edges_.push_back(std::move(inverse));
  return static_cast<int>(edges_.size()) - 2;
}

Result<CmGraph> CmGraph::Build(const ConceptualModel& model) {
  SEMAP_RETURN_NOT_OK(model.Validate());
  CmGraph g;
  g.model_ = model;

  auto add_attribute_nodes = [&](const std::string& owner,
                                 const std::vector<CmAttribute>& attrs) {
    int owner_id = g.class_node_index_.at(owner);
    for (const CmAttribute& attr : attrs) {
      GraphNode an;
      an.kind = NodeKind::kAttribute;
      an.name = attr.name;
      an.owner_class = owner;
      an.is_key_attribute = attr.is_key;
      int attr_id = g.AddNode(an);
      g.attribute_node_index_[{owner, attr.name}] = attr_id;
      GraphEdge e;
      e.id = static_cast<int>(g.edges_.size());
      e.from = owner_id;
      e.to = attr_id;
      e.name = attr.name;
      e.kind = EdgeKind::kAttribute;
      e.card = Cardinality::ExactlyOne();  // simple single-valued attributes
      g.out_edges_[static_cast<size_t>(owner_id)].push_back(e.id);
      g.edges_.push_back(std::move(e));
    }
  };

  // Class nodes (plain classes first, then reified-relationship classes).
  for (const CmClass& cls : model.classes()) {
    GraphNode n;
    n.kind = NodeKind::kClass;
    n.name = cls.name;
    g.class_node_index_[cls.name] = g.AddNode(n);
  }
  for (const ReifiedRelationship& r : model.reified()) {
    GraphNode n;
    n.kind = NodeKind::kClass;
    n.name = r.class_name;
    n.reified = true;
    n.arity = static_cast<int>(r.roles.size());
    n.semantic_type = r.semantic_type;
    g.class_node_index_[r.class_name] = g.AddNode(n);
  }

  // Attribute nodes.
  for (const CmClass& cls : model.classes()) {
    add_attribute_nodes(cls.name, cls.attributes);
  }
  for (const ReifiedRelationship& r : model.reified()) {
    add_attribute_nodes(r.class_name, r.attributes);
  }

  auto add_role_pair = [&](int reified_node, int filler_node,
                           const std::string& role_name,
                           Cardinality participation,
                           SemanticType semantic_type) {
    GraphEdge fwd;
    fwd.from = reified_node;
    fwd.to = filler_node;
    fwd.name = role_name;
    fwd.kind = EdgeKind::kRole;
    fwd.card = Cardinality::ExactlyOne();  // each instance has one filler
    fwd.semantic_type = semantic_type;
    GraphEdge inv = fwd;
    inv.from = filler_node;
    inv.to = reified_node;
    inv.inverted = true;
    inv.card = participation;
    g.AddEdgePair(std::move(fwd), std::move(inv));
  };

  // Binary relationships; many-to-many ones are reified here (§3.3).
  for (const CmRelationship& rel : model.relationships()) {
    int from = g.class_node_index_.at(rel.from_class);
    int to = g.class_node_index_.at(rel.to_class);
    if (rel.IsManyToMany()) {
      GraphNode n;
      n.kind = NodeKind::kClass;
      n.name = rel.name;
      n.reified = true;
      n.auto_reified = true;
      n.arity = 2;
      n.semantic_type = rel.semantic_type;
      int rnode = g.AddNode(n);
      g.class_node_index_[rel.name + "$reified"] = rnode;
      g.auto_reified_index_[rel.name] = rnode;
      // A from-object appears in as many instances as the to-objects it
      // relates to, and vice versa.
      add_role_pair(rnode, from, "src", rel.forward, rel.semantic_type);
      add_role_pair(rnode, to, "tgt", rel.inverse, rel.semantic_type);
    } else {
      GraphEdge fwd;
      fwd.from = from;
      fwd.to = to;
      fwd.name = rel.name;
      fwd.kind = EdgeKind::kRelationship;
      fwd.card = rel.forward;
      fwd.semantic_type = rel.semantic_type;
      GraphEdge inv = fwd;
      inv.from = to;
      inv.to = from;
      inv.inverted = true;
      inv.card = rel.inverse;
      g.AddEdgePair(std::move(fwd), std::move(inv));
    }
  }

  // ISA edges: sub -> super 1..1, inverse 0..1 (§2).
  for (const IsaLink& link : model.isa_links()) {
    int sub = g.class_node_index_.at(link.sub);
    int super = g.class_node_index_.at(link.super);
    GraphEdge fwd;
    fwd.from = sub;
    fwd.to = super;
    fwd.name = "isa";
    fwd.kind = EdgeKind::kIsa;
    fwd.card = Cardinality::ExactlyOne();
    GraphEdge inv = fwd;
    inv.from = super;
    inv.to = sub;
    inv.inverted = true;
    inv.card = Cardinality::AtMostOne();
    g.AddEdgePair(std::move(fwd), std::move(inv));
  }

  // Explicit reified relationships.
  for (const ReifiedRelationship& r : model.reified()) {
    int rnode = g.class_node_index_.at(r.class_name);
    for (const Role& role : r.roles) {
      int filler = g.class_node_index_.at(role.filler_class);
      add_role_pair(rnode, filler, role.name, role.participation,
                    r.semantic_type);
    }
  }

  return g;
}

int CmGraph::FindClassNode(const std::string& name) const {
  auto it = class_node_index_.find(name);
  if (it == class_node_index_.end()) return -1;
  return it->second;
}

int CmGraph::FindAttributeNode(const std::string& cls,
                               const std::string& attr) const {
  auto it = attribute_node_index_.find({cls, attr});
  if (it == attribute_node_index_.end()) return -1;
  return it->second;
}

std::vector<int> CmGraph::ClassNodes() const {
  std::vector<int> out;
  for (const GraphNode& n : nodes_) {
    if (n.IsClass()) out.push_back(n.id);
  }
  return out;
}

int CmGraph::FindEdge(int from_node, const std::string& name,
                      bool inverted) const {
  for (int eid : OutEdges(from_node)) {
    const GraphEdge& e = edge(eid);
    if (e.kind == EdgeKind::kAttribute) continue;
    if (e.name == name && e.inverted == inverted) return eid;
  }
  return -1;
}

int CmGraph::FindAutoReifiedNode(const std::string& rel_name) const {
  auto it = auto_reified_index_.find(rel_name);
  if (it == auto_reified_index_.end()) return -1;
  return it->second;
}

bool CmGraph::AreDisjoint(int class_node_a, int class_node_b) const {
  const GraphNode& a = node(class_node_a);
  const GraphNode& b = node(class_node_b);
  if (!a.IsClass() || !b.IsClass()) return false;
  return model_.AreDisjoint(a.name, b.name);
}

Cardinality CmGraph::ComposePath(const std::vector<const GraphEdge*>& path) {
  Cardinality out = Cardinality::ExactlyOne();
  for (const GraphEdge* e : path) {
    // max: functional ∘ functional stays functional; otherwise many.
    if (out.max == 1 && e->card.max == 1) {
      out.max = 1;
    } else {
      out.max = kMany;
    }
    // min: total ∘ total stays total; any optional step makes it optional.
    out.min = (out.min >= 1 && e->card.min >= 1) ? 1 : 0;
  }
  return out;
}

std::string CmGraph::ToString() const {
  std::string out = "graph over cm " + model_.name() + "\n";
  for (const GraphNode& n : nodes_) {
    if (!n.IsClass()) continue;
    out += "  [" + std::to_string(n.id) + "] " + n.name +
           (n.reified ? "*" : "") + "\n";
    for (int eid : OutEdges(n.id)) {
      const GraphEdge& e = edge(eid);
      if (e.kind == EdgeKind::kAttribute) {
        out += "    ." + e.name + "\n";
      } else {
        out += "    --" + e.Label() + " (" + e.card.ToString() + ")--> " +
               node(e.to).name + "\n";
      }
    }
  }
  return out;
}

}  // namespace semap::cm
