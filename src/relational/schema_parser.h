// Text format for relational schemas.
//
//   schema source;
//   table person(pname) key(pname);
//   table writes(pname, bid) key(pname, bid)
//     fk r1 (pname) -> person(pname)
//     fk (bid) -> book(bid);
//
// Each `table` statement declares columns, an optional `key(...)` clause,
// and zero or more `fk [label] (cols) -> table(cols)` clauses, terminated
// by ';'. Comments start with '#' or '//'.
#ifndef SEMAP_RELATIONAL_SCHEMA_PARSER_H_
#define SEMAP_RELATIONAL_SCHEMA_PARSER_H_

#include <string_view>

#include "relational/schema.h"
#include "util/diag.h"
#include "util/result.h"

namespace semap::rel {

/// \brief Parse the schema text format described above — the canonical
/// entry point. kStrict fails fast on the first problem; kLenient (sink
/// required) collects coded diagnostics, synchronizes at statement
/// boundaries, and returns the well-formed subset of the schema
/// (malformed tables and RICs are dropped; the rest is kept) — it only
/// fails when the options are themselves invalid (kLenient without a
/// sink).
Result<RelationalSchema> ParseSchema(std::string_view input,
                                     const ParseOptions& options);

/// Historical names, delegating to the canonical entry point.
Result<RelationalSchema> ParseSchema(std::string_view input);
RelationalSchema ParseSchemaLenient(std::string_view input,
                                    DiagnosticSink& sink);

}  // namespace semap::rel

#endif  // SEMAP_RELATIONAL_SCHEMA_PARSER_H_
