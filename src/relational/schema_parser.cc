#include "relational/schema_parser.h"

#include "util/lexer.h"

namespace semap::rel {

namespace {

// ident_list := ident (',' ident)*
Result<std::vector<std::string>> ParseIdentList(TokenCursor& cur) {
  std::vector<std::string> out;
  do {
    SEMAP_ASSIGN_OR_RETURN(std::string id, cur.ExpectIdentifier());
    out.push_back(std::move(id));
  } while (cur.TryConsumePunct(","));
  return out;
}

// '(' ident_list ')'
Result<std::vector<std::string>> ParseParenIdentList(TokenCursor& cur) {
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct("("));
  SEMAP_ASSIGN_OR_RETURN(std::vector<std::string> ids, ParseIdentList(cur));
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct(")"));
  return ids;
}

// RICs may reference tables declared later in the file, so ParseTable
// appends them to `pending` and ParseSchema installs them at the end.
Status ParseTable(TokenCursor& cur, RelationalSchema& schema,
                  std::vector<Ric>& pending) {
  SEMAP_ASSIGN_OR_RETURN(std::string name, cur.ExpectIdentifier());
  SEMAP_ASSIGN_OR_RETURN(std::vector<std::string> columns,
                         ParseParenIdentList(cur));
  std::vector<std::string> key;
  if (cur.TryConsumeIdent("key")) {
    SEMAP_ASSIGN_OR_RETURN(key, ParseParenIdentList(cur));
  }
  while (cur.TryConsumeIdent("fk")) {
    Ric ric;
    ric.from_table = name;
    if (cur.Peek().Is(TokenKind::kIdentifier)) {
      ric.label = cur.Next().text;
    }
    SEMAP_ASSIGN_OR_RETURN(ric.from_columns, ParseParenIdentList(cur));
    SEMAP_RETURN_NOT_OK(cur.ExpectPunct("->"));
    SEMAP_ASSIGN_OR_RETURN(ric.to_table, cur.ExpectIdentifier());
    SEMAP_ASSIGN_OR_RETURN(ric.to_columns, ParseParenIdentList(cur));
    pending.push_back(std::move(ric));
  }
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct(";"));
  return schema.AddTable(Table(name, std::move(columns), std::move(key)));
}

}  // namespace

Result<RelationalSchema> ParseSchema(std::string_view input) {
  SEMAP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  TokenCursor cur(std::move(tokens));
  RelationalSchema schema;
  std::vector<Ric> pending;
  if (cur.TryConsumeIdent("schema")) {
    SEMAP_ASSIGN_OR_RETURN(std::string name, cur.ExpectIdentifier());
    schema.set_name(std::move(name));
    SEMAP_RETURN_NOT_OK(cur.ExpectPunct(";"));
  }
  while (!cur.AtEnd()) {
    if (cur.TryConsumeIdent("table")) {
      SEMAP_RETURN_NOT_OK(ParseTable(cur, schema, pending));
    } else {
      return cur.ErrorHere("expected 'table'");
    }
  }
  for (Ric& ric : pending) {
    SEMAP_RETURN_NOT_OK(schema.AddRic(std::move(ric)));
  }
  return schema;
}

}  // namespace semap::rel
