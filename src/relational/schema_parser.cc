#include "relational/schema_parser.h"

#include <set>

#include "util/lexer.h"

namespace semap::rel {

namespace {

// ident_list := ident (',' ident)*
Result<std::vector<std::string>> ParseIdentList(TokenCursor& cur) {
  std::vector<std::string> out;
  do {
    SEMAP_ASSIGN_OR_RETURN(std::string id, cur.ExpectIdentifier());
    out.push_back(std::move(id));
  } while (cur.TryConsumePunct(","));
  return out;
}

// '(' ident_list ')'
Result<std::vector<std::string>> ParseParenIdentList(TokenCursor& cur) {
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct("("));
  SEMAP_ASSIGN_OR_RETURN(std::vector<std::string> ids, ParseIdentList(cur));
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct(")"));
  return ids;
}

struct ParsedRic {
  Ric ric;
  SourceSpan span;  // the 'fk' keyword
};

struct ParsedTable {
  Table table;
  SourceSpan span;  // the table name
  std::vector<ParsedRic> rics;
};

// One full `table` statement (the keyword already consumed), without
// mutating any schema — both drivers install the result themselves.
Result<ParsedTable> ParseTableStmt(TokenCursor& cur) {
  ParsedTable out;
  out.span = cur.SpanHere();
  SEMAP_ASSIGN_OR_RETURN(std::string name, cur.ExpectIdentifier());
  SEMAP_ASSIGN_OR_RETURN(std::vector<std::string> columns,
                         ParseParenIdentList(cur));
  std::vector<std::string> key;
  if (cur.TryConsumeIdent("key")) {
    SEMAP_ASSIGN_OR_RETURN(key, ParseParenIdentList(cur));
  }
  while (cur.TryConsumeIdent("fk")) {
    ParsedRic parsed;
    parsed.span = cur.SpanHere();
    parsed.ric.from_table = name;
    if (cur.Peek().Is(TokenKind::kIdentifier)) {
      parsed.ric.label = cur.Next().text;
    }
    SEMAP_ASSIGN_OR_RETURN(parsed.ric.from_columns, ParseParenIdentList(cur));
    SEMAP_RETURN_NOT_OK(cur.ExpectPunct("->"));
    SEMAP_ASSIGN_OR_RETURN(parsed.ric.to_table, cur.ExpectIdentifier());
    SEMAP_ASSIGN_OR_RETURN(parsed.ric.to_columns, ParseParenIdentList(cur));
    out.rics.push_back(std::move(parsed));
  }
  SEMAP_RETURN_NOT_OK(cur.ExpectPunct(";"));
  out.table = Table(std::move(name), std::move(columns), std::move(key));
  return out;
}

/// Code for a failed AddTable: re-derive which invariant broke.
const char* ClassifyTableRejection(const RelationalSchema& schema,
                                   const Table& table) {
  if (schema.FindTable(table.name()) != nullptr) return diag::kDuplicateTable;
  std::set<std::string> seen;
  for (const std::string& c : table.columns()) {
    if (!seen.insert(c).second) return diag::kDuplicateColumn;
  }
  for (const std::string& k : table.primary_key()) {
    if (!table.HasColumn(k)) return diag::kBadKey;
  }
  return diag::kUnexpectedToken;
}

/// Code for a failed AddRic: arity problems vs dangling references.
const char* ClassifyRicRejection(const Ric& ric) {
  if (ric.from_columns.size() != ric.to_columns.size() ||
      ric.from_columns.empty()) {
    return diag::kRicArity;
  }
  return diag::kDanglingRic;
}

Result<RelationalSchema> ParseSchemaStrict(std::string_view input) {
  SEMAP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  TokenCursor cur(std::move(tokens));
  RelationalSchema schema;
  std::vector<Ric> pending;
  if (cur.TryConsumeIdent("schema")) {
    SEMAP_ASSIGN_OR_RETURN(std::string name, cur.ExpectIdentifier());
    schema.set_name(std::move(name));
    SEMAP_RETURN_NOT_OK(cur.ExpectPunct(";"));
  }
  while (!cur.AtEnd()) {
    if (cur.TryConsumeIdent("table")) {
      SEMAP_ASSIGN_OR_RETURN(ParsedTable parsed, ParseTableStmt(cur));
      SEMAP_RETURN_NOT_OK(schema.AddTable(std::move(parsed.table)));
      for (ParsedRic& ric : parsed.rics) pending.push_back(std::move(ric.ric));
    } else {
      return cur.ErrorHere("expected 'table'");
    }
  }
  for (Ric& ric : pending) {
    SEMAP_RETURN_NOT_OK(schema.AddRic(std::move(ric)));
  }
  return schema;
}

RelationalSchema ParseSchemaLenientImpl(std::string_view input,
                                        DiagnosticSink& sink) {
  TokenCursor cur(TokenizeLenient(input, sink));
  RelationalSchema schema;
  std::vector<ParsedRic> pending;
  if (cur.TryConsumeIdent("schema")) {
    auto name = cur.ExpectIdentifier();
    Status header = name.ok() ? cur.ExpectPunct(";") : name.status();
    if (header.ok()) {
      schema.set_name(std::move(*name));
    } else {
      cur.DiagnoseHere(sink, header);
      cur.SynchronizeTo({"table"});
    }
  }
  while (!cur.AtEnd()) {
    if (!cur.TryConsumeIdent("table")) {
      cur.DiagnoseHere(sink, cur.ErrorHere("expected 'table'"));
      cur.SynchronizeTo({"table"});
      continue;
    }
    auto parsed = ParseTableStmt(cur);
    if (!parsed.ok()) {
      cur.DiagnoseHere(sink, parsed.status());
      cur.SynchronizeTo({"table"});
      continue;
    }
    Status added = schema.AddTable(parsed->table);
    if (!added.ok()) {
      // The statement's RICs are part of the dropped declaration.
      sink.Error(ClassifyTableRejection(schema, parsed->table),
                 added.message(), parsed->span,
                 "the table declaration was dropped");
      continue;
    }
    for (ParsedRic& ric : parsed->rics) pending.push_back(std::move(ric));
  }
  for (ParsedRic& parsed : pending) {
    Status added = schema.AddRic(parsed.ric);
    if (!added.ok()) {
      sink.Error(ClassifyRicRejection(parsed.ric), added.message(),
                 parsed.span, "the fk clause was dropped");
    }
  }
  return schema;
}

}  // namespace

Result<RelationalSchema> ParseSchema(std::string_view input,
                                     const ParseOptions& options) {
  if (options.mode == ParseMode::kLenient) {
    if (options.sink == nullptr) {
      return Status::InvalidArgument(
          "lenient parse requires ParseOptions::sink");
    }
    return ParseSchemaLenientImpl(input, *options.sink);
  }
  return ParseSchemaStrict(input);
}

Result<RelationalSchema> ParseSchema(std::string_view input) {
  return ParseSchema(input, {});
}

RelationalSchema ParseSchemaLenient(std::string_view input,
                                    DiagnosticSink& sink) {
  return *ParseSchema(input, {ParseMode::kLenient, &sink});
}

}  // namespace semap::rel
