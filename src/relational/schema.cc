#include "relational/schema.h"

#include <algorithm>
#include <set>

#include "util/string_util.h"

namespace semap::rel {

bool Table::HasColumn(const std::string& column) const {
  return ColumnIndex(column) >= 0;
}

int Table::ColumnIndex(const std::string& column) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == column) return static_cast<int>(i);
  }
  return -1;
}

bool Table::IsKeyColumn(const std::string& column) const {
  return std::find(primary_key_.begin(), primary_key_.end(), column) !=
         primary_key_.end();
}

std::string Table::ToString() const {
  std::vector<std::string> rendered;
  rendered.reserve(columns_.size());
  for (const std::string& c : columns_) {
    rendered.push_back(IsKeyColumn(c) ? c + "*" : c);
  }
  return name_ + "(" + Join(rendered, ", ") + ")";
}

std::string Ric::ToString() const {
  std::string out;
  if (!label.empty()) out += label + ": ";
  out += from_table + "(" + Join(from_columns, ", ") + ") -> " + to_table +
         "(" + Join(to_columns, ", ") + ")";
  return out;
}

Status RelationalSchema::AddTable(Table table) {
  if (table.name().empty()) {
    return Status::InvalidArgument("table name must be non-empty");
  }
  if (table_index_.count(table.name()) > 0) {
    return Status::AlreadyExists("duplicate table '" + table.name() + "'");
  }
  std::set<std::string> seen;
  for (const std::string& c : table.columns()) {
    if (!seen.insert(c).second) {
      return Status::InvalidArgument("duplicate column '" + c + "' in table '" +
                                     table.name() + "'");
    }
  }
  for (const std::string& k : table.primary_key()) {
    if (!table.HasColumn(k)) {
      return Status::InvalidArgument("primary key column '" + k +
                                     "' not in table '" + table.name() + "'");
    }
  }
  table_index_[table.name()] = tables_.size();
  tables_.push_back(std::move(table));
  return Status::OK();
}

Status RelationalSchema::AddRic(Ric ric) {
  const Table* from = FindTable(ric.from_table);
  if (from == nullptr) {
    return Status::NotFound("RIC references unknown table '" + ric.from_table +
                            "'");
  }
  const Table* to = FindTable(ric.to_table);
  if (to == nullptr) {
    return Status::NotFound("RIC references unknown table '" + ric.to_table +
                            "'");
  }
  if (ric.from_columns.size() != ric.to_columns.size() ||
      ric.from_columns.empty()) {
    return Status::InvalidArgument("RIC column lists must be non-empty and of "
                                   "equal length: " +
                                   ric.ToString());
  }
  for (const std::string& c : ric.from_columns) {
    if (!from->HasColumn(c)) {
      return Status::NotFound("RIC column '" + c + "' not in table '" +
                              ric.from_table + "'");
    }
  }
  for (const std::string& c : ric.to_columns) {
    if (!to->HasColumn(c)) {
      return Status::NotFound("RIC column '" + c + "' not in table '" +
                              ric.to_table + "'");
    }
  }
  rics_.push_back(std::move(ric));
  return Status::OK();
}

const Table* RelationalSchema::FindTable(const std::string& name) const {
  auto it = table_index_.find(name);
  if (it == table_index_.end()) return nullptr;
  return &tables_[it->second];
}

bool RelationalSchema::HasColumn(const ColumnRef& ref) const {
  const Table* t = FindTable(ref.table);
  return t != nullptr && t->HasColumn(ref.column);
}

std::vector<const Ric*> RelationalSchema::RicsFrom(
    const std::string& table) const {
  std::vector<const Ric*> out;
  for (const Ric& r : rics_) {
    if (r.from_table == table) out.push_back(&r);
  }
  return out;
}

std::vector<const Ric*> RelationalSchema::RicsTo(
    const std::string& table) const {
  std::vector<const Ric*> out;
  for (const Ric& r : rics_) {
    if (r.to_table == table) out.push_back(&r);
  }
  return out;
}

std::string RelationalSchema::ToString() const {
  std::string out = "schema " + name_ + ";\n";
  for (const Table& t : tables_) {
    out += "  " + t.ToString() + "\n";
  }
  for (const Ric& r : rics_) {
    out += "  " + r.ToString() + "\n";
  }
  return out;
}

}  // namespace semap::rel
