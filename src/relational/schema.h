// Relational schema model: tables, columns, primary keys, and referential
// integrity constraints (RICs).
//
// This is the "logical schema" side of the paper's input: both the source
// and target of a mapping problem are RelationalSchema instances. The
// RIC-based baseline chases these constraints directly; the semantic
// technique uses them only through table semantics.
#ifndef SEMAP_RELATIONAL_SCHEMA_H_
#define SEMAP_RELATIONAL_SCHEMA_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace semap::rel {

/// \brief A qualified column reference, "table.column".
struct ColumnRef {
  std::string table;
  std::string column;

  std::string ToString() const { return table + "." + column; }

  bool operator==(const ColumnRef&) const = default;
  bool operator<(const ColumnRef& other) const {
    return std::tie(table, column) < std::tie(other.table, other.column);
  }
};

/// \brief A relational table: ordered columns plus a primary key.
class Table {
 public:
  Table() = default;
  Table(std::string name, std::vector<std::string> columns,
        std::vector<std::string> primary_key)
      : name_(std::move(name)),
        columns_(std::move(columns)),
        primary_key_(std::move(primary_key)) {}

  const std::string& name() const { return name_; }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::string>& primary_key() const { return primary_key_; }

  bool HasColumn(const std::string& column) const;
  /// Index of `column` in the column list, or -1.
  int ColumnIndex(const std::string& column) const;
  bool IsKeyColumn(const std::string& column) const;

  /// Render as DDL-ish text, e.g. "person(pname*) " with key columns starred.
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<std::string> columns_;
  std::vector<std::string> primary_key_;
};

/// \brief Referential integrity constraint:
/// from_table[from_columns] ⊆ to_table[to_columns].
struct Ric {
  std::string label;  // optional, e.g. "r1"
  std::string from_table;
  std::vector<std::string> from_columns;
  std::string to_table;
  std::vector<std::string> to_columns;

  std::string ToString() const;
  bool operator==(const Ric&) const = default;
};

/// \brief A named collection of tables and RICs.
class RelationalSchema {
 public:
  RelationalSchema() = default;
  explicit RelationalSchema(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Add a table. Fails on duplicate table names, duplicate columns within a
  /// table, or a primary key mentioning unknown columns.
  Status AddTable(Table table);
  /// Add a RIC. Fails if either side names an unknown table/column or the
  /// two column lists have different lengths.
  Status AddRic(Ric ric);

  const Table* FindTable(const std::string& name) const;
  bool HasColumn(const ColumnRef& ref) const;

  const std::vector<Table>& tables() const { return tables_; }
  const std::vector<Ric>& rics() const { return rics_; }

  /// RICs whose referencing side is `table`.
  std::vector<const Ric*> RicsFrom(const std::string& table) const;
  /// RICs whose referenced side is `table`.
  std::vector<const Ric*> RicsTo(const std::string& table) const;

  std::string ToString() const;

 private:
  std::string name_;
  std::vector<Table> tables_;
  std::vector<Ric> rics_;
  std::map<std::string, size_t> table_index_;
};

}  // namespace semap::rel

#endif  // SEMAP_RELATIONAL_SCHEMA_H_
