#include "serve/catalog.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "exec/checkpoint.h"
#include "util/diag.h"

namespace semap::serve {

namespace {

namespace fs = std::filesystem;

const char* const kArtifactFiles[7] = {
    "source.schema", "source.cm", "source.sem",      "target.schema",
    "target.cm",     "target.sem", "correspondences.txt"};

Result<std::string> ReadWholeFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// FNV-1a mix of the per-entry fingerprints in sorted-name order: stable
/// across readdir order, sensitive to any entry's content.
uint64_t CombineFingerprints(const std::map<std::string, CatalogEntry>& entries) {
  uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      hash ^= (value >> shift) & 0xff;
      hash *= 1099511628211ull;
    }
  };
  for (const auto& [name, entry] : entries) {
    for (const char c : name) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 1099511628211ull;
    }
    mix(entry.fingerprint);
  }
  return hash;
}

size_t SchemaBytes(const sem::AnnotatedSchema& side) {
  size_t bytes = sizeof(sem::AnnotatedSchema);
  for (const rel::Table& table : side.schema().tables()) {
    bytes += sizeof(rel::Table) + table.name().size();
    for (const std::string& col : table.columns()) bytes += 32 + col.size();
    for (const std::string& col : table.primary_key()) bytes += 32 + col.size();
  }
  for (const rel::Ric& ric : side.schema().rics()) {
    bytes += sizeof(rel::Ric) + ric.label.size() + ric.from_table.size() +
             ric.to_table.size();
    for (const std::string& col : ric.from_columns) bytes += 32 + col.size();
    for (const std::string& col : ric.to_columns) bytes += 32 + col.size();
  }
  for (const cm::GraphNode& node : side.graph().nodes()) {
    bytes += sizeof(cm::GraphNode) + node.name.size() + node.owner_class.size();
  }
  for (const cm::GraphEdge& edge : side.graph().edges()) {
    bytes += sizeof(cm::GraphEdge) + edge.name.size();
  }
  for (const auto& [table, stree] : side.semantics()) {
    bytes += sizeof(sem::STree) + table.size() + stree.table.size();
    for (const sem::STreeNode& node : stree.nodes) {
      bytes += sizeof(sem::STreeNode) + node.alias.size();
    }
    bytes += stree.edges.size() * sizeof(sem::STreeEdge);
    for (const sem::ColumnBinding& binding : stree.bindings) {
      bytes += sizeof(sem::ColumnBinding) + binding.column.size() +
               binding.attribute.size();
    }
  }
  return bytes;
}

Result<ArtifactHandle> CompileFromTexts(const CatalogEntry& entry) {
  DiagnosticSink sink;
  auto loaded = validate::LoadScenario(entry.texts, sink);
  if (!loaded.ok()) {
    // Cannot normally happen: the texts compiled at load time and are
    // retained byte-for-byte. Surface it as an internal error rather
    // than serving a partial artifact.
    return Status::Internal("recompile of scenario '" + entry.name +
                            "' failed: " + loaded.status().message());
  }
  const uint64_t fingerprint = exec::ScenarioFingerprint(
      loaded->source, loaded->target, loaded->correspondences);
  if (fingerprint != entry.fingerprint) {
    return Status::Internal("recompile of scenario '" + entry.name +
                            "' drifted from the loaded fingerprint");
  }
  return ArtifactHandle(
      std::make_shared<const validate::LoadedScenario>(std::move(*loaded)));
}

}  // namespace

size_t EstimateScenarioBytes(const validate::LoadedScenario& scenario) {
  size_t bytes = sizeof(validate::LoadedScenario);
  bytes += SchemaBytes(scenario.source);
  bytes += SchemaBytes(scenario.target);
  for (const disc::Correspondence& corr : scenario.correspondences) {
    bytes += sizeof(disc::Correspondence) + corr.source.table.size() +
             corr.source.column.size() + corr.target.table.size() +
             corr.target.column.size();
  }
  return bytes;
}

Result<ArtifactHandle> ArtifactCache::Acquire(const CatalogEntry& entry) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = slots_.find(entry.fingerprint);
    if (it == slots_.end()) break;
    Slot& slot = it->second;
    if (slot.artifact) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, slot.lru_it);
      return slot.artifact;
    }
    // A builder is compiling this fingerprint right now: wait for it to
    // publish (or fail and erase the slot) instead of compiling twice.
    ++misses_;
    cv_.wait(lock, [&] {
      auto probe = slots_.find(entry.fingerprint);
      return probe == slots_.end() || probe->second.artifact != nullptr;
    });
    auto probe = slots_.find(entry.fingerprint);
    if (probe != slots_.end() && probe->second.artifact) {
      // Coalesced onto the builder's compile: already counted as a miss.
      lru_.splice(lru_.begin(), lru_, probe->second.lru_it);
      return probe->second.artifact;
    }
    // The builder failed and erased the slot: loop and try building.
  }

  // Miss with no builder: claim the slot, compile outside the lock.
  ++misses_;
  ++compiles_;
  Slot& slot = slots_[entry.fingerprint];
  slot.building = true;
  slot.lru_it = lru_.insert(lru_.begin(), entry.fingerprint);
  lock.unlock();

  auto compiled = CompileFromTexts(entry);

  lock.lock();
  // The slot survives the unlocked compile: eviction skips building
  // slots and only the builder itself erases its claim.
  auto it = slots_.find(entry.fingerprint);
  if (!compiled.ok() || it == slots_.end()) {
    if (it != slots_.end()) {
      lru_.erase(it->second.lru_it);
      slots_.erase(it);
    }
    cv_.notify_all();
    if (!compiled.ok()) return compiled.status();
    return *compiled;  // compiled fine but unpublishable; still usable
  }
  const size_t bytes = EstimateScenarioBytes(**compiled);
  InsertLocked(entry.fingerprint, it->second, *compiled, bytes);
  EvictOverBudgetLocked();
  cv_.notify_all();
  return *compiled;
}

void ArtifactCache::Prime(const CatalogEntry& entry, ArtifactHandle artifact) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = slots_.try_emplace(entry.fingerprint);
  if (!inserted) return;  // two entries sharing a fingerprint share a slot
  it->second.lru_it = lru_.insert(lru_.begin(), entry.fingerprint);
  InsertLocked(entry.fingerprint, it->second, std::move(artifact),
               entry.artifact_bytes);
  EvictOverBudgetLocked();
}

void ArtifactCache::InsertLocked(uint64_t fingerprint, Slot& slot,
                                 ArtifactHandle artifact, size_t bytes) {
  (void)fingerprint;
  slot.artifact = std::move(artifact);
  slot.bytes = bytes;
  slot.building = false;
  bytes_ += bytes;
}

void ArtifactCache::EvictOverBudgetLocked() {
  if (budget_bytes_ == 0) return;
  // Coldest-first; stop once the budget holds. Pinned entries
  // (outstanding request handles → use_count > 1) and mid-compile slots
  // are skipped: their memory is not reclaimable right now, and
  // evicting them would only force a pointless recompile.
  auto it = lru_.end();
  while (bytes_ > budget_bytes_ && it != lru_.begin()) {
    --it;
    auto slot_it = slots_.find(*it);
    if (slot_it == slots_.end()) {
      it = lru_.erase(it);
      continue;
    }
    Slot& slot = slot_it->second;
    if (slot.building || !slot.artifact || slot.artifact.use_count() > 1) {
      continue;
    }
    bytes_ -= slot.bytes;
    ++evictions_;
    slots_.erase(slot_it);
    it = lru_.erase(it);
  }
}

ArtifactCacheStats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ArtifactCacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.compiles = compiles_;
  stats.bytes = bytes_;
  stats.budget_bytes = budget_bytes_;
  return stats;
}

Result<Catalog> LoadCatalog(const std::string& dir,
                            size_t cache_budget_bytes) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::NotFound("catalog directory not found: " + dir);
  }

  // Sorted directory names: deterministic skipped order and load order.
  std::vector<fs::path> subdirs;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_directory()) subdirs.push_back(entry.path());
  }
  if (ec) {
    return Status::Internal("cannot scan " + dir + ": " + ec.message());
  }
  std::sort(subdirs.begin(), subdirs.end());

  Catalog catalog;
  catalog.cache = std::make_shared<ArtifactCache>(cache_budget_bytes);
  for (const fs::path& subdir : subdirs) {
    const std::string name = subdir.filename().string();
    bool complete = true;
    for (const char* file : kArtifactFiles) {
      if (!fs::exists(subdir / file, ec)) {
        complete = false;
        break;
      }
    }
    if (!complete) {
      catalog.skipped.push_back(name);
      continue;
    }

    validate::ScenarioTexts texts;
    validate::ArtifactText* slots[7] = {
        &texts.source_schema, &texts.source_cm, &texts.source_sem,
        &texts.target_schema, &texts.target_cm, &texts.target_sem,
        &texts.correspondences};
    bool readable = true;
    for (int i = 0; i < 7; ++i) {
      auto content = ReadWholeFile(subdir / kArtifactFiles[i]);
      if (!content.ok()) {
        readable = false;
        break;
      }
      slots[i]->text = std::move(*content);
      slots[i]->name = name + "/" + kArtifactFiles[i];
    }
    if (!readable) {
      catalog.skipped.push_back(name);
      continue;
    }

    DiagnosticSink sink;
    auto loaded = validate::LoadScenario(texts, sink);
    if (!loaded.ok()) {
      // The one hard failure (a CM that cannot compile at all): the
      // scenario is unservable, skip it like an incomplete directory.
      catalog.skipped.push_back(name);
      continue;
    }

    CatalogEntry entry;
    entry.name = name;
    entry.texts = std::move(texts);
    entry.fingerprint = exec::ScenarioFingerprint(
        loaded->source, loaded->target, loaded->correspondences);
    entry.degraded = sink.has_errors();
    entry.diagnostics = sink.ToString();
    entry.artifact_bytes = EstimateScenarioBytes(*loaded);
    auto artifact = std::make_shared<const validate::LoadedScenario>(
        std::move(*loaded));
    catalog.cache->Prime(entry, std::move(artifact));
    catalog.entries.emplace(name, std::move(entry));
  }

  if (catalog.entries.empty()) {
    return Status::NotFound("no loadable scenario under " + dir +
                            " (need the seven artifact files per "
                            "subdirectory)");
  }
  catalog.fingerprint = CombineFingerprints(catalog.entries);
  return catalog;
}

}  // namespace semap::serve
