#include "serve/catalog.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "exec/checkpoint.h"
#include "util/diag.h"

namespace semap::serve {

namespace {

namespace fs = std::filesystem;

const char* const kArtifactFiles[7] = {
    "source.schema", "source.cm", "source.sem",      "target.schema",
    "target.cm",     "target.sem", "correspondences.txt"};

Result<std::string> ReadWholeFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// FNV-1a mix of the per-entry fingerprints in sorted-name order: stable
/// across readdir order, sensitive to any entry's content.
uint64_t CombineFingerprints(const std::map<std::string, CatalogEntry>& entries) {
  uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      hash ^= (value >> shift) & 0xff;
      hash *= 1099511628211ull;
    }
  };
  for (const auto& [name, entry] : entries) {
    for (const char c : name) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 1099511628211ull;
    }
    mix(entry.fingerprint);
  }
  return hash;
}

}  // namespace

Result<Catalog> LoadCatalog(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::NotFound("catalog directory not found: " + dir);
  }

  // Sorted directory names: deterministic skipped order and load order.
  std::vector<fs::path> subdirs;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_directory()) subdirs.push_back(entry.path());
  }
  if (ec) {
    return Status::Internal("cannot scan " + dir + ": " + ec.message());
  }
  std::sort(subdirs.begin(), subdirs.end());

  Catalog catalog;
  for (const fs::path& subdir : subdirs) {
    const std::string name = subdir.filename().string();
    bool complete = true;
    for (const char* file : kArtifactFiles) {
      if (!fs::exists(subdir / file, ec)) {
        complete = false;
        break;
      }
    }
    if (!complete) {
      catalog.skipped.push_back(name);
      continue;
    }

    validate::ScenarioTexts texts;
    validate::ArtifactText* slots[7] = {
        &texts.source_schema, &texts.source_cm, &texts.source_sem,
        &texts.target_schema, &texts.target_cm, &texts.target_sem,
        &texts.correspondences};
    bool readable = true;
    for (int i = 0; i < 7; ++i) {
      auto content = ReadWholeFile(subdir / kArtifactFiles[i]);
      if (!content.ok()) {
        readable = false;
        break;
      }
      slots[i]->text = std::move(*content);
      slots[i]->name = name + "/" + kArtifactFiles[i];
    }
    if (!readable) {
      catalog.skipped.push_back(name);
      continue;
    }

    DiagnosticSink sink;
    auto loaded = validate::LoadScenario(texts, sink);
    if (!loaded.ok()) {
      // The one hard failure (a CM that cannot compile at all): the
      // scenario is unservable, skip it like an incomplete directory.
      catalog.skipped.push_back(name);
      continue;
    }

    CatalogEntry entry;
    entry.name = name;
    entry.fingerprint = exec::ScenarioFingerprint(
        loaded->source, loaded->target, loaded->correspondences);
    entry.degraded = sink.has_errors();
    entry.diagnostics = sink.ToString();
    entry.scenario = std::move(*loaded);
    catalog.entries.emplace(name, std::move(entry));
  }

  if (catalog.entries.empty()) {
    return Status::NotFound("no loadable scenario under " + dir +
                            " (need the seven artifact files per "
                            "subdirectory)");
  }
  catalog.fingerprint = CombineFingerprints(catalog.entries);
  return catalog;
}

}  // namespace semap::serve
