#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "exec/run_context.h"
#include "exec/supervisor.h"
#include "obs/provenance.h"
#include "obs/trace.h"

namespace semap::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::string EscapedField(std::string_view key, const std::string& value,
                         bool first = false) {
  std::string out = first ? "{" : ",";
  out += "\"";
  out.append(key.data(), key.size());
  out += "\":\"";
  out += obs::JsonEscape(value);
  out += "\"";
  return out;
}

int64_t ElapsedMs(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               start)
      .count();
}

int64_t NsSince(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              start)
      .count();
}

}  // namespace

Result<std::unique_ptr<Server>> Server::Start(ServerOptions opts) {
  auto catalog = LoadCatalog(opts.catalog_dir, opts.cache_budget_bytes);
  if (!catalog.ok()) return catalog.status();

  std::unique_ptr<Server> server(new Server(std::move(opts)));
  server->catalog_ = std::move(*catalog);

  if (!server->opts_.store_path.empty()) {
    auto store = store::MappingStore::Open(server->opts_.store_path,
                                           server->catalog_.fingerprint,
                                           server->opts_.io_env);
    if (!store.ok()) return store.status();
    server->store_.emplace(std::move(*store));
  }

  SocketOptions socket_opts;
  socket_opts.io_timeout_ms = server->opts_.io_timeout_ms;
  Result<std::unique_ptr<Listener>> listener =
      server->opts_.unix_path.empty()
          ? ListenTcp(server->opts_.tcp_port, socket_opts)
          : ListenUnix(server->opts_.unix_path, socket_opts);
  if (!listener.ok()) return listener.status();
  server->listener_ = std::move(*listener);
  if (server->opts_.net_fault != nullptr) {
    server->listener_ = FaultInjectedListener(std::move(server->listener_),
                                              server->opts_.net_fault);
  }

  if (server->opts_.events != nullptr) {
    server->opts_.events->Emit(
        "serve_start",
        obs::WideEvent()
            .Int("scenarios",
                 static_cast<int64_t>(server->catalog_.entries.size()))
            .Int("skipped",
                 static_cast<int64_t>(server->catalog_.skipped.size()))
            .Int("cache_budget_bytes",
                 static_cast<int64_t>(server->opts_.cache_budget_bytes))
            .Bool("durable", server->store_.has_value()));
  }
  return server;
}

Server::~Server() {
  // Serve() joins its workers before returning; this only covers a
  // server destroyed without ever serving.
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  if (snapshot_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(snapshot_mu_);
      snapshot_stop_ = true;
    }
    snapshot_cv_.notify_all();
    snapshot_thread_.join();
  }
  if (listener_ != nullptr) (void)listener_->Close();
}

Status Server::Serve(const std::atomic<bool>& stop) {
  for (size_t i = 0; i < std::max<size_t>(opts_.workers, 1); ++i) {
    workers_.emplace_back(&Server::WorkerLoop, this);
  }

  // Live telemetry: rewrite the snapshot file on a cadence so a kill -9
  // loses at most one interval of observability (the file itself is
  // always a complete document — tmp+fsync+rename).
  if (!opts_.metrics_path.empty() && opts_.metrics_interval_ms > 0) {
    snapshot_thread_ = std::thread([this] {
      std::unique_lock<std::mutex> lock(snapshot_mu_);
      while (!snapshot_stop_) {
        snapshot_cv_.wait_for(
            lock, std::chrono::milliseconds(opts_.metrics_interval_ms),
            [this] { return snapshot_stop_; });
        if (snapshot_stop_) break;
        lock.unlock();
        // Best-effort per tick; the post-drain final write is the one
        // whose failure callers surface.
        (void)WriteMetricsSnapshot();
        lock.lock();
      }
    });
  }

  Status verdict = Status::OK();
  while (!stop.load(std::memory_order_relaxed)) {
    auto conn = listener_->Accept(stop);
    if (!conn.ok()) {
      if (stop.load(std::memory_order_relaxed)) break;
      if (opts_.net_fault != nullptr && opts_.net_fault->crashed()) {
        // The simulated process kill: freeze everything and bail out the
        // way SIGKILL would — no drain courtesy, journal left as-is.
        verdict = conn.status();
        break;
      }
      // Transient accept failure (injected or real): keep listening,
      // without spinning the fault counters hot.
      errors_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);

    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (queue_.size() < opts_.queue_capacity) {
        queue_.push_back(QueuedConn{std::move(*conn), Clock::now()});
        admitted = true;
      }
    }
    if (admitted) {
      queue_cv_.notify_one();
      continue;
    }
    // Admission control: the queue is full, so the answer is an explicit
    // coded reject written right here on the acceptor thread — cheap,
    // bounded, and never silent. The request was never read, so its
    // lifecycle record carries the shed decision and the queue depth,
    // nothing else.
    shed_.fetch_add(1, std::memory_order_relaxed);
    Lifecycle lc;
    lc.outcome = "shed";
    lc.code = kErrOverloaded;
    lc.queue_depth = static_cast<int64_t>(opts_.queue_capacity);
    (void)WriteFrame(**conn,
                     ErrorResponse("", "reject", kErrOverloaded,
                                   "server overloaded: admission queue is "
                                   "full, retry with backoff"));
    (void)(*conn)->Close();
    FinishRequest(lc);
  }

  // Drain: stop accepting (the listener is done), let queued connections
  // be answered E211, give in-flight requests the drain deadline, then
  // cancel whatever is left through the supervisor's cooperative flag.
  const bool crashed =
      opts_.net_fault != nullptr && opts_.net_fault->crashed();
  draining_.store(true);
  queue_cv_.notify_all();
  if (opts_.events != nullptr) {
    opts_.events->Emit("drain_begin",
                       obs::WideEvent()
                           .Int("in_flight",
                                static_cast<int64_t>(
                                    active_.load(std::memory_order_relaxed)))
                           .Bool("crashed", crashed));
  }
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(
                         opts_.drain_deadline_ms > 0 ? opts_.drain_deadline_ms
                                                     : 0);
  while (Clock::now() < deadline) {
    bool idle;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      idle = queue_.empty() && active_.load(std::memory_order_relaxed) == 0;
    }
    if (idle) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  drain_cancel_.store(true);
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  if (snapshot_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(snapshot_mu_);
      snapshot_stop_ = true;
    }
    snapshot_cv_.notify_all();
    snapshot_thread_.join();
  }
  (void)listener_->Close();
  if (opts_.events != nullptr) {
    opts_.events->Emit(
        "drain_end",
        obs::WideEvent()
            .Int("served", static_cast<int64_t>(
                               served_.load(std::memory_order_relaxed)))
            .Int("shed",
                 static_cast<int64_t>(shed_.load(std::memory_order_relaxed)))
            .Bool("clean", verdict.ok()));
  }
  return verdict;
}

void Server::WorkerLoop() {
  while (true) {
    QueuedConn queued;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() || draining_.load(std::memory_order_relaxed);
      });
      if (queue_.empty()) {
        if (draining_.load(std::memory_order_relaxed)) return;
        continue;
      }
      queued = std::move(queue_.front());
      queue_.pop_front();
      active_.fetch_add(1, std::memory_order_relaxed);
    }
    HandleConn(std::move(queued));
    active_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Server::HandleConn(QueuedConn queued) {
  std::unique_ptr<Conn> conn = std::move(queued.conn);
  bool first_frame = true;
  while (true) {
    auto payload = ReadFrame(*conn);
    // The first request's deadline clock starts when the acceptor
    // admitted the connection — queue wait counts against the caller's
    // patience; later frames on the same connection start now.
    const TimePoint dispatched = Clock::now();
    const TimePoint start = first_frame ? queued.admitted : dispatched;
    first_frame = false;
    if (!payload.ok()) {
      if (payload.status().code() == StatusCode::kNotFound) break;  // EOF
      errors_.fetch_add(1, std::memory_order_relaxed);
      if (payload.status().code() == StatusCode::kParseError) {
        // The stream lost sync; E200 is a courtesy, the close is the
        // actual answer.
        (void)WriteFrame(*conn,
                         ErrorResponse("", "error", kErrBadFrame,
                                       payload.status().message()));
        Lifecycle lc;
        lc.outcome = "bad_frame";
        lc.code = kErrBadFrame;
        FinishRequest(lc);
      }
      break;
    }

    Lifecycle lc;
    lc.queue_ns = std::max<int64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dispatched -
                                                             start)
            .count(),
        0);
    std::string response;
    auto request = ParseRequest(*payload);
    if (!request.ok()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      lc.outcome = "bad_request";
      lc.code = kErrBadRequest;
      response = ErrorResponse("", "error", kErrBadRequest,
                               request.status().message());
    } else if (draining_.load(std::memory_order_relaxed)) {
      // Popped after the drain began: this request never started, so it
      // is rejected, not cancelled.
      lc.id = request->id;
      lc.op = request->op;
      lc.scenario = request->scenario;
      lc.trace_id = request->trace_id;
      lc.attempt = request->attempt;
      lc.outcome = "drain_rejected";
      lc.code = kErrDraining;
      ResponseMeta meta;
      meta.trace_id = request->trace_id;
      meta.attempt = request->attempt;
      meta.queue_ns = lc.queue_ns;
      response = ErrorResponse(request->id, "reject", kErrDraining,
                               "server is draining, retry elsewhere", meta);
    } else {
      response = HandleRequest(*request, start, &lc);
    }
    if (lc.handle_ns < 0) lc.handle_ns = NsSince(dispatched);
    const TimePoint respond_start = Clock::now();
    const bool wrote = WriteFrame(*conn, response).ok();
    lc.respond_ns = NsSince(respond_start);
    FinishRequest(lc);
    if (!wrote) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (draining_.load(std::memory_order_relaxed)) break;
  }
  (void)conn->Close();
}

std::string Server::HandleRequest(const Request& request, TimePoint start,
                                  Lifecycle* lc) {
  const TimePoint dispatched = Clock::now();
  lc->id = request.id;
  lc->op = request.op;
  lc->scenario = request.scenario;
  lc->trace_id = request.trace_id;
  lc->attempt = request.attempt;
  // The trace echo rendered into the envelope. MetaFields renders
  // nothing when the request carried no trace_id, so untraced envelopes
  // stay byte-for-byte what pre-tracing servers produced.
  ResponseMeta meta;
  meta.trace_id = request.trace_id;
  meta.attempt = request.attempt;
  meta.queue_ns = lc->queue_ns;

  if (request.op == "ping") {
    lc->outcome = "ok";
    meta.handle_ns = lc->handle_ns = NsSince(dispatched);
    return OkResponse(request.id, meta, "{\"pong\":true}");
  }
  if (request.op == "stats") {
    // Never journaled, never cached: stats is the live-telemetry surface
    // and must reflect this instant, not the first time it was asked.
    lc->outcome = "ok";
    std::string body = StatsBody();
    meta.handle_ns = lc->handle_ns = NsSince(dispatched);
    return OkResponse(request.id, meta, body);
  }

  // Idempotency: a replayed id returns the journaled bytes verbatim —
  // the same answer the original attempt got (or would have gotten),
  // even across a server restart. The stored envelope's trace echo is
  // the original attempt's, by design.
  if (auto stored = LookupResponse(request.id); stored.has_value()) {
    idempotent_hits_.fetch_add(1, std::memory_order_relaxed);
    lc->outcome = "replayed";
    lc->handle_ns = NsSince(dispatched);
    return *stored;
  }

  const CatalogEntry* entry = catalog_.Find(request.scenario);
  if (entry == nullptr) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    lc->outcome = "error";
    lc->code = kErrUnknownScenario;
    meta.handle_ns = lc->handle_ns = NsSince(dispatched);
    return ErrorResponse(request.id, "error", kErrUnknownScenario,
                         "unknown scenario \"" + request.scenario + "\"",
                         meta);
  }

  // Repeat traffic: a (op, scenario) result computed once — by this
  // process or a predecessor over the same store — is served from the
  // cache without touching the discovery pipeline.
  const std::string result_key = "result:" + request.op + ":" +
                                 request.scenario;
  std::string body;
  bool cached = false;
  if (!request.cache_bypass) {
    if (auto hit = LookupResult(result_key); hit.has_value()) {
      body = std::move(*hit);
      cached = true;
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (!cached) {
    // Deadline shed: the caller's patience ran out while this request
    // sat in the admission queue. The expensive work has not started,
    // so the honest answer is a retryable reject, not a late result.
    if (request.deadline_ms > 0 && ElapsedMs(start) >= request.deadline_ms) {
      deadline_shed_.fetch_add(1, std::memory_order_relaxed);
      lc->outcome = "deadline_shed";
      lc->code = kErrDeadlineShed;
      meta.handle_ns = lc->handle_ns = NsSince(dispatched);
      return ErrorResponse(request.id, "reject", kErrDeadlineShed,
                           "deadline expired before dispatch (queued past "
                           "the caller's patience); retry with backoff",
                           meta);
    }

    // Single-flight: concurrent misses for the same (op, scenario)
    // coalesce onto one computation. Bypass requests never coalesce —
    // the bench uses them to measure raw pipeline latency.
    std::shared_ptr<Flight> flight;
    bool leader = false;
    if (!request.cache_bypass) {
      std::lock_guard<std::mutex> lock(flights_mu_);
      auto [it, inserted] = flights_.try_emplace(result_key);
      if (inserted) {
        it->second = std::make_shared<Flight>();
        leader = true;
      }
      flight = it->second;
    }

    if (flight != nullptr && !leader) {
      // Follower: attach to the leader's computation, then journal an
      // idempotent response of our own from the shared body.
      singleflight_followers_.fetch_add(1, std::memory_order_relaxed);
      lc->outcome = "coalesced";
      std::unique_lock<std::mutex> wait_lock(flight->mu);
      flight->cv.wait(wait_lock, [&] { return flight->done; });
      if (!flight->status.ok()) {
        return FailureResponse(request, flight->status, lc, dispatched);
      }
      body = flight->body;
    } else {
      if (leader) {
        singleflight_leaders_.fetch_add(1, std::memory_order_relaxed);
      }
      bool cacheable = true;
      auto computed = Compute(request, *entry, start, &cacheable, lc);
      Status outcome = computed.ok() ? Status::OK() : computed.status();
      if (computed.ok()) {
        body = std::move(*computed);
        // Cache the body first: if the journal dies between these two
        // puts, the restarted server recomputes nothing and the retry
        // still gets byte-identical bytes (the body is deterministic).
        // Deadline-shaped (degraded) bodies are NOT cached: they would
        // poison later un-deadlined requests with a different answer.
        if (cacheable) {
          const TimePoint journal_start = Clock::now();
          Status stored = StoreResult(result_key, body);
          lc->journal_ns = NsSince(journal_start);
          if (!stored.ok()) outcome = stored;
        }
      }
      if (leader) {
        {
          std::lock_guard<std::mutex> lock(flights_mu_);
          flights_.erase(result_key);
        }
        {
          std::lock_guard<std::mutex> publish_lock(flight->mu);
          flight->done = true;
          flight->status = outcome;
          if (outcome.ok()) flight->body = body;
        }
        flight->cv.notify_all();
      }
      if (!outcome.ok()) {
        return FailureResponse(request, outcome, lc, dispatched);
      }
    }
  }

  if (lc->outcome.empty()) lc->outcome = cached ? "cached" : "computed";
  meta.compile_ns = lc->compile_ns;
  meta.pipeline_ns = lc->pipeline_ns;
  meta.journal_ns = lc->journal_ns;
  meta.handle_ns = NsSince(dispatched);
  std::string response = OkResponse(request.id, meta, body);
  // Crash-only: fsync the response under its id BEFORE sending. An ok
  // answer the client saw is always an answer the journal can replay.
  // (This append lands after the envelope is rendered, so its cost shows
  // in the lifecycle record's journal_ns, not in the envelope's.)
  const TimePoint response_journal_start = Clock::now();
  Status stored = StoreResponse(request.id, response);
  lc->journal_ns = std::max<int64_t>(lc->journal_ns, 0) +
                   NsSince(response_journal_start);
  if (!stored.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    lc->outcome = "error";
    lc->code = kErrInternal;
    lc->handle_ns = NsSince(dispatched);
    return ErrorResponse(request.id, "error", kErrInternal, stored.message(),
                         meta);
  }
  served_.fetch_add(1, std::memory_order_relaxed);
  lc->handle_ns = NsSince(dispatched);
  return response;
}

std::string Server::FailureResponse(const Request& request,
                                    const Status& status, Lifecycle* lc,
                                    TimePoint dispatched) {
  ResponseMeta meta;
  meta.trace_id = request.trace_id;
  meta.attempt = request.attempt;
  meta.queue_ns = lc->queue_ns;
  meta.compile_ns = lc->compile_ns;
  meta.pipeline_ns = lc->pipeline_ns;
  meta.handle_ns = lc->handle_ns = NsSince(dispatched);
  if (drain_cancel_.load(std::memory_order_relaxed)) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    lc->outcome = "drain_cancelled";
    lc->code = kErrCancelled;
    return ErrorResponse(request.id, "reject", kErrCancelled,
                         "request cancelled by drain deadline: " +
                             status.message(),
                         meta);
  }
  if (status.code() == StatusCode::kDeadlineExceeded) {
    // The caller's own deadline expired mid-hold or mid-wait: a shed,
    // not a server fault — retryable with a fresh deadline.
    deadline_shed_.fetch_add(1, std::memory_order_relaxed);
    lc->outcome = "deadline_shed";
    lc->code = kErrDeadlineShed;
    return ErrorResponse(request.id, "reject", kErrDeadlineShed,
                         status.message(), meta);
  }
  errors_.fetch_add(1, std::memory_order_relaxed);
  lc->outcome = "error";
  lc->code = kErrInternal;
  return ErrorResponse(request.id, "error", kErrInternal, status.message(),
                       meta);
}

void Server::FinishRequest(const Lifecycle& lc) {
  // Rolling latency histograms — always on: this is the daemon's live
  // telemetry surface (stats RPC, --metrics snapshots), independent of
  // whether an event stream is attached. A handful of histogram inserts
  // per request is noise next to a journal fsync.
  if (lc.queue_ns >= 0) {
    run_metrics_.RecordDurationNs("serve.queue_wait_ns", lc.queue_ns);
  }
  if (lc.handle_ns >= 0) {
    run_metrics_.RecordDurationNs("serve.handle_ns", lc.handle_ns);
    if (!lc.op.empty()) {
      int64_t e2e = lc.handle_ns + std::max<int64_t>(lc.queue_ns, 0) +
                    std::max<int64_t>(lc.respond_ns, 0);
      run_metrics_.RecordDurationNs("serve.e2e_ns." + lc.op, e2e);
      if (!lc.scenario.empty()) {
        run_metrics_.RecordDurationNs("serve.scenario_e2e_ns." + lc.scenario,
                                      e2e);
      }
    }
    if (lc.outcome == "cached" || lc.outcome == "replayed" ||
        lc.outcome == "coalesced") {
      run_metrics_.RecordDurationNs("serve.handle_hit_ns", lc.handle_ns);
    } else if (lc.outcome == "computed") {
      run_metrics_.RecordDurationNs("serve.handle_miss_ns", lc.handle_ns);
    }
  }

  if (opts_.events == nullptr) return;
  // One wide lifecycle record per request (docs/OBSERVABILITY.md):
  // everything needed to explain where this request's time went, on one
  // greppable line, joinable with the client via trace_id.
  obs::WideEvent event;
  if (!lc.id.empty()) event.Str("id", lc.id);
  if (!lc.op.empty()) event.Str("op", lc.op);
  if (!lc.scenario.empty()) event.Str("scenario", lc.scenario);
  if (!lc.trace_id.empty()) {
    event.Str("trace_id", lc.trace_id);
    event.Int("attempt", lc.attempt);
  }
  event.Str("outcome", lc.outcome);
  if (!lc.code.empty()) event.Str("code", lc.code);
  if (lc.queue_depth >= 0) event.Int("queue_depth", lc.queue_depth);
  if (lc.queue_ns >= 0) event.Int("queue_ns", lc.queue_ns);
  if (lc.compile_ns >= 0) event.Int("compile_ns", lc.compile_ns);
  if (lc.pipeline_ns >= 0) event.Int("pipeline_ns", lc.pipeline_ns);
  if (lc.journal_ns >= 0) event.Int("journal_ns", lc.journal_ns);
  if (lc.handle_ns >= 0) event.Int("handle_ns", lc.handle_ns);
  if (lc.respond_ns >= 0) event.Int("respond_ns", lc.respond_ns);
  opts_.events->Emit("request", event);
}

Result<std::string> Server::Compute(const Request& request,
                                    const CatalogEntry& entry,
                                    TimePoint start, bool* cacheable,
                                    Lifecycle* lc) {
  *cacheable = true;
  if (request.op == "lint") {
    // The fail-soft load already linted the scenario at catalog time;
    // the answer is a view of that verdict (pinning the artifact counts
    // as a cache touch like any other op).
    const TimePoint acquire_start = Clock::now();
    auto artifact = catalog_.Acquire(entry);
    lc->compile_ns = NsSince(acquire_start);
    if (!artifact.ok()) return artifact.status();
    std::string body = EscapedField("scenario", entry.name, true);
    body += ",\"degraded\":";
    body += entry.degraded ? "true" : "false";
    body += ",\"source_strees\":" +
            std::to_string((*artifact)->source.semantics().size());
    body += ",\"target_strees\":" +
            std::to_string((*artifact)->target.semantics().size());
    body += ",\"correspondences\":" +
            std::to_string((*artifact)->correspondences.size());
    body += EscapedField("diagnostics", entry.diagnostics);
    body += "}";
    return body;
  }

  const bool deadlined = request.deadline_ms > 0;
  auto expired = [&] {
    return deadlined && ElapsedMs(start) >= request.deadline_ms;
  };

  // The test hold: park here (responsively to drain-cancel and to the
  // request's own deadline) so tests can saturate the pool and observe
  // shedding/drain without timing luck.
  for (int64_t held = 0; held < opts_.request_hold_ms; held += 5) {
    if (drain_cancel_.load(std::memory_order_relaxed) || expired()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (drain_cancel_.load(std::memory_order_relaxed)) {
    return Status::DeadlineExceeded("cancelled before dispatch");
  }
  if (expired()) {
    return Status::DeadlineExceeded(
        "deadline expired before the pipeline started");
  }

  // Pin the compiled artifact: a hit is free, an evicted scenario
  // recompiles from its retained texts right here. The handle keeps the
  // artifact alive for the whole run even if eviction drops it — and the
  // lifecycle record's compile_ns shows which (an E213 caused by a slow
  // eviction-triggered recompile is visible as a fat compile stage).
  const TimePoint acquire_start = Clock::now();
  auto artifact = catalog_.Acquire(entry);
  lc->compile_ns = NsSince(acquire_start);
  if (!artifact.ok()) return artifact.status();
  const validate::LoadedScenario& scenario = **artifact;

  exec::SupervisorOptions sup;
  sup.jobs = 1;  // one worker thread = one supervised unit stream
  // Thread the REMAINING budget into the pipeline governor: time spent
  // queued or held is gone, and the resilient cascade degrades tiers
  // against what is actually left rather than overrunning the caller.
  sup.pipeline.deadline_ms =
      deadlined ? std::max<int64_t>(request.deadline_ms - ElapsedMs(start), 1)
                : opts_.default_deadline_ms;
  DiagnosticSink sink;
  sup.pipeline.sink = &sink;
  sup.cancel = &drain_cancel_;

  obs::ProvenanceRecorder provenance;
  obs::Metrics metrics;
  exec::RunContext ctx;
  ctx.metrics = &metrics;
  if (request.op == "explain") ctx.provenance = &provenance;
  if (opts_.events != nullptr) ctx.events = opts_.events;
  // Attribute this run's pipeline events to the request: the supervisor
  // stamps the trace_id onto every unit event it emits.
  ctx.trace_id = request.trace_id;

  const TimePoint pipeline_start = Clock::now();
  auto run = exec::RunSupervisedPipeline(scenario.source, scenario.target,
                                         scenario.correspondences, sup, ctx);
  lc->pipeline_ns = NsSince(pipeline_start);
  run_metrics_.MergeFrom(metrics);
  if (!run.ok()) return run.status();
  if (run->interrupted) {
    return Status::DeadlineExceeded("cancelled mid-run by drain");
  }
  // A caller-supplied deadline that degraded any table produced a body
  // other deadlines would not see: serve it, but keep it out of the
  // durable result cache.
  if (deadlined && run->run.report.AnyAtBaselineOrWorse() && !entry.degraded) {
    *cacheable = false;
  }

  if (request.op == "explain") return provenance.ToJson();

  // op == "map": the mapping set, tiers, and the degradation report —
  // timestamp-free on purpose, so identical requests yield identical
  // bytes (the idempotency and restart guarantees depend on it).
  std::string body = EscapedField("scenario", entry.name, true);
  body += ",\"degraded\":";
  body += (run->run.report.AnyAtBaselineOrWorse() || entry.degraded)
              ? "true"
              : "false";
  body += ",\"mappings\":[";
  bool first = true;
  for (const exec::ResilientMapping& m : run->run.mappings) {
    if (!first) body += ",";
    first = false;
    body += EscapedField("tier", exec::TierName(m.tier), true);
    body += EscapedField("tgd", m.tgd.ToString());
    if (!m.source_algebra.empty()) {
      body += EscapedField("source", m.source_algebra);
      body += EscapedField("target", m.target_algebra);
    }
    body += "}";
  }
  body += "]";
  body += EscapedField("report", run->run.report.ToString());
  body += "}";
  return body;
}

std::optional<std::string> Server::LookupResponse(const std::string& id) {
  std::lock_guard<std::mutex> lock(store_mu_);
  if (store_.has_value()) {
    const auto& units = store_->units();
    auto it = units.find("resp:" + id);
    if (it == units.end()) return std::nullopt;
    return it->second;
  }
  auto it = ephemeral_responses_.find(id);
  if (it == ephemeral_responses_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> Server::LookupResult(const std::string& key) {
  std::lock_guard<std::mutex> lock(store_mu_);
  if (store_.has_value()) {
    const auto& meta = store_->meta();
    auto it = meta.find(key);
    if (it == meta.end()) return std::nullopt;
    return it->second;
  }
  auto it = ephemeral_results_.find(key);
  if (it == ephemeral_results_.end()) return std::nullopt;
  return it->second;
}

Status Server::StoreResult(const std::string& key, const std::string& body) {
  std::lock_guard<std::mutex> lock(store_mu_);
  if (store_.has_value()) return store_->PutMeta(key, body);
  ephemeral_results_[key] = body;
  return Status::OK();
}

Status Server::StoreResponse(const std::string& id,
                             const std::string& response) {
  std::lock_guard<std::mutex> lock(store_mu_);
  if (store_.has_value()) return store_->PutUnit("resp:" + id, response);
  ephemeral_responses_[id] = response;
  return Status::OK();
}

std::string Server::StatsBody() const {
  const ArtifactCacheStats cache = catalog_.cache_stats();
  std::string body = "{\"scenarios\":" +
                     std::to_string(catalog_.entries.size());
  body += ",\"accepted\":" +
          std::to_string(accepted_.load(std::memory_order_relaxed));
  body += ",\"served\":" +
          std::to_string(served_.load(std::memory_order_relaxed));
  body += ",\"shed\":" + std::to_string(shed_.load(std::memory_order_relaxed));
  body += ",\"deadline_shed\":" +
          std::to_string(deadline_shed_.load(std::memory_order_relaxed));
  body += ",\"idempotent_hits\":" +
          std::to_string(idempotent_hits_.load(std::memory_order_relaxed));
  body += ",\"cache_hits\":" +
          std::to_string(cache_hits_.load(std::memory_order_relaxed));
  body += ",\"singleflight_leaders\":" +
          std::to_string(singleflight_leaders_.load(std::memory_order_relaxed));
  body += ",\"singleflight_followers\":" +
          std::to_string(
              singleflight_followers_.load(std::memory_order_relaxed));
  body += ",\"artifact_cache_hits\":" + std::to_string(cache.hits);
  body += ",\"artifact_cache_misses\":" + std::to_string(cache.misses);
  body += ",\"artifact_cache_evictions\":" + std::to_string(cache.evictions);
  body += ",\"artifact_cache_compiles\":" + std::to_string(cache.compiles);
  body += ",\"artifact_cache_bytes\":" + std::to_string(cache.bytes);
  body += ",\"artifact_cache_budget_bytes\":" +
          std::to_string(cache.budget_bytes);
  body += ",\"errors\":" +
          std::to_string(errors_.load(std::memory_order_relaxed));
  body += ",\"draining\":";
  body += draining_.load(std::memory_order_relaxed) ? "true" : "false";
  // The live telemetry document: pipeline counters plus the rolling
  // serve.*_ns latency histograms, snapshotted mid-load. semap_top's
  // whole display renders from this one member.
  body += ",\"metrics\":" + MetricsJson();
  body += "}";
  return body;
}

ServerStatsSnapshot Server::stats() const {
  ServerStatsSnapshot snapshot;
  snapshot.accepted = accepted_.load(std::memory_order_relaxed);
  snapshot.served = served_.load(std::memory_order_relaxed);
  snapshot.shed = shed_.load(std::memory_order_relaxed);
  snapshot.deadline_shed = deadline_shed_.load(std::memory_order_relaxed);
  snapshot.idempotent_hits = idempotent_hits_.load(std::memory_order_relaxed);
  snapshot.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  snapshot.singleflight_leaders =
      singleflight_leaders_.load(std::memory_order_relaxed);
  snapshot.singleflight_followers =
      singleflight_followers_.load(std::memory_order_relaxed);
  snapshot.errors = errors_.load(std::memory_order_relaxed);
  snapshot.draining = draining_.load(std::memory_order_relaxed);
  snapshot.scenarios = catalog_.entries.size();
  snapshot.artifact_cache = catalog_.cache_stats();
  return snapshot;
}

std::string Server::MetricsJson() const {
  // run_metrics_ synchronizes internally, so the merge is safe against
  // concurrent worker MergeFrom/RecordDurationNs calls without any
  // server-side lock.
  obs::Metrics merged;
  merged.MergeFrom(run_metrics_);
  // The serve.* counter taxonomy (docs/OBSERVABILITY.md): serve.cache_*
  // is the compiled-artifact cache, serve.result_cache_hits the durable
  // (op, scenario) body cache.
  const ArtifactCacheStats cache = catalog_.cache_stats();
  merged.Add("serve.accepted",
             static_cast<int64_t>(accepted_.load(std::memory_order_relaxed)));
  merged.Add("serve.served",
             static_cast<int64_t>(served_.load(std::memory_order_relaxed)));
  merged.Add("serve.shed",
             static_cast<int64_t>(shed_.load(std::memory_order_relaxed)));
  merged.Add(
      "serve.deadline_shed",
      static_cast<int64_t>(deadline_shed_.load(std::memory_order_relaxed)));
  merged.Add("serve.idempotent_hits",
             static_cast<int64_t>(
                 idempotent_hits_.load(std::memory_order_relaxed)));
  merged.Add(
      "serve.result_cache_hits",
      static_cast<int64_t>(cache_hits_.load(std::memory_order_relaxed)));
  merged.Add("serve.singleflight_leaders",
             static_cast<int64_t>(
                 singleflight_leaders_.load(std::memory_order_relaxed)));
  merged.Add("serve.singleflight_followers",
             static_cast<int64_t>(
                 singleflight_followers_.load(std::memory_order_relaxed)));
  merged.Add("serve.errors",
             static_cast<int64_t>(errors_.load(std::memory_order_relaxed)));
  merged.Add("serve.cache_hits", static_cast<int64_t>(cache.hits));
  merged.Add("serve.cache_misses", static_cast<int64_t>(cache.misses));
  merged.Add("serve.cache_evictions", static_cast<int64_t>(cache.evictions));
  merged.Add("serve.cache_compiles", static_cast<int64_t>(cache.compiles));
  merged.Add("serve.cache_bytes", static_cast<int64_t>(cache.bytes));
  return merged.ToJson();
}

Status Server::WriteMetricsSnapshot() const {
  if (opts_.metrics_path.empty()) return Status::OK();
  store::Env* env = opts_.io_env ? opts_.io_env : store::Env::Default();
  // tmp + fsync + rename: a crash mid-write leaves the previous snapshot
  // (or nothing) at metrics_path, never a torn JSON document.
  const std::string tmp_path = opts_.metrics_path + ".tmp";
  auto file = env->OpenTrunc(tmp_path);
  if (!file.ok()) return file.status();
  SEMAP_RETURN_NOT_OK((*file)->Write(MetricsJson() + "\n"));
  SEMAP_RETURN_NOT_OK((*file)->Sync());
  SEMAP_RETURN_NOT_OK((*file)->Close());
  return env->Rename(tmp_path, opts_.metrics_path);
}

}  // namespace semap::serve
