// The semap_serve daemon core: a crash-only request server over the
// discovery pipeline.
//
// Lifecycle: Start() loads the scenario catalog once (compiled CM
// graphs, s-trees, linted correspondences in a memory-budgeted artifact
// cache), opens the journaled response store keyed by the catalog
// fingerprint, and binds the listener. Serve() runs the accept loop on
// the calling thread and a fixed worker pool; each worker executes one
// request at a time through the supervised pipeline (exec/supervisor.h)
// under the request's own deadline and the server's drain-cancel flag.
//
// Robustness contract (tested by tests/serve_test.cc, documented in
// docs/SERVING.md):
//   * admission — accepted connections enter a bounded queue; when it
//     is full the acceptor immediately writes a coded SEMAP-E210 reject
//     and closes. Overload is always an explicit answer, never silent
//     queueing.
//   * idempotency — every ok response is journaled under its request id
//     *before* it is sent (fsync-then-respond). A retry with the same id
//     — including against a restarted server after kill -9 — returns
//     the stored bytes verbatim.
//   * crash-only — the only durable state is the journaled store
//     (PR 6); there is no repair step. Restart = replay.
//   * repeat traffic — computed result bodies are cached in the store
//     by (op, scenario), so repeated requests skip discovery entirely
//     (and survive restarts). "cache":"bypass" forces recomputation.
//   * memory budget — compiled artifacts live in the catalog's budgeted
//     LRU (serve/catalog.h). Under pressure cold scenarios are evicted
//     and recompile transparently on next touch; in-flight requests pin
//     their artifact so eviction never yanks memory mid-run.
//   * single-flight — concurrent cache-miss requests for the same
//     (op, scenario) coalesce onto one computation: a leader runs the
//     pipeline, followers wait on the flight and then journal their OWN
//     idempotent response from the shared body. "cache":"bypass"
//     requests never coalesce (the bench measures raw latency).
//   * deadline shedding — a request whose deadline_ms already expired
//     (queue wait, hold, or follower wait) is dropped with the
//     retryable SEMAP-E213 reject before any expensive work; the
//     remaining budget is threaded into the pipeline governor so
//     in-flight work degrades instead of overrunning its caller.
//   * drain — when the stop flag rises the listener closes, queued
//     connections get SEMAP-E211, in-flight requests finish; past the
//     drain deadline they are cancelled through the supervisor's
//     cooperative flag and answered SEMAP-E212. Then Serve returns.
//   * fault seams — all store I/O goes through ServerOptions::io_env,
//     all socket ops through ServerOptions::net_fault (store/env.h), so
//     the crash matrix can kill the daemon at any syscall of a served
//     request.
#ifndef SEMAP_SERVE_SERVER_H_
#define SEMAP_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/events.h"
#include "obs/metrics.h"
#include "serve/catalog.h"
#include "serve/protocol.h"
#include "serve/socket.h"
#include "store/env.h"
#include "store/mapping_store.h"
#include "util/result.h"

namespace semap::serve {

struct ServerOptions {
  std::string catalog_dir;
  /// Listen on a unix socket when non-empty; otherwise TCP.
  std::string unix_path;
  /// TCP port when unix_path is empty (0 = ephemeral, read tcp_port()).
  int tcp_port = 0;
  size_t workers = 2;
  /// Accepted-but-unclaimed connections; beyond this the acceptor sheds
  /// with SEMAP-E210.
  size_t queue_capacity = 8;
  /// Budget for the compiled-artifact cache; 0 = unbounded (never
  /// evict). CLI: --cache-budget-mb.
  size_t cache_budget_bytes = 0;
  /// Per-connection read/write timeout (slow-client protection).
  int64_t io_timeout_ms = 5000;
  /// Deadline applied to requests that do not carry their own.
  int64_t default_deadline_ms = -1;
  /// Budget for in-flight requests after the stop flag rises; past it
  /// they are cooperatively cancelled (SEMAP-E212).
  int64_t drain_deadline_ms = 2000;
  /// Test hook: hold each computed request this long before running the
  /// pipeline, so shed/drain/deadline races become deterministic.
  int64_t request_hold_ms = 0;
  /// Journaled response store; empty = ephemeral (in-memory) idempotency
  /// only. The store's fingerprint is the catalog's.
  std::string store_path;
  /// Store I/O seam (Env::Default() when null).
  store::Env* io_env = nullptr;
  /// Socket fault seam; null = no injection.
  store::FaultEnv* net_fault = nullptr;
  /// Wide-event stream (semap.events.v1); not owned, may be null.
  obs::EventEmitter* events = nullptr;
  /// Live-telemetry snapshot file (semap.metrics.v1). Written through
  /// the io_env's tmp+fsync+rename discipline, so a reader never sees a
  /// torn document — only the previous complete snapshot. Empty = none.
  std::string metrics_path;
  /// Rewrite metrics_path every N ms while serving (0 = only the final
  /// write), closing the kill -9 window of an at-exit-only export.
  int64_t metrics_interval_ms = 0;
};

struct ServerStatsSnapshot {
  uint64_t accepted = 0;
  uint64_t served = 0;
  uint64_t shed = 0;
  /// Requests dropped because their deadline expired before the
  /// pipeline ran (SEMAP-E213).
  uint64_t deadline_shed = 0;
  uint64_t idempotent_hits = 0;
  /// Durable (op, scenario) result-cache hits.
  uint64_t cache_hits = 0;
  uint64_t singleflight_leaders = 0;
  uint64_t singleflight_followers = 0;
  uint64_t errors = 0;
  bool draining = false;
  size_t scenarios = 0;
  /// Compiled-artifact cache (hits/misses/evictions/bytes).
  ArtifactCacheStats artifact_cache;
};

class Server {
 public:
  static Result<std::unique_ptr<Server>> Start(ServerOptions opts);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;
  ~Server();

  /// Accept and serve until `stop` reads true, then drain. Returns OK on
  /// a clean drain; the injected-crash status when the fault environment
  /// killed the process mid-serve (the test then "restarts" by calling
  /// Start again on the same store).
  Status Serve(const std::atomic<bool>& stop);

  /// Bound TCP port (-1 on unix sockets); lets tests use port 0.
  int tcp_port() const { return listener_->port(); }
  const Catalog& catalog() const { return catalog_; }
  ServerStatsSnapshot stats() const;

  /// semap.metrics.v1 over everything this server ran: per-request
  /// pipeline metrics and the rolling serve latency histograms merged
  /// with the serve.* counter taxonomy (docs/OBSERVABILITY.md). Safe to
  /// call at any time, including mid-load — obs::Metrics snapshots under
  /// its own lock and the counters are atomics.
  std::string MetricsJson() const;

  /// Write MetricsJson() to opts.metrics_path via tmp+fsync+rename on
  /// the server's io_env (Env::Default() when null). No-op OK when no
  /// path is configured. The periodic snapshot thread calls this every
  /// metrics_interval_ms; callers invoke it once more after Serve for
  /// the final authoritative write.
  Status WriteMetricsSnapshot() const;

 private:
  using TimePoint = std::chrono::steady_clock::time_point;

  /// One admitted connection plus when the acceptor admitted it — the
  /// start of the first request's deadline clock (queue wait counts
  /// against the caller's patience).
  struct QueuedConn {
    std::unique_ptr<Conn> conn;
    TimePoint admitted;
  };

  /// One in-flight (op, scenario) computation that concurrent cache
  /// misses coalesce onto. The leader computes and publishes; followers
  /// wait on `cv`, then journal their own responses from the shared
  /// outcome.
  struct Flight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status = Status::OK();
    std::string body;
  };

  explicit Server(ServerOptions opts) : opts_(std::move(opts)) {}

  /// One request's flight record: what happened (outcome + code) and
  /// where the time went, in monotonic nanoseconds per stage (-1 = stage
  /// not reached). Fed to FinishRequest for the wide-event lifecycle
  /// record and the rolling latency histograms.
  struct Lifecycle {
    std::string id;
    std::string op;
    std::string scenario;
    std::string trace_id;
    int64_t attempt = 0;
    /// computed | cached | replayed | coalesced | ok (ping/stats) |
    /// shed | deadline_shed | drain_rejected | drain_cancelled |
    /// bad_frame | bad_request | error.
    std::string outcome;
    /// SEMAP-E2xx on non-ok outcomes, empty otherwise.
    std::string code;
    int64_t queue_ns = -1;     ///< admission → worker dispatch
    int64_t compile_ns = -1;   ///< artifact acquire (≈0 on cache hit)
    int64_t pipeline_ns = -1;  ///< supervised discovery run
    int64_t journal_ns = -1;   ///< result-cache + response appends
    int64_t handle_ns = -1;    ///< dispatch → response ready
    int64_t respond_ns = -1;   ///< response write to the socket
    /// Admission-shed context (E210 only).
    int64_t queue_depth = -1;
  };

  void WorkerLoop();
  void HandleConn(QueuedConn queued);
  std::string HandleRequest(const Request& request, TimePoint start,
                            Lifecycle* lc);
  /// Run the pipeline (or answer lint). `cacheable` is cleared when the
  /// body was shaped by the caller's deadline (degraded tiers) and must
  /// not poison the durable result cache.
  Result<std::string> Compute(const Request& request,
                              const CatalogEntry& entry, TimePoint start,
                              bool* cacheable, Lifecycle* lc);
  /// Map a Compute failure onto the response contract: drain-cancel →
  /// E212 reject, expired deadline → E213 reject (counted as
  /// deadline_shed, not error), anything else → E203 error.
  std::string FailureResponse(const Request& request, const Status& status,
                              Lifecycle* lc, TimePoint dispatched);
  /// Record the rolling latency histograms and append the one lifecycle
  /// record per request to the event stream (zero cost when events off).
  void FinishRequest(const Lifecycle& lc);

  /// Stored response / cached result body lookups and journaling (the
  /// store is not thread-safe; store_mu_ serializes it).
  std::optional<std::string> LookupResponse(const std::string& id);
  std::optional<std::string> LookupResult(const std::string& key);
  Status StoreResult(const std::string& key, const std::string& body);
  Status StoreResponse(const std::string& id, const std::string& response);

  std::string StatsBody() const;

  ServerOptions opts_;
  Catalog catalog_;
  std::unique_ptr<Listener> listener_;
  std::optional<store::MappingStore> store_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<QueuedConn> queue_;
  std::vector<std::thread> workers_;

  std::atomic<bool> draining_{false};
  /// The supervisor cancel flag shared by every in-flight request: set
  /// when the drain deadline expires.
  std::atomic<bool> drain_cancel_{false};
  std::atomic<size_t> active_{0};

  std::mutex store_mu_;
  std::map<std::string, std::string> ephemeral_responses_;
  std::map<std::string, std::string> ephemeral_results_;

  /// Single-flight table: result key → the in-flight computation.
  std::mutex flights_mu_;
  std::map<std::string, std::shared_ptr<Flight>> flights_;

  /// Pipeline metrics merged from every computed request, plus the
  /// rolling serve.*_ns latency histograms. obs::Metrics synchronizes
  /// internally, so workers record and SnapshotJson reads concurrently.
  obs::Metrics run_metrics_;

  /// Periodic metrics snapshot writer (metrics_interval_ms > 0).
  std::mutex snapshot_mu_;
  std::condition_variable snapshot_cv_;
  bool snapshot_stop_ = false;
  std::thread snapshot_thread_;

  mutable std::atomic<uint64_t> accepted_{0};
  mutable std::atomic<uint64_t> served_{0};
  mutable std::atomic<uint64_t> shed_{0};
  mutable std::atomic<uint64_t> deadline_shed_{0};
  mutable std::atomic<uint64_t> idempotent_hits_{0};
  mutable std::atomic<uint64_t> cache_hits_{0};
  mutable std::atomic<uint64_t> singleflight_leaders_{0};
  mutable std::atomic<uint64_t> singleflight_followers_{0};
  mutable std::atomic<uint64_t> errors_{0};
};

}  // namespace semap::serve

#endif  // SEMAP_SERVE_SERVER_H_
