// Sockets behind the same seam as the store's filesystem I/O.
//
// The serving layer never calls accept/recv/send/close directly; it goes
// through Conn/Listener, and the fault-injecting wrappers route every
// operation through a store::FaultEnv (store/env.h) — the registry the
// crash-matrix tests already sweep. That makes "the peer reset us after
// half a frame" and "the process died inside send" injectable at the
// k-th occurrence, against an unmodified server, via SEMAP_IO_FAULT
// specs like "recv:2:reset" or "send:1:short".
//
// Two transports: unix-domain sockets (the default for a local daemon;
// the socket file is unlinked on listen and on close) and TCP on
// 127.0.0.1-style hosts (port 0 binds an ephemeral port, read it back
// with port() — tests use this to avoid collisions). Accepted and
// dialed sockets carry SO_RCVTIMEO/SO_SNDTIMEO so a slow or stalled
// peer costs a bounded wait, never a wedged worker.
#ifndef SEMAP_SERVE_SOCKET_H_
#define SEMAP_SERVE_SOCKET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "store/env.h"
#include "util/result.h"

namespace semap::serve {

/// \brief One byte-stream connection. Read returns 0 at EOF; WriteAll
/// loops until everything is sent or the connection fails.
class Conn {
 public:
  virtual ~Conn() = default;
  virtual Result<size_t> Read(char* buf, size_t max) = 0;
  virtual Status WriteAll(std::string_view data) = 0;
  virtual Status Close() = 0;
};

/// \brief A listening socket. Accept blocks (polling `stop` a few times
/// a second) until a peer connects, `stop` reads true — then it returns
/// NotFound("listener stopped") — or the transport fails.
class Listener {
 public:
  virtual ~Listener() = default;
  virtual Result<std::unique_ptr<Conn>> Accept(
      const std::atomic<bool>& stop) = 0;
  /// Bound TCP port (-1 for unix sockets); lets tests listen on port 0.
  virtual int port() const { return -1; }
  virtual Status Close() = 0;
};

struct SocketOptions {
  /// SO_RCVTIMEO/SO_SNDTIMEO on every connection; <= 0 = no timeout.
  int64_t io_timeout_ms = 5000;
};

Result<std::unique_ptr<Listener>> ListenUnix(const std::string& path,
                                             const SocketOptions& opts = {});
Result<std::unique_ptr<Listener>> ListenTcp(int port,
                                            const SocketOptions& opts = {});
Result<std::unique_ptr<Conn>> DialUnix(const std::string& path,
                                       const SocketOptions& opts = {});
Result<std::unique_ptr<Conn>> DialTcp(const std::string& host, int port,
                                      const SocketOptions& opts = {});

/// Route every op of `base` through `env`'s fault registry (env not
/// owned, must outlive the wrapper). A short-write verdict delivers the
/// surviving prefix before the connection dies — exactly what a torn
/// peer leaves on the wire.
std::unique_ptr<Conn> FaultInjectedConn(std::unique_ptr<Conn> base,
                                        store::FaultEnv* env);
std::unique_ptr<Listener> FaultInjectedListener(std::unique_ptr<Listener> base,
                                                store::FaultEnv* env);

}  // namespace semap::serve

#endif  // SEMAP_SERVE_SOCKET_H_
