#include "serve/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace semap::serve {

namespace {

using store::FaultEnv;
using store::IoOp;
using store::SocketVerdict;

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

void SetTimeouts(int fd, int64_t ms) {
  if (ms <= 0) return;
  timeval tv;
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

class PosixConn : public Conn {
 public:
  explicit PosixConn(int fd) : fd_(fd) {}
  ~PosixConn() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Result<size_t> Read(char* buf, size_t max) override {
    if (fd_ < 0) return Status::Internal("read on closed connection");
    while (true) {
      const ssize_t n = ::recv(fd_, buf, max, 0);
      if (n >= 0) return static_cast<size_t>(n);
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("recv timed out");
      }
      return Errno("recv failed");
    }
  }

  Status WriteAll(std::string_view data) override {
    if (fd_ < 0) return Status::Internal("write on closed connection");
    size_t sent = 0;
    while (sent < data.size()) {
      // MSG_NOSIGNAL: a vanished peer is a return code, not a SIGPIPE.
      const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          return Status::DeadlineExceeded("send timed out");
        }
        return Errno("send failed");
      }
      sent += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return Errno("close failed");
    return Status::OK();
  }

 private:
  int fd_;
};

class PosixListener : public Listener {
 public:
  PosixListener(int fd, std::string unlink_path, int port,
                SocketOptions opts)
      : fd_(fd),
        unlink_path_(std::move(unlink_path)),
        port_(port),
        opts_(opts) {}
  ~PosixListener() override { (void)Close(); }

  Result<std::unique_ptr<Conn>> Accept(const std::atomic<bool>& stop) override {
    while (true) {
      if (stop.load(std::memory_order_relaxed)) {
        return Status::NotFound("listener stopped");
      }
      if (fd_ < 0) return Status::Internal("accept on closed listener");
      pollfd pfd;
      pfd.fd = fd_;
      pfd.events = POLLIN;
      pfd.revents = 0;
      // A short poll quantum keeps the stop flag responsive without a
      // self-pipe: drain latency is bounded by ~200ms, not a blocked
      // accept.
      const int ready = ::poll(&pfd, 1, 200);
      if (ready < 0) {
        if (errno == EINTR) continue;
        return Errno("poll failed");
      }
      if (ready == 0) continue;
      const int conn_fd = ::accept(fd_, nullptr, nullptr);
      if (conn_fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        return Errno("accept failed");
      }
      SetTimeouts(conn_fd, opts_.io_timeout_ms);
      return std::unique_ptr<Conn>(new PosixConn(conn_fd));
    }
  }

  int port() const override { return port_; }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int fd = fd_;
    fd_ = -1;
    ::close(fd);
    if (!unlink_path_.empty()) ::unlink(unlink_path_.c_str());
    return Status::OK();
  }

 private:
  int fd_;
  std::string unlink_path_;
  int port_;
  SocketOptions opts_;
};

// --- fault-injecting wrappers --------------------------------------------

class FaultConn : public Conn {
 public:
  FaultConn(std::unique_ptr<Conn> base, FaultEnv* env)
      : base_(std::move(base)), env_(env) {}

  Result<size_t> Read(char* buf, size_t max) override {
    if (!pending_.ok()) {
      // The previous short read delivered its surviving prefix; the
      // connection is gone now.
      Status failed = pending_;
      pending_ = Status::OK();
      return failed;
    }
    const SocketVerdict verdict = env_->HitSocket(IoOp::kRecv, max);
    if (verdict.status.ok()) return base_->Read(buf, max);
    if (verdict.budget == 0) return verdict.status;
    // Short read: hand over what "arrived" before the peer vanished,
    // fail on the next call.
    auto got = base_->Read(buf, std::min(max, verdict.budget));
    if (!got.ok()) return got;
    pending_ = verdict.status;
    return got;
  }

  Status WriteAll(std::string_view data) override {
    const SocketVerdict verdict = env_->HitSocket(IoOp::kSend, data.size());
    if (verdict.status.ok()) return base_->WriteAll(data);
    if (verdict.budget > 0) {
      // Deliver the surviving prefix: the peer sees a torn frame, which
      // its CRC check must reject.
      (void)base_->WriteAll(data.substr(0, verdict.budget));
    }
    return verdict.status;
  }

  Status Close() override {
    const SocketVerdict verdict = env_->HitSocket(IoOp::kClose, 0);
    Status closed = base_->Close();
    if (!verdict.status.ok()) return verdict.status;
    return closed;
  }

 private:
  std::unique_ptr<Conn> base_;
  FaultEnv* env_;
  Status pending_;
};

class FaultListener : public Listener {
 public:
  FaultListener(std::unique_ptr<Listener> base, FaultEnv* env)
      : base_(std::move(base)), env_(env) {}

  Result<std::unique_ptr<Conn>> Accept(const std::atomic<bool>& stop) override {
    const SocketVerdict verdict = env_->HitSocket(IoOp::kAccept, 0);
    if (!verdict.status.ok()) return verdict.status;
    auto conn = base_->Accept(stop);
    if (!conn.ok()) return conn.status();
    return std::unique_ptr<Conn>(new FaultConn(std::move(*conn), env_));
  }

  int port() const override { return base_->port(); }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<Listener> base_;
  FaultEnv* env_;
};

}  // namespace

Result<std::unique_ptr<Listener>> ListenUnix(const std::string& path,
                                             const SocketOptions& opts) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket failed");
  ::unlink(path.c_str());  // a stale socket file from a crashed daemon
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Errno("bind " + path + " failed");
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) != 0) {
    Status status = Errno("listen failed");
    ::close(fd);
    ::unlink(path.c_str());
    return status;
  }
  return std::unique_ptr<Listener>(new PosixListener(fd, path, -1, opts));
}

Result<std::unique_ptr<Listener>> ListenTcp(int port,
                                            const SocketOptions& opts) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Errno("bind 127.0.0.1:" + std::to_string(port) +
                          " failed");
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) != 0) {
    Status status = Errno("listen failed");
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  int bound = port;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    bound = ntohs(addr.sin_port);
  }
  return std::unique_ptr<Listener>(new PosixListener(fd, "", bound, opts));
}

Result<std::unique_ptr<Conn>> DialUnix(const std::string& path,
                                       const SocketOptions& opts) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket failed");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Errno("connect " + path + " failed");
    ::close(fd);
    return status;
  }
  SetTimeouts(fd, opts.io_timeout_ms);
  return std::unique_ptr<Conn>(new PosixConn(fd));
}

Result<std::unique_ptr<Conn>> DialTcp(const std::string& host, int port,
                                      const SocketOptions& opts) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket failed");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Errno("connect " + host + ":" + std::to_string(port) +
                          " failed");
    ::close(fd);
    return status;
  }
  SetTimeouts(fd, opts.io_timeout_ms);
  return std::unique_ptr<Conn>(new PosixConn(fd));
}

std::unique_ptr<Conn> FaultInjectedConn(std::unique_ptr<Conn> base,
                                        store::FaultEnv* env) {
  return std::unique_ptr<Conn>(new FaultConn(std::move(base), env));
}

std::unique_ptr<Listener> FaultInjectedListener(std::unique_ptr<Listener> base,
                                                store::FaultEnv* env) {
  return std::unique_ptr<Listener>(new FaultListener(std::move(base), env));
}

}  // namespace semap::serve
