// The scenario catalog: every compiled artifact a served request needs,
// loaded once at daemon startup and kept hot.
//
// A scenario is a directory holding the seven artifact files semap_map
// takes positionally (source.schema/cm/sem, target.schema/cm/sem,
// correspondences.txt); the catalog scans a root directory for such
// subdirectories and loads each one fail-soft through the quarantining
// scenario loader (validate/scenario_loader.h). What survives — the
// compiled CM graphs, inferred s-trees and linted correspondences inside
// the AnnotatedSchemas — is exactly the state a request-time run would
// otherwise recompute from text, so serving skips all parsing and
// compilation.
//
// Each entry carries the PR 4 scenario fingerprint; the catalog's
// combined fingerprint (order-independent over entries) keys the
// daemon's journaled response store, so a restarted daemon refuses a
// store written for a different catalog instead of replaying stale
// responses.
#ifndef SEMAP_SERVE_CATALOG_H_
#define SEMAP_SERVE_CATALOG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "validate/scenario_loader.h"
#include "util/result.h"

namespace semap::serve {

struct CatalogEntry {
  std::string name;
  validate::LoadedScenario scenario;
  uint64_t fingerprint = 0;
  /// The fail-soft load dropped something (quarantined artifact,
  /// dangling correspondence). The entry still serves; responses carry
  /// degraded tiers like any resilient run.
  bool degraded = false;
  /// The load's collected diagnostics, for lint responses and logs.
  std::string diagnostics;
};

struct Catalog {
  std::map<std::string, CatalogEntry> entries;
  /// Combined over all entries, order-independent.
  uint64_t fingerprint = 0;
  /// Subdirectories skipped for missing artifact files.
  std::vector<std::string> skipped;

  const CatalogEntry* Find(const std::string& name) const {
    auto it = entries.find(name);
    return it == entries.end() ? nullptr : &it->second;
  }
};

/// Scan `dir` and load every scenario subdirectory. Errors only when the
/// directory is unreadable or NO scenario loads — a half-broken catalog
/// serves its good half (the skipped list says what was dropped).
Result<Catalog> LoadCatalog(const std::string& dir);

}  // namespace semap::serve

#endif  // SEMAP_SERVE_CATALOG_H_
