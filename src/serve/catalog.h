// The scenario catalog: every artifact a served request needs, found
// once at daemon startup — and a memory-budgeted cache of the compiled
// form.
//
// A scenario is a directory holding the seven artifact files semap_map
// takes positionally (source.schema/cm/sem, target.schema/cm/sem,
// correspondences.txt); the catalog scans a root directory for such
// subdirectories and loads each one fail-soft through the quarantining
// scenario loader (validate/scenario_loader.h). What survives — the
// compiled CM graphs, inferred s-trees and linted correspondences inside
// the AnnotatedSchemas — is exactly the state a request-time run would
// otherwise recompute from text.
//
// Memory model (PR 9): the compiled artifacts no longer live forever.
// Each CatalogEntry is the cheap, always-resident part — name,
// fingerprint, load diagnostics, and the raw artifact *texts* — while
// the expensive compiled form lives in an ArtifactCache: a budgeted LRU
// keyed by the scenario's checkpoint fingerprint. Under a byte budget
// (--cache-budget-mb) cold entries are evicted and transparently
// recompiled from the retained texts on their next touch; recompiling
// from the retained bytes (not the directory, which may have changed)
// keeps a recompile deterministic, and the fingerprint is re-checked to
// prove it. Entries pinned by in-flight requests (shared_ptr handles)
// are never reclaimed mid-request: eviction drops the cache's
// reference, the memory is freed when the last request lets go.
// Concurrent misses for the same fingerprint coalesce onto one compile.
//
// Each entry carries the PR 4 scenario fingerprint; the catalog's
// combined fingerprint (order-independent over entries) keys the
// daemon's journaled response store, so a restarted daemon refuses a
// store written for a different catalog instead of replaying stale
// responses.
#ifndef SEMAP_SERVE_CATALOG_H_
#define SEMAP_SERVE_CATALOG_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "validate/scenario_loader.h"
#include "util/result.h"

namespace semap::serve {

/// A pinned, immutable view of one compiled scenario. Holding the
/// handle keeps the artifact alive even if the cache evicts it.
using ArtifactHandle = std::shared_ptr<const validate::LoadedScenario>;

struct CatalogEntry {
  std::string name;
  /// The retained artifact texts: an evicted scenario recompiles from
  /// these exact bytes, so the recompile cannot drift from the load.
  validate::ScenarioTexts texts;
  uint64_t fingerprint = 0;
  /// Estimated resident bytes of the compiled artifact (schemas, CM
  /// graphs, s-trees, correspondences), measured at first compile.
  size_t artifact_bytes = 0;
  /// The fail-soft load dropped something (quarantined artifact,
  /// dangling correspondence). The entry still serves; responses carry
  /// degraded tiers like any resilient run.
  bool degraded = false;
  /// The load's collected diagnostics, for lint responses and logs.
  std::string diagnostics;
};

struct ArtifactCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  /// Compiles actually run (== misses minus coalesced waiters).
  uint64_t compiles = 0;
  /// Estimated bytes resident in the cache right now.
  size_t bytes = 0;
  /// Configured budget; 0 = unbounded.
  size_t budget_bytes = 0;
};

/// The budgeted LRU of compiled scenarios, keyed by fingerprint.
/// Thread-safe: serve workers Acquire concurrently; misses for the same
/// fingerprint coalesce onto a single compile (waiters block until the
/// builder publishes). Over-budget eviction walks cold-to-hot and skips
/// entries pinned by outstanding handles and entries mid-compile.
class ArtifactCache {
 public:
  /// `budget_bytes` = 0 means unbounded (never evict).
  explicit ArtifactCache(size_t budget_bytes) : budget_bytes_(budget_bytes) {}

  /// The compiled artifact for `entry`: a hit pins and returns it; a
  /// miss recompiles from the entry's retained texts (verifying the
  /// fingerprint), inserts, then evicts cold unpinned entries until the
  /// budget holds again.
  Result<ArtifactHandle> Acquire(const CatalogEntry& entry);

  /// Insert an already-compiled artifact (startup priming). Counts
  /// toward the budget and may evict, but not toward hit/miss/compile
  /// stats — the load would have compiled it regardless.
  void Prime(const CatalogEntry& entry, ArtifactHandle artifact);

  ArtifactCacheStats stats() const;

 private:
  struct Slot {
    ArtifactHandle artifact;  // null while a builder is compiling
    size_t bytes = 0;
    bool building = false;
    std::list<uint64_t>::iterator lru_it;
  };

  void InsertLocked(uint64_t fingerprint, Slot& slot, ArtifactHandle artifact,
                    size_t bytes);
  void EvictOverBudgetLocked();

  const size_t budget_bytes_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<uint64_t, Slot> slots_;
  /// Most-recently-used first.
  std::list<uint64_t> lru_;
  size_t bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t compiles_ = 0;
};

struct Catalog {
  std::map<std::string, CatalogEntry> entries;
  /// Combined over all entries, order-independent.
  uint64_t fingerprint = 0;
  /// Subdirectories skipped for missing artifact files.
  std::vector<std::string> skipped;
  /// The budgeted compiled-artifact cache (always present after
  /// LoadCatalog; shared_ptr keeps Catalog movable).
  std::shared_ptr<ArtifactCache> cache;

  const CatalogEntry* Find(const std::string& name) const {
    auto it = entries.find(name);
    return it == entries.end() ? nullptr : &it->second;
  }

  /// Pin the compiled artifact for `entry`, recompiling if it was
  /// evicted. `entry` must belong to this catalog.
  Result<ArtifactHandle> Acquire(const CatalogEntry& entry) const {
    return cache->Acquire(entry);
  }

  ArtifactCacheStats cache_stats() const { return cache->stats(); }
};

/// Deterministic estimate of the resident bytes of one compiled
/// scenario (containers, strings, graph nodes/edges, s-trees). Keys the
/// cache's budget accounting; exposed for tests.
size_t EstimateScenarioBytes(const validate::LoadedScenario& scenario);

/// Scan `dir` and load every scenario subdirectory. Errors only when the
/// directory is unreadable or NO scenario loads — a half-broken catalog
/// serves its good half (the skipped list says what was dropped).
/// Every loaded scenario is compiled once (fingerprints and diagnostics
/// need it) and primed into the cache under `cache_budget_bytes`
/// (0 = unbounded): an over-budget catalog starts cold and recompiles
/// per touch rather than refusing to serve.
Result<Catalog> LoadCatalog(const std::string& dir,
                            size_t cache_budget_bytes = 0);

}  // namespace semap::serve

#endif  // SEMAP_SERVE_CATALOG_H_
