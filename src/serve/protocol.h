// semap.rpc.v1 — the length-prefixed, CRC-framed request protocol.
//
// One frame per message, in the journal's textual idiom (store/journal.h)
// so a frame is greppable on the wire and validatable outside the binary:
//
//   semap.rpc.v1 <length> <crc32>\n
//   <payload bytes>\n
//
// <length> is the payload's byte count in decimal, <crc32> the zlib-
// polynomial CRC of exactly those bytes as 8 lowercase hex digits
// (util/crc32.h — the same checksum the Python validators recompute).
// The trailing newline is framing, not payload. A reader that sees a
// bad header, an oversized length, or a CRC mismatch must treat the
// connection as poisoned: framing is how the stream stays in sync, so
// there is no resynchronizing past a torn frame.
//
// The payload is one JSON object. Requests:
//
//   {"id":"r1","op":"map","scenario":"bookstore","deadline_ms":2000,
//    "priority":0,"cache":"bypass"}
//
// `id` is the idempotency key: the server journals every ok response
// under its id before sending it, so a retry with the same id returns
// the stored bytes verbatim — byte-identical, even across a server
// kill and restart. Ops: map, explain, lint, ping, stats. Responses:
//
//   {"schema":"semap.rpc.v1","id":"r1","status":"ok","code":"",
//    "detail":"","body":{...}}
//
// `status` is ok | reject | error; `code` carries the SEMAP-E2xx code on
// non-ok responses (docs/SERVING.md has the table). `body` is always the
// LAST member and holds the op's result verbatim — an explain body is a
// complete semap.explain.v1 document, so a client can slice it out
// byte-exactly and feed it to semap_explain or check_obs_json.py.
//
// Tracing (optional, both directions): a request may carry `trace_id`
// (an opaque correlation id the client mints) and `attempt` (0-based,
// incremented per retry of the same id). A server that understands them
// echoes both in the envelope — between `detail` and `body` — together
// with a `server_timing` object of per-stage nanosecond durations, so
// the client's --timing view and the server's --events stream join on
// the id. Both sides tolerate the fields' absence: an old client never
// sends them (and gets the old envelope byte-for-byte), an old server
// ignores unknown request members. Note the idempotency consequence: a
// replayed id returns the journaled envelope verbatim, so its trace
// echo and timings are the ORIGINAL attempt's — by design, since the
// replay's cost is the lookup, not the work it describes.
#ifndef SEMAP_SERVE_PROTOCOL_H_
#define SEMAP_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/socket.h"
#include "util/result.h"

namespace semap::serve {

inline constexpr const char kRpcSchema[] = "semap.rpc.v1";
/// Frames above this are a protocol error, not an allocation request.
inline constexpr size_t kMaxFrameBytes = 16u << 20;

// The serving layer's diagnostic codes, in the repo-wide SEMAP-Exxx
// space (util/diag.h owns E0xx; E2xx is the serving range).
inline constexpr const char kErrBadFrame[] = "SEMAP-E200";
inline constexpr const char kErrBadRequest[] = "SEMAP-E201";
inline constexpr const char kErrUnknownScenario[] = "SEMAP-E202";
inline constexpr const char kErrInternal[] = "SEMAP-E203";
// E210–E213 are all status "reject": the request was not served and the
// server is intact, so a retry (with backoff, against the same or
// another replica) is the correct client response. E213 specifically
// means the request's own deadline_ms expired before the pipeline ran
// (queue wait, admission hold, or coalesced-flight wait) — retry with a
// fresh deadline.
inline constexpr const char kErrOverloaded[] = "SEMAP-E210";
inline constexpr const char kErrDraining[] = "SEMAP-E211";
inline constexpr const char kErrCancelled[] = "SEMAP-E212";
inline constexpr const char kErrDeadlineShed[] = "SEMAP-E213";

/// Wrap `payload` in one wire frame.
std::string EncodeFrame(std::string_view payload);

/// Read exactly one frame off `conn`. NotFound = clean EOF before any
/// header byte (the peer simply left); ParseError = torn or corrupt
/// frame (poisoned stream — respond E200 at most, then close).
Result<std::string> ReadFrame(Conn& conn);

/// Encode + send one frame.
Status WriteFrame(Conn& conn, std::string_view payload);

struct Request {
  std::string id;
  std::string op;        // map | explain | lint | ping | stats
  std::string scenario;  // required for map/explain/lint
  int64_t deadline_ms = -1;
  int64_t priority = 0;
  /// "cache":"bypass" — recompute even when a cached result exists (the
  /// bench uses this to measure discovery latency under load).
  bool cache_bypass = false;
  /// Optional client-minted correlation id; empty = untraced request
  /// (the envelope then carries no trace echo and no server_timing).
  std::string trace_id;
  /// 0-based retry attempt for this id; retries reuse the trace_id and
  /// increment this, so the server's event stream shows the whole story.
  int64_t attempt = 0;
};

/// Parse and validate one request payload. InvalidArgument explains
/// what's missing or mistyped (the server relays it as E201).
Result<Request> ParseRequest(std::string_view payload);

/// Per-request trace echo + server-side stage durations, rendered into
/// the envelope between `detail` and `body` when the request carried a
/// trace_id. Stages < 0 were not reached and are omitted. The envelope's
/// numbers are measured up to the moment the response is rendered (they
/// must be inside the journaled bytes), so `journal_ns` here covers the
/// result-cache append only; the server's --events lifecycle record is
/// the authoritative full accounting.
struct ResponseMeta {
  std::string trace_id;
  int64_t attempt = 0;
  int64_t queue_ns = -1;     ///< admission → worker dispatch
  int64_t compile_ns = -1;   ///< artifact acquire (≈0 on a cache hit)
  int64_t pipeline_ns = -1;  ///< supervised discovery run
  int64_t journal_ns = -1;   ///< durable result-cache append
  int64_t handle_ns = -1;    ///< dispatch → response rendered
};

/// Response envelopes. `body_json` must be a complete JSON value; it is
/// spliced in verbatim as the final member. The `meta` overloads add the
/// trace echo and `server_timing` when meta.trace_id is non-empty, and
/// render the plain envelope (byte-identical to the no-meta overload)
/// when it is empty — the untraced wire format never changes.
std::string OkResponse(const std::string& id, std::string_view body_json);
std::string OkResponse(const std::string& id, const ResponseMeta& meta,
                       std::string_view body_json);
/// `status` is "reject" (admission/drain decisions) or "error".
std::string ErrorResponse(const std::string& id, std::string_view status,
                          std::string_view code, std::string_view detail);
std::string ErrorResponse(const std::string& id, std::string_view status,
                          std::string_view code, std::string_view detail,
                          const ResponseMeta& meta);

}  // namespace semap::serve

#endif  // SEMAP_SERVE_PROTOCOL_H_
