// semap.rpc.v1 — the length-prefixed, CRC-framed request protocol.
//
// One frame per message, in the journal's textual idiom (store/journal.h)
// so a frame is greppable on the wire and validatable outside the binary:
//
//   semap.rpc.v1 <length> <crc32>\n
//   <payload bytes>\n
//
// <length> is the payload's byte count in decimal, <crc32> the zlib-
// polynomial CRC of exactly those bytes as 8 lowercase hex digits
// (util/crc32.h — the same checksum the Python validators recompute).
// The trailing newline is framing, not payload. A reader that sees a
// bad header, an oversized length, or a CRC mismatch must treat the
// connection as poisoned: framing is how the stream stays in sync, so
// there is no resynchronizing past a torn frame.
//
// The payload is one JSON object. Requests:
//
//   {"id":"r1","op":"map","scenario":"bookstore","deadline_ms":2000,
//    "priority":0,"cache":"bypass"}
//
// `id` is the idempotency key: the server journals every ok response
// under its id before sending it, so a retry with the same id returns
// the stored bytes verbatim — byte-identical, even across a server
// kill and restart. Ops: map, explain, lint, ping, stats. Responses:
//
//   {"schema":"semap.rpc.v1","id":"r1","status":"ok","code":"",
//    "detail":"","body":{...}}
//
// `status` is ok | reject | error; `code` carries the SEMAP-E2xx code on
// non-ok responses (docs/SERVING.md has the table). `body` is always the
// LAST member and holds the op's result verbatim — an explain body is a
// complete semap.explain.v1 document, so a client can slice it out
// byte-exactly and feed it to semap_explain or check_obs_json.py.
#ifndef SEMAP_SERVE_PROTOCOL_H_
#define SEMAP_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/socket.h"
#include "util/result.h"

namespace semap::serve {

inline constexpr const char kRpcSchema[] = "semap.rpc.v1";
/// Frames above this are a protocol error, not an allocation request.
inline constexpr size_t kMaxFrameBytes = 16u << 20;

// The serving layer's diagnostic codes, in the repo-wide SEMAP-Exxx
// space (util/diag.h owns E0xx; E2xx is the serving range).
inline constexpr const char kErrBadFrame[] = "SEMAP-E200";
inline constexpr const char kErrBadRequest[] = "SEMAP-E201";
inline constexpr const char kErrUnknownScenario[] = "SEMAP-E202";
inline constexpr const char kErrInternal[] = "SEMAP-E203";
// E210–E213 are all status "reject": the request was not served and the
// server is intact, so a retry (with backoff, against the same or
// another replica) is the correct client response. E213 specifically
// means the request's own deadline_ms expired before the pipeline ran
// (queue wait, admission hold, or coalesced-flight wait) — retry with a
// fresh deadline.
inline constexpr const char kErrOverloaded[] = "SEMAP-E210";
inline constexpr const char kErrDraining[] = "SEMAP-E211";
inline constexpr const char kErrCancelled[] = "SEMAP-E212";
inline constexpr const char kErrDeadlineShed[] = "SEMAP-E213";

/// Wrap `payload` in one wire frame.
std::string EncodeFrame(std::string_view payload);

/// Read exactly one frame off `conn`. NotFound = clean EOF before any
/// header byte (the peer simply left); ParseError = torn or corrupt
/// frame (poisoned stream — respond E200 at most, then close).
Result<std::string> ReadFrame(Conn& conn);

/// Encode + send one frame.
Status WriteFrame(Conn& conn, std::string_view payload);

struct Request {
  std::string id;
  std::string op;        // map | explain | lint | ping | stats
  std::string scenario;  // required for map/explain/lint
  int64_t deadline_ms = -1;
  int64_t priority = 0;
  /// "cache":"bypass" — recompute even when a cached result exists (the
  /// bench uses this to measure discovery latency under load).
  bool cache_bypass = false;
};

/// Parse and validate one request payload. InvalidArgument explains
/// what's missing or mistyped (the server relays it as E201).
Result<Request> ParseRequest(std::string_view payload);

/// Response envelopes. `body_json` must be a complete JSON value; it is
/// spliced in verbatim as the final member.
std::string OkResponse(const std::string& id, std::string_view body_json);
/// `status` is "reject" (admission/drain decisions) or "error".
std::string ErrorResponse(const std::string& id, std::string_view status,
                          std::string_view code, std::string_view detail);

}  // namespace semap::serve

#endif  // SEMAP_SERVE_PROTOCOL_H_
