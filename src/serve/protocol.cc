#include "serve/protocol.h"

#include <cstdlib>

#include "obs/trace.h"
#include "util/crc32.h"
#include "util/json.h"

namespace semap::serve {

namespace {

/// Read exactly `n` bytes; a clean EOF mid-read is a torn frame.
Status ReadExact(Conn& conn, char* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    auto chunk = conn.Read(buf + got, n - got);
    if (!chunk.ok()) return chunk.status();
    if (*chunk == 0) {
      return Status::ParseError("connection closed mid-frame (" +
                                std::to_string(got) + "/" +
                                std::to_string(n) + " bytes)");
    }
    got += *chunk;
  }
  return Status::OK();
}

}  // namespace

std::string EncodeFrame(std::string_view payload) {
  std::string frame;
  frame.reserve(payload.size() + 48);
  frame += kRpcSchema;
  frame += ' ';
  frame += std::to_string(payload.size());
  frame += ' ';
  frame += Crc32Hex(Crc32(payload));
  frame += '\n';
  frame.append(payload.data(), payload.size());
  frame += '\n';
  return frame;
}

Result<std::string> ReadFrame(Conn& conn) {
  // Header: "semap.rpc.v1 <length> <crc32>\n", read byte-wise — headers
  // are ~30 bytes and this keeps the reader free of lookahead state.
  std::string header;
  while (true) {
    char c;
    auto got = conn.Read(&c, 1);
    if (!got.ok()) return got.status();
    if (*got == 0) {
      if (header.empty()) return Status::NotFound("connection closed");
      return Status::ParseError("connection closed mid-header");
    }
    if (c == '\n') break;
    header += c;
    if (header.size() > 64) {
      return Status::ParseError("oversized frame header");
    }
  }
  const std::string prefix = std::string(kRpcSchema) + " ";
  if (header.compare(0, prefix.size(), prefix) != 0) {
    return Status::ParseError("bad frame header: " + header);
  }
  const size_t space = header.find(' ', prefix.size());
  if (space == std::string::npos) {
    return Status::ParseError("bad frame header: " + header);
  }
  const std::string length_str = header.substr(prefix.size(),
                                               space - prefix.size());
  const std::string crc_str = header.substr(space + 1);
  char* end = nullptr;
  const long long length = std::strtoll(length_str.c_str(), &end, 10);
  if (end == length_str.c_str() || *end != '\0' || length < 0 ||
      static_cast<size_t>(length) > kMaxFrameBytes) {
    return Status::ParseError("bad frame length: " + length_str);
  }
  if (crc_str.size() != 8) {
    return Status::ParseError("bad frame crc: " + crc_str);
  }

  std::string payload(static_cast<size_t>(length), '\0');
  if (length > 0) {
    SEMAP_RETURN_NOT_OK(ReadExact(conn, payload.data(), payload.size()));
  }
  char newline;
  SEMAP_RETURN_NOT_OK(ReadExact(conn, &newline, 1));
  if (newline != '\n') {
    return Status::ParseError("missing frame terminator");
  }
  if (Crc32Hex(Crc32(payload)) != crc_str) {
    return Status::ParseError("frame crc mismatch");
  }
  return payload;
}

Status WriteFrame(Conn& conn, std::string_view payload) {
  return conn.WriteAll(EncodeFrame(payload));
}

Result<Request> ParseRequest(std::string_view payload) {
  auto parsed = json::Parse(payload);
  if (!parsed.ok()) {
    return Status::InvalidArgument("request is not JSON: " +
                                   parsed.status().message());
  }
  if (!parsed->is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  Request request;
  request.id = parsed->GetString("id");
  if (request.id.empty()) {
    return Status::InvalidArgument("request needs a non-empty \"id\"");
  }
  request.op = parsed->GetString("op");
  const bool needs_scenario =
      request.op == "map" || request.op == "explain" || request.op == "lint";
  if (!needs_scenario && request.op != "ping" && request.op != "stats") {
    return Status::InvalidArgument("unknown op \"" + request.op +
                                   "\" (want map, explain, lint, ping "
                                   "or stats)");
  }
  request.scenario = parsed->GetString("scenario");
  if (needs_scenario && request.scenario.empty()) {
    return Status::InvalidArgument("op \"" + request.op +
                                   "\" needs a \"scenario\"");
  }
  request.deadline_ms = parsed->GetInt("deadline_ms", -1);
  request.priority = parsed->GetInt("priority", 0);
  request.cache_bypass = parsed->GetString("cache") == "bypass";
  // Optional trace context: absent fields leave the defaults (untraced),
  // so pre-tracing clients keep working unchanged.
  request.trace_id = parsed->GetString("trace_id");
  request.attempt = parsed->GetInt("attempt", 0);
  if (request.attempt < 0) {
    return Status::InvalidArgument("\"attempt\" must be >= 0");
  }
  return request;
}

namespace {

/// ',"trace_id":"...","attempt":N,"server_timing":{...}' — or nothing at
/// all for an untraced request. Every value is either JSON-escaped or an
/// integer, so the `,"body":` slice marker cannot appear inside.
std::string MetaFields(const ResponseMeta& meta) {
  if (meta.trace_id.empty()) return std::string();
  std::string out = ",\"trace_id\":\"";
  out += obs::JsonEscape(meta.trace_id);
  out += "\",\"attempt\":";
  out += std::to_string(meta.attempt);
  out += ",\"server_timing\":{";
  bool first = true;
  auto stage = [&](const char* name, int64_t ns) {
    if (ns < 0) return;
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += name;
    out += "\":";
    out += std::to_string(ns);
  };
  stage("queue_ns", meta.queue_ns);
  stage("compile_ns", meta.compile_ns);
  stage("pipeline_ns", meta.pipeline_ns);
  stage("journal_ns", meta.journal_ns);
  stage("handle_ns", meta.handle_ns);
  out += "}";
  return out;
}

}  // namespace

std::string OkResponse(const std::string& id, std::string_view body_json) {
  return OkResponse(id, ResponseMeta{}, body_json);
}

std::string OkResponse(const std::string& id, const ResponseMeta& meta,
                       std::string_view body_json) {
  std::string out = "{\"schema\":\"";
  out += kRpcSchema;
  out += "\",\"id\":\"";
  out += obs::JsonEscape(id);
  out += "\",\"status\":\"ok\",\"code\":\"\",\"detail\":\"\"";
  out += MetaFields(meta);
  out += ",\"body\":";
  out.append(body_json.data(), body_json.size());
  out += "}";
  return out;
}

std::string ErrorResponse(const std::string& id, std::string_view status,
                          std::string_view code, std::string_view detail) {
  return ErrorResponse(id, status, code, detail, ResponseMeta{});
}

std::string ErrorResponse(const std::string& id, std::string_view status,
                          std::string_view code, std::string_view detail,
                          const ResponseMeta& meta) {
  std::string out = "{\"schema\":\"";
  out += kRpcSchema;
  out += "\",\"id\":\"";
  out += obs::JsonEscape(id);
  out += "\",\"status\":\"";
  out.append(status.data(), status.size());
  out += "\",\"code\":\"";
  out.append(code.data(), code.size());
  out += "\",\"detail\":\"";
  out += obs::JsonEscape(std::string(detail));
  out += "\"";
  out += MetaFields(meta);
  out += ",\"body\":{}}";
  return out;
}

}  // namespace semap::serve
