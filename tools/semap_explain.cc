// Reader for semap.explain.v1 provenance reports (written by
// `semap_map --explain=FILE`): answers "where did this mapping come
// from?" and "why was that candidate not emitted?" without re-running
// discovery.
//
//   semap_explain [options] <explain.json>
//
// Modes (default is --summary):
//   --table=T    render every derivation record for target table T —
//                covered correspondences, chosen CSG pair, Skolem
//                decisions, execution tier, emission status
//   --why-not=T  closest rejected candidates for T (most covered
//                correspondences first) with the filter that killed each
//   --summary    per-tier table counts and per-filter rejection counts
//
// Exit codes: 0 ok, 1 table not found / unreadable or malformed input,
// 2 usage error.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/version.h"

namespace {

using namespace semap;

constexpr const char kOptionTable[] =
    "options:\n"
    "  --table=T    print every derivation record for target table T\n"
    "  --why-not=T  print rejected candidates for T, closest first,\n"
    "               with the filter or budget that killed each\n"
    "  --summary    per-tier and per-filter counts (default mode)\n"
    "  --version    print the version and exit\n"
    "  --help       print this table and exit\n"
    "exit codes: 0 ok, 1 missing table or unreadable/malformed input,\n"
    "            2 usage error\n";

void PrintUsage(FILE* out, const char* prog) {
  std::fprintf(out, "usage: %s [options] <explain.json>\n%s", prog,
               kOptionTable);
}

bool ReadFile(const char* path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

const json::Value* FindTable(const json::Value& report,
                             const std::string& name) {
  const json::Value* tables = report.Find("tables");
  if (tables == nullptr) return nullptr;
  for (const json::Value& t : tables->AsArray()) {
    if (t.GetString("table") == name) return &t;
  }
  return nullptr;
}

void PrintKnownTables(const json::Value& report) {
  const json::Value* tables = report.Find("tables");
  if (tables == nullptr || tables->AsArray().empty()) {
    std::fprintf(stderr, "  (report contains no tables)\n");
    return;
  }
  std::fprintf(stderr, "known tables:\n");
  for (const json::Value& t : tables->AsArray()) {
    std::fprintf(stderr, "  %s (%s)\n", t.GetString("table").c_str(),
                 t.GetString("tier", "?").c_str());
  }
}

void PrintStringArray(const json::Value& rec, const char* key,
                      const char* label) {
  const json::Value* arr = rec.Find(key);
  if (arr == nullptr || arr->AsArray().empty()) return;
  std::printf("    %s:\n", label);
  for (const json::Value& item : arr->AsArray()) {
    std::printf("      %s\n", item.AsString().c_str());
  }
}

/// --table=T: the derivation tree, one block per record, attempt
/// history first so the cascade's shape reads top-down.
int ExplainTable(const json::Value& report, const std::string& name) {
  const json::Value* table = FindTable(report, name);
  if (table == nullptr) {
    std::fprintf(stderr, "error: no provenance for table %s\n", name.c_str());
    PrintKnownTables(report);
    return 1;
  }
  std::printf("table %s  tier=%s\n", name.c_str(),
              table->GetString("tier", "?").c_str());
  for (const json::Value& note : table->Find("notes") != nullptr
                                     ? table->Find("notes")->AsArray()
                                     : json::Array{}) {
    std::printf("  note: %s\n", note.AsString().c_str());
  }
  const json::Value* attempts = table->Find("attempts");
  if (attempts != nullptr && !attempts->AsArray().empty()) {
    std::printf("  attempts:\n");
    for (const json::Value& a : attempts->AsArray()) {
      std::printf("    %s #%lld: %s (%lld mapping(s))",
                  a.GetString("tier", "?").c_str(),
                  static_cast<long long>(a.GetInt("attempt")),
                  a.GetString("status", "?").c_str(),
                  static_cast<long long>(a.GetInt("mappings")));
      std::string detail = a.GetString("detail");
      if (!detail.empty()) std::printf(" — %s", detail.c_str());
      std::printf("\n");
    }
  }
  const json::Value* derivations = table->Find("derivations");
  size_t n = derivations == nullptr ? 0 : derivations->AsArray().size();
  std::printf("  derivations: %zu\n", n);
  size_t idx = 0;
  if (derivations != nullptr) {
    for (const json::Value& d : derivations->AsArray()) {
      ++idx;
      std::printf("  [%zu] %s  origin=%s tier=%s%s\n", idx,
                  d.Find("emitted") != nullptr && d.Find("emitted")->is_bool()
                          && d.Find("emitted")->AsBool()
                      ? "emitted"
                      : "not emitted",
                  d.GetString("origin", "?").c_str(),
                  d.GetString("tier", "?").c_str(),
                  d.GetString("drop_reason").empty()
                      ? ""
                      : ("  dropped: " + d.GetString("drop_reason")).c_str());
      std::printf("    tgd: %s\n", d.GetString("tgd").c_str());
      PrintStringArray(d, "covered", "covered correspondences");
      std::string scsg = d.GetString("source_csg");
      std::string tcsg = d.GetString("target_csg");
      if (!scsg.empty() || !tcsg.empty()) {
        std::printf("    csg pair: %s => %s\n", scsg.c_str(), tcsg.c_str());
      }
      if (d.GetInt("penalty") > 0 || d.GetInt("variants") > 1) {
        std::printf("    penalty=%lld variants=%lld\n",
                    static_cast<long long>(d.GetInt("penalty")),
                    static_cast<long long>(d.GetInt("variants")));
      }
      const json::Value* skolems = d.Find("skolems");
      if (skolems != nullptr && !skolems->AsArray().empty()) {
        std::printf("    skolem decisions:\n");
        for (const json::Value& s : skolems->AsArray()) {
          std::printf("      %s: %s\n", s.GetString("function").c_str(),
                      s.GetString("kind", "?").c_str());
        }
      }
      std::string salg = d.GetString("source_algebra");
      if (!salg.empty()) std::printf("    source algebra: %s\n", salg.c_str());
      std::string talg = d.GetString("target_algebra");
      if (!talg.empty()) std::printf("    target algebra: %s\n", talg.c_str());
    }
  }
  return 0;
}

/// --why-not=T: rejected candidates closest-first. "Closest" = covers
/// the most correspondences, ties broken by lower penalty, then by
/// recording order (stable sort keeps it deterministic).
int ExplainWhyNot(const json::Value& report, const std::string& name) {
  const json::Value* table = FindTable(report, name);
  if (table == nullptr) {
    std::fprintf(stderr, "error: no provenance for table %s\n", name.c_str());
    PrintKnownTables(report);
    return 1;
  }
  const json::Value* rejections = table->Find("rejections");
  std::vector<const json::Value*> sorted;
  if (rejections != nullptr) {
    for (const json::Value& r : rejections->AsArray()) sorted.push_back(&r);
  }
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const json::Value* a, const json::Value* b) {
                     if (a->GetInt("covered") != b->GetInt("covered")) {
                       return a->GetInt("covered") > b->GetInt("covered");
                     }
                     return a->GetInt("penalty") < b->GetInt("penalty");
                   });
  std::printf("table %s  tier=%s  rejections=%zu", name.c_str(),
              table->GetString("tier", "?").c_str(), sorted.size());
  int64_t dropped = table->GetInt("rejections_dropped");
  if (dropped > 0) std::printf(" (+%lld dropped)", (long long)dropped);
  std::printf("\n");
  if (sorted.empty()) {
    std::printf("  no rejected candidates recorded — every candidate that "
                "reached a filter was emitted, or discovery found none\n");
    return 0;
  }
  size_t idx = 0;
  for (const json::Value* r : sorted) {
    ++idx;
    std::printf("  [%zu] killed by %s", idx,
                r->GetString("filter", "?").c_str());
    std::string tier = r->GetString("tier");
    if (!tier.empty()) {
      std::printf(" (tier %s, attempt %lld)", tier.c_str(),
                  static_cast<long long>(r->GetInt("attempt")));
    }
    std::printf("\n    candidate: %s\n", r->GetString("candidate").c_str());
    if (r->GetInt("covered") > 0 || r->GetInt("penalty") > 0) {
      std::printf("    covered=%lld penalty=%lld\n",
                  static_cast<long long>(r->GetInt("covered")),
                  static_cast<long long>(r->GetInt("penalty")));
    }
    std::string detail = r->GetString("detail");
    if (!detail.empty()) std::printf("    why: %s\n", detail.c_str());
  }
  return 0;
}

/// --summary: per-tier table counts, per-filter rejection counts, and
/// emitted/dropped derivation totals.
int Summarize(const json::Value& report) {
  const json::Value* tables = report.Find("tables");
  std::map<std::string, int> by_tier;
  std::map<std::string, int> by_filter;
  int64_t derivations = 0, emitted = 0, dropped_derivations = 0;
  int64_t rejections = 0, rejections_dropped = 0;
  size_t table_count = 0;
  if (tables != nullptr) {
    for (const json::Value& t : tables->AsArray()) {
      ++table_count;
      ++by_tier[t.GetString("tier", "?")];
      const json::Value* ds = t.Find("derivations");
      if (ds != nullptr) {
        for (const json::Value& d : ds->AsArray()) {
          ++derivations;
          const json::Value* e = d.Find("emitted");
          if (e != nullptr && e->is_bool() && e->AsBool()) ++emitted;
          if (!d.GetString("drop_reason").empty()) ++dropped_derivations;
        }
      }
      const json::Value* rs = t.Find("rejections");
      if (rs != nullptr) {
        for (const json::Value& r : rs->AsArray()) {
          ++rejections;
          ++by_filter[r.GetString("filter", "?")];
        }
      }
      rejections_dropped += t.GetInt("rejections_dropped");
    }
  }
  std::printf("tables: %zu\n", table_count);
  for (const auto& [tier, count] : by_tier) {
    std::printf("  %-20s %d\n", tier.c_str(), count);
  }
  std::printf("derivations: %lld (%lld emitted, %lld dropped)\n",
              static_cast<long long>(derivations),
              static_cast<long long>(emitted),
              static_cast<long long>(dropped_derivations));
  std::printf("rejections: %lld", static_cast<long long>(rejections));
  if (rejections_dropped > 0) {
    std::printf(" (+%lld beyond the per-table bound)",
                static_cast<long long>(rejections_dropped));
  }
  std::printf("\n");
  for (const auto& [filter, count] : by_filter) {
    std::printf("  %-20s %d\n", filter.c_str(), count);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string table_mode;
  std::string why_not_mode;
  bool summary_mode = false;
  const char* input = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--version") == 0) {
      std::printf("semap_explain %s\n", kSemapVersion);
      return 0;
    }
    if (std::strcmp(argv[i], "--help") == 0) {
      PrintUsage(stdout, argv[0]);
      return 0;
    }
    if (std::strncmp(argv[i], "--table=", 8) == 0) {
      table_mode = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--why-not=", 10) == 0) {
      why_not_mode = argv[i] + 10;
    } else if (std::strcmp(argv[i], "--summary") == 0) {
      summary_mode = true;
    } else if (argv[i][0] == '-' && argv[i][1] != '\0') {
      std::fprintf(stderr, "error: unknown option %s\n%s", argv[i],
                   kOptionTable);
      return 2;
    } else if (input == nullptr) {
      input = argv[i];
    } else {
      std::fprintf(stderr, "error: more than one input file\n");
      PrintUsage(stderr, argv[0]);
      return 2;
    }
  }
  if (input == nullptr) {
    PrintUsage(stderr, argv[0]);
    return 2;
  }
  int modes = (table_mode.empty() ? 0 : 1) + (why_not_mode.empty() ? 0 : 1) +
              (summary_mode ? 1 : 0);
  if (modes > 1) {
    std::fprintf(stderr,
                 "error: --table, --why-not and --summary are exclusive\n");
    return 2;
  }

  std::string text;
  if (!ReadFile(input, &text)) {
    std::fprintf(stderr, "error: cannot open %s\n", input);
    return 1;
  }
  auto parsed = json::Parse(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s is not valid JSON: %s\n", input,
                 parsed.status().ToString().c_str());
    return 1;
  }
  const json::Value& report = *parsed;
  std::string schema = report.GetString("schema");
  if (schema != "semap.explain.v1") {
    std::fprintf(stderr,
                 "error: %s has schema \"%s\", expected semap.explain.v1\n",
                 input, schema.c_str());
    return 1;
  }

  if (!table_mode.empty()) return ExplainTable(report, table_mode);
  if (!why_not_mode.empty()) return ExplainWhyNot(report, why_not_mode);
  return Summarize(report);
}
