// One-shot semap.rpc.v1 client: frame one request, print the response.
//
//   semap_call (--unix=PATH | --port=N [--host=H]) --op=OP [options]
//
// The default output is the whole response payload (one JSON line).
// --body slices out the raw `body` value byte-exactly — an explain body
// is a complete semap.explain.v1 document, so
//
//   semap_call --unix=S --op=explain --scenario=bookstore --id=r2 \
//       --body > explain.json
//
// yields a file semap_explain and check_obs_json.py read unchanged.
//
// Exit codes: 0 response status ok, 1 transport/protocol failure,
// 2 usage, 3 response status reject (overload/drain — retryable),
// 4 response status error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/protocol.h"
#include "serve/socket.h"
#include "util/json.h"
#include "util/version.h"

namespace {

using namespace semap;

constexpr const char kOptionTable[] =
    "options:\n"
    "  --unix=PATH       connect to a unix socket\n"
    "  --host=H          TCP host (default 127.0.0.1)\n"
    "  --port=N          TCP port\n"
    "  --op=OP           map | explain | lint | ping | stats (default ping)\n"
    "  --scenario=S      scenario name (required for map/explain/lint)\n"
    "  --id=ID           idempotency key (default 'cli'); retries with the\n"
    "                    same id return byte-identical responses\n"
    "  --deadline-ms=N   per-request deadline\n"
    "  --priority=N      request priority (recorded in server events)\n"
    "  --bypass-cache    force recomputation past the server result cache\n"
    "  --timeout-ms=N    socket I/O timeout (default 10000)\n"
    "  --body            print only the raw body value (byte-exact)\n"
    "  --version         print the version and exit\n"
    "  --help            print this table and exit\n"
    "exit codes: 0 ok, 1 transport/protocol failure, 2 usage,\n"
    "3 rejected (overloaded or draining; retry), 4 server error\n";

void PrintUsage(FILE* out, const char* prog) {
  std::fprintf(out, "usage: %s (--unix=PATH | --port=N) [options]\n%s", prog,
               kOptionTable);
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--version") == 0) {
      std::printf("semap_call %s\n", kSemapVersion);
      return 0;
    }
    if (std::strcmp(argv[i], "--help") == 0) {
      PrintUsage(stdout, argv[0]);
      return 0;
    }
  }

  std::string unix_path;
  std::string host = "127.0.0.1";
  int port = -1;
  std::string op = "ping";
  std::string scenario;
  std::string id = "cli";
  long long deadline_ms = -1;
  long long priority = 0;
  long long timeout_ms = 10000;
  bool bypass_cache = false;
  bool body_only = false;

  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--unix=", 7) == 0) {
      unix_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--host=", 7) == 0) {
      host = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--port=", 7) == 0) {
      char* end = nullptr;
      port = static_cast<int>(std::strtol(argv[i] + 7, &end, 10));
      if (end == argv[i] + 7 || *end != '\0') {
        std::fprintf(stderr, "error: --port wants an integer, got %s\n",
                     argv[i] + 7);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--op=", 5) == 0) {
      op = argv[i] + 5;
    } else if (std::strncmp(argv[i], "--scenario=", 11) == 0) {
      scenario = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--id=", 5) == 0) {
      id = argv[i] + 5;
    } else if (std::strncmp(argv[i], "--deadline-ms=", 14) == 0) {
      char* end = nullptr;
      deadline_ms = std::strtoll(argv[i] + 14, &end, 10);
      if (end == argv[i] + 14 || *end != '\0') {
        std::fprintf(stderr, "error: --deadline-ms wants an integer\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--priority=", 11) == 0) {
      char* end = nullptr;
      priority = std::strtoll(argv[i] + 11, &end, 10);
      if (end == argv[i] + 11 || *end != '\0') {
        std::fprintf(stderr, "error: --priority wants an integer\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--timeout-ms=", 13) == 0) {
      char* end = nullptr;
      timeout_ms = std::strtoll(argv[i] + 13, &end, 10);
      if (end == argv[i] + 13 || *end != '\0') {
        std::fprintf(stderr, "error: --timeout-ms wants an integer\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--bypass-cache") == 0) {
      bypass_cache = true;
    } else if (std::strcmp(argv[i], "--body") == 0) {
      body_only = true;
    } else {
      std::fprintf(stderr, "error: unknown option %s\n%s", argv[i],
                   kOptionTable);
      return 2;
    }
  }
  if (unix_path.empty() && port < 0) {
    PrintUsage(stderr, argv[0]);
    return 2;
  }

  // Build the request payload. The fields mirror serve::Request; the
  // server validates, this side just renders.
  std::string payload = "{\"id\":\"" + id + "\",\"op\":\"" + op + "\"";
  if (!scenario.empty()) payload += ",\"scenario\":\"" + scenario + "\"";
  if (deadline_ms >= 0) {
    payload += ",\"deadline_ms\":" + std::to_string(deadline_ms);
  }
  if (priority != 0) payload += ",\"priority\":" + std::to_string(priority);
  if (bypass_cache) payload += ",\"cache\":\"bypass\"";
  payload += "}";

  serve::SocketOptions socket_opts;
  socket_opts.io_timeout_ms = timeout_ms;
  auto conn = unix_path.empty() ? serve::DialTcp(host, port, socket_opts)
                                : serve::DialUnix(unix_path, socket_opts);
  if (!conn.ok()) {
    std::fprintf(stderr, "error: %s\n", conn.status().ToString().c_str());
    return 1;
  }
  if (Status sent = serve::WriteFrame(**conn, payload); !sent.ok()) {
    std::fprintf(stderr, "error: %s\n", sent.ToString().c_str());
    return 1;
  }
  auto response = serve::ReadFrame(**conn);
  if (!response.ok()) {
    std::fprintf(stderr, "error: %s\n", response.status().ToString().c_str());
    return 1;
  }
  (void)(*conn)->Close();

  auto parsed = json::Parse(*response);
  if (!parsed.ok() || !parsed->is_object()) {
    std::fprintf(stderr, "error: response is not a JSON object\n");
    return 1;
  }
  const std::string status = parsed->GetString("status");

  if (body_only) {
    // The envelope guarantees body is the last member, and every earlier
    // string member is JSON-escaped, so the first `,"body":` is the real
    // one. Slicing (rather than re-serializing) keeps the bytes exact.
    const std::string marker = ",\"body\":";
    const size_t at = response->find(marker);
    if (at == std::string::npos || response->back() != '}') {
      std::fprintf(stderr, "error: response has no body member\n");
      return 1;
    }
    const std::string body = response->substr(
        at + marker.size(), response->size() - at - marker.size() - 1);
    std::fwrite(body.data(), 1, body.size(), stdout);
    std::fputc('\n', stdout);
  } else {
    std::fwrite(response->data(), 1, response->size(), stdout);
    std::fputc('\n', stdout);
  }

  if (status == "ok") return 0;
  std::fprintf(stderr, "%s: %s %s\n", status.c_str(),
               parsed->GetString("code").c_str(),
               parsed->GetString("detail").c_str());
  return status == "reject" ? 3 : 4;
}
