// One-shot semap.rpc.v1 client: frame one request, print the response.
//
//   semap_call (--unix=PATH | --port=N [--host=H]) --op=OP [options]
//
// The default output is the whole response payload (one JSON line).
// --body slices out the raw `body` value byte-exactly — an explain body
// is a complete semap.explain.v1 document, so
//
//   semap_call --unix=S --op=explain --scenario=bookstore --id=r2 \
//       --body > explain.json
//
// yields a file semap_explain and check_obs_json.py read unchanged.
//
// Retries (--retries=N) honor the reject-vs-error contract: a "reject"
// response (E210 overloaded, E211 draining, E212 drain-cancelled, E213
// deadline-shed) and a transport failure are retryable — the server is
// intact and the request id is idempotent, so resending the same id is
// always safe. A status "error" response (E20x) is the server's final
// answer and is never retried. Delays come from util/backoff.h with
// deterministic seeded jitter (--retry-seed), capped in total by
// --retry-budget-ms.
//
// Every request carries a trace_id (minted here; deterministic when
// --retry-seed is given, so scripted drills produce greppable ids) and
// a 0-based attempt counter. Retries reuse the id and increment the
// counter, which is how the server's --events stream shows one logical
// request as a story: attempt 0 computed, attempt 1 replayed. --timing
// prints the client-side stage split (connect/send/wait/recv) plus the
// server_timing echo from the envelope, joined on the trace id.
//
// Exit codes: 0 response status ok, 1 transport/protocol failure,
// 2 usage, 3 response status reject (overload/drain/deadline —
// retryable), 4 response status error.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include <unistd.h>

#include "serve/protocol.h"
#include "serve/socket.h"
#include "util/backoff.h"
#include "util/json.h"
#include "util/version.h"

namespace {

using namespace semap;

constexpr const char kOptionTable[] =
    "options:\n"
    "  --unix=PATH       connect to a unix socket\n"
    "  --host=H          TCP host (default 127.0.0.1)\n"
    "  --port=N          TCP port\n"
    "  --op=OP           map | explain | lint | ping | stats (default ping)\n"
    "  --scenario=S      scenario name (required for map/explain/lint)\n"
    "  --id=ID           idempotency key (default 'cli'); retries with the\n"
    "                    same id return byte-identical responses\n"
    "  --deadline-ms=N   per-request deadline (expired deadlines shed with\n"
    "                    the retryable SEMAP-E213)\n"
    "  --priority=N      request priority (recorded in server events)\n"
    "  --bypass-cache    force recomputation past the server result cache\n"
    "  --timeout-ms=N    socket I/O timeout (default 10000)\n"
    "  --retries=N       retry rejects (status \"reject\": E210-E213) and\n"
    "                    transport failures up to N times with backoff;\n"
    "                    status \"error\" responses are final (default 0)\n"
    "  --retry-budget-ms=N\n"
    "                    total wall-clock budget across all retries;\n"
    "                    stop retrying once the next delay would pass it\n"
    "                    (default: unlimited)\n"
    "  --retry-seed=K    seed for the deterministic retry jitter (also\n"
    "                    makes the minted trace id deterministic)\n"
    "  --trace-id=T      correlation id to send (default: minted; shows\n"
    "                    up verbatim in the server's --events stream)\n"
    "  --no-trace        send no trace context at all (the pre-tracing\n"
    "                    wire format, byte-identical envelopes)\n"
    "  --timing          print the client stage split (connect/send/\n"
    "                    wait/recv) and the server_timing echo to stderr\n"
    "  --body            print only the raw body value (byte-exact)\n"
    "  --version         print the version and exit\n"
    "  --help            print this table and exit\n"
    "exit codes: 0 ok, 1 transport/protocol failure, 2 usage,\n"
    "3 rejected (overloaded, draining, or deadline-shed; retry),\n"
    "4 server error\n";

void PrintUsage(FILE* out, const char* prog) {
  std::fprintf(out, "usage: %s (--unix=PATH | --port=N) [options]\n%s", prog,
               kOptionTable);
}

bool ParseLong(const char* flag, const char* value, long long* out) {
  char* end = nullptr;
  *out = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0') {
    std::fprintf(stderr, "error: %s wants an integer, got %s\n", flag, value);
    return false;
  }
  return true;
}

/// Mint a trace id: 16 hex digits from FNV-1a over the request identity.
/// With a seed the id is a pure function of (seed, id, op, scenario) —
/// scripted drills can predict it; without one, wall-clock time and the
/// pid keep concurrent clients distinct.
std::string MintTraceId(bool seeded, long long seed, const std::string& id,
                        const std::string& op, const std::string& scenario) {
  uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](const void* data, size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      hash ^= bytes[i];
      hash *= 1099511628211ull;
    }
  };
  if (seeded) {
    mix(&seed, sizeof(seed));
  } else {
    const int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::system_clock::now().time_since_epoch())
                            .count();
    const int64_t pid = static_cast<int64_t>(getpid());
    mix(&now, sizeof(now));
    mix(&pid, sizeof(pid));
  }
  mix(id.data(), id.size());
  mix(op.data(), op.size());
  mix(scenario.data(), scenario.size());
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string(buf);
}

/// Client-side stage durations for one attempt, in nanoseconds. `wait`
/// is dial-to-first-response-byte (the server's queue + work as seen
/// from here); `recv` is the rest of the frame after that byte.
struct StageTiming {
  int64_t connect_ns = -1;
  int64_t send_ns = -1;
  int64_t wait_ns = -1;
  int64_t recv_ns = -1;
  int64_t total_ns = -1;
};

/// Conn wrapper that records when the first response byte arrives — the
/// boundary between waiting on the server and draining the frame.
class FirstByteConn : public serve::Conn {
 public:
  explicit FirstByteConn(serve::Conn* inner) : inner_(inner) {}
  Result<size_t> Read(char* buf, size_t max) override {
    auto got = inner_->Read(buf, max);
    if (!seen_ && got.ok() && *got > 0) {
      seen_ = true;
      first_byte_ = std::chrono::steady_clock::now();
    }
    return got;
  }
  Status WriteAll(std::string_view data) override {
    return inner_->WriteAll(data);
  }
  Status Close() override { return inner_->Close(); }
  bool seen() const { return seen_; }
  std::chrono::steady_clock::time_point first_byte() const {
    return first_byte_;
  }

 private:
  serve::Conn* inner_;
  bool seen_ = false;
  std::chrono::steady_clock::time_point first_byte_;
};

struct Attempt {
  /// 0 ok, 1 transport, 3 reject, 4 error (the final exit code if this
  /// attempt is the last).
  int exit_code = 1;
  /// The raw response payload (empty on transport failure).
  std::string response;
  std::string status;
  std::string code;
  std::string detail;
  StageTiming timing;
};

Attempt RunOnce(const std::string& unix_path, const std::string& host,
                int port, const serve::SocketOptions& socket_opts,
                const std::string& payload) {
  using SteadyClock = std::chrono::steady_clock;
  auto ns_between = [](SteadyClock::time_point a, SteadyClock::time_point b) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count();
  };
  Attempt out;
  const auto start = SteadyClock::now();
  auto conn = unix_path.empty() ? serve::DialTcp(host, port, socket_opts)
                                : serve::DialUnix(unix_path, socket_opts);
  const auto connected = SteadyClock::now();
  out.timing.connect_ns = ns_between(start, connected);
  if (!conn.ok()) {
    out.detail = conn.status().ToString();
    return out;
  }
  if (Status sent = serve::WriteFrame(**conn, payload); !sent.ok()) {
    out.detail = sent.ToString();
    return out;
  }
  const auto sent_at = SteadyClock::now();
  out.timing.send_ns = ns_between(connected, sent_at);
  FirstByteConn timed(conn->get());
  auto response = serve::ReadFrame(timed);
  const auto done = SteadyClock::now();
  if (timed.seen()) {
    out.timing.wait_ns = ns_between(sent_at, timed.first_byte());
    out.timing.recv_ns = ns_between(timed.first_byte(), done);
  }
  out.timing.total_ns = ns_between(start, done);
  if (!response.ok()) {
    out.detail = response.status().ToString();
    return out;
  }
  (void)(*conn)->Close();

  auto parsed = json::Parse(*response);
  if (!parsed.ok() || !parsed->is_object()) {
    out.detail = "response is not a JSON object";
    return out;
  }
  out.response = std::move(*response);
  out.status = parsed->GetString("status");
  out.code = parsed->GetString("code");
  out.detail = parsed->GetString("detail");
  out.exit_code = out.status == "ok" ? 0 : (out.status == "reject" ? 3 : 4);
  return out;
}

double Ms(int64_t ns) { return static_cast<double>(ns) / 1e6; }

/// Render the --timing report for one finished attempt: the client-side
/// stage split, then the envelope's server_timing echo when present.
void PrintTiming(const Attempt& attempt, const std::string& trace_id,
                 long long attempt_no) {
  const StageTiming& t = attempt.timing;
  std::fprintf(stderr, "timing: trace=%s attempt=%lld\n", trace_id.c_str(),
               attempt_no);
  std::fprintf(stderr, "  client: connect=%.3fms send=%.3fms", Ms(t.connect_ns),
               Ms(t.send_ns));
  if (t.wait_ns >= 0) {
    std::fprintf(stderr, " wait=%.3fms recv=%.3fms", Ms(t.wait_ns),
                 Ms(t.recv_ns));
  }
  std::fprintf(stderr, " total=%.3fms\n", Ms(t.total_ns));
  if (attempt.response.empty()) return;
  auto parsed = json::Parse(attempt.response);
  if (!parsed.ok()) return;
  const json::Value* server = parsed->Find("server_timing");
  if (server == nullptr || !server->is_object()) return;
  std::fprintf(stderr, "  server:");
  for (const auto& [name, value] : server->AsObject()) {
    // Members are <stage>_ns integers; print as ms to match the client
    // line ("queue_ns" -> "queue=0.123ms").
    std::string stage = name;
    if (stage.size() > 3 && stage.compare(stage.size() - 3, 3, "_ns") == 0) {
      stage.resize(stage.size() - 3);
    }
    std::fprintf(stderr, " %s=%.3fms", stage.c_str(),
                 Ms(static_cast<int64_t>(value.AsNumber())));
  }
  std::fprintf(stderr, "\n");
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--version") == 0) {
      std::printf("semap_call %s\n", kSemapVersion);
      return 0;
    }
    if (std::strcmp(argv[i], "--help") == 0) {
      PrintUsage(stdout, argv[0]);
      return 0;
    }
  }

  std::string unix_path;
  std::string host = "127.0.0.1";
  int port = -1;
  std::string op = "ping";
  std::string scenario;
  std::string id = "cli";
  long long deadline_ms = -1;
  long long priority = 0;
  long long timeout_ms = 10000;
  long long retries = 0;
  long long retry_budget_ms = -1;
  long long retry_seed = 0;
  bool seed_given = false;
  std::string trace_id;
  bool no_trace = false;
  bool timing = false;
  bool bypass_cache = false;
  bool body_only = false;
  long long value = 0;

  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--unix=", 7) == 0) {
      unix_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--host=", 7) == 0) {
      host = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--port=", 7) == 0) {
      if (!ParseLong("--port", argv[i] + 7, &value)) return 2;
      port = static_cast<int>(value);
    } else if (std::strncmp(argv[i], "--op=", 5) == 0) {
      op = argv[i] + 5;
    } else if (std::strncmp(argv[i], "--scenario=", 11) == 0) {
      scenario = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--id=", 5) == 0) {
      id = argv[i] + 5;
    } else if (std::strncmp(argv[i], "--deadline-ms=", 14) == 0) {
      if (!ParseLong("--deadline-ms", argv[i] + 14, &deadline_ms)) return 2;
    } else if (std::strncmp(argv[i], "--priority=", 11) == 0) {
      if (!ParseLong("--priority", argv[i] + 11, &priority)) return 2;
    } else if (std::strncmp(argv[i], "--timeout-ms=", 13) == 0) {
      if (!ParseLong("--timeout-ms", argv[i] + 13, &timeout_ms)) return 2;
    } else if (std::strncmp(argv[i], "--retries=", 10) == 0) {
      if (!ParseLong("--retries", argv[i] + 10, &retries) || retries < 0) {
        std::fprintf(stderr, "error: --retries wants a non-negative integer\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--retry-budget-ms=", 18) == 0) {
      if (!ParseLong("--retry-budget-ms", argv[i] + 18, &retry_budget_ms)) {
        return 2;
      }
    } else if (std::strncmp(argv[i], "--retry-seed=", 13) == 0) {
      if (!ParseLong("--retry-seed", argv[i] + 13, &retry_seed)) return 2;
      seed_given = true;
    } else if (std::strncmp(argv[i], "--trace-id=", 11) == 0) {
      trace_id = argv[i] + 11;
    } else if (std::strcmp(argv[i], "--no-trace") == 0) {
      no_trace = true;
    } else if (std::strcmp(argv[i], "--timing") == 0) {
      timing = true;
    } else if (std::strcmp(argv[i], "--bypass-cache") == 0) {
      bypass_cache = true;
    } else if (std::strcmp(argv[i], "--body") == 0) {
      body_only = true;
    } else {
      std::fprintf(stderr, "error: unknown option %s\n%s", argv[i],
                   kOptionTable);
      return 2;
    }
  }
  if (unix_path.empty() && port < 0) {
    PrintUsage(stderr, argv[0]);
    return 2;
  }

  if (no_trace && !trace_id.empty()) {
    std::fprintf(stderr, "error: --no-trace conflicts with --trace-id\n");
    return 2;
  }
  if (trace_id.find('"') != std::string::npos ||
      trace_id.find('\\') != std::string::npos) {
    std::fprintf(stderr, "error: --trace-id must not contain '\"' or '\\'\n");
    return 2;
  }
  if (trace_id.empty() && !no_trace) {
    trace_id = MintTraceId(seed_given, retry_seed, id, op, scenario);
  }

  // Build the request payload. The fields mirror serve::Request; the
  // server validates, this side just renders. The id and trace_id stay
  // fixed across retries on purpose — the id is what makes resending
  // safe, the trace_id what stitches the attempts into one story — and
  // only the attempt counter changes per send.
  std::string base = "{\"id\":\"" + id + "\",\"op\":\"" + op + "\"";
  if (!scenario.empty()) base += ",\"scenario\":\"" + scenario + "\"";
  if (deadline_ms >= 0) {
    base += ",\"deadline_ms\":" + std::to_string(deadline_ms);
  }
  if (priority != 0) base += ",\"priority\":" + std::to_string(priority);
  if (bypass_cache) base += ",\"cache\":\"bypass\"";
  auto payload_for = [&](long long attempt_no) {
    std::string payload = base;
    if (!trace_id.empty()) {
      payload += ",\"trace_id\":\"" + trace_id + "\"";
      payload += ",\"attempt\":" + std::to_string(attempt_no);
    }
    payload += "}";
    return payload;
  };

  serve::SocketOptions socket_opts;
  socket_opts.io_timeout_ms = timeout_ms;

  BackoffPolicy policy;
  policy.seed = static_cast<uint64_t>(retry_seed);
  const Backoff backoff(policy);
  const auto started = std::chrono::steady_clock::now();

  Attempt attempt;
  long long attempt_no = 0;
  for (long long n = 0;; ++n) {
    attempt_no = n;
    attempt = RunOnce(unix_path, host, port, socket_opts, payload_for(n));
    // ok and status "error" are final; transport failures and rejects
    // are retryable while attempts and the time budget remain.
    if (attempt.exit_code == 0 || attempt.exit_code == 4) break;
    if (n >= retries) break;
    const int64_t delay = backoff.DelayMs(static_cast<size_t>(n));
    if (retry_budget_ms >= 0) {
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - started)
              .count();
      if (elapsed + delay > retry_budget_ms) break;
    }
    std::fprintf(stderr, "retry %lld/%lld in %lldms (%s%s%s)\n", n + 1,
                 retries, static_cast<long long>(delay),
                 attempt.code.empty() ? "transport" : attempt.code.c_str(),
                 attempt.detail.empty() ? "" : ": ",
                 attempt.detail.c_str());
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  }

  if (timing) PrintTiming(attempt, trace_id, attempt_no);

  if (attempt.exit_code == 1 && attempt.response.empty()) {
    std::fprintf(stderr, "error: %s\n", attempt.detail.c_str());
    // The id the server's --events stream (if any) will show for this
    // failure — the handle that joins client-side and server-side views.
    if (!trace_id.empty()) {
      std::fprintf(stderr, "trace: %s attempt=%lld\n", trace_id.c_str(),
                   attempt_no);
    }
    return 1;
  }

  if (body_only) {
    // The envelope guarantees body is the last member, and every earlier
    // string member is JSON-escaped, so the first `,"body":` is the real
    // one. Slicing (rather than re-serializing) keeps the bytes exact.
    const std::string marker = ",\"body\":";
    const size_t at = attempt.response.find(marker);
    if (at == std::string::npos || attempt.response.back() != '}') {
      std::fprintf(stderr, "error: response has no body member\n");
      return 1;
    }
    const std::string body = attempt.response.substr(
        at + marker.size(),
        attempt.response.size() - at - marker.size() - 1);
    std::fwrite(body.data(), 1, body.size(), stdout);
    std::fputc('\n', stdout);
  } else {
    std::fwrite(attempt.response.data(), 1, attempt.response.size(), stdout);
    std::fputc('\n', stdout);
  }

  if (attempt.exit_code == 0) return 0;
  std::fprintf(stderr, "%s: %s %s\n", attempt.status.c_str(),
               attempt.code.c_str(), attempt.detail.c_str());
  if (!trace_id.empty()) {
    std::fprintf(stderr, "trace: %s attempt=%lld\n", trace_id.c_str(),
                 attempt_no);
  }
  return attempt.exit_code;
}
