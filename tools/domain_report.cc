// Developer tool: print a domain's generated schemas, per-case mapping
// output of both techniques, and the scored results.
//
//   domain_report <domain-name> [--schemas] [--mappings]
//
// Domain names: dblp, mondial, amalgam, 3sdb, university, hotel, network,
// plus the example scenarios (bookstore, employee, partof, project,
// sales).
#include <cstdio>
#include <cstring>
#include <string>

#include "baseline/ric_mapper.h"
#include "datasets/domains.h"
#include "datasets/examples.h"
#include "eval/report.h"
#include "rewriting/semantic_mapper.h"

namespace {

using namespace semap;

Result<eval::Domain> BuildByName(const std::string& name) {
  if (name == "dblp") return data::BuildDblp();
  if (name == "mondial") return data::BuildMondial();
  if (name == "amalgam") return data::BuildAmalgam();
  if (name == "3sdb") return data::Build3Sdb();
  if (name == "university") return data::BuildUniversity();
  if (name == "hotel") return data::BuildHotel();
  if (name == "network") return data::BuildNetwork();
  if (name == "bookstore") return data::BuildBookstoreExample();
  if (name == "employee") return data::BuildEmployeeIsaExample();
  if (name == "partof") return data::BuildPartOfExample();
  if (name == "project") return data::BuildProjectExample();
  if (name == "sales") return data::BuildSalesReifiedExample();
  return Status::NotFound("unknown domain '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <domain> [--schemas] [--mappings]\n",
                 argv[0]);
    return 2;
  }
  bool show_schemas = false;
  bool show_mappings = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--schemas") == 0) show_schemas = true;
    if (std::strcmp(argv[i], "--mappings") == 0) show_mappings = true;
  }
  auto domain = BuildByName(argv[1]);
  if (!domain.ok()) {
    std::fprintf(stderr, "error: %s\n", domain.status().ToString().c_str());
    return 1;
  }
  if (show_schemas) {
    std::printf("---- source ----\n%s\n",
                domain->source.schema().ToString().c_str());
    for (const auto& [table, stree] : domain->source.semantics()) {
      std::printf("  %s\n", stree.ToString(domain->source.graph()).c_str());
    }
    std::printf("---- target ----\n%s\n",
                domain->target.schema().ToString().c_str());
    for (const auto& [table, stree] : domain->target.semantics()) {
      std::printf("  %s\n", stree.ToString(domain->target.graph()).c_str());
    }
  }
  if (show_mappings) {
    for (const auto& tc : domain->cases) {
      std::printf("== case %s\n", tc.name.c_str());
      auto maps = rew::GenerateSemanticMappings(domain->source, domain->target,
                                                tc.correspondences);
      if (!maps.ok()) {
        std::printf("  semantic error: %s\n",
                    maps.status().ToString().c_str());
      } else {
        for (const auto& m : *maps) {
          std::printf("  sem: %s\n", m.tgd.ToString().c_str());
        }
      }
      auto rics = baseline::GenerateRicMappings(domain->source.schema(),
                                                domain->target.schema(),
                                                tc.correspondences);
      if (rics.ok()) {
        for (const auto& m : *rics) {
          std::printf("  ric: %s\n", m.tgd.ToString().c_str());
        }
      }
      for (const auto& b : tc.benchmark) {
        std::printf("  expect: %s\n", b.ToString().c_str());
      }
    }
  }
  eval::MethodResult semantic = eval::EvaluateSemantic(*domain);
  eval::MethodResult ric = eval::EvaluateRic(*domain);
  std::printf("%s", eval::FormatTable1Header().c_str());
  std::printf("%s", eval::FormatTable1Row(*domain, semantic).c_str());
  std::printf("%s", eval::FormatCaseDetails(*domain, semantic).c_str());
  std::printf("%s", eval::FormatCaseDetails(*domain, ric).c_str());
  return 0;
}
