// Standalone scenario linter: loads all seven artifacts of a mapping
// scenario fail-soft and prints every coded diagnostic the recovery-mode
// parsers and cross-artifact checks produce — many findings per file, not
// just the first.
//
//   semap_lint <src.schema> <src.cm> <src.sem>
//              <tgt.schema> <tgt.cm> <tgt.sem> <correspondences>
//
// Exit codes: 0 no errors (warnings/notes allowed), 1 at least one error
// diagnostic, 2 usage or unreadable input.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "validate/scenario_loader.h"

namespace {

using namespace semap;

bool ReadFile(const char* path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 8) {
    std::fprintf(stderr,
                 "usage: %s <src.schema> <src.cm> <src.sem> <tgt.schema> "
                 "<tgt.cm> <tgt.sem> <corrs>\n"
                 "exit codes: 0 clean, 1 errors found, 2 usage or "
                 "unreadable input\n",
                 argv[0]);
    return 2;
  }

  validate::ScenarioTexts texts;
  validate::ArtifactText* slots[7] = {
      &texts.source_schema, &texts.source_cm,     &texts.source_sem,
      &texts.target_schema, &texts.target_cm,     &texts.target_sem,
      &texts.correspondences};
  for (int i = 0; i < 7; ++i) {
    slots[i]->name = argv[i + 1];
    if (!ReadFile(argv[i + 1], &slots[i]->text)) {
      std::fprintf(stderr, "error: cannot open %s\n", argv[i + 1]);
      return 2;
    }
  }

  DiagnosticSink sink;
  auto loaded = validate::LoadScenario(texts, sink);
  std::printf("%s", sink.ToString().c_str());
  if (!loaded.ok()) {
    // Only an uncompilable conceptual model gets here.
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("usable: %zu source s-tree(s), %zu target s-tree(s), "
              "%zu correspondence(s)\n",
              loaded->source.semantics().size(),
              loaded->target.semantics().size(),
              loaded->correspondences.size());
  return sink.has_errors() ? 1 : 0;
}
